#!/usr/bin/env bash
# Smoke test for the gpsd service, run once per storage engine (binary and
# text): start the server durable, load graphs, run one simulated learning
# session to convergence over HTTP, evaluate a query, read the stats —
# then kill the server mid-manual-session — first a graceful SIGTERM,
# then a hard SIGKILL — and verify that graphs, the finished session and
# the parked manual session (hypothesis included) all survive each
# restart, and that the SSE event stream replays the journal. The kill
# matrix also pins the LOCK protocol: a second daemon on the same data dir
# fails fast, a SIGKILLed daemon leaks its LOCK file and the next boot
# breaks the stale lock, a clean SIGTERM removes it. Binary engine only:
# a -compact restart keeps the finished session inspectable and
# POST /v1/admin/compact compacts a serving daemon. Used by CI; runnable
# locally with ./scripts/smoke_gpsd.sh [engine ...].
set -euo pipefail

ADDR="${GPSD_ADDR:-127.0.0.1:18080}"
BASE="http://$ADDR"
WORK="$(mktemp -d)"
BIN="$WORK/gpsd"
GPSD_PID=""
if [ "$#" -gt 0 ]; then ENGINES=("$@"); else ENGINES=(binary text); fi

cleanup() {
  [ -n "$GPSD_PID" ] && kill "$GPSD_PID" 2>/dev/null || true
}
trap cleanup EXIT

# start_server [extra flags...] — boots gpsd and fails fast with the
# server log if it exits or does not become healthy within the budget.
start_server() {
  : >"$LOG"
  "$BIN" -addr "$ADDR" -data-dir "$DATA_DIR" -store-engine "$ENGINE" "$@" >>"$LOG" 2>&1 &
  GPSD_PID=$!
  for _ in $(seq 1 50); do
    if ! kill -0 "$GPSD_PID" 2>/dev/null; then
      echo "gpsd exited during startup; server log:" >&2
      cat "$LOG" >&2
      exit 1
    fi
    curl -fsS "$BASE/healthz" >/dev/null 2>&1 && return 0
    sleep 0.2
  done
  echo "gpsd did not become healthy within 10s; server log:" >&2
  cat "$LOG" >&2
  exit 1
}

stop_server() {
  kill -TERM "$GPSD_PID"
  wait "$GPSD_PID" 2>/dev/null || true
  GPSD_PID=""
}

# kill_server — SIGKILL, no grace: simulates a crash or OOM kill. The
# LOCK file is deliberately left behind (nothing ran the cleanup).
kill_server() {
  kill -KILL "$GPSD_PID"
  wait "$GPSD_PID" 2>/dev/null || true
  GPSD_PID=""
}

# metric_value FILE PATTERN — numeric value of the first sample line whose
# name{labels} part matches PATTERN in a /metrics scrape.
metric_value() {
  awk -v pat="$2" '$0 !~ /^#/ && $0 ~ pat { print $NF; exit }' "$1"
}

# assert_ge A B MSG — fail unless A >= B (awk handles the arithmetic so
# exponent-formatted values compare correctly).
assert_ge() {
  awk -v a="$1" -v b="$2" 'BEGIN { exit !(a+0 >= b+0) }' \
    || { echo "metrics: $3 (got $1, want >= $2)" >&2; exit 1; }
}

go build -o "$BIN" ./cmd/gpsd

run_engine() {
  ENGINE="$1"
  DATA_DIR="$WORK/data-$ENGINE"
  LOG="$WORK/gpsd-$ENGINE.log"
  echo "=== smoke: $ENGINE engine ==="

  start_server -preload demo=figure1

  # Two daemons must never share a data directory: the second loses the
  # LOCK race and exits with a clear error instead of corrupting the dir.
  if "$BIN" -addr 127.0.0.1:18099 -data-dir "$DATA_DIR" -store-engine "$ENGINE" >"$WORK/second.log" 2>&1; then
    echo "second gpsd on the same data dir must fail" >&2
    exit 1
  fi
  grep -qi "locked" "$WORK/second.log"

  # Evaluate the paper's goal query on the preloaded Figure 1 graph: it
  # must select exactly the four neighbourhoods N1, N2, N4, N6.
  curl -fsS -X POST "$BASE/v1/graphs/demo/evaluate" \
    -d '{"query":"(tram+bus)*.cinema","witnesses":true}' | tee /tmp/gpsd_eval.json
  grep -q '"count": 4' /tmp/gpsd_eval.json

  # Load a second graph inline to exercise the text loader.
  curl -fsS -X PUT "$BASE/v1/graphs/tiny" \
    -d '{"format":"text","data":"edge a tram b\nedge b cinema c\n"}' >/dev/null

  # Drive one simulated learning session to convergence.
  SID=$(curl -fsS -X POST "$BASE/v1/sessions" \
    -d '{"graph":"demo","mode":"simulated","goal":"(tram+bus)*.cinema"}' \
    | sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
  test -n "$SID"

  STATUS=""
  for _ in $(seq 1 100); do
    STATUS=$(curl -fsS "$BASE/v1/sessions/$SID" | sed -n 's/.*"status": "\([^"]*\)".*/\1/p')
    [ "$STATUS" = "done" ] && break
    sleep 0.1
  done
  [ "$STATUS" = "done" ]

  curl -fsS "$BASE/v1/sessions/$SID" | tee /tmp/gpsd_session.json
  grep -q '"halt": "user-satisfied"' /tmp/gpsd_session.json

  curl -fsS "$BASE/v1/sessions/$SID/hypothesis" | tee /tmp/gpsd_hyp.json
  grep -q '"learned"' /tmp/gpsd_hyp.json
  grep -q '"count": 4' /tmp/gpsd_hyp.json

  curl -fsS "$BASE/v1/stats" | tee /tmp/gpsd_stats.json
  grep -q '"graphs"' /tmp/gpsd_stats.json
  grep -q '"journal_appends"' /tmp/gpsd_stats.json
  grep -q "\"engine\": \"$ENGINE\"" /tmp/gpsd_stats.json
  # Backpressure metrics: session-manager queue state and per-endpoint
  # request-latency histograms must be populated by the traffic above.
  grep -q '"backpressure"' /tmp/gpsd_stats.json
  grep -q '"queue_depth"' /tmp/gpsd_stats.json
  grep -q '"live_sessions"' /tmp/gpsd_stats.json
  grep -q '"POST /v1/graphs/{name}/evaluate"' /tmp/gpsd_stats.json
  grep -q '"p99_us"' /tmp/gpsd_stats.json

  # --- /metrics exposition -------------------------------------------------
  # One scrape must cover every telemetry surface: store counters, cache
  # stats, backpressure gauges, request-latency histograms with cumulative
  # buckets ending at +Inf, and the session-trace histograms populated by
  # the simulated session above.
  curl -fsS "$BASE/metrics" | tee /tmp/gpsd_metrics.txt >/dev/null
  grep -q '^# TYPE gpsd_store_journal_appends_total counter' /tmp/gpsd_metrics.txt
  grep -q "^gpsd_store_journal_appends_total{engine=\"$ENGINE\"}" /tmp/gpsd_metrics.txt
  grep -q '^# TYPE gpsd_http_request_duration_seconds histogram' /tmp/gpsd_metrics.txt
  grep -q 'gpsd_http_request_duration_seconds_bucket{.*le="+Inf"}' /tmp/gpsd_metrics.txt
  grep -q '^gpsd_sessions_live ' /tmp/gpsd_metrics.txt
  grep -q '^gpsd_cache_hits_total{graph="demo"}' /tmp/gpsd_metrics.txt
  grep -q '^# TYPE gpsd_session_question_wait_seconds histogram' /tmp/gpsd_metrics.txt
  grep -q '^gpsd_session_learn_phase_seconds_count{phase="generalize"}' /tmp/gpsd_metrics.txt
  APPENDS_1=$(metric_value /tmp/gpsd_metrics.txt "^gpsd_store_journal_appends_total")
  assert_ge "$APPENDS_1" 1 "journal appends must be counted after a session"

  # --- Kill-and-restart recovery -------------------------------------------
  # Park a manual session on its satisfied question (one positive label
  # in), capture its state, SIGTERM the server mid-session and restart
  # from the same data dir: the session list, the parked question and the
  # hypothesis must survive byte-identically.
  MID=$(curl -fsS -X POST "$BASE/v1/sessions" -d '{"graph":"demo","mode":"manual"}' \
    | sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
  test -n "$MID"
  for _ in $(seq 1 100); do
    curl -fsS "$BASE/v1/sessions/$MID" | grep -q '"kind": "label"' && break
    sleep 0.1
  done
  curl -fsS -X POST "$BASE/v1/sessions/$MID/label" -d '{"decision":"positive"}' >/dev/null
  for _ in $(seq 1 100); do
    curl -fsS "$BASE/v1/sessions/$MID" | grep -q '"kind": "satisfied"' && break
    sleep 0.1
  done
  curl -fsS "$BASE/v1/sessions/$MID" | tee /tmp/gpsd_manual_before.json
  grep -q '"kind": "satisfied"' /tmp/gpsd_manual_before.json
  curl -fsS "$BASE/v1/sessions/$MID/hypothesis" >/tmp/gpsd_manual_hyp_before.json

  # Counters are monotonic within a server process: the manual-session
  # traffic above can only have grown the journal-append counter.
  curl -fsS "$BASE/metrics" >/tmp/gpsd_metrics2.txt
  APPENDS_2=$(metric_value /tmp/gpsd_metrics2.txt "^gpsd_store_journal_appends_total")
  assert_ge "$APPENDS_2" "$APPENDS_1" "journal-append counter must never regress within a run"

  stop_server
  start_server # no -preload: everything must come back from the store

  curl -fsS "$BASE/v1/graphs" | tee /tmp/gpsd_graphs_after.json
  grep -q '"demo"' /tmp/gpsd_graphs_after.json
  grep -q '"tiny"' /tmp/gpsd_graphs_after.json

  # The finished simulated session is still listed with its result.
  curl -fsS "$BASE/v1/sessions/$SID" | tee /tmp/gpsd_session_after.json
  grep -q '"halt": "user-satisfied"' /tmp/gpsd_session_after.json

  # The manual session resumed at its exact pre-crash state.
  for _ in $(seq 1 100); do
    curl -fsS "$BASE/v1/sessions/$MID" | grep -q '"kind": "satisfied"' && break
    sleep 0.1
  done
  curl -fsS "$BASE/v1/sessions/$MID" >/tmp/gpsd_manual_after.json
  diff /tmp/gpsd_manual_before.json /tmp/gpsd_manual_after.json
  curl -fsS "$BASE/v1/sessions/$MID/hypothesis" >/tmp/gpsd_manual_hyp_after.json
  diff /tmp/gpsd_manual_hyp_before.json /tmp/gpsd_manual_hyp_after.json

  # The SSE stream replays the finished session's journal and closes at
  # done.
  curl -fsS "$BASE/v1/sessions/$SID/events" >/tmp/gpsd_events.txt
  grep -q '^event: create' /tmp/gpsd_events.txt
  grep -q '^event: hypothesis' /tmp/gpsd_events.txt
  grep -q '^event: done' /tmp/gpsd_events.txt

  # Recovery is visible in the stats.
  curl -fsS "$BASE/v1/stats" | tee /tmp/gpsd_stats_after.json
  grep -q '"sessions_resumed": 1' /tmp/gpsd_stats_after.json

  # Recovery is visible on /metrics too: the restarted process starts its
  # counters at zero, but the replay itself must be accounted — recovered
  # graphs/sessions counted, the resumed session's replay span recorded,
  # and not a single corrupt journal frame after a clean SIGTERM.
  curl -fsS "$BASE/metrics" >/tmp/gpsd_metrics_after.txt
  assert_ge "$(metric_value /tmp/gpsd_metrics_after.txt "^gpsd_store_recovered_graphs_total")" 2 \
    "recovered-graph counter must cover both graphs after restart"
  assert_ge "$(metric_value /tmp/gpsd_metrics_after.txt "^gpsd_store_recovered_sessions_total")" 2 \
    "recovered-session counter must cover both sessions after restart"
  assert_ge "$(metric_value /tmp/gpsd_metrics_after.txt "^gpsd_recovery_sessions_resumed")" 1 \
    "resumed-session gauge must report the replayed manual session"
  assert_ge "$(metric_value /tmp/gpsd_metrics_after.txt "^gpsd_session_replay_seconds_count")" 1 \
    "the resumed session must record a replay span"
  assert_ge 0 "$(metric_value /tmp/gpsd_metrics_after.txt "^gpsd_store_corrupt_frames_total")" \
    "a clean shutdown must leave zero corrupt journal frames"
  # The journal-append counter restarts from zero in the new process; the
  # on-disk history it describes is still intact (sessions recovered above).
  APPENDS_3=$(metric_value /tmp/gpsd_metrics_after.txt "^gpsd_store_journal_appends_total")
  test -n "$APPENDS_3"

  # --- SIGKILL recovery ----------------------------------------------------
  # A hard kill gets no cleanup: the LOCK file must be leaked, the next
  # boot must break the stale lock (its owner is dead, so the flock is
  # free) and every session must come back exactly as before.
  kill_server
  [ -f "$DATA_DIR/LOCK" ] || { echo "SIGKILL must leak the LOCK file" >&2; exit 1; }
  start_server
  curl -fsS "$BASE/v1/sessions/$SID" | grep -q '"halt": "user-satisfied"'
  for _ in $(seq 1 100); do
    curl -fsS "$BASE/v1/sessions/$MID" | grep -q '"kind": "satisfied"' && break
    sleep 0.1
  done
  curl -fsS "$BASE/v1/sessions/$MID" >/tmp/gpsd_manual_sigkill.json
  diff /tmp/gpsd_manual_before.json /tmp/gpsd_manual_sigkill.json

  # Admin-triggered compaction works on a serving daemon (the text engine
  # reports supported=false, the binary engine compacts live).
  curl -fsS -X POST "$BASE/v1/admin/compact" | tee /tmp/gpsd_admin_compact.json
  grep -q '"supported"' /tmp/gpsd_admin_compact.json

  if [ "$ENGINE" = "binary" ]; then
    # --- Compacted restart -------------------------------------------------
    # A -compact boot rewrites the wal: the finished session collapses to
    # its summary (create + done) but stays inspectable, and the parked
    # manual session still resumes.
    stop_server
    start_server -compact
    grep -q 'compacted' "$LOG"
    curl -fsS "$BASE/v1/sessions/$SID" >/tmp/gpsd_session_compacted.json
    grep -q '"halt": "user-satisfied"' /tmp/gpsd_session_compacted.json
    curl -fsS "$BASE/v1/sessions/$SID/events" >/tmp/gpsd_events_compacted.txt
    grep -q '^event: create' /tmp/gpsd_events_compacted.txt
    grep -q '^event: done' /tmp/gpsd_events_compacted.txt
    for _ in $(seq 1 100); do
      curl -fsS "$BASE/v1/sessions/$MID" | grep -q '"kind": "satisfied"' && break
      sleep 0.1
    done
    curl -fsS "$BASE/v1/sessions/$MID" | grep -q '"kind": "satisfied"'
    curl -fsS "$BASE/v1/stats" | grep -q '"compaction_runs": 1'
  fi

  stop_server
  # A graceful shutdown releases the data directory cleanly.
  [ ! -f "$DATA_DIR/LOCK" ] || { echo "SIGTERM must remove the LOCK file" >&2; exit 1; }
  echo "=== smoke: $ENGINE engine passed ==="
}

for engine in "${ENGINES[@]}"; do
  run_engine "$engine"
done

echo "gpsd smoke test passed"
