#!/usr/bin/env bash
# Smoke test for the gpsd service: start the server, load graphs, run one
# simulated learning session to convergence over HTTP, evaluate a query
# and read the stats. Used by CI; runnable locally with ./scripts/smoke_gpsd.sh.
set -euo pipefail

ADDR="${GPSD_ADDR:-127.0.0.1:18080}"
BASE="http://$ADDR"
BIN="$(mktemp -d)/gpsd"

go build -o "$BIN" ./cmd/gpsd
"$BIN" -addr "$ADDR" -preload demo=figure1 &
GPSD_PID=$!
trap 'kill "$GPSD_PID" 2>/dev/null || true' EXIT

for _ in $(seq 1 50); do
  curl -fsS "$BASE/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done
curl -fsS "$BASE/healthz" >/dev/null

# Evaluate the paper's goal query on the preloaded Figure 1 graph: it must
# select exactly the four neighbourhoods N1, N2, N4, N6.
curl -fsS -X POST "$BASE/v1/graphs/demo/evaluate" \
  -d '{"query":"(tram+bus)*.cinema","witnesses":true}' | tee /tmp/gpsd_eval.json
grep -q '"count": 4' /tmp/gpsd_eval.json

# Load a second graph inline to exercise the text loader.
curl -fsS -X PUT "$BASE/v1/graphs/tiny" \
  -d '{"format":"text","data":"edge a tram b\nedge b cinema c\n"}' >/dev/null

# Drive one simulated learning session to convergence.
SID=$(curl -fsS -X POST "$BASE/v1/sessions" \
  -d '{"graph":"demo","mode":"simulated","goal":"(tram+bus)*.cinema"}' \
  | sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
test -n "$SID"

STATUS=""
for _ in $(seq 1 100); do
  STATUS=$(curl -fsS "$BASE/v1/sessions/$SID" | sed -n 's/.*"status": "\([^"]*\)".*/\1/p')
  [ "$STATUS" = "done" ] && break
  sleep 0.1
done
[ "$STATUS" = "done" ]

curl -fsS "$BASE/v1/sessions/$SID" | tee /tmp/gpsd_session.json
grep -q '"halt": "user-satisfied"' /tmp/gpsd_session.json

curl -fsS "$BASE/v1/sessions/$SID/hypothesis" | tee /tmp/gpsd_hyp.json
grep -q '"learned"' /tmp/gpsd_hyp.json
grep -q '"count": 4' /tmp/gpsd_hyp.json

curl -fsS "$BASE/v1/stats" | tee /tmp/gpsd_stats.json
grep -q '"graphs"' /tmp/gpsd_stats.json

echo "gpsd smoke test passed"
