#!/usr/bin/env bash
# Smoke test for the gpsd service, run once per storage engine (binary and
# text). The shell half does what shell is good at — booting daemons,
# sending signals, checking LOCK files and grepping the /metrics and
# /v1/stats surfaces — while every session-level check is delegated to the
# typed Go client via `gpsbench -smokedrive` (evaluate + error-code
# contract, a simulated session driven to convergence, a manual session
# parked mid-question, before/after state snapshots diffed across each
# kill). The kill matrix pins recovery: a graceful SIGTERM and a hard
# SIGKILL both restart into byte-identical session state, the LOCK
# protocol holds (second daemon fails fast, SIGKILL leaks the lock, the
# next boot breaks it, SIGTERM removes it), and the SSE stream replays
# the journal. Binary engine only: a -compact restart keeps the finished
# session inspectable and POST /v1/admin/compact compacts a serving
# daemon. A keyring segment boots with -api-keys, asserts the
# unauthorized envelope code on the wire, rotates the key file and proves
# SIGHUP hot-reload revokes the old key without a restart. A final
# replication segment streams a primary with a parked session into a
# warm follower, SIGKILLs the primary, promotes the follower and proves
# the session reconnects byte-identically — then resurrects the old
# primary and fences it with the successor epoch. Used by CI; runnable
# locally with ./scripts/smoke_gpsd.sh [engine ...].
set -euo pipefail

ADDR="${GPSD_ADDR:-127.0.0.1:18080}"
BASE="http://$ADDR"
WORK="$(mktemp -d)"
BIN="$WORK/gpsd"
BENCH="$WORK/gpsbench"
GPSD_PID=""
FOLLOWER_PID=""
if [ "$#" -gt 0 ]; then ENGINES=("$@"); else ENGINES=(binary text); fi

cleanup() {
  [ -n "$GPSD_PID" ] && kill "$GPSD_PID" 2>/dev/null || true
  [ -n "$FOLLOWER_PID" ] && kill "$FOLLOWER_PID" 2>/dev/null || true
}
trap cleanup EXIT

# start_server [extra flags...] — boots gpsd and fails fast with the
# server log if it exits or does not become healthy within the budget.
start_server() {
  : >"$LOG"
  "$BIN" -addr "$ADDR" -data-dir "$DATA_DIR" -store-engine "$ENGINE" "$@" >>"$LOG" 2>&1 &
  GPSD_PID=$!
  for _ in $(seq 1 50); do
    if ! kill -0 "$GPSD_PID" 2>/dev/null; then
      echo "gpsd exited during startup; server log:" >&2
      cat "$LOG" >&2
      exit 1
    fi
    curl -fsS "$BASE/healthz" >/dev/null 2>&1 && return 0
    sleep 0.2
  done
  echo "gpsd did not become healthy within 10s; server log:" >&2
  cat "$LOG" >&2
  exit 1
}

stop_server() {
  kill -TERM "$GPSD_PID"
  wait "$GPSD_PID" 2>/dev/null || true
  GPSD_PID=""
}

# kill_server — SIGKILL, no grace: simulates a crash or OOM kill. The
# LOCK file is deliberately left behind (nothing ran the cleanup).
kill_server() {
  kill -KILL "$GPSD_PID"
  wait "$GPSD_PID" 2>/dev/null || true
  GPSD_PID=""
}

# smokedrive MODE [args...] — one typed-client check against $BASE.
smokedrive() {
  mode="$1"; shift
  "$BENCH" -smokedrive "$mode" -smoke-base "$BASE" "$@"
}

# metric_value FILE PATTERN — numeric value of the first sample line whose
# name{labels} part matches PATTERN in a /metrics scrape.
metric_value() {
  awk -v pat="$2" '$0 !~ /^#/ && $0 ~ pat { print $NF; exit }' "$1"
}

# assert_ge A B MSG — fail unless A >= B (awk handles the arithmetic so
# exponent-formatted values compare correctly).
assert_ge() {
  awk -v a="$1" -v b="$2" 'BEGIN { exit !(a+0 >= b+0) }' \
    || { echo "metrics: $3 (got $1, want >= $2)" >&2; exit 1; }
}

go build -o "$BIN" ./cmd/gpsd
go build -o "$BENCH" ./cmd/gpsbench

run_engine() {
  ENGINE="$1"
  DATA_DIR="$WORK/data-$ENGINE"
  LOG="$WORK/gpsd-$ENGINE.log"
  echo "=== smoke: $ENGINE engine ==="

  start_server -preload demo=figure1

  # Two daemons must never share a data directory: the second loses the
  # LOCK race and exits with a clear error instead of corrupting the dir.
  if "$BIN" -addr 127.0.0.1:18099 -data-dir "$DATA_DIR" -store-engine "$ENGINE" >"$WORK/second.log" 2>&1; then
    echo "second gpsd on the same data dir must fail" >&2
    exit 1
  fi
  grep -qi "locked" "$WORK/second.log"

  # Evaluate the paper's goal query on the preloaded Figure 1 graph (it
  # must select exactly the four neighbourhoods), load a second graph
  # inline, and pin the error contract: every canonical failure answers
  # with its stable error code, and a limit-1 cursor walk visits exactly
  # the unpaged graph listing.
  smokedrive eval

  # The same contract holds on the raw wire, independent of the client:
  # the envelope carries a machine-readable code, not message prose.
  curl -sS "$BASE/v1/graphs/no-such-graph" >/tmp/gpsd_envelope.json
  grep -q '"code": "graph_not_found"' /tmp/gpsd_envelope.json
  grep -q '"request_id"' /tmp/gpsd_envelope.json

  # Drive one simulated learning session to convergence (halt must be
  # user-satisfied) and verify its hypothesis and SSE replay.
  SID=$(smokedrive simulate)
  test -n "$SID"
  smokedrive checkdone -smoke-session "$SID"

  curl -fsS "$BASE/v1/stats" | tee /tmp/gpsd_stats.json
  grep -q '"graphs"' /tmp/gpsd_stats.json
  grep -q '"journal_appends"' /tmp/gpsd_stats.json
  grep -q "\"engine\": \"$ENGINE\"" /tmp/gpsd_stats.json
  # Backpressure metrics: session-manager queue state and per-endpoint
  # request-latency histograms must be populated by the traffic above.
  grep -q '"backpressure"' /tmp/gpsd_stats.json
  grep -q '"queue_depth"' /tmp/gpsd_stats.json
  grep -q '"live_sessions"' /tmp/gpsd_stats.json
  grep -q '"POST /v1/graphs/{name}/evaluate"' /tmp/gpsd_stats.json
  grep -q '"p99_us"' /tmp/gpsd_stats.json

  # --- /metrics exposition -------------------------------------------------
  # One scrape must cover every telemetry surface: store counters, cache
  # stats, backpressure gauges, request-latency histograms with cumulative
  # buckets ending at +Inf, and the session-trace histograms populated by
  # the simulated session above.
  curl -fsS "$BASE/metrics" | tee /tmp/gpsd_metrics.txt >/dev/null
  grep -q '^# TYPE gpsd_store_journal_appends_total counter' /tmp/gpsd_metrics.txt
  grep -q "^gpsd_store_journal_appends_total{engine=\"$ENGINE\"}" /tmp/gpsd_metrics.txt
  grep -q '^# TYPE gpsd_http_request_duration_seconds histogram' /tmp/gpsd_metrics.txt
  grep -q 'gpsd_http_request_duration_seconds_bucket{.*le="+Inf"}' /tmp/gpsd_metrics.txt
  grep -q '^gpsd_sessions_live ' /tmp/gpsd_metrics.txt
  grep -q '^gpsd_cache_hits_total{graph="demo"}' /tmp/gpsd_metrics.txt
  grep -q '^# TYPE gpsd_session_question_wait_seconds histogram' /tmp/gpsd_metrics.txt
  grep -q '^gpsd_session_learn_phase_seconds_count{phase="generalize"}' /tmp/gpsd_metrics.txt
  APPENDS_1=$(metric_value /tmp/gpsd_metrics.txt "^gpsd_store_journal_appends_total")
  assert_ge "$APPENDS_1" 1 "journal appends must be counted after a session"

  # --- Kill-and-restart recovery -------------------------------------------
  # Park a manual session on its satisfied question (one positive label
  # in), snapshot its state, SIGTERM the server mid-session and restart
  # from the same data dir: the session list, the parked question and the
  # hypothesis must survive byte-identically.
  MID=$(smokedrive park)
  test -n "$MID"
  smokedrive snapshot -smoke-session "$MID" -smoke-out /tmp/gpsd_manual_before.json
  grep -q '"kind": "satisfied"' /tmp/gpsd_manual_before.json

  # Counters are monotonic within a server process: the manual-session
  # traffic above can only have grown the journal-append counter.
  curl -fsS "$BASE/metrics" >/tmp/gpsd_metrics2.txt
  APPENDS_2=$(metric_value /tmp/gpsd_metrics2.txt "^gpsd_store_journal_appends_total")
  assert_ge "$APPENDS_2" "$APPENDS_1" "journal-append counter must never regress within a run"

  stop_server
  start_server # no -preload: everything must come back from the store

  curl -fsS "$BASE/v1/graphs" | tee /tmp/gpsd_graphs_after.json
  grep -q '"demo"' /tmp/gpsd_graphs_after.json
  grep -q '"tiny"' /tmp/gpsd_graphs_after.json

  # The finished simulated session is still listed with its result, its
  # hypothesis still selects the four neighbourhoods, and the SSE stream
  # replays the whole journal down to the terminal done event.
  smokedrive checkdone -smoke-session "$SID"

  # The manual session resumed at its exact pre-crash state.
  smokedrive snapshot -smoke-session "$MID" -smoke-out /tmp/gpsd_manual_after.json
  diff /tmp/gpsd_manual_before.json /tmp/gpsd_manual_after.json

  # Recovery is visible in the stats.
  curl -fsS "$BASE/v1/stats" | tee /tmp/gpsd_stats_after.json
  grep -q '"sessions_resumed": 1' /tmp/gpsd_stats_after.json

  # Recovery is visible on /metrics too: the restarted process starts its
  # counters at zero, but the replay itself must be accounted — recovered
  # graphs/sessions counted, the resumed session's replay span recorded,
  # and not a single corrupt journal frame after a clean SIGTERM.
  curl -fsS "$BASE/metrics" >/tmp/gpsd_metrics_after.txt
  assert_ge "$(metric_value /tmp/gpsd_metrics_after.txt "^gpsd_store_recovered_graphs_total")" 2 \
    "recovered-graph counter must cover both graphs after restart"
  assert_ge "$(metric_value /tmp/gpsd_metrics_after.txt "^gpsd_store_recovered_sessions_total")" 2 \
    "recovered-session counter must cover both sessions after restart"
  assert_ge "$(metric_value /tmp/gpsd_metrics_after.txt "^gpsd_recovery_sessions_resumed")" 1 \
    "resumed-session gauge must report the replayed manual session"
  assert_ge "$(metric_value /tmp/gpsd_metrics_after.txt "^gpsd_session_replay_seconds_count")" 1 \
    "the resumed session must record a replay span"
  assert_ge 0 "$(metric_value /tmp/gpsd_metrics_after.txt "^gpsd_store_corrupt_frames_total")" \
    "a clean shutdown must leave zero corrupt journal frames"
  # The journal-append counter restarts from zero in the new process; the
  # on-disk history it describes is still intact (sessions recovered above).
  APPENDS_3=$(metric_value /tmp/gpsd_metrics_after.txt "^gpsd_store_journal_appends_total")
  test -n "$APPENDS_3"

  # --- SIGKILL recovery ----------------------------------------------------
  # A hard kill gets no cleanup: the LOCK file must be leaked, the next
  # boot must break the stale lock (its owner is dead, so the flock is
  # free) and every session must come back exactly as before.
  kill_server
  [ -f "$DATA_DIR/LOCK" ] || { echo "SIGKILL must leak the LOCK file" >&2; exit 1; }
  start_server
  smokedrive checkdone -smoke-session "$SID"
  smokedrive snapshot -smoke-session "$MID" -smoke-out /tmp/gpsd_manual_sigkill.json
  diff /tmp/gpsd_manual_before.json /tmp/gpsd_manual_sigkill.json

  # Admin-triggered compaction works on a serving daemon (the text engine
  # reports supported=false, the binary engine compacts live).
  curl -fsS -X POST "$BASE/v1/admin/compact" | tee /tmp/gpsd_admin_compact.json
  grep -q '"supported"' /tmp/gpsd_admin_compact.json

  if [ "$ENGINE" = "binary" ]; then
    # --- Compacted restart -------------------------------------------------
    # A -compact boot rewrites the wal: the finished session collapses to
    # its summary (create + done) but stays inspectable, and the parked
    # manual session still resumes.
    stop_server
    start_server -compact
    grep -q 'compacted' "$LOG"
    smokedrive checkdone -smoke-session "$SID"
    smokedrive snapshot -smoke-session "$MID" -smoke-out /tmp/gpsd_manual_compacted.json
    grep -q '"kind": "satisfied"' /tmp/gpsd_manual_compacted.json
    curl -fsS "$BASE/v1/stats" | grep -q '"compaction_runs": 1'
  fi

  stop_server
  # A graceful shutdown releases the data directory cleanly.
  [ ! -f "$DATA_DIR/LOCK" ] || { echo "SIGTERM must remove the LOCK file" >&2; exit 1; }
  echo "=== smoke: $ENGINE engine passed ==="
}

# --- API keys + SIGHUP reload ----------------------------------------------
# Boot with a keyring: unkeyed requests get the unauthorized envelope on
# the wire, a keyed client works end-to-end and its sessions land on its
# tenant. Then rotate the key file and SIGHUP: the new key is live and the
# old one revoked, without a restart.
run_auth() {
  ENGINE=binary
  DATA_DIR="$WORK/data-auth"
  LOG="$WORK/gpsd-auth.log"
  KEYS="$WORK/keyring.json"
  echo "=== smoke: API keys + SIGHUP reload ==="

  cat >"$KEYS" <<'EOF'
{
  "tenants": {"acme": {"max_sessions": 4, "max_graphs": 4}},
  "keys": {"sk-smoke-old": "acme"}
}
EOF
  start_server -preload demo=figure1 -api-keys "$KEYS"

  curl -sS "$BASE/v1/graphs" >/tmp/gpsd_unauth.json
  grep -q '"code": "unauthorized"' /tmp/gpsd_unauth.json
  smokedrive auth -smoke-key sk-smoke-old

  cat >"$KEYS" <<'EOF'
{
  "tenants": {"acme": {"max_sessions": 4, "max_graphs": 4}},
  "keys": {"sk-smoke-new": "acme"}
}
EOF
  kill -HUP "$GPSD_PID"
  for _ in $(seq 1 50); do
    grep -q 'keyring reloaded' "$LOG" && break
    sleep 0.1
  done
  grep -q 'keyring reloaded' "$LOG"

  smokedrive auth -smoke-key sk-smoke-new
  smokedrive auth -smoke-key sk-smoke-old -smoke-expect-unauthorized

  stop_server
  echo "=== smoke: API keys + SIGHUP reload passed ==="
}

# --- Replication: promote-and-reconnect -------------------------------------
# Stream a binary primary holding a parked manual session into a warm
# follower, crash the primary with SIGKILL, promote the follower over
# HTTP and prove the parked session reconnects byte-identically on the
# new primary. Then resurrect the old primary on its untouched data dir
# and prove the first write carrying the successor epoch fences it.
run_replication() {
  ENGINE=binary
  DATA_DIR="$WORK/data-repl-a"
  LOG="$WORK/gpsd-repl-a.log"
  ADDR_B="${GPSD_ADDR_B:-127.0.0.1:18081}"
  BASE_B="http://$ADDR_B"
  echo "=== smoke: replication & failover ==="

  start_server -preload demo=figure1
  MID=$(smokedrive park)
  test -n "$MID"
  smokedrive snapshot -smoke-session "$MID" -smoke-out /tmp/gpsd_repl_before.json
  grep -q '"kind": "satisfied"' /tmp/gpsd_repl_before.json

  "$BIN" -addr "$ADDR_B" -data-dir "$WORK/data-repl-b" -store-engine binary \
    -replicate-from "$BASE" >"$WORK/gpsd-repl-b.log" 2>&1 &
  FOLLOWER_PID=$!
  for _ in $(seq 1 100); do
    curl -fsS "$BASE_B/v1/replication/status" >/tmp/gpsd_repl_status.json 2>/dev/null || true
    if grep -q '"connected": true' /tmp/gpsd_repl_status.json 2>/dev/null &&
      grep -q '"lag_frames": 0' /tmp/gpsd_repl_status.json; then
      break
    fi
    sleep 0.2
  done
  grep -q '"role": "follower"' /tmp/gpsd_repl_status.json
  grep -q '"connected": true' /tmp/gpsd_repl_status.json
  grep -q '"lag_frames": 0' /tmp/gpsd_repl_status.json

  # The standby serves lag metrics and refuses writes with a typed code.
  curl -fsS "$BASE_B/metrics" | grep -q '^gpsd_repl_lag_frames 0'
  curl -sS -X POST "$BASE_B/v1/sessions" -H 'Content-Type: application/json' \
    -d '{"graph":"demo","mode":"manual"}' >/tmp/gpsd_repl_refused.json
  grep -q '"code": "not_primary"' /tmp/gpsd_repl_refused.json

  # Crash the primary; promote the follower; the epoch must advance.
  kill_server
  curl -fsS -X POST "$BASE_B/v1/admin/promote" | tee /tmp/gpsd_repl_promoted.json
  grep -q '"role": "primary"' /tmp/gpsd_repl_promoted.json
  EPOCH=$(sed -n 's/.*"epoch": \([0-9][0-9]*\).*/\1/p' /tmp/gpsd_repl_promoted.json | head -1)
  test -n "$EPOCH" && [ "$EPOCH" -ge 2 ]

  # The parked session reconnects byte-identically on the new primary.
  OLD_BASE=$BASE
  BASE=$BASE_B
  smokedrive snapshot -smoke-session "$MID" -smoke-out /tmp/gpsd_repl_after.json
  BASE=$OLD_BASE
  diff /tmp/gpsd_repl_before.json /tmp/gpsd_repl_after.json

  # Resurrect the deposed primary on its untouched directory: the first
  # write carrying the successor epoch latches the fence durably; reads
  # stay available for post-mortem.
  start_server
  curl -sS -X POST "$BASE/v1/admin/compact" -H "X-GPSD-Epoch: $EPOCH" >/tmp/gpsd_repl_fence.json
  grep -q '"code": "fenced"' /tmp/gpsd_repl_fence.json
  [ -f "$DATA_DIR/FENCED" ] || { echo "fence latch must persist as a FENCED marker" >&2; exit 1; }
  curl -fsS "$BASE/v1/graphs" >/dev/null

  stop_server
  kill -TERM "$FOLLOWER_PID"
  wait "$FOLLOWER_PID" 2>/dev/null || true
  FOLLOWER_PID=""
  echo "=== smoke: replication & failover passed ==="
}

for engine in "${ENGINES[@]}"; do
  run_engine "$engine"
done
run_auth
run_replication

echo "gpsd smoke test passed"
