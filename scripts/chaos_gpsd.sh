#!/usr/bin/env bash
# Chaos run for gpsd: build the daemon with the race detector, build
# gpsbench, and let the chaos harness SIGKILL the daemon dozens of times —
# including crashes parked inside live-compaction phases via
# GPSD_FAULT_CRASH — while concurrent learning sessions keep answering
# questions over HTTP. The run fails on any invariant violation: a lost or
# diverged session, a mutated finished session, a corrupt frame, a leaked
# or wrongly-broken LOCK, a missing compaction, or any disagreement with
# the never-killed text-engine oracle.
#
# Usage: ./scripts/chaos_gpsd.sh [seed [kills]]
set -euo pipefail

SEED="${1:-1}"
KILLS="${2:-30}"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

# The daemon runs with -race so a crash-heavy run also shakes out data
# races in the writer/compactor/recovery paths; the harness itself is a
# plain build (it is only an HTTP client plus the in-process oracle).
go build -race -o "$WORK/gpsd" ./cmd/gpsd
go build -o "$WORK/gpsbench" ./cmd/gpsbench

"$WORK/gpsbench" -chaosbench \
  -chaos-gpsd "$WORK/gpsd" \
  -chaos-kills "$KILLS" \
  -seed "$SEED" \
  -chaosbench-out "${CHAOS_OUT:-$WORK/chaos.json}" \
  -chaos-telemetry "${CHAOS_TEL:-$WORK/chaos-telemetry.jsonl}" \
  -chaos-v

if [ -f "${CHAOS_OUT:-$WORK/chaos.json}" ]; then
  cat "${CHAOS_OUT:-$WORK/chaos.json}"
fi

echo "gpsd chaos run passed (seed=$SEED kills=$KILLS)"
