#!/usr/bin/env bash
# Failover run for gpsd: build the daemon with the race detector, boot a
# primary/warm-follower pair, and let the harness SIGKILL the acting
# primary repeatedly — including crashes parked inside live-compaction
# phases via GPSD_FAULT_CRASH — promoting the standby each time and
# re-seeding the old primary's wiped directory as the new follower. The
# 24-session workload rides through every failover on the typed client's
# endpoint re-resolution. The run fails on any invariant violation: a
# lost or diverged session, a promotion that does not advance the fencing
# epoch, a deposed primary that accepts a write, or any disagreement with
# the never-killed text-engine oracle.
#
# Usage: ./scripts/failover_gpsd.sh [seed [kills]]
set -euo pipefail

SEED="${1:-1}"
KILLS="${2:-10}"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

go build -race -o "$WORK/gpsd" ./cmd/gpsd
go build -o "$WORK/gpsbench" ./cmd/gpsbench

"$WORK/gpsbench" -failover \
  -chaos-gpsd "$WORK/gpsd" \
  -failover-kills "$KILLS" \
  -seed "$SEED" \
  -failover-out "${FAILOVER_OUT:-$WORK/failover.json}" \
  -chaos-telemetry "${FAILOVER_TEL:-$WORK/failover-telemetry.jsonl}" \
  -chaos-v

if [ -f "${FAILOVER_OUT:-$WORK/failover.json}" ]; then
  cat "${FAILOVER_OUT:-$WORK/failover.json}"
fi

echo "gpsd failover run passed (seed=$SEED kills=$KILLS)"
