// Package repro's root benchmark suite: one testing.B benchmark per
// experiment of EXPERIMENTS.md (each regenerates the corresponding table in
// the quick configuration), plus micro-benchmarks for the performance-
// critical primitives (RPQ evaluation, learning, neighbourhood extraction,
// path enumeration).
//
// Run with:
//
//	go test -bench=. -benchmem
package repro

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/experiment"
	"repro/internal/graph"
	"repro/internal/interactive"
	"repro/internal/learn"
	"repro/internal/paths"
	"repro/internal/regex"
	"repro/internal/rpq"
	"repro/internal/user"
)

func benchConfig() experiment.Config { return experiment.Config{Quick: true, Seed: 1} }

// --- one benchmark per paper artefact --------------------------------------

// BenchmarkFigure1Learning regenerates experiment F1 (Figure 1, the
// motivating example).
func BenchmarkFigure1Learning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tbl := experiment.Figure1Learning(benchConfig()); len(tbl.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFigure2Interactions regenerates experiment F2 (Figure 2,
// interactive vs static labelling).
func BenchmarkFigure2Interactions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tbl := experiment.InteractiveVsStatic(benchConfig()); len(tbl.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFigure3Neighborhood regenerates experiment F3a (Figure 3(a,b),
// neighbourhood growth under zooming).
func BenchmarkFigure3Neighborhood(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tbl := experiment.NeighborhoodGrowth(benchConfig()); len(tbl.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFigure3PathValidation regenerates experiment F3c (Figure 3(c),
// the effect of path validation).
func BenchmarkFigure3PathValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tbl := experiment.PathValidationEffect(benchConfig()); len(tbl.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkInteractionsVsQuerySize regenerates experiment E1.
func BenchmarkInteractionsVsQuerySize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tbl := experiment.InteractionsVsQuerySize(benchConfig()); len(tbl.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkLearningTimeVsGraphSize regenerates experiment E2.
func BenchmarkLearningTimeVsGraphSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tbl := experiment.LearningTimeVsGraphSize(benchConfig()); len(tbl.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkStrategyComparison regenerates experiment E3.
func BenchmarkStrategyComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tbl := experiment.StrategyComparison(benchConfig()); len(tbl.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkAblationWitnessOrder regenerates ablation AB1.
func BenchmarkAblationWitnessOrder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tbl := experiment.AblationWitnessOrder(benchConfig()); len(tbl.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkAblationMergeOrder regenerates ablation AB2.
func BenchmarkAblationMergeOrder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tbl := experiment.AblationMergeOrder(benchConfig()); len(tbl.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkAblationNeighborhoodRadius regenerates ablation AB3.
func BenchmarkAblationNeighborhoodRadius(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tbl := experiment.AblationNeighborhoodRadius(benchConfig()); len(tbl.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// --- micro-benchmarks on the primitives -------------------------------------

func benchTransport(b *testing.B, size int) *graph.Graph {
	b.Helper()
	return dataset.Transport(dataset.TransportOptions{Rows: size, Cols: size, Seed: 1, FacilityRate: 0.4})
}

// BenchmarkRPQEvaluation measures product-graph evaluation of the goal
// query on a 10x10 transport network.
func BenchmarkRPQEvaluation(b *testing.B) {
	g := benchTransport(b, 10)
	q := regex.MustParse("(tram+bus)*.cinema")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(rpq.Evaluate(g, q)) == 0 {
			b.Fatal("no nodes selected")
		}
	}
}

// BenchmarkRPQEvaluationSharded measures the worker-pool product sweep on
// a 60x60 transport network (large enough to clear the engine's parallel
// threshold), against BenchmarkRPQEvaluationLargeSequential as baseline.
func BenchmarkRPQEvaluationSharded(b *testing.B) {
	g := benchTransport(b, 60)
	q := regex.MustParse("(tram+bus)*.cinema")
	workers := rpq.DefaultWorkers()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(rpq.NewWith(g, q, rpq.Options{Workers: workers}).Selected()) == 0 {
			b.Fatal("no nodes selected")
		}
	}
}

// BenchmarkRPQEvaluationLargeSequential is the sequential baseline of
// BenchmarkRPQEvaluationSharded.
func BenchmarkRPQEvaluationLargeSequential(b *testing.B) {
	g := benchTransport(b, 60)
	q := regex.MustParse("(tram+bus)*.cinema")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(rpq.New(g, q).Selected()) == 0 {
			b.Fatal("no nodes selected")
		}
	}
}

// BenchmarkRPQEvaluationCached measures evaluation through an EngineCache,
// the configuration the interactive loop actually runs in (the same
// candidate queries recur across iterations).
func BenchmarkRPQEvaluationCached(b *testing.B) {
	g := benchTransport(b, 10)
	q := regex.MustParse("(tram+bus)*.cinema")
	cache := rpq.NewCache(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(cache.Get(q).Selected()) == 0 {
			b.Fatal("no nodes selected")
		}
	}
}

// BenchmarkRPQWitness measures witness-path extraction for every selected
// node.
func BenchmarkRPQWitness(b *testing.B) {
	g := benchTransport(b, 10)
	q := regex.MustParse("(tram+bus)*.cinema")
	engine := rpq.New(g, q)
	nodes := engine.Selected()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, n := range nodes {
			if _, ok := engine.Witness(n); !ok {
				b.Fatal("missing witness")
			}
		}
	}
}

// BenchmarkLearnFigure1 measures one learning call on the paper's example.
func BenchmarkLearnFigure1(b *testing.B) {
	g := dataset.Figure1()
	pos, negs := dataset.Figure1Examples()
	sample := learn.NewSample()
	for n, w := range pos {
		sample.AddPositive(n, w)
	}
	for _, n := range negs {
		sample.AddNegative(n)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := learn.Learn(g, sample, learn.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLearnTransport measures learning on a 6x6 transport network with
// eight examples.
func BenchmarkLearnTransport(b *testing.B) {
	g := benchTransport(b, 6)
	goal := regex.MustParse("(tram+bus)*.cinema")
	engine := rpq.New(g, goal)
	sample := learn.NewSample()
	posSeen, negSeen := 0, 0
	for _, n := range g.Nodes() {
		if engine.Selects(n) && posSeen < 4 {
			if w, ok := user.WitnessWord(g, goal, n, 6); ok {
				sample.AddPositive(n, w)
				posSeen++
			}
		} else if !engine.Selects(n) && negSeen < 4 {
			sample.AddNegative(n)
			negSeen++
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := learn.Learn(g, sample, learn.Options{MaxPathLength: 6}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNeighborhoodExtraction measures radius-2 fragment extraction on
// a 10x10 transport network.
func BenchmarkNeighborhoodExtraction(b *testing.B) {
	g := benchTransport(b, 10)
	nodes := g.Nodes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := g.NeighborhoodAround(nodes[i%len(nodes)], 2, graph.NeighborhoodOptions{Directed: true})
		if n.Fragment.NumNodes() == 0 {
			b.Fatal("empty fragment")
		}
	}
}

// BenchmarkWordEnumeration measures bounded word enumeration (the
// informativeness primitive) on a 10x10 transport network.
func BenchmarkWordEnumeration(b *testing.B) {
	g := benchTransport(b, 10)
	nodes := g.Nodes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(paths.Words(g, nodes[i%len(nodes)], 5)) == 0 {
			b.Fatal("no words")
		}
	}
}

// BenchmarkInteractiveSession measures a full simulated interactive session
// on a 4x4 transport network.
func BenchmarkInteractiveSession(b *testing.B) {
	g := benchTransport(b, 4)
	goal := regex.MustParse("(tram+bus)*.cinema")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := user.NewSimulated(g, goal)
		tr, err := interactive.Run(g, u, interactive.Options{
			PathValidation:  true,
			MaxInteractions: g.NumNodes(),
			Learn:           learn.Options{MaxPathLength: 7},
		})
		if err != nil {
			b.Fatal(err)
		}
		if tr.Final == nil {
			b.Fatal("no query learned")
		}
	}
}

// BenchmarkLearnTransportReference is BenchmarkLearnTransport forced onto
// the map-based reference generalization path (the equivalence oracle),
// against which the dense engine's speedup is gated in CI (see gpsbench
// -learnbench / -learngate).
func BenchmarkLearnTransportReference(b *testing.B) {
	g := benchTransport(b, 6)
	goal := regex.MustParse("(tram+bus)*.cinema")
	engine := rpq.New(g, goal)
	sample := learn.NewSample()
	posSeen, negSeen := 0, 0
	for _, n := range g.Nodes() {
		if engine.Selects(n) && posSeen < 4 {
			if w, ok := user.WitnessWord(g, goal, n, 6); ok {
				sample.AddPositive(n, w)
				posSeen++
			}
		} else if !engine.Selects(n) && negSeen < 4 {
			sample.AddNegative(n)
			negSeen++
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := learn.Learn(g, sample, learn.Options{MaxPathLength: 6, Reference: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLearnMergeCheck measures the steady-state candidate-merge check
// of the dense generalization engine in isolation. The merge fold runs it
// O(n²) times per Learn call; it must report 0 allocs/op.
func BenchmarkLearnMergeCheck(b *testing.B) {
	g := benchTransport(b, 10)
	sample := learn.NewSample()
	goal := regex.MustParse("(tram+bus)*.cinema")
	engine := rpq.New(g, goal)
	posSeen, negSeen := 0, 0
	for _, n := range g.Nodes() {
		if engine.Selects(n) && posSeen < 6 {
			if w, ok := user.WitnessWord(g, goal, n, 6); ok {
				sample.AddPositive(n, w)
				posSeen++
			}
		} else if !engine.Selects(n) && negSeen < 6 {
			sample.AddNegative(n)
			negSeen++
		}
	}
	check, err := learn.NewMergeCheck(g, sample, learn.Options{MaxPathLength: 6})
	if err != nil {
		b.Fatal(err)
	}
	check.Run() // warm-up grows the pooled scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		check.Run()
	}
}
