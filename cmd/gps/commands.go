package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/interactive"
	"repro/internal/learn"
	"repro/internal/paths"
	"repro/internal/regex"
	"repro/internal/render"
	"repro/internal/user"
)

// graphFlags adds the common -graph / -figure1 / -format flags and returns
// a loader.
func graphFlags(fs *flag.FlagSet) func() (*graph.Graph, error) {
	path := fs.String("graph", "", "path to a graph file")
	format := fs.String("format", "text", "graph file format: text, csv, tsv or triples")
	figure1 := fs.Bool("figure1", false, "use the paper's Figure 1 graph")
	return func() (*graph.Graph, error) {
		if *figure1 {
			return dataset.Figure1(), nil
		}
		if *path == "" {
			return nil, fmt.Errorf("either -graph <file> or -figure1 is required")
		}
		f, err := os.Open(*path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		switch *format {
		case "text":
			return graph.ReadText(f)
		case "csv":
			return graph.ReadCSV(f, graph.CSVOptions{})
		case "tsv":
			return graph.ReadCSV(f, graph.CSVOptions{Comma: '\t'})
		case "triples":
			return graph.ReadTriples(f)
		default:
			return nil, fmt.Errorf("unknown graph format %q (want text, csv, tsv or triples)", *format)
		}
	}
}

func cmdEval(args []string) error {
	fs := flag.NewFlagSet("eval", flag.ExitOnError)
	load := graphFlags(fs)
	query := fs.String("query", "", "path query, e.g. \"(tram+bus)*.cinema\"")
	witness := fs.Bool("witness", false, "also print one witness path per selected node")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *query == "" {
		return fmt.Errorf("eval: -query is required")
	}
	g, err := load()
	if err != nil {
		return err
	}
	sys := core.New(g)
	res, err := sys.EvaluateString(*query)
	if err != nil {
		return err
	}
	fmt.Printf("query %s selects %d of %d nodes\n", res.Query, len(res.Nodes), g.NumNodes())
	for _, node := range res.Nodes {
		if *witness {
			fmt.Printf("  %s  via %s\n", node, paths.Path{Start: node, Edges: res.Witnesses[node]})
		} else {
			fmt.Printf("  %s\n", node)
		}
	}
	return nil
}

// exampleList collects repeated -positive / -negative flags.
type exampleList []string

func (l *exampleList) String() string     { return strings.Join(*l, ",") }
func (l *exampleList) Set(v string) error { *l = append(*l, v); return nil }

func cmdLearn(args []string) error {
	fs := flag.NewFlagSet("learn", flag.ExitOnError)
	load := graphFlags(fs)
	var positives, negatives exampleList
	fs.Var(&positives, "positive", "positive example, NODE or NODE=word.with.dots (repeatable)")
	fs.Var(&negatives, "negative", "negative example node (repeatable)")
	maxLen := fs.Int("maxlen", learn.DefaultMaxPathLength, "maximum witness path length")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := load()
	if err != nil {
		return err
	}
	sample := learn.NewSample()
	for _, p := range positives {
		node, word, hasWord := strings.Cut(p, "=")
		if hasWord {
			sample.AddPositive(graph.NodeID(node), strings.Split(word, "."))
		} else {
			sample.AddPositive(graph.NodeID(node), nil)
		}
	}
	for _, n := range negatives {
		sample.AddNegative(graph.NodeID(n))
	}
	res, err := learn.Learn(g, sample, learn.Options{MaxPathLength: *maxLen})
	if err != nil {
		return err
	}
	fmt.Printf("learned query: %s\n", res.Query)
	fmt.Printf("state merges:  %d (of %d candidates)\n", res.Merges, res.CandidateMerges)
	for _, node := range sample.PositiveNodes() {
		fmt.Printf("witness for %s: %s\n", node, strings.Join(res.Witnesses[node], "."))
	}
	selected := core.New(g).Evaluate(res.Query)
	fmt.Printf("selects: %v\n", selected.Nodes)
	return nil
}

func cmdInteractive(args []string) error {
	fs := flag.NewFlagSet("interactive", flag.ExitOnError)
	load := graphFlags(fs)
	goal := fs.String("goal", "", "goal query for the simulated user (omit with -human)")
	human := fs.Bool("human", false, "drive the session yourself from the terminal")
	validate := fs.Bool("validate", true, "enable the path-validation step (Figure 3c)")
	strategy := fs.String("strategy", "informative", "node-proposal strategy: informative, random, hybrid or disagreement")
	maxInteractions := fs.Int("max", 50, "maximum number of label interactions")
	maxLen := fs.Int("maxlen", learn.DefaultMaxPathLength, "path-length bound for witnesses and informativeness")
	seed := fs.Int64("seed", 1, "seed for the random strategy")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := load()
	if err != nil {
		return err
	}
	sys := core.New(g)

	var u user.User
	switch {
	case *human:
		u = newConsoleUser(os.Stdin, os.Stdout, g)
	case *goal != "":
		q, err := regex.Parse(*goal)
		if err != nil {
			return err
		}
		u = sys.SimulateUser(q)
	default:
		return fmt.Errorf("interactive: provide -goal for a simulated user or -human to drive the session yourself")
	}

	tr, err := sys.InteractiveSession(u, core.SessionConfig{
		Strategy:        *strategy,
		Seed:            *seed,
		PathValidation:  *validate,
		MaxInteractions: *maxInteractions,
		MaxPathLength:   *maxLen,
	})
	if err != nil {
		return err
	}
	printTranscript(tr)
	return nil
}

func printTranscript(tr *interactive.Transcript) {
	fmt.Printf("session ended: %s after %d labels (%d zooms, %d nodes pruned, %d positives propagated)\n",
		tr.Halt, tr.Labels(), tr.ZoomsTotal, tr.PrunedTotal, tr.ImpliedTotal)
	for i, inter := range tr.Interactions {
		word := ""
		if inter.ValidatedWord != nil {
			word = " path=" + strings.Join(inter.ValidatedWord, ".")
		}
		fmt.Printf("  %2d. %s -> %s (radius %d, %d zooms)%s  learned: %s\n",
			i+1, inter.Node, inter.Decision, inter.Radius, inter.Zooms, word, inter.Learned)
	}
	if tr.Final != nil {
		fmt.Printf("final query: %s\n", tr.Final)
	} else {
		fmt.Println("no consistent query learned")
	}
}

func cmdStatic(args []string) error {
	fs := flag.NewFlagSet("static", flag.ExitOnError)
	load := graphFlags(fs)
	goal := fs.String("goal", "", "goal query for the simulated user")
	maxLabels := fs.Int("max", 0, "maximum number of labels (0 = all nodes)")
	seed := fs.Int64("seed", 1, "seed for the exploration order")
	errorRate := fs.Float64("error", 0, "probability that the simulated user mislabels a node")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *goal == "" {
		return fmt.Errorf("static: -goal is required")
	}
	g, err := load()
	if err != nil {
		return err
	}
	q, err := regex.Parse(*goal)
	if err != nil {
		return err
	}
	sys := core.New(g)
	var u user.User = sys.SimulateUser(q)
	if *errorRate > 0 {
		u = user.NewNoisy(u, *errorRate, *seed)
	}
	res := sys.StaticSession(u, user.NewRandomChoice(*seed), *maxLabels)
	fmt.Printf("static labelling: %d labels, satisfied=%v, inconsistent=%v\n",
		res.Labels, res.Satisfied, res.Inconsistent)
	if res.Final != nil {
		fmt.Printf("final query: %s\n", res.Final)
	}
	return nil
}

func cmdGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	kind := fs.String("kind", "transport", "dataset kind: figure1, transport, random or scalefree")
	rows := fs.Int("rows", 4, "transport: grid rows")
	cols := fs.Int("cols", 4, "transport: grid columns")
	nodes := fs.Int("nodes", 100, "random/scalefree: number of nodes")
	seed := fs.Int64("seed", 1, "generation seed")
	out := fs.String("out", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var g *graph.Graph
	switch *kind {
	case "figure1":
		g = dataset.Figure1()
	case "transport":
		g = dataset.Transport(dataset.TransportOptions{Rows: *rows, Cols: *cols, Seed: *seed})
	case "random":
		g = dataset.Random(dataset.RandomOptions{Nodes: *nodes, Seed: *seed})
	case "scalefree":
		g = dataset.ScaleFree(dataset.ScaleFreeOptions{Nodes: *nodes, Seed: *seed})
	default:
		return fmt.Errorf("generate: unknown kind %q", *kind)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return g.WriteText(w)
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	load := graphFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := load()
	if err != nil {
		return err
	}
	fmt.Print(g.ComputeStats())
	return nil
}

func cmdRender(args []string) error {
	fs := flag.NewFlagSet("render", flag.ExitOnError)
	load := graphFlags(fs)
	dot := fs.Bool("dot", false, "emit Graphviz DOT instead of the text format")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := load()
	if err != nil {
		return err
	}
	if *dot {
		fmt.Print(render.DOT(g))
		return nil
	}
	return g.WriteText(os.Stdout)
}

func cmdNeighborhood(args []string) error {
	fs := flag.NewFlagSet("neighborhood", flag.ExitOnError)
	load := graphFlags(fs)
	node := fs.String("node", "", "centre node")
	radius := fs.Int("radius", 2, "neighbourhood radius")
	dot := fs.Bool("dot", false, "emit DOT instead of text")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *node == "" {
		return fmt.Errorf("neighborhood: -node is required")
	}
	g, err := load()
	if err != nil {
		return err
	}
	if !g.HasNode(graph.NodeID(*node)) {
		return fmt.Errorf("neighborhood: node %q not in graph", *node)
	}
	n := g.NeighborhoodAround(graph.NodeID(*node), *radius, graph.NeighborhoodOptions{Directed: true})
	var prev *graph.Neighborhood
	if *radius > 1 {
		prev = g.NeighborhoodAround(graph.NodeID(*node), *radius-1, graph.NeighborhoodOptions{Directed: true})
	}
	if *dot {
		fmt.Print(render.NeighborhoodDOT(n, prev))
	} else {
		fmt.Print(render.NeighborhoodASCII(n, prev))
	}
	return nil
}
