package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/paths"
	"repro/internal/regex"
	"repro/internal/user"
)

// withTempGraph writes the Figure 1 graph to a temporary file and returns
// its path.
func withTempGraph(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "figure1.graph")
	g := dataset.Figure1()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := g.WriteText(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCmdEval(t *testing.T) {
	if err := cmdEval([]string{"-figure1", "-query", "(tram+bus)*.cinema", "-witness"}); err != nil {
		t.Fatalf("cmdEval: %v", err)
	}
	if err := cmdEval([]string{"-figure1"}); err == nil {
		t.Fatal("missing -query should fail")
	}
	if err := cmdEval([]string{"-figure1", "-query", "((("}); err == nil {
		t.Fatal("invalid query should fail")
	}
	if err := cmdEval([]string{"-query", "a"}); err == nil {
		t.Fatal("missing graph should fail")
	}
	path := withTempGraph(t)
	if err := cmdEval([]string{"-graph", path, "-query", "cinema"}); err != nil {
		t.Fatalf("cmdEval with file: %v", err)
	}
	if err := cmdEval([]string{"-graph", path + ".missing", "-query", "cinema"}); err == nil {
		t.Fatal("missing file should fail")
	}
	if err := cmdEval([]string{"-graph", path, "-format", "bogus", "-query", "cinema"}); err == nil {
		t.Fatal("unknown format should fail")
	}
}

func TestCmdEvalCSVAndTriples(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "g.csv")
	if err := os.WriteFile(csvPath, []byte("N1,tram,N4\nN4,cinema,C1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdEval([]string{"-graph", csvPath, "-format", "csv", "-query", "tram.cinema"}); err != nil {
		t.Fatalf("csv eval: %v", err)
	}
	triplesPath := filepath.Join(dir, "g.nt")
	if err := os.WriteFile(triplesPath, []byte("<a> <knows> <b> .\n<b> <knows> <c> .\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdEval([]string{"-graph", triplesPath, "-format", "triples", "-query", "knows*"}); err != nil {
		t.Fatalf("triples eval: %v", err)
	}
	tsvPath := filepath.Join(dir, "g.tsv")
	if err := os.WriteFile(tsvPath, []byte("x\tlikes\ty\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdStats([]string{"-graph", tsvPath, "-format", "tsv"}); err != nil {
		t.Fatalf("tsv stats: %v", err)
	}
}

func TestCmdLearn(t *testing.T) {
	args := []string{
		"-figure1",
		"-positive", "N2=bus.tram.cinema",
		"-positive", "N6=cinema",
		"-negative", "N5",
	}
	if err := cmdLearn(args); err != nil {
		t.Fatalf("cmdLearn: %v", err)
	}
	// Auto witnesses (no '=' part).
	if err := cmdLearn([]string{"-figure1", "-positive", "N4", "-negative", "N5"}); err != nil {
		t.Fatalf("cmdLearn auto witness: %v", err)
	}
	// Inconsistent sample must surface the error.
	if err := cmdLearn([]string{"-figure1", "-positive", "R1", "-negative", "N5"}); err == nil {
		t.Fatal("inconsistent sample should fail")
	}
}

func TestCmdInteractiveSimulated(t *testing.T) {
	if err := cmdInteractive([]string{"-figure1", "-goal", "(tram+bus)*.cinema"}); err != nil {
		t.Fatalf("cmdInteractive: %v", err)
	}
	if err := cmdInteractive([]string{"-figure1"}); err == nil {
		t.Fatal("missing -goal and -human should fail")
	}
	if err := cmdInteractive([]string{"-figure1", "-goal", "((("}); err == nil {
		t.Fatal("invalid goal should fail")
	}
	if err := cmdInteractive([]string{"-figure1", "-goal", "cinema", "-strategy", "bogus"}); err == nil {
		t.Fatal("unknown strategy should fail")
	}
}

func TestCmdStatic(t *testing.T) {
	if err := cmdStatic([]string{"-figure1", "-goal", "restaurant", "-max", "4"}); err != nil {
		t.Fatalf("cmdStatic: %v", err)
	}
	if err := cmdStatic([]string{"-figure1"}); err == nil {
		t.Fatal("missing goal should fail")
	}
	if err := cmdStatic([]string{"-figure1", "-goal", "restaurant", "-error", "0.5"}); err != nil {
		t.Fatalf("cmdStatic noisy: %v", err)
	}
}

func TestCmdGenerateStatsRenderNeighborhood(t *testing.T) {
	out := filepath.Join(t.TempDir(), "city.graph")
	if err := cmdGenerate([]string{"-kind", "transport", "-rows", "3", "-cols", "3", "-out", out}); err != nil {
		t.Fatalf("cmdGenerate: %v", err)
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatalf("generated file missing: %v", err)
	}
	for _, kind := range []string{"figure1", "random", "scalefree"} {
		if err := cmdGenerate([]string{"-kind", kind, "-nodes", "20", "-out", filepath.Join(t.TempDir(), kind)}); err != nil {
			t.Fatalf("generate %s: %v", kind, err)
		}
	}
	if err := cmdGenerate([]string{"-kind", "bogus"}); err == nil {
		t.Fatal("unknown kind should fail")
	}
	if err := cmdStats([]string{"-graph", out}); err != nil {
		t.Fatalf("cmdStats: %v", err)
	}
	if err := cmdRender([]string{"-graph", out, "-dot"}); err != nil {
		t.Fatalf("cmdRender: %v", err)
	}
	if err := cmdRender([]string{"-graph", out}); err != nil {
		t.Fatalf("cmdRender text: %v", err)
	}
	if err := cmdNeighborhood([]string{"-figure1", "-node", "N2", "-radius", "3"}); err != nil {
		t.Fatalf("cmdNeighborhood: %v", err)
	}
	if err := cmdNeighborhood([]string{"-figure1", "-node", "N2", "-radius", "2", "-dot"}); err != nil {
		t.Fatalf("cmdNeighborhood dot: %v", err)
	}
	if err := cmdNeighborhood([]string{"-figure1", "-node", "missing"}); err == nil {
		t.Fatal("missing node should fail")
	}
	if err := cmdNeighborhood([]string{"-figure1"}); err == nil {
		t.Fatal("missing -node should fail")
	}
}

func TestExampleListFlag(t *testing.T) {
	var l exampleList
	if err := l.Set("a"); err != nil {
		t.Fatal(err)
	}
	if err := l.Set("b"); err != nil {
		t.Fatal(err)
	}
	if l.String() != "a,b" {
		t.Fatalf("String = %q", l.String())
	}
}

func TestConsoleUserLabeling(t *testing.T) {
	g := dataset.Figure1()
	n := g.NeighborhoodAround("N2", 2, graph.NeighborhoodOptions{Directed: true})

	// Invalid answer, then zoom, then yes.
	in := strings.NewReader("maybe\nz\n")
	var out bytes.Buffer
	u := newConsoleUser(in, &out, g)
	if d := u.LabelNode("N2", n, true); d != user.Zoom {
		t.Fatalf("expected zoom, got %v", d)
	}
	if !strings.Contains(out.String(), "please answer") {
		t.Fatalf("invalid input should be re-prompted:\n%s", out.String())
	}

	// Zoom refused when not allowed, then a no.
	u = newConsoleUser(strings.NewReader("z\nn\n"), &out, g)
	if d := u.LabelNode("N5", n, false); d != user.Negative {
		t.Fatalf("expected negative, got %v", d)
	}

	// EOF defaults to negative.
	u = newConsoleUser(strings.NewReader(""), &out, g)
	if d := u.LabelNode("N5", n, true); d != user.Negative {
		t.Fatalf("EOF should default to negative, got %v", d)
	}
}

func TestConsoleUserValidateAndSatisfied(t *testing.T) {
	g := dataset.Figure1()
	words := [][]string{{"bus"}, {"bus", "tram", "cinema"}}
	candidate := []string{"bus"}

	// Pick the second word explicitly.
	var out bytes.Buffer
	u := newConsoleUser(strings.NewReader("2\n"), &out, g)
	got := u.ValidatePath("N2", words, candidate)
	if paths.WordKey(got) != "bus.tram.cinema" {
		t.Fatalf("got %v", got)
	}

	// Empty line accepts the candidate; out-of-range then valid.
	u = newConsoleUser(strings.NewReader("\n"), &out, g)
	if got := u.ValidatePath("N2", words, candidate); paths.WordKey(got) != "bus" {
		t.Fatalf("empty input should accept candidate, got %v", got)
	}
	u = newConsoleUser(strings.NewReader("9\n1\n"), &out, g)
	if got := u.ValidatePath("N2", words, candidate); paths.WordKey(got) != "bus" {
		t.Fatalf("expected first word, got %v", got)
	}

	// Satisfied: nil query is never satisfying; yes/no answers respected.
	u = newConsoleUser(strings.NewReader("y\n"), &out, g)
	if u.Satisfied(nil) {
		t.Fatal("nil query cannot satisfy")
	}
	if !u.Satisfied(regex.MustParse("cinema")) {
		t.Fatal("expected yes")
	}
	u = newConsoleUser(strings.NewReader("blah\nn\n"), &out, g)
	if u.Satisfied(regex.MustParse("cinema")) {
		t.Fatal("expected no")
	}
	// EOF while asking defaults to satisfied (ends the session gracefully).
	u = newConsoleUser(strings.NewReader(""), &out, g)
	if !u.Satisfied(regex.MustParse("cinema")) {
		t.Fatal("EOF should end the session")
	}
}

func TestCmdInteractiveHumanScripted(t *testing.T) {
	// Drive the full human-mode session through a script: the generated
	// prompts go to a buffer, the answers come from the reader. We swap
	// os.Stdin/os.Stdout because cmdInteractive wires the console user to
	// them directly.
	script := "y\n\ny\nn\nn\ny\n" // label yes, accept path, not satisfied... then converge
	inR, inW, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inW.WriteString(script); err != nil {
		t.Fatal(err)
	}
	inW.Close()
	outR, outW, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	oldIn, oldOut := os.Stdin, os.Stdout
	os.Stdin, os.Stdout = inR, outW
	defer func() {
		os.Stdin, os.Stdout = oldIn, oldOut
		outW.Close()
		outR.Close()
	}()

	errRun := cmdInteractive([]string{"-figure1", "-human", "-max", "2"})
	os.Stdin, os.Stdout = oldIn, oldOut
	outW.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(outR); err != nil {
		t.Fatal(err)
	}
	if errRun != nil {
		t.Fatalf("cmdInteractive -human: %v\noutput:\n%s", errRun, out.String())
	}
	if !strings.Contains(out.String(), "session ended") {
		t.Fatalf("expected a session transcript, got:\n%s", out.String())
	}
}
