// Command gps is the terminal front-end of the GPS system: it evaluates
// path queries, learns queries from labelled examples, runs the interactive
// specification scenario (with a human at the keyboard or a simulated
// user), generates datasets and renders graphs.
//
// Usage:
//
//	gps eval -figure1 -query "(tram+bus)*.cinema"
//	gps eval -graph city.graph -query "bus*.cinema" -witness
//	gps learn -figure1 -positive N2=bus.tram.cinema -positive N6=cinema -negative N5
//	gps interactive -figure1 -goal "(tram+bus)*.cinema"      # simulated user
//	gps interactive -figure1 -human -validate                 # you answer y/n/z
//	gps static -figure1 -goal "(tram+bus)*.cinema"
//	gps generate -kind transport -rows 6 -cols 6 -seed 7 -out city.graph
//	gps stats -graph city.graph
//	gps render -graph city.graph -dot
//	gps neighborhood -figure1 -node N2 -radius 3
package main

import (
	"fmt"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "eval":
		err = cmdEval(os.Args[2:])
	case "learn":
		err = cmdLearn(os.Args[2:])
	case "interactive":
		err = cmdInteractive(os.Args[2:])
	case "static":
		err = cmdStatic(os.Args[2:])
	case "generate":
		err = cmdGenerate(os.Args[2:])
	case "stats":
		err = cmdStats(os.Args[2:])
	case "render":
		err = cmdRender(os.Args[2:])
	case "neighborhood":
		err = cmdNeighborhood(os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "gps: unknown command %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gps:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `gps — interactive path query specification on graph databases

Commands:
  eval          evaluate a path query and print the selected nodes
  learn         learn a query from labelled node examples
  interactive   run the interactive specification scenario (Figure 2)
  static        run the static-labelling scenario
  generate      generate a dataset (figure1, transport, random, scalefree)
  stats         print graph statistics
  render        render a graph as DOT or text
  neighborhood  show a node's neighbourhood fragment (Figure 3a/b)

Run 'gps <command> -h' for the flags of each command.
`)
}
