package main

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/graph"
	"repro/internal/paths"
	"repro/internal/regex"
	"repro/internal/render"
	"repro/internal/user"
)

// consoleUser implements user.User by asking a human at the terminal, which
// is this reproduction's stand-in for the demo's graphical interface: it
// prints the neighbourhood fragment (Figure 3a/b) and the prefix tree of
// candidate paths (Figure 3c) as text and reads y/n/z answers.
type consoleUser struct {
	in   *bufio.Scanner
	out  io.Writer
	g    *graph.Graph
	prev map[graph.NodeID]*graph.Neighborhood
}

func newConsoleUser(in io.Reader, out io.Writer, g *graph.Graph) *consoleUser {
	return &consoleUser{
		in:   bufio.NewScanner(in),
		out:  out,
		g:    g,
		prev: make(map[graph.NodeID]*graph.Neighborhood),
	}
}

// LabelNode implements user.User.
func (c *consoleUser) LabelNode(node graph.NodeID, n *graph.Neighborhood, canZoom bool) user.Decision {
	fmt.Fprintf(c.out, "\nShould %s be part of the query result?\n", node)
	fmt.Fprint(c.out, render.NeighborhoodASCII(n, c.prev[node]))
	c.prev[node] = n
	prompt := "[y]es / [n]o"
	if canZoom {
		prompt += " / [z]oom out"
	}
	for {
		fmt.Fprintf(c.out, "%s > ", prompt)
		if !c.in.Scan() {
			// EOF: be conservative and answer no.
			return user.Negative
		}
		switch strings.ToLower(strings.TrimSpace(c.in.Text())) {
		case "y", "yes":
			return user.Positive
		case "n", "no":
			return user.Negative
		case "z", "zoom":
			if canZoom {
				return user.Zoom
			}
			fmt.Fprintln(c.out, "cannot zoom further")
		default:
			fmt.Fprintln(c.out, "please answer y, n or z")
		}
	}
}

// ValidatePath implements user.User.
func (c *consoleUser) ValidatePath(node graph.NodeID, words [][]string, candidate []string) []string {
	fmt.Fprintf(c.out, "\nWhich path of %s are you interested in?\n", node)
	fmt.Fprint(c.out, render.PrefixTree(words, candidate))
	for i, w := range words {
		marker := " "
		if paths.WordKey(w) == paths.WordKey(candidate) {
			marker = "*"
		}
		fmt.Fprintf(c.out, " %s %2d. %s\n", marker, i+1, strings.Join(w, "."))
	}
	for {
		fmt.Fprintf(c.out, "path number (enter = accept the highlighted one) > ")
		if !c.in.Scan() {
			return candidate
		}
		text := strings.TrimSpace(c.in.Text())
		if text == "" {
			return candidate
		}
		idx, err := strconv.Atoi(text)
		if err == nil && idx >= 1 && idx <= len(words) {
			return words[idx-1]
		}
		fmt.Fprintf(c.out, "please enter a number between 1 and %d\n", len(words))
	}
}

// Satisfied implements user.User.
func (c *consoleUser) Satisfied(learned *regex.Expr) bool {
	if learned == nil {
		return false
	}
	fmt.Fprintf(c.out, "\nCurrently learned query: %s\n", learned)
	for {
		fmt.Fprint(c.out, "are you satisfied with this query? [y/n] > ")
		if !c.in.Scan() {
			return true
		}
		switch strings.ToLower(strings.TrimSpace(c.in.Text())) {
		case "y", "yes":
			return true
		case "n", "no":
			return false
		default:
			fmt.Fprintln(c.out, "please answer y or n")
		}
	}
}
