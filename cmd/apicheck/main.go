// Command apicheck enforces the v1 API error contract statically: every
// wire error written inside internal/service must carry one of the
// registered stable error codes.
//
// The contract is cheap to check because writeError folds all dynamic
// status upgrades (ErrStore -> 500 store_failure) inside itself, so every
// call site is supposed to pass a literal Code* constant:
//
//	writeError(w, http.StatusNotFound, CodeGraphNotFound, err)
//	writeRateLimited(w, CodeQuotaExceeded, err)
//
// apicheck parses the service package, collects the ErrorCode constants
// declared in errors.go, and fails (exit 1, one line per offence) when a
// writeError/writeRateLimited call passes anything else — a raw string, a
// variable, a computed expression. That turns "every error response has a
// stable machine-readable code" from a review convention into a CI gate.
//
// Usage:
//
//	apicheck [dir]    # dir defaults to internal/service
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
)

// codeArgIndex maps the guarded writer functions to the position of their
// ErrorCode argument.
var codeArgIndex = map[string]int{
	"writeError":       2,
	"writeRateLimited": 1,
}

func main() {
	dir := "internal/service"
	if len(os.Args) > 1 {
		dir = os.Args[1]
	}
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, nil, 0)
	if err != nil {
		fmt.Fprintf(os.Stderr, "apicheck: %v\n", err)
		os.Exit(2)
	}

	codes := map[string]bool{}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			collectCodes(file, codes)
		}
	}
	if len(codes) == 0 {
		fmt.Fprintf(os.Stderr, "apicheck: no ErrorCode constants found under %s\n", dir)
		os.Exit(2)
	}

	var offences []string
	calls := 0
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				// The writer functions' own bodies forward code variables
				// internally; the contract binds their call sites.
				if fd, ok := decl.(*ast.FuncDecl); ok {
					if _, isWriter := codeArgIndex[fd.Name.Name]; isWriter {
						continue
					}
				}
				ast.Inspect(decl, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					fn, ok := call.Fun.(*ast.Ident)
					if !ok {
						return true
					}
					idx, ok := codeArgIndex[fn.Name]
					if !ok {
						return true
					}
					calls++
					if idx >= len(call.Args) {
						offences = append(offences, fmt.Sprintf("%s: %s call with too few arguments",
							fset.Position(call.Pos()), fn.Name))
						return true
					}
					arg, ok := call.Args[idx].(*ast.Ident)
					if !ok || !codes[arg.Name] {
						offences = append(offences, fmt.Sprintf("%s: %s must be passed a declared Code* constant, got %s",
							fset.Position(call.Args[idx].Pos()), fn.Name, exprString(call.Args[idx])))
					}
					return true
				})
			}
		}
	}
	if calls == 0 {
		fmt.Fprintf(os.Stderr, "apicheck: no writeError/writeRateLimited calls found under %s — wrong directory?\n", dir)
		os.Exit(2)
	}
	if len(offences) > 0 {
		for _, o := range offences {
			fmt.Fprintf(os.Stderr, "apicheck: %s\n", o)
		}
		os.Exit(1)
	}
	fmt.Printf("apicheck: %d error-writing calls in %s all carry registered codes (%d codes declared)\n",
		calls, dir, len(codes))
}

// collectCodes records every constant of type ErrorCode declared in the
// file (const Code... ErrorCode = "...").
func collectCodes(file *ast.File, codes map[string]bool) {
	for _, decl := range file.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			if t, ok := vs.Type.(*ast.Ident); !ok || t.Name != "ErrorCode" {
				continue
			}
			for _, name := range vs.Names {
				if strings.HasPrefix(name.Name, "Code") {
					codes[name.Name] = true
				}
			}
		}
	}
}

// exprString renders an offending argument for the report without
// dragging in go/printer.
func exprString(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.BasicLit:
		return v.Value
	case *ast.SelectorExpr:
		return exprString(v.X) + "." + v.Sel.Name
	case *ast.CallExpr:
		return exprString(v.Fun) + "(...)"
	default:
		return fmt.Sprintf("%T", e)
	}
}
