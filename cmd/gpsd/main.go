// Command gpsd serves the interactive query-learning system over HTTP: a
// multi-tenant front-end that loads graphs, runs many concurrent learning
// sessions (manual or simulated) and evaluates path queries with sharded
// product reachability and a shared per-graph LRU engine cache.
//
// Usage:
//
//	gpsd                                  # listen on :8080, in-memory
//	gpsd -addr :9090 -shards 8            # custom port, 8 evaluation workers
//	gpsd -preload demo=figure1            # register a built-in dataset at boot
//	gpsd -preload big=transport:30x30     # sized transport grid
//	gpsd -data-dir /var/lib/gpsd          # durable: snapshots + journals,
//	                                      # crash recovery resumes sessions
//	gpsd -data-dir d -store-engine text   # JSONL engine (greppable journals)
//	gpsd -data-dir d -commit-interval 2ms # widen the group-commit batch window
//	gpsd -data-dir d -compact             # compact the journal at startup
//	gpsd -data-dir d -compact-interval 1m # compact live, periodically, while
//	                                      # serving (appends keep flowing)
//	gpsd -request-timeout 10s             # per-request deadline (SSE exempt)
//
// A durable gpsd takes an exclusive LOCK on its data directory, so a
// second daemon pointed at the same directory fails fast instead of
// corrupting it. See the README's "Service" and "Storage engines"
// sections for the API and on-disk layout.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/service"
	"repro/internal/store"
)

// crashFault arms the store's fault-injection hook from the environment:
// GPSD_FAULT_CRASH=<point> makes the daemon exit hard (no cleanup, no lock
// release — a faithful SIGKILL) the first time the store passes that named
// fault point. Used by the chaos harness to park crashes inside specific
// live-compaction phases; unset in normal operation.
func crashFault() func(string) error {
	point := os.Getenv("GPSD_FAULT_CRASH")
	if point == "" {
		return nil
	}
	return func(p string) error {
		if p == point {
			log.Printf("gpsd: GPSD_FAULT_CRASH: crashing at %s", p)
			os.Exit(3)
		}
		return nil
	}
}

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		shards      = flag.Int("shards", 0, "evaluation worker-pool size (0 = one per CPU, 1 = sequential)")
		cacheCap    = flag.Int("cache-cap", 0, "per-graph engine-cache capacity (0 = default)")
		maxSess     = flag.Int("max-sessions", 0, "live session limit (0 = default)")
		preload     = flag.String("preload", "", "comma-separated name=dataset graphs to register at boot (figure1, transport[:RxC], random[:N], scale-free[:N])")
		dataDir     = flag.String("data-dir", "", "durable data directory for graph snapshots and session journals (empty = in-memory only)")
		storeEngine = flag.String("store-engine", store.EngineKindBinary, "storage engine for -data-dir: binary (segmented log, group commit) or text (JSONL, one fsync per append)")
		commitIvl   = flag.Duration("commit-interval", 0, "binary engine: max extra latency an append may wait to share an fsync (0 = batch only what is already queued)")
		compact     = flag.Bool("compact", false, "compact the journal at startup (binary engine): drop removed sessions, collapse finished ones, retire dead segments")
		compactIvl  = flag.Duration("compact-interval", 0, "binary engine: run a live compaction this often while serving (0 = never); appends keep flowing during a pass")
		segSize     = flag.Int64("segment-size", 0, "binary engine: segment roll threshold in bytes (0 = default 4MiB)")
		reqTimeout  = flag.Duration("request-timeout", 30*time.Second, "per-request deadline for non-streaming endpoints (0 = unbounded)")
	)
	flag.Parse()

	var eng store.Engine
	if *dataDir != "" {
		// The lock outlives everything below: it is the first thing taken
		// and the last thing released, so two daemons can never interleave
		// writes into one directory.
		lock, err := store.AcquireLock(*dataDir)
		if err != nil {
			log.Fatalf("gpsd: %v", err)
		}
		defer func() {
			if err := lock.Release(); err != nil {
				log.Printf("gpsd: %v", err)
			}
		}()
		eng, err = store.OpenEngine(*dataDir, store.EngineOptions{
			Kind:           *storeEngine,
			CommitInterval: *commitIvl,
			SegmentSize:    *segSize,
			Fault:          crashFault(),
		})
		if err != nil {
			log.Fatalf("gpsd: %v", err)
		}
		defer eng.Close()
		if *compact {
			rep, err := eng.Compact()
			if err != nil {
				log.Fatalf("gpsd: compact %s: %v", *dataDir, err)
			}
			if rep.Supported {
				log.Printf("gpsd: compacted %s: %d sessions summarised, %d dropped, %d -> %d segments, %d -> %d bytes",
					*dataDir, rep.SessionsCompacted, rep.SessionsDropped,
					rep.SegmentsRetired, rep.SegmentsWritten, rep.BytesBefore, rep.BytesAfter)
			} else {
				log.Printf("gpsd: -compact: the %s engine has no compactable journal; nothing to do", eng.EngineName())
			}
		}
	} else if *compact {
		log.Fatalf("gpsd: -compact requires -data-dir")
	}
	srv := service.NewServer(service.Options{
		EvalWorkers:    *shards,
		CacheCapacity:  *cacheCap,
		MaxSessions:    *maxSess,
		Store:          eng,
		RequestTimeout: *reqTimeout,
	})
	if eng != nil {
		rep, err := srv.Recover()
		if err != nil {
			log.Fatalf("gpsd: recover %s: %v", *dataDir, err)
		}
		log.Printf("gpsd: recovered from %s (%s engine): %d graphs, %d finished sessions, %d resumed sessions",
			*dataDir, eng.EngineName(), rep.Graphs, rep.SessionsFinished, rep.SessionsResumed)
		for _, skipped := range rep.SessionsSkipped {
			log.Printf("gpsd: recovery skipped session %s", skipped)
		}
	}
	if *preload != "" {
		for _, arg := range strings.Split(*preload, ",") {
			name, spec, err := service.ParsePreload(strings.TrimSpace(arg))
			if err != nil {
				log.Fatalf("gpsd: -preload: %v", err)
			}
			g, err := service.BuildGraph(spec)
			if err != nil {
				log.Fatalf("gpsd: -preload %s: %v", name, err)
			}
			h, err := srv.Registry().Register(name, g)
			if err != nil {
				log.Fatalf("gpsd: -preload %s: %v", name, err)
			}
			log.Printf("gpsd: registered graph %q (%d nodes, %d edges)", name, h.Graph().NumNodes(), h.Graph().NumEdges())
		}
	}

	// The live-compaction ticker runs beside the serving loop: each pass
	// seals the active segment and rewrites only sealed ones, so appends
	// never stall beyond one group-commit batch window. ErrCompacting (an
	// admin-triggered pass already running) is not noise worth logging.
	compactDone := make(chan struct{})
	if *compactIvl > 0 {
		if eng == nil {
			log.Fatalf("gpsd: -compact-interval requires -data-dir")
		}
		ticker := time.NewTicker(*compactIvl)
		go func() {
			defer ticker.Stop()
			for {
				select {
				case <-compactDone:
					return
				case <-ticker.C:
				}
				rep, err := eng.Compact()
				switch {
				case errors.Is(err, store.ErrCompacting):
				case err != nil:
					log.Printf("gpsd: live compact: %v", err)
				case rep.Supported && rep.SegmentsRetired > 0:
					log.Printf("gpsd: live compact: %d sessions summarised, %d dropped, %d -> %d segments, %d -> %d bytes",
						rep.SessionsCompacted, rep.SessionsDropped,
						rep.SegmentsRetired, rep.SegmentsWritten, rep.BytesBefore, rep.BytesAfter)
				}
			}
		}()
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	// Drain open SSE streams when Shutdown begins, or they would hold the
	// graceful shutdown until its deadline.
	httpSrv.RegisterOnShutdown(srv.NotifyShutdown)
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("gpsd: listening on %s", *addr)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		log.Fatalf("gpsd: %v", err)
	case sig := <-sigCh:
		log.Printf("gpsd: %v, shutting down", sig)
		// Stop scheduling compactions before the engine closes under them.
		close(compactDone)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("gpsd: graceful shutdown: %v; forcing close", err)
			_ = httpSrv.Close()
		}
	}
}
