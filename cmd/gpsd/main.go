// Command gpsd serves the interactive query-learning system over HTTP: a
// multi-tenant front-end that loads graphs, runs many concurrent learning
// sessions (manual or simulated) and evaluates path queries with sharded
// product reachability and a shared per-graph LRU engine cache.
//
// Usage:
//
//	gpsd                                  # listen on :8080, in-memory
//	gpsd -addr :9090 -shards 8            # custom port, 8 evaluation workers
//	gpsd -preload demo=figure1            # register a built-in dataset at boot
//	gpsd -preload big=transport:30x30     # sized transport grid
//	gpsd -data-dir /var/lib/gpsd          # durable: snapshots + journals,
//	                                      # crash recovery resumes sessions
//	gpsd -data-dir d -store-engine text   # JSONL engine (greppable journals)
//	gpsd -data-dir d -commit-interval 2ms # widen the group-commit batch window
//	gpsd -data-dir d -compact             # compact the journal at startup
//	gpsd -data-dir d -compact-interval 1m # compact live, periodically, while
//	                                      # serving (appends keep flowing)
//	gpsd -request-timeout 10s             # per-request deadline (SSE exempt)
//	gpsd -api-keys keys.json              # API-key auth, per-tenant quotas and
//	                                      # fair-share admission; SIGHUP reloads
//	gpsd -admit-wait 5s                   # max fair-share queueing before 429
//	gpsd -log-format json -log-level debug # structured logs for ingestion
//	gpsd -pprof-addr localhost:6060       # net/http/pprof on its own listener
//	gpsd -data-dir d -replicate-from http://primary:8080
//	                                      # warm follower: stream the primary's
//	                                      # WAL, promote via /v1/admin/promote
//	gpsd -replicate-from URL -auto-promote-after 10s
//	                                      # ... or self-promote once the
//	                                      # primary is unreachable that long
//
// A durable gpsd takes an exclusive LOCK on its data directory, so a
// second daemon pointed at the same directory fails fast instead of
// corrupting it. See the README's "Service" and "Observability" sections
// for the API, metrics and log surfaces.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux; served only on -pprof-addr
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/store"
)

// newLogger builds the process logger from -log-format/-log-level and
// installs it as the slog default, so library code logging through
// slog.Default lands in the same stream.
func newLogger(format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("-log-level %q: want debug, info, warn or error", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	var h slog.Handler
	switch format {
	case "text":
		h = slog.NewTextHandler(os.Stderr, opts)
	case "json":
		h = slog.NewJSONHandler(os.Stderr, opts)
	default:
		return nil, fmt.Errorf("-log-format %q: want text or json", format)
	}
	log := slog.New(h)
	slog.SetDefault(log)
	return log, nil
}

// crashFault arms the store's fault-injection hook from the environment:
// GPSD_FAULT_CRASH=<point> makes the daemon exit hard (no cleanup, no lock
// release — a faithful SIGKILL) the first time the store passes that named
// fault point. Used by the chaos harness to park crashes inside specific
// live-compaction phases; unset in normal operation.
func crashFault(log *slog.Logger) func(string) error {
	point := os.Getenv("GPSD_FAULT_CRASH")
	if point == "" {
		return nil
	}
	return func(p string) error {
		if p == point {
			log.Error("GPSD_FAULT_CRASH: crashing", "fault_point", p)
			os.Exit(3)
		}
		return nil
	}
}

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		shards      = flag.Int("shards", 0, "evaluation worker-pool size (0 = one per CPU, 1 = sequential)")
		cacheCap    = flag.Int("cache-cap", 0, "per-graph engine-cache capacity (0 = default)")
		useIndex    = flag.Bool("index", true, "build per-graph reachability indexes in the background for faster /evaluate (per-graph opt-out: no_index in the load spec)")
		maxSess     = flag.Int("max-sessions", 0, "live session limit (0 = default)")
		preload     = flag.String("preload", "", "comma-separated name=dataset graphs to register at boot (figure1, transport[:RxC], random[:N], scale-free[:N])")
		dataDir     = flag.String("data-dir", "", "durable data directory for graph snapshots and session journals (empty = in-memory only)")
		storeEngine = flag.String("store-engine", store.EngineKindBinary, "storage engine for -data-dir: binary (segmented log, group commit) or text (JSONL, one fsync per append)")
		commitIvl   = flag.Duration("commit-interval", 0, "binary engine: max extra latency an append may wait to share an fsync (0 = batch only what is already queued)")
		compact     = flag.Bool("compact", false, "compact the journal at startup (binary engine): drop removed sessions, collapse finished ones, retire dead segments")
		compactIvl  = flag.Duration("compact-interval", 0, "binary engine: run a live compaction this often while serving (0 = never); appends keep flowing during a pass")
		segSize     = flag.Int64("segment-size", 0, "binary engine: segment roll threshold in bytes (0 = default 4MiB)")
		reqTimeout  = flag.Duration("request-timeout", 30*time.Second, "per-request deadline for non-streaming endpoints (0 = unbounded)")
		apiKeys     = flag.String("api-keys", "", "JSON keyring file mapping API keys to tenants and quotas; SIGHUP reloads it (empty = open mode, no auth)")
		admitWait   = flag.Duration("admit-wait", 0, "max time a session create may queue for fair-share admission before 429 (0 = default 2s)")
		logFormat   = flag.String("log-format", "text", "log output format: text or json")
		logLevel    = flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
		pprofAddr   = flag.String("pprof-addr", "", "serve net/http/pprof on this address (own listener, e.g. localhost:6060; empty = disabled)")
		replFrom    = flag.String("replicate-from", "", "run as a warm replication follower of this primary base URL (requires -data-dir with the binary engine; read-only until promoted)")
		autoPromote = flag.Duration("auto-promote-after", 0, "follower: promote automatically once the primary has been unreachable this long (0 = promote only via POST /v1/admin/promote)")
	)
	flag.Parse()

	log, err := newLogger(*logFormat, *logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gpsd: %v\n", err)
		os.Exit(2)
	}
	fatal := func(msg string, args ...any) {
		log.Error(msg, args...)
		os.Exit(1)
	}

	follower := *replFrom != ""
	if follower {
		if *dataDir == "" {
			fatal("-replicate-from requires -data-dir")
		}
		if *storeEngine != store.EngineKindBinary {
			fatal("-replicate-from needs the binary store engine", "store_engine", *storeEngine)
		}
		if *compact {
			fatal("-compact does not apply to a follower; compact after promotion (-compact-interval or POST /v1/admin/compact)")
		}
		if *preload != "" {
			fatal("-preload does not apply to a follower; graphs replicate from the primary")
		}
	}
	var (
		eng  store.Engine
		lock *store.Lock
	)
	if *dataDir != "" {
		// The lock outlives everything below: it is the first thing taken
		// and the last thing released, so two daemons can never interleave
		// writes into one directory. A follower locks its directory the
		// same way — the replica writes there, and promotion reopens it.
		lock, err = store.AcquireLock(*dataDir)
		if err != nil {
			fatal("data directory lock", "data_dir", *dataDir, "error", err)
		}
		defer func() {
			if err := lock.Release(); err != nil {
				log.Error("lock release", "data_dir", *dataDir, "error", err)
			}
		}()
	}
	if *dataDir != "" && !follower {
		eng, err = store.OpenEngine(*dataDir, store.EngineOptions{
			Kind:           *storeEngine,
			CommitInterval: *commitIvl,
			SegmentSize:    *segSize,
			Fault:          crashFault(log),
		})
		if err != nil {
			fatal("open store", "data_dir", *dataDir, "engine", *storeEngine, "error", err)
		}
		defer eng.Close()
		// Record the fencing epoch in the LOCK file for operators; the
		// text engine has no epochs and skips the note.
		if rep, ok := eng.(store.Replicator); ok {
			if err := lock.NoteEpoch(rep.Epoch()); err != nil {
				log.Warn("lock epoch note", "error", err)
			}
		}
		if *compact {
			rep, err := eng.Compact()
			if err != nil {
				fatal("startup compact", "data_dir", *dataDir, "error", err)
			}
			if rep.Supported {
				log.Info("compacted at startup",
					"data_dir", *dataDir,
					"sessions_compacted", rep.SessionsCompacted, "sessions_dropped", rep.SessionsDropped,
					"segments_retired", rep.SegmentsRetired, "segments_written", rep.SegmentsWritten,
					"bytes_before", rep.BytesBefore, "bytes_after", rep.BytesAfter)
			} else {
				log.Info("-compact: engine has no compactable journal; nothing to do", "engine", eng.EngineName())
			}
		}
	} else if *compact {
		fatal("-compact requires -data-dir")
	}
	var keyring *service.Keyring
	if *apiKeys != "" {
		keyring, err = service.OpenKeyring(*apiKeys)
		if err != nil {
			fatal("open keyring", "api_keys", *apiKeys, "error", err)
		}
		log.Info("api keys loaded", "api_keys", *apiKeys)
	}
	metrics := obs.NewRegistry()

	// The live-compaction ticker runs beside the serving loop: each pass
	// seals the active segment and rewrites only sealed ones, so appends
	// never stall beyond one group-commit batch window. ErrCompacting (an
	// admin-triggered pass already running) is not noise worth logging.
	// A follower starts the ticker at promotion time, over the engine the
	// promotion opened.
	compactDone := make(chan struct{})
	if *compactIvl > 0 && *dataDir == "" {
		fatal("-compact-interval requires -data-dir")
	}
	startCompactTicker := func(eng store.Engine) {
		if *compactIvl <= 0 {
			return
		}
		ticker := time.NewTicker(*compactIvl)
		go func() {
			defer ticker.Stop()
			for {
				select {
				case <-compactDone:
					return
				case <-ticker.C:
				}
				rep, err := eng.Compact()
				switch {
				case errors.Is(err, store.ErrCompacting):
				case err != nil:
					log.Error("live compact", "error", err)
				case rep.Supported && rep.SegmentsRetired > 0:
					log.Info("live compact done",
						"sessions_compacted", rep.SessionsCompacted, "sessions_dropped", rep.SessionsDropped,
						"segments_retired", rep.SegmentsRetired, "segments_written", rep.SegmentsWritten,
						"bytes_before", rep.BytesBefore, "bytes_after", rep.BytesAfter)
				}
			}
		}()
	}

	// bootServer is the primary boot sequence: assemble, recover, start
	// the compaction ticker. It runs at startup for a primary and at
	// promotion time for a follower — adoption of replicated sessions is
	// exactly crash recovery.
	bootServer := func(eng store.Engine) (*service.Server, error) {
		srv := service.NewServer(service.Options{
			EvalWorkers:    *shards,
			CacheCapacity:  *cacheCap,
			DisableIndex:   !*useIndex,
			MaxSessions:    *maxSess,
			Keyring:        keyring,
			AdmitWait:      *admitWait,
			Store:          eng,
			RequestTimeout: *reqTimeout,
			Metrics:        metrics,
			Logger:         log,
		})
		if eng != nil {
			rep, err := srv.Recover()
			if err != nil {
				return nil, fmt.Errorf("recover: %w", err)
			}
			log.Info("recovered",
				"data_dir", *dataDir, "engine", eng.EngineName(),
				"graphs", rep.Graphs, "sessions_finished", rep.SessionsFinished, "sessions_resumed", rep.SessionsResumed)
			for _, skipped := range rep.SessionsSkipped {
				log.Warn("recovery skipped session", "detail", skipped)
			}
			startCompactTicker(eng)
		}
		return srv, nil
	}

	var (
		handler        http.Handler
		notifyShutdown func()
		closePromoted  = func() {}
	)
	if follower {
		var (
			promotedMu  sync.Mutex
			promotedEng store.Engine
		)
		f, err := service.NewFollower(service.FollowerOptions{
			Dir:              *dataDir,
			PrimaryURL:       *replFrom,
			AutoPromoteAfter: *autoPromote,
			Keyring:          keyring,
			Metrics:          metrics,
			Logger:           log,
			OpenEngine: func() (store.Engine, error) {
				return store.OpenEngine(*dataDir, store.EngineOptions{
					Kind:           store.EngineKindBinary,
					CommitInterval: *commitIvl,
					SegmentSize:    *segSize,
					Fault:          crashFault(log),
				})
			},
			BuildServer: func(eng store.Engine) (*service.Server, error) {
				if rep, ok := eng.(store.Replicator); ok {
					if err := lock.NoteEpoch(rep.Epoch()); err != nil {
						log.Warn("lock epoch note", "error", err)
					}
				}
				srv, err := bootServer(eng)
				if err != nil {
					return nil, err
				}
				promotedMu.Lock()
				promotedEng = eng
				promotedMu.Unlock()
				return srv, nil
			},
		})
		if err != nil {
			fatal("follower", "primary", *replFrom, "error", err)
		}
		defer f.Close()
		handler = f
		notifyShutdown = f.NotifyShutdown
		closePromoted = func() {
			promotedMu.Lock()
			defer promotedMu.Unlock()
			if promotedEng != nil {
				if err := promotedEng.Close(); err != nil {
					log.Error("close promoted engine", "error", err)
				}
			}
		}
	} else {
		srv, err := bootServer(eng)
		if err != nil {
			fatal("boot", "data_dir", *dataDir, "error", err)
		}
		if *preload != "" {
			for _, arg := range strings.Split(*preload, ",") {
				name, spec, err := service.ParsePreload(strings.TrimSpace(arg))
				if err != nil {
					fatal("-preload", "error", err)
				}
				g, err := service.BuildGraph(spec)
				if err != nil {
					fatal("-preload build", "graph", name, "error", err)
				}
				h, err := srv.Registry().Register(name, g)
				if err != nil {
					fatal("-preload register", "graph", name, "error", err)
				}
				log.Info("registered graph", "graph", name, "nodes", h.Graph().NumNodes(), "edges", h.Graph().NumEdges())
			}
		}
		handler = srv.Handler()
		notifyShutdown = srv.NotifyShutdown
	}

	// The pprof listener is separate from the API listener on purpose:
	// profiles stay reachable when the API is saturated, and the API
	// address can be exposed without also exposing /debug/pprof.
	if *pprofAddr != "" {
		go func() {
			log.Info("pprof listening", "addr", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Error("pprof listener", "addr", *pprofAddr, "error", err)
			}
		}()
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	// Drain open SSE streams when Shutdown begins, or they would hold the
	// graceful shutdown until its deadline.
	httpSrv.RegisterOnShutdown(notifyShutdown)
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	role := "primary"
	if follower {
		role = "follower"
	}
	log.Info("listening", "addr", *addr, "role", role,
		"engine", engineName(eng), "data_dir", *dataDir, "log_format", *logFormat)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM, syscall.SIGHUP)
	for {
		select {
		case err := <-errCh:
			fatal("serve", "addr", *addr, "error", err)
		case sig := <-sigCh:
			// SIGHUP hot-reloads the keyring and keeps serving; anything else
			// begins the graceful shutdown.
			if sig == syscall.SIGHUP {
				if keyring == nil {
					log.Warn("SIGHUP ignored: no -api-keys file to reload")
					continue
				}
				if err := keyring.Reload(); err != nil {
					log.Error("keyring reload failed; keeping previous keys", "api_keys", *apiKeys, "error", err)
				} else {
					log.Info("keyring reloaded", "api_keys", *apiKeys)
				}
				continue
			}
			log.Info("shutting down", "signal", sig.String())
			// Stop scheduling compactions before the engine closes under them.
			close(compactDone)
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := httpSrv.Shutdown(ctx); err != nil {
				log.Error("graceful shutdown failed; forcing close", "error", err)
				_ = httpSrv.Close()
			}
			// A promoted follower's engine was opened at promotion time, not
			// boot, so its close is not among the boot-time defers.
			closePromoted()
			return
		}
	}
}

// engineName names the storage engine for the startup log line, "memory"
// when the daemon runs without -data-dir.
func engineName(eng store.Engine) string {
	if eng == nil {
		return "memory"
	}
	return eng.EngineName()
}
