package main

// Telemetry capture for the chaos and failover harnesses: every /metrics
// scrape the harness takes anyway is appended as one JSON line to a
// .jsonl artifact, so a failing CI run ships the full metric history of
// every daemon epoch alongside the violation list — which counter stopped
// moving, what the replication lag looked like right before the kill —
// instead of just the final summary.

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"
)

// telemetryLine is one scrape. Metrics holds the raw Prometheus
// exposition body verbatim: the artifact stays greppable and no counter
// is lost to a parsing allowlist.
type telemetryLine struct {
	UnixMs   int64  `json:"unix_ms"`
	Epoch    int    `json:"epoch"`
	Endpoint string `json:"endpoint"`
	Metrics  string `json:"metrics"`
}

// telemetryRecorder appends scrape lines to a .jsonl file. A nil recorder
// is valid and records nothing, so call sites never branch on whether
// telemetry was requested.
type telemetryRecorder struct {
	mu sync.Mutex
	f  *os.File
}

func newTelemetryRecorder(path string) (*telemetryRecorder, error) {
	if path == "" {
		return nil, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("telemetry: %w", err)
	}
	return &telemetryRecorder{f: f}, nil
}

// record appends one scrape. epoch is the harness's kill/failover epoch
// counter, endpoint names the daemon the scrape came from.
func (t *telemetryRecorder) record(epoch int, endpoint, metrics string) {
	if t == nil {
		return
	}
	line, err := json.Marshal(telemetryLine{
		UnixMs:   time.Now().UnixMilli(),
		Epoch:    epoch,
		Endpoint: endpoint,
		Metrics:  metrics,
	})
	if err != nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.f.Write(append(line, '\n'))
}

func (t *telemetryRecorder) Close() error {
	if t == nil {
		return nil
	}
	return t.f.Close()
}
