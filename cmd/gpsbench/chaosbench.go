package main

// Chaos harness for gpsd: prove that the daemon can be killed anywhere —
// including inside every phase of a live compaction — and come back with
// nothing lost. The harness spawns a real gpsd subprocess on a throwaway
// data directory, drives dozens of concurrent learning sessions over plain
// HTTP, and meanwhile a controller SIGKILLs the daemon at randomized
// instants (or arms GPSD_FAULT_CRASH so the daemon executes its own crash
// inside a chosen compaction phase), restarts it and verifies the resume
// invariants:
//
//   - every created session still exists after recovery, none is "failed";
//   - labels never go backwards and a finished session's view never
//     changes again, across any number of crashes;
//   - a pending question re-published after resume is identical (same
//     seq, kind and node) to the one that was pending before the crash;
//   - a hard death leaks the LOCK file and the next boot breaks it; a
//     clean SIGTERM removes it;
//   - the store never reports a corrupt frame, and live compaction ran
//     and retired segments while all of this was going on.
//
// After the kill budget is spent every session is driven to completion,
// the final views must survive one more clean restart byte-identical, and
// the whole run is replayed against an in-process oracle server on the
// text storage engine: same graphs, same sessions, same deterministic
// answer policy, zero crashes. Learned query, halt reason, status and
// label count must agree session by session — the crash-riddled binary
// daemon and the never-killed text server are equivalent or the run
// fails.
//
// Every client decision is a pure function of (seed, session spec index,
// question content), so a question re-asked after a crash always receives
// the same answer the lost run would have given — which is exactly what
// makes the oracle comparison meaningful.

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math/rand"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/service"
	"repro/internal/store"
	"repro/pkg/client"
)

// chaosPreloads are the graphs served by both the tortured daemon (via
// -preload) and the oracle server. figure1 is tiny; the transport grid
// gives manual sessions enough nodes to stay alive through many kills.
var chaosPreloads = []string{"demo=figure1", "grid=transport:8x8"}

// chaosFaultPhases are the GPSD_FAULT_CRASH points cycled by every third
// kill, parking a crash inside each phase of the live compaction swap.
var chaosFaultPhases = []string{
	"compact-scanned", "compact-written", "compact-linked",
	"compact-swap-mid", "compact-swapped", "compact-done",
}

type chaosOptions struct {
	gpsdPath  string
	addr      string
	kills     int
	sessions  int
	seed      int64
	out       string
	telemetry string
	verbose   bool
}

// chaosSummary is the JSON written by -chaosbench-out and printed at the
// end of a run.
type chaosSummary struct {
	Seed           int64    `json:"seed"`
	Kills          int      `json:"kills"`
	FaultKills     int      `json:"fault_kills"`
	Sessions       int      `json:"sessions"`
	AnswersPosted  int64    `json:"answers_posted"`
	CompactionRuns int64    `json:"compaction_runs"`
	SegmentsRetire int64    `json:"segments_retired"`
	TruncatedTails int64    `json:"truncated_journals"`
	Violations     []string `json:"violations"`
}

// chaosSpec is one session the harness creates and owns. The spec index —
// not the server-assigned session id — keys the deterministic answer
// policy, so the oracle run (which assigns its own ids) stays comparable.
type chaosSpec struct {
	idx   int
	graph string
	cfg   service.SessionConfig
}

// chaosSession tracks one live session across restarts. observe enforces
// the cross-crash invariants between *settled* views: a view with a
// published pending question or a terminal status. A resumed session
// rebuilds its state by re-driving the learning loop through the
// journaled answers, so mid-replay views legitimately show a partial
// label count — but a pending question is only published after every
// journaled answer has been replayed, which makes settled views
// comparable across any number of crashes.
type chaosSession struct {
	spec chaosSpec
	sid  string
	// relaxed drops the cross-crash monotonicity checks. The failover
	// harness sets it: replication is asynchronous, so a promotion can
	// lose the acked tail — labels regress, even a finished session can
	// re-open — and the deterministic answer policy re-drives the lost
	// suffix identically, which the final oracle comparison proves. The
	// single-node chaos run keeps the strict checks.
	relaxed bool

	mu         sync.Mutex
	seen       bool
	last       service.SessionView
	hasSettled bool
	settled    service.SessionView
}

// observe checks a freshly fetched view against the previous settled one
// and records it. Violations are collected, not fatal: the run continues
// so one bad resume surfaces every invariant it breaks.
func (cs *chaosSession) observe(v service.SessionView, rep *chaosReport) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.last, cs.seen = v, true
	if v.Status == service.StatusFailed {
		rep.violatef("session %s (spec %d) failed: %s", cs.sid, cs.spec.idx, v.Error)
	}
	if v.Pending == nil && v.Status != service.StatusDone {
		return // mid-run or mid-replay: not a comparison point
	}
	old, settled := cs.settled, cs.hasSettled
	cs.settled, cs.hasSettled = v, true
	if !settled || cs.relaxed {
		return
	}
	if old.Status == service.StatusDone {
		if !reflect.DeepEqual(old, v) {
			rep.violatef("finished session %s changed after a restart:\n  was %+v\n  now %+v", cs.sid, old, v)
		}
		return
	}
	if v.Labels < old.Labels {
		rep.violatef("session %s labels went backwards across settled views: %d -> %d", cs.sid, old.Labels, v.Labels)
	}
	if old.Pending != nil && v.Pending != nil {
		if v.Pending.Seq < old.Pending.Seq {
			rep.violatef("session %s pending question seq went backwards: %d -> %d", cs.sid, old.Pending.Seq, v.Pending.Seq)
		}
		if v.Pending.Seq == old.Pending.Seq &&
			(v.Pending.Kind != old.Pending.Kind || v.Pending.Node != old.Pending.Node) {
			rep.violatef("session %s question %d diverged after resume: was %s %q, now %s %q",
				cs.sid, old.Pending.Seq, old.Pending.Kind, old.Pending.Node, v.Pending.Kind, v.Pending.Node)
		}
	}
}

func (cs *chaosSession) view() (service.SessionView, bool) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.last, cs.seen
}

// chaosReport collects invariant violations from every goroutine.
type chaosReport struct {
	mu         sync.Mutex
	violations []string
}

func (r *chaosReport) violatef(format string, args ...any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.violations = append(r.violations, fmt.Sprintf(format, args...))
}

func (r *chaosReport) list() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.violations...)
}

// newChaosClient builds the typed API client the drivers share. Every
// driver tolerates transport errors (the server is being murdered on
// purpose) and retries; typed *client.APIError codes separate protocol
// answers from weather.
func newChaosClient(base string) *client.Client {
	return client.New(base, client.WithTimeout(5*time.Second))
}

// chaosHash mixes the run seed, the spec index and the question identity
// into the deterministic decision source.
func chaosHash(seed int64, specIdx int, parts ...string) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d", seed, specIdx)
	for _, p := range parts {
		h.Write([]byte("|"))
		h.Write([]byte(p))
	}
	return h.Sum64()
}

// chaosAnswer is the deterministic answer policy: a pure function of the
// question, so a crash-replayed question gets the crash-lost answer.
func chaosAnswer(seed int64, specIdx int, q *service.Question) service.Answer {
	h := chaosHash(seed, specIdx, fmt.Sprint(q.Seq), q.Kind, string(q.Node), q.Learned)
	a := service.Answer{Seq: q.Seq}
	switch q.Kind {
	case "label":
		switch {
		case q.CanZoom && h%11 == 0:
			a.Decision = "zoom"
		case h%3 == 0:
			a.Decision = "negative"
		default:
			a.Decision = "positive"
		}
	case "path":
		a.Accept = true
	case "satisfied":
		sat := h%16 == 0
		a.Satisfied = &sat
	}
	return a
}

// chaosRun owns the daemon subprocess, the drivers and the counters.
type chaosRun struct {
	opts    chaosOptions
	client  *client.Client
	rep     *chaosReport
	specs   []*chaosSession
	dataDir string
	logf    *os.File
	tel     *telemetryRecorder
	epoch   int

	cmd    *exec.Cmd
	exitCh chan error

	answers atomic.Int64
	// cur holds the monotonic store counters of the running daemon; on
	// process death they are folded into the cumulative totals (counters
	// restart from zero with the process).
	cur, totals chaosStoreStats
}

type chaosStoreStats struct {
	CompactionRuns  int64 `json:"compaction_runs"`
	RetiredSegments int64 `json:"retired_segments"`
	CorruptFrames   int64 `json:"corrupt_frames"`
	Truncated       int64 `json:"truncated_journals"`
}

func runChaosBench(opts chaosOptions) error {
	if opts.gpsdPath == "" {
		return fmt.Errorf("-chaosbench needs -chaos-gpsd <path-to-gpsd-binary>")
	}
	if opts.sessions < 2 {
		opts.sessions = 2
	}
	dir, err := os.MkdirTemp("", "gpsd-chaos-*")
	if err != nil {
		return err
	}
	// Keep the data directory and daemon log around when the run fails —
	// they are the post-mortem.
	keep := false
	defer func() {
		if keep {
			fmt.Fprintf(os.Stderr, "chaosbench: kept %s for inspection\n", dir)
			return
		}
		os.RemoveAll(dir)
	}()
	logf, err := os.Create(filepath.Join(dir, "gpsd.log"))
	if err != nil {
		return err
	}
	defer logf.Close()
	c := &chaosRun{
		opts:    opts,
		client:  newChaosClient("http://" + opts.addr),
		rep:     &chaosReport{},
		dataDir: filepath.Join(dir, "data"),
		logf:    logf,
	}
	if c.tel, err = newTelemetryRecorder(opts.telemetry); err != nil {
		return err
	}
	defer c.tel.Close()
	fmt.Printf("chaosbench: seed=%d kills=%d sessions=%d data=%s\n", opts.seed, opts.kills, opts.sessions, c.dataDir)
	faultKills, err := c.run()
	if err != nil {
		c.kill(syscall.SIGKILL)
		keep = true
		return err
	}
	sum := chaosSummary{
		Seed:           opts.seed,
		Kills:          opts.kills,
		FaultKills:     faultKills,
		Sessions:       opts.sessions,
		AnswersPosted:  c.answers.Load(),
		CompactionRuns: c.totals.CompactionRuns,
		SegmentsRetire: c.totals.RetiredSegments,
		TruncatedTails: c.totals.Truncated,
		Violations:     c.rep.list(),
	}
	if sum.Violations == nil {
		sum.Violations = []string{}
	}
	fmt.Printf("chaosbench: %d kills (%d in-compaction faults), %d answers, %d compaction runs, %d segments retired, %d torn tails truncated\n",
		sum.Kills, sum.FaultKills, sum.AnswersPosted, sum.CompactionRuns, sum.SegmentsRetire, sum.TruncatedTails)
	if opts.out != "" {
		data, _ := json.MarshalIndent(sum, "", "  ")
		if err := os.WriteFile(opts.out, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	if len(sum.Violations) > 0 {
		for _, v := range sum.Violations {
			fmt.Fprintf(os.Stderr, "chaosbench: VIOLATION: %s\n", v)
		}
		keep = true
		return fmt.Errorf("%d invariant violations", len(sum.Violations))
	}
	fmt.Println("chaosbench: zero invariant violations")
	return nil
}

// buildSpecs lays out the session mix: mostly manual sessions on the
// transport grid (long-lived, question-rich), a few manual on figure1 and
// a few simulated (they finish fast and feed the compactor summaries).
func buildSpecs(n int, seed int64) []*chaosSession {
	specs := make([]*chaosSession, 0, n)
	for i := 0; i < n; i++ {
		spec := chaosSpec{idx: i}
		switch {
		case i%4 == 3: // simulated: finishes on its own, durable summary fodder
			graph, goal := "demo", "(tram+bus)*.cinema"
			if i%8 == 3 {
				graph = "grid"
			}
			spec.graph = graph
			spec.cfg = service.SessionConfig{Graph: graph, Mode: "simulated", Goal: goal, Seed: seed + int64(i)}
		case i%4 == 2: // manual on the tiny graph: exhausts quickly
			spec.graph = "demo"
			spec.cfg = service.SessionConfig{Graph: "demo", Mode: "manual", MaxInteractions: 20}
		default: // manual on the grid: survives many kills
			spec.graph = "grid"
			spec.cfg = service.SessionConfig{Graph: "grid", Mode: "manual", MaxInteractions: 60}
		}
		specs = append(specs, &chaosSession{spec: spec})
	}
	return specs
}

func (c *chaosRun) run() (faultKills int, err error) {
	c.specs = buildSpecs(c.opts.sessions, c.opts.seed)
	rng := rand.New(rand.NewSource(c.opts.seed))

	// Boot, create every session once, then start the drivers; they run
	// through every crash, treating transport errors as weather.
	if err := c.start(""); err != nil {
		return 0, err
	}
	if err := c.createSessions(); err != nil {
		return 0, err
	}
	stopDrivers := make(chan struct{})
	var drivers sync.WaitGroup
	for _, cs := range c.specs {
		drivers.Add(1)
		go func(cs *chaosSession) {
			defer drivers.Done()
			c.drive(cs, stopDrivers)
		}(cs)
	}
	defer func() {
		close(stopDrivers)
		drivers.Wait()
	}()

	for kill := 0; kill < c.opts.kills; kill++ {
		fault := ""
		if kill%3 == 2 {
			fault = chaosFaultPhases[(kill/3)%len(chaosFaultPhases)]
			faultKills++
		}
		crashedEarly := false
		if kill > 0 {
			switch err := c.start(fault); {
			case err == nil:
				c.sweep()
			case fault != "" && err == errCrashedDuringBoot:
				// The armed phase fired while the daemon was still booting:
				// the kill already happened, skip straight to the next boot.
				crashedEarly = true
			default:
				return faultKills, fmt.Errorf("restart %d: %w", kill, err)
			}
		}
		if fault != "" && kill == 0 {
			// The first boot was clean; count this kill as a plain SIGKILL.
			fault = ""
			faultKills--
		}
		if crashedEarly {
			// Nothing left to kill this epoch.
		} else if fault != "" {
			// The daemon was started with GPSD_FAULT_CRASH=<phase>: it will
			// execute its own hard crash once live compaction reaches the
			// phase. Poll stats while waiting so the pre-crash compaction
			// counters are folded into the totals.
			deadline := time.Now().Add(8 * time.Second)
			for time.Now().Before(deadline) {
				if c.waitExit(300 * time.Millisecond) {
					break
				}
				c.readStats()
			}
			if !c.exited() {
				// The phase never fired (no compactable work); fall back.
				c.kill(syscall.SIGKILL)
				c.waitExit(5 * time.Second)
			}
		} else {
			time.Sleep(time.Duration(100+rng.Intn(700)) * time.Millisecond)
			c.readStats()
			c.kill(syscall.SIGKILL)
			if !c.waitExit(5 * time.Second) {
				return faultKills, fmt.Errorf("kill %d: gpsd survived SIGKILL", kill)
			}
		}
		c.finishEpoch()
		// A hard death must leak the LOCK file — the next boot proves the
		// stale lock is broken, not inherited.
		if _, err := os.Stat(filepath.Join(c.dataDir, "LOCK")); err != nil {
			c.rep.violatef("kill %d: LOCK file missing after a hard kill: %v", kill, err)
		}
		if c.opts.verbose {
			fmt.Printf("chaosbench: kill %d/%d done (fault=%q)\n", kill+1, c.opts.kills, fault)
		}
	}

	// Kill budget spent: recover once more and drive everything home.
	if err := c.start(""); err != nil {
		return faultKills, fmt.Errorf("final restart: %w", err)
	}
	c.sweep()
	if err := c.awaitAllDone(3 * time.Minute); err != nil {
		return faultKills, err
	}
	c.readStats()
	finals := make([]service.SessionView, len(c.specs))
	for i, cs := range c.specs {
		v, ok := cs.view()
		if !ok || v.Status != service.StatusDone {
			c.rep.violatef("session %s (spec %d) did not finish: %+v", cs.sid, i, v)
		}
		finals[i] = v
	}

	// Clean shutdown releases the LOCK; one more boot must present every
	// finished session byte-identical.
	c.kill(syscall.SIGTERM)
	if !c.waitExit(10 * time.Second) {
		return faultKills, fmt.Errorf("gpsd ignored SIGTERM")
	}
	c.finishEpoch()
	if _, err := os.Stat(filepath.Join(c.dataDir, "LOCK")); !os.IsNotExist(err) {
		c.rep.violatef("LOCK file survived a clean SIGTERM shutdown (err=%v)", err)
	}
	if err := c.start(""); err != nil {
		return faultKills, fmt.Errorf("verification restart: %w", err)
	}
	c.sweep()
	for i, cs := range c.specs {
		v, ok := cs.view()
		if ok && !reflect.DeepEqual(v, finals[i]) {
			c.rep.violatef("session %s changed across the final clean restart:\n  was %+v\n  now %+v", cs.sid, finals[i], v)
		}
	}
	c.readStats()
	c.kill(syscall.SIGTERM)
	c.waitExit(10 * time.Second)
	c.finishEpoch()
	if _, err := os.Stat(filepath.Join(c.dataDir, "LOCK")); !os.IsNotExist(err) {
		c.rep.violatef("LOCK file survived the final SIGTERM (err=%v)", err)
	}

	if c.totals.CompactionRuns < 1 {
		c.rep.violatef("live compaction never ran (compaction_runs=0 across all epochs)")
	}
	if c.totals.RetiredSegments < 1 {
		c.rep.violatef("live compaction never retired a segment")
	}

	// Oracle: the same specs, the same policy, the text engine, no
	// crashes. The tortured daemon must have learned exactly the same.
	oracle, err := c.runOracle()
	if err != nil {
		return faultKills, fmt.Errorf("oracle run: %w", err)
	}
	for i, want := range oracle {
		got := finals[i]
		if got.Learned != want.Learned || got.Halt != want.Halt || got.Labels != want.Labels || got.Status != want.Status {
			c.rep.violatef("spec %d diverged from the text-engine oracle:\n  daemon learned=%q halt=%q labels=%d status=%s\n  oracle learned=%q halt=%q labels=%d status=%s",
				i, got.Learned, got.Halt, got.Labels, got.Status, want.Learned, want.Halt, want.Labels, want.Status)
		}
	}
	return faultKills, nil
}

// errCrashedDuringBoot reports that a fault-armed daemon executed its
// crash before the harness ever saw it healthy: the compaction ticker can
// fire within milliseconds of the listener coming up, so an armed phase
// with plenty of compactable garbage may kill the process inside the boot
// window. That is a successful kill, not a failed boot.
var errCrashedDuringBoot = fmt.Errorf("gpsd crashed before becoming healthy")

// start boots a gpsd subprocess on the chaos data directory. fault, when
// non-empty, arms GPSD_FAULT_CRASH so the process crashes itself inside
// that live-compaction phase. Returns once /healthz answers — recovery
// runs before the listener, so a healthy daemon has already resumed every
// session.
func (c *chaosRun) start(fault string) error {
	args := []string{
		"-addr", c.opts.addr,
		"-data-dir", c.dataDir,
		"-store-engine", "binary",
		"-commit-interval", "2ms",
		"-segment-size", "4096",
		"-compact-interval", "150ms",
		"-max-sessions", "512",
		"-request-timeout", "10s",
		"-preload", strings.Join(chaosPreloads, ","),
	}
	cmd := exec.Command(c.opts.gpsdPath, args...)
	cmd.Stdout = c.logf
	cmd.Stderr = c.logf
	cmd.Env = os.Environ()
	if fault != "" {
		cmd.Env = append(cmd.Env, "GPSD_FAULT_CRASH="+fault)
	}
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("start gpsd: %w", err)
	}
	c.cmd = cmd
	c.exitCh = make(chan error, 1)
	go func(ch chan error) { ch <- cmd.Wait() }(c.exitCh)

	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if err := c.client.Health(context.Background()); err == nil {
			return nil
		}
		if c.exited() {
			if fault != "" {
				return errCrashedDuringBoot
			}
			return fmt.Errorf("gpsd exited before becoming healthy (see %s)", c.logf.Name())
		}
		time.Sleep(25 * time.Millisecond)
	}
	return fmt.Errorf("gpsd not healthy within 30s (see %s)", c.logf.Name())
}

func (c *chaosRun) kill(sig syscall.Signal) {
	if c.cmd != nil && c.cmd.Process != nil {
		_ = c.cmd.Process.Signal(sig)
	}
}

// waitExit waits up to d for the current daemon to exit.
func (c *chaosRun) waitExit(d time.Duration) bool {
	if c.exitCh == nil {
		return true
	}
	select {
	case <-c.exitCh:
		c.exitCh = nil
		return true
	case <-time.After(d):
		return false
	}
}

func (c *chaosRun) exited() bool { return c.waitExit(0) }

// readStats folds the daemon's store counters into the current epoch and
// flags any corrupt frame on the spot: crashes tear tails (truncated, by
// design) but must never corrupt a sealed frame. The counters come from
// the Prometheus exposition at /metrics, not the JSON stats, so the chaos
// run also proves the scrape surface stays accurate across every crash.
func (c *chaosRun) readStats() {
	body, err := c.client.Metrics(context.Background())
	if err != nil {
		return
	}
	c.tel.record(c.epoch, "http://"+c.opts.addr, body)
	stats, ok := parseStoreMetrics(body)
	if !ok {
		c.rep.violatef("/metrics scrape is missing the gpsd_store_* counters")
		return
	}
	if stats.CorruptFrames > 0 && c.cur.CorruptFrames == 0 {
		c.rep.violatef("store reports %d corrupt frames (via /metrics)", stats.CorruptFrames)
	}
	c.cur = stats
}

// parseStoreMetrics pulls the store counters the chaos invariants need out
// of a raw /metrics exposition body.
func parseStoreMetrics(body string) (chaosStoreStats, bool) {
	var s chaosStoreStats
	found := false
	for _, line := range strings.Split(body, "\n") {
		if line == "" || line[0] == '#' {
			continue
		}
		var dst *int64
		switch {
		case strings.HasPrefix(line, "gpsd_store_compaction_runs_total"):
			dst = &s.CompactionRuns
		case strings.HasPrefix(line, "gpsd_store_retired_segments_total"):
			dst = &s.RetiredSegments
		case strings.HasPrefix(line, "gpsd_store_corrupt_frames_total"):
			dst = &s.CorruptFrames
		case strings.HasPrefix(line, "gpsd_store_truncated_journals_total"):
			dst = &s.Truncated
		default:
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			continue
		}
		*dst = int64(v)
		found = true
	}
	return s, found
}

// finishEpoch folds the dead process's last observed counters into the
// cumulative totals (every boot restarts the in-memory counters at zero).
func (c *chaosRun) finishEpoch() {
	c.totals.CompactionRuns += c.cur.CompactionRuns
	c.totals.RetiredSegments += c.cur.RetiredSegments
	c.totals.Truncated += c.cur.Truncated
	c.cur = chaosStoreStats{}
	c.epoch++
}

func (c *chaosRun) createSessions() error {
	return createChaosSessions(c.client, c.specs, c.rep)
}

// createChaosSessions creates every spec's session once, retrying through
// transient weather, and records the assigned ids.
func createChaosSessions(cli *client.Client, specs []*chaosSession, rep *chaosReport) error {
	for _, cs := range specs {
		var lastErr error
		for attempt := 0; attempt < 20; attempt++ {
			v, err := cli.CreateSession(context.Background(), cs.spec.cfg)
			if err == nil {
				cs.sid = v.ID
				cs.observe(v, rep)
				lastErr = nil
				break
			}
			lastErr = fmt.Errorf("create session (spec %d): %w", cs.spec.idx, err)
			time.Sleep(50 * time.Millisecond)
		}
		if lastErr != nil {
			return lastErr
		}
	}
	return nil
}

// sweep refetches every session right after a recovery: each must exist
// (or the daemon lost a session) and each view must satisfy the
// cross-crash invariants against the last one the harness saw.
func (c *chaosRun) sweep() {
	sweepChaos(c.client, c.specs, c.rep)
}

// sweepChaos refetches every session right after a recovery or promotion:
// each must exist or the daemon lost a session.
func sweepChaos(cli *client.Client, specs []*chaosSession, rep *chaosReport) {
	for _, cs := range specs {
		if cs.sid == "" {
			continue
		}
		var v service.SessionView
		var err error
		for attempt := 0; attempt < 5; attempt++ {
			v, err = cli.Session(context.Background(), cs.sid)
			if err == nil || client.CodeOf(err) != "" {
				break // a typed code is a protocol answer, not transport weather
			}
			time.Sleep(50 * time.Millisecond)
		}
		if client.IsCode(err, service.CodeSessionNotFound) {
			rep.violatef("session %s (spec %d) vanished after recovery", cs.sid, cs.spec.idx)
			continue
		}
		if err != nil {
			continue // the controller may already be killing again
		}
		cs.observe(v, rep)
	}
}

// drive answers one session's questions until it finishes or the chaos
// run stops.
func (c *chaosRun) drive(cs *chaosSession, stop <-chan struct{}) {
	driveChaos(c.client, cs, c.rep, &c.answers, c.opts.seed, stop)
}

// driveChaos answers one session's questions until it finishes or the run
// stops. Transport errors, conflicts (an answer racing a restart's
// replay), deadline hits and not-primary/fenced rejections (mid-failover
// weather) are expected and retried; any other typed API error is a
// violation. Shared between the single-node chaos harness and the
// failover harness.
func driveChaos(cli *client.Client, cs *chaosSession, rep *chaosReport, answers *atomic.Int64, seed int64, stop <-chan struct{}) {
	for {
		select {
		case <-stop:
			return
		default:
		}
		v, err := cli.Session(context.Background(), cs.sid)
		if err != nil {
			time.Sleep(20 * time.Millisecond)
			continue
		}
		cs.observe(v, rep)
		if v.Status == service.StatusDone || v.Status == service.StatusFailed {
			if !cs.relaxed {
				return
			}
			// Relaxed (failover) mode: "done" is not final. The terminal
			// tail was acked by the primary but may not have reached the
			// follower before the next kill, in which case the promoted
			// successor re-opens the session at its last replicated
			// question — with this driver gone, nobody would ever drive it
			// home again. Keep watching at a gentle cadence and fall back
			// into the answer loop if the status regresses to running; the
			// deterministic policy regenerates the exact same tail.
			select {
			case <-stop:
				return
			case <-time.After(250 * time.Millisecond):
			}
			continue
		}
		if v.Pending != nil {
			ans := chaosAnswer(seed, cs.spec.idx, v.Pending)
			_, err := cli.Answer(context.Background(), cs.sid, ans)
			switch code := client.CodeOf(err); {
			case err == nil:
				answers.Add(1)
			case code == service.CodeConflict || code == service.CodeDeadlineExceeded:
				// Raced a restart replay or a request deadline; re-poll.
			case code == service.CodeNotPrimary || code == service.CodeFenced:
				// Mid-failover: the request landed on a follower or a deposed
				// primary. The client re-resolves on its own; re-poll.
			case code == "":
				// Transport error — indeterminate: the crash may or may not
				// have persisted the answer. The next poll sees whichever
				// question is pending and the policy regenerates the same
				// answer either way.
			default:
				rep.violatef("session %s: answer for question %d failed: %v", cs.sid, ans.Seq, err)
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// awaitAllDone polls until every session has finished (the drivers are
// doing the answering).
func (c *chaosRun) awaitAllDone(timeout time.Duration) error {
	return awaitChaosDone(c.specs, timeout)
}

func awaitChaosDone(specs []*chaosSession, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		done := 0
		for _, cs := range specs {
			if v, ok := cs.view(); ok && (v.Status == service.StatusDone || v.Status == service.StatusFailed) {
				done++
			}
		}
		if done == len(specs) {
			return nil
		}
		time.Sleep(100 * time.Millisecond)
	}
	return fmt.Errorf("sessions still running after %s", timeout)
}

func (c *chaosRun) runOracle() ([]service.SessionView, error) {
	return runChaosOracle(c.specs, c.opts.seed)
}

// runChaosOracle replays every spec against an in-process server on the
// text storage engine — same graphs, same deterministic answers, no
// crashes — and returns the final views in spec order. Shared between the
// single-node chaos harness and the failover harness: both must converge
// to exactly this state.
func runChaosOracle(specs []*chaosSession, seed int64) ([]service.SessionView, error) {
	dir, err := os.MkdirTemp("", "gpsd-chaos-oracle-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	eng, err := store.OpenEngine(dir, store.EngineOptions{Kind: store.EngineKindText})
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	srv := service.NewServer(service.Options{MaxSessions: 512, Store: eng})
	for _, p := range chaosPreloads {
		name, spec, err := service.ParsePreload(p)
		if err != nil {
			return nil, err
		}
		g, err := service.BuildGraph(spec)
		if err != nil {
			return nil, err
		}
		if _, err := srv.Registry().Register(name, g); err != nil {
			return nil, err
		}
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	oc := newChaosClient(ts.URL)

	out := make([]service.SessionView, len(specs))
	var wg sync.WaitGroup
	errs := make([]error, len(specs))
	for i, cs := range specs {
		v, err := oc.CreateSession(context.Background(), cs.spec.cfg)
		if err != nil {
			return nil, fmt.Errorf("oracle create spec %d: %w", i, err)
		}
		wg.Add(1)
		go func(i int, sid string, specIdx int) {
			defer wg.Done()
			out[i], errs[i] = driveOracle(oc, sid, specIdx, seed)
		}(i, v.ID, cs.spec.idx)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// driveOracle answers one oracle session to completion with the shared
// deterministic policy.
func driveOracle(oc *client.Client, sid string, specIdx int, seed int64) (service.SessionView, error) {
	deadline := time.Now().Add(3 * time.Minute)
	for time.Now().Before(deadline) {
		v, err := oc.Session(context.Background(), sid)
		if err != nil {
			return v, fmt.Errorf("oracle session %s: %w", sid, err)
		}
		if v.Status == service.StatusDone || v.Status == service.StatusFailed {
			return v, nil
		}
		if v.Pending != nil {
			ans := chaosAnswer(seed, specIdx, v.Pending)
			if _, err := oc.Answer(context.Background(), sid, ans); err != nil && !client.IsCode(err, service.CodeConflict) {
				return v, fmt.Errorf("oracle session %s: answer failed: %w", sid, err)
			}
			continue
		}
		time.Sleep(2 * time.Millisecond)
	}
	return service.SessionView{}, fmt.Errorf("oracle session %s did not finish", sid)
}
