package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/dataset"
	"repro/internal/regex"
	"repro/internal/rpq"
	"repro/internal/rpq/index"
)

// Index benchmark: -indexbench measures the /evaluate product sweep on the
// large transport graph with and without the precomputed reachability
// index, in one process on one machine, and writes the per-query and
// median speedups to a JSON summary. -indexgate reads such a summary and
// fails below a ratio floor — a same-machine two-run comparison, immune to
// the machine drift that plagues absolute ns/op baselines.

// indexBenchQueries is the /evaluate workload: star-heavy reachability
// queries (where the closure jumps collapse the grid diameter) plus
// concatenation-only ones (where only the viability prune and the bitset
// sweep help), so the median speedup reflects a mixed diet rather than the
// index's best case.
var indexBenchQueries = []string{
	"(tram+bus)*.cinema",
	"(tram+bus)*.restaurant",
	"tram*.cinema",
	"bus*.museum",
	"(tram+bus)*.(cinema+museum)",
	"tram.bus.tram.cinema",
	"(tram.bus)*.park",
}

// indexBenchIters is the per-mode sample count per query; odd so the
// median is one observed run, interleaved so both modes share any thermal
// or scheduling drift.
const indexBenchIters = 9

// indexQueryResult is one query's row in the JSON summary.
type indexQueryResult struct {
	Query         string  `json:"query"`
	UnindexedNsOp float64 `json:"unindexed_ns_per_op"`
	IndexedNsOp   float64 `json:"indexed_ns_per_op"`
	Speedup       float64 `json:"speedup"`
}

// indexBenchSummary is the -indexbench JSON payload. MedianSpeedup is the
// number -indexgate gates on; IndexedP99Us is the tail of every indexed
// evaluation observed across the whole workload.
type indexBenchSummary struct {
	Graph         string             `json:"graph"`
	IndexStats    index.Stats        `json:"index_stats"`
	Queries       []indexQueryResult `json:"queries"`
	MedianSpeedup float64            `json:"median_speedup"`
	IndexedP99Us  float64            `json:"indexed_p99_us"`
}

func medianOf(v []float64) float64 {
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	m := s[len(s)/2]
	if len(s)%2 == 0 {
		m = (s[len(s)/2-1] + s[len(s)/2]) / 2
	}
	return m
}

// runIndexBench measures indexed vs unindexed evaluation and writes the
// summary to outPath.
func runIndexBench(outPath string, seed int64) error {
	g := dataset.Transport(dataset.TransportOptions{Rows: 60, Cols: 60, Seed: seed, FacilityRate: 0.3})
	buildStart := time.Now()
	idx := index.Build(g.Indexed(), index.Options{})
	fmt.Printf("index built in %.0fms: %s\n", time.Since(buildStart).Seconds()*1000, func() string {
		st := idx.Stats()
		return fmt.Sprintf("%d bytes, %d closed labels, %d landmarks, %d masks",
			st.Bytes, st.ClosedLabels, st.Landmarks, st.DistinctMasks)
	}())

	results := make([]indexQueryResult, 0, len(indexBenchQueries))
	speedups := make([]float64, 0, len(indexBenchQueries))
	var indexedNs []float64
	for _, qs := range indexBenchQueries {
		q := regex.MustParse(qs)
		// Equivalence pre-check and DFA warm-up: the compiled DFA is
		// globally memoised, so after these two builds the timed loops
		// compare only the product sweeps.
		plain := rpq.New(g, q)
		indexed := rpq.NewWith(g, q, rpq.Options{Index: idx})
		if !plain.SameSelection(indexed) {
			return fmt.Errorf("indexbench: %s: indexed selection diverges from unindexed", qs)
		}
		var unNs, inNs []float64
		for i := 0; i < indexBenchIters; i++ {
			t0 := time.Now()
			e := rpq.New(g, q)
			unNs = append(unNs, float64(time.Since(t0).Nanoseconds()))
			t0 = time.Now()
			ei := rpq.NewWith(g, q, rpq.Options{Index: idx})
			d := float64(time.Since(t0).Nanoseconds())
			inNs = append(inNs, d)
			indexedNs = append(indexedNs, d)
			if len(e.Selected()) != len(ei.Selected()) {
				return fmt.Errorf("indexbench: %s: selection count diverged mid-run", qs)
			}
		}
		row := indexQueryResult{
			Query:         qs,
			UnindexedNsOp: medianOf(unNs),
			IndexedNsOp:   medianOf(inNs),
		}
		row.Speedup = row.UnindexedNsOp / row.IndexedNsOp
		results = append(results, row)
		speedups = append(speedups, row.Speedup)
		fmt.Printf("%-30s %12.0f ns unindexed %12.0f ns indexed %8.1fx\n",
			qs, row.UnindexedNsOp, row.IndexedNsOp, row.Speedup)
	}

	sort.Float64s(indexedNs)
	pi := (len(indexedNs) * 99) / 100
	if pi >= len(indexedNs) {
		pi = len(indexedNs) - 1
	}
	p99 := indexedNs[pi]
	summary := indexBenchSummary{
		Graph:         fmt.Sprintf("transport-60x60 (%d nodes, %d edges)", g.NumNodes(), g.NumEdges()),
		IndexStats:    idx.Stats(),
		Queries:       results,
		MedianSpeedup: medianOf(speedups),
		IndexedP99Us:  p99 / 1000,
	}
	fmt.Printf("median speedup %.1fx, indexed p99 %.0fus\n", summary.MedianSpeedup, summary.IndexedP99Us)
	data, err := json.MarshalIndent(summary, "", "  ")
	if err != nil {
		return fmt.Errorf("indexbench: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return fmt.Errorf("indexbench: %w", err)
	}
	fmt.Printf("wrote %s\n", outPath)
	appendBenchHistory(outPath, summary)
	return nil
}

// runIndexGate fails when the summary's indexed-vs-unindexed median
// speedup is below min. Both sides of the ratio come from one -indexbench
// run on one machine, so the gate cannot be tripped by hardware drift.
func runIndexGate(path string, min float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("indexgate: %w", err)
	}
	var summary indexBenchSummary
	if err := json.Unmarshal(data, &summary); err != nil {
		return fmt.Errorf("indexgate: %s: %w", path, err)
	}
	if len(summary.Queries) == 0 {
		return fmt.Errorf("indexgate: %s: no query results", path)
	}
	fmt.Printf("indexgate: median speedup %.2fx (floor %.2fx), indexed p99 %.0fus over %s\n",
		summary.MedianSpeedup, min, summary.IndexedP99Us, summary.Graph)
	printTrend(path, "median speedup", "x", false, floatFieldFromSummary("median_speedup"))
	if summary.MedianSpeedup < min {
		return fmt.Errorf("indexgate: median indexed speedup %.2fx below floor %.2fx", summary.MedianSpeedup, min)
	}
	fmt.Println("indexgate: ok")
	return nil
}
