// Command gpsbench regenerates every experiment of EXPERIMENTS.md: the
// figure-level reproductions of the demo paper (F1, F2, F3a, F3c), the
// companion-style quantitative evaluation (E1, E2, E3) and the ablations
// (AB1-AB3). By default it runs the quick configuration used in CI; -full
// switches to the larger graphs reported in EXPERIMENTS.md.
//
// Usage:
//
//	gpsbench              # run every experiment, quick configuration
//	gpsbench -exp f1,e2   # run a subset
//	gpsbench -full        # full-size graphs (minutes)
//	gpsbench -csv         # also emit each table as CSV
//	gpsbench -list        # list experiment identifiers
//	gpsbench -rpqbench    # RPQ micro-benchmarks -> BENCH_rpq.json
//	gpsbench -rpqgate BENCH_rpq.json    # same-machine cached/sharded ratio gate
//	gpsbench -indexbench  # indexed vs unindexed /evaluate -> BENCH_index.json
//	gpsbench -indexgate BENCH_index.json  # indexed speedup ratio gate
//	gpsbench -benchcmp BENCH_rpq.json   # allocs/op gate vs BENCH_baseline.json
//	gpsbench -learnbench  # learner benchmarks -> BENCH_learn.json
//	gpsbench -learngate BENCH_learn.json  # dense-vs-reference speedup gate
//	gpsbench -loadbench -load-gpsd ./gpsd  # multi-tenant fairness load -> BENCH_load.json
//	gpsbench -loadgate BENCH_load.json     # fairness gate over a load summary
//	gpsbench -chaosbench -chaos-gpsd ./gpsd  # crash-anywhere chaos vs oracle
//	gpsbench -failover -chaos-gpsd ./gpsd    # primary/follower failover chaos
//	gpsbench -smokedrive eval -smoke-base http://127.0.0.1:8080  # typed-client smoke checks
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiment"
)

func main() {
	var (
		expList    = flag.String("exp", "", "comma-separated experiment ids to run (default: all)")
		full       = flag.Bool("full", false, "run the full-size configuration instead of the quick one")
		seed       = flag.Int64("seed", 1, "seed for all pseudo-random choices")
		csv        = flag.Bool("csv", false, "also print each result table as CSV")
		list       = flag.Bool("list", false, "list the available experiments and exit")
		rpqBench   = flag.Bool("rpqbench", false, "run the RPQ evaluation micro-benchmarks and write a JSON summary")
		rpqOut     = flag.String("rpqbench-out", "BENCH_rpq.json", "output path of the -rpqbench JSON summary")
		storeBench = flag.Bool("storebench", false, "run the storage-engine benchmarks (appends/sec and recovery, text vs binary, 1 vs 16 sessions) and write a JSON summary")
		storeOut   = flag.String("storebench-out", "BENCH_store.json", "output path of the -storebench JSON summary")
		storeIvl   = flag.Duration("storebench-commit-interval", 0, "group-commit batch window for -storebench's binary engine")
		storeGate  = flag.String("storegate", "", "check this -storebench summary and fail if the binary/text 16-session append speedup is below -storegate-min")
		storeMin   = flag.Float64("storegate-min", 3, "minimum binary/text 16-session append speedup for -storegate")
		learnBench = flag.Bool("learnbench", false, "run the learner benchmarks (dense vs reference generalization on the transport graphs, merge-check allocations, session convergence) and write a JSON summary")
		learnOut   = flag.String("learnbench-out", "BENCH_learn.json", "output path of the -learnbench JSON summary")
		learnGate  = flag.String("learngate", "", "check this -learnbench summary and fail if the dense/reference 60x60 Learn speedup is below -learngate-min or the merge check allocates")
		learnMin   = flag.Float64("learngate-min", 3, "minimum dense/reference 60x60 Learn speedup for -learngate")
		chaosBench = flag.Bool("chaosbench", false, "run the crash-anywhere chaos harness: torture a real gpsd subprocess with SIGKILLs and in-compaction crashes, then prove equivalence against a text-engine oracle")
		chaosGpsd  = flag.String("chaos-gpsd", "", "path to the gpsd binary to torture (required with -chaosbench)")
		chaosKills = flag.Int("chaos-kills", 30, "number of hard kills the chaos run inflicts before driving sessions to completion")
		chaosSess  = flag.Int("chaos-sessions", 24, "number of concurrent learning sessions the chaos run drives")
		chaosAddr  = flag.String("chaos-addr", "127.0.0.1:18090", "listen address for the tortured gpsd")
		chaosOut   = flag.String("chaosbench-out", "", "optional JSON summary output path for -chaosbench")
		chaosV     = flag.Bool("chaos-v", false, "log per-kill chaos progress")
		chaosTel   = flag.String("chaos-telemetry", "", "optional .jsonl path: append every /metrics scrape the chaos or failover harness takes (one JSON line per scrape, CI post-mortem artifact)")
		foBench    = flag.Bool("failover", false, "run the replication failover harness: a primary/follower gpsd pair, repeated primary SIGKILLs (incl. in-compaction faults), follower promotions with fencing checks, then oracle equivalence")
		foKills    = flag.Int("failover-kills", 10, "number of primary kills (= promotions) the failover run inflicts")
		foAddrA    = flag.String("failover-addr-a", "127.0.0.1:18092", "listen address of the first daemon of the failover pair")
		foAddrB    = flag.String("failover-addr-b", "127.0.0.1:18093", "listen address of the second daemon of the failover pair")
		foOut      = flag.String("failover-out", "", "optional JSON summary output path for -failover")
		loadBench  = flag.Bool("loadbench", false, "run the multi-tenant load harness: several tenants against a keyring-armed gpsd subprocess, one offering ~10x, asserting the fair-share invariants")
		loadGpsd   = flag.String("load-gpsd", "", "path to the gpsd binary to load (required with -loadbench)")
		loadAddr   = flag.String("load-addr", "127.0.0.1:18091", "listen address for the loaded gpsd")
		loadDur    = flag.Duration("load-duration", 8*time.Second, "duration of each -loadbench phase")
		loadOut    = flag.String("loadbench-out", "BENCH_load.json", "output path of the -loadbench JSON summary")
		loadV      = flag.Bool("load-v", false, "log per-tenant load results")
		smokeMode  = flag.String("smokedrive", "", "run one typed-client smoke check (eval, simulate, checkdone, park, snapshot, auth) against a running gpsd — the Go half of scripts/smoke_gpsd.sh")
		smokeBase  = flag.String("smoke-base", "http://127.0.0.1:8080", "base URL of the gpsd under smoke test")
		smokeSess  = flag.String("smoke-session", "", "session id for the checkdone/snapshot smoke modes")
		smokeOut   = flag.String("smoke-out", "", "output path for the snapshot smoke mode")
		smokeKey   = flag.String("smoke-key", "", "API key for the auth smoke mode")
		smokeNoKey = flag.Bool("smoke-expect-unauthorized", false, "auth smoke mode: the key must be rejected (revoked-key checks)")
		loadGate   = flag.String("loadgate", "", "check this -loadbench summary and fail if the polite admission-error rate or p99 ratio breaches the fairness gate")
		loadRate   = flag.Float64("loadgate-max-error-rate", 0.01, "maximum polite-tenant admission-error rate for -loadgate")
		loadRatio  = flag.Float64("loadgate-max-p99-ratio", 2, "maximum contended/baseline p99 ratio for -loadgate")
		benchCmp   = flag.String("benchcmp", "", "compare this -rpqbench summary against -benchcmp-base and fail on an allocs/op regression (ns/op is informational)")
		benchBase  = flag.String("benchcmp-base", "BENCH_baseline.json", "baseline summary for -benchcmp")
		benchTol   = flag.Float64("benchcmp-threshold", 0.25, "allowed regression for -benchcmp (0.25 = 25%)")
		rpqGate    = flag.String("rpqgate", "", "check this -rpqbench summary's same-machine ratios and fail if the cached or sharded speedup is below its floor")
		rpqCMin    = flag.Float64("rpqgate-cached-min", 5, "minimum cached/uncached evaluation speedup for -rpqgate")
		rpqSMin    = flag.Float64("rpqgate-sharded-min", 0.75, "minimum sharded/sequential large-graph speedup for -rpqgate")
		indexBench = flag.Bool("indexbench", false, "measure /evaluate with and without the precomputed reachability index on the large transport graph and write a JSON summary")
		indexOut   = flag.String("indexbench-out", "BENCH_index.json", "output path of the -indexbench JSON summary")
		indexGate  = flag.String("indexgate", "", "check this -indexbench summary and fail if the indexed-vs-unindexed median speedup is below -indexgate-min")
		indexMin   = flag.Float64("indexgate-min", 5, "minimum indexed/unindexed median evaluation speedup for -indexgate")
	)
	flag.Parse()

	if *benchCmp != "" || *storeGate != "" || *learnGate != "" || *loadGate != "" || *rpqGate != "" || *indexGate != "" {
		if *benchCmp != "" {
			if err := runBenchCompare(*benchBase, *benchCmp, *benchTol); err != nil {
				fmt.Fprintf(os.Stderr, "gpsbench: %v\n", err)
				os.Exit(1)
			}
		}
		if *storeGate != "" {
			if err := runStoreGate(*storeGate, *storeMin); err != nil {
				fmt.Fprintf(os.Stderr, "gpsbench: %v\n", err)
				os.Exit(1)
			}
		}
		if *learnGate != "" {
			if err := runLearnGate(*learnGate, *learnMin); err != nil {
				fmt.Fprintf(os.Stderr, "gpsbench: %v\n", err)
				os.Exit(1)
			}
		}
		if *loadGate != "" {
			if err := runLoadGate(*loadGate, *loadRate, *loadRatio); err != nil {
				fmt.Fprintf(os.Stderr, "gpsbench: %v\n", err)
				os.Exit(1)
			}
		}
		if *rpqGate != "" {
			if err := runRPQGate(*rpqGate, *rpqCMin, *rpqSMin); err != nil {
				fmt.Fprintf(os.Stderr, "gpsbench: %v\n", err)
				os.Exit(1)
			}
		}
		if *indexGate != "" {
			if err := runIndexGate(*indexGate, *indexMin); err != nil {
				fmt.Fprintf(os.Stderr, "gpsbench: %v\n", err)
				os.Exit(1)
			}
		}
		return
	}

	if *smokeMode != "" {
		err := runSmokeDrive(smokeOptions{
			base:               *smokeBase,
			mode:               *smokeMode,
			session:            *smokeSess,
			out:                *smokeOut,
			key:                *smokeKey,
			expectUnauthorized: *smokeNoKey,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "gpsbench: smokedrive %s: %v\n", *smokeMode, err)
			os.Exit(1)
		}
		return
	}

	if *loadBench {
		err := runLoadBench(loadOptions{
			gpsdPath: *loadGpsd,
			addr:     *loadAddr,
			duration: *loadDur,
			seed:     *seed,
			out:      *loadOut,
			verbose:  *loadV,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "gpsbench: loadbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *chaosBench {
		err := runChaosBench(chaosOptions{
			gpsdPath:  *chaosGpsd,
			addr:      *chaosAddr,
			kills:     *chaosKills,
			sessions:  *chaosSess,
			seed:      *seed,
			out:       *chaosOut,
			telemetry: *chaosTel,
			verbose:   *chaosV,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "gpsbench: chaosbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *foBench {
		err := runFailoverBench(failoverOptions{
			gpsdPath:  *chaosGpsd,
			addrA:     *foAddrA,
			addrB:     *foAddrB,
			kills:     *foKills,
			sessions:  *chaosSess,
			seed:      *seed,
			out:       *foOut,
			telemetry: *chaosTel,
			verbose:   *chaosV,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "gpsbench: failover: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *learnBench {
		if err := runLearnBench(*learnOut, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "gpsbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *storeBench {
		if err := runStoreBench(*storeOut, *seed, *storeIvl); err != nil {
			fmt.Fprintf(os.Stderr, "gpsbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *indexBench {
		if err := runIndexBench(*indexOut, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "gpsbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *rpqBench {
		if err := runRPQBench(*rpqOut, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "gpsbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, r := range experiment.Registry() {
			fmt.Printf("%-4s %-40s %s\n", r.ID, r.Paper, r.Description)
		}
		return
	}

	cfg := experiment.Config{Quick: !*full, Seed: *seed}
	runners := experiment.Registry()
	if *expList != "" {
		var selected []experiment.Runner
		for _, id := range strings.Split(*expList, ",") {
			r, ok := experiment.Lookup(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "gpsbench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, r)
		}
		runners = selected
	}

	for _, r := range runners {
		start := time.Now()
		table := r.Run(cfg)
		fmt.Printf("=== %s — %s ===\n", strings.ToUpper(r.ID), r.Paper)
		fmt.Println(table.String())
		if *csv {
			fmt.Println(table.CSV())
		}
		fmt.Printf("(%s in %.1fs)\n\n", r.ID, time.Since(start).Seconds())
	}
}
