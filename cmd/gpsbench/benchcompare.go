package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Bench-regression gate: -benchcmp compares a fresh -rpqbench summary
// against the checked-in baseline (BENCH_baseline.json).
//
// Only allocs/op — deterministic and machine-independent — can fail the
// gate: a benchmark must not regress by more than the threshold (with a
// small floor so 0→1 blips don't fail the build). The ns/op comparison is
// printed for information only; absolute ns/op against a checked-in
// baseline is inherently machine-sensitive (a uniformly slower runner
// moves every ratio without any code change), so wall-clock performance
// is gated by the same-machine two-run ratios instead: -rpqgate on the
// cached/sharded speedups inside one -rpqbench run, and -indexgate on the
// indexed-vs-unindexed speedup inside one -indexbench run.
//
// Refresh the baseline with: go run ./cmd/gpsbench -rpqbench
// -rpqbench-out BENCH_baseline.json
type rpqBenchSummary struct {
	Results []rpqBenchResult `json:"results"`
}

func readBenchSummary(path string) (map[string]rpqBenchResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var summary rpqBenchSummary
	if err := json.Unmarshal(data, &summary); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(summary.Results) == 0 {
		return nil, fmt.Errorf("%s: no benchmark results", path)
	}
	out := make(map[string]rpqBenchResult, len(summary.Results))
	for _, r := range summary.Results {
		out[r.Name] = r
	}
	return out, nil
}

// allocFloor is the minimum absolute allocs/op increase treated as a
// regression: going from 0 to 1 allocation is a blip, going from 0 to 300
// (e.g. losing a pooled-scratch path) is not.
const allocFloor = 16

// runBenchCompare fails (non-nil error) on a regression beyond threshold
// (0.25 = 25%).
func runBenchCompare(baselinePath, currentPath string, threshold float64) error {
	baseline, err := readBenchSummary(baselinePath)
	if err != nil {
		return fmt.Errorf("benchcmp: baseline: %w", err)
	}
	current, err := readBenchSummary(currentPath)
	if err != nil {
		return fmt.Errorf("benchcmp: current: %w", err)
	}

	names := make([]string, 0, len(baseline))
	for name := range baseline {
		names = append(names, name)
	}
	sort.Strings(names)

	var failures []string
	ratios := make([]float64, 0, len(names))
	fmt.Printf("%-30s %14s %14s %8s %10s %10s\n",
		"benchmark", "base ns/op", "cur ns/op", "ns Δ", "base allocs", "cur allocs")
	for _, name := range names {
		base := baseline[name]
		cur, ok := current[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: missing from current run", name))
			continue
		}
		ratio := cur.NsPerOp / base.NsPerOp
		ratios = append(ratios, ratio)
		fmt.Printf("%-30s %14.0f %14.0f %+7.1f%% %10d %10d\n",
			name, base.NsPerOp, cur.NsPerOp, (ratio-1)*100, base.AllocsPerOp, cur.AllocsPerOp)
		if cur.AllocsPerOp-base.AllocsPerOp >= allocFloor &&
			float64(cur.AllocsPerOp) > float64(base.AllocsPerOp)*(1+threshold) {
			failures = append(failures, fmt.Sprintf("%s: allocs/op regressed %d -> %d (>%0.f%%)",
				name, base.AllocsPerOp, cur.AllocsPerOp, threshold*100))
		}
	}
	if len(ratios) > 0 {
		sort.Float64s(ratios)
		median := ratios[len(ratios)/2]
		if len(ratios)%2 == 0 {
			median = (ratios[len(ratios)/2-1] + ratios[len(ratios)/2]) / 2
		}
		fmt.Printf("median ns/op ratio: %.3f (informational; wall-clock is gated by -rpqgate/-indexgate)\n", median)
	}
	printTrend(currentPath, "median ns/op", "ns", true, medianNsFromSummary)
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "benchcmp: REGRESSION: %s\n", f)
		}
		return fmt.Errorf("benchcmp: %d regression(s) against %s", len(failures), baselinePath)
	}
	fmt.Println("benchcmp: no regression")
	return nil
}

// rpqGateSummary is the slice of the -rpqbench payload -rpqgate reads.
type rpqGateSummary struct {
	CachedSpeedup  float64 `json:"cached_speedup"`
	ShardedSpeedup float64 `json:"sharded_speedup"`
}

// runRPQGate checks the same-machine ratios of one -rpqbench run: the
// engine cache must pay off by at least cachedMin on repeat queries, and
// sharded evaluation of the large graph must not fall below shardedMin of
// sequential (a floor below 1 tolerates scheduling noise while still
// catching a sharding pessimisation).
func runRPQGate(path string, cachedMin, shardedMin float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("rpqgate: %w", err)
	}
	var s rpqGateSummary
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("rpqgate: %s: %w", path, err)
	}
	if s.CachedSpeedup == 0 || s.ShardedSpeedup == 0 {
		return fmt.Errorf("rpqgate: %s: missing speedup ratios (regenerate with -rpqbench)", path)
	}
	fmt.Printf("rpqgate: cached speedup %.2fx (floor %.2fx), sharded speedup %.2fx (floor %.2fx)\n",
		s.CachedSpeedup, cachedMin, s.ShardedSpeedup, shardedMin)
	printTrend(path, "cached speedup", "x", false, floatFieldFromSummary("cached_speedup"))
	if s.CachedSpeedup < cachedMin {
		return fmt.Errorf("rpqgate: cached speedup %.2fx below floor %.2fx", s.CachedSpeedup, cachedMin)
	}
	if s.ShardedSpeedup < shardedMin {
		return fmt.Errorf("rpqgate: sharded speedup %.2fx below floor %.2fx", s.ShardedSpeedup, shardedMin)
	}
	fmt.Println("rpqgate: ok")
	return nil
}
