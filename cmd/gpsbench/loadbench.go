package main

// Multi-tenant load harness for gpsd: boot a real gpsd subprocess behind
// an API keyring, offer it traffic from several tenants over the typed
// client, and measure what the fair-share admission actually delivers —
// not what the scheduler's unit tests promise. Two phases, each against a
// fresh daemon:
//
//   - baseline: one tenant, polite load. Its p99 request latency is the
//     single-tenant reference.
//   - contended: four tenants with equal quotas, one offering roughly 10x
//     the load of the others. The greedy tenant must be the one eating
//     429s; the polite tenants' admission-error rate must stay under the
//     gate (1% by default) and their p99 latency within a small factor of
//     the baseline.
//
// The per-tenant latency numbers come from the daemon's own
// gpsd_tenant_http_request_duration_seconds histograms on /metrics, so
// the load run also proves the tenant-labelled scrape surface works. The
// summary feeds -loadgate (the CI fairness gate) and the BENCH_load.jsonl
// trend history.

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/service"
	"repro/pkg/client"
)

type loadOptions struct {
	gpsdPath string
	addr     string
	duration time.Duration
	seed     int64
	out      string
	verbose  bool
}

// loadQuota and loadPool shape the contention: four tenants with three
// live sessions each would want twelve slots, the global pool has eight —
// admission must arbitrate, which is the point.
const (
	loadTenants = 4
	loadQuota   = 3
	loadPool    = 8
)

// loadTenantResult is one tenant's client-side view of the run.
type loadTenantResult struct {
	Attempts         int64 `json:"attempts"`
	Admitted         int64 `json:"admitted"`
	RejectedQuota    int64 `json:"rejected_quota"`
	RejectedOverload int64 `json:"rejected_overload"`
	OtherErrors      int64 `json:"other_errors"`
	Answers          int64 `json:"answers"`
}

func (r *loadTenantResult) rejections() int64 { return r.RejectedQuota + r.RejectedOverload }

// loadSummary is the JSON written by -loadbench-out and gated by
// -loadgate. The headline p99s are the label endpoint's — the request
// that carries the actual learning work — while the per-endpoint maps
// keep the full p50/p99 picture of both phases.
type loadSummary struct {
	Seed               int64                       `json:"seed"`
	Tenants            int                         `json:"tenants"`
	QuotaPerTenant     int                         `json:"quota_per_tenant"`
	GlobalPool         int                         `json:"global_max_sessions"`
	PhaseSeconds       float64                     `json:"phase_seconds"`
	BaselineP99Us      float64                     `json:"baseline_p99_us"`
	ContendedP99Us     float64                     `json:"contended_p99_us"`
	P99Ratio           float64                     `json:"p99_ratio"`
	PoliteAttempts     int64                       `json:"polite_attempts"`
	PoliteRejected     int64                       `json:"polite_rejected"`
	PoliteErrorRate    float64                     `json:"polite_error_rate"`
	GreedyAttempts     int64                       `json:"greedy_attempts"`
	GreedyAdmitted     int64                       `json:"greedy_admitted"`
	GreedyRejected     int64                       `json:"greedy_rejected"`
	PerTenant          map[string]loadTenantResult `json:"per_tenant"`
	BaselineEndpoints  map[string]loadLatency      `json:"baseline_endpoints"`
	ContendedEndpoints map[string]loadLatency      `json:"contended_endpoints"`
	Violations         []string                    `json:"violations"`
}

// loadLabelEndpoint is the endpoint the fairness gate measures: answering
// a pending question is the request that carries the learning work.
const loadLabelEndpoint = "POST /v1/sessions/{id}/label"

func loadTenantName(i int) string    { return fmt.Sprintf("t%d", i) }
func loadTenantKey(tn string) string { return "sk-load-" + tn }

// loadBaselineTenant is the phase-1 tenant: it owns the whole session
// pool, so the identical worker mix offered by one tenant yields the
// single-tenant latency reference the contended phase is compared to.
const loadBaselineTenant = "baseline"

// writeLoadKeyring materialises the keyring file both phases boot with:
// every contending tenant gets the same quota, queue depth and weight —
// whatever fairness emerges is the scheduler's doing, not the
// configuration's.
func writeLoadKeyring(dir string) (string, error) {
	cfg := service.KeyringConfig{
		Tenants: map[string]service.TenantLimits{
			loadBaselineTenant: {MaxSessions: loadPool, MaxQueued: loadQuota, Weight: 1},
		},
		Keys: map[string]string{
			loadTenantKey(loadBaselineTenant): loadBaselineTenant,
		},
	}
	for i := 0; i < loadTenants; i++ {
		cfg.Tenants[loadTenantName(i)] = service.TenantLimits{
			MaxSessions: loadQuota,
			MaxQueued:   loadQuota,
			Weight:      1,
		}
		cfg.Keys[loadTenantKey(loadTenantName(i))] = loadTenantName(i)
	}
	data, err := json.MarshalIndent(cfg, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, "keyring.json")
	return path, os.WriteFile(path, append(data, '\n'), 0o644)
}

// loadDaemon is one gpsd subprocess per phase.
type loadDaemon struct {
	cmd    *exec.Cmd
	exitCh chan error
}

func startLoadDaemon(opts loadOptions, keyring string, logf *os.File) (*loadDaemon, error) {
	args := []string{
		"-addr", opts.addr,
		"-max-sessions", strconv.Itoa(loadPool),
		"-api-keys", keyring,
		"-admit-wait", "2s",
		"-request-timeout", "10s",
		"-preload", "demo=figure1,grid=transport:8x8",
	}
	cmd := exec.Command(opts.gpsdPath, args...)
	cmd.Stdout = logf
	cmd.Stderr = logf
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("start gpsd: %w", err)
	}
	d := &loadDaemon{cmd: cmd, exitCh: make(chan error, 1)}
	go func() { d.exitCh <- cmd.Wait() }()

	probe := client.New("http://" + opts.addr)
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if err := probe.Health(context.Background()); err == nil {
			return d, nil
		}
		select {
		case <-d.exitCh:
			return nil, fmt.Errorf("gpsd exited before becoming healthy (see %s)", logf.Name())
		default:
		}
		time.Sleep(25 * time.Millisecond)
	}
	d.stop()
	return nil, fmt.Errorf("gpsd not healthy within 30s (see %s)", logf.Name())
}

func (d *loadDaemon) stop() {
	if d.cmd != nil && d.cmd.Process != nil {
		_ = d.cmd.Process.Signal(syscall.SIGTERM)
	}
	select {
	case <-d.exitCh:
	case <-time.After(10 * time.Second):
		_ = d.cmd.Process.Kill()
		<-d.exitCh
	}
}

// loadWorker drives one manual-session loop for its tenant: create,
// answer every question through the label endpoint, delete, think,
// repeat. The think time (0 for the greedy tenant) is the entire
// difference between polite and greedy load.
func loadWorker(ctx context.Context, c *client.Client, res *loadTenantResult, seed int64, think time.Duration) {
	rng := rand.New(rand.NewSource(seed))
	for ctx.Err() == nil {
		atomic.AddInt64(&res.Attempts, 1)
		v, err := c.CreateSession(ctx, service.SessionConfig{
			Graph: "grid", Mode: "manual", MaxInteractions: 6,
		})
		switch code := client.CodeOf(err); {
		case err == nil:
			atomic.AddInt64(&res.Admitted, 1)
		case code == service.CodeQuotaExceeded:
			atomic.AddInt64(&res.RejectedQuota, 1)
		case code == service.CodeOverloaded:
			atomic.AddInt64(&res.RejectedOverload, 1)
		case ctx.Err() != nil:
			return
		default:
			atomic.AddInt64(&res.OtherErrors, 1)
		}
		if err != nil {
			// Back off a little before re-offering; the greedy tenant's
			// zero think time keeps its offered load high regardless.
			sleepCtx(ctx, think+5*time.Millisecond)
			continue
		}
		driveLoadSession(ctx, c, res, rng, v)
		sleepCtx(ctx, think)
	}
}

// driveLoadSession answers one admitted session to completion (or the
// phase end) and deletes it so the slot returns to the pool.
func driveLoadSession(ctx context.Context, c *client.Client, res *loadTenantResult, rng *rand.Rand, v service.SessionView) {
	sid := v.ID
	defer func() {
		dctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = c.DeleteSession(dctx, sid)
	}()
	for ctx.Err() == nil {
		if v.Status == service.StatusDone || v.Status == service.StatusFailed {
			return
		}
		if v.Pending != nil {
			ans := service.Answer{Seq: v.Pending.Seq}
			switch v.Pending.Kind {
			case "label":
				ans.Decision = "positive"
				if rng.Intn(3) == 0 {
					ans.Decision = "negative"
				}
			case "path":
				ans.Accept = true
			case "satisfied":
				sat := rng.Intn(8) == 0
				ans.Satisfied = &sat
			}
			nv, err := c.Answer(ctx, sid, ans)
			if err == nil {
				atomic.AddInt64(&res.Answers, 1)
				v = nv
				continue
			}
			if !client.IsCode(err, service.CodeConflict) {
				return
			}
		}
		nv, err := c.Session(ctx, sid)
		if err != nil {
			return
		}
		v = nv
	}
}

func sleepCtx(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// loadPhaseResult is what one phase yields: the per-tenant client-side
// accounting, the per-endpoint latency views scraped from /metrics, and
// whether the tenant-labelled metric families showed up at all.
type loadPhaseResult struct {
	tenants       map[string]*loadTenantResult
	endpoints     map[string]loadLatency
	tenantMetrics bool
}

// loadGroup is one batch of identical workers for one tenant. The two
// phases offer the same group shapes — 6 polite workers with think time
// plus 20 saturating ones — differing only in how the groups map onto
// tenants, so the latency comparison is load-for-load.
type loadGroup struct {
	tenant  string
	workers int
	think   time.Duration
}

// runLoadPhase offers load from the given groups for the phase duration,
// then scrapes the daemon's /metrics for the per-endpoint latency
// histograms.
func runLoadPhase(opts loadOptions, groups []loadGroup) (loadPhaseResult, error) {
	out := loadPhaseResult{tenants: map[string]*loadTenantResult{}}
	ctx, cancel := context.WithTimeout(context.Background(), opts.duration)
	defer cancel()
	var wg sync.WaitGroup
	seed := opts.seed
	for _, g := range groups {
		res := out.tenants[g.tenant]
		if res == nil {
			res = &loadTenantResult{}
			out.tenants[g.tenant] = res
		}
		c := client.New("http://"+opts.addr, client.WithAPIKey(loadTenantKey(g.tenant)))
		for w := 0; w < g.workers; w++ {
			wg.Add(1)
			seed++
			go func(seed int64, think time.Duration) {
				defer wg.Done()
				loadWorker(ctx, c, res, seed, think)
			}(seed, g.think)
		}
	}
	wg.Wait()

	mctx, mcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer mcancel()
	body, err := client.New("http://" + opts.addr).Metrics(mctx)
	if err != nil {
		return out, fmt.Errorf("scrape /metrics: %w", err)
	}
	out.endpoints = parseEndpointLatencies(body)
	out.tenantMetrics = strings.Contains(body, "gpsd_tenant_http_request_duration_seconds_bucket{")
	if len(out.endpoints) == 0 {
		return out, fmt.Errorf("/metrics has no gpsd_http_request_duration_seconds buckets")
	}
	return out, nil
}

// loadLatency is one endpoint's latency view in the summary.
type loadLatency struct {
	Count float64 `json:"count"`
	P50Us float64 `json:"p50_us"`
	P99Us float64 `json:"p99_us"`
}

// parseEndpointLatencies extracts every endpoint's latency histogram out
// of a /metrics exposition and renders interpolated p50/p99 views.
// Quantiles interpolate linearly inside the covering bucket
// (histogram_quantile style) so the gate's ratio is not quantized to
// bucket-bound jumps.
func parseEndpointLatencies(body string) map[string]loadLatency {
	type hist struct {
		les  []float64
		cums []float64
		inf  float64
	}
	hists := map[string]*hist{}
	for _, line := range strings.Split(body, "\n") {
		rest, ok := strings.CutPrefix(line, "gpsd_http_request_duration_seconds_bucket{")
		if !ok {
			continue
		}
		endpoint, ok := labelValue(rest, "endpoint")
		if !ok {
			continue
		}
		leRaw, ok := labelValue(rest, "le")
		if !ok {
			continue
		}
		sp := strings.LastIndexByte(rest, ' ')
		if sp < 0 {
			continue
		}
		cum, err := strconv.ParseFloat(rest[sp+1:], 64)
		if err != nil {
			continue
		}
		h := hists[endpoint]
		if h == nil {
			h = &hist{}
			hists[endpoint] = h
		}
		if leRaw == "+Inf" {
			h.inf = cum
			continue
		}
		le, err := strconv.ParseFloat(leRaw, 64)
		if err != nil {
			continue
		}
		h.les = append(h.les, le)
		h.cums = append(h.cums, cum)
	}
	out := map[string]loadLatency{}
	for endpoint, h := range hists {
		if h.inf == 0 {
			continue
		}
		quantile := func(q float64) float64 {
			target := q * h.inf
			prevLe, prevCum := 0.0, 0.0
			for i, cum := range h.cums {
				if cum >= target {
					le := h.les[i]
					if cum > prevCum {
						le = prevLe + (le-prevLe)*(target-prevCum)/(cum-prevCum)
					}
					return le * 1e6
				}
				prevLe, prevCum = h.les[i], cum
			}
			if len(h.les) > 0 {
				return h.les[len(h.les)-1] * 1e6 // overflow: last finite bound
			}
			return 0
		}
		out[endpoint] = loadLatency{Count: h.inf, P50Us: quantile(0.50), P99Us: quantile(0.99)}
	}
	return out
}

// labelValue pulls one label's value out of a raw series line; the obs
// exposition never emits escaped quotes inside the labels parsed here.
func labelValue(rest, label string) (string, bool) {
	i := strings.Index(rest, label+`="`)
	if i < 0 {
		return "", false
	}
	start := i + len(label) + 2
	end := strings.Index(rest[start:], `"`)
	if end < 0 {
		return "", false
	}
	return rest[start : start+end], true
}

func runLoadBench(opts loadOptions) error {
	if opts.gpsdPath == "" {
		return fmt.Errorf("-loadbench needs -load-gpsd <path-to-gpsd-binary>")
	}
	if opts.duration <= 0 {
		opts.duration = 8 * time.Second
	}
	dir, err := os.MkdirTemp("", "gpsd-load-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	keyring, err := writeLoadKeyring(dir)
	if err != nil {
		return err
	}
	logf, err := os.Create(filepath.Join(dir, "gpsd.log"))
	if err != nil {
		return err
	}
	defer logf.Close()

	fmt.Printf("loadbench: %d tenants, quota %d each, pool %d, %.0fs per phase\n",
		loadTenants, loadQuota, loadPool, opts.duration.Seconds())

	politeThink := 20 * time.Millisecond

	// Phase 1 — baseline: the whole worker mix from a single tenant that
	// owns the whole pool, against a fresh daemon.
	d, err := startLoadDaemon(opts, keyring, logf)
	if err != nil {
		return fmt.Errorf("baseline boot: %w", err)
	}
	base, err := runLoadPhase(opts, []loadGroup{
		{tenant: loadBaselineTenant, workers: 2 * (loadTenants - 1), think: politeThink},
		{tenant: loadBaselineTenant, workers: 20, think: 0},
	})
	d.stop()
	if err != nil {
		return fmt.Errorf("baseline phase: %w", err)
	}
	baseP99 := base.endpoints[loadLabelEndpoint].P99Us
	fmt.Printf("loadbench: baseline label p99 = %.0fus (single tenant, whole pool)\n", baseP99)

	// Phase 2 — contended: the same worker mix split across tenants with
	// equal quotas: three polite tenants plus one offering ~10x.
	d, err = startLoadDaemon(opts, keyring, logf)
	if err != nil {
		return fmt.Errorf("contended boot: %w", err)
	}
	greedy := loadTenantName(loadTenants - 1)
	groups := []loadGroup{{tenant: greedy, workers: 20, think: 0}}
	for i := 0; i < loadTenants-1; i++ {
		groups = append(groups, loadGroup{tenant: loadTenantName(i), workers: 2, think: politeThink})
	}
	cont, err := runLoadPhase(opts, groups)
	d.stop()
	if err != nil {
		return fmt.Errorf("contended phase: %w", err)
	}
	contP99 := cont.endpoints[loadLabelEndpoint].P99Us

	sum := loadSummary{
		Seed:               opts.seed,
		Tenants:            loadTenants,
		QuotaPerTenant:     loadQuota,
		GlobalPool:         loadPool,
		PhaseSeconds:       opts.duration.Seconds(),
		BaselineP99Us:      baseP99,
		ContendedP99Us:     contP99,
		PerTenant:          map[string]loadTenantResult{},
		BaselineEndpoints:  base.endpoints,
		ContendedEndpoints: cont.endpoints,
		Violations:         []string{},
	}
	if baseP99 > 0 {
		sum.P99Ratio = contP99 / baseP99
	}
	if baseP99 == 0 || contP99 == 0 {
		sum.Violations = append(sum.Violations, "label endpoint latency histogram missing from /metrics")
	}
	if !base.tenantMetrics || !cont.tenantMetrics {
		sum.Violations = append(sum.Violations, "tenant-labelled latency families missing from /metrics")
	}
	for name, res := range cont.tenants {
		sum.PerTenant[name] = *res
		if name == greedy {
			sum.GreedyAttempts = res.Attempts
			sum.GreedyAdmitted = res.Admitted
			sum.GreedyRejected = res.rejections()
		} else {
			sum.PoliteAttempts += res.Attempts
			sum.PoliteRejected += res.rejections()
		}
		if res.OtherErrors > 0 {
			sum.Violations = append(sum.Violations,
				fmt.Sprintf("tenant %s saw %d unexpected errors", name, res.OtherErrors))
		}
		if res.Admitted == 0 {
			sum.Violations = append(sum.Violations,
				fmt.Sprintf("tenant %s was never admitted — starved outright", name))
		}
		if opts.verbose {
			fmt.Printf("loadbench: tenant %s: %+v\n", name, *res)
		}
	}
	if sum.PoliteAttempts > 0 {
		sum.PoliteErrorRate = float64(sum.PoliteRejected) / float64(sum.PoliteAttempts)
	}
	if sum.GreedyRejected == 0 {
		sum.Violations = append(sum.Violations,
			"greedy tenant was never rejected — admission is not pushing back")
	}

	fmt.Printf("loadbench: contended label p99 = %.0fus (%.2fx baseline), polite admission-error rate = %.3f%% (%d/%d), greedy admitted %d / rejected %d\n",
		contP99, sum.P99Ratio, sum.PoliteErrorRate*100, sum.PoliteRejected, sum.PoliteAttempts, sum.GreedyAdmitted, sum.GreedyRejected)

	if opts.out != "" {
		data, err := json.MarshalIndent(sum, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(opts.out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", opts.out)
		appendBenchHistory(opts.out, sum)
	}
	if len(sum.Violations) > 0 {
		for _, v := range sum.Violations {
			fmt.Fprintf(os.Stderr, "loadbench: VIOLATION: %s\n", v)
		}
		return fmt.Errorf("%d load violations", len(sum.Violations))
	}
	return nil
}

// runLoadGate is the CI fairness gate over a -loadbench summary: the
// polite tenants' admission-error rate must stay under maxRate and their
// contended p99 within maxRatio of the single-tenant baseline.
func runLoadGate(path string, maxRate, maxRatio float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("loadgate: %w", err)
	}
	var sum loadSummary
	if err := json.Unmarshal(data, &sum); err != nil {
		return fmt.Errorf("loadgate: %s: %w", path, err)
	}
	var fails []string
	if len(sum.Violations) > 0 {
		fails = append(fails, fmt.Sprintf("summary carries %d violations: %v", len(sum.Violations), sum.Violations))
	}
	if sum.PoliteAttempts == 0 {
		fails = append(fails, "no polite admission attempts recorded")
	}
	if sum.PoliteErrorRate >= maxRate {
		fails = append(fails, fmt.Sprintf("polite admission-error rate %.3f%% >= %.3f%%",
			sum.PoliteErrorRate*100, maxRate*100))
	}
	if sum.P99Ratio > maxRatio {
		fails = append(fails, fmt.Sprintf("contended p99 is %.2fx the single-tenant baseline (max %.2fx)",
			sum.P99Ratio, maxRatio))
	}
	fmt.Printf("loadgate: polite error rate %.3f%% (max %.3f%%), p99 ratio %.2fx (max %.2fx), greedy rejected %d\n",
		sum.PoliteErrorRate*100, maxRate*100, sum.P99Ratio, maxRatio, sum.GreedyRejected)
	printTrend(path, "p99_ratio", "x", true, floatFieldFromSummary("p99_ratio"))
	if len(fails) > 0 {
		for _, f := range fails {
			fmt.Fprintf(os.Stderr, "loadgate: FAIL: %s\n", f)
		}
		return fmt.Errorf("fairness gate failed (%d checks)", len(fails))
	}
	fmt.Println("loadgate: fairness gate passed")
	return nil
}
