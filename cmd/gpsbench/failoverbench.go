package main

// Failover harness for gpsd: prove that a warm follower plus the typed
// client's endpoint failover survive the primary being SIGKILLed over and
// over — including kills parked inside live-compaction phases and inside
// the group-commit window — without losing a session.
//
// The harness runs a *pair* of real gpsd subprocesses: a primary and a
// follower streaming its WAL (-replicate-from). A shared failover client
// (client.WithEndpoints over both) drives the same deterministic session
// workload as the chaos harness. The controller then cycles failover
// epochs: wait until the follower is caught up, murder the primary,
// promote the follower (explicit POST /v1/admin/promote, with
// -auto-promote-after as the safety net), and verify:
//
//   - the promotion's fencing epoch strictly increases every cycle;
//   - every created session still exists on the new primary, none failed;
//   - a resurrected old primary, booted on its untouched data directory,
//     refuses writes with 503/"fenced" the moment it sees the successor
//     epoch, reports fenced:true, and stays fenced across its own restart
//     (the FENCED marker is durable);
//   - the follower's lag metrics (gpsd_repl_role, gpsd_repl_lag_frames)
//     are live before promotion and flip to the primary families
//     (gpsd_repl_role 1, gpsd_repl_epoch) after;
//   - the wiped old primary re-seeds as a follower of the new primary and
//     catches up, so roles keep swapping for the whole kill budget.
//
// In-compaction kills are arranged by arming GPSD_FAULT_CRASH on a
// *follower* boot: the fault hook only attaches when promotion opens the
// engine, so the daemon executes its own crash during its first live
// compaction as the new primary — a kill inside a compaction phase while
// a real follower replicates from it.
//
// Replication is asynchronous, so a kill may lose an acked tail; the
// sessions run in relaxed mode (no cross-crash monotonicity checks) and
// correctness is settled the same way the chaos harness settles it: after
// the kill budget every session is driven to completion and compared,
// field by field, against the never-killed text-engine oracle replaying
// the same deterministic answer policy. Zero lost, zero diverged, or the
// run fails.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/service"
	"repro/pkg/client"
)

type failoverOptions struct {
	gpsdPath  string
	addrA     string
	addrB     string
	kills     int
	sessions  int
	seed      int64
	out       string
	telemetry string
	verbose   bool
}

// failoverSummary is the JSON written by -failover-out and printed at the
// end of a run.
type failoverSummary struct {
	Seed          int64    `json:"seed"`
	Kills         int      `json:"kills"`
	FaultKills    int      `json:"fault_kills"`
	Promotions    int      `json:"promotions"`
	FenceChecks   int      `json:"fence_checks"`
	Sessions      int      `json:"sessions"`
	AnswersPosted int64    `json:"answers_posted"`
	FinalEpoch    uint64   `json:"final_epoch"`
	Violations    []string `json:"violations"`
}

// foDaemon is one of the two gpsd subprocesses. The same daemon slot is
// rebooted in different roles as the run swaps primaries.
type foDaemon struct {
	name     string // "A" or "B", stable across role changes
	addr     string
	dataDir  string
	gpsdPath string
	logf     *os.File
	cli      *client.Client // single-endpoint, no failover: talks to this daemon only

	cmd    *exec.Cmd
	exitCh chan error
	// fault is the GPSD_FAULT_CRASH phase the current process was booted
	// with. On a follower it arms at promotion time (the fault hook rides
	// the engine the promotion opens), so the daemon self-crashes inside
	// that live-compaction phase during its reign as the new primary.
	fault string
}

func (d *foDaemon) url() string { return "http://" + d.addr }

// start boots the daemon with the shared chaos-grade store settings plus
// the role-specific extra flags, and waits for /healthz (both roles serve
// it). fault arms GPSD_FAULT_CRASH for the new process; an armed boot
// compacts on a slower cadence, so after its promotion the re-seeded
// standby has time to catch up before the fault executes the crash — the
// kill then lands inside a compaction pass *with a caught-up follower
// watching*, which is the scenario worth proving.
func (d *foDaemon) start(extra []string, fault string) error {
	compactIvl := "150ms"
	if fault != "" {
		compactIvl = "2s"
	}
	args := append([]string{
		"-addr", d.addr,
		"-data-dir", d.dataDir,
		"-store-engine", "binary",
		"-commit-interval", "2ms",
		"-segment-size", "4096",
		"-compact-interval", compactIvl,
		"-max-sessions", "512",
		"-request-timeout", "10s",
	}, extra...)
	cmd := exec.Command(d.gpsdPath, args...)
	cmd.Stdout = d.logf
	cmd.Stderr = d.logf
	cmd.Env = os.Environ()
	if fault != "" {
		cmd.Env = append(cmd.Env, "GPSD_FAULT_CRASH="+fault)
	}
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("start gpsd %s: %w", d.name, err)
	}
	d.cmd = cmd
	d.fault = fault
	d.exitCh = make(chan error, 1)
	go func(ch chan error) { ch <- cmd.Wait() }(d.exitCh)

	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if err := d.cli.Health(context.Background()); err == nil {
			return nil
		}
		if d.exited() {
			return fmt.Errorf("gpsd %s exited before becoming healthy (see %s)", d.name, d.logf.Name())
		}
		time.Sleep(25 * time.Millisecond)
	}
	return fmt.Errorf("gpsd %s not healthy within 30s (see %s)", d.name, d.logf.Name())
}

func (d *foDaemon) startPrimary() error {
	return d.start([]string{"-preload", strings.Join(chaosPreloads, ",")}, "")
}

func (d *foDaemon) startFollower(primaryURL, fault string) error {
	return d.start([]string{"-replicate-from", primaryURL, "-auto-promote-after", "2s"}, fault)
}

func (d *foDaemon) kill(sig syscall.Signal) {
	if d.cmd != nil && d.cmd.Process != nil {
		_ = d.cmd.Process.Signal(sig)
	}
}

func (d *foDaemon) waitExit(t time.Duration) bool {
	if d.exitCh == nil {
		return true
	}
	select {
	case <-d.exitCh:
		d.exitCh = nil
		return true
	case <-time.After(t):
		return false
	}
}

func (d *foDaemon) exited() bool { return d.waitExit(0) }

// failoverRun owns the daemon pair, the drivers and the counters.
type failoverRun struct {
	opts  failoverOptions
	rep   *chaosReport
	specs []*chaosSession
	cli   *client.Client // failover client over both endpoints, shared by drivers
	tel   *telemetryRecorder

	answers     atomic.Int64
	epoch       int
	promotions  int
	fenceChecks int
	faultKills  int
	lastEpoch   uint64 // highest fencing epoch confirmed so far
}

func runFailoverBench(opts failoverOptions) error {
	if opts.gpsdPath == "" {
		return fmt.Errorf("-failover needs -chaos-gpsd <path-to-gpsd-binary>")
	}
	if opts.sessions < 2 {
		opts.sessions = 2
	}
	dir, err := os.MkdirTemp("", "gpsd-failover-*")
	if err != nil {
		return err
	}
	keep := false
	defer func() {
		if keep {
			fmt.Fprintf(os.Stderr, "failover: kept %s for inspection\n", dir)
			return
		}
		os.RemoveAll(dir)
	}()

	newDaemon := func(name, addr string) (*foDaemon, error) {
		logf, err := os.Create(filepath.Join(dir, "gpsd-"+name+".log"))
		if err != nil {
			return nil, err
		}
		return &foDaemon{
			name:     name,
			addr:     addr,
			dataDir:  filepath.Join(dir, "data-"+name),
			gpsdPath: opts.gpsdPath,
			logf:     logf,
			cli:      client.New("http://"+addr, client.WithTimeout(2*time.Second)),
		}, nil
	}
	a, err := newDaemon("A", opts.addrA)
	if err != nil {
		return err
	}
	defer a.logf.Close()
	b, err := newDaemon("B", opts.addrB)
	if err != nil {
		return err
	}
	defer b.logf.Close()

	r := &failoverRun{opts: opts, rep: &chaosReport{}}
	if r.tel, err = newTelemetryRecorder(opts.telemetry); err != nil {
		return err
	}
	defer r.tel.Close()
	fmt.Printf("failover: seed=%d kills=%d sessions=%d data=%s\n", opts.seed, opts.kills, opts.sessions, dir)

	err = r.run(a, b)
	a.kill(syscall.SIGKILL)
	b.kill(syscall.SIGKILL)
	a.waitExit(5 * time.Second)
	b.waitExit(5 * time.Second)
	if err != nil {
		keep = true
		// The run died before the summary: any violations recorded so far
		// are the best post-mortem there is — do not swallow them.
		for i, v := range r.rep.list() {
			if i == 20 {
				fmt.Fprintf(os.Stderr, "failover: ... %d more violations\n", len(r.rep.list())-i)
				break
			}
			fmt.Fprintf(os.Stderr, "failover: VIOLATION: %s\n", v)
		}
		return err
	}

	sum := failoverSummary{
		Seed:          opts.seed,
		Kills:         opts.kills,
		FaultKills:    r.faultKills,
		Promotions:    r.promotions,
		FenceChecks:   r.fenceChecks,
		Sessions:      opts.sessions,
		AnswersPosted: r.answers.Load(),
		FinalEpoch:    r.lastEpoch,
		Violations:    r.rep.list(),
	}
	if sum.Violations == nil {
		sum.Violations = []string{}
	}
	fmt.Printf("failover: %d kills (%d in-compaction faults), %d promotions, %d fence checks, %d answers, final epoch %d\n",
		sum.Kills, sum.FaultKills, sum.Promotions, sum.FenceChecks, sum.AnswersPosted, sum.FinalEpoch)
	if opts.out != "" {
		data, _ := json.MarshalIndent(sum, "", "  ")
		if err := os.WriteFile(opts.out, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	if len(sum.Violations) > 0 {
		for _, v := range sum.Violations {
			fmt.Fprintf(os.Stderr, "failover: VIOLATION: %s\n", v)
		}
		keep = true
		return fmt.Errorf("%d invariant violations", len(sum.Violations))
	}
	fmt.Println("failover: zero invariant violations")
	return nil
}

// armFault decides whether the n-th follower boot carries an armed crash
// phase, cycling through the compaction phases. The fault only fires
// after that follower's *promotion* (the hook rides the engine the
// promotion opens), so boot n's crash serves kill n+1 — boots whose crash
// would land outside the kill budget stay unarmed, and so does the very
// first boot: its crash would hit a primary whose deposed peer is still
// being re-seeded, leaving nothing serving.
func armFault(n, kills int) string {
	if n%2 != 1 || n+1 >= kills {
		return ""
	}
	return chaosFaultPhases[(n/2)%len(chaosFaultPhases)]
}

func (r *failoverRun) run(a, b *foDaemon) error {
	r.specs = buildSpecs(r.opts.sessions, r.opts.seed)
	for _, cs := range r.specs {
		// Async replication may lose an acked tail at a kill; the final
		// oracle comparison is the correctness bar. See chaosSession.relaxed.
		cs.relaxed = true
	}
	rng := rand.New(rand.NewSource(r.opts.seed))

	if err := a.startPrimary(); err != nil {
		return err
	}
	followerStarts := 0
	if err := b.startFollower(a.url(), armFault(followerStarts, r.opts.kills)); err != nil {
		return err
	}
	followerStarts++

	r.cli = client.New(a.url(),
		client.WithEndpoints(a.url(), b.url()),
		client.WithTimeout(5*time.Second))
	if err := createChaosSessions(r.cli, r.specs, r.rep); err != nil {
		return err
	}
	stopDrivers := make(chan struct{})
	var drivers sync.WaitGroup
	for _, cs := range r.specs {
		drivers.Add(1)
		go func(cs *chaosSession) {
			defer drivers.Done()
			driveChaos(r.cli, cs, r.rep, &r.answers, r.opts.seed, stopDrivers)
		}(cs)
	}
	defer func() {
		close(stopDrivers)
		drivers.Wait()
	}()

	// The follower's lag metrics must be visible before any promotion.
	r.checkFollowerMetrics(b)

	primary, standby := a, b
	for kill := 0; kill < r.opts.kills; kill++ {
		// 1. Wait for the standby to be ready to take over: caught up, or
		// the primary already dead (an armed fault fired on its own
		// schedule), or the standby already auto-promoted.
		if err := r.waitStandbyReady(standby, primary, 60*time.Second); err != nil {
			return fmt.Errorf("kill %d: %w", kill, err)
		}
		r.scrape(primary)
		r.scrape(standby)

		// 2. Ensure the primary is dead. An armed daemon executes its own
		// crash inside the armed compaction phase; give it time, then fall
		// back to a plain SIGKILL mid-traffic (which, at a 2ms group-commit
		// window under 24 drivers, lands inside the commit path routinely).
		switch {
		case primary.exited():
			if primary.fault != "" {
				r.faultKills++
			}
		case primary.fault != "":
			deadline := time.Now().Add(8 * time.Second)
			fired := false
			for time.Now().Before(deadline) {
				if primary.waitExit(300 * time.Millisecond) {
					fired = true
					break
				}
			}
			if fired {
				r.faultKills++
			} else {
				primary.kill(syscall.SIGKILL)
			}
		default:
			time.Sleep(time.Duration(100+rng.Intn(400)) * time.Millisecond)
			primary.kill(syscall.SIGKILL)
		}
		if !primary.waitExit(5 * time.Second) {
			return fmt.Errorf("kill %d: gpsd %s survived SIGKILL", kill, primary.name)
		}

		// 3. Promote the standby and verify the fencing epoch advanced.
		st, err := r.promote(standby)
		if err != nil {
			return fmt.Errorf("kill %d: %w", kill, err)
		}
		if st.Epoch <= r.lastEpoch {
			r.rep.violatef("kill %d: promotion epoch did not advance: %d -> %d", kill, r.lastEpoch, st.Epoch)
		}
		r.lastEpoch = st.Epoch
		r.promotions++
		// Pin the new epoch into the shared failover client before the old
		// primary can come back: every request it then receives carries the
		// successor epoch and fences it on contact.
		if _, err := r.cli.ReplicationStatus(context.Background()); err != nil {
			r.rep.violatef("kill %d: failover client could not reach the new primary: %v", kill, err)
		}
		if kill == 0 {
			r.checkPromotedMetrics(standby)
		}
		// Sweep through the new primary's own client (fast-fail, no
		// failover retries): every session must have survived the takeover.
		sweepChaos(standby.cli, r.specs, r.rep)

		// 4. Periodically resurrect the deposed primary on its untouched
		// data directory and prove fencing keeps it harmless. The cadence
		// avoids epochs whose fresh primary carries an armed fault — the
		// fence check takes seconds, and the fault must not fire while the
		// deposed daemon still owns its un-wiped directory.
		if kill%4 == 2 {
			r.fenceCheck(primary, r.lastEpoch)
			r.fenceChecks++
		}

		// 5. Re-seed the old primary as a follower of the new one. Its
		// directory is wiped first: generation counters are per-directory,
		// and a divergent history must never resume by coincidence. Wait
		// for the initial sync before the next epoch, so an armed fault on
		// the current primary always crashes with a synced standby ready.
		if err := os.RemoveAll(primary.dataDir); err != nil {
			return fmt.Errorf("kill %d: wipe %s: %w", kill, primary.dataDir, err)
		}
		if err := primary.startFollower(standby.url(), armFault(followerStarts, r.opts.kills)); err != nil {
			return fmt.Errorf("kill %d: re-seed follower: %w", kill, err)
		}
		followerStarts++
		if err := r.waitStandbyReady(primary, standby, 60*time.Second); err != nil {
			return fmt.Errorf("kill %d: re-seeded follower: %w", kill, err)
		}

		primary, standby = standby, primary
		r.epoch++
		if r.opts.verbose {
			fmt.Printf("failover: kill %d/%d done (primary now %s, epoch %d)\n", kill+1, r.opts.kills, primary.name, r.lastEpoch)
		}
	}

	// Kill budget spent: drive every session home through the failover
	// client and compare against the oracle.
	sweepChaos(r.cli, r.specs, r.rep)
	if err := awaitChaosDone(r.specs, 3*time.Minute); err != nil {
		return err
	}
	r.scrape(primary)
	r.scrape(standby)
	finals := make([]service.SessionView, len(r.specs))
	for i, cs := range r.specs {
		v, ok := cs.view()
		if !ok || v.Status != service.StatusDone {
			r.rep.violatef("session %s (spec %d) did not finish: %+v", cs.sid, i, v)
		}
		finals[i] = v
	}
	oracle, err := runChaosOracle(r.specs, r.opts.seed)
	if err != nil {
		return fmt.Errorf("oracle run: %w", err)
	}
	for i, want := range oracle {
		got := finals[i]
		if got.Learned != want.Learned || got.Halt != want.Halt || got.Labels != want.Labels || got.Status != want.Status {
			r.rep.violatef("spec %d diverged from the text-engine oracle across %d failovers:\n  daemon learned=%q halt=%q labels=%d status=%s\n  oracle learned=%q halt=%q labels=%d status=%s",
				i, r.promotions, got.Learned, got.Halt, got.Labels, got.Status, want.Learned, want.Halt, want.Labels, want.Status)
		}
	}
	return nil
}

// waitStandbyReady blocks until the standby is caught up (connected, has
// applied frames, and is at — or within a heartbeat of — the primary's
// tail), or the situation has already moved on: the primary died by
// itself, or the standby auto-promoted. A dead primary only counts once
// the standby holds *some* replicated state — promoting a follower that
// never completed its initial sync would manufacture data loss the
// protocol did not cause.
func (r *failoverRun) waitStandbyReady(standby, primary *foDaemon, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		st, err := standby.cli.ReplicationStatus(context.Background())
		if err == nil {
			if st.Role == "primary" {
				return nil
			}
			// "Has really synced" cannot rely on frame counters alone: a
			// promoted primary restarts its cumulative counters at zero, so
			// an all-finished workload never raises them again. Applied
			// position and graph sync witness the transfer instead.
			if f := st.Follower; f != nil && (f.AppliedFrames > 0 || f.AppliedSeg > 0 || f.Graphs > 0) {
				if primary.exited() {
					return nil
				}
				if f.Connected && (f.LagFrames == 0 || f.LagSeconds < 1.0) {
					return nil
				}
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	detail := func(d *foDaemon) string {
		st, err := d.cli.ReplicationStatus(context.Background())
		if err != nil {
			return fmt.Sprintf("%s: %v", d.name, err)
		}
		b, _ := json.Marshal(st)
		return fmt.Sprintf("%s: %s", d.name, b)
	}
	return fmt.Errorf("standby %s not caught up within %s\n  %s\n  %s",
		standby.name, timeout, detail(standby), detail(primary))
}

// promote drives the standby to the primary role: an explicit POST
// /v1/admin/promote, retried because it may race the follower's own
// auto-promotion (the handler is idempotent in both directions).
func (r *failoverRun) promote(standby *foDaemon) (service.ReplicationStatus, error) {
	deadline := time.Now().Add(20 * time.Second)
	var lastErr error
	for time.Now().Before(deadline) {
		st, err := standby.cli.Promote(context.Background())
		if err == nil && st.Role == "primary" {
			return st, nil
		}
		if err != nil {
			lastErr = err
		} else {
			lastErr = fmt.Errorf("role %q after promote", st.Role)
		}
		time.Sleep(100 * time.Millisecond)
	}
	return service.ReplicationStatus{}, fmt.Errorf("promote %s: %v", standby.name, lastErr)
}

// fenceCheck resurrects the deposed primary on its untouched data
// directory and proves the fencing protocol keeps it harmless: the first
// request carrying the successor epoch latches the fence, writes are
// refused with 503/"fenced", the status reports fenced, and the FENCED
// marker survives the daemon's own restart.
func (r *failoverRun) fenceCheck(old *foDaemon, successorEpoch uint64) {
	if err := old.start(nil, ""); err != nil {
		r.rep.violatef("fence check: resurrect %s: %v", old.name, err)
		return
	}
	if code, apiCode := r.pokeFenced(old, successorEpoch); code != http.StatusServiceUnavailable || apiCode != string(service.CodeFenced) {
		r.rep.violatef("fence check: deposed %s accepted a write carrying successor epoch %d (status=%d code=%q, want 503 %q)",
			old.name, successorEpoch, code, apiCode, service.CodeFenced)
	}
	if st, err := old.cli.ReplicationStatus(context.Background()); err != nil {
		r.rep.violatef("fence check: status on fenced %s: %v", old.name, err)
	} else if !st.Fenced {
		r.rep.violatef("fence check: %s does not report fenced after refusing a write", old.name)
	}
	// The fence must be durable: restart the deposed daemon and expect it
	// to refuse writes even without any epoch header.
	old.kill(syscall.SIGTERM)
	if !old.waitExit(10 * time.Second) {
		old.kill(syscall.SIGKILL)
		old.waitExit(5 * time.Second)
	}
	if err := old.start(nil, ""); err != nil {
		r.rep.violatef("fence check: restart fenced %s: %v", old.name, err)
		return
	}
	if code, apiCode := r.pokeFenced(old, 0); code != http.StatusServiceUnavailable || apiCode != string(service.CodeFenced) {
		r.rep.violatef("fence check: %s forgot its fence across a restart (status=%d code=%q, want 503 %q)",
			old.name, code, apiCode, service.CodeFenced)
	}
	if st, err := old.cli.ReplicationStatus(context.Background()); err == nil && !st.Fenced {
		r.rep.violatef("fence check: %s lost fenced status across a restart", old.name)
	}
	old.kill(syscall.SIGTERM)
	if !old.waitExit(10 * time.Second) {
		old.kill(syscall.SIGKILL)
		old.waitExit(5 * time.Second)
	}
}

// pokeFenced sends one mutating request (an admin compact) to the deposed
// daemon, optionally carrying the successor epoch, and returns the HTTP
// status and typed API error code. Raw HTTP on purpose: the typed client
// re-resolves away from fenced daemons, which is exactly the behavior
// this probe must bypass.
func (r *failoverRun) pokeFenced(old *foDaemon, epoch uint64) (int, string) {
	req, err := http.NewRequest(http.MethodPost, old.url()+"/v1/admin/compact", nil)
	if err != nil {
		return 0, ""
	}
	if epoch > 0 {
		req.Header.Set(service.EpochHeader, fmt.Sprint(epoch))
	}
	hc := &http.Client{Timeout: 5 * time.Second}
	resp, err := hc.Do(req)
	if err != nil {
		return 0, ""
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var e struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	_ = json.Unmarshal(body, &e)
	return resp.StatusCode, e.Error.Code
}

// scrape records one /metrics body per daemon into the telemetry
// artifact. Best effort: the daemon may be mid-murder.
func (r *failoverRun) scrape(d *foDaemon) string {
	body, err := d.cli.Metrics(context.Background())
	if err != nil {
		return ""
	}
	r.tel.record(r.epoch, d.url(), body)
	return body
}

// checkFollowerMetrics asserts the follower-side replication families are
// live on a (not yet promoted) follower: role 0 and a lag gauge.
func (r *failoverRun) checkFollowerMetrics(d *foDaemon) {
	body := r.scrape(d)
	if body == "" {
		r.rep.violatef("follower %s /metrics unreachable before promotion", d.name)
		return
	}
	if !metricPresent(body, "gpsd_repl_role", "0") {
		r.rep.violatef("follower %s /metrics missing gpsd_repl_role 0 before promotion", d.name)
	}
	if !metricPresent(body, "gpsd_repl_lag_frames", "") {
		r.rep.violatef("follower %s /metrics missing gpsd_repl_lag_frames before promotion", d.name)
	}
}

// checkPromotedMetrics asserts the role gauge flipped and the primary
// families appeared after a promotion, on the same registry.
func (r *failoverRun) checkPromotedMetrics(d *foDaemon) {
	body := r.scrape(d)
	if body == "" {
		r.rep.violatef("promoted %s /metrics unreachable after promotion", d.name)
		return
	}
	if !metricPresent(body, "gpsd_repl_role", "1") {
		r.rep.violatef("promoted %s /metrics missing gpsd_repl_role 1 after promotion", d.name)
	}
	if !metricPresent(body, "gpsd_repl_epoch", "") {
		r.rep.violatef("promoted %s /metrics missing gpsd_repl_epoch after promotion", d.name)
	}
}

// metricPresent reports whether the exposition body has a sample for the
// named family, optionally requiring an exact value.
func metricPresent(body, name, value string) bool {
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, name) || strings.HasPrefix(line, "#") {
			continue
		}
		rest := line[len(name):]
		if rest == "" || (rest[0] != ' ' && rest[0] != '{') {
			continue // a longer family sharing the prefix
		}
		if value == "" {
			return true
		}
		if i := strings.LastIndexByte(line, ' '); i >= 0 && strings.TrimSpace(line[i+1:]) == value {
			return true
		}
	}
	return false
}
