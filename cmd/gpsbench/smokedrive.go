package main

// Smoke-drive modes: the typed-client half of scripts/smoke_gpsd.sh. The
// shell script keeps what shell is good at — booting daemons, sending
// signals, checking LOCK files — and delegates every session-level check
// to these modes, which drive the v1 API through pkg/client and assert on
// typed error codes instead of grepping response prose:
//
//	gpsbench -smokedrive eval      # evaluate + graph load + error/pagination contract
//	gpsbench -smokedrive simulate  # simulated session to convergence (prints its id)
//	gpsbench -smokedrive checkdone # a finished session: view, hypothesis, SSE replay
//	gpsbench -smokedrive park      # manual session parked on its satisfied question
//	gpsbench -smokedrive snapshot  # settled view+hypothesis -> -smoke-out (for diffing)
//	gpsbench -smokedrive auth      # keyed vs unkeyed access against a keyring daemon
//
// Each mode exits non-zero with a one-line reason on any violated check,
// so the shell driver stays a thin `set -e` pipeline.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/service"
	"repro/pkg/client"
)

// smokeOptions carries the -smoke-* flags into a drive mode.
type smokeOptions struct {
	base    string
	mode    string
	session string
	out     string
	key     string
	// expectUnauthorized flips the auth mode: the key must be rejected
	// (revoked-after-SIGHUP checks).
	expectUnauthorized bool
}

func runSmokeDrive(opts smokeOptions) error {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var copts []client.Option
	if opts.key != "" {
		copts = append(copts, client.WithAPIKey(opts.key))
	}
	c := client.New(opts.base, copts...)
	switch opts.mode {
	case "eval":
		return smokeEval(ctx, c)
	case "simulate":
		return smokeSimulate(ctx, c)
	case "checkdone":
		return smokeCheckDone(ctx, c, opts.session)
	case "park":
		return smokePark(ctx, c)
	case "snapshot":
		return smokeSnapshot(ctx, c, opts.session, opts.out)
	case "auth":
		return smokeAuth(ctx, opts)
	default:
		return fmt.Errorf("unknown -smokedrive mode %q", opts.mode)
	}
}

// smokeEval pins the evaluation path and the API contract around it: the
// paper's goal query on the preloaded Figure 1 graph, an inline graph
// load, typed error codes for every canonical failure, and a paginated
// graph walk that agrees with the unpaged listing.
func smokeEval(ctx context.Context, c *client.Client) error {
	res, err := c.Evaluate(ctx, "demo", client.EvaluateRequest{Query: "(tram+bus)*.cinema", Witnesses: true})
	if err != nil {
		return fmt.Errorf("evaluate: %w", err)
	}
	if res.Count != 4 || len(res.Witnesses) != 4 {
		return fmt.Errorf("evaluate: count=%d witnesses=%d, want 4/4", res.Count, len(res.Witnesses))
	}
	if _, err := c.LoadGraph(ctx, "tiny", service.LoadSpec{Format: "text", Data: "edge a tram b\nedge b cinema c\n"}); err != nil {
		return fmt.Errorf("load tiny graph: %w", err)
	}

	// The error contract: stable codes, not message prose.
	checks := []struct {
		want service.ErrorCode
		got  error
	}{
		{service.CodeSessionNotFound, second(c.Session(ctx, "no-such-session"))},
		{service.CodeGraphNotFound, second(c.Graph(ctx, "no-such-graph"))},
		{service.CodeInvalidRequest, second(c.Evaluate(ctx, "demo", client.EvaluateRequest{Query: "(((("}))},
		{service.CodeInvalidCursor, second(c.GraphsPage(ctx, 1, "not-a-cursor"))},
	}
	for _, chk := range checks {
		if !client.IsCode(chk.got, chk.want) {
			return fmt.Errorf("error contract: got %v, want code %q", chk.got, chk.want)
		}
		var ae *client.APIError
		if errorsAs(chk.got, &ae); ae == nil || ae.RequestID == "" {
			return fmt.Errorf("error contract: %v carries no request id", chk.got)
		}
	}

	// Paginated walk (limit 1) must visit exactly the unpaged listing.
	all, err := c.Graphs(ctx)
	if err != nil {
		return fmt.Errorf("list graphs: %w", err)
	}
	var walked []string
	cursor := ""
	for {
		p, err := c.GraphsPage(ctx, 1, cursor)
		if err != nil {
			return fmt.Errorf("paged graphs: %w", err)
		}
		for _, g := range p.Graphs {
			walked = append(walked, g.Name)
		}
		if p.NextCursor == "" {
			break
		}
		cursor = p.NextCursor
	}
	if len(walked) != len(all) {
		return fmt.Errorf("paged graph walk saw %v, unpaged saw %d graphs", walked, len(all))
	}
	fmt.Println("smokedrive: eval ok")
	return nil
}

// smokeSimulate drives one simulated session to convergence and prints
// its id (the shell driver re-checks it across restarts).
func smokeSimulate(ctx context.Context, c *client.Client) error {
	v, err := c.CreateSession(ctx, service.SessionConfig{Graph: "demo", Mode: "simulated", Goal: "(tram+bus)*.cinema"})
	if err != nil {
		return fmt.Errorf("create simulated session: %w", err)
	}
	for v.Status != service.StatusDone {
		if v.Status == service.StatusFailed {
			return fmt.Errorf("simulated session failed: %s", v.Error)
		}
		if err := sleepSmoke(ctx); err != nil {
			return err
		}
		if v, err = c.Session(ctx, v.ID); err != nil {
			return fmt.Errorf("poll session: %w", err)
		}
	}
	if v.Halt != "user-satisfied" {
		return fmt.Errorf("simulated session halt = %q, want user-satisfied", v.Halt)
	}
	fmt.Println(v.ID)
	return nil
}

// smokeCheckDone re-checks a finished session after a restart: status and
// halt survived, the hypothesis still selects the four neighbourhoods,
// and the SSE stream replays the whole journal down to the terminal done.
func smokeCheckDone(ctx context.Context, c *client.Client, sid string) error {
	if sid == "" {
		return fmt.Errorf("checkdone needs -smoke-session")
	}
	v, err := c.Session(ctx, sid)
	if err != nil {
		return fmt.Errorf("get session: %w", err)
	}
	if v.Status != service.StatusDone || v.Halt != "user-satisfied" {
		return fmt.Errorf("session %s = status %q halt %q, want done/user-satisfied", sid, v.Status, v.Halt)
	}
	hyp, err := c.Hypothesis(ctx, sid, "")
	if err != nil {
		return fmt.Errorf("hypothesis: %w", err)
	}
	if hyp.Learned == "" || hyp.Count != 4 {
		return fmt.Errorf("hypothesis = %+v, want a learned query selecting 4 nodes", hyp)
	}
	stream, err := c.Events(ctx, sid, 0)
	if err != nil {
		return fmt.Errorf("open events: %w", err)
	}
	defer stream.Close()
	first, last := "", ""
	for {
		ev, err := stream.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("read events: %w", err)
		}
		if first == "" {
			first = ev.Type
		}
		last = ev.Type
	}
	if first != "create" || last != "done" {
		return fmt.Errorf("SSE replay ran %q..%q, want create..done", first, last)
	}
	fmt.Println("smokedrive: checkdone ok")
	return nil
}

// smokePark creates a manual session and walks it to its satisfied
// question: one positive label in, then parked. Prints the session id.
func smokePark(ctx context.Context, c *client.Client) error {
	v, err := c.CreateSession(ctx, service.SessionConfig{Graph: "demo", Mode: "manual"})
	if err != nil {
		return fmt.Errorf("create manual session: %w", err)
	}
	if err := waitQuestion(ctx, c, v.ID, "label"); err != nil {
		return err
	}
	v, err = c.Session(ctx, v.ID)
	if err != nil {
		return err
	}
	if _, err := c.Answer(ctx, v.ID, service.Answer{Seq: v.Pending.Seq, Decision: "positive"}); err != nil {
		return fmt.Errorf("answer label question: %w", err)
	}
	if err := waitQuestion(ctx, c, v.ID, "satisfied"); err != nil {
		return err
	}
	fmt.Println(v.ID)
	return nil
}

// smokeSnapshot waits for the session to settle on its satisfied question
// and writes {view, hypothesis} to out — the shell driver byte-diffs the
// snapshots taken before and after each kill.
func smokeSnapshot(ctx context.Context, c *client.Client, sid, out string) error {
	if sid == "" || out == "" {
		return fmt.Errorf("snapshot needs -smoke-session and -smoke-out")
	}
	if err := waitQuestion(ctx, c, sid, "satisfied"); err != nil {
		return err
	}
	v, err := c.Session(ctx, sid)
	if err != nil {
		return err
	}
	hyp, err := c.Hypothesis(ctx, sid, "")
	if err != nil {
		return fmt.Errorf("hypothesis: %w", err)
	}
	data, err := json.MarshalIndent(map[string]any{"view": v, "hypothesis": hyp}, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("smokedrive: snapshot of %s -> %s\n", sid, out)
	return nil
}

// smokeAuth checks the keyring contract from outside: an unkeyed client
// is rejected with the unauthorized code (while /healthz stays exempt),
// and the provided key either works — creating a session that lands on
// its tenant — or, with -smoke-expect-unauthorized, is rejected too.
func smokeAuth(ctx context.Context, opts smokeOptions) error {
	bare := client.New(opts.base)
	if err := bare.Health(ctx); err != nil {
		return fmt.Errorf("healthz must stay auth-exempt: %w", err)
	}
	if _, err := bare.Graphs(ctx); !client.IsCode(err, service.CodeUnauthorized) {
		return fmt.Errorf("unkeyed request: got %v, want code unauthorized", err)
	}
	if opts.key == "" {
		return fmt.Errorf("auth mode needs -smoke-key")
	}
	keyed := client.New(opts.base, client.WithAPIKey(opts.key))
	v, err := keyed.CreateSession(ctx, service.SessionConfig{Graph: "demo", Mode: "simulated", Goal: "(tram+bus)*.cinema"})
	if opts.expectUnauthorized {
		if !client.IsCode(err, service.CodeUnauthorized) {
			return fmt.Errorf("revoked key: got %v, want code unauthorized", err)
		}
		fmt.Println("smokedrive: auth ok (key rejected as expected)")
		return nil
	}
	if err != nil {
		return fmt.Errorf("keyed create session: %w", err)
	}
	if v.Tenant == "" {
		return fmt.Errorf("keyed session carries no tenant: %+v", v)
	}
	stats, err := keyed.TenantStats(ctx)
	if err != nil {
		return fmt.Errorf("tenant stats: %w", err)
	}
	if bp, ok := stats[v.Tenant]; !ok || bp.Admitted < 1 {
		return fmt.Errorf("tenant stats for %q = %+v (ok=%v), want >=1 admitted", v.Tenant, stats[v.Tenant], ok)
	}
	fmt.Printf("smokedrive: auth ok (tenant %s)\n", v.Tenant)
	return nil
}

// waitQuestion polls until the session's pending question has the wanted
// kind.
func waitQuestion(ctx context.Context, c *client.Client, sid, kind string) error {
	for {
		v, err := c.Session(ctx, sid)
		if err != nil {
			return fmt.Errorf("poll session %s: %w", sid, err)
		}
		if v.Pending != nil && v.Pending.Kind == kind {
			return nil
		}
		if v.Status == service.StatusDone || v.Status == service.StatusFailed {
			return fmt.Errorf("session %s finished (%s) while waiting for a %q question", sid, v.Status, kind)
		}
		if err := sleepSmoke(ctx); err != nil {
			return fmt.Errorf("waiting for %q question on %s: %w", kind, sid, err)
		}
	}
}

func sleepSmoke(ctx context.Context) error {
	t := time.NewTimer(50 * time.Millisecond)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// second drops a call's value, keeping the error — lets the error-contract
// table stay expression-shaped.
func second[T any](_ T, err error) error { return err }

// errorsAs is errors.As without importing errors twice under its own name
// in this file's call sites.
func errorsAs(err error, target **client.APIError) {
	for err != nil {
		if ae, ok := err.(*client.APIError); ok {
			*target = ae
			return
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return
		}
		err = u.Unwrap()
	}
}
