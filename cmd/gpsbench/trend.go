package main

// Bench trend history: every -rpqbench/-storebench/-learnbench run appends
// its summary, timestamped, to a .jsonl file next to the .json output
// (BENCH_rpq.json -> BENCH_rpq.jsonl). The .json file stays a
// latest-run-only artifact for the gates; the .jsonl file accumulates one
// row per run, so a sequence of CI runs (or local runs on one machine)
// yields a comparable time series. The gates print the trend of their
// headline number against the previous recorded run, turning "passed the
// floor" into "passed the floor, and here is which way it is drifting".

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// benchHistoryRow is one line of a BENCH_*.jsonl history file.
type benchHistoryRow struct {
	TS      string          `json:"ts"`
	Summary json.RawMessage `json:"summary"`
}

// historyPath derives the .jsonl history path from a summary output path:
// BENCH_rpq.json -> BENCH_rpq.jsonl.
func historyPath(outPath string) string {
	return strings.TrimSuffix(outPath, filepath.Ext(outPath)) + ".jsonl"
}

// appendBenchHistory appends {"ts": ..., "summary": ...} to the history
// file of outPath. History is an operator aid: a failure to append is
// reported but never fails the bench run that produced the summary.
func appendBenchHistory(outPath string, summary any) {
	row := struct {
		TS      string `json:"ts"`
		Summary any    `json:"summary"`
	}{TS: time.Now().UTC().Format(time.RFC3339), Summary: summary}
	data, err := json.Marshal(row)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gpsbench: bench history: %v\n", err)
		return
	}
	data = append(data, '\n')
	hp := historyPath(outPath)
	f, err := os.OpenFile(hp, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gpsbench: bench history: %v\n", err)
		return
	}
	defer f.Close()
	if _, err := f.Write(data); err != nil {
		fmt.Fprintf(os.Stderr, "gpsbench: bench history %s: %v\n", hp, err)
		return
	}
	fmt.Printf("appended history row to %s\n", hp)
}

// readBenchHistory loads the history rows for outPath, oldest first.
// Malformed lines (a crashed writer, a manual edit) are skipped rather
// than poisoning the whole series.
func readBenchHistory(outPath string) []benchHistoryRow {
	f, err := os.Open(historyPath(outPath))
	if err != nil {
		return nil
	}
	defer f.Close()
	var rows []benchHistoryRow
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var row benchHistoryRow
		if err := json.Unmarshal([]byte(line), &row); err != nil || row.Summary == nil {
			continue
		}
		rows = append(rows, row)
	}
	return rows
}

// printTrend reports how the headline metric moved between the two most
// recent history rows of outPath. extract pulls the metric out of one
// summary; lowerIsBetter flips the improvement arrow for ns/op-style
// metrics. With fewer than two usable rows there is no trend yet, which
// is stated rather than silently omitted.
func printTrend(outPath, metric, unit string, lowerIsBetter bool, extract func(json.RawMessage) (float64, bool)) {
	rows := readBenchHistory(outPath)
	type point struct {
		ts  string
		val float64
	}
	var pts []point
	for _, row := range rows {
		if v, ok := extract(row.Summary); ok {
			pts = append(pts, point{ts: row.TS, val: v})
		}
	}
	hp := historyPath(outPath)
	if len(pts) < 2 {
		fmt.Printf("trend: %d run(s) in %s; need 2 for a %s delta\n", len(pts), hp, metric)
		return
	}
	prev, cur := pts[len(pts)-2], pts[len(pts)-1]
	deltaPct := 0.0
	if prev.val != 0 {
		deltaPct = (cur.val - prev.val) / prev.val * 100
	}
	direction := "flat"
	improved := cur.val > prev.val
	if lowerIsBetter {
		improved = cur.val < prev.val
	}
	if cur.val != prev.val {
		direction = "worse"
		if improved {
			direction = "better"
		}
	}
	fmt.Printf("trend: %s %.2f%s -> %.2f%s (%+.1f%%, %s) vs previous run %s (%d runs in %s)\n",
		metric, prev.val, unit, cur.val, unit, deltaPct, direction, prev.ts, len(pts), hp)
}

// medianNsFromSummary pulls the median ns/op across all benchmarks out of
// an rpqbench summary — the same aggregate -benchcmp gates on.
func medianNsFromSummary(raw json.RawMessage) (float64, bool) {
	var summary rpqBenchSummary
	if err := json.Unmarshal(raw, &summary); err != nil || len(summary.Results) == 0 {
		return 0, false
	}
	ns := make([]float64, 0, len(summary.Results))
	for _, r := range summary.Results {
		ns = append(ns, r.NsPerOp)
	}
	sort.Float64s(ns)
	median := ns[len(ns)/2]
	if len(ns)%2 == 0 {
		median = (ns[len(ns)/2-1] + ns[len(ns)/2]) / 2
	}
	return median, true
}

// floatFieldFromSummary extracts one top-level numeric field (e.g.
// "speedup_16_sessions") out of a summary row.
func floatFieldFromSummary(field string) func(json.RawMessage) (float64, bool) {
	return func(raw json.RawMessage) (float64, bool) {
		var m map[string]json.RawMessage
		if err := json.Unmarshal(raw, &m); err != nil {
			return 0, false
		}
		var v float64
		if err := json.Unmarshal(m[field], &v); err != nil {
			return 0, false
		}
		return v, true
	}
}
