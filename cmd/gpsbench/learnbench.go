package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/interactive"
	"repro/internal/learn"
	"repro/internal/regex"
	"repro/internal/rpq"
	"repro/internal/user"
)

// Learner micro-benchmark harness: -learnbench measures the paper's
// central algorithm — the RPNI-style generalization of learn.Learn — the
// way the service runs it, on the transport graphs, and writes a
// machine-readable summary so the learner's performance trajectory is
// tracked across PRs like the RPQ core's and the store's.
//
// Three axes are measured:
//
//   - full Learn calls on 10x10 and 60x60 transport networks with a
//     12-positive / 12-negative sample whose witness words form a bushy
//     prefix tree (the goal query below has bounded shape, so the grid
//     supplies negatives that random-walk the product during every
//     candidate check — the worst case for the merge loop). Each
//     configuration runs on both engines: the dense union-find/bitset
//     engine and the map-based reference oracle (learn.Options.Reference);
//     the headline number is the median reference/dense speedup on the
//     60x60 workload, and -learngate enforces a same-machine floor in CI;
//   - the steady-state candidate-merge check alone (learn.NewMergeCheck)
//     through testing.Benchmark, whose allocs/op must be 0 — the merge
//     fold of a Learn call runs it O(n²) times;
//   - interactive-session convergence: one simulated session driven to
//     user-satisfied on each transport graph, as wall time and label
//     count (every learner round runs a full Learn call, so this is the
//     end-to-end view of the same hot path).

// learnBenchGoal has bounded shape on purpose: with a Kleene-starred goal
// every grid node of a strongly connected transport network is selected
// and no negative example can walk the product, which makes candidate
// checks trivially cheap and unrepresentative.
const learnBenchGoal = "(tram+bus).(tram+bus).(tram+bus).(tram+bus).cinema"

const (
	learnBenchPositives = 12
	learnBenchNegatives = 12
	learnBenchMaxLen    = 6
	learnBenchRuns      = 7
)

type learnBenchRow struct {
	Name     string  `json:"name"`
	Engine   string  `json:"engine"`
	Runs     int     `json:"runs"`
	MedianNs float64 `json:"median_ns_per_op"`
	MinNs    float64 `json:"min_ns_per_op"`
	// Positives and Negatives are the sample the row actually measured:
	// buildLearnSample tolerates thin graphs (missing patterns, fewer
	// unselected nodes than requested), so the realised counts can fall
	// short of the learnBenchPositives/learnBenchNegatives targets.
	Positives int `json:"positives"`
	Negatives int `json:"negatives"`
}

type learnConvergenceRow struct {
	Graph     string  `json:"graph"`
	Labels    int     `json:"labels"`
	Halt      string  `json:"halt"`
	WallMs    float64 `json:"wall_ms"`
	Learned   string  `json:"learned"`
	PerRoundC float64 `json:"ms_per_label"`
}

type learnBenchSummary struct {
	Goal       string `json:"goal"`
	Graph      string `json:"graph"`
	LargeGraph string `json:"large_graph"`
	// Positives and Negatives are the realised sample sizes of the gated
	// 60x60 workload (see the per-row counts for the other graphs).
	Positives        int                   `json:"positives"`
	Negatives        int                   `json:"negatives"`
	PTAStates        int                   `json:"pta_states"`
	Rows             []learnBenchRow       `json:"results"`
	Speedup10        float64               `json:"speedup_10x10"`
	Speedup60        float64               `json:"speedup_60x60"`
	MergeCheckNs     float64               `json:"merge_check_ns_per_op"`
	MergeCheckAllocs int64                 `json:"merge_check_allocs_per_op"`
	MergeCheckBytes  int64                 `json:"merge_check_bytes_per_op"`
	Convergence      []learnConvergenceRow `json:"convergence"`
}

// buildLearnSample derives a deterministic sample from the goal query:
// one positive per {tram,bus}⁴·cinema pattern, validated with exactly that
// word — the words share prefixes pairwise-differently, so the prefix tree
// is bushy (~39 states) and the merge fold attempts O(n²) candidates.
// Negatives are unselected grid nodes with outgoing edges, spread across
// the grid, whose free tram/bus walks make the product reachability of
// every candidate check do real work.
func buildLearnSample(g *graph.Graph, engine *rpq.Engine) (*learn.Sample, error) {
	var negatives []graph.NodeID
	for _, n := range g.Nodes() {
		if !engine.Selects(n) && g.OutDegree(n) > 0 {
			negatives = append(negatives, n)
		}
	}
	if len(negatives) == 0 {
		return nil, fmt.Errorf("learnbench: no unselected grid node to use as negative")
	}
	sample := learn.NewSample()
	added := 0
	for p := 0; p < 16 && added < learnBenchPositives; p++ {
		word := make([]string, 0, 5)
		for b := 0; b < 4; b++ {
			if p>>b&1 == 1 {
				word = append(word, "tram")
			} else {
				word = append(word, "bus")
			}
		}
		word = append(word, "cinema")
		we := rpq.New(g, regex.MustParse(strings.Join(word, ".")))
		for _, n := range we.Selected() {
			if !sample.Labeled(n) {
				sample.AddPositive(n, word)
				added++
				break
			}
		}
	}
	if added < learnBenchPositives/2 {
		return nil, fmt.Errorf("learnbench: only %d of %d positive patterns occur in the graph", added, learnBenchPositives)
	}
	for i := 0; i < learnBenchNegatives; i++ {
		sample.AddNegative(negatives[i*len(negatives)/learnBenchNegatives%len(negatives)])
	}
	return sample, nil
}

// medianLearn runs Learn repeatedly on clones of the sample and returns
// the median and minimum wall time per call.
func medianLearn(g *graph.Graph, sample *learn.Sample, opts learn.Options, runs int) (median, minimum float64, err error) {
	times := make([]float64, 0, runs)
	for r := 0; r < runs; r++ {
		clone := sample.Clone()
		start := time.Now()
		if _, err := learn.Learn(g, clone, opts); err != nil {
			return 0, 0, err
		}
		times = append(times, float64(time.Since(start).Nanoseconds()))
	}
	sort.Float64s(times)
	return times[len(times)/2], times[0], nil
}

// runConvergence drives one simulated session to convergence and reports
// label effort and wall time.
func runConvergence(size int, seed int64) (learnConvergenceRow, error) {
	row := learnConvergenceRow{Graph: fmt.Sprintf("transport-%dx%d", size, size)}
	g := dataset.Transport(dataset.TransportOptions{Rows: size, Cols: size, Seed: seed, FacilityRate: 0.3})
	goal := regex.MustParse("(tram+bus)*.cinema")
	u := user.NewSimulated(g, goal)
	start := time.Now()
	tr, err := interactive.Run(g, u, interactive.Options{
		PathValidation:  true,
		MaxInteractions: g.NumNodes(),
	})
	if err != nil {
		return row, fmt.Errorf("learnbench: convergence on %s: %w", row.Graph, err)
	}
	row.WallMs = float64(time.Since(start).Nanoseconds()) / 1e6
	row.Labels = tr.Labels()
	row.Halt = string(tr.Halt)
	if tr.Final != nil {
		row.Learned = tr.Final.String()
	}
	if row.Labels > 0 {
		row.PerRoundC = row.WallMs / float64(row.Labels)
	}
	return row, nil
}

// runLearnBench runs the learner benchmarks and writes the JSON summary to
// outPath.
func runLearnBench(outPath string, seed int64) error {
	goal := regex.MustParse(learnBenchGoal)
	summary := learnBenchSummary{Goal: learnBenchGoal}
	opts := learn.Options{MaxPathLength: learnBenchMaxLen, Parallelism: 1}

	type workload struct {
		size   int
		name   string
		target *float64
	}
	var sample60 *learn.Sample
	var graph60 *graph.Graph
	for _, wl := range []workload{
		{10, "Learn10x10", &summary.Speedup10},
		{60, "Learn60x60", &summary.Speedup60},
	} {
		g := dataset.Transport(dataset.TransportOptions{Rows: wl.size, Cols: wl.size, Seed: seed, FacilityRate: 0.3})
		engine := rpq.New(g, goal)
		sample, err := buildLearnSample(g, engine)
		if err != nil {
			return err
		}
		desc := fmt.Sprintf("transport-%dx%d (%d nodes, %d edges)", wl.size, wl.size, g.NumNodes(), g.NumEdges())
		if wl.size == 10 {
			summary.Graph = desc
		} else {
			summary.LargeGraph = desc
			sample60, graph60 = sample, g
			summary.Positives = len(sample.Positives)
			summary.Negatives = len(sample.Negatives)
		}
		perEngine := map[string]float64{}
		for _, eng := range []struct {
			key string
			ref bool
		}{{"dense", false}, {"reference", true}} {
			opts.Reference = eng.ref
			median, minimum, err := medianLearn(g, sample, opts, learnBenchRuns)
			if err != nil {
				return fmt.Errorf("learnbench: %s/%s: %w", wl.name, eng.key, err)
			}
			perEngine[eng.key] = median
			summary.Rows = append(summary.Rows, learnBenchRow{
				Name: wl.name, Engine: eng.key, Runs: learnBenchRuns, MedianNs: median, MinNs: minimum,
				Positives: len(sample.Positives), Negatives: len(sample.Negatives),
			})
			fmt.Printf("%-12s %-10s median %10.0f ns/op  min %10.0f ns/op  (%d+/%d-)\n",
				wl.name, eng.key, median, minimum, len(sample.Positives), len(sample.Negatives))
		}
		if d := perEngine["dense"]; d > 0 {
			*wl.target = perEngine["reference"] / d
		}
	}

	// The steady-state merge check: the inner loop of the fold, pinned at
	// zero allocations. One warm-up call grows the pooled scratch.
	check, err := learn.NewMergeCheck(graph60, sample60.Clone(), learn.Options{MaxPathLength: learnBenchMaxLen})
	if err != nil {
		return fmt.Errorf("learnbench: merge check: %w", err)
	}
	summary.PTAStates = check.States()
	check.Run()
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			check.Run()
		}
	})
	summary.MergeCheckNs = float64(r.T.Nanoseconds()) / float64(r.N)
	summary.MergeCheckAllocs = r.AllocsPerOp()
	summary.MergeCheckBytes = r.AllocedBytesPerOp()
	fmt.Printf("%-12s %-10s        %10.0f ns/op  %d B/op  %d allocs/op (PTA %d states)\n",
		"MergeCheck", "dense", summary.MergeCheckNs, summary.MergeCheckBytes, summary.MergeCheckAllocs, summary.PTAStates)

	for _, size := range []int{10, 20} {
		row, err := runConvergence(size, seed)
		if err != nil {
			return err
		}
		summary.Convergence = append(summary.Convergence, row)
		fmt.Printf("converge %-14s %3d labels in %8.1f ms (%.2f ms/label, halt %s)\n",
			row.Graph, row.Labels, row.WallMs, row.PerRoundC, row.Halt)
	}

	fmt.Printf("Learn speedup dense vs reference: 10x10 %.1fx, 60x60 %.1fx\n", summary.Speedup10, summary.Speedup60)
	data, err := json.MarshalIndent(summary, "", "  ")
	if err != nil {
		return fmt.Errorf("learnbench: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return fmt.Errorf("learnbench: %w", err)
	}
	fmt.Printf("wrote %s\n", outPath)
	appendBenchHistory(outPath, summary)
	return nil
}

// runLearnGate is the regression gate over a -learnbench summary: the
// dense engine must keep its advantage over the reference oracle on the
// 60x60 workload, and the steady-state merge check must stay
// allocation-free. Like -storegate, the check is a same-machine ratio
// produced in the same job, so it is robust to absolute runner speed.
func runLearnGate(path string, minSpeedup float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("learngate: %w", err)
	}
	var summary learnBenchSummary
	if err := json.Unmarshal(data, &summary); err != nil {
		return fmt.Errorf("learngate: %s: %w", path, err)
	}
	if len(summary.Rows) == 0 {
		return fmt.Errorf("learngate: %s has no benchmark rows", path)
	}
	fmt.Printf("learngate: 60x60 Learn speedup %.2fx (floor %.2fx), merge check %d allocs/op\n",
		summary.Speedup60, minSpeedup, summary.MergeCheckAllocs)
	printTrend(path, "speedup_60x60", "x", false, floatFieldFromSummary("speedup_60x60"))
	if summary.Speedup60 < minSpeedup {
		return fmt.Errorf("learngate: dense/reference 60x60 speedup %.2fx is below the %.2fx floor",
			summary.Speedup60, minSpeedup)
	}
	if summary.MergeCheckAllocs != 0 {
		return fmt.Errorf("learngate: steady-state merge check allocates %d objects per op, want 0",
			summary.MergeCheckAllocs)
	}
	return nil
}
