package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/dataset"
	"repro/internal/store"
)

// Store micro-benchmark harness: -storebench measures the durable layer
// the way the service loads it — concurrent sessions journaling label
// traffic — and writes a machine-readable summary so the storage-engine
// trajectory is tracked across PRs like the RPQ core's.
//
// Two axes are measured per engine (text JSONL vs binary segmented log):
//
//   - append throughput, 1 session (no batching possible — the group
//     commit's overhead floor) and 16 concurrent sessions (the paper's
//     interactive workload shape, where group commit amortises fsyncs);
//   - recovery wall time for a populated store (16 session journals plus
//     a 60x60 transport graph snapshot), which the binary engine's
//     varint-CSR snapshot codec is built to cut.
//
// The headline number is speedup_16_sessions: binary appends/sec over
// text appends/sec at 16 concurrent sessions. The acceptance bar for the
// group-commit engine is 5x; -storegate enforces a floor in CI.

// labelRecord approximates one journaled label interaction of the
// learning service (an answer plus bookkeeping), so append sizes are
// realistic.
type labelRecord struct {
	Seq      int    `json:"seq"`
	Decision string `json:"decision"`
	Node     string `json:"node"`
	Learned  string `json:"learned,omitempty"`
}

type storeAppendRow struct {
	Engine        string  `json:"engine"`
	Sessions      int     `json:"sessions"`
	Appends       int     `json:"appends"`
	Seconds       float64 `json:"seconds"`
	AppendsPerSec float64 `json:"appends_per_sec"`
	Fsyncs        int64   `json:"fsyncs"`
	MeanBatch     float64 `json:"group_commit_mean_batch,omitempty"`
}

type storeRecoveryRow struct {
	Engine        string  `json:"engine"`
	Sessions      int     `json:"sessions"`
	Records       int     `json:"records"`
	GraphNodes    int     `json:"graph_nodes"`
	GraphEdges    int     `json:"graph_edges"`
	SnapshotBytes int64   `json:"snapshot_bytes"`
	SessionsMs    float64 `json:"recover_sessions_ms"`
	GraphsMs      float64 `json:"recover_graphs_ms"`
}

type storeBenchSummary struct {
	TotalAppends    int                `json:"total_appends"`
	CommitInterval  string             `json:"commit_interval"`
	Appends         []storeAppendRow   `json:"appends"`
	Speedup16       float64            `json:"speedup_16_sessions"`
	RecoverySpeedup float64            `json:"recovery_speedup"`
	Recovery        []storeRecoveryRow `json:"recovery"`
}

const (
	storeBenchAppends       = 960 // total appends per configuration
	storeBenchRecoverySess  = 16
	storeBenchRecoveryRecs  = 60 // records per recovery-benchmark session
	storeBenchRecoveryGraph = 60 // transport grid side
)

// measureAppends drives `total` journal appends spread over `sessions`
// concurrent sessions and reports throughput.
func measureAppends(kind string, sessions, total int, interval time.Duration) (storeAppendRow, error) {
	row := storeAppendRow{Engine: kind, Sessions: sessions, Appends: total}
	dir, err := os.MkdirTemp("", "storebench-*")
	if err != nil {
		return row, err
	}
	defer os.RemoveAll(dir)
	eng, err := store.OpenEngine(dir, store.EngineOptions{Kind: kind, CommitInterval: interval})
	if err != nil {
		return row, err
	}
	defer eng.Close()
	journals := make([]*store.Journal, sessions)
	for i := range journals {
		if journals[i], err = eng.CreateJournal(fmt.Sprintf("s%04d", i+1)); err != nil {
			return row, err
		}
	}
	per := total / sessions
	errCh := make(chan error, sessions)
	var wg sync.WaitGroup
	start := time.Now()
	for si, jr := range journals {
		wg.Add(1)
		go func(si int, jr *store.Journal) {
			defer wg.Done()
			for n := 1; n <= per; n++ {
				rec := labelRecord{Seq: n, Decision: "positive", Node: fmt.Sprintf("n%03d-%03d", si, n)}
				if n%10 == 0 {
					rec.Learned = "(tram+bus)*.cinema"
				}
				if err := jr.Append("answer", rec); err != nil {
					errCh <- err
					return
				}
			}
		}(si, jr)
	}
	wg.Wait()
	row.Seconds = time.Since(start).Seconds()
	select {
	case err := <-errCh:
		return row, err
	default:
	}
	m := eng.Metrics()
	row.AppendsPerSec = float64(total) / row.Seconds
	row.Fsyncs = m.Fsyncs
	row.MeanBatch = m.MeanBatch
	return row, nil
}

// measureRecovery populates one store and times a cold recovery.
func measureRecovery(kind string, seed int64) (storeRecoveryRow, error) {
	row := storeRecoveryRow{Engine: kind, Sessions: storeBenchRecoverySess}
	dir, err := os.MkdirTemp("", "storebench-*")
	if err != nil {
		return row, err
	}
	defer os.RemoveAll(dir)
	eng, err := store.OpenEngine(dir, store.EngineOptions{Kind: kind})
	if err != nil {
		return row, err
	}
	g := dataset.Transport(dataset.TransportOptions{
		Rows: storeBenchRecoveryGraph, Cols: storeBenchRecoveryGraph, Seed: seed, FacilityRate: 0.3,
	})
	row.GraphNodes, row.GraphEdges = g.NumNodes(), g.NumEdges()
	if err := eng.SaveGraph("big", g); err != nil {
		return row, err
	}
	for s := 1; s <= storeBenchRecoverySess; s++ {
		jr, err := eng.CreateJournal(fmt.Sprintf("s%04d", s))
		if err != nil {
			return row, err
		}
		for n := 1; n <= storeBenchRecoveryRecs; n++ {
			if err := jr.Append("answer", labelRecord{Seq: n, Decision: "negative", Node: fmt.Sprintf("n%03d", n)}); err != nil {
				return row, err
			}
		}
		row.Records += storeBenchRecoveryRecs
	}
	row.SnapshotBytes = eng.Metrics().SnapshotBytes
	if err := eng.Close(); err != nil {
		return row, err
	}

	cold, err := store.OpenEngine(dir, store.EngineOptions{Kind: kind})
	if err != nil {
		return row, err
	}
	defer cold.Close()
	start := time.Now()
	graphs, err := cold.RecoverGraphs()
	if err != nil {
		return row, err
	}
	row.GraphsMs = float64(time.Since(start).Nanoseconds()) / 1e6
	if len(graphs) != 1 || graphs[0].Graph.NumEdges() != row.GraphEdges {
		return row, fmt.Errorf("storebench: graph did not recover intact")
	}
	start = time.Now()
	sessions, err := cold.RecoverSessions()
	if err != nil {
		return row, err
	}
	row.SessionsMs = float64(time.Since(start).Nanoseconds()) / 1e6
	if len(sessions) != storeBenchRecoverySess {
		return row, fmt.Errorf("storebench: recovered %d sessions, want %d", len(sessions), storeBenchRecoverySess)
	}
	return row, nil
}

// runStoreBench runs the storage-engine benchmarks and writes the JSON
// summary to outPath.
func runStoreBench(outPath string, seed int64, interval time.Duration) error {
	summary := storeBenchSummary{
		TotalAppends:   storeBenchAppends,
		CommitInterval: interval.String(),
	}
	perSec := map[string]float64{}
	for _, kind := range []string{store.EngineKindText, store.EngineKindBinary} {
		for _, sessions := range []int{1, 16} {
			row, err := measureAppends(kind, sessions, storeBenchAppends, interval)
			if err != nil {
				return fmt.Errorf("storebench: %s/%d: %w", kind, sessions, err)
			}
			summary.Appends = append(summary.Appends, row)
			perSec[fmt.Sprintf("%s/%d", kind, sessions)] = row.AppendsPerSec
			fmt.Printf("append %-6s %2d sessions %10.0f appends/s  %6d fsyncs  mean batch %.1f\n",
				kind, sessions, row.AppendsPerSec, row.Fsyncs, row.MeanBatch)
		}
	}
	if t := perSec["text/16"]; t > 0 {
		summary.Speedup16 = perSec["binary/16"] / t
	}
	recoveryMs := map[string]float64{}
	for _, kind := range []string{store.EngineKindText, store.EngineKindBinary} {
		row, err := measureRecovery(kind, seed)
		if err != nil {
			return fmt.Errorf("storebench: recovery %s: %w", kind, err)
		}
		summary.Recovery = append(summary.Recovery, row)
		recoveryMs[kind] = row.GraphsMs + row.SessionsMs
		fmt.Printf("recover %-6s %4d records + %d-node graph: sessions %.2fms graphs %.2fms (snapshot %d bytes)\n",
			kind, row.Records, row.GraphNodes, row.SessionsMs, row.GraphsMs, row.SnapshotBytes)
	}
	if t := recoveryMs[store.EngineKindText]; t > 0 {
		summary.RecoverySpeedup = t / recoveryMs[store.EngineKindBinary]
	}
	fmt.Printf("16-session append speedup (binary/text): %.1fx; recovery speedup: %.1fx\n",
		summary.Speedup16, summary.RecoverySpeedup)

	data, err := json.MarshalIndent(summary, "", "  ")
	if err != nil {
		return fmt.Errorf("storebench: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return fmt.Errorf("storebench: %w", err)
	}
	fmt.Printf("wrote %s\n", outPath)
	appendBenchHistory(outPath, summary)
	return nil
}

// runStoreGate is the regression gate over a -storebench summary: the
// binary engine must keep its group-commit advantage. The check is a
// same-machine ratio, so it is robust to absolute runner speed (unlike
// ns/op comparisons against a checked-in baseline).
func runStoreGate(path string, minSpeedup float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("storegate: %w", err)
	}
	var summary storeBenchSummary
	if err := json.Unmarshal(data, &summary); err != nil {
		return fmt.Errorf("storegate: %s: %w", path, err)
	}
	if len(summary.Appends) == 0 {
		return fmt.Errorf("storegate: %s has no append rows", path)
	}
	fmt.Printf("storegate: 16-session append speedup %.2fx (floor %.2fx), recovery speedup %.2fx\n",
		summary.Speedup16, minSpeedup, summary.RecoverySpeedup)
	printTrend(path, "speedup_16_sessions", "x", false, floatFieldFromSummary("speedup_16_sessions"))
	if summary.Speedup16 < minSpeedup {
		return fmt.Errorf("storegate: binary/text 16-session speedup %.2fx is below the %.2fx floor",
			summary.Speedup16, minSpeedup)
	}
	return nil
}
