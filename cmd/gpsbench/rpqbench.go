package main

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"repro/internal/dataset"
	"repro/internal/regex"
	"repro/internal/rpq"
)

// RPQ micro-benchmark harness: -rpqbench runs the evaluation-core
// benchmarks through testing.Benchmark and writes a machine-readable
// summary (ns/op, bytes/op, allocs/op per benchmark) so the performance
// trajectory of the engine can be tracked across PRs without parsing
// `go test -bench` text output.

// rpqBenchResult is one row of the JSON summary.
type rpqBenchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// runRPQBench runs the micro-benchmarks and writes the summary to outPath.
func runRPQBench(outPath string, seed int64) error {
	g := dataset.Transport(dataset.TransportOptions{Rows: 10, Cols: 10, Seed: seed, FacilityRate: 0.4})
	q := regex.MustParse("(tram+bus)*.cinema")
	engine := rpq.New(g, q)
	selected := engine.Selected()
	if len(selected) == 0 {
		return fmt.Errorf("rpqbench: goal query selects no node")
	}
	cache := rpq.NewCache(g)

	// The sharded-evaluation comparison runs on a much larger graph (the
	// 60x60 grid clears the engine's parallel threshold by a wide margin),
	// with the number of workers the service would use on this machine.
	largeG := dataset.Transport(dataset.TransportOptions{Rows: 60, Cols: 60, Seed: seed, FacilityRate: 0.3})
	workers := rpq.DefaultWorkers()
	seqLarge := rpq.New(largeG, q)
	parLarge := rpq.NewWith(largeG, q, rpq.Options{Workers: workers})
	if !seqLarge.SameSelection(parLarge) {
		return fmt.Errorf("rpqbench: sharded evaluation disagrees with sequential on the large graph")
	}

	benchmarks := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"RPQEvaluation", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if len(rpq.Evaluate(g, q)) == 0 {
					b.Fatal("no nodes selected")
				}
			}
		}},
		{"RPQEvaluationCached", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if len(cache.Get(q).Selected()) == 0 {
					b.Fatal("no nodes selected")
				}
			}
		}},
		{"RPQWitness", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, n := range selected {
					if _, ok := engine.Witness(n); !ok {
						b.Fatal("missing witness")
					}
				}
			}
		}},
		{"RPQSelectsWithin", func(b *testing.B) {
			nodes := g.Nodes()
			for i := 0; i < b.N; i++ {
				engine.SelectsWithin(nodes[i%len(nodes)], 5)
			}
		}},
		{"RPQPairsFrom", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				engine.PairsFrom(selected[i%len(selected)])
			}
		}},
		{"RPQEvaluationLargeSequential", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if len(rpq.New(largeG, q).Selected()) == 0 {
					b.Fatal("no nodes selected")
				}
			}
		}},
		{"RPQEvaluationLargeSharded", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if len(rpq.NewWith(largeG, q, rpq.Options{Workers: workers}).Selected()) == 0 {
					b.Fatal("no nodes selected")
				}
			}
		}},
	}

	results := make([]rpqBenchResult, 0, len(benchmarks))
	for _, bm := range benchmarks {
		r := testing.Benchmark(bm.fn)
		results = append(results, rpqBenchResult{
			Name:        bm.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
		fmt.Printf("%-22s %10d iters %12.0f ns/op %8d B/op %6d allocs/op\n",
			bm.name, r.N, float64(r.T.Nanoseconds())/float64(r.N), r.AllocedBytesPerOp(), r.AllocsPerOp())
	}

	// Same-machine ratios for -rpqgate: both sides of each ratio were
	// measured seconds apart in this process, so they gate performance
	// structure (cache effectiveness, sharding overhead) without the
	// machine-sensitivity of an absolute ns/op baseline.
	ns := make(map[string]float64, len(results))
	for _, r := range results {
		ns[r.Name] = r.NsPerOp
	}
	payload := struct {
		Graph          string           `json:"graph"`
		LargeGraph     string           `json:"large_graph"`
		Query          string           `json:"query"`
		Workers        int              `json:"workers"`
		CachedSpeedup  float64          `json:"cached_speedup"`
		ShardedSpeedup float64          `json:"sharded_speedup"`
		Results        []rpqBenchResult `json:"results"`
	}{
		Graph:          fmt.Sprintf("transport-10x10 (%d nodes, %d edges)", g.NumNodes(), g.NumEdges()),
		LargeGraph:     fmt.Sprintf("transport-60x60 (%d nodes, %d edges)", largeG.NumNodes(), largeG.NumEdges()),
		Query:          q.String(),
		Workers:        workers,
		CachedSpeedup:  ns["RPQEvaluation"] / ns["RPQEvaluationCached"],
		ShardedSpeedup: ns["RPQEvaluationLargeSequential"] / ns["RPQEvaluationLargeSharded"],
		Results:        results,
	}
	fmt.Printf("cached speedup %.1fx, sharded speedup %.2fx\n", payload.CachedSpeedup, payload.ShardedSpeedup)
	data, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		return fmt.Errorf("rpqbench: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return fmt.Errorf("rpqbench: %w", err)
	}
	fmt.Printf("wrote %s\n", outPath)
	appendBenchHistory(outPath, payload)
	return nil
}
