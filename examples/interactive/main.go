// A full interactive specification session (Figure 2) on a synthetic
// transport network, driven by a simulated user whose hidden goal query is
// (tram+bus)*.cinema. The transcript shows each proposed node, how many
// times the user zoomed, the validated path of interest, and the query
// learned after each interaction — ending when the learned query returns
// exactly the goal answer set.
//
//	go run ./examples/interactive
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/regex"
)

func main() {
	// A 4x4 city: 16 neighbourhoods connected by tram and bus lines, plus
	// cinemas, restaurants, museums and parks.
	g := dataset.Transport(dataset.TransportOptions{Rows: 4, Cols: 4, Seed: 7, FacilityRate: 0.4})
	sys := core.New(g)
	goal := regex.MustParse("(tram+bus)*.cinema")

	fmt.Printf("city graph: %d nodes, %d edges, labels %v\n",
		g.NumNodes(), g.NumEdges(), g.Alphabet())
	fmt.Printf("hidden goal query: %s (selects %d nodes)\n\n",
		goal, len(sys.Evaluate(goal).Nodes))

	u := sys.SimulateUser(goal)
	tr, err := sys.InteractiveSession(u, core.SessionConfig{
		PathValidation: true,
		MaxPathLength:  6,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("session ended (%s) after %d labels, %d zooms, %d nodes pruned\n\n",
		tr.Halt, tr.Labels(), tr.ZoomsTotal, tr.PrunedTotal)
	for i, inter := range tr.Interactions {
		word := ""
		if inter.ValidatedWord != nil {
			word = "  path of interest: " + strings.Join(inter.ValidatedWord, ".")
		}
		fmt.Printf("%2d. %-22s -> %-8s (radius %d, %d zooms)%s\n",
			i+1, inter.Node, inter.Decision, inter.Radius, inter.Zooms, word)
		fmt.Printf("     learned so far: %s\n", inter.Learned)
	}

	fmt.Printf("\nfinal query: %s\n", tr.Final)
	fmt.Printf("answer set matches the goal: %v\n", sys.SameAnswerSet(tr.Final, goal))
	fmt.Printf("labels used vs graph size:   %d / %d\n", tr.Labels(), g.NumNodes())
}
