// Quickstart: build a small graph database, evaluate a regular path query,
// and learn a query back from a handful of labelled nodes.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/learn"
	"repro/internal/regex"
)

func main() {
	// 1. Build a labelled directed graph. Edges carry labels such as
	//    "follows" or "authored"; nodes are identified by strings.
	g := graph.New()
	g.MustAddEdge("alice", "follows", "bob")
	g.MustAddEdge("bob", "follows", "carol")
	g.MustAddEdge("carol", "authored", "post1")
	g.MustAddEdge("dave", "follows", "erin")
	g.MustAddEdge("erin", "likes", "post1")
	g.MustAddEdge("frank", "authored", "post2")

	sys := core.New(g)

	// 2. Evaluate a path query: "who can reach an authored post by
	//    following follows-edges?" — the RPQ follows*.authored.
	query := regex.MustParse("follows*.authored")
	result := sys.Evaluate(query)
	fmt.Printf("query %s selects: %v\n", query, result.Nodes)
	for _, node := range result.Nodes {
		fmt.Printf("  witness for %-6s: %v\n", node, result.Witnesses[node])
	}

	// 3. Learn a query from examples instead of writing it. Label alice and
	//    frank as wanted, erin as unwanted; alice's path of interest is
	//    follows.follows.authored.
	sample := learn.NewSample()
	sample.AddPositive("alice", []string{"follows", "follows", "authored"})
	sample.AddPositive("frank", []string{"authored"})
	sample.AddNegative("erin")

	learned, err := sys.LearnFromExamples(sample)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlearned query: %s\n", learned.Query)
	fmt.Printf("it selects:    %v\n", sys.Evaluate(learned.Query).Nodes)
	fmt.Printf("equivalent to follows*.authored: %v\n",
		core.EquivalentQueries(learned.Query, regex.MustParse("follows*.authored")))
}
