// A companion-paper-style scenario on a biological-looking network: a
// scale-free protein-interaction graph (generated in-repo, see DESIGN.md's
// substitution table) on which a biologist specifies the query
// (interacts+regulates)*.binds by labelling a handful of proteins —
// including a run with a noisy user in the static-labelling scenario, where
// the system detects the inconsistent labels.
//
//	go run ./examples/biological
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/regex"
	"repro/internal/user"
)

func main() {
	g := dataset.ScaleFree(dataset.ScaleFreeOptions{Nodes: 400, EdgesPerNode: 2, Seed: 3})
	sys := core.New(g)
	stats := g.ComputeStats()
	fmt.Printf("protein-interaction network: %d nodes, %d edges, max in-degree %d (hub proteins)\n",
		stats.Nodes, stats.Edges, stats.MaxInDegree)

	goal := regex.MustParse("(interacts+regulates)*.binds")
	answer := sys.Evaluate(goal)
	fmt.Printf("goal query %s selects %d proteins\n\n", goal, len(answer.Nodes))

	// Interactive specification with the hypothesis-aware strategy.
	tr, err := sys.InteractiveSession(sys.SimulateUser(goal), core.SessionConfig{
		Strategy:       "disagreement",
		PathValidation: true,
		MaxPathLength:  4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("interactive session: %d labels (+%d propagated), halt=%s\n",
		tr.Labels(), tr.ImpliedTotal, tr.Halt)
	fmt.Printf("learned query: %s\n", tr.Final)
	fmt.Printf("returns the goal answer set: %v\n\n", sys.SameAnswerSet(tr.Final, goal))

	// Static labelling with a sloppy user: 20% of labels are wrong. The
	// system detects that the sample has become inconsistent instead of
	// silently learning a wrong query.
	noisy := user.NewNoisy(sys.SimulateUser(goal), 0.2, 99)
	static := sys.StaticSession(noisy, user.NewRandomChoice(99), 40)
	fmt.Printf("static labelling with a 20%% error rate: %d labels, inconsistent=%v, satisfied=%v\n",
		static.Labels, static.Inconsistent, static.Satisfied)
	if static.Inconsistent {
		fmt.Println("GPS reported the inconsistency — in the demo the user would now revisit her labels.")
	} else if static.Final != nil {
		fmt.Printf("query learned despite the noise: %s\n", static.Final)
	}
}
