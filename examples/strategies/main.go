// Static labelling vs guided interaction, and a comparison of the three
// node-proposal strategies — the quantitative core of the demonstration
// scenario: how much user effort (labels) each approach needs before the
// learned query returns the goal answer set.
//
//	go run ./examples/strategies
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/regex"
	"repro/internal/stats"
	"repro/internal/user"
)

func main() {
	goal := regex.MustParse("(tram+bus)*.cinema")
	table := stats.NewTable(
		"labels needed to reach the goal answer set (goal "+goal.String()+")",
		"approach", "graph nodes", "labels", "reached goal")

	for _, size := range []int{3, 4, 5} {
		g := dataset.Transport(dataset.TransportOptions{Rows: size, Cols: size, Seed: 11, FacilityRate: 0.5})
		sys := core.New(g)
		if len(sys.Evaluate(goal).Nodes) == 0 {
			continue
		}

		// Static labelling: the user explores the graph in her own (random)
		// order; the system only checks consistency.
		static := sys.StaticSession(sys.SimulateUser(goal), user.NewRandomChoice(3), 0)
		staticLabels := static.Labels
		table.AddRow(fmt.Sprintf("static (%dx%d)", size, size), g.NumNodes(), staticLabels, static.Satisfied)

		// Interactive sessions with each strategy.
		for _, strategy := range []string{"random", "hybrid", "informative", "disagreement"} {
			tr, err := sys.InteractiveSession(sys.SimulateUser(goal), core.SessionConfig{
				Strategy:        strategy,
				Seed:            3,
				PathValidation:  true,
				MaxPathLength:   2*size - 1,
				MaxInteractions: g.NumNodes(),
			})
			if err != nil {
				log.Fatal(err)
			}
			table.AddRow(fmt.Sprintf("interactive/%s (%dx%d)", strategy, size, size),
				g.NumNodes(), tr.Labels(), tr.Halt == "user-satisfied")
		}
	}
	fmt.Println(table.String())
	fmt.Println("Interactive sessions reach the goal with a fraction of the labels that")
	fmt.Println("static labelling needs. Among the strategies, the hypothesis-aware")
	fmt.Println("disagreement strategy (an extension beyond the paper) converges fastest,")
	fmt.Println("because it asks about the nodes most likely to correct the current query.")
}
