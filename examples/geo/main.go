// The paper's motivating example (Figure 1) end to end: the geographical
// graph, the goal query (tram+bus)*.cinema, its answer set and witness
// paths, and the two-step learning algorithm run on the paper's examples
// {N2:+, N6:+, N5:-} — with and without path validation.
//
//	go run ./examples/geo
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/learn"
	"repro/internal/paths"
	"repro/internal/render"
)

func main() {
	g := dataset.Figure1()
	sys := core.New(g)
	goal := dataset.Figure1GoalQuery()

	fmt.Println("=== Figure 1: the geographical graph database ===")
	fmt.Print(g.Text())

	fmt.Println("\n=== Evaluating the goal query ===")
	res := sys.Evaluate(goal)
	fmt.Printf("%s selects %v\n", goal, res.Nodes)
	for _, node := range res.Nodes {
		fmt.Printf("  %s: %s\n", node, paths.Path{Start: node, Edges: res.Witnesses[node]})
	}

	fmt.Println("\n=== The fragment shown for N2 at radius 2, then zoomed to 3 ===")
	opts := graph.NeighborhoodOptions{Directed: true}
	n2 := g.NeighborhoodAround("N2", 2, opts)
	n3 := g.NeighborhoodAround("N2", 3, opts)
	fmt.Print(render.NeighborhoodASCII(n2, nil))
	fmt.Println("-- after zooming out (new parts marked with +) --")
	fmt.Print(render.NeighborhoodASCII(n3, n2))

	fmt.Println("\n=== The prefix tree of N2's candidate paths (Figure 3c) ===")
	words := paths.UncoveredWords(g, "N2", []graph.NodeID{"N5"}, 3)
	fmt.Print(render.PrefixTree(words, []string{"bus", "bus", "cinema"}))

	fmt.Println("\n=== Learning from the paper's examples ===")
	positives, negatives := dataset.Figure1Examples()

	// With the validated paths of interest (third demo scenario).
	validated := learn.NewSample()
	for n, w := range positives {
		validated.AddPositive(n, w)
	}
	for _, n := range negatives {
		validated.AddNegative(n)
	}
	withVal, err := sys.LearnFromExamples(validated)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with path validation:    %s (goal-equivalent: %v)\n",
		withVal.Query, core.EquivalentQueries(withVal.Query, goal))

	// Without path validation: the learner picks the shortest uncovered
	// witness itself (second demo scenario) — consistent, but not the goal.
	auto := learn.NewSample()
	for n := range positives {
		auto.AddPositive(n, nil)
	}
	for _, n := range negatives {
		auto.AddNegative(n)
	}
	withoutVal, err := sys.LearnFromExamples(auto)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("without path validation: %s (goal-equivalent: %v)\n",
		withoutVal.Query, core.EquivalentQueries(withoutVal.Query, goal))
	fmt.Printf("auto-chosen witnesses:   %s\n", witnessSummary(withoutVal))
}

func witnessSummary(res *learn.Result) string {
	var parts []string
	for node, w := range res.Witnesses {
		parts = append(parts, fmt.Sprintf("%s=%s", node, strings.Join(w, ".")))
	}
	return strings.Join(parts, "  ")
}
