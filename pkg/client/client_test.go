package client

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/service"
)

func newTestServer(t *testing.T, opts service.Options) (*service.Server, *httptest.Server) {
	t.Helper()
	if opts.EvalWorkers == 0 {
		opts.EvalWorkers = 2
	}
	if opts.CacheCapacity == 0 {
		opts.CacheCapacity = 16
	}
	srv := service.NewServer(opts)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// figure1 is the paper's running-example graph, loaded through the client
// itself so LoadGraph gets covered too.
func loadFigure1(t *testing.T, c *Client, name string) {
	t.Helper()
	if _, err := c.LoadGraph(context.Background(), name, service.LoadSpec{Dataset: service.DatasetSpec{Kind: "figure1"}}); err != nil {
		t.Fatalf("LoadGraph: %v", err)
	}
}

// TestClientRoundTrip drives the whole typed surface — graphs, evaluate,
// session lifecycle, events, hypothesis, stats, metrics — against a real
// server.
func TestClientRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, service.Options{})
	c := New(ts.URL)
	ctx := context.Background()

	if err := c.Health(ctx); err != nil {
		t.Fatalf("Health: %v", err)
	}
	loadFigure1(t, c, "demo")

	gi, err := c.Graph(ctx, "demo")
	if err != nil || gi.Name != "demo" {
		t.Fatalf("Graph = %+v, %v", gi, err)
	}
	graphs, err := c.Graphs(ctx)
	if err != nil || len(graphs) != 1 {
		t.Fatalf("Graphs = %+v, %v", graphs, err)
	}

	eval, err := c.Evaluate(ctx, "demo", EvaluateRequest{Query: "(tram+bus)*.cinema", Witnesses: true})
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if eval.Count != 4 || len(eval.Witnesses) != 4 {
		t.Fatalf("Evaluate = %+v, want count 4 with 4 witnesses", eval)
	}

	v, err := c.CreateSession(ctx, service.SessionConfig{Graph: "demo", Mode: "simulated", Goal: "(tram+bus)*.cinema"})
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for v.Status != service.StatusDone {
		if time.Now().After(deadline) {
			t.Fatalf("session stuck at %+v", v)
		}
		time.Sleep(5 * time.Millisecond)
		if v, err = c.Session(ctx, v.ID); err != nil {
			t.Fatalf("Session: %v", err)
		}
	}

	stream, err := c.Events(ctx, v.ID, 0)
	if err != nil {
		t.Fatalf("Events: %v", err)
	}
	defer stream.Close()
	var types []string
	for {
		ev, err := stream.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		types = append(types, ev.Type)
	}
	if len(types) == 0 || types[0] != "create" || !(Event{Type: types[len(types)-1]}).Terminal() {
		t.Fatalf("event stream = %v, want create..done/failed", types)
	}

	hyp, err := c.Hypothesis(ctx, v.ID, "")
	if err != nil || hyp.Learned == "" {
		t.Fatalf("Hypothesis = %+v, %v", hyp, err)
	}

	sessions, err := c.Sessions(ctx, SessionFilter{State: string(service.StatusDone), Graph: "demo"})
	if err != nil || len(sessions) != 1 {
		t.Fatalf("Sessions = %+v, %v", sessions, err)
	}

	metrics, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	if len(metrics) == 0 {
		t.Fatal("Metrics returned an empty exposition")
	}
	if _, err := c.Stats(ctx); err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if err := c.DeleteSession(ctx, v.ID); err != nil {
		t.Fatalf("DeleteSession: %v", err)
	}
	if err := c.DeleteGraph(ctx, "demo"); err != nil {
		t.Fatalf("DeleteGraph: %v", err)
	}
}

// TestClientTypedErrors pins the envelope decoding: wire errors surface as
// *APIError with the stable code, the HTTP status and a request id.
func TestClientTypedErrors(t *testing.T) {
	_, ts := newTestServer(t, service.Options{})
	c := New(ts.URL)
	ctx := context.Background()

	_, err := c.Session(ctx, "nope")
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("Session(nope) error = %v, want *APIError", err)
	}
	if ae.Status != 404 || ae.Code != service.CodeSessionNotFound || ae.RequestID == "" {
		t.Fatalf("APIError = %+v, want 404 session_not_found with a request id", ae)
	}
	if !IsCode(err, service.CodeSessionNotFound) || CodeOf(err) != service.CodeSessionNotFound {
		t.Fatalf("IsCode/CodeOf disagree on %v", err)
	}
	if !IsCode(fmt.Errorf("wrapped: %w", err), service.CodeSessionNotFound) {
		t.Fatal("IsCode does not unwrap")
	}
	if IsCode(nil, service.CodeSessionNotFound) || CodeOf(context.Canceled) != "" {
		t.Fatal("IsCode/CodeOf misfire on non-API errors")
	}

	if _, err := c.Graph(ctx, "missing"); !IsCode(err, service.CodeGraphNotFound) {
		t.Fatalf("Graph(missing) = %v, want graph_not_found", err)
	}
}

// TestClientAPIKey pins the auth path: against a keyring-armed server an
// unkeyed client gets 401 unauthorized, a keyed one works and its sessions
// land on its tenant.
func TestClientAPIKey(t *testing.T) {
	kr := service.NewKeyring(service.KeyringConfig{
		Tenants: map[string]service.TenantLimits{"acme": {MaxSessions: 4, MaxGraphs: 4}},
		Keys:    map[string]string{"sk-acme": "acme"},
	})
	_, ts := newTestServer(t, service.Options{Keyring: kr})
	ctx := context.Background()

	if err := New(ts.URL).Health(ctx); err != nil {
		t.Fatalf("Health must stay auth-exempt: %v", err)
	}
	if _, err := New(ts.URL).Graphs(ctx); !IsCode(err, service.CodeUnauthorized) {
		t.Fatalf("unkeyed Graphs = %v, want unauthorized", err)
	}
	if _, err := New(ts.URL, WithAPIKey("sk-wrong")).Graphs(ctx); !IsCode(err, service.CodeUnauthorized) {
		t.Fatalf("wrong-key Graphs = %v, want unauthorized", err)
	}

	c := New(ts.URL, WithAPIKey("sk-acme"))
	loadFigure1(t, c, "demo")
	v, err := c.CreateSession(ctx, service.SessionConfig{Graph: "demo", Mode: "simulated", Goal: "(tram+bus)*.cinema"})
	if err != nil {
		t.Fatalf("keyed CreateSession: %v", err)
	}
	if v.Tenant != "acme" {
		t.Fatalf("session tenant = %q, want acme", v.Tenant)
	}
	stats, err := c.TenantStats(ctx)
	if err != nil {
		t.Fatalf("TenantStats: %v", err)
	}
	if bp, ok := stats["acme"]; !ok || bp.Admitted != 1 {
		t.Fatalf("TenantStats[acme] = %+v (ok=%v), want 1 admitted", stats["acme"], ok)
	}
}

// TestClientPagination pins the cursor walk: pages are disjoint, ordered
// and complete, and the final page carries no cursor.
func TestClientPagination(t *testing.T) {
	_, ts := newTestServer(t, service.Options{})
	c := New(ts.URL)
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		loadFigure1(t, c, fmt.Sprintf("g%d", i))
	}
	var names []string
	cursor := ""
	for pages := 0; ; pages++ {
		if pages > 5 {
			t.Fatal("cursor walk did not terminate")
		}
		p, err := c.GraphsPage(ctx, 2, cursor)
		if err != nil {
			t.Fatalf("GraphsPage: %v", err)
		}
		for _, g := range p.Graphs {
			names = append(names, g.Name)
		}
		if p.NextCursor == "" {
			break
		}
		if len(p.Graphs) != 2 {
			t.Fatalf("non-final page has %d graphs, want 2", len(p.Graphs))
		}
		cursor = p.NextCursor
	}
	if len(names) != 5 {
		t.Fatalf("paged walk saw %v, want 5 distinct graphs", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i] <= names[i-1] {
			t.Fatalf("paged walk out of order: %v", names)
		}
	}
}
