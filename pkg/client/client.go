// Package client is the typed Go client for the gpsd v1 API. It covers
// the whole surface — graph loading, ad-hoc evaluation, session lifecycle,
// the SSE event stream, stats and the Prometheus metrics scrape — decodes
// the v1 error envelope into typed *APIError values (so callers branch on
// stable error codes, never on message text), and authenticates with an
// API key on multi-tenant deployments.
//
//	c := client.New("http://127.0.0.1:8080", client.WithAPIKey("s3cret"))
//	v, err := c.CreateSession(ctx, service.SessionConfig{Graph: "demo"})
//	if client.IsCode(err, service.CodeQuotaExceeded) { ... back off ... }
//
// The request/response types are the service package's own wire types, so
// client and server cannot drift apart silently.
//
// # Failover
//
// A client built with WithEndpoints knows every member of a replicated
// pair (or more) and drives failover itself: connection errors and 5xx
// answers are retried with exponential backoff and jitter, and between
// attempts the client re-resolves the primary by asking every endpoint
// for GET /v1/replication/status — preferring an unfenced primary with
// the highest fencing epoch. The client pins the highest epoch it has
// ever observed and sends it as X-GPSD-Epoch on every request, which is
// what fences a resurrected old primary (it answers 503 fenced from
// then on, and the retry loop moves past it). 429 answers honor the
// server's Retry-After before retrying the same endpoint — an
// overloaded primary is still the primary.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/service"
	"repro/internal/store"
)

// Backoff bounds for the retry loop: exponential from retryMin, capped
// at retryMax, with ±50% jitter so a herd of failed-over clients does
// not reconnect in lockstep.
const (
	retryMin = 50 * time.Millisecond
	retryMax = 2 * time.Second
	// retryAfterCap bounds how long a Retry-After hint is honored.
	retryAfterCap = 30 * time.Second
	// resolveTimeout bounds each status probe during primary re-resolution.
	resolveTimeout = 2 * time.Second
)

// Client talks to a gpsd deployment — one base URL, or a failover set
// via WithEndpoints. Safe for concurrent use.
type Client struct {
	hc  *http.Client
	key string

	// mu guards the endpoint set and the index of the believed primary.
	mu        sync.Mutex
	endpoints []string
	cur       int

	// epoch is the highest fencing epoch observed on any replication
	// status; sent as X-GPSD-Epoch so an old primary fences itself.
	epoch atomic.Uint64

	// retries is the number of retry attempts after the first failure;
	// retriesSet tracks whether WithRetries pinned it explicitly.
	retries    int
	retriesSet bool
}

// Option configures a Client.
type Option func(*Client)

// WithAPIKey sends the key as an Authorization: Bearer header on every
// request — required against a gpsd running with -api-keys.
func WithAPIKey(key string) Option { return func(c *Client) { c.key = key } }

// WithTimeout bounds every non-streaming request. The default is 10s;
// Events streams are exempt (they use a dedicated transport-level client).
func WithTimeout(d time.Duration) Option { return func(c *Client) { c.hc.Timeout = d } }

// WithHTTPClient substitutes the underlying *http.Client wholesale.
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithEndpoints replaces the endpoint set with a failover group; the
// first entry is tried first. Retries default on (see WithRetries) as
// soon as the client knows more than one endpoint.
func WithEndpoints(urls ...string) Option {
	return func(c *Client) {
		if len(urls) > 0 {
			c.endpoints = append([]string(nil), urls...)
			c.cur = 0
		}
	}
}

// WithRetries sets how many times a failed request is retried (0
// disables the retry loop). The default is 0 for a single-endpoint
// client — failures surface immediately, as they always have — and 8
// for a failover group, enough to ride out a promotion.
func WithRetries(n int) Option {
	return func(c *Client) {
		c.retries = n
		c.retriesSet = true
	}
}

// New returns a client for the gpsd at baseURL (e.g. "http://host:8080").
func New(baseURL string, opts ...Option) *Client {
	c := &Client{endpoints: []string{baseURL}, hc: &http.Client{Timeout: 10 * time.Second}}
	for _, o := range opts {
		o(c)
	}
	if !c.retriesSet && len(c.endpoints) > 1 {
		c.retries = 8
	}
	return c
}

// endpoint returns the base URL of the believed primary.
func (c *Client) endpoint() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.endpoints[c.cur]
}

// endpointList snapshots the endpoint set.
func (c *Client) endpointList() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.endpoints...)
}

// rotate moves to the next endpoint in the set.
func (c *Client) rotate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cur = (c.cur + 1) % len(c.endpoints)
}

// setPrimary points the client at base if it is in the endpoint set.
func (c *Client) setPrimary(base string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, e := range c.endpoints {
		if e == base {
			c.cur = i
			return
		}
	}
}

// noteEpoch raises the pinned fencing epoch (it never goes down).
func (c *Client) noteEpoch(e uint64) {
	for {
		cur := c.epoch.Load()
		if e <= cur || c.epoch.CompareAndSwap(cur, e) {
			return
		}
	}
}

// decorate attaches the API key and the pinned fencing epoch.
func (c *Client) decorate(req *http.Request) {
	if c.key != "" {
		req.Header.Set("Authorization", "Bearer "+c.key)
	}
	if e := c.epoch.Load(); e > 0 {
		req.Header.Set(service.EpochHeader, strconv.FormatUint(e, 10))
	}
}

// APIError is a non-2xx response decoded from the v1 error envelope.
// Code is the stable machine-readable half of the API contract; Message
// is human-oriented and free to change between versions.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Code identifies the failure; see the service.Code* constants.
	Code service.ErrorCode
	// Message is the human-readable detail.
	Message string
	// RequestID correlates the failure with the server's log line.
	RequestID string
	// RetryAfter is the server's Retry-After hint in seconds (0 if none).
	RetryAfter int
}

func (e *APIError) Error() string {
	if e.RequestID != "" {
		return fmt.Sprintf("gpsd: %d %s: %s (request %s)", e.Status, e.Code, e.Message, e.RequestID)
	}
	return fmt.Sprintf("gpsd: %d %s: %s", e.Status, e.Code, e.Message)
}

// CodeOf extracts the API error code, or "" when err is nil or not an
// *APIError (transport failures, decode failures).
func CodeOf(err error) service.ErrorCode {
	var ae *APIError
	if ok := asAPIError(err, &ae); ok {
		return ae.Code
	}
	return ""
}

// IsCode reports whether err is an *APIError carrying the given code.
func IsCode(err error, code service.ErrorCode) bool { return CodeOf(err) == code }

func asAPIError(err error, out **APIError) bool {
	for err != nil {
		if ae, ok := err.(*APIError); ok {
			*out = ae
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// do runs one JSON request with the retry loop. A non-2xx answer becomes
// an *APIError (with Code "" when the body carried no envelope — a proxy
// error, say); a nil error means out (if non-nil) was decoded from the
// response body. Connection errors and 5xx answers are retried up to the
// configured attempts, re-resolving the primary between tries; 429
// honors Retry-After against the same endpoint; other 4xx answers are
// the caller's problem and return immediately.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var data []byte
	if body != nil {
		var err error
		if data, err = json.Marshal(body); err != nil {
			return fmt.Errorf("client: encode request: %w", err)
		}
	}
	var lastErr error
	for attempt := 0; attempt <= c.retries; attempt++ {
		if attempt > 0 {
			if err := c.backoff(ctx, attempt, lastErr); err != nil {
				return lastErr
			}
		}
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(data)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.endpoint()+path, rd)
		if err != nil {
			return fmt.Errorf("client: %w", err)
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		c.decorate(req)
		resp, err := c.hc.Do(req)
		if err != nil {
			lastErr = fmt.Errorf("client: %s %s: %w", method, path, err)
			if ctx.Err() != nil {
				return lastErr
			}
			c.reResolve(ctx)
			continue
		}
		if resp.StatusCode >= 400 {
			ae := decodeAPIError(resp)
			resp.Body.Close()
			if !retryable(ae) {
				return ae
			}
			lastErr = ae
			if ae.Status >= 500 {
				// The endpoint is down, demoted or fenced; find the primary.
				c.reResolve(ctx)
			}
			continue
		}
		var decodeErr error
		if out != nil {
			decodeErr = json.NewDecoder(resp.Body).Decode(out)
		}
		resp.Body.Close()
		if decodeErr != nil {
			return fmt.Errorf("client: decode %s %s response: %w", method, path, decodeErr)
		}
		return nil
	}
	return lastErr
}

// retryable reports whether the retry loop should try again after this
// API error: any 5xx (covers not_primary, fenced, store failures and
// deadline expiry) and a rate limit carrying a Retry-After hint.
func retryable(ae *APIError) bool {
	if ae.Status >= 500 {
		return true
	}
	return ae.Status == http.StatusTooManyRequests && ae.RetryAfter > 0
}

// backoff sleeps before retry attempt n: the server's Retry-After when
// the last failure was a rate limit, exponential-with-jitter otherwise.
// Returns ctx.Err() if the context ends first.
func (c *Client) backoff(ctx context.Context, attempt int, lastErr error) error {
	d := retryMin << (attempt - 1)
	if d > retryMax || d <= 0 {
		d = retryMax
	}
	d = d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
	var ae *APIError
	if asAPIError(lastErr, &ae) && ae.Status == http.StatusTooManyRequests && ae.RetryAfter > 0 {
		d = time.Duration(ae.RetryAfter) * time.Second
		if d > retryAfterCap {
			d = retryAfterCap
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// reResolve asks every endpoint for its replication status and points
// the client at the best primary: unfenced, role "primary", highest
// fencing epoch. When nothing answers (mid-failover), it rotates so the
// next attempt at least tries someone else.
func (c *Client) reResolve(ctx context.Context) {
	endpoints := c.endpointList()
	if len(endpoints) < 2 {
		return
	}
	var (
		best      string
		bestEpoch uint64
		found     bool
	)
	for _, base := range endpoints {
		st, err := c.statusAt(ctx, base)
		if err != nil {
			continue
		}
		c.noteEpoch(st.Epoch)
		if st.Role == "primary" && !st.Fenced && (!found || st.Epoch > bestEpoch) {
			best, bestEpoch, found = base, st.Epoch, true
		}
	}
	if found {
		c.setPrimary(best)
	} else {
		c.rotate()
	}
}

// statusAt fetches one endpoint's replication status without the retry
// loop (it runs inside the retry loop).
func (c *Client) statusAt(ctx context.Context, base string) (service.ReplicationStatus, error) {
	var st service.ReplicationStatus
	rctx, cancel := context.WithTimeout(ctx, resolveTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, base+"/v1/replication/status", nil)
	if err != nil {
		return st, err
	}
	c.decorate(req)
	resp, err := c.hc.Do(req)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return st, decodeAPIError(resp)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return st, err
	}
	return st, nil
}

func decodeAPIError(resp *http.Response) *APIError {
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	ae := &APIError{Status: resp.StatusCode}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		ae.RetryAfter, _ = strconv.Atoi(ra)
	}
	if body, ok := service.DecodeErrorBody(data); ok {
		ae.Code, ae.Message, ae.RequestID = body.Code, body.Message, body.RequestID
	} else {
		ae.Message = string(bytes.TrimSpace(data))
	}
	return ae
}

// Health probes GET /healthz.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// LoadGraph registers (or replaces) a graph via PUT /v1/graphs/{name}.
func (c *Client) LoadGraph(ctx context.Context, name string, spec service.LoadSpec) (service.GraphInfo, error) {
	var gi service.GraphInfo
	err := c.do(ctx, http.MethodPut, "/v1/graphs/"+url.PathEscape(name), spec, &gi)
	return gi, err
}

// Graph fetches one graph's stats.
func (c *Client) Graph(ctx context.Context, name string) (service.GraphInfo, error) {
	var gi service.GraphInfo
	err := c.do(ctx, http.MethodGet, "/v1/graphs/"+url.PathEscape(name), nil, &gi)
	return gi, err
}

// DeleteGraph unregisters a graph.
func (c *Client) DeleteGraph(ctx context.Context, name string) error {
	return c.do(ctx, http.MethodDelete, "/v1/graphs/"+url.PathEscape(name), nil, nil)
}

// GraphPage is one page of GET /v1/graphs.
type GraphPage struct {
	Graphs []service.GraphInfo `json:"graphs"`
	// NextCursor is "" on the last page; pass it back to continue.
	NextCursor string `json:"next_cursor"`
}

// GraphsPage lists graphs with pagination (stable order: name). limit 0
// with cursor "" is the unpaged listing.
func (c *Client) GraphsPage(ctx context.Context, limit int, cursor string) (GraphPage, error) {
	var p GraphPage
	q := url.Values{}
	if limit > 0 {
		q.Set("limit", strconv.Itoa(limit))
	}
	if cursor != "" {
		q.Set("cursor", cursor)
	}
	path := "/v1/graphs"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	err := c.do(ctx, http.MethodGet, path, nil, &p)
	return p, err
}

// Graphs lists every registered graph.
func (c *Client) Graphs(ctx context.Context) ([]service.GraphInfo, error) {
	p, err := c.GraphsPage(ctx, 0, "")
	return p.Graphs, err
}

// EvaluateRequest is the body of POST /v1/graphs/{name}/evaluate.
type EvaluateRequest struct {
	// Query is the path query in the paper's syntax.
	Query string `json:"query"`
	// Witnesses requests one shortest witness path per selected node.
	Witnesses bool `json:"witnesses,omitempty"`
	// Limit truncates the returned node (and witness) lists; 0 means all.
	Limit int `json:"limit,omitempty"`
}

// EvaluateResult is the evaluation response.
type EvaluateResult struct {
	Query      string                        `json:"query"`
	Nodes      []graph.NodeID                `json:"nodes"`
	Count      int                           `json:"count"`
	DurationUs int64                         `json:"duration_us"`
	Witnesses  map[graph.NodeID][]graph.Edge `json:"witnesses,omitempty"`
}

// Evaluate runs a query on a registered graph.
func (c *Client) Evaluate(ctx context.Context, graphName string, req EvaluateRequest) (EvaluateResult, error) {
	var res EvaluateResult
	err := c.do(ctx, http.MethodPost, "/v1/graphs/"+url.PathEscape(graphName)+"/evaluate", req, &res)
	return res, err
}

// CreateSession starts a learning session.
func (c *Client) CreateSession(ctx context.Context, cfg service.SessionConfig) (service.SessionView, error) {
	var v service.SessionView
	err := c.do(ctx, http.MethodPost, "/v1/sessions", cfg, &v)
	return v, err
}

// Session fetches one session's state and pending question.
func (c *Client) Session(ctx context.Context, id string) (service.SessionView, error) {
	var v service.SessionView
	err := c.do(ctx, http.MethodGet, "/v1/sessions/"+url.PathEscape(id), nil, &v)
	return v, err
}

// SessionPage is one page of GET /v1/sessions.
type SessionPage struct {
	Sessions []service.SessionView `json:"sessions"`
	// NextCursor is "" on the last page; pass it back to continue.
	NextCursor string `json:"next_cursor"`
}

// SessionFilter narrows GET /v1/sessions. Zero values select everything.
type SessionFilter struct {
	// State keeps only sessions in that status (e.g. "running", "done").
	State string
	// Graph keeps only sessions on that graph.
	Graph string
}

// SessionsPage lists sessions with filters and pagination (stable order:
// session id). limit 0 with cursor "" is the unpaged listing.
func (c *Client) SessionsPage(ctx context.Context, f SessionFilter, limit int, cursor string) (SessionPage, error) {
	var p SessionPage
	q := url.Values{}
	if f.State != "" {
		q.Set("state", f.State)
	}
	if f.Graph != "" {
		q.Set("graph", f.Graph)
	}
	if limit > 0 {
		q.Set("limit", strconv.Itoa(limit))
	}
	if cursor != "" {
		q.Set("cursor", cursor)
	}
	path := "/v1/sessions"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	err := c.do(ctx, http.MethodGet, path, nil, &p)
	return p, err
}

// Sessions lists the sessions matching the filter.
func (c *Client) Sessions(ctx context.Context, f SessionFilter) ([]service.SessionView, error) {
	p, err := c.SessionsPage(ctx, f, 0, "")
	return p.Sessions, err
}

// Answer delivers the reply to a session's pending question and returns
// the refreshed view.
func (c *Client) Answer(ctx context.Context, id string, a service.Answer) (service.SessionView, error) {
	var v service.SessionView
	err := c.do(ctx, http.MethodPost, "/v1/sessions/"+url.PathEscape(id)+"/label", a, &v)
	return v, err
}

// DeleteSession cancels and drops a session.
func (c *Client) DeleteSession(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/sessions/"+url.PathEscape(id), nil, nil)
}

// HypothesisResult is the current hypothesis and its answer set. Learned
// is "" while the session has no hypothesis yet.
type HypothesisResult struct {
	Learned string         `json:"learned"`
	Nodes   []graph.NodeID `json:"nodes"`
	Count   int            `json:"count"`
	Witness []graph.Edge   `json:"witness,omitempty"`
}

// Hypothesis fetches a session's current hypothesis; witnessNode, when
// non-empty, also requests a shortest witness path for that node.
func (c *Client) Hypothesis(ctx context.Context, id, witnessNode string) (HypothesisResult, error) {
	path := "/v1/sessions/" + url.PathEscape(id) + "/hypothesis"
	if witnessNode != "" {
		path += "?witness=" + url.QueryEscape(witnessNode)
	}
	var res HypothesisResult
	err := c.do(ctx, http.MethodGet, path, nil, &res)
	return res, err
}

// ReplicationStatus fetches the current endpoint's replication role,
// fencing epoch and feed (or lag) state, pinning any newer epoch it
// reveals.
func (c *Client) ReplicationStatus(ctx context.Context) (service.ReplicationStatus, error) {
	var st service.ReplicationStatus
	err := c.do(ctx, http.MethodGet, "/v1/replication/status", nil, &st)
	if err == nil {
		c.noteEpoch(st.Epoch)
	}
	return st, err
}

// Promote asks the current endpoint to assume the primary role: a
// follower stops replicating, fences its old primary by bumping the
// epoch, and adopts every replicated session; a server that already is
// the primary confirms idempotently. Point a single-endpoint client at
// the follower to direct the promotion.
func (c *Client) Promote(ctx context.Context) (service.ReplicationStatus, error) {
	var st service.ReplicationStatus
	err := c.do(ctx, http.MethodPost, "/v1/admin/promote", nil, &st)
	if err == nil {
		c.noteEpoch(st.Epoch)
	}
	return st, err
}

// Compact triggers one store compaction pass (durable deployments only).
func (c *Client) Compact(ctx context.Context) (store.CompactionReport, error) {
	var rep store.CompactionReport
	err := c.do(ctx, http.MethodPost, "/v1/admin/compact", nil, &rep)
	return rep, err
}

// Stats fetches the raw /v1/stats document.
func (c *Client) Stats(ctx context.Context) (map[string]json.RawMessage, error) {
	var out map[string]json.RawMessage
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &out)
	return out, err
}

// TenantStats decodes the per-tenant admission accounting out of
// /v1/stats, keyed by tenant name.
func (c *Client) TenantStats(ctx context.Context) (map[string]service.TenantBackpressure, error) {
	stats, err := c.Stats(ctx)
	if err != nil {
		return nil, err
	}
	out := map[string]service.TenantBackpressure{}
	if raw, ok := stats["tenants"]; ok {
		if err := json.Unmarshal(raw, &out); err != nil {
			return nil, fmt.Errorf("client: decode tenants stats: %w", err)
		}
	}
	return out, nil
}

// Metrics scrapes GET /metrics and returns the raw Prometheus text
// exposition.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.endpoint()+"/metrics", nil)
	if err != nil {
		return "", fmt.Errorf("client: %w", err)
	}
	c.decorate(req)
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", fmt.Errorf("client: GET /metrics: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return "", decodeAPIError(resp)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", fmt.Errorf("client: read /metrics: %w", err)
	}
	return string(data), nil
}
