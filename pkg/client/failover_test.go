package client

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/service"
)

// demotedServer is a stub follower: it answers the replication status
// probe with its role and refuses everything else with 503 not_primary —
// the shape a real standby (or a just-demoted primary) presents.
func demotedServer(t *testing.T, hits *atomic.Int64) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/replication/status" {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(service.ReplicationStatus{Role: "follower", Epoch: 1})
			return
		}
		hits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, `{"error":{"code":"not_primary","message":"replication follower"}}`)
	}))
	t.Cleanup(ts.Close)
	return ts
}

// TestClientFailsOverToPrimary points a failover client at a demoted
// endpoint first: the 503 not_primary must trigger a re-resolve that
// finds the real primary on the second endpoint and completes the call
// there, transparently to the caller.
func TestClientFailsOverToPrimary(t *testing.T) {
	var demotedHits atomic.Int64
	demoted := demotedServer(t, &demotedHits)
	_, primary := newTestServer(t, service.Options{})

	c := New(demoted.URL, WithEndpoints(demoted.URL, primary.URL), WithTimeout(5*time.Second))
	loadFigure1(t, c, "demo")
	if demotedHits.Load() == 0 {
		t.Fatal("the demoted endpoint was never tried; the test proves nothing")
	}
	// The client has latched onto the primary: no more traffic to the
	// demoted endpoint.
	before := demotedHits.Load()
	if _, err := c.Graphs(context.Background()); err != nil {
		t.Fatalf("Graphs after failover: %v", err)
	}
	if demotedHits.Load() != before {
		t.Fatal("client kept sending API calls to the demoted endpoint after re-resolving")
	}
}

// TestClientHonorsRetryAfter pins the 429 contract: a rate limit with a
// Retry-After hint is retried against the same endpoint after at least
// the hinted delay, not rotated away from.
func TestClientHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprintf(w, `{"error":{"code":"quota_exceeded","message":"busy"}}`)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"graphs":[]}`)
	}))
	t.Cleanup(ts.Close)

	c := New(ts.URL, WithRetries(2))
	start := time.Now()
	if _, err := c.Graphs(context.Background()); err != nil {
		t.Fatalf("Graphs: %v", err)
	}
	if elapsed := time.Since(start); elapsed < time.Second {
		t.Fatalf("retry after %s ignored the Retry-After: 1 hint", elapsed)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d calls, want 2", got)
	}
}

// TestClientDoesNotRetryClientErrors pins that plain 4xx answers return
// immediately as typed errors: retrying a bad request cannot fix it.
func TestClientDoesNotRetryClientErrors(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprintf(w, `{"error":{"code":"invalid_request","message":"no"}}`)
	}))
	t.Cleanup(ts.Close)

	c := New(ts.URL, WithRetries(5))
	_, err := c.Graphs(context.Background())
	var ae *APIError
	if !asAPIError(err, &ae) || ae.Code != service.CodeInvalidRequest {
		t.Fatalf("want typed invalid_request, got %v", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("client retried a 400 %d times", got-1)
	}
}

// TestEventStreamContextCancel pins the stream teardown contract: a
// canceled context unblocks a Next that is waiting for events, and the
// recorded LastSeq lets a fresh stream resume exactly where the old one
// stopped — the reconnect path a failover-aware consumer drives.
func TestEventStreamContextCancel(t *testing.T) {
	_, ts := newTestServer(t, service.Options{})
	c := New(ts.URL)
	loadFigure1(t, c, "demo")
	v, err := c.CreateSession(context.Background(), service.SessionConfig{Graph: "demo", Mode: "manual"})
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	st, err := c.Events(ctx, v.ID, 0)
	if err != nil {
		t.Fatalf("Events: %v", err)
	}
	defer st.Close()
	// Drain the replayed prefix (at least the create record), then park
	// in Next and cut the context from the outside.
	first, err := st.Next()
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	if first.Type != "create" {
		t.Fatalf("first event = %q, want create", first.Type)
	}
	for st.LastSeq == 0 || first.Type != "question" {
		ev, err := st.Next()
		if err != nil {
			t.Fatalf("Next during replay: %v", err)
		}
		first = ev
		if ev.Type == "question" {
			break
		}
	}
	resumeFrom := st.LastSeq

	done := make(chan error, 1)
	go func() {
		_, err := st.Next()
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if err == nil || err == io.EOF {
			t.Fatalf("canceled stream returned %v, want a transport error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Next did not unblock after context cancellation")
	}

	// Reconnect from the cursor: the question must not replay.
	st2, err := c.Events(context.Background(), v.ID, resumeFrom)
	if err != nil {
		t.Fatalf("Events (resume): %v", err)
	}
	defer st2.Close()
	if _, err := c.Answer(context.Background(), v.ID, service.Answer{Decision: "positive"}); err != nil {
		t.Fatalf("Answer: %v", err)
	}
	ev, err := st2.Next()
	if err != nil {
		t.Fatalf("Next after resume: %v", err)
	}
	if ev.Seq <= resumeFrom {
		t.Fatalf("resumed stream replayed seq %d (cursor was %d)", ev.Seq, resumeFrom)
	}
}
