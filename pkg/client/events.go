package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
)

// Event is one server-sent event from a session's journal stream. Seq is
// the journal sequence number (usable as the reconnect cursor), Type the
// journal record type ("create", "question", "answer", "merge", "done",
// "failed", ...), and Data the record's raw JSON payload.
type Event struct {
	Seq  uint64
	Type string
	Data json.RawMessage
}

// Terminal reports whether the event ends the stream.
func (e Event) Terminal() bool { return e.Type == "done" || e.Type == "failed" }

// EventStream is an open GET /v1/sessions/{id}/events connection. Read
// events with Next until it returns io.EOF (server closed the stream after
// a terminal event) or an error; always Close when done.
type EventStream struct {
	body io.ReadCloser
	sc   *bufio.Scanner
	// LastSeq is the sequence of the last event delivered — pass it as
	// `after` to Events to resume a dropped stream without replays.
	LastSeq uint64
}

// Events opens a session's event stream. after > 0 skips the journal
// prefix up to and including that sequence (reconnect); 0 replays the full
// history. The stream outlives the client timeout: it is served on a
// transport without an overall deadline and canceled via ctx.
func (c *Client) Events(ctx context.Context, id string, after uint64) (*EventStream, error) {
	path := c.endpoint() + "/v1/sessions/" + id + "/events"
	if after > 0 {
		path += "?after=" + strconv.FormatUint(after, 10)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, path, nil)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	c.decorate(req)
	// A streaming read must not be cut by the client-wide timeout, so the
	// stream uses a timeout-free shallow copy of the configured client.
	hc := *c.hc
	hc.Timeout = 0
	resp, err := hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: GET %s: %w", path, err)
	}
	if resp.StatusCode >= 400 {
		defer resp.Body.Close()
		return nil, decodeAPIError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	return &EventStream{body: resp.Body, sc: sc, LastSeq: after}, nil
}

// Next blocks for the next event. It returns io.EOF once the server ends
// the stream (after a done/failed event, a session delete, or a server
// shutdown) and skips heartbeat comments transparently.
func (s *EventStream) Next() (Event, error) {
	var ev Event
	haveData := false
	for s.sc.Scan() {
		line := s.sc.Bytes()
		switch {
		case len(line) == 0:
			// Blank line ends one event frame; heartbeats (comment-only
			// frames) carry no data and are skipped.
			if haveData {
				s.LastSeq = ev.Seq
				return ev, nil
			}
		case line[0] == ':':
			// keep-alive comment
		case bytes.HasPrefix(line, []byte("id: ")):
			ev.Seq, _ = strconv.ParseUint(string(line[4:]), 10, 64)
		case bytes.HasPrefix(line, []byte("event: ")):
			ev.Type = string(line[7:])
		case bytes.HasPrefix(line, []byte("data: ")):
			ev.Data = append(json.RawMessage(nil), line[6:]...)
			haveData = true
		}
	}
	if err := s.sc.Err(); err != nil {
		return Event{}, fmt.Errorf("client: event stream: %w", err)
	}
	return Event{}, io.EOF
}

// Close releases the underlying connection.
func (s *EventStream) Close() error { return s.body.Close() }
