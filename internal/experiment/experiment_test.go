package experiment

import (
	"strconv"
	"strings"
	"testing"
)

func quickCfg() Config { return Config{Quick: true, Seed: 1} }

func TestRegistryAndLookup(t *testing.T) {
	reg := Registry()
	if len(reg) < 10 {
		t.Fatalf("expected at least 10 experiments, got %d", len(reg))
	}
	seen := make(map[string]bool)
	for _, r := range reg {
		if r.ID == "" || r.Paper == "" || r.Description == "" || r.Run == nil {
			t.Fatalf("incomplete runner %+v", r)
		}
		if seen[r.ID] {
			t.Fatalf("duplicate experiment id %s", r.ID)
		}
		seen[r.ID] = true
		if _, ok := Lookup(r.ID); !ok {
			t.Fatalf("Lookup(%s) failed", r.ID)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("Lookup of unknown id should fail")
	}
	if len(IDs()) != len(reg) {
		t.Fatal("IDs length mismatch")
	}
}

func TestFigure1LearningTable(t *testing.T) {
	tbl := Figure1Learning(quickCfg())
	out := tbl.String()
	if !strings.Contains(out, "validated paths + generalisation") {
		t.Fatalf("missing variant:\n%s", out)
	}
	// The validated-paths variant must recover the goal query.
	for _, row := range tbl.Rows {
		if row[0] == "validated paths + generalisation" {
			if row[2] != "yes" || row[3] != "yes" {
				t.Fatalf("validated variant should be consistent and goal-equivalent: %v", row)
			}
		}
		if row[0] == "auto witnesses (no validation)" {
			if row[2] != "yes" {
				t.Fatalf("auto-witness variant must still be consistent: %v", row)
			}
			if row[3] != "no" {
				t.Fatalf("auto-witness variant should not recover the goal on Figure 1: %v", row)
			}
		}
	}
}

func TestInteractiveVsStaticShape(t *testing.T) {
	tbl := InteractiveVsStatic(quickCfg())
	if len(tbl.Rows) == 0 {
		t.Fatal("no rows")
	}
	// The headline shape: interactive needs no more labels than static on
	// every measured size.
	for _, row := range tbl.Rows {
		inter := mustFloat(t, row[2])
		static := mustFloat(t, row[4])
		if inter > static {
			t.Fatalf("interactive (%v) should need no more labels than static (%v): %v", inter, static, row)
		}
	}
}

func TestNeighborhoodGrowthShape(t *testing.T) {
	tbl := NeighborhoodGrowth(quickCfg())
	if len(tbl.Rows) < 8 {
		t.Fatalf("expected rows for 2 graphs x 4 radii, got %d", len(tbl.Rows))
	}
	// Fragment size must be non-decreasing in the radius for each graph.
	var prev float64
	var prevGraph string
	for _, row := range tbl.Rows {
		size := mustFloat(t, row[3])
		if row[0] == prevGraph && size < prev {
			t.Fatalf("fragment size decreased with radius: %v", tbl.Rows)
		}
		prev, prevGraph = size, row[0]
	}
}

func TestPathValidationEffectShape(t *testing.T) {
	tbl := PathValidationEffect(quickCfg())
	if len(tbl.Rows) == 0 {
		t.Fatal("no rows")
	}
	// With validation, answer-set recovery and language equivalence must be
	// at least as frequent as without, aggregated over all goals.
	withSet, withoutSet, withLang, withoutLang := 0, 0, 0, 0
	for _, row := range tbl.Rows {
		withSet += fractionNumerator(t, row[2])
		withoutSet += fractionNumerator(t, row[3])
		withLang += fractionNumerator(t, row[4])
		withoutLang += fractionNumerator(t, row[5])
	}
	if withSet < withoutSet {
		t.Fatalf("path validation should not hurt answer-set recovery: with=%d without=%d", withSet, withoutSet)
	}
	if withLang < withoutLang {
		t.Fatalf("path validation should not hurt language recovery: with=%d without=%d", withLang, withoutLang)
	}
	if withSet == 0 {
		t.Fatal("path validation should recover the goal at least once")
	}
}

func TestInteractionsVsQuerySizeShape(t *testing.T) {
	tbl := InteractionsVsQuerySize(quickCfg())
	if len(tbl.Rows) == 0 {
		t.Fatal("no rows")
	}
	// Each goal appears once per strategy.
	byStrategy := map[string]int{}
	for _, row := range tbl.Rows {
		byStrategy[row[2]]++
	}
	if byStrategy["random"] != byStrategy["informative"] || byStrategy["random"] == 0 {
		t.Fatalf("unbalanced strategies: %v", byStrategy)
	}
}

func TestLearningTimeVsGraphSizeShape(t *testing.T) {
	tbl := LearningTimeVsGraphSize(quickCfg())
	if len(tbl.Rows) < 3 {
		t.Fatalf("expected at least 3 sizes, got %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if row[5] != "yes" {
			t.Fatalf("learning must stay consistent at every size: %v", row)
		}
	}
}

func TestStrategyComparisonShape(t *testing.T) {
	tbl := StrategyComparison(quickCfg())
	if len(tbl.Rows) != 4 {
		t.Fatalf("expected 4 strategies, got %d", len(tbl.Rows))
	}
	names := map[string]bool{}
	for _, row := range tbl.Rows {
		names[row[0]] = true
	}
	for _, want := range []string{"random", "informative", "hybrid", "disagreement"} {
		if !names[want] {
			t.Fatalf("missing strategy %s", want)
		}
	}
}

func TestAblations(t *testing.T) {
	if tbl := AblationWitnessOrder(quickCfg()); len(tbl.Rows) != 2 {
		t.Fatalf("witness ablation rows = %d", len(tbl.Rows))
	}
	if tbl := AblationMergeOrder(quickCfg()); len(tbl.Rows) != 2 {
		t.Fatalf("merge ablation rows = %d", len(tbl.Rows))
	}
	if tbl := AblationNeighborhoodRadius(quickCfg()); len(tbl.Rows) != 3 {
		t.Fatalf("radius ablation rows = %d", len(tbl.Rows))
	}
}

// helpers

func mustFloat(t *testing.T, s string) float64 {
	t.Helper()
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cannot parse %q as float: %v", s, err)
	}
	return f
}

func fractionNumerator(t *testing.T, s string) int {
	t.Helper()
	parts := strings.Split(s, "/")
	n, err := strconv.Atoi(parts[0])
	if err != nil {
		t.Fatalf("cannot parse %q: %v", s, err)
	}
	return n
}
