package experiment

import (
	"fmt"
	"time"

	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/interactive"
	"repro/internal/learn"
	"repro/internal/regex"
	"repro/internal/rpq"
	"repro/internal/stats"
	"repro/internal/user"
)

// transportGoalWorkload returns goal queries over the transport alphabet in
// increasing size, the workload used by the companion-style experiments.
func transportGoalWorkload() []*regex.Expr {
	return []*regex.Expr{
		regex.MustParse("cinema"),
		regex.MustParse("tram.cinema"),
		regex.MustParse("bus*.cinema"),
		regex.MustParse("(tram+bus)*.cinema"),
		regex.MustParse("(tram+bus)*.cinema+restaurant"),
		regex.MustParse("(tram+bus)*.(cinema+museum)"),
	}
}

// InteractionsVsQuerySize measures, per goal query size and per strategy,
// how many labels the interactive session needs before the user is
// satisfied (the learned query returns the goal answer set). It mirrors
// the companion paper's interactions-vs-query-complexity series.
func InteractionsVsQuerySize(cfg Config) *stats.Table {
	table := stats.NewTable(
		"E1 — labels to convergence vs goal query size, per strategy",
		"goal query", "query size", "strategy", "runs", "mean labels", "converged")
	size := 4
	if !cfg.Quick {
		size = 6
	}
	strategies := []func() interactive.Strategy{
		func() interactive.Strategy { return interactive.NewRandomStrategy(cfg.Seed) },
		func() interactive.Strategy { return &interactive.InformativeStrategy{MaxPathLength: pathBound(size)} },
		func() interactive.Strategy { return &interactive.DisagreementStrategy{MaxPathLength: pathBound(size)} },
	}
	reps := cfg.repetitions()
	for _, goal := range transportGoalWorkload() {
		for _, mk := range strategies {
			var labels []float64
			converged, runs := 0, 0
			name := ""
			for rep := 0; rep < reps; rep++ {
				seed := cfg.Seed + int64(rep)
				g := dataset.Transport(dataset.TransportOptions{Rows: size, Cols: size, Seed: seed, FacilityRate: 0.4})
				if len(rpq.Evaluate(g, goal)) == 0 {
					continue
				}
				runs++
				strat := mk()
				name = strat.Name()
				u := user.NewSimulated(g, goal)
				tr, err := interactive.Run(g, u, interactive.Options{
					Strategy:        strat,
					PathValidation:  true,
					MaxInteractions: g.NumNodes(),
					Learn:           learn.Options{MaxPathLength: pathBound(size)},
				})
				if err != nil {
					continue
				}
				labels = append(labels, float64(tr.Labels()))
				if tr.Halt == interactive.HaltSatisfied {
					converged++
				}
			}
			if name == "" {
				name = mk().Name()
			}
			table.AddRow(goal.String(), goal.Size(), name, runs,
				stats.Summarize(labels).Mean, fmt.Sprintf("%d/%d", converged, runs))
		}
	}
	return table
}

// learningSizes returns the graph sizes used by the learning-time
// experiment.
func learningSizes(cfg Config) []int {
	if cfg.Quick {
		return []int{100, 500, 1000}
	}
	return []int{100, 500, 1000, 5000, 10000, 20000}
}

// LearningTimeVsGraphSize measures, as the graph grows, the wall-clock time
// of (i) one Learn call in which the learner also has to find witness
// paths itself (witness search + prefix-tree construction + consistent
// state merging) and (ii) one full evaluation of the goal query on the
// graph. The shape expected from the paper's polynomial-time claim is a
// roughly linear growth in graph size for both.
func LearningTimeVsGraphSize(cfg Config) *stats.Table {
	table := stats.NewTable(
		"E2 — learning and evaluation time vs graph size (scale-free graphs, goal (interacts+regulates)*.binds, 4+ / 4- examples)",
		"nodes", "edges", "examples", "mean learn time (ms)", "mean eval time (ms)", "learned query consistent")
	goal := regex.MustParse("(interacts+regulates)*.binds")
	for _, n := range learningSizes(cfg) {
		var learnTimes, evalTimes []float64
		consistent := true
		edges := 0
		examples := 0
		for rep := 0; rep < cfg.repetitions(); rep++ {
			g := dataset.ScaleFree(dataset.ScaleFreeOptions{Nodes: n, EdgesPerNode: 2, Seed: cfg.Seed + int64(rep)})
			edges = g.NumEdges()
			sample, ok := sampleFromGoal(g, goal, 4, 4)
			if !ok {
				continue
			}
			// Strip the validated words so that the learner performs the
			// witness search of step 1 itself, which is the graph-dependent
			// part of the algorithm.
			stripped := learn.NewSample()
			for _, p := range sample.PositiveNodes() {
				stripped.AddPositive(p, nil)
			}
			for _, neg := range sample.Negatives {
				stripped.AddNegative(neg)
			}
			examples = stripped.Size()

			start := time.Now()
			res, err := learn.Learn(g, stripped, learn.Options{MaxPathLength: 4})
			learnTimes = append(learnTimes, float64(time.Since(start).Microseconds())/1000)
			if err != nil || !learn.Consistent(g, res.Query, stripped) {
				consistent = false
			}

			start = time.Now()
			if len(rpq.Evaluate(g, goal)) == 0 {
				consistent = false
			}
			evalTimes = append(evalTimes, float64(time.Since(start).Microseconds())/1000)
		}
		table.AddRow(n, edges, examples,
			stats.Summarize(learnTimes).Mean,
			stats.Summarize(evalTimes).Mean,
			boolCell(consistent))
	}
	return table
}

// sampleFromGoal builds a sample of up to maxPos positive and maxNeg
// negative examples according to the goal query's answer set, attaching to
// each positive a witness word of the goal (as a user validating her path
// of interest would).
func sampleFromGoal(g *graph.Graph, goal *regex.Expr, maxPos, maxNeg int) (*learn.Sample, bool) {
	engine := rpq.New(g, goal)
	sample := learn.NewSample()
	pos, neg := 0, 0
	for _, node := range g.Nodes() {
		if engine.Selects(node) {
			if pos >= maxPos {
				continue
			}
			if w, ok := user.WitnessWord(g, goal, node, 4); ok {
				sample.AddPositive(node, w)
				pos++
			}
		} else if neg < maxNeg {
			sample.AddNegative(node)
			neg++
		}
	}
	return sample, pos > 0
}

// StrategyComparison compares the three node-proposal strategies on the
// same transport network: labels to convergence, zoom requests, pruned
// nodes and whether the goal was reached.
func StrategyComparison(cfg Config) *stats.Table {
	table := stats.NewTable(
		"E3 — strategy comparison on a transport network, goal (tram+bus)*.cinema",
		"strategy", "runs", "mean labels", "mean zooms", "mean pruned", "converged")
	size := 4
	if !cfg.Quick {
		size = 6
	}
	goal := figure2Goal()
	strategies := []func(seed int64) interactive.Strategy{
		func(seed int64) interactive.Strategy { return interactive.NewRandomStrategy(seed) },
		func(seed int64) interactive.Strategy {
			return &interactive.InformativeStrategy{MaxPathLength: pathBound(size)}
		},
		func(seed int64) interactive.Strategy {
			return &interactive.HybridStrategy{MaxPathLength: pathBound(size)}
		},
		func(seed int64) interactive.Strategy {
			return &interactive.DisagreementStrategy{MaxPathLength: pathBound(size)}
		},
	}
	names := []string{"random", "informative", "hybrid", "disagreement"}
	reps := cfg.repetitions()
	for i, mk := range strategies {
		var labels, zooms, pruned []float64
		converged, runs := 0, 0
		for rep := 0; rep < reps; rep++ {
			seed := cfg.Seed + int64(rep)
			g := dataset.Transport(dataset.TransportOptions{Rows: size, Cols: size, Seed: seed, FacilityRate: 0.4})
			if len(rpq.Evaluate(g, goal)) == 0 {
				continue
			}
			runs++
			u := user.NewSimulated(g, goal)
			tr, err := interactive.Run(g, u, interactive.Options{
				Strategy:        mk(seed),
				PathValidation:  true,
				MaxInteractions: g.NumNodes(),
				Learn:           learn.Options{MaxPathLength: pathBound(size)},
			})
			if err != nil {
				continue
			}
			labels = append(labels, float64(tr.Labels()))
			zooms = append(zooms, float64(tr.ZoomsTotal))
			pruned = append(pruned, float64(tr.PrunedTotal))
			if tr.Halt == interactive.HaltSatisfied {
				converged++
			}
		}
		table.AddRow(names[i], runs,
			stats.Summarize(labels).Mean,
			stats.Summarize(zooms).Mean,
			stats.Summarize(pruned).Mean,
			fmt.Sprintf("%d/%d", converged, runs))
	}
	return table
}
