// Package experiment is the harness that regenerates every figure-level
// artefact of the paper and the companion-style quantitative evaluation
// described in DESIGN.md. Each experiment returns a stats.Table whose rows
// are the series reported in EXPERIMENTS.md; cmd/gpsbench prints them and
// bench_test.go wraps them in testing.B benchmarks.
package experiment

import (
	"fmt"
	"sort"

	"repro/internal/stats"
)

// Config controls the scale of the experiments.
type Config struct {
	// Quick shrinks graph sizes and repetition counts so that the whole
	// suite runs in seconds (used by `go test` and `go test -bench` runs);
	// the full setting is used by `gpsbench -full`.
	Quick bool
	// Seed drives every pseudo-random choice, making runs reproducible.
	Seed int64
}

// DefaultConfig is a quick, seeded configuration.
func DefaultConfig() Config { return Config{Quick: true, Seed: 1} }

// repetitions returns how many seeds each measured point is averaged over.
func (c Config) repetitions() int {
	if c.Quick {
		return 3
	}
	return 10
}

// Runner is an experiment entry in the registry.
type Runner struct {
	// ID is the experiment identifier used on the command line (e.g. "f1").
	ID string
	// Paper names the paper artefact being reproduced.
	Paper string
	// Description summarises what is measured.
	Description string
	// Run executes the experiment.
	Run func(Config) *stats.Table
}

// Registry lists every experiment in a stable order.
func Registry() []Runner {
	return []Runner{
		{
			ID:          "f1",
			Paper:       "Figure 1 (motivating example)",
			Description: "learn the goal query from the paper's examples on the Figure 1 graph",
			Run:         Figure1Learning,
		},
		{
			ID:          "f2",
			Paper:       "Figure 2 (interactive scenario)",
			Description: "labels needed to reach the goal: interactive vs static labelling",
			Run:         InteractiveVsStatic,
		},
		{
			ID:          "f3a",
			Paper:       "Figure 3(a,b) (neighbourhood & zoom)",
			Description: "size of the shown fragment as the zoom radius grows",
			Run:         NeighborhoodGrowth,
		},
		{
			ID:          "f3c",
			Paper:       "Figure 3(c) (path validation)",
			Description: "goal recovery with and without the path-validation step",
			Run:         PathValidationEffect,
		},
		{
			ID:          "e1",
			Paper:       "Companion-style evaluation 1",
			Description: "labels to convergence vs goal query size, per strategy",
			Run:         InteractionsVsQuerySize,
		},
		{
			ID:          "e2",
			Paper:       "Companion-style evaluation 2",
			Description: "learning time vs graph size",
			Run:         LearningTimeVsGraphSize,
		},
		{
			ID:          "e3",
			Paper:       "Companion-style evaluation 3",
			Description: "strategy comparison: labels, zooms, pruning",
			Run:         StrategyComparison,
		},
		{
			ID:          "ab1",
			Paper:       "Ablation: witness order",
			Description: "shortest-first vs longest-first witness selection",
			Run:         AblationWitnessOrder,
		},
		{
			ID:          "ab2",
			Paper:       "Ablation: merge order",
			Description: "BFS vs evidence-weighted state-merging order",
			Run:         AblationMergeOrder,
		},
		{
			ID:          "ab3",
			Paper:       "Ablation: initial neighbourhood radius",
			Description: "initial radius 1 vs 2 vs 3: zooms and labels",
			Run:         AblationNeighborhoodRadius,
		},
	}
}

// Lookup returns the runner with the given ID.
func Lookup(id string) (Runner, bool) {
	for _, r := range Registry() {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}

// IDs returns the sorted experiment identifiers.
func IDs() []string {
	var ids []string
	for _, r := range Registry() {
		ids = append(ids, r.ID)
	}
	sort.Strings(ids)
	return ids
}

// boolCell renders a boolean for a table cell.
func boolCell(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// ratioCell renders a ratio "x.yz×", guarding against division by zero.
func ratioCell(num, den float64) string {
	if den == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2fx", num/den)
}
