package experiment

import (
	"fmt"

	"repro/internal/automaton"
	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/interactive"
	"repro/internal/learn"
	"repro/internal/regex"
	"repro/internal/rpq"
	"repro/internal/stats"
	"repro/internal/user"
)

// Figure1Learning reproduces the motivating example (Figure 1): given the
// paper's examples — positives N2 and N6 with their validated paths,
// negative N5 — the learner must construct a query language-equivalent to
// (tram+bus)*.cinema. The table also shows what happens without path
// validation (the learner picks its own witnesses) and without
// generalisation (the raw disjunction of witnesses).
func Figure1Learning(cfg Config) *stats.Table {
	g := dataset.Figure1()
	goal := dataset.Figure1GoalQuery()
	table := stats.NewTable(
		"Figure 1 — learning the goal query (tram+bus)*.cinema from examples {N2:+, N6:+, N5:-}",
		"variant", "learned query", "consistent", "goal-equivalent", "merges")

	type variant struct {
		name      string
		validated bool
		opts      learn.Options
	}
	variants := []variant{
		{"validated paths + generalisation", true, learn.Options{}},
		{"validated paths, no generalisation", true, learn.Options{DisableGeneralization: true}},
		{"auto witnesses (no validation)", false, learn.Options{}},
	}
	for _, v := range variants {
		sample := learn.NewSample()
		pos, negs := dataset.Figure1Examples()
		for n, w := range pos {
			if v.validated {
				sample.AddPositive(n, w)
			} else {
				sample.AddPositive(n, nil)
			}
		}
		for _, n := range negs {
			sample.AddNegative(n)
		}
		res, err := learn.Learn(g, sample, v.opts)
		if err != nil {
			table.AddRow(v.name, "error: "+err.Error(), "no", "no", 0)
			continue
		}
		equivalent := automaton.EquivalentNFA(
			automaton.FromRegex(res.Query), automaton.FromRegex(goal))
		table.AddRow(v.name, res.Query.String(),
			boolCell(learn.Consistent(g, res.Query, sample)),
			boolCell(equivalent), res.Merges)
	}
	return table
}

// figure2Goal is the goal query used by the transport-network experiments.
func figure2Goal() *regex.Expr { return regex.MustParse("(tram+bus)*.cinema") }

// transportSizes returns the grid sizes used by the interactive
// experiments.
func transportSizes(cfg Config) []int {
	if cfg.Quick {
		return []int{3, 4}
	}
	return []int{3, 4, 6, 8, 10}
}

// InteractiveVsStatic reproduces the point of Figure 2 and of the first two
// demonstration scenarios: guided interaction needs far fewer labels than
// unguided (static) labelling to reach the user's goal query. For each
// graph size it reports the average number of labels each approach needed
// (static runs are capped at the number of nodes).
func InteractiveVsStatic(cfg Config) *stats.Table {
	goal := figure2Goal()
	table := stats.NewTable(
		"Figure 2 — labels to reach the goal: interactive vs static labelling",
		"grid", "nodes", "interactive labels", "interactive converged", "static labels", "static converged", "static/interactive")
	for _, size := range transportSizes(cfg) {
		var interLabels, staticLabels []float64
		interConverged, staticConverged := 0, 0
		reps := cfg.repetitions()
		for rep := 0; rep < reps; rep++ {
			seed := cfg.Seed + int64(rep)
			g := dataset.Transport(dataset.TransportOptions{Rows: size, Cols: size, Seed: seed, FacilityRate: 0.5})
			if len(rpq.Evaluate(g, goal)) == 0 {
				continue
			}
			// Interactive: informative strategy with path validation.
			u := user.NewSimulated(g, goal)
			tr, err := interactive.Run(g, u, interactive.Options{
				PathValidation:  true,
				MaxInteractions: g.NumNodes(),
				Learn:           learn.Options{MaxPathLength: pathBound(size)},
			})
			if err == nil {
				interLabels = append(interLabels, float64(tr.Labels()))
				if tr.Halt == interactive.HaltSatisfied {
					interConverged++
				}
			}
			// Static: the user explores in random order without guidance.
			su := user.NewSimulated(g, goal)
			sres := interactive.RunStatic(g, su, interactive.StaticOptions{
				Choice: user.NewRandomChoice(seed),
				Learn:  learn.Options{MaxPathLength: pathBound(size)},
			})
			labels := float64(sres.Labels)
			if !sres.Satisfied {
				labels = float64(g.NumNodes())
			} else {
				staticConverged++
			}
			staticLabels = append(staticLabels, labels)
		}
		is := stats.Summarize(interLabels)
		ss := stats.Summarize(staticLabels)
		nodes := dataset.Transport(dataset.TransportOptions{Rows: size, Cols: size, Seed: cfg.Seed, FacilityRate: 0.5}).NumNodes()
		table.AddRow(fmt.Sprintf("%dx%d", size, size), nodes,
			is.Mean, fmt.Sprintf("%d/%d", interConverged, reps),
			ss.Mean, fmt.Sprintf("%d/%d", staticConverged, reps),
			ratioCell(ss.Mean, is.Mean))
	}
	return table
}

// pathBound picks the witness/informativeness path-length bound so that a
// corner neighbourhood of a size×size grid can still reach a facility.
func pathBound(gridSize int) int {
	b := 2*(gridSize-1) + 1
	if b < learn.DefaultMaxPathLength {
		return learn.DefaultMaxPathLength
	}
	if b > 8 {
		return 8
	}
	return b
}

// NeighborhoodGrowth reproduces Figure 3(a,b): the size of the fragment
// shown to the user as she zooms out, compared with the size of the whole
// graph — the quantity that makes interactive visualisation feasible at
// all. Fragments are averaged over every node of the graph.
func NeighborhoodGrowth(cfg Config) *stats.Table {
	table := stats.NewTable(
		"Figure 3(a,b) — fragment size by zoom radius (averaged over centre nodes)",
		"graph", "graph nodes", "radius", "fragment nodes", "fragment edges", "frontier nodes", "fraction of graph")
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"figure1", dataset.Figure1()},
		{"transport-4x4", dataset.Transport(dataset.TransportOptions{Rows: 4, Cols: 4, Seed: cfg.Seed, FacilityRate: 0.5})},
	}
	if !cfg.Quick {
		graphs = append(graphs, struct {
			name string
			g    *graph.Graph
		}{"transport-10x10", dataset.Transport(dataset.TransportOptions{Rows: 10, Cols: 10, Seed: cfg.Seed, FacilityRate: 0.5})})
	}
	for _, entry := range graphs {
		for radius := 1; radius <= 4; radius++ {
			var nodes, edges, frontier []float64
			for _, id := range entry.g.Nodes() {
				n := entry.g.NeighborhoodAround(id, radius, graph.NeighborhoodOptions{Directed: true})
				nodes = append(nodes, float64(n.Fragment.NumNodes()))
				edges = append(edges, float64(n.Fragment.NumEdges()))
				frontier = append(frontier, float64(len(n.Frontier)))
			}
			ns := stats.Summarize(nodes)
			es := stats.Summarize(edges)
			fs := stats.Summarize(frontier)
			table.AddRow(entry.name, entry.g.NumNodes(), radius, ns.Mean, es.Mean, fs.Mean,
				fmt.Sprintf("%.0f%%", 100*ns.Mean/float64(entry.g.NumNodes())))
		}
	}
	return table
}

// PathValidationEffect reproduces the purpose of Figure 3(c) and of the
// third demonstration scenario: with path validation the learned query is
// built from the paths the user actually cares about, so it matches the
// goal more closely. The table reports, over several goal queries and
// random transport networks, how often each variant (i) returns the goal
// answer set on the instance and (ii) learns a query whose *language* is
// equivalent to the goal — the paper's stronger claim — together with the
// labels needed.
func PathValidationEffect(cfg Config) *stats.Table {
	table := stats.NewTable(
		"Figure 3(c) — goal recovery with and without path validation",
		"goal query", "runs",
		"answer set (with)", "answer set (without)",
		"language-equal (with)", "language-equal (without)",
		"labels (with)", "labels (without)")
	goals := []*regex.Expr{
		regex.MustParse("cinema"),
		regex.MustParse("tram.cinema"),
		regex.MustParse("(tram+bus)*.cinema"),
		regex.MustParse("(tram+bus)*.restaurant"),
		regex.MustParse("bus.(tram+bus)*.cinema"),
	}
	reps := cfg.repetitions()
	size := 4
	for _, goal := range goals {
		goalNFA := automaton.FromRegex(goal)
		withSet, withoutSet, withLang, withoutLang, runs := 0, 0, 0, 0, 0
		var withLabels, withoutLabels []float64
		for rep := 0; rep < reps; rep++ {
			seed := cfg.Seed + int64(rep)
			g := dataset.Transport(dataset.TransportOptions{Rows: size, Cols: size, Seed: seed, FacilityRate: 0.4})
			if len(rpq.Evaluate(g, goal)) == 0 {
				continue
			}
			runs++
			for _, withValidation := range []bool{true, false} {
				u := user.NewSimulated(g, goal)
				tr, err := interactive.Run(g, u, interactive.Options{
					PathValidation:  withValidation,
					MaxInteractions: g.NumNodes(),
					Learn:           learn.Options{MaxPathLength: pathBound(size)},
				})
				if err != nil || tr.Final == nil {
					continue
				}
				set := sameAnswerSet(g, tr.Final, goal)
				lang := automaton.EquivalentNFA(automaton.FromRegex(tr.Final), goalNFA)
				if withValidation {
					withLabels = append(withLabels, float64(tr.Labels()))
					if set {
						withSet++
					}
					if lang {
						withLang++
					}
				} else {
					withoutLabels = append(withoutLabels, float64(tr.Labels()))
					if set {
						withoutSet++
					}
					if lang {
						withoutLang++
					}
				}
			}
		}
		table.AddRow(goal.String(), runs,
			fmt.Sprintf("%d/%d", withSet, runs),
			fmt.Sprintf("%d/%d", withoutSet, runs),
			fmt.Sprintf("%d/%d", withLang, runs),
			fmt.Sprintf("%d/%d", withoutLang, runs),
			stats.Summarize(withLabels).Mean,
			stats.Summarize(withoutLabels).Mean)
	}
	return table
}

// sameAnswerSet reports whether the two queries select exactly the same
// nodes of the graph.
func sameAnswerSet(g *graph.Graph, a, b *regex.Expr) bool {
	ea, eb := rpq.New(g, a), rpq.New(g, b)
	for _, n := range g.Nodes() {
		if ea.Selects(n) != eb.Selects(n) {
			return false
		}
	}
	return true
}
