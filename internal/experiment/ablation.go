package experiment

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/interactive"
	"repro/internal/learn"
	"repro/internal/rpq"
	"repro/internal/stats"
	"repro/internal/user"
)

// AblationWitnessOrder compares shortest-first against longest-first
// witness selection in step 1 of the learner (paths are chosen by the
// system, as in the scenario without path validation). Shorter witnesses
// give smaller prefix trees and faster learning, but generalise to queries
// that are further from the goal.
func AblationWitnessOrder(cfg Config) *stats.Table {
	table := stats.NewTable(
		"Ablation 1 — witness selection order (no path validation, Figure 1 + transport graphs)",
		"witness order", "runs", "consistent", "goal answer set recovered", "mean learned query size")
	goal := figure2Goal()
	orders := []learn.WitnessOrder{learn.WitnessShortest, learn.WitnessLongest}
	names := []string{"shortest-first", "longest-first"}
	reps := cfg.repetitions()
	for i, order := range orders {
		runs, consistent, recovered := 0, 0, 0
		var sizes []float64
		for rep := 0; rep < reps; rep++ {
			seed := cfg.Seed + int64(rep)
			g := dataset.Transport(dataset.TransportOptions{Rows: 4, Cols: 4, Seed: seed, FacilityRate: 0.4})
			if len(rpq.Evaluate(g, goal)) == 0 {
				continue
			}
			sample, ok := sampleFromGoal(g, goal, 4, 4)
			if !ok {
				continue
			}
			// Strip the validated words: the learner must pick witnesses
			// itself, which is what this ablation studies.
			stripped := learn.NewSample()
			for _, n := range sample.PositiveNodes() {
				stripped.AddPositive(n, nil)
			}
			for _, n := range sample.Negatives {
				stripped.AddNegative(n)
			}
			runs++
			res, err := learn.Learn(g, stripped, learn.Options{WitnessOrder: order, MaxPathLength: pathBound(4)})
			if err != nil {
				continue
			}
			if learn.Consistent(g, res.Query, stripped) {
				consistent++
			}
			if sameAnswerSet(g, res.Query, goal) {
				recovered++
			}
			sizes = append(sizes, float64(res.Query.Size()))
		}
		table.AddRow(names[i], runs,
			fmt.Sprintf("%d/%d", consistent, runs),
			fmt.Sprintf("%d/%d", recovered, runs),
			stats.Summarize(sizes).Mean)
	}
	return table
}

// AblationMergeOrder compares the BFS merge order against the
// evidence-weighted order in the generalisation step, reporting the number
// of candidate merges tried (the learner's work) and the size of the
// learned query.
func AblationMergeOrder(cfg Config) *stats.Table {
	table := stats.NewTable(
		"Ablation 2 — state-merging order (validated witnesses, transport graphs)",
		"merge order", "runs", "mean candidate merges", "mean accepted merges", "mean learned query size", "consistent")
	goal := figure2Goal()
	orders := []learn.MergeOrder{learn.MergeBFS, learn.MergeEvidence}
	names := []string{"bfs", "evidence-weighted"}
	reps := cfg.repetitions()
	for i, order := range orders {
		runs, consistent := 0, 0
		var candidates, accepted, sizes []float64
		for rep := 0; rep < reps; rep++ {
			seed := cfg.Seed + int64(rep)
			g := dataset.Transport(dataset.TransportOptions{Rows: 4, Cols: 4, Seed: seed, FacilityRate: 0.4})
			if len(rpq.Evaluate(g, goal)) == 0 {
				continue
			}
			sample, ok := sampleFromGoal(g, goal, 4, 4)
			if !ok {
				continue
			}
			runs++
			res, err := learn.Learn(g, sample, learn.Options{MergeOrder: order, MaxPathLength: pathBound(4)})
			if err != nil {
				continue
			}
			candidates = append(candidates, float64(res.CandidateMerges))
			accepted = append(accepted, float64(res.Merges))
			sizes = append(sizes, float64(res.Query.Size()))
			if learn.Consistent(g, res.Query, sample) {
				consistent++
			}
		}
		table.AddRow(names[i], runs,
			stats.Summarize(candidates).Mean,
			stats.Summarize(accepted).Mean,
			stats.Summarize(sizes).Mean,
			fmt.Sprintf("%d/%d", consistent, runs))
	}
	return table
}

// AblationNeighborhoodRadius compares initial neighbourhood radii 1, 2
// (the paper's choice) and 3: a smaller initial radius means more zoom
// requests, a larger one means bigger fragments the user must read.
func AblationNeighborhoodRadius(cfg Config) *stats.Table {
	table := stats.NewTable(
		"Ablation 3 — initial neighbourhood radius (interactive sessions, goal (tram+bus)*.cinema)",
		"initial radius", "runs", "mean labels", "mean zooms", "converged")
	goal := figure2Goal()
	reps := cfg.repetitions()
	for _, radius := range []int{1, 2, 3} {
		runs, converged := 0, 0
		var labels, zooms []float64
		for rep := 0; rep < reps; rep++ {
			seed := cfg.Seed + int64(rep)
			g := dataset.Transport(dataset.TransportOptions{Rows: 4, Cols: 4, Seed: seed, FacilityRate: 0.4})
			if len(rpq.Evaluate(g, goal)) == 0 {
				continue
			}
			runs++
			u := user.NewSimulated(g, goal)
			u.MaxZoom = 4
			tr, err := interactive.Run(g, u, interactive.Options{
				InitialRadius:   radius,
				MaxRadius:       radius + 4,
				PathValidation:  true,
				MaxInteractions: g.NumNodes(),
				Learn:           learn.Options{MaxPathLength: pathBound(4)},
			})
			if err != nil {
				continue
			}
			labels = append(labels, float64(tr.Labels()))
			zooms = append(zooms, float64(tr.ZoomsTotal))
			if tr.Halt == interactive.HaltSatisfied {
				converged++
			}
		}
		table.AddRow(radius, runs,
			stats.Summarize(labels).Mean,
			stats.Summarize(zooms).Mean,
			fmt.Sprintf("%d/%d", converged, runs))
	}
	return table
}
