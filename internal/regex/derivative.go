package regex

// Brzozowski derivatives give a direct word-membership test on the AST,
// independent of the automaton package. The learner and the RPQ engine use
// automata for bulk evaluation; derivatives serve as a cross-check in
// property tests and as a lightweight matcher for short words (prefix-tree
// highlighting).

// Derivative returns the Brzozowski derivative of the expression with
// respect to the given label: the language { w | label·w ∈ L(e) }.
func (e *Expr) Derivative(label string) *Expr {
	switch e.Kind {
	case KindEmpty, KindEps:
		return Empty()
	case KindLabel:
		if e.Label == label {
			return Eps()
		}
		return Empty()
	case KindConcat:
		// d(r1 r2...rn) = d(r1) r2...rn  +  [r1 nullable] d(r2...rn)
		head := e.Subs[0]
		tail := Concat(e.Subs[1:]...)
		first := Concat(head.Derivative(label), tail)
		if head.Nullable() {
			return Union(first, tail.Derivative(label))
		}
		return first
	case KindUnion:
		subs := make([]*Expr, len(e.Subs))
		for i, s := range e.Subs {
			subs[i] = s.Derivative(label)
		}
		return Union(subs...)
	case KindStar:
		return Concat(e.Sub.Derivative(label), Star(e.Sub))
	case KindPlus:
		return Concat(e.Sub.Derivative(label), Star(e.Sub))
	case KindOpt:
		return e.Sub.Derivative(label)
	}
	return Empty()
}

// Matches reports whether the word (a sequence of labels) belongs to the
// language of the expression.
func (e *Expr) Matches(word []string) bool {
	cur := e
	for _, label := range word {
		cur = cur.Derivative(label)
		if cur.Kind == KindEmpty {
			return false
		}
	}
	return cur.Nullable()
}

// MatchesPrefix reports whether some word of the language has the given
// word as a prefix, i.e. whether the derivative by the word is non-empty.
func (e *Expr) MatchesPrefix(word []string) bool {
	cur := e
	for _, label := range word {
		cur = cur.Derivative(label)
		if cur.IsEmptyLanguage() {
			return false
		}
	}
	return !cur.IsEmptyLanguage()
}
