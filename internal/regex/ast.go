// Package regex implements regular expressions over edge labels, the query
// language of GPS path queries. An expression denotes a set of label
// sequences (words); a node of a graph database is selected by the query if
// some path starting at that node spells a word of the language.
//
// The syntax follows the paper: concatenation "·" (also accepted as "."),
// union "+" (also accepted as "|"), Kleene star "*", plus "⁺" written "^+"
// or the derived form (e e*), optional "?", the empty word "eps" and the
// empty language "empty". Labels are identifiers such as tram or bus.
package regex

import (
	"fmt"
	"sort"
	"strings"
)

// Kind discriminates AST nodes.
type Kind int

// AST node kinds.
const (
	KindEmpty  Kind = iota // ∅ — the empty language
	KindEps                // ε — the empty word
	KindLabel              // a single edge label
	KindConcat             // r1 · r2 · ... · rn
	KindUnion              // r1 + r2 + ... + rn
	KindStar               // r*
	KindPlus               // r⁺ (one or more)
	KindOpt                // r? (zero or one)
)

// Expr is a regular expression AST node. Expressions are immutable after
// construction; all combinators return fresh nodes.
type Expr struct {
	Kind  Kind
	Label string  // for KindLabel
	Subs  []*Expr // for KindConcat / KindUnion
	Sub   *Expr   // for KindStar / KindPlus / KindOpt
}

// Empty returns the empty-language expression.
func Empty() *Expr { return &Expr{Kind: KindEmpty} }

// Eps returns the empty-word expression.
func Eps() *Expr { return &Expr{Kind: KindEps} }

// Sym returns a single-label expression.
func Sym(label string) *Expr { return &Expr{Kind: KindLabel, Label: label} }

// Concat returns the concatenation of the given expressions, flattening
// nested concatenations and simplifying ε and ∅ units.
func Concat(subs ...*Expr) *Expr {
	var flat []*Expr
	for _, s := range subs {
		if s == nil {
			continue
		}
		switch s.Kind {
		case KindEmpty:
			return Empty()
		case KindEps:
			continue
		case KindConcat:
			flat = append(flat, s.Subs...)
		default:
			flat = append(flat, s)
		}
	}
	switch len(flat) {
	case 0:
		return Eps()
	case 1:
		return flat[0]
	}
	return &Expr{Kind: KindConcat, Subs: flat}
}

// Union returns the union of the given expressions, flattening nested
// unions, dropping ∅ members and deduplicating syntactically equal members.
func Union(subs ...*Expr) *Expr {
	var flat []*Expr
	for _, s := range subs {
		if s == nil {
			continue
		}
		switch s.Kind {
		case KindEmpty:
			continue
		case KindUnion:
			flat = append(flat, s.Subs...)
		default:
			flat = append(flat, s)
		}
	}
	// Deduplicate by canonical string.
	seen := make(map[string]bool)
	var dedup []*Expr
	for _, s := range flat {
		key := s.String()
		if !seen[key] {
			seen[key] = true
			dedup = append(dedup, s)
		}
	}
	switch len(dedup) {
	case 0:
		return Empty()
	case 1:
		return dedup[0]
	}
	// Keep a canonical order so that syntactically equal unions print
	// identically regardless of construction order.
	sort.Slice(dedup, func(i, j int) bool { return dedup[i].String() < dedup[j].String() })
	return &Expr{Kind: KindUnion, Subs: dedup}
}

// Star returns the Kleene closure of the expression.
func Star(sub *Expr) *Expr {
	if sub == nil {
		return Eps()
	}
	switch sub.Kind {
	case KindEmpty, KindEps:
		return Eps()
	case KindStar:
		return sub
	case KindPlus, KindOpt:
		return Star(sub.Sub)
	}
	return &Expr{Kind: KindStar, Sub: sub}
}

// Plus returns the one-or-more closure of the expression.
func Plus(sub *Expr) *Expr {
	if sub == nil {
		return Empty()
	}
	switch sub.Kind {
	case KindEmpty:
		return Empty()
	case KindEps:
		return Eps()
	case KindStar, KindPlus:
		return sub
	}
	return &Expr{Kind: KindPlus, Sub: sub}
}

// Opt returns the zero-or-one closure of the expression.
func Opt(sub *Expr) *Expr {
	if sub == nil {
		return Eps()
	}
	switch sub.Kind {
	case KindEmpty, KindEps:
		return Eps()
	case KindStar, KindOpt:
		return sub
	case KindPlus:
		return Star(sub.Sub)
	}
	return &Expr{Kind: KindOpt, Sub: sub}
}

// Word returns the concatenation of single labels, i.e. the expression
// denoting exactly the given word.
func Word(labels ...string) *Expr {
	subs := make([]*Expr, len(labels))
	for i, l := range labels {
		subs[i] = Sym(l)
	}
	return Concat(subs...)
}

// Nullable reports whether the language contains the empty word.
func (e *Expr) Nullable() bool {
	switch e.Kind {
	case KindEps, KindStar, KindOpt:
		return true
	case KindEmpty, KindLabel:
		return false
	case KindConcat:
		for _, s := range e.Subs {
			if !s.Nullable() {
				return false
			}
		}
		return true
	case KindUnion:
		for _, s := range e.Subs {
			if s.Nullable() {
				return true
			}
		}
		return false
	case KindPlus:
		return e.Sub.Nullable()
	}
	return false
}

// IsEmptyLanguage reports whether the language is empty (contains no word).
func (e *Expr) IsEmptyLanguage() bool {
	switch e.Kind {
	case KindEmpty:
		return true
	case KindEps, KindLabel, KindStar, KindOpt:
		return false
	case KindConcat:
		for _, s := range e.Subs {
			if s.IsEmptyLanguage() {
				return true
			}
		}
		return false
	case KindUnion:
		for _, s := range e.Subs {
			if !s.IsEmptyLanguage() {
				return false
			}
		}
		return true
	case KindPlus:
		return e.Sub.IsEmptyLanguage()
	}
	return true
}

// Labels returns the sorted set of labels mentioned in the expression.
func (e *Expr) Labels() []string {
	set := make(map[string]bool)
	e.collectLabels(set)
	out := make([]string, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

func (e *Expr) collectLabels(set map[string]bool) {
	switch e.Kind {
	case KindLabel:
		set[e.Label] = true
	case KindConcat, KindUnion:
		for _, s := range e.Subs {
			s.collectLabels(set)
		}
	case KindStar, KindPlus, KindOpt:
		e.Sub.collectLabels(set)
	}
}

// Size returns the number of AST nodes, a rough complexity measure used by
// the experiments (query size).
func (e *Expr) Size() int {
	switch e.Kind {
	case KindEmpty, KindEps, KindLabel:
		return 1
	case KindConcat, KindUnion:
		n := 1
		for _, s := range e.Subs {
			n += s.Size()
		}
		return n
	case KindStar, KindPlus, KindOpt:
		return 1 + e.Sub.Size()
	}
	return 1
}

// String renders the expression using the paper's syntax: union as "+",
// concatenation as ".", closure operators postfix.
func (e *Expr) String() string {
	if e == nil {
		return "empty"
	}
	switch e.Kind {
	case KindEmpty:
		return "empty"
	case KindEps:
		return "eps"
	case KindLabel:
		return e.Label
	case KindConcat:
		parts := make([]string, len(e.Subs))
		for i, s := range e.Subs {
			parts[i] = s.stringIn(KindConcat)
		}
		return strings.Join(parts, ".")
	case KindUnion:
		parts := make([]string, len(e.Subs))
		for i, s := range e.Subs {
			parts[i] = s.stringIn(KindUnion)
		}
		return strings.Join(parts, "+")
	case KindStar:
		return e.Sub.stringIn(KindStar) + "*"
	case KindPlus:
		return e.Sub.stringIn(KindPlus) + "^+"
	case KindOpt:
		return e.Sub.stringIn(KindOpt) + "?"
	}
	return fmt.Sprintf("<bad kind %d>", e.Kind)
}

// stringIn renders the expression as a sub-expression of a parent with the
// given kind, adding parentheses when required by precedence
// (closures > concatenation > union).
func (e *Expr) stringIn(parent Kind) string {
	s := e.String()
	switch parent {
	case KindUnion:
		return s
	case KindConcat:
		if e.Kind == KindUnion {
			return "(" + s + ")"
		}
		return s
	case KindStar, KindPlus, KindOpt:
		if e.Kind == KindUnion || e.Kind == KindConcat {
			return "(" + s + ")"
		}
		return s
	}
	return s
}

// Equal reports syntactic equality after canonical printing. Language
// equivalence is provided by the automaton package.
func (e *Expr) Equal(other *Expr) bool {
	if e == nil || other == nil {
		return e == other
	}
	return e.String() == other.String()
}

// Clone returns a deep copy of the expression.
func (e *Expr) Clone() *Expr {
	if e == nil {
		return nil
	}
	c := &Expr{Kind: e.Kind, Label: e.Label}
	if e.Sub != nil {
		c.Sub = e.Sub.Clone()
	}
	if len(e.Subs) > 0 {
		c.Subs = make([]*Expr, len(e.Subs))
		for i, s := range e.Subs {
			c.Subs[i] = s.Clone()
		}
	}
	return c
}
