package regex

import (
	"fmt"
	"unicode"
	"unicode/utf8"
)

// Parse parses an expression in the paper's syntax. Accepted operators:
//
//	union:          +  or  |
//	concatenation:  .  or  ·  (or juxtaposition separated by whitespace)
//	Kleene star:    *
//	plus closure:   ^+
//	optional:       ?
//	grouping:       ( )
//	empty word:     eps or ε
//	empty language: empty or ∅
//
// Labels are identifiers made of letters, digits, '_' and '-'.
func Parse(input string) (*Expr, error) {
	p := &parser{input: input}
	p.lex()
	if p.err != nil {
		return nil, p.err
	}
	e := p.parseUnion()
	if p.err != nil {
		return nil, p.err
	}
	if p.pos != len(p.tokens) {
		return nil, fmt.Errorf("regex: unexpected token %q at end of %q", p.tokens[p.pos].text, input)
	}
	return e, nil
}

// MustParse parses an expression and panics on error. Intended for
// compile-time constant queries in tests and dataset builders.
func MustParse(input string) *Expr {
	e, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return e
}

type tokenKind int

const (
	tokLabel tokenKind = iota
	tokUnion
	tokConcat
	tokStar
	tokPlusClosure
	tokOpt
	tokLParen
	tokRParen
	tokEps
	tokEmpty
)

type token struct {
	kind tokenKind
	text string
}

type parser struct {
	input  string
	tokens []token
	pos    int
	err    error
}

func (p *parser) lex() {
	s := p.input
	i := 0
	for i < len(s) {
		r, width := utf8.DecodeRuneInString(s[i:])
		switch {
		case unicode.IsSpace(r):
			i += width
		case r == '+':
			p.tokens = append(p.tokens, token{tokUnion, "+"})
			i += width
		case r == '|':
			p.tokens = append(p.tokens, token{tokUnion, "|"})
			i += width
		case r == '.', r == '·':
			p.tokens = append(p.tokens, token{tokConcat, string(r)})
			i += width
		case r == '*':
			p.tokens = append(p.tokens, token{tokStar, "*"})
			i += width
		case r == '^':
			if i+1 < len(s) && s[i+1] == '+' {
				p.tokens = append(p.tokens, token{tokPlusClosure, "^+"})
				i += 2
			} else {
				p.err = fmt.Errorf("regex: stray '^' at position %d in %q", i, s)
				return
			}
		case r == '?':
			p.tokens = append(p.tokens, token{tokOpt, "?"})
			i += width
		case r == '(':
			p.tokens = append(p.tokens, token{tokLParen, "("})
			i += width
		case r == ')':
			p.tokens = append(p.tokens, token{tokRParen, ")"})
			i += width
		case r == 'ε':
			p.tokens = append(p.tokens, token{tokEps, "ε"})
			i += width
		case r == '∅':
			p.tokens = append(p.tokens, token{tokEmpty, "∅"})
			i += width
		case isLabelRune(r):
			j := i
			for j < len(s) {
				rr, w := utf8.DecodeRuneInString(s[j:])
				if !isLabelRune(rr) || rr == 'ε' || rr == '∅' {
					break
				}
				j += w
			}
			word := s[i:j]
			switch word {
			case "eps":
				p.tokens = append(p.tokens, token{tokEps, word})
			case "empty":
				p.tokens = append(p.tokens, token{tokEmpty, word})
			default:
				p.tokens = append(p.tokens, token{tokLabel, word})
			}
			i = j
		default:
			p.err = fmt.Errorf("regex: unexpected character %q at position %d in %q", r, i, s)
			return
		}
	}
	if len(p.tokens) == 0 {
		p.err = fmt.Errorf("regex: empty expression")
	}
}

func isLabelRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-'
}

func (p *parser) peek() (token, bool) {
	if p.pos < len(p.tokens) {
		return p.tokens[p.pos], true
	}
	return token{}, false
}

// parseUnion := parseConcat ('+' parseConcat)*
func (p *parser) parseUnion() *Expr {
	first := p.parseConcat()
	if p.err != nil {
		return nil
	}
	subs := []*Expr{first}
	for {
		tok, ok := p.peek()
		if !ok || tok.kind != tokUnion {
			break
		}
		p.pos++
		next := p.parseConcat()
		if p.err != nil {
			return nil
		}
		subs = append(subs, next)
	}
	return Union(subs...)
}

// parseConcat := parseClosure (['.'] parseClosure)*
func (p *parser) parseConcat() *Expr {
	first := p.parseClosure()
	if p.err != nil {
		return nil
	}
	subs := []*Expr{first}
	for {
		tok, ok := p.peek()
		if !ok {
			break
		}
		switch tok.kind {
		case tokConcat:
			p.pos++
			next := p.parseClosure()
			if p.err != nil {
				return nil
			}
			subs = append(subs, next)
		case tokLabel, tokLParen, tokEps, tokEmpty:
			// Juxtaposition (implicit concatenation).
			next := p.parseClosure()
			if p.err != nil {
				return nil
			}
			subs = append(subs, next)
		default:
			return Concat(subs...)
		}
	}
	return Concat(subs...)
}

// parseClosure := parseAtom ('*' | '^+' | '?')*
func (p *parser) parseClosure() *Expr {
	e := p.parseAtom()
	if p.err != nil {
		return nil
	}
	for {
		tok, ok := p.peek()
		if !ok {
			return e
		}
		switch tok.kind {
		case tokStar:
			p.pos++
			e = Star(e)
		case tokPlusClosure:
			p.pos++
			e = Plus(e)
		case tokOpt:
			p.pos++
			e = Opt(e)
		default:
			return e
		}
	}
}

// parseAtom := label | 'eps' | 'empty' | '(' parseUnion ')'
func (p *parser) parseAtom() *Expr {
	tok, ok := p.peek()
	if !ok {
		p.err = fmt.Errorf("regex: unexpected end of expression %q", p.input)
		return nil
	}
	switch tok.kind {
	case tokLabel:
		p.pos++
		return Sym(tok.text)
	case tokEps:
		p.pos++
		return Eps()
	case tokEmpty:
		p.pos++
		return Empty()
	case tokLParen:
		p.pos++
		e := p.parseUnion()
		if p.err != nil {
			return nil
		}
		tok, ok := p.peek()
		if !ok || tok.kind != tokRParen {
			p.err = fmt.Errorf("regex: missing ')' in %q", p.input)
			return nil
		}
		p.pos++
		return e
	default:
		p.err = fmt.Errorf("regex: unexpected token %q in %q", tok.text, p.input)
		return nil
	}
}
