package regex

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseAndPrintGoalQuery(t *testing.T) {
	// The paper's running query: (tram+bus)*.cinema
	e, err := Parse("(tram+bus)*.cinema")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if e.String() != "(bus+tram)*.cinema" && e.String() != "(tram+bus)*.cinema" {
		t.Fatalf("String = %q", e.String())
	}
	if e.Kind != KindConcat {
		t.Fatalf("top kind = %v", e.Kind)
	}
}

func TestParseOperatorsAndAliases(t *testing.T) {
	cases := []struct {
		in, out string
	}{
		{"a", "a"},
		{"a.b", "a.b"},
		{"a·b", "a.b"},
		{"a b", "a.b"},
		{"a+b", "a+b"},
		{"a|b", "a+b"},
		{"a*", "a*"},
		{"a^+", "a^+"},
		{"a?", "a?"},
		{"eps", "eps"},
		{"ε", "eps"},
		{"empty", "empty"},
		{"∅", "empty"},
		{"(a+b).c", "(a+b).c"},
		{"a+b.c", "a+b.c"},
		{"(a.b)*", "(a.b)*"},
		{"a**", "a*"},
		{"(a*)?", "a*"},
		{"(a?)*", "a*"},
		{"(a^+)*", "a*"},
		{"a+empty", "a"},
		{"a.eps", "a"},
		{"a.empty", "empty"},
		{"eps*", "eps"},
		{"empty*", "eps"},
		{"a+a", "a"},
		{"b+a", "a+b"},
	}
	for _, c := range cases {
		e, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if e.String() != c.out {
			t.Errorf("Parse(%q).String() = %q, want %q", c.in, e.String(), c.out)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"", "   ", "(", "a+(b", "a)", "*a", "+a", "a +", "a^", "a^b", "a $ b", "()",
	}
	for _, c := range cases {
		if _, err := Parse(c); err == nil {
			t.Errorf("Parse(%q) should fail", c)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse should panic on invalid input")
		}
	}()
	MustParse("((")
}

func TestParseRoundTrip(t *testing.T) {
	inputs := []string{
		"(tram+bus)*.cinema",
		"a.b.c+d*",
		"(a+b.c)^+.d?",
		"((a+b)*.c)+eps",
	}
	for _, in := range inputs {
		e := MustParse(in)
		back := MustParse(e.String())
		if !e.Equal(back) {
			t.Errorf("round trip of %q: %q != %q", in, e.String(), back.String())
		}
	}
}

func TestNullable(t *testing.T) {
	cases := []struct {
		in   string
		want bool
	}{
		{"eps", true},
		{"empty", false},
		{"a", false},
		{"a*", true},
		{"a?", true},
		{"a^+", false},
		{"a.b", false},
		{"a*.b*", true},
		{"a+b*", true},
		{"a+b", false},
		{"(a.b)*", true},
	}
	for _, c := range cases {
		if got := MustParse(c.in).Nullable(); got != c.want {
			t.Errorf("Nullable(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestIsEmptyLanguage(t *testing.T) {
	if !Empty().IsEmptyLanguage() {
		t.Fatal("Empty should be empty language")
	}
	if Eps().IsEmptyLanguage() {
		t.Fatal("Eps is not the empty language")
	}
	if Concat(Sym("a"), Empty()).Kind != KindEmpty {
		t.Fatal("concat with empty should simplify to empty")
	}
	// Without simplification the raw node must still report emptiness.
	raw := &Expr{Kind: KindConcat, Subs: []*Expr{Sym("a"), Empty()}}
	if !raw.IsEmptyLanguage() {
		t.Fatal("raw concat with empty member should be empty")
	}
	rawUnion := &Expr{Kind: KindUnion, Subs: []*Expr{Empty(), Empty()}}
	if !rawUnion.IsEmptyLanguage() {
		t.Fatal("union of empties should be empty")
	}
	rawPlus := &Expr{Kind: KindPlus, Sub: Empty()}
	if !rawPlus.IsEmptyLanguage() {
		t.Fatal("plus of empty should be empty")
	}
}

func TestLabelsAndSize(t *testing.T) {
	e := MustParse("(tram+bus)*.cinema")
	if got := e.Labels(); !reflect.DeepEqual(got, []string{"bus", "cinema", "tram"}) {
		t.Fatalf("Labels = %v", got)
	}
	if e.Size() < 5 {
		t.Fatalf("Size = %d, expected at least 5", e.Size())
	}
	if Sym("a").Size() != 1 || Eps().Size() != 1 {
		t.Fatal("leaf sizes should be 1")
	}
}

func TestWordConstructor(t *testing.T) {
	e := Word("bus", "tram", "cinema")
	if e.String() != "bus.tram.cinema" {
		t.Fatalf("Word = %q", e.String())
	}
	if Word().Kind != KindEps {
		t.Fatal("empty Word should be eps")
	}
}

func TestMatchesGoalQuery(t *testing.T) {
	q := MustParse("(tram+bus)*.cinema")
	accept := [][]string{
		{"cinema"},
		{"tram", "cinema"},
		{"bus", "tram", "cinema"},
		{"bus", "bus", "bus", "cinema"},
	}
	reject := [][]string{
		{},
		{"tram"},
		{"cinema", "cinema"},
		{"restaurant"},
		{"tram", "restaurant", "cinema"},
	}
	for _, w := range accept {
		if !q.Matches(w) {
			t.Errorf("should accept %v", w)
		}
	}
	for _, w := range reject {
		if q.Matches(w) {
			t.Errorf("should reject %v", w)
		}
	}
}

func TestMatchesClosures(t *testing.T) {
	cases := []struct {
		expr string
		word []string
		want bool
	}{
		{"a^+", []string{}, false},
		{"a^+", []string{"a"}, true},
		{"a^+", []string{"a", "a", "a"}, true},
		{"a?", []string{}, true},
		{"a?", []string{"a"}, true},
		{"a?", []string{"a", "a"}, false},
		{"eps", []string{}, true},
		{"eps", []string{"a"}, false},
		{"empty", []string{}, false},
		{"(a.b)*", []string{"a", "b", "a", "b"}, true},
		{"(a.b)*", []string{"a", "b", "a"}, false},
		{"a.b+c", []string{"c"}, true},
		{"a.(b+c)", []string{"a", "c"}, true},
	}
	for _, c := range cases {
		if got := MustParse(c.expr).Matches(c.word); got != c.want {
			t.Errorf("Matches(%q, %v) = %v, want %v", c.expr, c.word, got, c.want)
		}
	}
}

func TestMatchesPrefix(t *testing.T) {
	q := MustParse("(tram+bus)*.cinema")
	if !q.MatchesPrefix([]string{"bus", "bus"}) {
		t.Fatal("bus.bus is a prefix of a word in L(q)")
	}
	if !q.MatchesPrefix([]string{"cinema"}) {
		t.Fatal("cinema itself is a word hence a prefix")
	}
	if q.MatchesPrefix([]string{"restaurant"}) {
		t.Fatal("restaurant is not a prefix of any word in L(q)")
	}
	if q.MatchesPrefix([]string{"cinema", "bus"}) {
		t.Fatal("nothing follows cinema in L(q)")
	}
}

func TestCloneDeep(t *testing.T) {
	e := MustParse("(a+b)*.c?")
	c := e.Clone()
	if !e.Equal(c) {
		t.Fatal("clone should be equal")
	}
	c.Subs[0].Sub.Subs[0].Label = "z"
	if e.Equal(c) {
		t.Fatal("mutating clone should not affect original")
	}
}

func TestEqualNil(t *testing.T) {
	var e *Expr
	if !e.Equal(nil) {
		t.Fatal("nil equals nil")
	}
	if e.Equal(Sym("a")) || Sym("a").Equal(nil) {
		t.Fatal("nil does not equal non-nil")
	}
	if e.String() != "empty" {
		t.Fatal("nil String should be empty")
	}
}

func TestSmartConstructorsEdgeCases(t *testing.T) {
	if Concat().Kind != KindEps {
		t.Fatal("empty concat = eps")
	}
	if Union().Kind != KindEmpty {
		t.Fatal("empty union = empty")
	}
	if Star(nil).Kind != KindEps || Opt(nil).Kind != KindEps {
		t.Fatal("closure of nil should be eps")
	}
	if Plus(nil).Kind != KindEmpty {
		t.Fatal("plus of nil should be empty")
	}
	if Concat(nil, Sym("a"), nil).String() != "a" {
		t.Fatal("nil members should be skipped")
	}
	if Union(Sym("a"), nil, Empty()).String() != "a" {
		t.Fatal("nil and empty union members should be skipped")
	}
	if Plus(Star(Sym("a"))).String() != "a*" {
		t.Fatal("plus of star is star")
	}
	if Opt(Plus(Sym("a"))).String() != "a*" {
		t.Fatal("opt of plus is star")
	}
}

// randomExpr builds a random expression of bounded depth over a small
// alphabet for property tests.
func randomExpr(r *rand.Rand, depth int) *Expr {
	labels := []string{"a", "b", "c"}
	if depth <= 0 {
		switch r.Intn(4) {
		case 0:
			return Eps()
		default:
			return Sym(labels[r.Intn(len(labels))])
		}
	}
	switch r.Intn(6) {
	case 0:
		return Concat(randomExpr(r, depth-1), randomExpr(r, depth-1))
	case 1:
		return Union(randomExpr(r, depth-1), randomExpr(r, depth-1))
	case 2:
		return Star(randomExpr(r, depth-1))
	case 3:
		return Plus(randomExpr(r, depth-1))
	case 4:
		return Opt(randomExpr(r, depth-1))
	default:
		return Sym(labels[r.Intn(len(labels))])
	}
}

func randomWord(r *rand.Rand, maxLen int) []string {
	labels := []string{"a", "b", "c"}
	n := r.Intn(maxLen + 1)
	w := make([]string, n)
	for i := range w {
		w[i] = labels[r.Intn(len(labels))]
	}
	return w
}

func TestPropertyParsePrintRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := randomExpr(r, 4)
		back, err := Parse(e.String())
		if err != nil {
			return false
		}
		return e.Equal(back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDerivativeConsistentWithNullable(t *testing.T) {
	// w ∈ L(e) iff the derivative of e by w is nullable; check that the
	// match result is stable under re-parsing the printed expression.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := randomExpr(r, 4)
		w := randomWord(r, 5)
		reparsed := MustParse(e.String())
		return e.Matches(w) == reparsed.Matches(w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyUnionIsOr(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomExpr(r, 3), randomExpr(r, 3)
		w := randomWord(r, 4)
		return Union(a, b).Matches(w) == (a.Matches(w) || b.Matches(w))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyStarAbsorbsRepetition(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomExpr(r, 2)
		w := randomWord(r, 3)
		star := Star(a)
		// If w in L(a*) then ww in L(a*).
		if star.Matches(w) {
			ww := append(append([]string{}, w...), w...)
			return star.Matches(ww)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyConcatSplits(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomExpr(r, 2), randomExpr(r, 2)
		wa, wb := randomWord(r, 3), randomWord(r, 3)
		if a.Matches(wa) && b.Matches(wb) {
			return Concat(a, b).Matches(append(append([]string{}, wa...), wb...))
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStringPrecedence(t *testing.T) {
	// (a+b).c must keep its parentheses; a.b+c must not gain them.
	if got := MustParse("(a+b).c").String(); got != "(a+b).c" {
		t.Fatalf("got %q", got)
	}
	if got := MustParse("a.b+c").String(); strings.Contains(got, "(") {
		t.Fatalf("got %q, expected no parentheses", got)
	}
	if got := MustParse("(a.b)*").String(); got != "(a.b)*" {
		t.Fatalf("got %q", got)
	}
}
