package dataset

import (
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/regex"
	"repro/internal/rpq"
)

func TestFigure1MatchesPaperStatements(t *testing.T) {
	g := Figure1()
	if g.NumNodes() != 10 {
		t.Fatalf("Figure 1 has 10 nodes (N1-N6, C1, C2, R1, R2), got %d", g.NumNodes())
	}
	q := Figure1GoalQuery()
	selected := rpq.Evaluate(g, q)
	want := []graph.NodeID{"N1", "N2", "N4", "N6"}
	if !reflect.DeepEqual(selected, want) {
		t.Fatalf("goal query selects %v, paper says %v", selected, want)
	}
	// Witness paths quoted in the paper.
	e := rpq.New(g, q)
	for node, maxLen := range map[graph.NodeID]int{"N1": 2, "N2": 3, "N4": 1, "N6": 1} {
		w, ok := e.Witness(node)
		if !ok {
			t.Fatalf("no witness for %s", node)
		}
		if len(w) > maxLen {
			t.Errorf("witness for %s longer than the paper's (%d > %d)", node, len(w), maxLen)
		}
	}
	// Section 3: query "bus" selects N2 and N6 but not N5.
	bus := rpq.New(g, regex.MustParse("bus"))
	if !bus.Selects("N2") || !bus.Selects("N6") || bus.Selects("N5") {
		t.Fatal("bus query selection contradicts the paper")
	}
	// Figure 3(c): N2 has the path bus.bus.cinema.
	if !hasWord(g, "N2", []string{"bus", "bus", "cinema"}) {
		t.Fatal("N2 should have the path bus.bus.cinema")
	}
	// Kinds are attached.
	if v, ok := g.Attr("C1", "kind"); !ok || v != "cinema" {
		t.Fatal("C1 kind attribute missing")
	}
	// Examples are as stated.
	pos, neg := Figure1Examples()
	if len(pos) != 2 || len(neg) != 1 || neg[0] != "N5" {
		t.Fatalf("examples wrong: %v %v", pos, neg)
	}
}

func hasWord(g *graph.Graph, start graph.NodeID, word []string) bool {
	current := map[graph.NodeID]bool{start: true}
	for _, label := range word {
		next := make(map[graph.NodeID]bool)
		for n := range current {
			for _, e := range g.Out(n) {
				if string(e.Label) == label {
					next[e.To] = true
				}
			}
		}
		if len(next) == 0 {
			return false
		}
		current = next
	}
	return true
}

func TestTransportGenerator(t *testing.T) {
	g := Transport(TransportOptions{Rows: 5, Cols: 5, Seed: 7})
	if g.NumNodes() < 25 {
		t.Fatalf("expected at least 25 neighbourhood nodes, got %d", g.NumNodes())
	}
	if g.NumEdges() == 0 {
		t.Fatal("transport graph should have edges")
	}
	labels := g.Alphabet()
	hasTram, hasBus := false, false
	for _, l := range labels {
		if l == "tram" {
			hasTram = true
		}
		if l == "bus" {
			hasBus = true
		}
	}
	if !hasTram || !hasBus {
		t.Fatalf("transport graph must use tram and bus labels, got %v", labels)
	}
	// Determinism: same seed, same graph.
	g2 := Transport(TransportOptions{Rows: 5, Cols: 5, Seed: 7})
	if !g.Equal(g2) {
		t.Fatal("same seed must produce the same graph")
	}
	g3 := Transport(TransportOptions{Rows: 5, Cols: 5, Seed: 8})
	if g.Equal(g3) {
		t.Fatal("different seeds should produce different graphs")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTransportDefaults(t *testing.T) {
	g := Transport(TransportOptions{})
	if g.NumNodes() < 16 {
		t.Fatalf("default 4x4 grid expected, got %d nodes", g.NumNodes())
	}
}

func TestRandomGenerator(t *testing.T) {
	g := Random(RandomOptions{Nodes: 200, AvgDegree: 4, Seed: 3})
	if g.NumNodes() != 200 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	// Average degree approached (duplicates are dropped, so <=).
	if g.NumEdges() == 0 || g.NumEdges() > 800 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	if !g.Equal(Random(RandomOptions{Nodes: 200, AvgDegree: 4, Seed: 3})) {
		t.Fatal("same seed must produce the same graph")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := Random(RandomOptions{}).NumNodes(); got != 100 {
		t.Fatalf("default nodes = %d", got)
	}
}

func TestScaleFreeGenerator(t *testing.T) {
	g := ScaleFree(ScaleFreeOptions{Nodes: 300, EdgesPerNode: 2, Seed: 11})
	if g.NumNodes() != 300 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	stats := g.ComputeStats()
	// Preferential attachment must produce hubs: the max in-degree should
	// be well above the average degree.
	if stats.MaxInDegree < 5 {
		t.Fatalf("expected hub nodes, max in-degree = %d", stats.MaxInDegree)
	}
	if !g.Equal(ScaleFree(ScaleFreeOptions{Nodes: 300, EdgesPerNode: 2, Seed: 11})) {
		t.Fatal("same seed must produce the same graph")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGoalQueries(t *testing.T) {
	qs := GoalQueries([]string{"tram", "bus", "cinema", "restaurant"})
	if len(qs) < 5 {
		t.Fatalf("expected at least 5 goal queries, got %d", len(qs))
	}
	// Sizes must be non-decreasing overall (workload of increasing
	// complexity).
	if qs[0].Size() >= qs[len(qs)-1].Size() {
		t.Fatal("workload should grow in query size")
	}
	for _, q := range qs {
		if q.IsEmptyLanguage() {
			t.Fatalf("goal query %q denotes the empty language", q)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("GoalQueries with a tiny alphabet should panic")
		}
	}()
	GoalQueries([]string{"a"})
}
