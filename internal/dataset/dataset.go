// Package dataset builds the graph databases used by the examples,
// experiments and benchmarks: the paper's Figure 1 geographical graph, a
// synthetic transport-network generator in the spirit of the Transpole
// dataset the demo used, and random/scale-free labelled graphs standing in
// for the biological and synthetic datasets of the companion research
// paper (see the substitution table in DESIGN.md).
package dataset

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/regex"
)

// Figure1 returns the geographical graph of Figure 1. The exact edge list
// is not fully recoverable from the paper's text, so this reconstruction is
// chosen to satisfy every statement the paper makes about it:
//
//   - (tram+bus)*.cinema selects exactly the neighbourhoods N1, N2, N4, N6;
//   - the witness paths quoted in Section 2 exist (N1 tram N4 cinema C1,
//     N2 bus N1 tram N4 cinema C1, N4 cinema C1, N6 cinema C2);
//   - N2 also has the length-3 path bus.bus.cinema highlighted in
//     Figure 3(c);
//   - the query "bus" selects N2 and N6 but not N5 (Section 3);
//   - N5 has no path leading to a cinema.
func Figure1() *graph.Graph {
	g := graph.New()
	type e struct{ from, label, to string }
	edges := []e{
		{"N1", "tram", "N4"},
		{"N1", "bus", "N4"},
		{"N2", "bus", "N1"},
		{"N2", "bus", "N3"},
		{"N2", "tram", "N5"},
		{"N3", "bus", "N5"},
		{"N4", "cinema", "C1"},
		{"N4", "bus", "N5"},
		{"N5", "restaurant", "R1"},
		{"N6", "cinema", "C2"},
		{"N6", "restaurant", "R2"},
		{"N6", "bus", "N5"},
		{"N6", "tram", "N3"},
	}
	for _, x := range edges {
		g.MustAddEdge(graph.NodeID(x.from), graph.Label(x.label), graph.NodeID(x.to))
	}
	for i := 1; i <= 6; i++ {
		mustSetAttr(g, graph.NodeID(fmt.Sprintf("N%d", i)), "kind", "neighborhood")
	}
	mustSetAttr(g, "C1", "kind", "cinema")
	mustSetAttr(g, "C2", "kind", "cinema")
	mustSetAttr(g, "R1", "kind", "restaurant")
	mustSetAttr(g, "R2", "kind", "restaurant")
	return g
}

func mustSetAttr(g *graph.Graph, id graph.NodeID, key, value string) {
	if err := g.SetAttr(id, key, value); err != nil {
		panic(err)
	}
}

// Figure1GoalQuery returns the paper's running goal query
// (tram+bus)*.cinema.
func Figure1GoalQuery() *regex.Expr {
	return regex.MustParse("(tram+bus)*.cinema")
}

// Figure1Examples returns the paper's example labels: positives N2 and N6,
// negative N5, together with the validated paths quoted in Section 2.
func Figure1Examples() (positives map[graph.NodeID][]string, negatives []graph.NodeID) {
	positives = map[graph.NodeID][]string{
		"N2": {"bus", "tram", "cinema"},
		"N6": {"cinema"},
	}
	negatives = []graph.NodeID{"N5"}
	return positives, negatives
}

// TransportOptions parameterises the synthetic geographical network
// generator. The generated graph mimics the structure of Figure 1 at
// scale: a grid of neighbourhoods connected by tram and bus lines, each
// neighbourhood optionally hosting facility nodes (cinema, restaurant,
// museum, park) reachable by a facility-labelled edge.
type TransportOptions struct {
	// Rows and Cols shape the neighbourhood grid. Defaults: 4x4.
	Rows, Cols int
	// TramLines and BusLines are how many straight lines of each kind run
	// across the grid. Defaults: Rows tram lines and Cols bus lines.
	TramLines, BusLines int
	// FacilityRate is the probability that a neighbourhood hosts a given
	// facility. Default 0.25.
	FacilityRate float64
	// Facilities lists facility labels. Default cinema, restaurant,
	// museum, park.
	Facilities []string
	// Seed drives all randomness.
	Seed int64
}

func (o TransportOptions) withDefaults() TransportOptions {
	if o.Rows <= 0 {
		o.Rows = 4
	}
	if o.Cols <= 0 {
		o.Cols = 4
	}
	if o.TramLines <= 0 {
		o.TramLines = o.Rows
	}
	if o.BusLines <= 0 {
		o.BusLines = o.Cols
	}
	if o.FacilityRate <= 0 {
		o.FacilityRate = 0.25
	}
	if len(o.Facilities) == 0 {
		o.Facilities = []string{"cinema", "restaurant", "museum", "park"}
	}
	return o
}

// Transport generates a synthetic geographical transport network.
func Transport(opts TransportOptions) *graph.Graph {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	g := graph.New()
	node := func(r, c int) graph.NodeID {
		return graph.NodeID(fmt.Sprintf("N%d_%d", r, c))
	}
	for r := 0; r < opts.Rows; r++ {
		for c := 0; c < opts.Cols; c++ {
			g.MustAddNode(node(r, c))
			mustSetAttr(g, node(r, c), "kind", "neighborhood")
		}
	}
	// Tram lines run along rows, bus lines along columns; both directions
	// with occasional gaps so that not every neighbourhood reaches every
	// facility.
	for r := 0; r < opts.TramLines && r < opts.Rows; r++ {
		for c := 0; c+1 < opts.Cols; c++ {
			if rng.Float64() < 0.85 {
				g.MustAddEdge(node(r, c), "tram", node(r, c+1))
			}
			if rng.Float64() < 0.6 {
				g.MustAddEdge(node(r, c+1), "tram", node(r, c))
			}
		}
	}
	for c := 0; c < opts.BusLines && c < opts.Cols; c++ {
		for r := 0; r+1 < opts.Rows; r++ {
			if rng.Float64() < 0.85 {
				g.MustAddEdge(node(r, c), "bus", node(r+1, c))
			}
			if rng.Float64() < 0.6 {
				g.MustAddEdge(node(r+1, c), "bus", node(r, c))
			}
		}
	}
	// Facilities.
	for r := 0; r < opts.Rows; r++ {
		for c := 0; c < opts.Cols; c++ {
			for _, f := range opts.Facilities {
				if rng.Float64() < opts.FacilityRate {
					id := graph.NodeID(fmt.Sprintf("%s_%d_%d", f, r, c))
					g.MustAddEdge(node(r, c), graph.Label(f), id)
					mustSetAttr(g, id, "kind", f)
				}
			}
		}
	}
	return g
}

// RandomOptions parameterises the uniform random labelled graph generator.
type RandomOptions struct {
	// Nodes is the number of nodes. Default 100.
	Nodes int
	// AvgDegree is the average out-degree. Default 3.
	AvgDegree float64
	// Alphabet lists the edge labels. Default {a, b, c, d}.
	Alphabet []string
	// Seed drives all randomness.
	Seed int64
}

func (o RandomOptions) withDefaults() RandomOptions {
	if o.Nodes <= 0 {
		o.Nodes = 100
	}
	if o.AvgDegree <= 0 {
		o.AvgDegree = 3
	}
	if len(o.Alphabet) == 0 {
		o.Alphabet = []string{"a", "b", "c", "d"}
	}
	return o
}

// Random generates a uniform random labelled graph.
func Random(opts RandomOptions) *graph.Graph {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	g := graph.New()
	ids := make([]graph.NodeID, opts.Nodes)
	for i := range ids {
		ids[i] = graph.NodeID(fmt.Sprintf("v%d", i))
		g.MustAddNode(ids[i])
	}
	edges := int(float64(opts.Nodes) * opts.AvgDegree)
	for i := 0; i < edges; i++ {
		from := ids[rng.Intn(len(ids))]
		to := ids[rng.Intn(len(ids))]
		label := graph.Label(opts.Alphabet[rng.Intn(len(opts.Alphabet))])
		g.MustAddEdge(from, label, to)
	}
	return g
}

// ScaleFreeOptions parameterises the preferential-attachment generator that
// stands in for the biological networks of the companion paper.
type ScaleFreeOptions struct {
	// Nodes is the number of nodes. Default 100.
	Nodes int
	// EdgesPerNode is how many edges each new node attaches. Default 2.
	EdgesPerNode int
	// Alphabet lists the edge labels. Default {interacts, regulates,
	// binds, inhibits}.
	Alphabet []string
	// Seed drives all randomness.
	Seed int64
}

func (o ScaleFreeOptions) withDefaults() ScaleFreeOptions {
	if o.Nodes <= 0 {
		o.Nodes = 100
	}
	if o.EdgesPerNode <= 0 {
		o.EdgesPerNode = 2
	}
	if len(o.Alphabet) == 0 {
		o.Alphabet = []string{"interacts", "regulates", "binds", "inhibits"}
	}
	return o
}

// ScaleFree generates a labelled graph by preferential attachment
// (Barabási–Albert style), producing the heavy-tailed degree distribution
// typical of protein-interaction networks.
func ScaleFree(opts ScaleFreeOptions) *graph.Graph {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	g := graph.New()
	id := func(i int) graph.NodeID { return graph.NodeID(fmt.Sprintf("p%d", i)) }
	// Repeated-targets list implements preferential attachment.
	var targets []graph.NodeID
	g.MustAddNode(id(0))
	targets = append(targets, id(0))
	for i := 1; i < opts.Nodes; i++ {
		g.MustAddNode(id(i))
		for k := 0; k < opts.EdgesPerNode; k++ {
			to := targets[rng.Intn(len(targets))]
			label := graph.Label(opts.Alphabet[rng.Intn(len(opts.Alphabet))])
			g.MustAddEdge(id(i), label, to)
			// Occasionally add a back edge to create cycles, as in real
			// interaction networks.
			if rng.Float64() < 0.3 {
				g.MustAddEdge(to, graph.Label(opts.Alphabet[rng.Intn(len(opts.Alphabet))]), id(i))
			}
			targets = append(targets, to, id(i))
		}
	}
	return g
}

// GoalQueries returns a workload of goal queries of increasing size over
// the given alphabet, mirroring the query classes of the companion paper:
// a single label, a concatenation, a disjunction under a star followed by a
// label, and longer combinations.
func GoalQueries(alphabet []string) []*regex.Expr {
	if len(alphabet) < 3 {
		panic("dataset: GoalQueries needs at least 3 labels")
	}
	a, b, c := alphabet[0], alphabet[1], alphabet[2]
	d := c
	if len(alphabet) > 3 {
		d = alphabet[3]
	}
	return []*regex.Expr{
		regex.Sym(a),                                         // size 1
		regex.Concat(regex.Sym(a), regex.Sym(b)),             // size 2
		regex.Concat(regex.Star(regex.Sym(a)), regex.Sym(b)), // a*.b
		regex.Concat(regex.Star(regex.Union(regex.Sym(a), regex.Sym(b))), regex.Sym(c)),                          // (a+b)*.c
		regex.Union(regex.Concat(regex.Sym(a), regex.Sym(c)), regex.Concat(regex.Sym(b), regex.Sym(d))),          // a.c + b.d
		regex.Concat(regex.Star(regex.Union(regex.Sym(a), regex.Sym(b))), regex.Sym(c), regex.Opt(regex.Sym(d))), // (a+b)*.c.d?
	}
}
