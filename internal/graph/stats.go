package graph

import (
	"fmt"
	"sort"
	"strings"
)

// Stats summarises a graph. It backs the dataset tables in EXPERIMENTS.md
// and the `gps stats` subcommand.
type Stats struct {
	Nodes        int
	Edges        int
	Labels       int
	AvgOutDegree float64
	MaxOutDegree int
	MaxInDegree  int
	// LabelHistogram maps each label to its edge count.
	LabelHistogram map[Label]int
	// Sinks counts nodes with no outgoing edges.
	Sinks int
	// Sources counts nodes with no incoming edges.
	Sources int
}

// ComputeStats computes summary statistics for the graph.
func (g *Graph) ComputeStats() Stats {
	s := Stats{
		Nodes:          g.NumNodes(),
		Edges:          g.NumEdges(),
		Labels:         len(g.labels),
		LabelHistogram: make(map[Label]int, len(g.labels)),
	}
	for l, c := range g.labels {
		s.LabelHistogram[l] = c
	}
	for id := range g.nodes {
		od, ind := g.OutDegree(id), g.InDegree(id)
		if od > s.MaxOutDegree {
			s.MaxOutDegree = od
		}
		if ind > s.MaxInDegree {
			s.MaxInDegree = ind
		}
		if od == 0 {
			s.Sinks++
		}
		if ind == 0 {
			s.Sources++
		}
	}
	if s.Nodes > 0 {
		s.AvgOutDegree = float64(s.Edges) / float64(s.Nodes)
	}
	return s
}

// String renders the statistics as a small human-readable block.
func (s Stats) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "nodes=%d edges=%d labels=%d avg_out_degree=%.2f max_out=%d max_in=%d sinks=%d sources=%d\n",
		s.Nodes, s.Edges, s.Labels, s.AvgOutDegree, s.MaxOutDegree, s.MaxInDegree, s.Sinks, s.Sources)
	labels := make([]Label, 0, len(s.LabelHistogram))
	for l := range s.LabelHistogram {
		labels = append(labels, l)
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i] < labels[j] })
	for _, l := range labels {
		fmt.Fprintf(&sb, "  label %-12s %d\n", l, s.LabelHistogram[l])
	}
	return sb.String()
}
