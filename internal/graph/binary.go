package graph

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Binary graph codec. The on-disk form is the dense Indexed view itself —
// interned node and label string tables followed by the out-adjacency CSR
// with varint-packed degrees and targets — so encoding is a flat walk of
// arrays and decoding rebuilds the graph without going through the text
// parser. On the recovery hot path this replaces the text round-trip,
// whose line scanning and per-edge string splitting dominate restore time
// on large graphs.
//
// Layout (all integers unsigned varints unless noted):
//
//	magic   "GCSR" + format version byte (4+1 bytes)
//	n, m    node and label counts
//	n x     node id (varint length + bytes), in sorted order
//	m x     label   (varint length + bytes), in sorted order
//	a       number of nodes carrying attributes, then a x
//	          node index, attribute count, count x (key, value) strings
//	n*m x   out-bucket degree (bucket b = node*m + label, CSR order)
//	e x     out-target node index per bucket, concatenated
//
// The codec preserves exactly what the text format preserves — nodes,
// attributes and labelled edges — so Text() round-trips byte-identically
// through EncodeBinary/ParseBinary.

// binaryMagic identifies a binary graph payload; the trailing byte is the
// format version.
var binaryMagic = []byte{'G', 'C', 'S', 'R', 1}

// appendUvarint appends v to dst in unsigned varint encoding.
func appendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

// appendString appends a varint-length-prefixed string.
func appendString(dst []byte, s string) []byte {
	dst = appendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// EncodeBinary serialises the graph in the binary CSR format.
func (g *Graph) EncodeBinary() []byte {
	ix := g.Indexed()
	n, m := ix.NumNodes(), ix.NumLabels()
	// Size guess: magic + tables + one varint per bucket and per edge.
	dst := make([]byte, 0, 16+12*n+8*m+len(ix.outTo)*3+n*m)
	dst = append(dst, binaryMagic...)
	dst = appendUvarint(dst, uint64(n))
	dst = appendUvarint(dst, uint64(m))
	for _, id := range ix.nodes {
		dst = appendString(dst, string(id))
	}
	for _, lab := range ix.labels {
		dst = appendString(dst, string(lab))
	}
	// Attributes, keyed by node index with sorted keys for determinism.
	withAttrs := make([]int32, 0, len(g.attrs))
	for id, attrs := range g.attrs {
		if len(attrs) == 0 {
			continue
		}
		if i, ok := ix.nodeIdx[id]; ok {
			withAttrs = append(withAttrs, i)
		}
	}
	sort.Slice(withAttrs, func(i, j int) bool { return withAttrs[i] < withAttrs[j] })
	dst = appendUvarint(dst, uint64(len(withAttrs)))
	for _, i := range withAttrs {
		attrs := g.attrs[ix.nodes[i]]
		keys := make([]string, 0, len(attrs))
		for k := range attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		dst = appendUvarint(dst, uint64(i))
		dst = appendUvarint(dst, uint64(len(keys)))
		for _, k := range keys {
			dst = appendString(dst, k)
			dst = appendString(dst, attrs[k])
		}
	}
	buckets := n * m
	for b := 0; b < buckets; b++ {
		dst = appendUvarint(dst, uint64(ix.outStart[b+1]-ix.outStart[b]))
	}
	for _, to := range ix.outTo {
		dst = appendUvarint(dst, uint64(to))
	}
	return dst
}

// binaryReader walks an encoded payload with bounds checking.
type binaryReader struct {
	data []byte
	off  int
}

func (r *binaryReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("graph: binary payload truncated at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

// bounded reads a varint that must not exceed max (a count of items that
// each consume at least one byte, so anything larger is corrupt).
func (r *binaryReader) bounded(max int) (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(max) {
		return 0, fmt.Errorf("graph: binary payload count %d exceeds remaining %d bytes", v, max)
	}
	return int(v), nil
}

func (r *binaryReader) string() (string, error) {
	n, err := r.bounded(len(r.data) - r.off)
	if err != nil {
		return "", err
	}
	s := string(r.data[r.off : r.off+n])
	r.off += n
	return s, nil
}

// IsBinaryGraph reports whether data starts with the binary graph magic.
func IsBinaryGraph(data []byte) bool {
	return len(data) >= len(binaryMagic) && string(data[:len(binaryMagic)]) == string(binaryMagic)
}

// ParseBinary decodes a graph from the binary CSR format.
func ParseBinary(data []byte) (*Graph, error) {
	if !IsBinaryGraph(data) {
		return nil, fmt.Errorf("graph: not a binary graph payload")
	}
	r := &binaryReader{data: data, off: len(binaryMagic)}
	n, err := r.bounded(len(data))
	if err != nil {
		return nil, err
	}
	m, err := r.bounded(len(data))
	if err != nil {
		return nil, err
	}
	nodes := make([]NodeID, n)
	g := New()
	for i := range nodes {
		s, err := r.string()
		if err != nil {
			return nil, err
		}
		if i > 0 && s <= string(nodes[i-1]) {
			return nil, fmt.Errorf("graph: binary payload nodes are not sorted")
		}
		nodes[i] = NodeID(s)
		if err := g.AddNode(nodes[i]); err != nil {
			return nil, err
		}
	}
	labels := make([]Label, m)
	for l := range labels {
		s, err := r.string()
		if err != nil {
			return nil, err
		}
		if s == "" {
			return nil, fmt.Errorf("graph: binary payload has an empty label")
		}
		if l > 0 && s <= string(labels[l-1]) {
			return nil, fmt.Errorf("graph: binary payload labels are not sorted")
		}
		labels[l] = Label(s)
	}
	numAttrs, err := r.bounded(len(data))
	if err != nil {
		return nil, err
	}
	for a := 0; a < numAttrs; a++ {
		i, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if i >= uint64(n) {
			return nil, fmt.Errorf("graph: binary payload references node %d of %d", i, n)
		}
		count, err := r.bounded(len(data))
		if err != nil {
			return nil, err
		}
		for c := 0; c < count; c++ {
			k, err := r.string()
			if err != nil {
				return nil, err
			}
			v, err := r.string()
			if err != nil {
				return nil, err
			}
			if err := g.SetAttr(nodes[i], k, v); err != nil {
				return nil, err
			}
		}
	}
	degrees := make([]int, n*m)
	for b := range degrees {
		d, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		degrees[b] = int(d)
	}
	// Canonical payloads list each bucket's targets strictly increasing (the
	// encoder walks sorted, deduplicated adjacency), which lets the decoder
	// append straight into the out-lists — already ordered by (label, to) —
	// instead of paying AddEdge's per-edge sorted insert. Adjacency is
	// accumulated in index-addressed slices (no per-edge map traffic); the
	// in-lists are sorted once per node at the end.
	outLists := make([][]Edge, n)
	inLists := make([][]Edge, n)
	for b, d := range degrees {
		if d == 0 {
			continue
		}
		ni := b / m
		from := nodes[ni]
		label := labels[b%m]
		prev := -1
		for k := 0; k < d; k++ {
			to, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			if to >= uint64(n) {
				return nil, fmt.Errorf("graph: binary payload references node %d of %d", to, n)
			}
			if int(to) <= prev {
				return nil, fmt.Errorf("graph: binary payload bucket %d targets are not strictly increasing", b)
			}
			prev = int(to)
			e := Edge{From: from, Label: label, To: nodes[to]}
			outLists[ni] = append(outLists[ni], e)
			inLists[to] = append(inLists[to], e)
		}
		g.labels[label] += d
		g.edgeCount += d
	}
	for i, id := range nodes {
		if len(outLists[i]) > 0 {
			g.out[id] = outLists[i]
		}
		if in := inLists[i]; len(in) > 0 {
			sort.Slice(in, func(a, b int) bool { return lessIn(in[a], in[b]) })
			g.in[id] = in
		}
	}
	g.version++
	if r.off != len(data) {
		return nil, fmt.Errorf("graph: binary payload has %d trailing bytes", len(data)-r.off)
	}
	return g, nil
}
