package graph

// Indexed is an immutable, integer-indexed view of a Graph built for the
// hot evaluation paths. Node IDs and labels are interned into dense int32
// ranges and the adjacency is laid out as CSR-style flat arrays grouped by
// (node, label) bucket, so that enumerating the neighbours of a node under
// one label is a slice view with zero hashing and zero allocation.
//
// An Indexed view is built once per graph revision and cached on the Graph
// (see Graph.Indexed); any structural mutation of the graph invalidates the
// cache. The view itself is never mutated after construction and is safe
// for concurrent use.
type Indexed struct {
	version uint64
	// nodes[i] is the NodeID interned as i; sorted, so iterating indices
	// yields nodes in the same order as Graph.Nodes.
	nodes   []NodeID
	nodeIdx map[NodeID]int32
	// labels[l] is the Label interned as l; sorted like Graph.Alphabet.
	labels   []Label
	labelIdx map[Label]int32
	// CSR adjacency: bucket b = node*numLabels + label. outTo[outStart[b]:
	// outStart[b+1]] lists the successors of node under label; inFrom is the
	// symmetric predecessor layout.
	outStart []int32
	outTo    []int32
	inStart  []int32
	inFrom   []int32
}

// buildIndexed constructs the dense view from the current graph state.
func buildIndexed(g *Graph, version uint64) *Indexed {
	ix := &Indexed{
		version:  version,
		nodes:    g.Nodes(),
		labels:   g.Alphabet(),
		nodeIdx:  make(map[NodeID]int32, g.NumNodes()),
		labelIdx: make(map[Label]int32, len(g.labels)),
	}
	for i, id := range ix.nodes {
		ix.nodeIdx[id] = int32(i)
	}
	for l, lab := range ix.labels {
		ix.labelIdx[lab] = int32(l)
	}
	n, m := len(ix.nodes), len(ix.labels)
	buckets := n * m
	ix.outStart = make([]int32, buckets+1)
	ix.inStart = make([]int32, buckets+1)
	ix.outTo = make([]int32, 0, g.NumEdges())
	ix.inFrom = make([]int32, 0, g.NumEdges())
	// The per-node adjacency lists are kept sorted by (Label, To/From), so a
	// single pass per node emits each (node, label) bucket contiguously.
	for i, id := range ix.nodes {
		for _, e := range g.out[id] {
			b := i*m + int(ix.labelIdx[e.Label])
			ix.outStart[b+1]++
			ix.outTo = append(ix.outTo, ix.nodeIdx[e.To])
		}
		for _, e := range g.in[id] {
			b := i*m + int(ix.labelIdx[e.Label])
			ix.inStart[b+1]++
			ix.inFrom = append(ix.inFrom, ix.nodeIdx[e.From])
		}
	}
	for b := 1; b <= buckets; b++ {
		ix.outStart[b] += ix.outStart[b-1]
		ix.inStart[b] += ix.inStart[b-1]
	}
	return ix
}

// Indexed returns the dense integer-indexed view of the graph, building it
// on first use and caching it until the next structural mutation. Safe for
// concurrent callers once mutation has finished (the same guarantee the
// rest of Graph's read API gives).
func (g *Graph) Indexed() *Indexed {
	g.idxMu.Lock()
	defer g.idxMu.Unlock()
	if g.idx == nil || g.idx.version != g.version {
		g.idx = buildIndexed(g, g.version)
	}
	return g.idx
}

// Version returns a counter that increases on every structural mutation
// (node or edge added or removed). Caches keyed on a graph — the Indexed
// view, compiled query engines — use it to detect staleness.
func (g *Graph) Version() uint64 { return g.version }

// Version returns the graph structural version this view was built at.
// Derived structures (the rpq index, compiled engines) carry it so that
// staleness against a mutated graph is detectable.
func (ix *Indexed) Version() uint64 { return ix.version }

// NumNodes returns the number of interned nodes.
func (ix *Indexed) NumNodes() int { return len(ix.nodes) }

// NumLabels returns the number of interned labels.
func (ix *Indexed) NumLabels() int { return len(ix.labels) }

// NodeAt returns the NodeID interned as i.
func (ix *Indexed) NodeAt(i int32) NodeID { return ix.nodes[i] }

// IndexOf returns the dense index of a node and whether it exists.
func (ix *Indexed) IndexOf(id NodeID) (int32, bool) {
	i, ok := ix.nodeIdx[id]
	return i, ok
}

// LabelAt returns the Label interned as l.
func (ix *Indexed) LabelAt(l int32) Label { return ix.labels[l] }

// LabelIndexOf returns the dense index of a label and whether it exists.
func (ix *Indexed) LabelIndexOf(lab Label) (int32, bool) {
	l, ok := ix.labelIdx[lab]
	return l, ok
}

// Out returns the successor indices of node under label as a shared slice
// view. The caller must not modify it.
func (ix *Indexed) Out(node, label int32) []int32 {
	b := int(node)*len(ix.labels) + int(label)
	return ix.outTo[ix.outStart[b]:ix.outStart[b+1]]
}

// In returns the predecessor indices of node under label as a shared slice
// view. The caller must not modify it.
func (ix *Indexed) In(node, label int32) []int32 {
	b := int(node)*len(ix.labels) + int(label)
	return ix.inFrom[ix.inStart[b]:ix.inStart[b+1]]
}

// OutDegree returns the total out-degree of a node across all labels.
func (ix *Indexed) OutDegree(node int32) int {
	m := len(ix.labels)
	if m == 0 {
		return 0
	}
	lo := ix.outStart[int(node)*m]
	hi := ix.outStart[int(node)*m+m]
	return int(hi - lo)
}
