package graph

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// buildRandom constructs a graph with random edges, isolated nodes and
// attributes — every feature the text format preserves.
func buildRandom(t *testing.T, rng *rand.Rand) *Graph {
	t.Helper()
	g := New()
	n := 2 + rng.Intn(40)
	labels := []Label{"tram", "bus", "cinema", "x"}
	for i := 0; i < n; i++ {
		g.MustAddNode(NodeID(fmt.Sprintf("n%02d", i)))
	}
	edges := rng.Intn(4 * n)
	for i := 0; i < edges; i++ {
		from := NodeID(fmt.Sprintf("n%02d", rng.Intn(n)))
		to := NodeID(fmt.Sprintf("n%02d", rng.Intn(n)))
		g.MustAddEdge(from, labels[rng.Intn(len(labels))], to)
	}
	for i := 0; i < rng.Intn(5); i++ {
		id := NodeID(fmt.Sprintf("n%02d", rng.Intn(n)))
		if err := g.SetAttr(id, fmt.Sprintf("k%d", rng.Intn(3)), fmt.Sprintf("v%d", rng.Intn(9))); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 60; i++ {
		g := buildRandom(t, rng)
		data := g.EncodeBinary()
		if !IsBinaryGraph(data) {
			t.Fatal("encoded payload does not carry the binary magic")
		}
		got, err := ParseBinary(data)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got.Text() != g.Text() {
			t.Fatalf("case %d: binary round-trip changed the graph\n got %q\nwant %q", i, got.Text(), g.Text())
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
	}
}

func TestBinaryRejectsCorruption(t *testing.T) {
	g, err := ParseText("node iso\nnode a kind=town\nedge a tram b\nedge b cinema c\n")
	if err != nil {
		t.Fatal(err)
	}
	data := g.EncodeBinary()
	if _, err := ParseBinary(data[:len(data)-1]); err == nil {
		t.Fatal("truncated payload must fail to parse")
	}
	if _, err := ParseBinary(append(append([]byte{}, data...), 0x7)); err == nil {
		t.Fatal("trailing bytes must fail to parse")
	}
	if _, err := ParseBinary([]byte("not a graph")); err == nil {
		t.Fatal("foreign payload must fail to parse")
	}
	// Flip every single byte in turn: the decoder must stay bounds-safe —
	// no panic, no hang — under arbitrary corruption. (Silent wrong-graph
	// corruption is the store's CRC layer's job to catch, not the
	// decoder's.)
	for i := len(binaryMagic); i < len(data); i++ {
		mut := append([]byte{}, data...)
		mut[i] ^= 0xff
		if g2, err := ParseBinary(mut); err == nil {
			_ = g2.Validate() // a clean parse must still be a consistent graph
		}
	}
}

func TestBinaryEmptyAndSingleton(t *testing.T) {
	for _, text := range []string{"", "node only\n"} {
		g, err := ParseText(text)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ParseBinary(g.EncodeBinary())
		if err != nil {
			t.Fatal(err)
		}
		if got.Text() != g.Text() {
			t.Fatalf("round-trip of %q changed the graph", text)
		}
	}
}

func BenchmarkBinaryDecode(b *testing.B) {
	var sb strings.Builder
	for i := 0; i < 2000; i++ {
		fmt.Fprintf(&sb, "edge n%04d tram n%04d\nedge n%04d bus n%04d\n", i, (i+1)%2000, i, (i+7)%2000)
	}
	g, err := ParseText(sb.String())
	if err != nil {
		b.Fatal(err)
	}
	data := g.EncodeBinary()
	text := g.Text()
	b.Run("binary", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ParseBinary(data); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("text", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ParseText(text); err != nil {
				b.Fatal(err)
			}
		}
	})
}
