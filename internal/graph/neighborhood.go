package graph

import "sort"

// Neighborhood is the bounded-radius fragment of a graph around a centre
// node, as presented to the user in the interactive scenario (Figure 3 of
// the paper). It records which nodes sit on the frontier, i.e. have
// outgoing edges that leave the fragment — those are rendered as "..." in
// the paper's screenshots.
type Neighborhood struct {
	Center   NodeID
	Radius   int
	Fragment *Graph
	// Frontier lists nodes inside the fragment that have at least one
	// outgoing edge to a node outside the fragment.
	Frontier []NodeID
	// Distance maps each fragment node to its (undirected) distance from
	// the centre.
	Distance map[NodeID]int
}

// NeighborhoodOptions controls fragment extraction.
type NeighborhoodOptions struct {
	// Directed restricts traversal to outgoing edges only. The paper's
	// screenshots follow outgoing paths (the query semantics are forward
	// paths), which is the default used by the interactive engine.
	Directed bool
}

// NeighborhoodAround extracts the fragment of nodes and edges at distance
// at most radius from center. With opts.Directed it follows outgoing edges
// only; otherwise edges are traversed in both directions. Edges between
// two retained nodes are always included.
func (g *Graph) NeighborhoodAround(center NodeID, radius int, opts NeighborhoodOptions) *Neighborhood {
	n := &Neighborhood{
		Center:   center,
		Radius:   radius,
		Fragment: New(),
		Distance: make(map[NodeID]int),
	}
	if !g.HasNode(center) || radius < 0 {
		return n
	}
	// BFS by distance.
	n.Distance[center] = 0
	queue := []NodeID{center}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		d := n.Distance[cur]
		if d == radius {
			continue
		}
		for _, e := range g.Out(cur) {
			if _, seen := n.Distance[e.To]; !seen {
				n.Distance[e.To] = d + 1
				queue = append(queue, e.To)
			}
		}
		if !opts.Directed {
			for _, e := range g.In(cur) {
				if _, seen := n.Distance[e.From]; !seen {
					n.Distance[e.From] = d + 1
					queue = append(queue, e.From)
				}
			}
		}
	}
	// Build the fragment: all retained nodes and every edge between them.
	for id := range n.Distance {
		n.Fragment.MustAddNode(id)
		if kind, ok := g.Attr(id, "kind"); ok {
			if err := n.Fragment.SetAttr(id, "kind", kind); err != nil {
				panic(err) // unreachable: node already added
			}
		}
	}
	frontier := make(map[NodeID]bool)
	for id := range n.Distance {
		for _, e := range g.Out(id) {
			if _, in := n.Distance[e.To]; in {
				n.Fragment.MustAddEdge(e.From, e.Label, e.To)
			} else {
				frontier[id] = true
			}
		}
	}
	for id := range frontier {
		n.Frontier = append(n.Frontier, id)
	}
	sort.Slice(n.Frontier, func(i, j int) bool { return n.Frontier[i] < n.Frontier[j] })
	return n
}

// Added returns the nodes and edges present in this neighbourhood but not
// in prev. It is used to highlight (in blue, per the paper) what a zoom-out
// step revealed.
func (n *Neighborhood) Added(prev *Neighborhood) (nodes []NodeID, edges []Edge) {
	if prev == nil {
		return n.Fragment.Nodes(), n.Fragment.Edges()
	}
	for _, id := range n.Fragment.Nodes() {
		if !prev.Fragment.HasNode(id) {
			nodes = append(nodes, id)
		}
	}
	prevEdges := make(map[Edge]bool)
	for _, e := range prev.Fragment.Edges() {
		prevEdges[e] = true
	}
	for _, e := range n.Fragment.Edges() {
		if !prevEdges[e] {
			edges = append(edges, e)
		}
	}
	return nodes, edges
}

// ReachableFrom returns the set of nodes reachable from start by following
// outgoing edges (including start itself).
func (g *Graph) ReachableFrom(start NodeID) map[NodeID]bool {
	reached := make(map[NodeID]bool)
	if !g.HasNode(start) {
		return reached
	}
	reached[start] = true
	stack := []NodeID{start}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.Out(cur) {
			if !reached[e.To] {
				reached[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
	return reached
}

// ShortestPathLength returns the minimum number of edges on a directed path
// from src to dst, and ok=false if dst is unreachable.
func (g *Graph) ShortestPathLength(src, dst NodeID) (int, bool) {
	if !g.HasNode(src) || !g.HasNode(dst) {
		return 0, false
	}
	if src == dst {
		return 0, true
	}
	dist := map[NodeID]int{src: 0}
	queue := []NodeID{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range g.Out(cur) {
			if _, seen := dist[e.To]; seen {
				continue
			}
			dist[e.To] = dist[cur] + 1
			if e.To == dst {
				return dist[e.To], true
			}
			queue = append(queue, e.To)
		}
	}
	return 0, false
}
