// Package graph implements the labelled directed multigraph substrate used
// by GPS. A graph database here is a set of nodes and a set of directed
// edges, each edge carrying a label drawn from a finite alphabet. The
// package provides adjacency indexes, neighbourhood (bounded-radius
// subgraph) extraction, basic statistics and a simple text serialisation.
//
// The zero value of Graph is an empty graph ready to use.
package graph

import (
	"fmt"
	"sort"
	"sync"
)

// NodeID identifies a node. IDs are arbitrary non-empty strings; the
// Figure 1 example uses names such as "N1" or "C2".
type NodeID string

// Label is an edge label, for instance "tram" or "cinema".
type Label string

// Edge is a directed labelled edge.
type Edge struct {
	From  NodeID
	Label Label
	To    NodeID
}

// String renders the edge as "from -label-> to".
func (e Edge) String() string {
	return fmt.Sprintf("%s -%s-> %s", e.From, e.Label, e.To)
}

// Graph is a labelled directed multigraph. It is not safe for concurrent
// mutation; concurrent reads are safe once mutation has finished.
type Graph struct {
	nodes map[NodeID]struct{}
	// out[from] and in[to] hold edges sorted lazily on demand.
	out map[NodeID][]Edge
	in  map[NodeID][]Edge
	// labels counts edges per label.
	labels    map[Label]int
	edgeCount int
	// attrs holds optional node attributes (kind, display name, ...).
	attrs map[NodeID]map[string]string
	// version counts structural mutations; idx caches the dense view built
	// at a given version (see indexed.go).
	version uint64
	idxMu   sync.Mutex
	idx     *Indexed
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{}
}

func (g *Graph) init() {
	if g.nodes == nil {
		g.nodes = make(map[NodeID]struct{})
		g.out = make(map[NodeID][]Edge)
		g.in = make(map[NodeID][]Edge)
		g.labels = make(map[Label]int)
		g.attrs = make(map[NodeID]map[string]string)
	}
}

// AddNode adds a node if not already present. Adding a node that exists is
// a no-op. Empty IDs are rejected.
func (g *Graph) AddNode(id NodeID) error {
	if id == "" {
		return fmt.Errorf("graph: empty node id")
	}
	g.init()
	if _, ok := g.nodes[id]; !ok {
		g.nodes[id] = struct{}{}
		g.version++
	}
	return nil
}

// MustAddNode adds a node and panics on error. Intended for literals in
// tests and dataset builders.
func (g *Graph) MustAddNode(id NodeID) {
	if err := g.AddNode(id); err != nil {
		panic(err)
	}
}

// HasNode reports whether the node exists.
func (g *Graph) HasNode(id NodeID) bool {
	_, ok := g.nodes[id]
	return ok
}

// SetAttr attaches a string attribute to a node, creating the node if
// necessary.
func (g *Graph) SetAttr(id NodeID, key, value string) error {
	if err := g.AddNode(id); err != nil {
		return err
	}
	m := g.attrs[id]
	if m == nil {
		m = make(map[string]string)
		g.attrs[id] = m
	}
	m[key] = value
	return nil
}

// Attr returns a node attribute and whether it was set.
func (g *Graph) Attr(id NodeID, key string) (string, bool) {
	m, ok := g.attrs[id]
	if !ok {
		return "", false
	}
	v, ok := m[key]
	return v, ok
}

// AddEdge adds a directed labelled edge, creating endpoints as needed.
// Parallel edges with the same label are deduplicated. The adjacency lists
// are kept sorted on insertion so that Out and In are cheap read paths (the
// evaluator, the word enumerator and the neighbourhood extractor all sit on
// them).
func (g *Graph) AddEdge(from NodeID, label Label, to NodeID) error {
	if from == "" || to == "" {
		return fmt.Errorf("graph: edge with empty endpoint %q -> %q", from, to)
	}
	if label == "" {
		return fmt.Errorf("graph: edge %q -> %q with empty label", from, to)
	}
	g.init()
	g.nodes[from] = struct{}{}
	g.nodes[to] = struct{}{}
	e := Edge{From: from, Label: label, To: to}

	outPos, found := searchEdge(g.out[from], e, lessOut)
	if found {
		return nil
	}
	g.out[from] = insertEdge(g.out[from], outPos, e)
	inPos, _ := searchEdge(g.in[to], e, lessIn)
	g.in[to] = insertEdge(g.in[to], inPos, e)
	g.labels[label]++
	g.edgeCount++
	g.version++
	return nil
}

// lessOut orders a node's outgoing edges by (Label, To).
func lessOut(a, b Edge) bool {
	if a.Label != b.Label {
		return a.Label < b.Label
	}
	return a.To < b.To
}

// lessIn orders a node's incoming edges by (Label, From).
func lessIn(a, b Edge) bool {
	if a.Label != b.Label {
		return a.Label < b.Label
	}
	return a.From < b.From
}

// searchEdge returns the insertion position of e in the sorted slice and
// whether an equal edge is already present.
func searchEdge(edges []Edge, e Edge, less func(a, b Edge) bool) (int, bool) {
	pos := sort.Search(len(edges), func(i int) bool { return !less(edges[i], e) })
	if pos < len(edges) && edges[pos] == e {
		return pos, true
	}
	return pos, false
}

// insertEdge inserts e at position pos.
func insertEdge(edges []Edge, pos int, e Edge) []Edge {
	edges = append(edges, Edge{})
	copy(edges[pos+1:], edges[pos:])
	edges[pos] = e
	return edges
}

// MustAddEdge adds an edge and panics on error.
func (g *Graph) MustAddEdge(from NodeID, label Label, to NodeID) {
	if err := g.AddEdge(from, label, to); err != nil {
		panic(err)
	}
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return g.edgeCount }

// Nodes returns all node IDs in sorted order.
func (g *Graph) Nodes() []NodeID {
	ids := make([]NodeID, 0, len(g.nodes))
	for id := range g.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Edges returns all edges sorted by (From, Label, To).
func (g *Graph) Edges() []Edge {
	edges := make([]Edge, 0, g.edgeCount)
	for _, out := range g.out {
		edges = append(edges, out...)
	}
	sortEdges(edges)
	return edges
}

func sortEdges(edges []Edge) {
	sort.Slice(edges, func(i, j int) bool {
		a, b := edges[i], edges[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.Label != b.Label {
			return a.Label < b.Label
		}
		return a.To < b.To
	})
}

// Out returns the outgoing edges of a node sorted by (Label, To). The
// returned slice must not be modified.
func (g *Graph) Out(id NodeID) []Edge { return g.out[id] }

// In returns the incoming edges of a node sorted by (Label, From). The
// returned slice must not be modified.
func (g *Graph) In(id NodeID) []Edge { return g.in[id] }

// OutWithLabel returns the outgoing edges of a node carrying the given
// label, in sorted order. The returned slice must not be modified.
func (g *Graph) OutWithLabel(id NodeID, label Label) []Edge {
	edges := g.out[id]
	lo := sort.Search(len(edges), func(i int) bool { return edges[i].Label >= label })
	hi := lo
	for hi < len(edges) && edges[hi].Label == label {
		hi++
	}
	return edges[lo:hi]
}

// OutDegree returns the number of outgoing edges of a node.
func (g *Graph) OutDegree(id NodeID) int { return len(g.out[id]) }

// InDegree returns the number of incoming edges of a node.
func (g *Graph) InDegree(id NodeID) int { return len(g.in[id]) }

// Alphabet returns the distinct edge labels in sorted order.
func (g *Graph) Alphabet() []Label {
	labels := make([]Label, 0, len(g.labels))
	for l := range g.labels {
		labels = append(labels, l)
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i] < labels[j] })
	return labels
}

// LabelCount returns the number of edges with the given label.
func (g *Graph) LabelCount(l Label) int { return g.labels[l] }

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New()
	for id := range g.nodes {
		c.MustAddNode(id)
	}
	for id, attrs := range g.attrs {
		for k, v := range attrs {
			if err := c.SetAttr(id, k, v); err != nil {
				panic(err) // unreachable: source attrs are valid
			}
		}
	}
	for _, e := range g.Edges() {
		c.MustAddEdge(e.From, e.Label, e.To)
	}
	return c
}

// RemoveNode deletes a node and all incident edges. Removing a missing
// node is a no-op.
func (g *Graph) RemoveNode(id NodeID) {
	if !g.HasNode(id) {
		return
	}
	for _, e := range g.out[id] {
		g.removeFromIn(e)
		g.labels[e.Label]--
		if g.labels[e.Label] == 0 {
			delete(g.labels, e.Label)
		}
		g.edgeCount--
	}
	delete(g.out, id)
	// Incoming edges from other nodes.
	for _, e := range append([]Edge(nil), g.in[id]...) {
		if e.From == id {
			continue // already handled via out
		}
		g.removeFromOut(e)
		g.labels[e.Label]--
		if g.labels[e.Label] == 0 {
			delete(g.labels, e.Label)
		}
		g.edgeCount--
	}
	delete(g.in, id)
	delete(g.nodes, id)
	delete(g.attrs, id)
	g.version++
}

func (g *Graph) removeFromIn(e Edge) {
	edges := g.in[e.To]
	for i, x := range edges {
		if x == e {
			g.in[e.To] = append(edges[:i], edges[i+1:]...)
			return
		}
	}
}

func (g *Graph) removeFromOut(e Edge) {
	edges := g.out[e.From]
	for i, x := range edges {
		if x == e {
			g.out[e.From] = append(edges[:i], edges[i+1:]...)
			return
		}
	}
}

// Equal reports whether two graphs have the same nodes and edges
// (attributes are ignored).
func (g *Graph) Equal(other *Graph) bool {
	if g.NumNodes() != other.NumNodes() || g.NumEdges() != other.NumEdges() {
		return false
	}
	for id := range g.nodes {
		if !other.HasNode(id) {
			return false
		}
	}
	ge, oe := g.Edges(), other.Edges()
	for i := range ge {
		if ge[i] != oe[i] {
			return false
		}
	}
	return true
}

// Validate checks internal consistency (every edge endpoint is a node and
// the in/out indexes agree). It is primarily used by tests and the
// property-based suite.
func (g *Graph) Validate() error {
	seenOut := 0
	for from, edges := range g.out {
		for _, e := range edges {
			if e.From != from {
				return fmt.Errorf("graph: edge %v indexed under wrong source %q", e, from)
			}
			if !g.HasNode(e.From) || !g.HasNode(e.To) {
				return fmt.Errorf("graph: edge %v has missing endpoint", e)
			}
			seenOut++
		}
	}
	seenIn := 0
	for to, edges := range g.in {
		for _, e := range edges {
			if e.To != to {
				return fmt.Errorf("graph: edge %v indexed under wrong target %q", e, to)
			}
			seenIn++
		}
	}
	if seenOut != g.edgeCount || seenIn != g.edgeCount {
		return fmt.Errorf("graph: edge count mismatch out=%d in=%d count=%d", seenOut, seenIn, g.edgeCount)
	}
	return nil
}
