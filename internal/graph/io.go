package graph

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// The text format is a line-oriented edge list:
//
//	# comment
//	node <id> [key=value ...]
//	edge <from> <label> <to>
//
// Blank lines and lines starting with '#' are ignored. A bare "node" line
// is only needed for isolated nodes or to attach attributes.

// WriteText serialises the graph in the line-oriented text format.
func (g *Graph) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, id := range g.Nodes() {
		attrs := g.attrs[id]
		if len(attrs) == 0 {
			if g.OutDegree(id) == 0 && g.InDegree(id) == 0 {
				if _, err := fmt.Fprintf(bw, "node %s\n", id); err != nil {
					return err
				}
			}
			continue
		}
		keys := make([]string, 0, len(attrs))
		for k := range attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, 0, len(keys))
		for _, k := range keys {
			parts = append(parts, fmt.Sprintf("%s=%s", k, attrs[k]))
		}
		if _, err := fmt.Fprintf(bw, "node %s %s\n", id, strings.Join(parts, " ")); err != nil {
			return err
		}
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "edge %s %s %s\n", e.From, e.Label, e.To); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Text returns the text serialisation as a string.
func (g *Graph) Text() string {
	var sb strings.Builder
	if err := g.WriteText(&sb); err != nil {
		panic(err) // strings.Builder never fails
	}
	return sb.String()
}

// ReadText parses a graph from the line-oriented text format.
func ReadText(r io.Reader) (*Graph, error) {
	g := New()
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "node":
			if len(fields) < 2 {
				return nil, fmt.Errorf("graph: line %d: node requires an id", lineNo)
			}
			id := NodeID(fields[1])
			if err := g.AddNode(id); err != nil {
				return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
			}
			for _, kv := range fields[2:] {
				k, v, ok := strings.Cut(kv, "=")
				if !ok {
					return nil, fmt.Errorf("graph: line %d: malformed attribute %q", lineNo, kv)
				}
				if err := g.SetAttr(id, k, v); err != nil {
					return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
				}
			}
		case "edge":
			if len(fields) != 4 {
				return nil, fmt.Errorf("graph: line %d: edge requires <from> <label> <to>", lineNo)
			}
			if err := g.AddEdge(NodeID(fields[1]), Label(fields[2]), NodeID(fields[3])); err != nil {
				return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
			}
		default:
			return nil, fmt.Errorf("graph: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("graph: read: %w", err)
	}
	return g, nil
}

// ParseText parses a graph from a string in the text format.
func ParseText(s string) (*Graph, error) {
	return ReadText(strings.NewReader(s))
}

// jsonGraph is the JSON wire form.
type jsonGraph struct {
	Nodes []jsonNode `json:"nodes"`
	Edges []jsonEdge `json:"edges"`
}

type jsonNode struct {
	ID    string            `json:"id"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

type jsonEdge struct {
	From  string `json:"from"`
	Label string `json:"label"`
	To    string `json:"to"`
}

// MarshalJSON implements json.Marshaler.
func (g *Graph) MarshalJSON() ([]byte, error) {
	jg := jsonGraph{}
	for _, id := range g.Nodes() {
		n := jsonNode{ID: string(id)}
		if attrs := g.attrs[id]; len(attrs) > 0 {
			n.Attrs = make(map[string]string, len(attrs))
			for k, v := range attrs {
				n.Attrs[k] = v
			}
		}
		jg.Nodes = append(jg.Nodes, n)
	}
	for _, e := range g.Edges() {
		jg.Edges = append(jg.Edges, jsonEdge{From: string(e.From), Label: string(e.Label), To: string(e.To)})
	}
	return json.Marshal(jg)
}

// UnmarshalJSON implements json.Unmarshaler.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var jg jsonGraph
	if err := json.Unmarshal(data, &jg); err != nil {
		return fmt.Errorf("graph: unmarshal: %w", err)
	}
	*g = *New()
	for _, n := range jg.Nodes {
		if err := g.AddNode(NodeID(n.ID)); err != nil {
			return err
		}
		for k, v := range n.Attrs {
			if err := g.SetAttr(NodeID(n.ID), k, v); err != nil {
				return err
			}
		}
	}
	for _, e := range jg.Edges {
		if err := g.AddEdge(NodeID(e.From), Label(e.Label), NodeID(e.To)); err != nil {
			return err
		}
	}
	return nil
}
