package graph

import (
	"strings"
	"testing"
)

func TestReadCSVBasics(t *testing.T) {
	in := "N1,tram,N4\nN2,bus,N1\nN4,cinema,C1\n"
	g, err := ReadCSV(strings.NewReader(in), CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 4 || g.NumEdges() != 3 {
		t.Fatalf("got %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	if g.LabelCount("tram") != 1 {
		t.Fatal("tram edge missing")
	}
}

func TestReadCSVHeaderAndColumns(t *testing.T) {
	in := "id,src,rel,dst\n1,N1,tram,N4\n2,N4,cinema,C1\n"
	cols := [3]int{1, 2, 3}
	g, err := ReadCSV(strings.NewReader(in), CSVOptions{Header: true, Columns: &cols})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 || !g.HasNode("C1") {
		t.Fatalf("unexpected graph: %s", g.Text())
	}
}

func TestReadCSVTabSeparated(t *testing.T) {
	in := "N1\ttram\tN4\nN4\tcinema\tC1\n"
	g, err := ReadCSV(strings.NewReader(in), CSVOptions{Comma: '\t'})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("N1,tram\n"), CSVOptions{}); err == nil {
		t.Fatal("missing column should fail")
	}
	if _, err := ReadCSV(strings.NewReader("N1,,N4\n"), CSVOptions{}); err == nil {
		t.Fatal("empty label should fail")
	}
}

func TestWriteCSVRoundTrip(t *testing.T) {
	g := buildFigure1(t)
	var sb strings.Builder
	if err := g.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(strings.NewReader(sb.String()), CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(back) {
		t.Fatalf("round trip mismatch:\n%s\nvs\n%s", g.Text(), back.Text())
	}
}

func TestReadTriples(t *testing.T) {
	in := `
# a small RDF-ish export
<http://example.org/city/N1> <http://example.org/ont#tram> <http://example.org/city/N4> .
<http://example.org/city/N4> <http://example.org/ont#cinema> <http://example.org/city/C1> .
"N2" "bus" "N1"
N2 bus N3
`
	g, err := ReadTriples(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasNode("N1") || !g.HasNode("C1") || !g.HasNode("N3") {
		t.Fatalf("IRI local names not extracted: %s", g.Text())
	}
	if g.LabelCount("tram") != 1 || g.LabelCount("bus") != 2 {
		t.Fatalf("labels wrong: %s", g.Text())
	}
	if g.NumEdges() != 4 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
}

func TestReadTriplesErrors(t *testing.T) {
	if _, err := ReadTriples(strings.NewReader("a b\n")); err == nil {
		t.Fatal("two-term line should fail")
	}
	if _, err := ReadTriples(strings.NewReader("a b c d\n")); err == nil {
		t.Fatal("four-term line should fail")
	}
}

func TestTrimTerm(t *testing.T) {
	cases := map[string]string{
		"<http://x.org/a/b#C>": "C",
		"<http://x.org/a/b>":   "b",
		"\"quoted\"":           "quoted",
		"bare":                 "bare",
		"<plain>":              "plain",
	}
	for in, want := range cases {
		if got := trimTerm(in); got != want {
			t.Errorf("trimTerm(%q) = %q, want %q", in, got, want)
		}
	}
}
