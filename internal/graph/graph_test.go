package graph

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func buildFigure1(t testing.TB) *Graph {
	t.Helper()
	g := New()
	edges := []struct {
		from, label, to string
	}{
		{"N1", "tram", "N4"},
		{"N2", "bus", "N1"},
		{"N2", "bus", "N3"},
		{"N2", "bus", "N5"},
		{"N3", "tram", "N6"},
		{"N4", "cinema", "C1"},
		{"N4", "bus", "N5"},
		{"N5", "restaurant", "R1"},
		{"N5", "tram", "N2"},
		{"N6", "restaurant", "R2"},
		{"N6", "cinema", "C2"},
		{"N6", "bus", "N5"},
	}
	for _, e := range edges {
		g.MustAddEdge(NodeID(e.from), Label(e.label), NodeID(e.to))
	}
	return g
}

func TestAddNodeAndEdgeBasics(t *testing.T) {
	g := New()
	if err := g.AddNode("a"); err != nil {
		t.Fatalf("AddNode: %v", err)
	}
	if !g.HasNode("a") {
		t.Fatal("node a should exist")
	}
	if g.HasNode("b") {
		t.Fatal("node b should not exist")
	}
	if err := g.AddEdge("a", "x", "b"); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if !g.HasNode("b") {
		t.Fatal("AddEdge should create missing endpoint b")
	}
	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Fatalf("got %d nodes %d edges, want 2/1", g.NumNodes(), g.NumEdges())
	}
}

func TestAddEdgeRejectsEmpty(t *testing.T) {
	g := New()
	if err := g.AddEdge("", "x", "b"); err == nil {
		t.Fatal("expected error for empty source")
	}
	if err := g.AddEdge("a", "", "b"); err == nil {
		t.Fatal("expected error for empty label")
	}
	if err := g.AddEdge("a", "x", ""); err == nil {
		t.Fatal("expected error for empty target")
	}
	if err := g.AddNode(""); err == nil {
		t.Fatal("expected error for empty node id")
	}
}

func TestAddEdgeDeduplicates(t *testing.T) {
	g := New()
	g.MustAddEdge("a", "x", "b")
	g.MustAddEdge("a", "x", "b")
	if g.NumEdges() != 1 {
		t.Fatalf("duplicate edge not deduplicated: %d edges", g.NumEdges())
	}
	g.MustAddEdge("a", "y", "b")
	if g.NumEdges() != 2 {
		t.Fatalf("distinct label should add edge: %d edges", g.NumEdges())
	}
}

func TestZeroValueGraphUsable(t *testing.T) {
	var g Graph
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Fatal("zero graph should be empty")
	}
	g.MustAddEdge("a", "x", "b")
	if g.NumEdges() != 1 {
		t.Fatal("zero value graph should accept edges")
	}
}

func TestOutInSorted(t *testing.T) {
	g := buildFigure1(t)
	out := g.Out("N2")
	if len(out) != 3 {
		t.Fatalf("N2 out degree = %d, want 3", len(out))
	}
	for i := 1; i < len(out); i++ {
		if out[i-1].To > out[i].To {
			t.Fatalf("Out not sorted: %v", out)
		}
	}
	in := g.In("N5")
	if len(in) != 3 {
		t.Fatalf("N5 in degree = %d, want 3", len(in))
	}
}

func TestOutWithLabel(t *testing.T) {
	g := buildFigure1(t)
	bus := g.OutWithLabel("N2", "bus")
	if len(bus) != 3 {
		t.Fatalf("N2 has 3 bus edges, got %v", bus)
	}
	for _, e := range bus {
		if e.Label != "bus" || e.From != "N2" {
			t.Fatalf("wrong edge %v", e)
		}
	}
	if got := g.OutWithLabel("N2", "cinema"); len(got) != 0 {
		t.Fatalf("N2 has no cinema edge, got %v", got)
	}
	if got := g.OutWithLabel("missing", "bus"); len(got) != 0 {
		t.Fatalf("missing node has no edges, got %v", got)
	}
}

func TestAlphabetAndLabelCount(t *testing.T) {
	g := buildFigure1(t)
	alphabet := g.Alphabet()
	want := []Label{"bus", "cinema", "restaurant", "tram"}
	if !reflect.DeepEqual(alphabet, want) {
		t.Fatalf("Alphabet = %v, want %v", alphabet, want)
	}
	if g.LabelCount("bus") != 5 {
		t.Fatalf("LabelCount(bus) = %d, want 5", g.LabelCount("bus"))
	}
	if g.LabelCount("missing") != 0 {
		t.Fatal("missing label should count 0")
	}
}

func TestAttrs(t *testing.T) {
	g := New()
	if err := g.SetAttr("N1", "kind", "neighborhood"); err != nil {
		t.Fatal(err)
	}
	v, ok := g.Attr("N1", "kind")
	if !ok || v != "neighborhood" {
		t.Fatalf("Attr = %q,%v", v, ok)
	}
	if _, ok := g.Attr("N1", "missing"); ok {
		t.Fatal("missing attr should not be found")
	}
	if _, ok := g.Attr("NX", "kind"); ok {
		t.Fatal("attr on missing node should not be found")
	}
}

func TestCloneIndependent(t *testing.T) {
	g := buildFigure1(t)
	if err := g.SetAttr("N1", "kind", "neighborhood"); err != nil {
		t.Fatal(err)
	}
	c := g.Clone()
	if !g.Equal(c) {
		t.Fatal("clone should equal original")
	}
	c.MustAddEdge("N1", "bus", "N6")
	if g.Equal(c) {
		t.Fatal("mutation of clone should not affect original")
	}
	if v, ok := c.Attr("N1", "kind"); !ok || v != "neighborhood" {
		t.Fatal("clone should copy attributes")
	}
}

func TestRemoveNode(t *testing.T) {
	g := buildFigure1(t)
	before := g.NumEdges()
	g.RemoveNode("N5")
	if g.HasNode("N5") {
		t.Fatal("N5 should be removed")
	}
	// N5 had 2 outgoing (restaurant->R1, tram->N2) and 3 incoming edges.
	if g.NumEdges() != before-5 {
		t.Fatalf("edges after removal = %d, want %d", g.NumEdges(), before-5)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate after removal: %v", err)
	}
	// Removing a missing node is a no-op.
	g.RemoveNode("N5")
	g.RemoveNode("does-not-exist")
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveNodeSelfLoop(t *testing.T) {
	g := New()
	g.MustAddEdge("a", "x", "a")
	g.MustAddEdge("a", "x", "b")
	g.RemoveNode("a")
	if g.NumEdges() != 0 {
		t.Fatalf("self-loop removal left %d edges", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEqual(t *testing.T) {
	a := buildFigure1(t)
	b := buildFigure1(t)
	if !a.Equal(b) {
		t.Fatal("identical graphs should be equal")
	}
	b.MustAddNode("extra")
	if a.Equal(b) {
		t.Fatal("extra node should break equality")
	}
	c := buildFigure1(t)
	c.RemoveNode("R1")
	if a.Equal(c) {
		t.Fatal("different graphs should not be equal")
	}
}

func TestTextRoundTrip(t *testing.T) {
	g := buildFigure1(t)
	g.MustAddNode("isolated")
	if err := g.SetAttr("N1", "kind", "neighborhood"); err != nil {
		t.Fatal(err)
	}
	text := g.Text()
	parsed, err := ParseText(text)
	if err != nil {
		t.Fatalf("ParseText: %v", err)
	}
	if !g.Equal(parsed) {
		t.Fatalf("round trip mismatch:\n%s\nvs\n%s", text, parsed.Text())
	}
	if v, ok := parsed.Attr("N1", "kind"); !ok || v != "neighborhood" {
		t.Fatal("attribute lost in round trip")
	}
}

func TestParseTextErrors(t *testing.T) {
	cases := []string{
		"edge a b",         // wrong arity
		"node",             // missing id
		"frob a b c",       // unknown directive
		"node a kindvalue", // malformed attribute
		"edge a  c",        // empty label collapses: wrong arity
	}
	for _, c := range cases {
		if _, err := ParseText(c); err == nil {
			t.Errorf("ParseText(%q) should fail", c)
		}
	}
}

func TestParseTextCommentsAndBlank(t *testing.T) {
	g, err := ParseText("# header\n\nedge a x b\n  # indented comment\nnode c\n")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 1 {
		t.Fatalf("got %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := buildFigure1(t)
	if err := g.SetAttr("C1", "kind", "cinema"); err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	var back Graph
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !g.Equal(&back) {
		t.Fatal("JSON round trip mismatch")
	}
	if v, ok := back.Attr("C1", "kind"); !ok || v != "cinema" {
		t.Fatal("attribute lost in JSON round trip")
	}
}

func TestJSONUnmarshalInvalid(t *testing.T) {
	var g Graph
	if err := json.Unmarshal([]byte(`{"nodes":[{"id":""}]}`), &g); err == nil {
		t.Fatal("empty node id should fail")
	}
	if err := json.Unmarshal([]byte(`not json`), &g); err == nil {
		t.Fatal("invalid json should fail")
	}
}

func TestNeighborhoodRadiusZero(t *testing.T) {
	g := buildFigure1(t)
	n := g.NeighborhoodAround("N2", 0, NeighborhoodOptions{Directed: true})
	if n.Fragment.NumNodes() != 1 || n.Fragment.NumEdges() != 0 {
		t.Fatalf("radius 0 fragment = %d nodes %d edges", n.Fragment.NumNodes(), n.Fragment.NumEdges())
	}
	if len(n.Frontier) != 1 || n.Frontier[0] != "N2" {
		t.Fatalf("frontier = %v, want [N2]", n.Frontier)
	}
}

func TestNeighborhoodDirectedRadius2(t *testing.T) {
	g := buildFigure1(t)
	n := g.NeighborhoodAround("N2", 2, NeighborhoodOptions{Directed: true})
	// From N2 at distance <=2 following outgoing edges:
	// d1: N1, N3, N5; d2: N4, N6, R1, N2(already).
	wantNodes := []NodeID{"N1", "N2", "N3", "N4", "N5", "N6", "R1"}
	if got := n.Fragment.Nodes(); !reflect.DeepEqual(got, wantNodes) {
		t.Fatalf("fragment nodes = %v, want %v", got, wantNodes)
	}
	// C1, C2, R2 are outside, so N4 and N6 are on the frontier.
	wantFrontier := map[NodeID]bool{"N4": true, "N6": true}
	for _, f := range n.Frontier {
		if !wantFrontier[f] {
			t.Fatalf("unexpected frontier node %s (frontier %v)", f, n.Frontier)
		}
		delete(wantFrontier, f)
	}
	if len(wantFrontier) != 0 {
		t.Fatalf("missing frontier nodes: %v", wantFrontier)
	}
	if n.Distance["N4"] != 2 || n.Distance["N1"] != 1 || n.Distance["N2"] != 0 {
		t.Fatalf("distances wrong: %v", n.Distance)
	}
}

func TestNeighborhoodZoomAdds(t *testing.T) {
	g := buildFigure1(t)
	n2 := g.NeighborhoodAround("N2", 2, NeighborhoodOptions{Directed: true})
	n3 := g.NeighborhoodAround("N2", 3, NeighborhoodOptions{Directed: true})
	nodes, edges := n3.Added(n2)
	// Zooming from 2 to 3 must reveal the cinemas and R2.
	nodeSet := make(map[NodeID]bool)
	for _, id := range nodes {
		nodeSet[id] = true
	}
	for _, want := range []NodeID{"C1", "C2", "R2"} {
		if !nodeSet[want] {
			t.Fatalf("zoom should reveal %s, revealed %v", want, nodes)
		}
	}
	if len(edges) == 0 {
		t.Fatal("zoom should reveal edges")
	}
	// Added with nil previous returns everything.
	allNodes, allEdges := n3.Added(nil)
	if len(allNodes) != n3.Fragment.NumNodes() || len(allEdges) != n3.Fragment.NumEdges() {
		t.Fatal("Added(nil) should return full fragment")
	}
}

func TestNeighborhoodUndirected(t *testing.T) {
	g := buildFigure1(t)
	dir := g.NeighborhoodAround("C1", 1, NeighborhoodOptions{Directed: true})
	undir := g.NeighborhoodAround("C1", 1, NeighborhoodOptions{})
	if dir.Fragment.NumNodes() != 1 {
		t.Fatalf("C1 has no outgoing edges; directed fragment = %d nodes", dir.Fragment.NumNodes())
	}
	if undir.Fragment.NumNodes() != 2 {
		t.Fatalf("undirected fragment should include N4: %v", undir.Fragment.Nodes())
	}
}

func TestNeighborhoodMissingCenter(t *testing.T) {
	g := buildFigure1(t)
	n := g.NeighborhoodAround("missing", 2, NeighborhoodOptions{Directed: true})
	if n.Fragment.NumNodes() != 0 {
		t.Fatal("missing centre should produce empty fragment")
	}
	n = g.NeighborhoodAround("N1", -1, NeighborhoodOptions{Directed: true})
	if n.Fragment.NumNodes() != 0 {
		t.Fatal("negative radius should produce empty fragment")
	}
}

func TestNeighborhoodCopiesKindAttr(t *testing.T) {
	g := buildFigure1(t)
	if err := g.SetAttr("N4", "kind", "neighborhood"); err != nil {
		t.Fatal(err)
	}
	n := g.NeighborhoodAround("N1", 1, NeighborhoodOptions{Directed: true})
	if v, ok := n.Fragment.Attr("N4", "kind"); !ok || v != "neighborhood" {
		t.Fatal("kind attribute should be copied into fragment")
	}
}

func TestReachableFrom(t *testing.T) {
	g := buildFigure1(t)
	r := g.ReachableFrom("N5")
	// From N5: R1, N2 and everything reachable from N2.
	for _, want := range []NodeID{"N5", "R1", "N2", "N1", "N3", "N4", "N6", "C1", "C2", "R2"} {
		if !r[want] {
			t.Fatalf("%s should be reachable from N5; got %v", want, r)
		}
	}
	if len(g.ReachableFrom("missing")) != 0 {
		t.Fatal("missing start should be empty")
	}
	if r := g.ReachableFrom("C1"); len(r) != 1 || !r["C1"] {
		t.Fatalf("C1 reaches only itself, got %v", r)
	}
}

func TestShortestPathLength(t *testing.T) {
	g := buildFigure1(t)
	cases := []struct {
		src, dst NodeID
		want     int
		ok       bool
	}{
		{"N2", "C1", 3, true},
		{"N2", "N2", 0, true},
		{"N4", "C1", 1, true},
		{"N5", "C2", 4, true},
		{"C1", "N1", 0, false},
		{"missing", "N1", 0, false},
		{"N1", "missing", 0, false},
	}
	for _, c := range cases {
		got, ok := g.ShortestPathLength(c.src, c.dst)
		if ok != c.ok || got != c.want {
			t.Errorf("ShortestPathLength(%s,%s) = %d,%v want %d,%v", c.src, c.dst, got, ok, c.want, c.ok)
		}
	}
}

func TestComputeStats(t *testing.T) {
	g := buildFigure1(t)
	s := g.ComputeStats()
	if s.Nodes != 10 || s.Edges != 12 || s.Labels != 4 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Sinks != 4 { // C1, C2, R1, R2
		t.Fatalf("sinks = %d, want 4", s.Sinks)
	}
	if s.MaxOutDegree != 3 {
		t.Fatalf("max out degree = %d, want 3", s.MaxOutDegree)
	}
	if s.LabelHistogram["bus"] != 5 {
		t.Fatalf("bus count = %d", s.LabelHistogram["bus"])
	}
	str := s.String()
	if !strings.Contains(str, "nodes=10") || !strings.Contains(str, "label bus") {
		t.Fatalf("stats string missing fields: %s", str)
	}
}

func TestEdgeString(t *testing.T) {
	e := Edge{From: "a", Label: "x", To: "b"}
	if e.String() != "a -x-> b" {
		t.Fatalf("Edge.String = %q", e.String())
	}
}

// randomGraph builds a pseudo-random graph for property tests.
func randomGraph(r *rand.Rand, nodes, edges int) *Graph {
	g := New()
	labels := []Label{"a", "b", "c", "d"}
	for i := 0; i < nodes; i++ {
		g.MustAddNode(NodeID(fmtNode(i)))
	}
	ids := g.Nodes()
	for i := 0; i < edges; i++ {
		from := ids[r.Intn(len(ids))]
		to := ids[r.Intn(len(ids))]
		g.MustAddEdge(from, labels[r.Intn(len(labels))], to)
	}
	return g
}

func fmtNode(i int) string { return "v" + string(rune('A'+i%26)) + string(rune('0'+i/26%10)) }

func TestPropertyTextRoundTrip(t *testing.T) {
	f := func(seed int64, nodes, edges uint8) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, int(nodes%40)+1, int(edges))
		parsed, err := ParseText(g.Text())
		if err != nil {
			return false
		}
		return g.Equal(parsed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyValidateAfterRandomOps(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 20, 60)
		ids := g.Nodes()
		for i := 0; i < 5 && len(ids) > 0; i++ {
			g.RemoveNode(ids[r.Intn(len(ids))])
		}
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCloneEqual(t *testing.T) {
	f := func(seed int64, nodes, edges uint8) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, int(nodes%30)+1, int(edges%100))
		return g.Equal(g.Clone())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyNeighborhoodSubsetOfGraph(t *testing.T) {
	f := func(seed int64, radius uint8) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 25, 80)
		ids := g.Nodes()
		center := ids[r.Intn(len(ids))]
		n := g.NeighborhoodAround(center, int(radius%5), NeighborhoodOptions{Directed: true})
		for _, id := range n.Fragment.Nodes() {
			if !g.HasNode(id) {
				return false
			}
		}
		edgeSet := make(map[Edge]bool)
		for _, e := range g.Edges() {
			edgeSet[e] = true
		}
		for _, e := range n.Fragment.Edges() {
			if !edgeSet[e] {
				return false
			}
		}
		// Distances must not exceed the radius.
		for _, d := range n.Distance {
			if d > int(radius%5) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
