package graph

import (
	"fmt"
	"math/rand"
	"testing"
)

func indexedFixture(t *testing.T) *Graph {
	t.Helper()
	g := New()
	g.MustAddEdge("a", "x", "b")
	g.MustAddEdge("a", "x", "c")
	g.MustAddEdge("a", "y", "b")
	g.MustAddEdge("b", "x", "c")
	g.MustAddEdge("c", "y", "a")
	g.MustAddNode("iso")
	return g
}

func TestIndexedRoundTrip(t *testing.T) {
	g := indexedFixture(t)
	ix := g.Indexed()
	if ix.NumNodes() != g.NumNodes() || ix.NumLabels() != 2 {
		t.Fatalf("interned sizes = %d nodes, %d labels; want %d, 2", ix.NumNodes(), ix.NumLabels(), g.NumNodes())
	}
	for i := int32(0); i < int32(ix.NumNodes()); i++ {
		id := ix.NodeAt(i)
		back, ok := ix.IndexOf(id)
		if !ok || back != i {
			t.Fatalf("IndexOf(NodeAt(%d)) = %d, %v", i, back, ok)
		}
	}
	for l := int32(0); l < int32(ix.NumLabels()); l++ {
		lab := ix.LabelAt(l)
		back, ok := ix.LabelIndexOf(lab)
		if !ok || back != l {
			t.Fatalf("LabelIndexOf(LabelAt(%d)) = %d, %v", l, back, ok)
		}
	}
	if _, ok := ix.IndexOf("missing"); ok {
		t.Fatal("IndexOf of a missing node must report false")
	}
}

// TestIndexedAdjacencyMatchesGraph cross-checks the CSR buckets against the
// map-based adjacency on random graphs.
func TestIndexedAdjacencyMatchesGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	labels := []Label{"a", "b", "c"}
	for trial := 0; trial < 50; trial++ {
		g := New()
		n := 1 + rng.Intn(15)
		for i := 0; i < n; i++ {
			g.MustAddNode(NodeID(fmt.Sprintf("n%02d", i)))
		}
		for e := rng.Intn(4 * n); e > 0; e-- {
			g.MustAddEdge(
				NodeID(fmt.Sprintf("n%02d", rng.Intn(n))),
				labels[rng.Intn(len(labels))],
				NodeID(fmt.Sprintf("n%02d", rng.Intn(n))))
		}
		ix := g.Indexed()
		for _, id := range g.Nodes() {
			ni, _ := ix.IndexOf(id)
			for _, lab := range g.Alphabet() {
				li, _ := ix.LabelIndexOf(lab)
				want := g.OutWithLabel(id, lab)
				got := ix.Out(ni, li)
				if len(got) != len(want) {
					t.Fatalf("Out(%s, %s): %d successors, want %d", id, lab, len(got), len(want))
				}
				for k, succ := range got {
					if ix.NodeAt(succ) != want[k].To {
						t.Fatalf("Out(%s, %s)[%d] = %s, want %s", id, lab, k, ix.NodeAt(succ), want[k].To)
					}
				}
			}
			// Check In by re-deriving it from every node's out-edges.
			gotIn := 0
			for _, lab := range g.Alphabet() {
				li, _ := ix.LabelIndexOf(lab)
				gotIn += len(ix.In(ni, li))
			}
			if gotIn != g.InDegree(id) {
				t.Fatalf("in-degree of %s = %d, want %d", id, gotIn, g.InDegree(id))
			}
			if d := ix.OutDegree(ni); d != g.OutDegree(id) {
				t.Fatalf("out-degree of %s = %d, want %d", id, d, g.OutDegree(id))
			}
		}
	}
}

// TestIndexedCacheInvalidation verifies that the cached view is rebuilt
// exactly when the graph structurally changes.
func TestIndexedCacheInvalidation(t *testing.T) {
	g := indexedFixture(t)
	ix1 := g.Indexed()
	if ix2 := g.Indexed(); ix2 != ix1 {
		t.Fatal("repeated Indexed() without mutation must return the cached view")
	}
	v := g.Version()
	g.MustAddEdge("b", "y", "a")
	if g.Version() == v {
		t.Fatal("AddEdge must bump the version")
	}
	ix3 := g.Indexed()
	if ix3 == ix1 {
		t.Fatal("mutation must invalidate the cached view")
	}
	li, _ := ix3.LabelIndexOf("y")
	bi, _ := ix3.IndexOf("b")
	if len(ix3.Out(bi, li)) != 1 {
		t.Fatal("rebuilt view must contain the new edge")
	}
	// No-op mutations must not invalidate.
	v = g.Version()
	g.MustAddNode("a")
	g.MustAddEdge("b", "y", "a")
	if g.Version() != v {
		t.Fatal("no-op AddNode/AddEdge must not bump the version")
	}
	if g.Indexed() != ix3 {
		t.Fatal("no-op mutations must keep the cached view")
	}
	g.RemoveNode("iso")
	if g.Indexed() == ix3 {
		t.Fatal("RemoveNode must invalidate the cached view")
	}
}
