package graph

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// This file adds loaders for two interchange formats commonly used to ship
// labelled graphs, so that real datasets can be dropped into GPS without
// conversion scripts:
//
//   - CSV/TSV edge lists with a "from,label,to" triple per record;
//   - a triple format in the spirit of N-Triples ("<from> <label> <to> ."),
//     which covers simple RDF exports such as the geographical and
//     biological datasets the paper mentions.

// CSVOptions configures ReadCSV.
type CSVOptions struct {
	// Comma is the field separator; zero means ',' (use '\t' for TSV).
	Comma rune
	// Header skips the first record.
	Header bool
	// Columns gives the 0-based indexes of the from, label and to fields.
	// Nil means columns 0, 1, 2.
	Columns *[3]int
}

// ReadCSV parses a graph from a CSV or TSV edge list.
func ReadCSV(r io.Reader, opts CSVOptions) (*Graph, error) {
	reader := csv.NewReader(r)
	if opts.Comma != 0 {
		reader.Comma = opts.Comma
	}
	reader.FieldsPerRecord = -1
	reader.TrimLeadingSpace = true
	cols := [3]int{0, 1, 2}
	if opts.Columns != nil {
		cols = *opts.Columns
	}
	g := New()
	line := 0
	for {
		record, err := reader.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("graph: csv line %d: %w", line+1, err)
		}
		line++
		if opts.Header && line == 1 {
			continue
		}
		if len(record) == 0 || (len(record) == 1 && strings.TrimSpace(record[0]) == "") {
			continue
		}
		maxCol := cols[0]
		for _, c := range cols {
			if c > maxCol {
				maxCol = c
			}
		}
		if len(record) <= maxCol {
			return nil, fmt.Errorf("graph: csv line %d: need at least %d fields, got %d", line, maxCol+1, len(record))
		}
		from := strings.TrimSpace(record[cols[0]])
		label := strings.TrimSpace(record[cols[1]])
		to := strings.TrimSpace(record[cols[2]])
		if err := g.AddEdge(NodeID(from), Label(label), NodeID(to)); err != nil {
			return nil, fmt.Errorf("graph: csv line %d: %w", line, err)
		}
	}
	return g, nil
}

// ReadTriples parses a graph from a simple triple format: one
// "<subject> <predicate> <object> ." statement per line, where the terms
// may be written bare or wrapped in angle brackets or double quotes. Lines
// starting with '#' and blank lines are ignored. The trailing dot is
// optional.
func ReadTriples(r io.Reader) (*Graph, error) {
	g := New()
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		line = strings.TrimSuffix(strings.TrimSpace(line), ".")
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("graph: triples line %d: want 3 terms, got %d", lineNo, len(fields))
		}
		from := trimTerm(fields[0])
		label := trimTerm(fields[1])
		to := trimTerm(fields[2])
		if err := g.AddEdge(NodeID(from), Label(label), NodeID(to)); err != nil {
			return nil, fmt.Errorf("graph: triples line %d: %w", lineNo, err)
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("graph: triples: %w", err)
	}
	return g, nil
}

// trimTerm strips angle brackets or quotes from a triple term and keeps
// only the fragment/local part of an IRI (the text after the last '/' or
// '#'), which gives readable node and label names for typical RDF exports.
func trimTerm(term string) string {
	term = strings.TrimSpace(term)
	if strings.HasPrefix(term, "\"") && strings.HasSuffix(term, "\"") && len(term) >= 2 {
		return term[1 : len(term)-1]
	}
	if strings.HasPrefix(term, "<") && strings.HasSuffix(term, ">") && len(term) >= 2 {
		term = term[1 : len(term)-1]
		if idx := strings.LastIndexAny(term, "/#"); idx >= 0 && idx+1 < len(term) {
			return term[idx+1:]
		}
		return term
	}
	return term
}

// WriteCSV serialises the graph as a "from,label,to" CSV edge list.
// Isolated nodes and attributes are not representable in this format; use
// the text format to preserve them.
func (g *Graph) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	for _, e := range g.Edges() {
		if err := cw.Write([]string{string(e.From), string(e.Label), string(e.To)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
