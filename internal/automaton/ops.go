package automaton

import "sort"

// mergedAlphabet returns the union of two alphabets in sorted order.
func mergedAlphabet(a, b []string) []string {
	set := make(map[string]bool, len(a)+len(b))
	for _, l := range a {
		set[l] = true
	}
	for _, l := range b {
		set[l] = true
	}
	out := make([]string, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// expand returns a DFA over the larger alphabet that accepts the same
// language as d: new labels lead to a fresh rejecting sink.
func (d *DFA) expand(alphabet []string) *DFA {
	same := len(alphabet) == len(d.alphabet)
	if same {
		for i := range alphabet {
			if alphabet[i] != d.alphabet[i] {
				same = false
				break
			}
		}
	}
	if same {
		return d
	}
	out := NewDFA(alphabet)
	// Map old states to new: state i -> i (allocate as needed), plus sink.
	for out.NumStates() < d.NumStates() {
		out.AddState()
	}
	sink := out.AddState()
	for _, l := range alphabet {
		out.SetTransition(sink, l, sink)
	}
	for s := State(0); s < State(d.NumStates()); s++ {
		if d.accepting[s] {
			out.SetAccepting(s, true)
		}
		for _, l := range alphabet {
			if next, ok := d.Next(s, l); ok && containsLabel(d.alphabet, l) {
				out.SetTransition(s, l, next)
			} else {
				out.SetTransition(s, l, sink)
			}
		}
	}
	out.SetStart(d.start)
	return out
}

func containsLabel(labels []string, l string) bool {
	for _, x := range labels {
		if x == l {
			return true
		}
	}
	return false
}

// product builds the product DFA of a and b with the given acceptance
// combinator.
func product(a, b *DFA, accept func(bool, bool) bool) *DFA {
	alphabet := mergedAlphabet(a.alphabet, b.alphabet)
	a = a.expand(alphabet)
	b = b.expand(alphabet)
	out := NewDFA(alphabet)
	type pair struct{ x, y State }
	ids := map[pair]State{{a.start, b.start}: out.start}
	queue := []pair{{a.start, b.start}}
	setAccept := func(p pair, s State) {
		if accept(a.accepting[p.x], b.accepting[p.y]) {
			out.SetAccepting(s, true)
		}
	}
	setAccept(pair{a.start, b.start}, out.start)
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		curID := ids[cur]
		for _, l := range alphabet {
			nx, _ := a.Next(cur.x, l)
			ny, _ := b.Next(cur.y, l)
			np := pair{nx, ny}
			id, ok := ids[np]
			if !ok {
				id = out.AddState()
				ids[np] = id
				setAccept(np, id)
				queue = append(queue, np)
			}
			out.SetTransition(curID, l, id)
		}
	}
	return out
}

// Intersect returns a DFA accepting the intersection of the two languages.
func Intersect(a, b *DFA) *DFA {
	return product(a, b, func(x, y bool) bool { return x && y })
}

// UnionDFA returns a DFA accepting the union of the two languages.
func UnionDFA(a, b *DFA) *DFA {
	return product(a, b, func(x, y bool) bool { return x || y })
}

// Difference returns a DFA accepting L(a) \ L(b).
func Difference(a, b *DFA) *DFA {
	return product(a, b, func(x, y bool) bool { return x && !y })
}

// Complement returns a DFA accepting the complement of d's language with
// respect to the given alphabet (words over that alphabet not in L(d)).
func (d *DFA) Complement(alphabet []string) *DFA {
	full := mergedAlphabet(d.alphabet, alphabet)
	e := d.expand(full)
	out := NewDFA(full)
	for out.NumStates() < e.NumStates() {
		out.AddState()
	}
	for s := State(0); s < State(e.NumStates()); s++ {
		if !e.accepting[s] {
			out.SetAccepting(s, true)
		}
		for _, l := range full {
			next, _ := e.Next(s, l)
			out.SetTransition(s, l, next)
		}
	}
	out.SetStart(e.start)
	return out
}

// Subset reports whether L(a) ⊆ L(b).
func Subset(a, b *DFA) bool {
	return Difference(a, b).IsEmpty()
}

// Equivalent reports whether the two DFAs accept the same language.
func Equivalent(a, b *DFA) bool {
	return Subset(a, b) && Subset(b, a)
}

// EquivalentNFA reports whether the two NFAs accept the same language.
func EquivalentNFA(a, b *NFA) bool {
	alphabet := mergedAlphabet(a.Labels(), b.Labels())
	return Equivalent(a.Determinize(alphabet), b.Determinize(alphabet))
}

// CounterExample returns a word accepted by exactly one of the DFAs, and
// ok=false if the DFAs are equivalent.
func CounterExample(a, b *DFA) ([]string, bool) {
	if w, ok := Difference(a, b).SomeWord(); ok {
		return w, true
	}
	return Difference(b, a).SomeWord()
}
