package automaton

import (
	"sort"

	"repro/internal/regex"
)

// ToRegex converts the NFA into a regular expression denoting the same
// language, by state elimination on a generalised NFA whose transitions
// carry expressions. The result is the learner's human-readable output.
func (n *NFA) ToRegex() *regex.Expr {
	if len(n.accepting) == 0 {
		return regex.Empty()
	}
	// Generalised NFA with fresh initial and final states.
	type key struct{ from, to State }
	edges := make(map[key]*regex.Expr)
	addEdge := func(from, to State, e *regex.Expr) {
		if e == nil || e.Kind == regex.KindEmpty {
			return
		}
		if existing, ok := edges[key{from, to}]; ok {
			edges[key{from, to}] = regex.Union(existing, e)
		} else {
			edges[key{from, to}] = e
		}
	}

	// States are 0..numStates-1; use numStates as the new start and
	// numStates+1 as the new single accepting state.
	newStart := State(n.numStates)
	newAccept := State(n.numStates + 1)
	addEdge(newStart, n.start, regex.Eps())
	for s := range n.accepting {
		addEdge(s, newAccept, regex.Eps())
	}
	for from := State(0); from < State(n.numStates); from++ {
		for label, targets := range n.trans[from] {
			var e *regex.Expr
			if label == Epsilon {
				e = regex.Eps()
			} else {
				e = regex.Sym(label)
			}
			for _, to := range targets {
				addEdge(from, to, e)
			}
		}
	}

	// Eliminate internal states one by one, in increasing order.
	order := make([]State, 0, n.numStates)
	for s := State(0); s < State(n.numStates); s++ {
		order = append(order, s)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })

	for _, victim := range order {
		// Self loop on the victim.
		selfLoop := edges[key{victim, victim}]
		var loop *regex.Expr
		if selfLoop != nil {
			loop = regex.Star(selfLoop)
		} else {
			loop = regex.Eps()
		}
		// Incoming and outgoing edges (excluding self loops).
		var ins, outs []key
		for k := range edges {
			if k.to == victim && k.from != victim {
				ins = append(ins, k)
			}
			if k.from == victim && k.to != victim {
				outs = append(outs, k)
			}
		}
		sort.Slice(ins, func(i, j int) bool { return ins[i].from < ins[j].from })
		sort.Slice(outs, func(i, j int) bool { return outs[i].to < outs[j].to })
		for _, in := range ins {
			for _, out := range outs {
				bridge := regex.Concat(edges[in], loop, edges[out])
				addEdge(in.from, out.to, bridge)
			}
		}
		// Remove all edges touching the victim.
		for k := range edges {
			if k.from == victim || k.to == victim {
				delete(edges, k)
			}
		}
	}

	if e, ok := edges[key{newStart, newAccept}]; ok {
		return simplifyEps(e)
	}
	return regex.Empty()
}

// simplifyEps removes redundant ε members produced by state elimination,
// e.g. "eps.a" is already handled by the smart constructors, but unions
// such as "eps+a.a*" can be rewritten to "a*". The rewrite is conservative:
// it only applies simplifications that preserve the language.
func simplifyEps(e *regex.Expr) *regex.Expr {
	if e == nil {
		return regex.Empty()
	}
	switch e.Kind {
	case regex.KindUnion:
		subs := make([]*regex.Expr, 0, len(e.Subs))
		hasEps := false
		for _, s := range e.Subs {
			s = simplifyEps(s)
			if s.Kind == regex.KindEps {
				hasEps = true
				continue
			}
			subs = append(subs, s)
		}
		if !hasEps {
			return regex.Union(subs...)
		}
		// eps + r⁺  =>  r*, eps + r => r?  (r not nullable), eps + r => r
		// (r nullable).
		if len(subs) == 1 {
			s := subs[0]
			if s.Kind == regex.KindPlus {
				return regex.Star(s.Sub)
			}
			if s.Nullable() {
				return s
			}
			return regex.Opt(s)
		}
		u := regex.Union(subs...)
		if u.Nullable() {
			return u
		}
		return regex.Opt(u)
	case regex.KindConcat:
		subs := make([]*regex.Expr, len(e.Subs))
		for i, s := range e.Subs {
			subs[i] = simplifyEps(s)
		}
		return regex.Concat(subs...)
	case regex.KindStar:
		return regex.Star(simplifyEps(e.Sub))
	case regex.KindPlus:
		return regex.Plus(simplifyEps(e.Sub))
	case regex.KindOpt:
		return regex.Opt(simplifyEps(e.Sub))
	}
	return e
}
