package automaton

// Dense access to the NFA transition relation. The NFA stores its
// transitions in nested maps keyed by label strings, which is flexible for
// construction but hostile to hot loops: the learner's generalisation step
// probes the same prefix-tree automaton once per (candidate merge × product
// configuration × label), and each probe through the map API costs a string
// hash plus a sorted copy of the successor slice.
//
// DenseNFA freezes an NFA into flat integer-indexed tables, mirroring what
// dense.go does for the DFA: labels are interned into a dense index, the
// successor relation is laid out in CSR buckets by (state, label index),
// ε-closures are precomputed per state, and acceptance is a flat mask. The
// view is immutable once built and safe for concurrent use; it reflects the
// NFA at the time of the Dense call.

import "sort"

// DenseNFA is an immutable, integer-indexed view of an NFA.
type DenseNFA struct {
	numStates int
	start     State
	labels    []string
	labelIdx  map[string]int
	accepting []bool
	// CSR successors: succ[succStart[b]:succStart[b+1]] lists the states
	// reachable from state s under label l, sorted, for bucket
	// b = s*numLabels + l. ε-transitions are not included here.
	succStart []int32
	succ      []State
	// CSR ε-closures: eps[epsStart[s]:epsStart[s+1]] is the sorted
	// ε-closure of state s (always contains s itself).
	epsStart []int32
	eps      []State
	hasEps   bool
}

// Dense builds the dense view of the NFA. Build cost is linear in states ×
// alphabet plus the closure computation; callers build it once per
// algorithm run (e.g. once per Learn call) and then probe it inside their
// hot loops.
func (n *NFA) Dense() *DenseNFA {
	labels := n.Labels()
	d := &DenseNFA{
		numStates: n.numStates,
		start:     n.start,
		labels:    labels,
		labelIdx:  make(map[string]int, len(labels)),
		accepting: make([]bool, n.numStates),
	}
	for i, l := range labels {
		d.labelIdx[l] = i
	}
	for s := range n.accepting {
		if int(s) < n.numStates {
			d.accepting[s] = true
		}
	}
	m := len(labels)
	d.succStart = make([]int32, n.numStates*m+1)
	for s, byLabel := range n.trans {
		for l, targets := range byLabel {
			if l == Epsilon {
				d.hasEps = true
				continue
			}
			d.succStart[int(s)*m+d.labelIdx[l]+1] += int32(len(targets))
		}
	}
	for b := 1; b < len(d.succStart); b++ {
		d.succStart[b] += d.succStart[b-1]
	}
	d.succ = make([]State, d.succStart[len(d.succStart)-1])
	fill := make([]int32, n.numStates*m)
	copy(fill, d.succStart[:n.numStates*m])
	for s, byLabel := range n.trans {
		for l, targets := range byLabel {
			if l == Epsilon {
				continue
			}
			b := int(s)*m + d.labelIdx[l]
			for _, t := range targets {
				d.succ[fill[b]] = t
				fill[b]++
			}
		}
	}
	// Match the sorted order of NFA.Successors within each bucket.
	for b := 0; b < n.numStates*m; b++ {
		bucket := d.succ[d.succStart[b]:d.succStart[b+1]]
		sort.Slice(bucket, func(i, j int) bool { return bucket[i] < bucket[j] })
	}
	d.epsStart = make([]int32, n.numStates+1)
	if d.hasEps {
		closures := make([][]State, n.numStates)
		total := 0
		for s := 0; s < n.numStates; s++ {
			closures[s] = n.EpsilonClosure([]State{State(s)})
			total += len(closures[s])
		}
		d.eps = make([]State, 0, total)
		for s, cl := range closures {
			d.eps = append(d.eps, cl...)
			d.epsStart[s+1] = int32(len(d.eps))
		}
	} else {
		// Without ε-transitions every closure is the singleton state.
		d.eps = make([]State, n.numStates)
		for s := 0; s < n.numStates; s++ {
			d.eps[s] = State(s)
			d.epsStart[s+1] = int32(s + 1)
		}
	}
	return d
}

// NumStates returns the number of states.
func (d *DenseNFA) NumStates() int { return d.numStates }

// NumLabels returns the alphabet size (ε excluded).
func (d *DenseNFA) NumLabels() int { return len(d.labels) }

// Start returns the start state.
func (d *DenseNFA) Start() State { return d.start }

// HasEpsilon reports whether the underlying NFA has any ε-transition.
func (d *DenseNFA) HasEpsilon() bool { return d.hasEps }

// LabelIndex returns the dense index of a label in the view's alphabet.
func (d *DenseNFA) LabelIndex(label string) (int, bool) {
	i, ok := d.labelIdx[label]
	return i, ok
}

// LabelAt returns the label interned as index l.
func (d *DenseNFA) LabelAt(l int) string { return d.labels[l] }

// IsAccepting reports whether the state accepts.
func (d *DenseNFA) IsAccepting(s State) bool { return d.accepting[s] }

// Successors returns the states reachable from s under the label with the
// given dense index, as a shared sorted slice view. The caller must not
// modify it.
func (d *DenseNFA) Successors(s State, labelIdx int) []State {
	b := int(s)*len(d.labels) + labelIdx
	return d.succ[d.succStart[b]:d.succStart[b+1]]
}

// Closure returns the precomputed ε-closure of s (including s itself) as a
// shared sorted slice view. The caller must not modify it.
func (d *DenseNFA) Closure(s State) []State {
	return d.eps[d.epsStart[s]:d.epsStart[s+1]]
}
