package automaton

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/regex"
)

func TestNFAFromRegexAcceptsGoalQuery(t *testing.T) {
	q := regex.MustParse("(tram+bus)*.cinema")
	n := FromRegex(q)
	accept := [][]string{
		{"cinema"},
		{"tram", "cinema"},
		{"bus", "tram", "cinema"},
		{"bus", "bus", "bus", "cinema"},
	}
	reject := [][]string{
		{},
		{"tram"},
		{"cinema", "cinema"},
		{"restaurant"},
	}
	for _, w := range accept {
		if !n.Accepts(w) {
			t.Errorf("NFA should accept %v", w)
		}
	}
	for _, w := range reject {
		if n.Accepts(w) {
			t.Errorf("NFA should reject %v", w)
		}
	}
}

func TestNFAClosuresAndClone(t *testing.T) {
	n := NewNFA()
	a := n.AddState()
	b := n.AddState()
	n.AddTransition(n.Start(), Epsilon, a)
	n.AddTransition(a, Epsilon, b)
	n.AddTransition(b, "x", a)
	n.SetAccepting(b, true)
	closure := n.EpsilonClosure([]State{n.Start()})
	if !reflect.DeepEqual(closure, []State{0, 1, 2}) {
		t.Fatalf("closure = %v", closure)
	}
	if !n.Accepts(nil) {
		t.Fatal("empty word should be accepted through epsilon closure")
	}
	c := n.Clone()
	c.SetAccepting(b, false)
	if !n.IsAccepting(b) {
		t.Fatal("clone mutation leaked into original")
	}
	if got := n.Labels(); !reflect.DeepEqual(got, []string{"x"}) {
		t.Fatalf("Labels = %v", got)
	}
	if !strings.Contains(n.String(), "ε") {
		t.Fatal("String should render epsilon transitions")
	}
}

func TestNFADuplicateTransitionIgnored(t *testing.T) {
	n := NewNFA()
	s := n.AddState()
	n.AddTransition(n.Start(), "a", s)
	n.AddTransition(n.Start(), "a", s)
	if got := n.Successors(n.Start(), "a"); len(got) != 1 {
		t.Fatalf("duplicate transition stored: %v", got)
	}
}

func TestFromWordsPrefixTreeAcceptor(t *testing.T) {
	words := [][]string{
		{"bus", "tram", "cinema"},
		{"cinema"},
		{"bus", "bus", "cinema"},
	}
	pta := FromWords(words)
	for _, w := range words {
		if !pta.Accepts(w) {
			t.Errorf("PTA should accept %v", w)
		}
	}
	for _, w := range [][]string{{}, {"bus"}, {"bus", "tram"}, {"tram", "cinema"}} {
		if pta.Accepts(w) {
			t.Errorf("PTA should reject %v", w)
		}
	}
	// A PTA over k words with total length L has at most L+1 states.
	if pta.NumStates() > 8 {
		t.Fatalf("PTA has %d states, expected prefix sharing", pta.NumStates())
	}
}

func TestFromWordsEmptyWord(t *testing.T) {
	pta := FromWords([][]string{{}})
	if !pta.Accepts(nil) {
		t.Fatal("PTA of the empty word should accept it")
	}
	if pta.Accepts([]string{"a"}) {
		t.Fatal("PTA should reject other words")
	}
}

func TestDeterminizeMatchesNFA(t *testing.T) {
	exprs := []string{
		"(tram+bus)*.cinema",
		"a.b.c",
		"(a+b)^+",
		"a?.b*",
		"empty",
		"eps",
	}
	words := [][]string{
		{}, {"a"}, {"b"}, {"a", "b"}, {"a", "b", "c"}, {"cinema"},
		{"tram", "cinema"}, {"bus", "bus", "cinema"}, {"a", "a", "b"},
	}
	for _, es := range exprs {
		e := regex.MustParse(es)
		n := FromRegex(e)
		d := n.Determinize([]string{"a", "b", "c", "tram", "bus", "cinema"})
		for _, w := range words {
			if n.Accepts(w) != d.Accepts(w) {
				t.Errorf("expr %q word %v: NFA=%v DFA=%v", es, w, n.Accepts(w), d.Accepts(w))
			}
			if e.Matches(w) != d.Accepts(w) {
				t.Errorf("expr %q word %v: regex=%v DFA=%v", es, w, e.Matches(w), d.Accepts(w))
			}
		}
	}
}

func TestDFAUnknownLabelRejected(t *testing.T) {
	d := FromRegex(regex.MustParse("a*")).Determinize([]string{"a"})
	if d.Accepts([]string{"z"}) {
		t.Fatal("word with unknown label must be rejected")
	}
	if _, ok := d.Next(d.Start(), "z"); ok {
		t.Fatal("Next on unknown label should report !ok")
	}
}

func TestDFASetTransitionPanicsOnUnknownLabel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d := NewDFA([]string{"a"})
	d.SetTransition(d.Start(), "z", d.Start())
}

func TestMinimizePreservesLanguageAndShrinks(t *testing.T) {
	e := regex.MustParse("(a+b)*.a.(a+b)")
	n := FromRegex(e)
	d := n.Determinize([]string{"a", "b"})
	m := d.Minimize()
	if m.NumStates() > d.NumStates() {
		t.Fatalf("minimize grew the DFA: %d -> %d", d.NumStates(), m.NumStates())
	}
	if !Equivalent(d, m) {
		t.Fatal("minimized DFA not equivalent")
	}
	// The canonical DFA for this language has 4 reachable+distinguishable
	// states plus possibly a sink; allow a small bound.
	if m.NumStates() > 5 {
		t.Fatalf("minimal DFA too large: %d states\n%s", m.NumStates(), m.String())
	}
}

func TestMinimizeEmptyAndUniversal(t *testing.T) {
	empty := FromRegex(regex.Empty()).Determinize([]string{"a"})
	if !empty.IsEmpty() {
		t.Fatal("empty regex should give empty DFA")
	}
	min := empty.Minimize()
	if !min.IsEmpty() || min.NumStates() != 1 {
		t.Fatalf("minimal empty DFA should have 1 state, got %d", min.NumStates())
	}
	all := FromRegex(regex.MustParse("(a+b)*")).Determinize([]string{"a", "b"}).Minimize()
	if all.NumStates() != 1 || !all.Accepts([]string{"a", "b", "a"}) {
		t.Fatalf("universal language should minimize to 1 state, got %d", all.NumStates())
	}
}

func TestBooleanOperations(t *testing.T) {
	a := FromRegex(regex.MustParse("a.b*")).Determinize([]string{"a", "b"})
	b := FromRegex(regex.MustParse("a.b")).Determinize([]string{"a", "b"})
	inter := Intersect(a, b)
	if !inter.Accepts([]string{"a", "b"}) || inter.Accepts([]string{"a"}) {
		t.Fatal("intersection wrong")
	}
	uni := UnionDFA(a, b)
	if !uni.Accepts([]string{"a"}) || !uni.Accepts([]string{"a", "b"}) || uni.Accepts([]string{"b"}) {
		t.Fatal("union wrong")
	}
	diff := Difference(a, b)
	if !diff.Accepts([]string{"a"}) || diff.Accepts([]string{"a", "b"}) {
		t.Fatal("difference wrong")
	}
	comp := b.Complement([]string{"a", "b"})
	if comp.Accepts([]string{"a", "b"}) || !comp.Accepts([]string{"b"}) || !comp.Accepts(nil) {
		t.Fatal("complement wrong")
	}
}

func TestBooleanOperationsDifferentAlphabets(t *testing.T) {
	a := FromRegex(regex.MustParse("a")).Determinize([]string{"a"})
	b := FromRegex(regex.MustParse("b")).Determinize([]string{"b"})
	uni := UnionDFA(a, b)
	if !uni.Accepts([]string{"a"}) || !uni.Accepts([]string{"b"}) || uni.Accepts([]string{"a", "b"}) {
		t.Fatal("union across alphabets wrong")
	}
	if !Intersect(a, b).IsEmpty() {
		t.Fatal("intersection of disjoint languages should be empty")
	}
}

func TestSubsetEquivalentCounterExample(t *testing.T) {
	small := FromRegex(regex.MustParse("a.b")).Determinize([]string{"a", "b"})
	big := FromRegex(regex.MustParse("a.b*")).Determinize([]string{"a", "b"})
	if !Subset(small, big) {
		t.Fatal("a.b ⊆ a.b* should hold")
	}
	if Subset(big, small) {
		t.Fatal("a.b* ⊄ a.b")
	}
	if Equivalent(small, big) {
		t.Fatal("languages differ")
	}
	w, ok := CounterExample(small, big)
	if !ok {
		t.Fatal("counterexample expected")
	}
	if small.Accepts(w) == big.Accepts(w) {
		t.Fatalf("returned word %v is not a counterexample", w)
	}
	if _, ok := CounterExample(small, small); ok {
		t.Fatal("no counterexample for identical DFAs")
	}
	if !EquivalentNFA(FromRegex(regex.MustParse("a.b+a")), FromRegex(regex.MustParse("a.(b+eps)"))) {
		t.Fatal("NFA equivalence wrong")
	}
}

func TestSomeWordShortest(t *testing.T) {
	d := FromRegex(regex.MustParse("(a.a.a)+b")).Determinize([]string{"a", "b"})
	w, ok := d.SomeWord()
	if !ok {
		t.Fatal("language not empty")
	}
	if len(w) != 1 || w[0] != "b" {
		t.Fatalf("shortest word should be [b], got %v", w)
	}
	empty := FromRegex(regex.Empty()).Determinize([]string{"a"})
	if _, ok := empty.SomeWord(); ok {
		t.Fatal("empty language has no word")
	}
}

func TestQuotientMergesStates(t *testing.T) {
	// PTA for {a.b, a.c}; merging the two leaves yields the same language.
	pta := FromWords([][]string{{"a", "b"}, {"a", "c"}})
	acc := pta.AcceptingStates()
	if len(acc) != 2 {
		t.Fatalf("expected 2 accepting states, got %v", acc)
	}
	q := pta.Quotient(map[State]State{acc[1]: acc[0]})
	if q.NumStates() != pta.NumStates()-1 {
		t.Fatalf("quotient should drop one state: %d -> %d", pta.NumStates(), q.NumStates())
	}
	for _, w := range [][]string{{"a", "b"}, {"a", "c"}} {
		if !q.Accepts(w) {
			t.Errorf("quotient should still accept %v", w)
		}
	}
	if q.Accepts([]string{"a"}) {
		t.Error("quotient should not accept a")
	}
}

func TestQuotientFollowsChains(t *testing.T) {
	pta := FromWords([][]string{{"a"}, {"b"}, {"c"}})
	acc := pta.AcceptingStates()
	// Chain: acc2 -> acc1 -> acc0.
	q := pta.Quotient(map[State]State{acc[2]: acc[1], acc[1]: acc[0]})
	if q.NumStates() != pta.NumStates()-2 {
		t.Fatalf("chained quotient wrong size: %d", q.NumStates())
	}
	for _, w := range [][]string{{"a"}, {"b"}, {"c"}} {
		if !q.Accepts(w) {
			t.Errorf("quotient should accept %v", w)
		}
	}
}

func TestToRegexRoundTrip(t *testing.T) {
	exprs := []string{
		"a",
		"a.b",
		"a+b",
		"a*",
		"(a+b)*.c",
		"a.(b+c)*.d",
		"a^+",
		"a?",
		"eps",
		"empty",
	}
	for _, es := range exprs {
		e := regex.MustParse(es)
		n := FromRegex(e)
		back := n.ToRegex()
		if !EquivalentNFA(n, FromRegex(back)) {
			t.Errorf("ToRegex of %q produced %q which is not equivalent", es, back.String())
		}
	}
}

func TestToRegexOfPTA(t *testing.T) {
	pta := FromWords([][]string{{"bus", "tram", "cinema"}, {"cinema"}})
	e := pta.ToRegex()
	if !e.Matches([]string{"cinema"}) || !e.Matches([]string{"bus", "tram", "cinema"}) {
		t.Fatalf("PTA regex %q must match the words", e.String())
	}
	if e.Matches([]string{"bus"}) {
		t.Fatalf("PTA regex %q must not over-generalize", e.String())
	}
}

func TestToRegexNoAccepting(t *testing.T) {
	n := NewNFA()
	if n.ToRegex().Kind != regex.KindEmpty {
		t.Fatal("automaton with no accepting state denotes the empty language")
	}
}

// --- property tests -------------------------------------------------------

func randomExpr(r *rand.Rand, depth int) *regex.Expr {
	labels := []string{"a", "b", "c"}
	if depth <= 0 {
		return regex.Sym(labels[r.Intn(len(labels))])
	}
	switch r.Intn(6) {
	case 0:
		return regex.Concat(randomExpr(r, depth-1), randomExpr(r, depth-1))
	case 1:
		return regex.Union(randomExpr(r, depth-1), randomExpr(r, depth-1))
	case 2:
		return regex.Star(randomExpr(r, depth-1))
	case 3:
		return regex.Plus(randomExpr(r, depth-1))
	case 4:
		return regex.Opt(randomExpr(r, depth-1))
	default:
		return regex.Sym(labels[r.Intn(len(labels))])
	}
}

func randomWord(r *rand.Rand, maxLen int) []string {
	labels := []string{"a", "b", "c"}
	w := make([]string, r.Intn(maxLen+1))
	for i := range w {
		w[i] = labels[r.Intn(len(labels))]
	}
	return w
}

func TestPropertyNFAMatchesDerivatives(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := randomExpr(r, 3)
		n := FromRegex(e)
		for i := 0; i < 8; i++ {
			w := randomWord(r, 5)
			if n.Accepts(w) != e.Matches(w) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDeterminizeMinimizePreserve(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := randomExpr(r, 3)
		n := FromRegex(e)
		d := n.Determinize([]string{"a", "b", "c"})
		m := d.Minimize()
		for i := 0; i < 8; i++ {
			w := randomWord(r, 5)
			want := e.Matches(w)
			if d.Accepts(w) != want || m.Accepts(w) != want {
				return false
			}
		}
		return m.NumStates() <= d.NumStates()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyToRegexPreservesLanguage(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := randomExpr(r, 2)
		n := FromRegex(e)
		back := n.ToRegex()
		for i := 0; i < 8; i++ {
			w := randomWord(r, 4)
			if e.Matches(w) != back.Matches(w) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDeMorgan(t *testing.T) {
	// complement(L1 ∪ L2) == complement(L1) ∩ complement(L2) on sample words.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		alphabet := []string{"a", "b", "c"}
		e1, e2 := randomExpr(r, 2), randomExpr(r, 2)
		d1 := FromRegex(e1).Determinize(alphabet)
		d2 := FromRegex(e2).Determinize(alphabet)
		lhs := UnionDFA(d1, d2).Complement(alphabet)
		rhs := Intersect(d1.Complement(alphabet), d2.Complement(alphabet))
		return Equivalent(lhs, rhs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyQuotientOnlyGeneralizes(t *testing.T) {
	// Merging states can only grow the language: every originally accepted
	// word must still be accepted.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var words [][]string
		for i := 0; i < 4; i++ {
			words = append(words, randomWord(r, 4))
		}
		pta := FromWords(words)
		if pta.NumStates() < 2 {
			return true
		}
		a := State(r.Intn(pta.NumStates()))
		b := State(r.Intn(pta.NumStates()))
		if a == b {
			return true
		}
		q := pta.Quotient(map[State]State{b: a})
		for _, w := range words {
			if !q.Accepts(w) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
