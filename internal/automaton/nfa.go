// Package automaton implements the finite-automaton toolkit that backs GPS:
// Thompson construction from path regular expressions, prefix-tree
// acceptors over witness paths, subset-construction determinisation,
// Hopcroft minimisation, boolean operations, language emptiness,
// containment and equivalence, state-merging quotients (used by the
// learner's generalisation step) and state-elimination conversion back to
// a regular expression.
//
// Words are sequences of edge labels ([]string); the alphabet is the finite
// set of labels appearing in the graph or the expression.
package automaton

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/regex"
)

// State identifies an automaton state. States are small dense integers.
type State int

// Epsilon is the reserved label for ε-transitions inside NFAs.
const Epsilon = ""

// NFA is a nondeterministic finite automaton with ε-transitions, a single
// start state and a set of accepting states.
type NFA struct {
	numStates int
	start     State
	accepting map[State]bool
	// trans[state][label] -> successor states (sorted, deduplicated lazily).
	trans map[State]map[string][]State
}

// NewNFA returns an NFA with a single (non-accepting) start state.
func NewNFA() *NFA {
	n := &NFA{
		accepting: make(map[State]bool),
		trans:     make(map[State]map[string][]State),
	}
	n.start = n.AddState()
	return n
}

// AddState adds a fresh state and returns it.
func (n *NFA) AddState() State {
	s := State(n.numStates)
	n.numStates++
	return s
}

// NumStates returns the number of states.
func (n *NFA) NumStates() int { return n.numStates }

// Start returns the start state.
func (n *NFA) Start() State { return n.start }

// SetStart changes the start state.
func (n *NFA) SetStart(s State) { n.start = s }

// SetAccepting marks a state accepting or not.
func (n *NFA) SetAccepting(s State, accepting bool) {
	if accepting {
		n.accepting[s] = true
	} else {
		delete(n.accepting, s)
	}
}

// IsAccepting reports whether the state accepts.
func (n *NFA) IsAccepting(s State) bool { return n.accepting[s] }

// AcceptingStates returns the sorted accepting states.
func (n *NFA) AcceptingStates() []State {
	out := make([]State, 0, len(n.accepting))
	for s := range n.accepting {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AddTransition adds a labelled transition. Label Epsilon ("") adds an
// ε-transition. Duplicate transitions are ignored.
func (n *NFA) AddTransition(from State, label string, to State) {
	m := n.trans[from]
	if m == nil {
		m = make(map[string][]State)
		n.trans[from] = m
	}
	for _, existing := range m[label] {
		if existing == to {
			return
		}
	}
	m[label] = append(m[label], to)
}

// Successors returns the states reachable from s by a transition with the
// given label (ε not included unless label is Epsilon).
func (n *NFA) Successors(s State, label string) []State {
	succ := append([]State(nil), n.trans[s][label]...)
	sort.Slice(succ, func(i, j int) bool { return succ[i] < succ[j] })
	return succ
}

// Labels returns the sorted set of non-ε labels used on transitions.
func (n *NFA) Labels() []string {
	set := make(map[string]bool)
	for _, m := range n.trans {
		for label := range m {
			if label != Epsilon {
				set[label] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// EpsilonClosure returns the ε-closure of the given set of states.
func (n *NFA) EpsilonClosure(states []State) []State {
	seen := make(map[State]bool, len(states))
	stack := append([]State(nil), states...)
	for _, s := range states {
		seen[s] = true
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, next := range n.trans[s][Epsilon] {
			if !seen[next] {
				seen[next] = true
				stack = append(stack, next)
			}
		}
	}
	out := make([]State, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Accepts reports whether the NFA accepts the word.
func (n *NFA) Accepts(word []string) bool {
	current := n.EpsilonClosure([]State{n.start})
	for _, label := range word {
		nextSet := make(map[State]bool)
		for _, s := range current {
			for _, t := range n.trans[s][label] {
				nextSet[t] = true
			}
		}
		if len(nextSet) == 0 {
			return false
		}
		next := make([]State, 0, len(nextSet))
		for s := range nextSet {
			next = append(next, s)
		}
		current = n.EpsilonClosure(next)
	}
	for _, s := range current {
		if n.accepting[s] {
			return true
		}
	}
	return false
}

// String renders the NFA for debugging.
func (n *NFA) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "NFA states=%d start=%d accepting=%v\n", n.numStates, n.start, n.AcceptingStates())
	for s := State(0); s < State(n.numStates); s++ {
		m := n.trans[s]
		labels := make([]string, 0, len(m))
		for l := range m {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		for _, l := range labels {
			name := l
			if l == Epsilon {
				name = "ε"
			}
			fmt.Fprintf(&sb, "  %d -%s-> %v\n", s, name, n.Successors(s, l))
		}
	}
	return sb.String()
}

// Clone returns a deep copy of the NFA.
func (n *NFA) Clone() *NFA {
	c := &NFA{
		numStates: n.numStates,
		start:     n.start,
		accepting: make(map[State]bool, len(n.accepting)),
		trans:     make(map[State]map[string][]State, len(n.trans)),
	}
	for s := range n.accepting {
		c.accepting[s] = true
	}
	for s, m := range n.trans {
		cm := make(map[string][]State, len(m))
		for l, targets := range m {
			cm[l] = append([]State(nil), targets...)
		}
		c.trans[s] = cm
	}
	return c
}

// FromRegex builds an NFA accepting exactly the language of the expression
// using Thompson's construction.
func FromRegex(e *regex.Expr) *NFA {
	n := NewNFA()
	accept := n.AddState()
	n.SetAccepting(accept, true)
	n.build(e, n.start, accept)
	return n
}

// build wires the fragment for e between states from and to.
func (n *NFA) build(e *regex.Expr, from, to State) {
	if e == nil {
		return // empty language: no transitions at all
	}
	switch e.Kind {
	case regex.KindEmpty:
		// No transitions: the fragment accepts nothing.
	case regex.KindEps:
		n.AddTransition(from, Epsilon, to)
	case regex.KindLabel:
		n.AddTransition(from, e.Label, to)
	case regex.KindConcat:
		prev := from
		for i, sub := range e.Subs {
			var next State
			if i == len(e.Subs)-1 {
				next = to
			} else {
				next = n.AddState()
			}
			n.build(sub, prev, next)
			prev = next
		}
		if len(e.Subs) == 0 {
			n.AddTransition(from, Epsilon, to)
		}
	case regex.KindUnion:
		for _, sub := range e.Subs {
			n.build(sub, from, to)
		}
	case regex.KindStar:
		mid := n.AddState()
		n.AddTransition(from, Epsilon, mid)
		n.AddTransition(mid, Epsilon, to)
		n.build(e.Sub, mid, mid)
	case regex.KindPlus:
		mid := n.AddState()
		n.build(e.Sub, from, mid)
		n.build(e.Sub, mid, mid)
		n.AddTransition(mid, Epsilon, to)
	case regex.KindOpt:
		n.AddTransition(from, Epsilon, to)
		n.build(e.Sub, from, to)
	}
}

// FromWords builds a prefix-tree acceptor (PTA): a tree-shaped DFA-like NFA
// accepting exactly the given words. This is the starting point of the
// learner's generalisation step.
func FromWords(words [][]string) *NFA {
	n := NewNFA()
	// children[state][label] -> child state.
	children := map[State]map[string]State{n.start: {}}
	for _, w := range words {
		cur := n.start
		for _, label := range w {
			kids := children[cur]
			if kids == nil {
				kids = make(map[string]State)
				children[cur] = kids
			}
			next, ok := kids[label]
			if !ok {
				next = n.AddState()
				kids[label] = next
				n.AddTransition(cur, label, next)
			}
			cur = next
		}
		n.SetAccepting(cur, true)
	}
	return n
}

// Quotient returns the automaton obtained by merging states according to
// the partition: partition[s] gives the block representative of state s.
// Any state not present maps to itself. The start state maps to its block;
// a block is accepting if any of its members is.
func (n *NFA) Quotient(partition map[State]State) *NFA {
	rep := func(s State) State {
		if r, ok := partition[s]; ok {
			return r
		}
		return s
	}
	// Normalise representatives to canonical roots (follow chains).
	root := func(s State) State {
		cur := s
		for {
			r := rep(cur)
			if r == cur {
				return cur
			}
			cur = r
		}
	}
	// Renumber blocks densely.
	blockOf := make(map[State]State)
	q := &NFA{
		accepting: make(map[State]bool),
		trans:     make(map[State]map[string][]State),
	}
	getBlock := func(s State) State {
		r := root(s)
		if b, ok := blockOf[r]; ok {
			return b
		}
		b := State(q.numStates)
		q.numStates++
		blockOf[r] = b
		return b
	}
	// Number every block up front — the start state's first, then in
	// first-touch order over ascending states — so the numbering does not
	// depend on the map-iteration order of the transition labels below.
	// Quotients are therefore deterministic for a given partition, which
	// the learner's "byte-identical at any Parallelism" guarantee (and the
	// service's deterministic crash-resume replay) relies on.
	q.start = getBlock(n.start)
	for s := State(0); s < State(n.numStates); s++ {
		getBlock(s)
	}
	for s := State(0); s < State(n.numStates); s++ {
		b := getBlock(s)
		if n.accepting[s] {
			q.accepting[b] = true
		}
		for label, targets := range n.trans[s] {
			for _, t := range targets {
				q.AddTransition(b, label, getBlock(t))
			}
		}
	}
	return q
}
