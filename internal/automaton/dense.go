package automaton

// Dense access to the DFA transition relation for the integer-indexed
// evaluation core. The DFA already stores its transitions as a flat
// [numStates × numLabels] table; the methods here expose that layout by
// label index (no string hashing on the hot path) together with a
// precomputed reverse table for backward product reachability.

// NumLabels returns the alphabet size.
func (d *DFA) NumLabels() int { return len(d.alphabet) }

// LabelIndex returns the dense index of a label in the DFA alphabet.
func (d *DFA) LabelIndex(label string) (int, bool) {
	i, ok := d.labelIndex[label]
	return i, ok
}

// NextByIndex returns the successor of state from under the label with the
// given dense index. The index must be in [0, NumLabels).
func (d *DFA) NextByIndex(from State, labelIdx int) State {
	return d.trans[int(from)*len(d.alphabet)+labelIdx]
}

// AcceptingMask returns a dense accepting-state mask indexed by State.
func (d *DFA) AcceptingMask() []bool {
	mask := make([]bool, d.numStates)
	for s := range d.accepting {
		if int(s) < d.numStates {
			mask[s] = true
		}
	}
	return mask
}

// ReverseTransitions is the reverse of a DFA's transition table in CSR
// layout: for a (state, label) pair it lists every state whose successor
// under that label is the state. It is immutable once built and safe for
// concurrent use.
type ReverseTransitions struct {
	numLabels int
	// pred[start[s*numLabels+l] : start[s*numLabels+l+1]] are the states q
	// with q -l-> s.
	start []int32
	pred  []State
}

// Reverse builds the reverse transition table of the DFA. It reflects the
// transition relation at the time of the call; callers build it after the
// DFA is fully constructed.
func (d *DFA) Reverse() *ReverseTransitions {
	n, m := d.numStates, len(d.alphabet)
	rt := &ReverseTransitions{
		numLabels: m,
		start:     make([]int32, n*m+1),
		pred:      make([]State, len(d.trans)),
	}
	// Counting sort over the forward table: every (q, l) contributes one
	// entry to bucket (trans[q,l], l).
	for q := 0; q < n; q++ {
		for l := 0; l < m; l++ {
			s := d.trans[q*m+l]
			rt.start[int(s)*m+l+1]++
		}
	}
	for b := 1; b < len(rt.start); b++ {
		rt.start[b] += rt.start[b-1]
	}
	fill := make([]int32, n*m)
	copy(fill, rt.start[:n*m])
	for q := 0; q < n; q++ {
		for l := 0; l < m; l++ {
			s := d.trans[q*m+l]
			b := int(s)*m + l
			rt.pred[fill[b]] = State(q)
			fill[b]++
		}
	}
	return rt
}

// Pred returns the predecessor states of (state, labelIdx) as a shared
// slice view. The caller must not modify it.
func (rt *ReverseTransitions) Pred(state State, labelIdx int) []State {
	b := int(state)*rt.numLabels + labelIdx
	return rt.pred[rt.start[b]:rt.start[b+1]]
}
