package automaton

import (
	"fmt"
	"sort"
	"strings"
)

// DFA is a deterministic finite automaton over an explicit alphabet. Every
// state has exactly one successor per alphabet label (a complete DFA); a
// dedicated sink state absorbs missing transitions.
type DFA struct {
	alphabet  []string
	numStates int
	start     State
	accepting map[State]bool
	// trans[state*len(alphabet)+labelIndex] = successor.
	trans      []State
	labelIndex map[string]int
}

// NewDFA returns a DFA over the given alphabet with a single start state
// whose transitions all point to itself (so the empty DFA rejects
// everything once the start state is non-accepting).
func NewDFA(alphabet []string) *DFA {
	sorted := append([]string(nil), alphabet...)
	sort.Strings(sorted)
	d := &DFA{
		alphabet:   sorted,
		accepting:  make(map[State]bool),
		labelIndex: make(map[string]int, len(sorted)),
	}
	for i, l := range sorted {
		d.labelIndex[l] = i
	}
	d.start = d.AddState()
	return d
}

// Alphabet returns the DFA's alphabet in sorted order.
func (d *DFA) Alphabet() []string { return d.alphabet }

// AddState adds a state whose transitions initially self-loop.
func (d *DFA) AddState() State {
	s := State(d.numStates)
	d.numStates++
	row := make([]State, len(d.alphabet))
	for i := range row {
		row[i] = s
	}
	d.trans = append(d.trans, row...)
	return s
}

// NumStates returns the number of states.
func (d *DFA) NumStates() int { return d.numStates }

// Start returns the start state.
func (d *DFA) Start() State { return d.start }

// SetStart sets the start state.
func (d *DFA) SetStart(s State) { d.start = s }

// SetAccepting marks a state accepting.
func (d *DFA) SetAccepting(s State, accepting bool) {
	if accepting {
		d.accepting[s] = true
	} else {
		delete(d.accepting, s)
	}
}

// IsAccepting reports whether a state accepts.
func (d *DFA) IsAccepting(s State) bool { return d.accepting[s] }

// SetTransition sets the successor of (from, label). Unknown labels panic:
// the alphabet is fixed at construction.
func (d *DFA) SetTransition(from State, label string, to State) {
	idx, ok := d.labelIndex[label]
	if !ok {
		panic(fmt.Sprintf("automaton: label %q not in DFA alphabet %v", label, d.alphabet))
	}
	d.trans[int(from)*len(d.alphabet)+idx] = to
}

// Next returns the successor of (from, label). Labels outside the alphabet
// return from itself with ok=false.
func (d *DFA) Next(from State, label string) (State, bool) {
	idx, ok := d.labelIndex[label]
	if !ok {
		return from, false
	}
	return d.trans[int(from)*len(d.alphabet)+idx], true
}

// Accepts reports whether the DFA accepts the word. Words containing labels
// outside the alphabet are rejected.
func (d *DFA) Accepts(word []string) bool {
	cur := d.start
	for _, label := range word {
		next, ok := d.Next(cur, label)
		if !ok {
			return false
		}
		cur = next
	}
	return d.accepting[cur]
}

// String renders the DFA for debugging.
func (d *DFA) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "DFA alphabet=%v states=%d start=%d\n", d.alphabet, d.numStates, d.start)
	for s := State(0); s < State(d.numStates); s++ {
		marker := " "
		if d.accepting[s] {
			marker = "*"
		}
		fmt.Fprintf(&sb, "%s %d:", marker, s)
		for _, l := range d.alphabet {
			next, _ := d.Next(s, l)
			fmt.Fprintf(&sb, " %s->%d", l, next)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// Determinize converts the NFA into a complete DFA over the given alphabet
// using the subset construction. Labels used by the NFA but missing from
// the alphabet are added.
func (n *NFA) Determinize(alphabet []string) *DFA {
	labelSet := make(map[string]bool)
	for _, l := range alphabet {
		labelSet[l] = true
	}
	for _, l := range n.Labels() {
		labelSet[l] = true
	}
	labels := make([]string, 0, len(labelSet))
	for l := range labelSet {
		labels = append(labels, l)
	}
	sort.Strings(labels)

	d := NewDFA(labels)
	// State 0 of the fresh DFA becomes the subset-start; we also need an
	// explicit sink for the empty subset.
	type subset string
	key := func(states []State) subset {
		parts := make([]string, len(states))
		for i, s := range states {
			parts[i] = fmt.Sprint(int(s))
		}
		return subset(strings.Join(parts, ","))
	}
	startSet := n.EpsilonClosure([]State{n.start})
	ids := map[subset]State{key(startSet): d.start}
	sink := State(-1)
	getSink := func() State {
		if sink < 0 {
			sink = d.AddState()
			for _, l := range labels {
				d.SetTransition(sink, l, sink)
			}
		}
		return sink
	}
	if containsAccepting(n, startSet) {
		d.SetAccepting(d.start, true)
	}
	queue := [][]State{startSet}
	keys := []subset{key(startSet)}
	for len(queue) > 0 {
		cur := queue[0]
		curKey := keys[0]
		queue, keys = queue[1:], keys[1:]
		curID := ids[curKey]
		for _, label := range labels {
			nextSet := make(map[State]bool)
			for _, s := range cur {
				for _, t := range n.trans[s][label] {
					nextSet[t] = true
				}
			}
			if len(nextSet) == 0 {
				d.SetTransition(curID, label, getSink())
				continue
			}
			nextStates := make([]State, 0, len(nextSet))
			for s := range nextSet {
				nextStates = append(nextStates, s)
			}
			closure := n.EpsilonClosure(nextStates)
			k := key(closure)
			id, ok := ids[k]
			if !ok {
				id = d.AddState()
				ids[k] = id
				if containsAccepting(n, closure) {
					d.SetAccepting(id, true)
				}
				queue = append(queue, closure)
				keys = append(keys, k)
			}
			d.SetTransition(curID, label, id)
		}
	}
	return d
}

func containsAccepting(n *NFA, states []State) bool {
	for _, s := range states {
		if n.accepting[s] {
			return true
		}
	}
	return false
}

// Minimize returns the minimal DFA equivalent to d (Hopcroft's algorithm),
// restricted to states reachable from the start state.
func (d *DFA) Minimize() *DFA {
	// Restrict to reachable states first.
	reachable := d.reachableStates()
	// Initial partition: accepting vs non-accepting (reachable only).
	var acc, rej []State
	for _, s := range reachable {
		if d.accepting[s] {
			acc = append(acc, s)
		} else {
			rej = append(rej, s)
		}
	}
	var partitions [][]State
	if len(acc) > 0 {
		partitions = append(partitions, acc)
	}
	if len(rej) > 0 {
		partitions = append(partitions, rej)
	}
	if len(partitions) == 0 {
		// No reachable states (impossible: start is always reachable), but
		// guard anyway.
		return NewDFA(d.alphabet)
	}

	blockOf := make(map[State]int)
	for bi, block := range partitions {
		for _, s := range block {
			blockOf[s] = bi
		}
	}
	// Iteratively refine until stable (Moore's algorithm — simpler than
	// full Hopcroft and fast enough for the sizes GPS handles).
	for {
		changed := false
		var next [][]State
		nextBlockOf := make(map[State]int)
		for _, block := range partitions {
			// Group states in the block by their successor-block signature.
			groups := make(map[string][]State)
			var order []string
			for _, s := range block {
				var sig strings.Builder
				for _, l := range d.alphabet {
					succ, _ := d.Next(s, l)
					fmt.Fprintf(&sig, "%d,", blockOf[succ])
				}
				k := sig.String()
				if _, ok := groups[k]; !ok {
					order = append(order, k)
				}
				groups[k] = append(groups[k], s)
			}
			if len(groups) > 1 {
				changed = true
			}
			for _, k := range order {
				bi := len(next)
				next = append(next, groups[k])
				for _, s := range groups[k] {
					nextBlockOf[s] = bi
				}
			}
		}
		partitions = next
		blockOf = nextBlockOf
		if !changed {
			break
		}
	}

	// Build the minimal DFA.
	m := NewDFA(d.alphabet)
	// Block of the start state becomes state 0; allocate the rest.
	blockState := make([]State, len(partitions))
	for i := range blockState {
		blockState[i] = State(-1)
	}
	blockState[blockOf[d.start]] = m.start
	for bi := range partitions {
		if blockState[bi] < 0 {
			blockState[bi] = m.AddState()
		}
	}
	for bi, block := range partitions {
		repr := block[0]
		if d.accepting[repr] {
			m.SetAccepting(blockState[bi], true)
		}
		for _, l := range d.alphabet {
			succ, _ := d.Next(repr, l)
			m.SetTransition(blockState[bi], l, blockState[blockOf[succ]])
		}
	}
	return m
}

func (d *DFA) reachableStates() []State {
	seen := map[State]bool{d.start: true}
	stack := []State{d.start}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, l := range d.alphabet {
			next, _ := d.Next(s, l)
			if !seen[next] {
				seen[next] = true
				stack = append(stack, next)
			}
		}
	}
	out := make([]State, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// IsEmpty reports whether the DFA accepts no word.
func (d *DFA) IsEmpty() bool {
	for _, s := range d.reachableStates() {
		if d.accepting[s] {
			return false
		}
	}
	return true
}

// SomeWord returns a shortest accepted word and ok=false if the language is
// empty.
func (d *DFA) SomeWord() ([]string, bool) {
	type entry struct {
		state State
		word  []string
	}
	seen := map[State]bool{d.start: true}
	queue := []entry{{d.start, nil}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if d.accepting[cur.state] {
			return cur.word, true
		}
		for _, l := range d.alphabet {
			next, _ := d.Next(cur.state, l)
			if !seen[next] {
				seen[next] = true
				word := append(append([]string(nil), cur.word...), l)
				queue = append(queue, entry{next, word})
			}
		}
	}
	return nil, false
}
