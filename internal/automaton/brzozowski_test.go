package automaton

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/regex"
)

func reverseWord(w []string) []string {
	out := make([]string, len(w))
	for i, x := range w {
		out[len(w)-1-i] = x
	}
	return out
}

func TestReverseAcceptsReversedWords(t *testing.T) {
	e := regex.MustParse("a.b.c")
	n := FromRegex(e)
	r := n.Reverse()
	if !r.Accepts([]string{"c", "b", "a"}) {
		t.Fatal("reverse should accept c.b.a")
	}
	if r.Accepts([]string{"a", "b", "c"}) {
		t.Fatal("reverse should reject the original order")
	}
	// Reversal of a star language over a single letter is itself.
	star := FromRegex(regex.MustParse("a*")).Reverse()
	if !star.Accepts(nil) || !star.Accepts([]string{"a", "a"}) {
		t.Fatal("a* reversed is a*")
	}
}

func TestMinimizeBrzozowskiEquivalentToHopcroftStyle(t *testing.T) {
	exprs := []string{
		"a",
		"a.b+a.c",
		"(a+b)*.a.b",
		"a*.b*",
		"a^+",
		"eps",
		"empty",
	}
	alphabet := []string{"a", "b", "c"}
	for _, es := range exprs {
		e := regex.MustParse(es)
		n := FromRegex(e)
		viaSubset := n.Determinize(alphabet).Minimize()
		viaBrzozowski := n.MinimizeBrzozowski(alphabet)
		if !Equivalent(viaSubset, viaBrzozowski) {
			t.Errorf("%q: the two minimisation routes disagree", es)
		}
		if viaBrzozowski.NumStates() > viaSubset.NumStates() {
			t.Errorf("%q: Brzozowski result has %d states, partition refinement %d",
				es, viaBrzozowski.NumStates(), viaSubset.NumStates())
		}
	}
}

func TestMinimizeBrzozowskiOnPTA(t *testing.T) {
	pta := FromWords([][]string{
		{"bus", "tram", "cinema"},
		{"bus", "bus", "cinema"},
		{"cinema"},
	})
	min := pta.MinimizeBrzozowski([]string{"bus", "tram", "cinema"})
	for _, w := range [][]string{{"cinema"}, {"bus", "tram", "cinema"}, {"bus", "bus", "cinema"}} {
		if !min.Accepts(w) {
			t.Errorf("minimal DFA should accept %v", w)
		}
	}
	if min.Accepts([]string{"bus"}) {
		t.Error("minimal DFA should not over-generalise")
	}
	if min.NumStates() > pta.NumStates()+1 {
		t.Errorf("minimal DFA larger than the PTA: %d vs %d", min.NumStates(), pta.NumStates())
	}
}

func TestPropertyReverseTwiceIsIdentity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := randomExpr(r, 3)
		n := FromRegex(e)
		rr := n.Reverse().Reverse()
		for i := 0; i < 8; i++ {
			w := randomWord(r, 4)
			if n.Accepts(w) != rr.Accepts(w) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyReverseAcceptsMirror(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := randomExpr(r, 3)
		n := FromRegex(e)
		rev := n.Reverse()
		for i := 0; i < 8; i++ {
			w := randomWord(r, 4)
			if n.Accepts(w) != rev.Accepts(reverseWord(w)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyBrzozowskiMatchesLanguage(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := randomExpr(r, 3)
		n := FromRegex(e)
		min := n.MinimizeBrzozowski([]string{"a", "b", "c"})
		for i := 0; i < 8; i++ {
			w := randomWord(r, 4)
			if e.Matches(w) != min.Accepts(w) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
