package automaton

// Reverse returns an NFA accepting the reversal of the language: every
// transition is flipped, the accepting states become start states (joined
// through a fresh ε-source) and the old start state becomes the single
// accepting state.
func (n *NFA) Reverse() *NFA {
	rev := NewNFA()
	// Allocate matching states 1..numStates so that original state s maps
	// to rev state s+1 (state 0 of rev is the fresh start).
	for i := 0; i < n.numStates; i++ {
		rev.AddState()
	}
	mapState := func(s State) State { return s + 1 }
	for from := State(0); from < State(n.numStates); from++ {
		for label, targets := range n.trans[from] {
			for _, to := range targets {
				rev.AddTransition(mapState(to), label, mapState(from))
			}
		}
	}
	for s := range n.accepting {
		rev.AddTransition(rev.Start(), Epsilon, mapState(s))
	}
	rev.SetAccepting(mapState(n.start), true)
	return rev
}

// MinimizeBrzozowski returns the minimal DFA for the NFA's language using
// Brzozowski's double-reversal construction: determinise the reversal, then
// determinise the reversal of that. It is a useful cross-check of the
// partition-refinement minimiser and occasionally produces the minimal DFA
// faster on tree-shaped inputs such as prefix-tree acceptors.
func (n *NFA) MinimizeBrzozowski(alphabet []string) *DFA {
	first := n.Reverse().Determinize(alphabet)
	second := dfaToNFA(first).Reverse().Determinize(alphabet)
	// The double-reversal result is deterministic and minimal up to
	// unreachable states; a final reachability-restricted refinement pass
	// also merges the dead states introduced by completion sinks.
	return second.Minimize()
}

// dfaToNFA converts a DFA into an equivalent NFA (a trivial embedding).
func dfaToNFA(d *DFA) *NFA {
	n := NewNFA()
	for i := 1; i < d.NumStates(); i++ {
		n.AddState()
	}
	n.SetStart(d.Start())
	for s := State(0); s < State(d.NumStates()); s++ {
		if d.IsAccepting(s) {
			n.SetAccepting(s, true)
		}
		for _, l := range d.Alphabet() {
			next, _ := d.Next(s, l)
			n.AddTransition(s, l, next)
		}
	}
	return n
}
