package rpq

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/regex"
)

// figure1 builds the paper's Figure 1 geographical graph (the same
// reconstruction as dataset.Figure1, duplicated here to keep the package
// test dependency-light).
func figure1(t testing.TB) *graph.Graph {
	t.Helper()
	g := graph.New()
	edges := []struct{ from, label, to string }{
		{"N1", "tram", "N4"},
		{"N1", "bus", "N4"},
		{"N2", "bus", "N1"},
		{"N2", "bus", "N3"},
		{"N2", "tram", "N5"},
		{"N3", "bus", "N5"},
		{"N4", "cinema", "C1"},
		{"N4", "bus", "N5"},
		{"N5", "restaurant", "R1"},
		{"N6", "cinema", "C2"},
		{"N6", "restaurant", "R2"},
		{"N6", "bus", "N5"},
		{"N6", "tram", "N3"},
	}
	for _, e := range edges {
		g.MustAddEdge(graph.NodeID(e.from), graph.Label(e.label), graph.NodeID(e.to))
	}
	return g
}

func TestFigure1GoalQuerySelection(t *testing.T) {
	// The paper states that (tram+bus)*.cinema selects N1, N2, N4 and N6.
	// Note that with the Figure 1 edges N5 -tram-> N2 and N3 -tram-> N6 the
	// query would also select N3 and N5; the paper's set refers to its four
	// witness paths. We check that at minimum the paper's nodes are
	// selected, that the witness paths quoted in the paper are valid, and
	// that no facility node (C/R) is selected.
	g := figure1(t)
	q := regex.MustParse("(tram+bus)*.cinema")
	e := New(g, q)
	for _, want := range []graph.NodeID{"N1", "N2", "N4", "N6"} {
		if !e.Selects(want) {
			t.Errorf("%s should be selected", want)
		}
	}
	for _, not := range []graph.NodeID{"C1", "C2", "R1", "R2"} {
		if e.Selects(not) {
			t.Errorf("%s should not be selected", not)
		}
	}
	// Witness paths quoted in the paper.
	w, ok := e.Witness("N4")
	if !ok || len(w) != 1 || w[0].Label != "cinema" {
		t.Errorf("N4 witness = %v, want single cinema edge", w)
	}
	w, ok = e.Witness("N6")
	if !ok || len(w) != 1 || w[0].Label != "cinema" {
		t.Errorf("N6 witness = %v, want single cinema edge", w)
	}
	w, ok = e.Witness("N1")
	if !ok || len(w) != 2 {
		t.Errorf("N1 witness = %v, want tram.cinema", w)
	}
	w, ok = e.Witness("N2")
	if !ok || len(w) != 3 {
		t.Errorf("N2 shortest witness should have 3 edges, got %v", w)
	}
}

func TestRestaurantQuery(t *testing.T) {
	g := figure1(t)
	q := regex.MustParse("(tram+bus)*.restaurant")
	selected := Evaluate(g, q)
	// Every neighbourhood can reach a restaurant except none — N1..N6 all
	// reach N5 or N6 via tram/bus.
	want := []graph.NodeID{"N1", "N2", "N3", "N4", "N5", "N6"}
	if !reflect.DeepEqual(selected, want) {
		t.Fatalf("selected = %v, want %v", selected, want)
	}
}

func TestDirectLabelQuery(t *testing.T) {
	g := figure1(t)
	q := regex.MustParse("cinema")
	selected := Evaluate(g, q)
	want := []graph.NodeID{"N4", "N6"}
	if !reflect.DeepEqual(selected, want) {
		t.Fatalf("selected = %v, want %v", selected, want)
	}
}

func TestBusQuerySelectsPaperNodes(t *testing.T) {
	// The paper notes that the query "bus" is consistent with positives
	// {N2, N6} and negative {N5}.
	g := figure1(t)
	e := New(g, regex.MustParse("bus"))
	if !e.Selects("N2") || !e.Selects("N6") {
		t.Fatal("bus should select N2 and N6")
	}
	if e.Selects("N5") {
		t.Fatal("bus should not select N5")
	}
}

func TestNullableQuerySelectsEverything(t *testing.T) {
	g := figure1(t)
	e := New(g, regex.MustParse("cinema?"))
	if len(e.Selected()) != g.NumNodes() {
		t.Fatalf("nullable query should select all nodes, got %v", e.Selected())
	}
	w, ok := e.Witness("R1")
	if !ok || len(w) != 0 {
		t.Fatalf("witness of nullable query should be the empty path, got %v ok=%v", w, ok)
	}
}

func TestEmptyQuerySelectsNothing(t *testing.T) {
	g := figure1(t)
	e := New(g, regex.Empty())
	if len(e.Selected()) != 0 {
		t.Fatalf("empty query selected %v", e.Selected())
	}
	if _, ok := e.Witness("N1"); ok {
		t.Fatal("no witness for empty query")
	}
}

func TestQueryWithLabelOutsideGraph(t *testing.T) {
	g := figure1(t)
	e := New(g, regex.MustParse("metro.cinema"))
	if len(e.Selected()) != 0 {
		t.Fatalf("query with unknown label selected %v", e.Selected())
	}
}

func TestWitnessIsValidPath(t *testing.T) {
	g := figure1(t)
	q := regex.MustParse("(tram+bus)*.cinema")
	e := New(g, q)
	for _, node := range e.Selected() {
		w, ok := e.Witness(node)
		if !ok {
			t.Fatalf("selected node %s has no witness", node)
		}
		// The witness must be a contiguous path starting at node whose word
		// matches the query.
		cur := node
		var word []string
		for _, edge := range w {
			if edge.From != cur {
				t.Fatalf("witness of %s not contiguous: %v", node, w)
			}
			cur = edge.To
			word = append(word, string(edge.Label))
		}
		if !q.Matches(word) {
			t.Fatalf("witness word %v of %s does not match query", word, node)
		}
	}
}

func TestSelectsWithin(t *testing.T) {
	g := figure1(t)
	e := New(g, regex.MustParse("(tram+bus)*.cinema"))
	if !e.SelectsWithin("N4", 1) {
		t.Fatal("N4 selects within 1")
	}
	if e.SelectsWithin("N2", 2) {
		t.Fatal("N2 needs 3 edges to reach a cinema")
	}
	if !e.SelectsWithin("N2", 3) {
		t.Fatal("N2 selects within 3")
	}
	nullable := New(g, regex.MustParse("cinema?"))
	if !nullable.SelectsWithin("R1", 0) {
		t.Fatal("nullable query selects within 0")
	}
}

func TestConsistent(t *testing.T) {
	g := figure1(t)
	q := regex.MustParse("(tram+bus)*.cinema")
	if !Consistent(g, q, []graph.NodeID{"N2", "N6"}, []graph.NodeID{"R1"}) {
		t.Fatal("goal query should be consistent with the paper's examples (R1 negative)")
	}
	if Consistent(g, q, []graph.NodeID{"R1"}, nil) {
		t.Fatal("R1 is not selected, so it cannot be a positive example")
	}
	if Consistent(g, q, []graph.NodeID{"N2"}, []graph.NodeID{"N4"}) {
		t.Fatal("N4 is selected, so it cannot be a negative example")
	}
}

func TestMissingNodeNotSelected(t *testing.T) {
	g := figure1(t)
	e := New(g, regex.MustParse("cinema"))
	if e.Selects("missing") {
		t.Fatal("missing node cannot be selected")
	}
	if _, ok := e.Witness("missing"); ok {
		t.Fatal("missing node cannot have a witness")
	}
}

// naiveSelects answers selection by brute-force path enumeration up to a
// bound; used to cross-check the product-graph evaluation.
func naiveSelects(g *graph.Graph, q *regex.Expr, node graph.NodeID, maxLen int) bool {
	type entry struct {
		node graph.NodeID
		word []string
	}
	queue := []entry{{node, nil}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if q.Matches(cur.word) {
			return true
		}
		if len(cur.word) >= maxLen {
			continue
		}
		for _, e := range g.Out(cur.node) {
			queue = append(queue, entry{e.To, append(append([]string(nil), cur.word...), string(e.Label))})
		}
	}
	return false
}

func randomGraph(r *rand.Rand, nodes, edges int) *graph.Graph {
	g := graph.New()
	labels := []graph.Label{"a", "b", "c"}
	ids := make([]graph.NodeID, nodes)
	for i := range ids {
		ids[i] = graph.NodeID(string(rune('A' + i%26)))
		if i >= 26 {
			ids[i] = graph.NodeID(string(rune('A'+i%26)) + string(rune('0'+i/26)))
		}
		g.MustAddNode(ids[i])
	}
	for i := 0; i < edges; i++ {
		g.MustAddEdge(ids[r.Intn(nodes)], labels[r.Intn(len(labels))], ids[r.Intn(nodes)])
	}
	return g
}

func randomExpr(r *rand.Rand, depth int) *regex.Expr {
	labels := []string{"a", "b", "c"}
	if depth <= 0 {
		return regex.Sym(labels[r.Intn(len(labels))])
	}
	switch r.Intn(5) {
	case 0:
		return regex.Concat(randomExpr(r, depth-1), randomExpr(r, depth-1))
	case 1:
		return regex.Union(randomExpr(r, depth-1), randomExpr(r, depth-1))
	case 2:
		return regex.Star(randomExpr(r, depth-1))
	case 3:
		return regex.Opt(randomExpr(r, depth-1))
	default:
		return regex.Sym(labels[r.Intn(len(labels))])
	}
}

func TestPropertySelectionMatchesBoundedEnumeration(t *testing.T) {
	// On small random graphs, a node found selected by bounded enumeration
	// must also be selected by the engine (the converse needs longer paths,
	// so only this direction is a sound check at a fixed bound).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 8, 14)
		q := randomExpr(r, 2)
		e := New(g, q)
		for _, node := range g.Nodes() {
			if naiveSelects(g, q, node, 4) && !e.Selects(node) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyWitnessMatchesQuery(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 8, 16)
		q := randomExpr(r, 2)
		e := New(g, q)
		for _, node := range e.Selected() {
			w, ok := e.Witness(node)
			if !ok {
				return false
			}
			word := make([]string, len(w))
			cur := node
			for i, edge := range w {
				if edge.From != cur {
					return false
				}
				cur = edge.To
				word[i] = string(edge.Label)
			}
			if !q.Matches(word) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
