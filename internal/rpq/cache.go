package rpq

import (
	"container/list"
	"strings"
	"sync"

	"repro/internal/automaton"
	"repro/internal/graph"
	"repro/internal/regex"
	"repro/internal/rpq/index"
)

// Query compilation and evaluation caches. The interactive learner calls
// the evaluator inside every iteration, every consistency check and every
// strategy probe, frequently with a query it has already seen; both caches
// key on the canonical query string so those repeats cost one map lookup.

// dfaCacheCap bounds the compiled-DFA memo; the whole memo is dropped when
// the bound is hit (queries are tiny, eviction precision is not worth the
// bookkeeping).
const dfaCacheCap = 4096

var (
	dfaMu    sync.Mutex
	dfaCache = make(map[string]*automaton.DFA)
)

// compiledDFA returns the minimal complete DFA of the query over the given
// alphabet, memoised by (canonical query string, alphabet). The returned
// DFA is shared and must be treated as immutable.
func compiledDFA(query *regex.Expr, alphabet []string) *automaton.DFA {
	var sb strings.Builder
	sb.WriteString(query.String())
	for _, l := range alphabet {
		sb.WriteByte(0)
		sb.WriteString(l)
	}
	key := sb.String()
	dfaMu.Lock()
	if d, ok := dfaCache[key]; ok {
		dfaMu.Unlock()
		return d
	}
	dfaMu.Unlock()
	d := automaton.FromRegex(query).Determinize(alphabet).Minimize()
	dfaMu.Lock()
	if len(dfaCache) >= dfaCacheCap {
		dfaCache = make(map[string]*automaton.DFA)
	}
	dfaCache[key] = d
	dfaMu.Unlock()
	return d
}

// EngineCache memoises fully evaluated engines for one graph, keyed by the
// canonical query string. The learner and the interactive strategies probe
// the same candidate queries over and over (the hypothesis after each
// merge, the goal query of a simulated user, the learned query after each
// interaction); the cache turns each repeat into a map lookup.
//
// Eviction is least-recently-used: when the capacity is reached the entry
// that has gone longest without a Get is dropped, so many concurrent
// sessions sharing one cache keep their hot hypothesis queries resident
// instead of periodically losing the whole working set to a flush.
//
// The cache watches the graph's structural version: any mutation of the
// graph flushes every entry, so a stale engine is never returned. It is
// safe for concurrent use.
type EngineCache struct {
	g       *graph.Graph
	cap     int
	workers int
	index   func() *index.Index

	mu      sync.Mutex
	version uint64
	// entries maps canonical query string to its *list.Element whose Value
	// is a *cacheEntry; lru orders elements most-recently-used first.
	entries map[string]*list.Element
	lru     *list.List
	// inflight coalesces concurrent misses on one key: the first misser
	// builds, later missers wait on done and share the result instead of
	// burning a full product sweep each. Flushed alongside entries on a
	// version change so nobody joins a stale build.
	inflight  map[string]*inflightBuild
	hits      uint64
	misses    uint64
	evictions uint64
}

// inflightBuild is one engine build in progress; e is valid once done is
// closed.
type inflightBuild struct {
	done chan struct{}
	e    *Engine
}

// cacheEntry is one resident engine together with its key, so that
// evicting the list tail can also delete the map entry.
type cacheEntry struct {
	key    string
	engine *Engine
}

// DefaultCacheCapacity bounds the number of cached engines per graph when
// CacheOptions.Capacity is zero.
const DefaultCacheCapacity = 1024

// CacheOptions configures an EngineCache.
type CacheOptions struct {
	// Capacity is the maximum number of resident engines; the
	// least-recently-used entry is evicted beyond it. 0 means
	// DefaultCacheCapacity.
	Capacity int
	// Workers is passed to NewWith for engines built through the cache;
	// 0 or 1 builds sequentially.
	Workers int
	// Index, when non-nil, is consulted on every engine build for the
	// graph's precomputed reachability index. It returns nil while the
	// index is still building (or disabled); a stale index — one built on
	// a different Indexed view than the graph's current one — is ignored
	// by the engine, so providers only need to be version-aware, not
	// synchronized with the cache's own flushes.
	Index func() *index.Index
}

// NewCache returns an empty engine cache for the graph with default
// options (DefaultCacheCapacity, sequential evaluation).
func NewCache(g *graph.Graph) *EngineCache {
	return NewCacheWith(g, CacheOptions{})
}

// NewCacheWith returns an empty engine cache with explicit capacity and
// evaluation parallelism.
func NewCacheWith(g *graph.Graph, opts CacheOptions) *EngineCache {
	if opts.Capacity <= 0 {
		opts.Capacity = DefaultCacheCapacity
	}
	return &EngineCache{
		g:        g,
		cap:      opts.Capacity,
		workers:  opts.Workers,
		index:    opts.Index,
		version:  g.Version(),
		entries:  make(map[string]*list.Element),
		lru:      list.New(),
		inflight: make(map[string]*inflightBuild),
	}
}

// Graph returns the graph the cache evaluates against.
func (c *EngineCache) Graph() *graph.Graph { return c.g }

// flushLocked drops every entry and detaches in-flight builds (their
// builders still complete and wake their waiters, but nobody new joins
// them). Caller holds c.mu.
func (c *EngineCache) flushLocked() {
	c.entries = make(map[string]*list.Element)
	c.lru.Init()
	c.inflight = make(map[string]*inflightBuild)
}

// Get returns the evaluated engine for the query, building and caching it
// on first use.
func (c *EngineCache) Get(query *regex.Expr) *Engine {
	key := query.String()
	c.mu.Lock()
	if v := c.g.Version(); v != c.version {
		c.version = v
		c.flushLocked()
	}
	if el, ok := c.entries[key]; ok {
		c.hits++
		c.lru.MoveToFront(el)
		e := el.Value.(*cacheEntry).engine
		c.mu.Unlock()
		return e
	}
	if fl, ok := c.inflight[key]; ok {
		// Another goroutine is already building this engine for the same
		// graph version; share its result instead of building again.
		c.hits++
		c.mu.Unlock()
		<-fl.done
		return fl.e
	}
	c.misses++
	fl := &inflightBuild{done: make(chan struct{})}
	c.inflight[key] = fl
	builtAt := c.version
	workers := c.workers
	c.mu.Unlock()
	var idx *index.Index
	if c.index != nil {
		idx = c.index()
	}
	var e *Engine
	if workers > 1 || idx != nil {
		if workers == 0 {
			workers = 1
		}
		e = NewWith(c.g, query, Options{Workers: workers, Index: idx})
	} else {
		e = New(c.g, query)
	}
	fl.e = e
	close(fl.done)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.inflight[key] == fl {
		delete(c.inflight, key)
	}
	// Only keep the engine if the graph has not moved past the version the
	// miss was observed at AND the build finished at — otherwise the engine
	// may reflect a stale revision and must not enter the cache.
	if c.g.Version() != builtAt || c.version != builtAt {
		return e
	}
	// A concurrent miss on the same key may have inserted first; keep the
	// resident engine so every caller shares one canonical instance.
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		return el.Value.(*cacheEntry).engine
	}
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, engine: e})
	for c.lru.Len() > c.cap {
		tail := c.lru.Back()
		c.lru.Remove(tail)
		delete(c.entries, tail.Value.(*cacheEntry).key)
		c.evictions++
	}
	return e
}

// Consistent reports whether the query selects every positive and no
// negative, evaluating through the cache.
func (c *EngineCache) Consistent(query *regex.Expr, positives, negatives []graph.NodeID) bool {
	return c.Get(query).ConsistentWith(positives, negatives)
}

// CacheStats is a point-in-time snapshot of an EngineCache's counters.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Size      int    `json:"size"`
	Capacity  int    `json:"capacity"`
}

// Stats returns the hit/miss/eviction counters and current size, for
// logging and benchmark plumbing.
func (c *EngineCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Size:      len(c.entries),
		Capacity:  c.cap,
	}
}
