package rpq

import (
	"strings"
	"sync"

	"repro/internal/automaton"
	"repro/internal/graph"
	"repro/internal/regex"
)

// Query compilation and evaluation caches. The interactive learner calls
// the evaluator inside every iteration, every consistency check and every
// strategy probe, frequently with a query it has already seen; both caches
// key on the canonical query string so those repeats cost one map lookup.

// dfaCacheCap bounds the compiled-DFA memo; the whole memo is dropped when
// the bound is hit (queries are tiny, eviction precision is not worth the
// bookkeeping).
const dfaCacheCap = 4096

var (
	dfaMu    sync.Mutex
	dfaCache = make(map[string]*automaton.DFA)
)

// compiledDFA returns the minimal complete DFA of the query over the given
// alphabet, memoised by (canonical query string, alphabet). The returned
// DFA is shared and must be treated as immutable.
func compiledDFA(query *regex.Expr, alphabet []string) *automaton.DFA {
	var sb strings.Builder
	sb.WriteString(query.String())
	for _, l := range alphabet {
		sb.WriteByte(0)
		sb.WriteString(l)
	}
	key := sb.String()
	dfaMu.Lock()
	if d, ok := dfaCache[key]; ok {
		dfaMu.Unlock()
		return d
	}
	dfaMu.Unlock()
	d := automaton.FromRegex(query).Determinize(alphabet).Minimize()
	dfaMu.Lock()
	if len(dfaCache) >= dfaCacheCap {
		dfaCache = make(map[string]*automaton.DFA)
	}
	dfaCache[key] = d
	dfaMu.Unlock()
	return d
}

// EngineCache memoises fully evaluated engines for one graph, keyed by the
// canonical query string. The learner and the interactive strategies probe
// the same candidate queries over and over (the hypothesis after each
// merge, the goal query of a simulated user, the learned query after each
// interaction); the cache turns each repeat into a map lookup.
//
// The cache watches the graph's structural version: any mutation of the
// graph flushes every entry, so a stale engine is never returned. It is
// safe for concurrent use.
type EngineCache struct {
	g *graph.Graph

	mu      sync.Mutex
	version uint64
	entries map[string]*Engine
	hits    uint64
	misses  uint64
}

// engineCacheCap bounds the number of cached engines per graph; the whole
// cache is dropped when the bound is hit.
const engineCacheCap = 1024

// NewCache returns an empty engine cache for the graph.
func NewCache(g *graph.Graph) *EngineCache {
	return &EngineCache{g: g, version: g.Version(), entries: make(map[string]*Engine)}
}

// Graph returns the graph the cache evaluates against.
func (c *EngineCache) Graph() *graph.Graph { return c.g }

// Get returns the evaluated engine for the query, building and caching it
// on first use.
func (c *EngineCache) Get(query *regex.Expr) *Engine {
	key := query.String()
	c.mu.Lock()
	if v := c.g.Version(); v != c.version {
		c.version = v
		c.entries = make(map[string]*Engine)
	}
	if e, ok := c.entries[key]; ok {
		c.hits++
		c.mu.Unlock()
		return e
	}
	c.misses++
	builtAt := c.version
	c.mu.Unlock()
	e := New(c.g, query)
	c.mu.Lock()
	// Only keep the engine if the graph has not moved past the version the
	// miss was observed at AND the build finished at — otherwise the engine
	// may reflect a stale revision and must not enter the cache.
	if c.g.Version() == builtAt && c.version == builtAt {
		if len(c.entries) >= engineCacheCap {
			c.entries = make(map[string]*Engine)
		}
		c.entries[key] = e
	}
	c.mu.Unlock()
	return e
}

// Consistent reports whether the query selects every positive and no
// negative, evaluating through the cache.
func (c *EngineCache) Consistent(query *regex.Expr, positives, negatives []graph.NodeID) bool {
	return c.Get(query).ConsistentWith(positives, negatives)
}

// Stats returns the hit/miss counters and current size, for logging and
// benchmark plumbing.
func (c *EngineCache) Stats() (hits, misses uint64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, len(c.entries)
}
