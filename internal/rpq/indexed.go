package rpq

import (
	"math/bits"

	"repro/internal/automaton"
	"repro/internal/graph"
	"repro/internal/rpq/index"
)

// Index-assisted product reachability. The unindexed sweeps
// (computeReachability and its sharded twin) walk a queue of product
// configurations, paying per-configuration overhead and one BFS level per
// path edge. With a prebuilt index.Index the engine runs a state-wise
// bitset fixpoint instead: one node bitset per DFA state, per-state dirty
// frontiers, and word-parallel ORs over the CSR in-edges — and when a DFA
// state carries a self-loop on a label the index has closed, the
// label-star saturation collapses to ORing precomputed closure rows
// (graph-diameter many BFS levels become one jump). The fixpoint it
// reaches is the exact accReach set, so Selected, Witness and every other
// engine API stay byte-identical to the unindexed engine; the equivalence
// tests pin that.

// forEachConfigBit calls fn for every set bit index in ascending order.
func forEachConfigBit(set []uint64, fn func(i int32)) {
	for wi, w := range set {
		for w != 0 {
			fn(int32(wi<<6 + bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
}

// usableIndex reports whether idx was built on the exact Indexed view
// this engine evaluates over. Pointer identity is the strongest check:
// the view is cached per graph version, so a version bump (or a different
// graph) yields a different view and the index is ignored.
func (e *Engine) usableIndex(idx *index.Index) bool {
	return idx != nil && idx.View() == e.ix
}

// computeReachabilityIndexed runs the state-wise bitset backward fixpoint
// using the index. It produces exactly the same accReach bitset and
// selected set as computeReachability.
func (e *Engine) computeReachabilityIndexed() {
	n := e.ix.NumNodes()
	S := e.numStates
	total := n * S
	if total == 0 {
		e.accReach = make([]uint64, 0)
		e.collectSelected()
		return
	}
	words := (n + 63) / 64
	// One backing array for every per-sweep bitset; the sweep is short
	// enough that allocation (and the GC scanning it induces) is a visible
	// fraction of an indexed evaluation.
	scratch := make([]uint64, (2*S+1)*words)
	reach := scratch[:S*words]
	dirty := scratch[S*words : 2*S*words]
	frontier := scratch[2*S*words:]

	// The DFA's in-edges grouped by target state, one entry per (source
	// state, graph label) transition pair. sat tracks, per self-loop edge
	// with a closure, the nodes whose closure row has already been ORed:
	// for a predecessor closure row(u) ⊆ row(v) whenever u ∈ row(v), so a
	// node absorbed by a jump never needs a jump of its own.
	type dfaInEdge struct {
		src int
		gl  int32
		cl  *index.Closure // pred closure when src == target self-loop
		sat []uint64
	}
	rev := e.dfa.Reverse()
	numLabels := e.ix.NumLabels()
	dfaIn := make([][]dfaInEdge, S)
	for t := 0; t < S; t++ {
		// Gather the self-loop labels of t first: a state looping on
		// several labels (an alternation star like (a+b)*) consumes the
		// union reachability relation, and a single set-closure jump over
		// that union replaces a cascade of per-label jumps that would
		// otherwise alternate once per SCC of each single-label subgraph.
		var loopLabels []int32
		for gl := 0; gl < numLabels; gl++ {
			if e.dfaLabel[gl] < 0 {
				continue
			}
			for _, q := range rev.Pred(automaton.State(t), e.dfaLabel[gl]) {
				if int(q) == t {
					loopLabels = append(loopLabels, int32(gl))
				}
			}
		}
		var setCl *index.Closure
		if len(loopLabels) > 1 {
			setCl = e.idx.PredStarSet(loopLabels)
		}
		if setCl != nil {
			dfaIn[t] = append(dfaIn[t], dfaInEdge{src: t, gl: -1, cl: setCl})
		}
		for gl := 0; gl < numLabels; gl++ {
			if e.dfaLabel[gl] < 0 {
				continue
			}
			for _, q := range rev.Pred(automaton.State(t), e.dfaLabel[gl]) {
				if int(q) == t && setCl != nil {
					continue // subsumed by the set-closure jump edge
				}
				edge := dfaInEdge{src: int(q), gl: int32(gl)}
				if int(q) == t {
					edge.cl = e.idx.PredStar(int32(gl))
				}
				dfaIn[t] = append(dfaIn[t], edge)
			}
		}
	}

	// One sat arena for every closure-jump edge, sized up front.
	nSat := 0
	for t := range dfaIn {
		for ei := range dfaIn[t] {
			if dfaIn[t][ei].cl != nil {
				nSat++
			}
		}
	}
	if nSat > 0 {
		arena := make([]uint64, nSat*words)
		k := 0
		for t := range dfaIn {
			for ei := range dfaIn[t] {
				if dfaIn[t][ei].cl != nil {
					dfaIn[t][ei].sat = arena[k*words : (k+1)*words]
					k++
				}
			}
		}
	}

	inQueue := make([]bool, S)
	queue := make([]int, 0, S)
	push := func(s int) {
		if !inQueue[s] {
			inQueue[s] = true
			queue = append(queue, s)
		}
	}
	// Seed: every node at every accepting state.
	for s := 0; s < S; s++ {
		if !e.accepting[s] {
			continue
		}
		row := reach[s*words : (s+1)*words]
		for i := range row {
			row[i] = ^uint64(0)
		}
		if n%64 != 0 {
			row[words-1] = (1 << uint(n%64)) - 1
		}
		copy(dirty[s*words:(s+1)*words], row)
		push(s)
	}

	var jumps uint64
	for len(queue) > 0 {
		t := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		inQueue[t] = false
		tDirty := dirty[t*words : (t+1)*words]
		copy(frontier, tDirty)
		for i := range tDirty {
			tDirty[i] = 0
		}
		for ei := range dfaIn[t] {
			edge := &dfaIn[t][ei]
			s := edge.src
			sRow := reach[s*words : (s+1)*words]
			sDirty := dirty[s*words : (s+1)*words]
			grew := false
			if edge.cl != nil {
				// Self-loop saturation: OR the predecessor-closure row of
				// every not-yet-saturated frontier node.
				sat := edge.sat
				forEachConfigBit(frontier, func(v int32) {
					if sat[v>>6]&(1<<(uint(v)&63)) != 0 {
						return
					}
					sat[v>>6] |= 1 << (uint(v) & 63)
					span, lo := edge.cl.RowSpan(v)
					if span == nil {
						return // closure of v is {v}: already in reach[t]
					}
					jumps++
					for j, w := range span {
						i := int(lo) + j
						if nw := sRow[i] | w; nw != sRow[i] {
							sDirty[i] |= nw ^ sRow[i]
							sRow[i] = nw
							grew = true
						}
						sat[i] |= w
					}
				})
			} else if src := e.idx.SourceBits(edge.gl); src != nil && fullFrontier(frontier, n) {
				// Full frontier (the first pop of an accepting seed): the
				// predecessor set is exactly the nodes with an outgoing
				// edge of the label, one word-parallel OR.
				for i, w := range src {
					if nw := sRow[i] | w; nw != sRow[i] {
						sDirty[i] |= nw ^ sRow[i]
						sRow[i] = nw
						grew = true
					}
				}
			} else {
				// Generic backward step over one graph label.
				forEachConfigBit(frontier, func(v int32) {
					for _, u := range e.ix.In(v, edge.gl) {
						wi, bit := u>>6, uint64(1)<<(uint(u)&63)
						if sRow[wi]&bit == 0 {
							sRow[wi] |= bit
							sDirty[wi] |= bit
							grew = true
						}
					}
				})
			}
			if grew {
				push(s)
			}
		}
	}
	if jumps > 0 {
		e.idx.AddHits(jumps)
	}

	// Park the product-layout scatter for the first configuration probe
	// (Witness, Selects, the forward searches): Selected is served off the
	// start-state row below, so an /evaluate-only engine skips the scatter
	// entirely. Node-word wi of any state lands in output words
	// [wi*S, wi*S+S) — the config base 64*wi*S is word-aligned — so
	// two-state DFAs (every `expr*.label` goal query) get a word-parallel
	// bit interleave and the general case a tight per-bit loop.
	e.accFill = func() []uint64 {
		acc := make([]uint64, (total+63)/64)
		if S == 2 {
			r0 := reach[:words]
			r1 := reach[words : 2*words]
			for wi := 0; wi < words; wi++ {
				w0, w1 := r0[wi], r1[wi]
				if w0 == 0 && w1 == 0 {
					continue
				}
				acc[2*wi] |= spreadBits2(uint32(w0)) | spreadBits2(uint32(w1))<<1
				if 2*wi+1 < len(acc) {
					acc[2*wi+1] |= spreadBits2(uint32(w0>>32)) | spreadBits2(uint32(w1>>32))<<1
				}
			}
		} else {
			for s := 0; s < S; s++ {
				row := reach[s*words : (s+1)*words]
				for wi, w := range row {
					base := wi<<6*S + s
					for w != 0 {
						c := base + bits.TrailingZeros64(w)*S
						w &= w - 1
						acc[c>>6] |= 1 << (uint(c) & 63)
					}
				}
			}
		}
		return acc
	}

	// Collect the answer straight off the start-state row: same ascending
	// node order as collectSelected, but with an exact preallocation (the
	// repeated growth of a several-thousand-entry NodeID slice otherwise
	// dominates a sub-millisecond evaluation).
	startRow := reach[int(e.start)*words : (int(e.start)+1)*words]
	cnt := 0
	for _, w := range startRow {
		cnt += bits.OnesCount64(w)
	}
	if cnt > 0 {
		e.selectedIDs = make([]graph.NodeID, 0, cnt)
		forEachConfigBit(startRow, func(v int32) {
			e.selectedIDs = append(e.selectedIDs, e.ix.NodeAt(v))
		})
	}
}

// spreadBits2 spaces the 32 bits of x one apart: bit i moves to bit 2i.
func spreadBits2(x uint32) uint64 {
	v := uint64(x)
	v = (v | v<<16) & 0x0000ffff0000ffff
	v = (v | v<<8) & 0x00ff00ff00ff00ff
	v = (v | v<<4) & 0x0f0f0f0f0f0f0f0f
	v = (v | v<<2) & 0x3333333333333333
	v = (v | v<<1) & 0x5555555555555555
	return v
}

// fullFrontier reports whether the frontier bitset contains all n nodes.
func fullFrontier(frontier []uint64, n int) bool {
	for i := 0; i < n>>6; i++ {
		if frontier[i] != ^uint64(0) {
			return false
		}
	}
	if n&63 != 0 {
		return frontier[n>>6] == (1<<uint(n&63))-1
	}
	return true
}

// buildViability tabulates, per distinct out-label mask and DFA state,
// whether the DFA can still accept using only labels in the mask. A
// product configuration (v, s) with viab[maskID(v)][s] == false can never
// reach acceptance — every edge on a path from v carries a label in v's
// out mask — so forward searches (SelectsWithin, PairsFrom) drop it. The
// check is one-sided: the overflow label bit and mask unions only ever
// widen the allowed set, so a viable verdict can be wrong but an
// unviable one never is, and results are unchanged.
func (e *Engine) buildViability() {
	masks := e.idx.Masks()
	if masks == nil {
		return
	}
	S := e.numStates
	rev := e.dfa.Reverse()
	numLabels := e.ix.NumLabels()
	viab := make([]bool, len(masks)*S)
	seen := make([]bool, S)
	queue := make([]automaton.State, 0, S)
	for mi, mask := range masks {
		row := viab[mi*S : (mi+1)*S]
		for i := range seen {
			seen[i] = false
		}
		queue = queue[:0]
		for s := 0; s < S; s++ {
			if e.accepting[s] {
				row[s] = true
				seen[s] = true
				queue = append(queue, automaton.State(s))
			}
		}
		for head := 0; head < len(queue); head++ {
			s := queue[head]
			for gl := 0; gl < numLabels; gl++ {
				if e.dfaLabel[gl] < 0 || mask&index.LabelBit(int32(gl)) == 0 {
					continue
				}
				for _, p := range rev.Pred(s, e.dfaLabel[gl]) {
					if !seen[p] {
						seen[p] = true
						row[p] = true
						queue = append(queue, p)
					}
				}
			}
		}
	}
	e.viab = viab
}

// viable reports whether configuration (node v, state s) can still reach
// acceptance according to the label-viability table; true when the table
// is absent.
func (e *Engine) viable(v int32, s automaton.State) bool {
	if e.viab == nil {
		return true
	}
	return e.viab[int(e.idx.MaskID(v))*e.numStates+int(s)]
}
