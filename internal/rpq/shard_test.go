package rpq

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/regex"
)

// engineBitsEqual reports whether two engines over the same graph computed
// byte-identical reachability bitsets and answer sets.
func engineBitsEqual(t *testing.T, seq, par *Engine) {
	t.Helper()
	if !reflect.DeepEqual(seq.accReach, par.accReach) {
		t.Fatal("sharded accReach bitset differs from sequential")
	}
	if !reflect.DeepEqual(seq.selectedIDs, par.selectedIDs) {
		t.Fatalf("sharded answer set %v differs from sequential %v", par.selectedIDs, seq.selectedIDs)
	}
}

func TestShardedMatchesSequentialFigure1(t *testing.T) {
	g := dataset.Figure1()
	for _, qs := range []string{"(tram+bus)*.cinema", "bus", "restaurant", "(bus.tram)*", "cinema+restaurant"} {
		q := regex.MustParse(qs)
		engineBitsEqual(t, New(g, q), NewWith(g, q, Options{Workers: 4}))
	}
}

func TestShardedMatchesSequentialLargeTransport(t *testing.T) {
	// 40x40 yields ~3500 nodes and >10k product configurations with the
	// 3-state goal DFA, clearing parallelMinConfigs so the worker pool
	// really runs.
	g := dataset.Transport(dataset.TransportOptions{Rows: 40, Cols: 40, Seed: 7, FacilityRate: 0.3})
	queries := []string{
		"(tram+bus)*.cinema",
		"(bus+tram)*.restaurant",
		"bus.bus",
		"(tram)*",
	}
	for _, workers := range []int{2, 3, 8} {
		for _, qs := range queries {
			q := regex.MustParse(qs)
			seq := New(g, q)
			if got := g.NumNodes() * seq.numStates; qs == "(tram+bus)*.cinema" && got < parallelMinConfigs {
				t.Fatalf("test graph too small to exercise the worker pool: %d configs for %s", got, qs)
			}
			par := NewWith(g, q, Options{Workers: workers})
			engineBitsEqual(t, seq, par)
			// The derived read APIs must agree too.
			if !seq.SameSelection(par) {
				t.Fatal("SameSelection must hold between sequential and sharded engines")
			}
			for _, n := range seq.Selected() {
				if !par.Selects(n) {
					t.Fatalf("sharded engine misses %s for %s with %d workers", n, qs, workers)
				}
			}
		}
	}
}

func TestShardedMatchesSequentialRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	alphabet := []string{"a", "b", "c"}
	for trial := 0; trial < 40; trial++ {
		g := graph.New()
		n := 20 + rng.Intn(60)
		for i := 0; i < n; i++ {
			g.MustAddNode(graph.NodeID(fmt.Sprintf("v%03d", i)))
		}
		edges := n * (1 + rng.Intn(3))
		for i := 0; i < edges; i++ {
			from := graph.NodeID(fmt.Sprintf("v%03d", rng.Intn(n)))
			to := graph.NodeID(fmt.Sprintf("v%03d", rng.Intn(n)))
			g.MustAddEdge(from, graph.Label(alphabet[rng.Intn(len(alphabet))]), to)
		}
		q := regex.MustParse(randomEqQuery(rng, 3))
		seq := New(g, q)
		par := NewWith(g, q, Options{Workers: 1 + rng.Intn(6)})
		engineBitsEqual(t, seq, par)
	}
}

func TestNewWithDefaultWorkers(t *testing.T) {
	g := dataset.Figure1()
	q := regex.MustParse("(tram+bus)*.cinema")
	e := NewWith(g, q, Options{})
	engineBitsEqual(t, New(g, q), e)
}

// TestScratchReuseSelectsWithinAndPairsFrom pins the pooled-scratch
// invariants: repeated and interleaved calls must keep returning the same
// answers as a fresh engine.
func TestScratchReuseSelectsWithinAndPairsFrom(t *testing.T) {
	g := dataset.Transport(dataset.TransportOptions{Rows: 6, Cols: 6, Seed: 3, FacilityRate: 0.4})
	q := regex.MustParse("(tram+bus)*.cinema")
	e := New(g, q)
	nodes := g.Nodes()
	type key struct {
		node   graph.NodeID
		maxLen int
	}
	wantWithin := make(map[key]bool)
	wantPairs := make(map[graph.NodeID][]graph.NodeID)
	for _, n := range nodes {
		for _, l := range []int{0, 1, 3, 7} {
			wantWithin[key{n, l}] = New(g, q).SelectsWithin(n, l)
		}
		wantPairs[n] = New(g, q).PairsFrom(n)
	}
	// Interleave the two scratch users across several rounds on one engine.
	for round := 0; round < 4; round++ {
		for _, n := range nodes {
			for _, l := range []int{0, 1, 3, 7} {
				if got := e.SelectsWithin(n, l); got != wantWithin[key{n, l}] {
					t.Fatalf("round %d: SelectsWithin(%s, %d) = %v, want %v", round, n, l, got, wantWithin[key{n, l}])
				}
			}
			if got := e.PairsFrom(n); !reflect.DeepEqual(got, wantPairs[n]) {
				t.Fatalf("round %d: PairsFrom(%s) = %v, want %v", round, n, got, wantPairs[n])
			}
		}
	}
}
