package rpq

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/automaton"
	"repro/internal/graph"
	"repro/internal/regex"
	"repro/internal/rpq/index"
)

// Sharded product-reachability. The backward sweep of computeReachability
// is a breadth-first fixpoint: the set of configurations that reach an
// accepting configuration is unique regardless of the order bits are
// discovered in. That makes the sweep safe to shard level-synchronously —
// each level's frontier is split into node ranges handed to a bounded
// worker pool, workers claim configurations with an atomic bit-set on the
// shared accReach bitset, and the per-worker next frontiers are
// concatenated for the following level. The resulting accReach bitset and
// the selected answer set are byte-identical to the sequential sweep.

// Options configures how an Engine evaluates.
type Options struct {
	// Workers is the number of goroutines the product-reachability sweep
	// may use. 0 means DefaultWorkers(); 1 means fully sequential. Sharding
	// never changes results, only wall-clock time on large graphs.
	Workers int
	// Index, when non-nil and built on the graph's current Indexed view,
	// switches the sweep to the index-assisted state-wise bitset fixpoint
	// (see indexed.go) and arms the label-viability prune of the forward
	// searches. A stale or foreign index is ignored. Results are always
	// byte-identical to an index-less engine.
	Index *index.Index
}

// DefaultWorkers is the worker count used when Options.Workers is zero:
// one per available CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

const (
	// parallelMinConfigs is the product size (nodes × DFA states) below
	// which the sharded sweep falls back to the sequential one: tiny
	// products finish faster than the workers can be scheduled.
	parallelMinConfigs = 1 << 13
	// parallelMinFrontier is the per-level frontier size below which a
	// level is expanded inline instead of being split across workers.
	parallelMinFrontier = 256
)

// NewWith compiles the query like New and precomputes the selected node
// set with the given options. With Workers > 1 the product-reachability
// sweep is sharded across a worker pool; the engine it returns is
// indistinguishable from a sequentially built one.
func NewWith(g *graph.Graph, query *regex.Expr, opts Options) *Engine {
	e := newEngine(g, query)
	if e.usableIndex(opts.Index) {
		e.idx = opts.Index
		e.buildViability()
		e.computeReachabilityIndexed()
		return e
	}
	workers := opts.Workers
	if workers == 0 {
		workers = DefaultWorkers()
	}
	e.computeReachabilityParallel(workers)
	return e
}

// computeReachabilityParallel runs the backward sweep on a worker pool.
// It produces exactly the same accReach bitset and selected set as
// computeReachability.
func (e *Engine) computeReachabilityParallel(workers int) {
	n := e.ix.NumNodes()
	S := e.numStates
	total := n * S
	if workers <= 1 || total < parallelMinConfigs {
		e.computeReachability()
		return
	}
	e.accReach = make([]uint64, (total+63)/64)
	// Seed: every (node, state) with state accepting.
	frontier := make([]int32, 0, n)
	for s := 0; s < S; s++ {
		if !e.accepting[s] {
			continue
		}
		for i := 0; i < n; i++ {
			c := i*S + s
			e.accReach[c>>6] |= 1 << (uint(c) & 63)
			frontier = append(frontier, int32(c))
		}
	}
	rev := e.dfa.Reverse()
	next := make([][]int32, workers)
	// spare ping-pongs with frontier in the inline (small-level) branch so
	// that expandLevel never appends into the buffer it is reading from.
	var spare []int32
	for len(frontier) > 0 {
		if len(frontier) < parallelMinFrontier {
			out := e.expandLevel(frontier, spare[:0], rev)
			spare = frontier[:0]
			frontier = out
			continue
		}
		chunk := (len(frontier) + workers - 1) / workers
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := min(lo+chunk, len(frontier))
			if lo >= hi {
				next[w] = next[w][:0]
				continue
			}
			wg.Add(1)
			go func(w int, part []int32) {
				defer wg.Done()
				next[w] = e.expandLevel(part, next[w][:0], rev)
			}(w, frontier[lo:hi])
		}
		wg.Wait()
		merged := frontier[:0]
		for w := range next {
			merged = append(merged, next[w]...)
		}
		frontier = merged
	}
	e.collectSelected()
}

// expandLevel claims every undiscovered predecessor of the configurations
// in part and appends it to out. The claim is an atomic bit-set so that
// concurrent workers never enqueue the same configuration twice.
func (e *Engine) expandLevel(part, out []int32, rev *automaton.ReverseTransitions) []int32 {
	S := e.numStates
	numLabels := e.ix.NumLabels()
	for _, cc := range part {
		c := int(cc)
		u := int32(c / S)
		sp := automaton.State(c % S)
		for gl := 0; gl < numLabels; gl++ {
			if e.dfaLabel[gl] < 0 {
				continue
			}
			ins := e.ix.In(u, int32(gl))
			if len(ins) == 0 {
				continue
			}
			preds := rev.Pred(sp, e.dfaLabel[gl])
			if len(preds) == 0 {
				continue
			}
			for _, v := range ins {
				base := int(v) * S
				for _, s := range preds {
					pc := base + int(s)
					mask := uint64(1) << (uint(pc) & 63)
					if atomic.OrUint64(&e.accReach[pc>>6], mask)&mask == 0 {
						out = append(out, int32(pc))
					}
				}
			}
		}
	}
	return out
}
