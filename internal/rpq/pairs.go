package rpq

import (
	"sort"

	"repro/internal/automaton"
	"repro/internal/graph"
)

// The paper uses the unary semantics (a node is selected iff some path
// starting at it matches the query). This file additionally implements the
// standard binary RPQ semantics — the set of node pairs (x, y) connected by
// a path whose word is in L(q) — which downstream users of the library
// typically also need, and which the unary engine's witness machinery is
// built on.

// Pair is an (origin, destination) answer of a binary regular path query.
type Pair struct {
	From graph.NodeID
	To   graph.NodeID
}

// PairsFrom returns the nodes y such that some path from the given node to
// y spells a word of L(q), in sorted order. If the query is nullable the
// node itself is included.
func (e *Engine) PairsFrom(from graph.NodeID) []graph.NodeID {
	if !e.g.HasNode(from) {
		return nil
	}
	type config struct {
		node  graph.NodeID
		state automaton.State
	}
	start := config{from, e.dfa.Start()}
	seen := map[config]bool{start: true}
	queue := []config{start}
	answers := make(map[graph.NodeID]bool)
	if e.dfa.IsAccepting(e.dfa.Start()) {
		answers[from] = true
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, edge := range e.g.Out(cur.node) {
			next, ok := e.dfa.Next(cur.state, string(edge.Label))
			if !ok {
				continue
			}
			nc := config{edge.To, next}
			if seen[nc] {
				continue
			}
			seen[nc] = true
			if e.dfa.IsAccepting(next) {
				answers[edge.To] = true
			}
			queue = append(queue, nc)
		}
	}
	out := make([]graph.NodeID, 0, len(answers))
	for n := range answers {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ConnectsPair reports whether some path from x to y spells a word of
// L(q).
func (e *Engine) ConnectsPair(x, y graph.NodeID) bool {
	for _, to := range e.PairsFrom(x) {
		if to == y {
			return true
		}
	}
	return false
}

// AllPairs returns every (x, y) pair connected by a path in L(q), sorted by
// (From, To). On large graphs this is quadratic in the number of nodes in
// the worst case; callers that only need one origin should use PairsFrom.
func (e *Engine) AllPairs() []Pair {
	var out []Pair
	for _, from := range e.g.Nodes() {
		// Only selected origins can contribute pairs: (x, y) requires a
		// matching path starting at x, which is exactly unary selection.
		if !e.Selects(from) {
			continue
		}
		for _, to := range e.PairsFrom(from) {
			out = append(out, Pair{From: from, To: to})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}
