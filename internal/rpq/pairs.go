package rpq

import (
	"sort"

	"repro/internal/automaton"
	"repro/internal/graph"
)

// The paper uses the unary semantics (a node is selected iff some path
// starting at it matches the query). This file additionally implements the
// standard binary RPQ semantics — the set of node pairs (x, y) connected by
// a path whose word is in L(q) — which downstream users of the library
// typically also need, and which the unary engine's witness machinery is
// built on.

// Pair is an (origin, destination) answer of a binary regular path query.
type Pair struct {
	From graph.NodeID
	To   graph.NodeID
}

// PairsFrom returns the nodes y such that some path from the given node to
// y spells a word of L(q), in sorted order. If the query is nullable the
// node itself is included.
func (e *Engine) PairsFrom(from graph.NodeID) []graph.NodeID {
	ni, ok := e.ix.IndexOf(from)
	if !ok {
		return nil
	}
	S := e.numStates
	es := e.getEval()
	seen, answers := es.seen, es.answers
	count := 0
	startCfg := e.cfg(ni, e.start)
	seen[startCfg>>6] |= 1 << (uint(startCfg) & 63)
	if e.accepting[e.start] {
		answers[ni] = true
		count++
	}
	queue := append(es.queue[:0], int32(startCfg))
	numLabels := e.ix.NumLabels()
	var pruned uint64
	for head := 0; head < len(queue); head++ {
		c := int(queue[head])
		u := int32(c / S)
		s := automaton.State(c % S)
		for gl := 0; gl < numLabels; gl++ {
			outs := e.ix.Out(u, int32(gl))
			if len(outs) == 0 || e.dfaLabel[gl] < 0 {
				continue
			}
			ns := e.dfa.NextByIndex(s, e.dfaLabel[gl])
			acc := e.accepting[ns]
			for _, v := range outs {
				nc := e.cfg(v, ns)
				if seen[nc>>6]&(1<<(uint(nc)&63)) != 0 {
					continue
				}
				// Unviable configurations cannot contribute answers (an
				// accepting state is always viable, so no answer is ever
				// skipped). Left unmarked on purpose: the seen cleanup
				// below only walks the queue.
				if !e.viable(v, ns) {
					pruned++
					continue
				}
				seen[nc>>6] |= 1 << (uint(nc) & 63)
				if acc && !answers[v] {
					answers[v] = true
					count++
				}
				queue = append(queue, int32(nc))
			}
		}
	}
	if pruned > 0 {
		e.idx.AddPrunes(pruned)
	}
	out := make([]graph.NodeID, 0, count)
	n := e.ix.NumNodes()
	for i := 0; i < n; i++ {
		if answers[i] {
			out = append(out, e.ix.NodeAt(int32(i)))
		}
	}
	// Restore the all-zero/all-false invariants before pooling: every seen
	// configuration sits in the queue, and every answer node is the node
	// component of some seen configuration.
	for _, c := range queue {
		seen[c>>6] &^= 1 << (uint(c) & 63)
		answers[int(c)/S] = false
	}
	es.queue = queue[:0]
	e.evalPool.Put(es)
	return out
}

// ConnectsPair reports whether some path from x to y spells a word of
// L(q).
func (e *Engine) ConnectsPair(x, y graph.NodeID) bool {
	for _, to := range e.PairsFrom(x) {
		if to == y {
			return true
		}
	}
	return false
}

// AllPairs returns every (x, y) pair connected by a path in L(q), sorted by
// (From, To). On large graphs this is quadratic in the number of nodes in
// the worst case; callers that only need one origin should use PairsFrom.
func (e *Engine) AllPairs() []Pair {
	var out []Pair
	for _, from := range e.g.Nodes() {
		// Only selected origins can contribute pairs: (x, y) requires a
		// matching path starting at x, which is exactly unary selection.
		if !e.Selects(from) {
			continue
		}
		for _, to := range e.PairsFrom(from) {
			out = append(out, Pair{From: from, To: to})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}
