package rpq

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/automaton"
	"repro/internal/graph"
	"repro/internal/regex"
)

// This file pins the dense bitset engine to a deliberately naive reference
// evaluator: per-node forward breadth-first search over the product of the
// graph with the query DFA, using nothing but hash maps and the string
// APIs. Any divergence between the two implementations on randomized
// graphs and queries is a bug in the dense core.

// refEvaluator is the map-based reference implementation.
type refEvaluator struct {
	g   *graph.Graph
	dfa *automaton.DFA
}

func newRefEvaluator(g *graph.Graph, query *regex.Expr) *refEvaluator {
	alphabet := make([]string, 0)
	for _, l := range g.Alphabet() {
		alphabet = append(alphabet, string(l))
	}
	dfa := automaton.FromRegex(query).Determinize(alphabet).Minimize()
	return &refEvaluator{g: g, dfa: dfa}
}

type refConfig struct {
	node  graph.NodeID
	state automaton.State
}

// selects runs a plain forward BFS from (node, start) and reports whether
// an accepting state is reachable. maxLen < 0 means unbounded.
func (r *refEvaluator) selects(node graph.NodeID, maxLen int) bool {
	if !r.g.HasNode(node) {
		return false
	}
	if r.dfa.IsAccepting(r.dfa.Start()) {
		return true
	}
	type entry struct {
		c     refConfig
		depth int
	}
	start := refConfig{node, r.dfa.Start()}
	seen := map[refConfig]bool{start: true}
	queue := []entry{{start, 0}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if maxLen >= 0 && cur.depth >= maxLen {
			continue
		}
		for _, edge := range r.g.Out(cur.c.node) {
			next, ok := r.dfa.Next(cur.c.state, string(edge.Label))
			if !ok {
				continue
			}
			if r.dfa.IsAccepting(next) {
				return true
			}
			nc := refConfig{edge.To, next}
			if !seen[nc] {
				seen[nc] = true
				queue = append(queue, entry{nc, cur.depth + 1})
			}
		}
	}
	return false
}

// shortestWitnessLen returns the length of a shortest accepted path from
// the node, and ok=false when none exists.
func (r *refEvaluator) shortestWitnessLen(node graph.NodeID) (int, bool) {
	if !r.g.HasNode(node) {
		return 0, false
	}
	if r.dfa.IsAccepting(r.dfa.Start()) {
		return 0, true
	}
	type entry struct {
		c     refConfig
		depth int
	}
	start := refConfig{node, r.dfa.Start()}
	seen := map[refConfig]bool{start: true}
	queue := []entry{{start, 0}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, edge := range r.g.Out(cur.c.node) {
			next, ok := r.dfa.Next(cur.c.state, string(edge.Label))
			if !ok {
				continue
			}
			if r.dfa.IsAccepting(next) {
				return cur.depth + 1, true
			}
			nc := refConfig{edge.To, next}
			if !seen[nc] {
				seen[nc] = true
				queue = append(queue, entry{nc, cur.depth + 1})
			}
		}
	}
	return 0, false
}

func (r *refEvaluator) selected() []graph.NodeID {
	var out []graph.NodeID
	for _, n := range r.g.Nodes() {
		if r.selects(n, -1) {
			out = append(out, n)
		}
	}
	return out
}

// randomGraph builds a random labelled graph with up to 12 nodes over the
// alphabet {a, b, c, d}.
func randomEqGraph(rng *rand.Rand) *graph.Graph {
	g := graph.New()
	n := 1 + rng.Intn(12)
	labels := []graph.Label{"a", "b", "c", "d"}[:1+rng.Intn(4)]
	for i := 0; i < n; i++ {
		g.MustAddNode(graph.NodeID(fmt.Sprintf("n%02d", i)))
	}
	edges := rng.Intn(3*n + 1)
	for i := 0; i < edges; i++ {
		from := graph.NodeID(fmt.Sprintf("n%02d", rng.Intn(n)))
		to := graph.NodeID(fmt.Sprintf("n%02d", rng.Intn(n)))
		g.MustAddEdge(from, labels[rng.Intn(len(labels))], to)
	}
	return g
}

// randomQuery builds a random regular expression over {a, b, c, d} (some
// labels may be absent from the graph, exercising the alphabet-union path).
func randomEqQuery(rng *rand.Rand, depth int) string {
	labels := []string{"a", "b", "c", "d"}
	if depth <= 0 || rng.Intn(3) == 0 {
		return labels[rng.Intn(len(labels))]
	}
	switch rng.Intn(4) {
	case 0:
		return "(" + randomEqQuery(rng, depth-1) + "+" + randomEqQuery(rng, depth-1) + ")"
	case 1:
		return randomEqQuery(rng, depth-1) + "." + randomEqQuery(rng, depth-1)
	case 2:
		return "(" + randomEqQuery(rng, depth-1) + ")*"
	default:
		return labels[rng.Intn(len(labels))]
	}
}

// TestRandomizedEquivalenceWithReference cross-checks Selected, Selects,
// SelectsWithin and the Witness length of the dense engine against the
// naive reference on 150 seeded random graph/query pairs.
func TestRandomizedEquivalenceWithReference(t *testing.T) {
	const cases = 150
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < cases; i++ {
		g := randomEqGraph(rng)
		q := regex.MustParse(randomEqQuery(rng, 3))
		e := New(g, q)
		ref := newRefEvaluator(g, q)

		if got, want := e.Selected(), ref.selected(); !reflect.DeepEqual(got, want) {
			if len(got) != 0 || len(want) != 0 {
				t.Fatalf("case %d: query %s: Selected() = %v, reference = %v", i, q, got, want)
			}
		}
		for _, n := range g.Nodes() {
			if got, want := e.Selects(n), ref.selects(n, -1); got != want {
				t.Fatalf("case %d: query %s: Selects(%s) = %v, reference = %v", i, q, n, got, want)
			}
			for _, maxLen := range []int{0, 1, 2, 5} {
				if got, want := e.SelectsWithin(n, maxLen), ref.selects(n, maxLen); got != want {
					t.Fatalf("case %d: query %s: SelectsWithin(%s, %d) = %v, reference = %v",
						i, q, n, maxLen, got, want)
				}
			}
			w, ok := e.Witness(n)
			wantLen, wantOK := ref.shortestWitnessLen(n)
			if ok != wantOK {
				t.Fatalf("case %d: query %s: Witness(%s) ok = %v, reference = %v", i, q, n, ok, wantOK)
			}
			if ok {
				if len(w) != wantLen {
					t.Fatalf("case %d: query %s: Witness(%s) length = %d, shortest = %d", i, q, n, len(w), wantLen)
				}
				assertValidWitness(t, g, q, n, w)
			}
		}
	}
}

// assertValidWitness checks that the witness is a real path of the graph
// starting at node whose word matches the query.
func assertValidWitness(t *testing.T, g *graph.Graph, q *regex.Expr, node graph.NodeID, w []graph.Edge) {
	t.Helper()
	at := node
	word := make([]string, 0, len(w))
	for _, e := range w {
		if e.From != at {
			t.Fatalf("witness of %s is not contiguous: edge %v from %s", node, e, at)
		}
		found := false
		for _, out := range g.Out(e.From) {
			if out == e {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("witness edge %v is not an edge of the graph", e)
		}
		word = append(word, string(e.Label))
		at = e.To
	}
	if !q.Matches(word) {
		t.Fatalf("witness word %v of %s does not match %s", word, node, q)
	}
}
