package rpq

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/regex"
	"repro/internal/rpq/index"
)

// accReachBytes serialises the engine's product-reachability bitset so two
// engines can be compared for exact fixpoint identity, not just identical
// observable answers.
func accReachBytes(e *Engine) []byte {
	acc := e.accBits() // materialises the lazy indexed-path bitset
	out := make([]byte, 0, len(acc)*8)
	for _, w := range acc {
		for b := 0; b < 8; b++ {
			out = append(out, byte(w>>(8*uint(b))))
		}
	}
	return out
}

// assertEnginesIdentical checks that two engines over the same graph and
// query agree bit-for-bit on accReach and on every observable answer:
// Selected, Selects, SelectsWithin, Witness length/validity, PairsFrom.
func assertEnginesIdentical(t *testing.T, tag string, g *graph.Graph, q *regex.Expr, oracle, got *Engine) {
	t.Helper()
	if !bytes.Equal(accReachBytes(oracle), accReachBytes(got)) {
		t.Fatalf("%s: query %s: accReach bitsets differ", tag, q)
	}
	if o, n := oracle.Selected(), got.Selected(); !reflect.DeepEqual(o, n) {
		if len(o) != 0 || len(n) != 0 {
			t.Fatalf("%s: query %s: Selected() = %v, oracle = %v", tag, q, n, o)
		}
	}
	for _, node := range g.Nodes() {
		if o, n := oracle.Selects(node), got.Selects(node); o != n {
			t.Fatalf("%s: query %s: Selects(%s) = %v, oracle = %v", tag, q, node, n, o)
		}
		for _, maxLen := range []int{0, 1, 2, 5} {
			if o, n := oracle.SelectsWithin(node, maxLen), got.SelectsWithin(node, maxLen); o != n {
				t.Fatalf("%s: query %s: SelectsWithin(%s, %d) = %v, oracle = %v", tag, q, node, maxLen, n, o)
			}
		}
		ow, ook := oracle.Witness(node)
		nw, nok := got.Witness(node)
		if ook != nok {
			t.Fatalf("%s: query %s: Witness(%s) ok = %v, oracle = %v", tag, q, node, nok, ook)
		}
		if nok {
			if len(nw) != len(ow) {
				t.Fatalf("%s: query %s: Witness(%s) length = %d, oracle = %d", tag, q, node, len(nw), len(ow))
			}
			assertValidWitness(t, g, q, node, nw)
		}
		if o, n := oracle.PairsFrom(node), got.PairsFrom(node); !reflect.DeepEqual(o, n) {
			if len(o) != 0 || len(n) != 0 {
				t.Fatalf("%s: query %s: PairsFrom(%s) = %v, oracle = %v", tag, q, node, n, o)
			}
		}
	}
}

// TestIndexedEquivalenceRandomized is the indexed-vs-oracle suite the index
// layer is gated on: 150 seeded random graph/query pairs, each evaluated by
// the sequential oracle (no index), the index-assisted engine, and the
// sharded engine handed the same index, asserting byte-identical accReach
// bitsets and identical answers everywhere.
func TestIndexedEquivalenceRandomized(t *testing.T) {
	const cases = 150
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < cases; i++ {
		g := randomEqGraph(rng)
		q := regex.MustParse(randomEqQuery(rng, 3))
		idx := index.Build(g.Indexed(), index.Options{})
		oracle := New(g, q)
		tag := func(mode string) string { return fmt.Sprintf("case %d (%s)", i, mode) }

		indexed := NewWith(g, q, Options{Index: idx})
		if indexed.idx != idx {
			t.Fatalf("case %d: fresh index not adopted by engine", i)
		}
		assertEnginesIdentical(t, tag("indexed"), g, q, oracle, indexed)

		sharded := NewWith(g, q, Options{Workers: 4, Index: idx})
		assertEnginesIdentical(t, tag("indexed+workers"), g, q, oracle, sharded)
	}
}

// TestIndexedEquivalenceConstrainedIndexes re-runs the equivalence suite
// under index configurations that stress individual layers: closures
// suppressed (viability prune + landmarks only), landmarks suppressed, and
// a tiny mask-interning cap that disables the viability prune.
func TestIndexedEquivalenceConstrainedIndexes(t *testing.T) {
	configs := []struct {
		name string
		opts index.Options
	}{
		{"no-closures", index.Options{MaxClosureBytes: -1, MaxClosureLabels: -1}},
		{"no-landmarks", index.Options{Landmarks: -1}},
		{"tiny-mask-cap", index.Options{MaxDistinctMasks: 1}},
	}
	for _, cfg := range configs {
		rng := rand.New(rand.NewSource(17))
		for i := 0; i < 50; i++ {
			g := randomEqGraph(rng)
			q := regex.MustParse(randomEqQuery(rng, 3))
			idx := index.Build(g.Indexed(), cfg.opts)
			oracle := New(g, q)
			indexed := NewWith(g, q, Options{Index: idx})
			assertEnginesIdentical(t, fmt.Sprintf("case %d (%s)", i, cfg.name), g, q, oracle, indexed)
		}
	}
}

// TestIndexedStaleIndexIgnored checks that an index built before a graph
// mutation is silently ignored — the engine must fall back to the plain
// sweep and still answer correctly for the mutated graph.
func TestIndexedStaleIndexIgnored(t *testing.T) {
	g := graph.New()
	for i := 0; i < 4; i++ {
		g.MustAddNode(graph.NodeID(fmt.Sprintf("n%d", i)))
	}
	g.MustAddEdge("n0", "a", "n1")
	stale := index.Build(g.Indexed(), index.Options{})
	g.MustAddEdge("n1", "a", "n2")
	q := regex.MustParse("a.a")
	e := NewWith(g, q, Options{Index: stale})
	if e.idx != nil {
		t.Fatal("stale index was adopted by the engine")
	}
	if !e.Selects("n0") {
		t.Fatal("Selects(n0) = false after fallback from stale index, want true")
	}
	assertEnginesIdentical(t, "stale-fallback", g, q, New(g, q), e)
}

// TestIndexedCacheProvider checks that the engine cache consults its index
// provider on builds, and that a provider returning a stale index never
// corrupts results after the graph mutates.
func TestIndexedCacheProvider(t *testing.T) {
	g := graph.New()
	for i := 0; i < 5; i++ {
		g.MustAddNode(graph.NodeID(fmt.Sprintf("n%d", i)))
	}
	g.MustAddEdge("n0", "a", "n1")
	g.MustAddEdge("n1", "b", "n2")
	idx := index.Build(g.Indexed(), index.Options{})
	calls := 0
	c := NewCacheWith(g, CacheOptions{Index: func() *index.Index {
		calls++
		return idx
	}})
	q := regex.MustParse("a.b")
	e := c.Get(q)
	if calls == 0 {
		t.Fatal("cache build never consulted the index provider")
	}
	if e.idx != idx {
		t.Fatal("cache-built engine did not adopt the provided index")
	}
	if !e.Selects("n0") || e.Selects("n1") {
		t.Fatalf("indexed cache engine misselects: n0=%v n1=%v", e.Selects("n0"), e.Selects("n1"))
	}
	if c.Get(q) != e {
		t.Fatal("second Get missed the cache")
	}

	// Mutate the graph: the cache flushes, the provider still returns the
	// now-stale index, and the rebuilt engine must ignore it.
	g.MustAddEdge("n2", "a", "n3")
	g.MustAddEdge("n3", "b", "n4")
	e2 := c.Get(q)
	if e2 == e {
		t.Fatal("cache returned a stale engine after graph mutation")
	}
	if e2.idx != nil {
		t.Fatal("rebuilt engine adopted a stale index")
	}
	if !e2.Selects("n2") {
		t.Fatal("Selects(n2) = false after mutation, want true")
	}
}
