package rpq

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/regex"
)

func TestPairsFromFigure1(t *testing.T) {
	g := figure1(t)
	e := New(g, regex.MustParse("(tram+bus)*.cinema"))
	// From N2 the matching paths end in C1 (via N1/N4); C2 is reachable
	// from N2? N2-bus->N3 has no onward cinema path, so only C1.
	got := e.PairsFrom("N2")
	if !reflect.DeepEqual(got, []graph.NodeID{"C1"}) {
		t.Fatalf("PairsFrom(N2) = %v, want [C1]", got)
	}
	if got := e.PairsFrom("N6"); !reflect.DeepEqual(got, []graph.NodeID{"C2"}) {
		t.Fatalf("PairsFrom(N6) = %v, want [C2]", got)
	}
	if got := e.PairsFrom("N5"); len(got) != 0 {
		t.Fatalf("PairsFrom(N5) = %v, want empty", got)
	}
	if got := e.PairsFrom("missing"); got != nil {
		t.Fatalf("PairsFrom(missing) = %v", got)
	}
}

func TestPairsFromNullableIncludesSelf(t *testing.T) {
	g := figure1(t)
	e := New(g, regex.MustParse("cinema?"))
	got := e.PairsFrom("R1")
	if len(got) == 0 || got[0] != "R1" {
		t.Fatalf("nullable query should pair a node with itself, got %v", got)
	}
}

func TestConnectsPairAndAllPairs(t *testing.T) {
	g := figure1(t)
	e := New(g, regex.MustParse("(tram+bus)*.cinema"))
	if !e.ConnectsPair("N2", "C1") {
		t.Fatal("N2 and C1 should be connected")
	}
	if e.ConnectsPair("N2", "C2") || e.ConnectsPair("N5", "C1") {
		t.Fatal("unexpected pair connection")
	}
	pairs := e.AllPairs()
	want := []Pair{
		{"N1", "C1"},
		{"N2", "C1"},
		{"N4", "C1"},
		{"N6", "C2"},
	}
	if !reflect.DeepEqual(pairs, want) {
		t.Fatalf("AllPairs = %v, want %v", pairs, want)
	}
}

func TestPropertyPairsConsistentWithSelection(t *testing.T) {
	// A node is selected iff it has at least one pair partner, and every
	// pair origin is a selected node.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 8, 16)
		q := randomExpr(r, 2)
		e := New(g, q)
		for _, node := range g.Nodes() {
			pairs := e.PairsFrom(node)
			if e.Selects(node) != (len(pairs) > 0) {
				return false
			}
		}
		for _, p := range e.AllPairs() {
			if !e.Selects(p.From) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
