package rpq

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/regex"
)

func TestEngineCacheReusesAndInvalidates(t *testing.T) {
	g := figure1(t)
	c := NewCache(g)
	q := regex.MustParse("(tram+bus)*.cinema")
	e1 := c.Get(q)
	e2 := c.Get(regex.MustParse("(tram+bus)*.cinema"))
	if e1 != e2 {
		t.Fatal("equal canonical queries must share one engine")
	}
	hits, misses, size := c.Stats()
	if hits != 1 || misses != 1 || size != 1 {
		t.Fatalf("stats = %d hits, %d misses, %d entries; want 1, 1, 1", hits, misses, size)
	}
	// Structural mutation must flush the cache and re-evaluate.
	g.MustAddEdge("N5", "cinema", "C1")
	e3 := c.Get(q)
	if e3 == e1 {
		t.Fatal("graph mutation must invalidate cached engines")
	}
	if !e3.Selects("N5") {
		t.Fatal("rebuilt engine must see the new edge")
	}
	if !reflect.DeepEqual(e3.Selected(), Evaluate(g, q)) {
		t.Fatal("cached engine must agree with a fresh evaluation")
	}
}

func TestEngineCacheConcurrentGets(t *testing.T) {
	g := figure1(t)
	c := NewCache(g)
	queries := []string{"(tram+bus)*.cinema", "bus", "restaurant", "bus.restaurant"}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				q := regex.MustParse(queries[(w+i)%len(queries)])
				e := c.Get(q)
				if e == nil || e.Selected() == nil {
					t.Error("cache returned an unusable engine")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if _, _, size := c.Stats(); size != len(queries) {
		t.Fatalf("cache holds %d entries, want %d", size, len(queries))
	}
}

func TestConsistentThroughCache(t *testing.T) {
	g := figure1(t)
	c := NewCache(g)
	q := regex.MustParse("(tram+bus)*.cinema")
	if !c.Consistent(q, []graph.NodeID{"N1", "N2"}, []graph.NodeID{"C1", "R1"}) {
		t.Fatal("goal query should be consistent with the paper's examples")
	}
	if c.Consistent(q, []graph.NodeID{"C1"}, nil) {
		t.Fatal("facility node is not selected and cannot be a positive")
	}
}
