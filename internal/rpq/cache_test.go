package rpq

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/regex"
)

func TestEngineCacheReusesAndInvalidates(t *testing.T) {
	g := figure1(t)
	c := NewCache(g)
	q := regex.MustParse("(tram+bus)*.cinema")
	e1 := c.Get(q)
	e2 := c.Get(regex.MustParse("(tram+bus)*.cinema"))
	if e1 != e2 {
		t.Fatal("equal canonical queries must share one engine")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Size != 1 {
		t.Fatalf("stats = %d hits, %d misses, %d entries; want 1, 1, 1", st.Hits, st.Misses, st.Size)
	}
	// Structural mutation must flush the cache and re-evaluate.
	g.MustAddEdge("N5", "cinema", "C1")
	e3 := c.Get(q)
	if e3 == e1 {
		t.Fatal("graph mutation must invalidate cached engines")
	}
	if !e3.Selects("N5") {
		t.Fatal("rebuilt engine must see the new edge")
	}
	if !reflect.DeepEqual(e3.Selected(), Evaluate(g, q)) {
		t.Fatal("cached engine must agree with a fresh evaluation")
	}
}

func TestEngineCacheConcurrentGets(t *testing.T) {
	g := figure1(t)
	c := NewCache(g)
	queries := []string{"(tram+bus)*.cinema", "bus", "restaurant", "bus.restaurant"}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				q := regex.MustParse(queries[(w+i)%len(queries)])
				e := c.Get(q)
				if e == nil || e.Selected() == nil {
					t.Error("cache returned an unusable engine")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if size := c.Stats().Size; size != len(queries) {
		t.Fatalf("cache holds %d entries, want %d", size, len(queries))
	}
}

func TestEngineCacheLRUEviction(t *testing.T) {
	g := figure1(t)
	c := NewCacheWith(g, CacheOptions{Capacity: 2})
	qa := regex.MustParse("bus")
	qb := regex.MustParse("tram")
	qc := regex.MustParse("restaurant")
	ea := c.Get(qa)
	c.Get(qb)
	// Touch qa so qb becomes the least recently used entry.
	if c.Get(qa) != ea {
		t.Fatal("hit must return the resident engine")
	}
	c.Get(qc) // evicts qb
	st := c.Stats()
	if st.Evictions != 1 || st.Size != 2 {
		t.Fatalf("stats = %+v; want 1 eviction, size 2", st)
	}
	if c.Get(qa) != ea {
		t.Fatal("recently used entry must survive the eviction")
	}
	eb := c.Get(qb) // miss: rebuilds
	if st := c.Stats(); st.Evictions != 2 {
		t.Fatalf("refetching the evicted query must evict again (LRU), stats = %+v", st)
	}
	if eb == nil || len(eb.Selected()) == 0 {
		t.Fatal("rebuilt engine must be usable")
	}
}

func TestEngineCacheConcurrentEvictions(t *testing.T) {
	g := figure1(t)
	c := NewCacheWith(g, CacheOptions{Capacity: 2})
	queries := []string{"bus", "tram", "restaurant", "cinema", "bus.restaurant", "(tram+bus)*.cinema"}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				q := regex.MustParse(queries[(w+i)%len(queries)])
				e := c.Get(q)
				if e == nil {
					t.Error("cache returned nil engine")
					return
				}
				if got, want := e.Selected(), Evaluate(g, q); !reflect.DeepEqual(got, want) {
					t.Errorf("engine for %s returned %v, want %v", q, got, want)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.Size > 2 {
		t.Fatalf("cache exceeded its capacity: %+v", st)
	}
	if st.Evictions == 0 {
		t.Fatalf("expected evictions under churn, stats = %+v", st)
	}
}

// TestEngineCacheSingleflight pins the in-flight coalescing: concurrent
// cold misses on one key must build the engine exactly once and all share
// the same instance.
func TestEngineCacheSingleflight(t *testing.T) {
	g := figure1(t)
	c := NewCache(g)
	q := regex.MustParse("(tram+bus)*.cinema")
	const n = 16
	engines := make([]*Engine, n)
	var wg sync.WaitGroup
	var start sync.WaitGroup
	start.Add(1)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start.Wait()
			engines[i] = c.Get(q)
		}(i)
	}
	start.Done()
	wg.Wait()
	for i := 1; i < n; i++ {
		if engines[i] != engines[0] {
			t.Fatal("concurrent gets must share one engine instance")
		}
	}
	if st := c.Stats(); st.Misses != 1 || st.Hits != n-1 {
		t.Fatalf("stats = %+v; want exactly 1 miss and %d hits", st, n-1)
	}
}

func TestConsistentThroughCache(t *testing.T) {
	g := figure1(t)
	c := NewCache(g)
	q := regex.MustParse("(tram+bus)*.cinema")
	if !c.Consistent(q, []graph.NodeID{"N1", "N2"}, []graph.NodeID{"C1", "R1"}) {
		t.Fatal("goal query should be consistent with the paper's examples")
	}
	if c.Consistent(q, []graph.NodeID{"C1"}, nil) {
		t.Fatal("facility node is not selected and cannot be a positive")
	}
}
