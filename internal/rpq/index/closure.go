package index

import "math/bits"

// Closure is the reflexive-transitive reachability closure of one
// single-label subgraph, stored as one bitset row per strongly connected
// component. Row sharing matters: on transport-style graphs most
// single-label SCCs are short bidirectional segments, so the row count is
// a fraction of the node count, and nodes with no outgoing edge under the
// label (facility leaves, for example) carry no row at all — their
// closure is the trivial {self}.
type Closure struct {
	words int
	// rowOf[v] is the row index of node v's SCC, or -1 when v has no
	// outgoing edge in the label subgraph (closure {v}).
	rowOf []int32
	// rows holds numRows bitsets of `words` words each; the row of an SCC
	// contains its members and every node reachable from them.
	rows []uint64
	// rowLo[r]/rowHi[r] bound the non-zero words of row r, so consumers OR
	// only the populated span. Node interning is lexicographic, which keeps
	// locality-heavy closures (a tram segment and the stops it reaches)
	// inside a couple of words of a much wider bitset.
	rowLo []int32
	rowHi []int32
}

// Row returns the closure bitset of v as a shared slice, or nil when the
// closure of v is the trivial {v}. Callers must not modify it.
func (c *Closure) Row(v int32) []uint64 {
	r := c.rowOf[v]
	if r < 0 {
		return nil
	}
	return c.rows[int(r)*c.words : (int(r)+1)*c.words]
}

// RowSpan returns the populated word span of v's closure row: a shared
// sub-slice covering words [lo, lo+len(span)) of the full-width row, or
// (nil, 0) when the closure of v is the trivial {v}. Callers must not
// modify it.
func (c *Closure) RowSpan(v int32) (span []uint64, lo int32) {
	r := c.rowOf[v]
	if r < 0 {
		return nil, 0
	}
	return c.rows[int(r)*c.words+int(c.rowLo[r]) : int(r)*c.words+int(c.rowHi[r])], c.rowLo[r]
}

// Reaches reports whether w is in the closure of v (i.e. v reaches w via
// edges of the closed label, or v == w).
func (c *Closure) Reaches(v, w int32) bool {
	if v == w {
		return true
	}
	r := c.rowOf[v]
	if r < 0 {
		return false
	}
	return c.rows[int(r)*c.words+int(w>>6)]&(1<<(uint(w)&63)) != 0
}

// MemBytes returns the closure's approximate memory footprint.
func (c *Closure) MemBytes() int64 {
	return int64(len(c.rows))*8 + int64(len(c.rowOf))*4 + int64(len(c.rowLo))*8
}

// buildClosure computes the closure over n nodes for the subgraph whose
// adjacency is adj (shared slices, not modified). Only nodes with at least
// one outgoing edge participate in the SCC condensation; edges into
// out-degree-0 nodes contribute a single bit. The DP runs over Tarjan's
// emission order, which is reverse topological on the condensation: when
// an SCC is emitted every SCC reachable from it already has its row.
func buildClosure(n int, adj func(int32) []int32) *Closure {
	words := (n + 63) / 64
	c := &Closure{words: words, rowOf: make([]int32, n)}
	hasOut := make([]bool, n)
	roots := make([]int32, 0, n)
	for v := 0; v < n; v++ {
		c.rowOf[v] = -1
		if len(adj(int32(v))) > 0 {
			hasOut[v] = true
			roots = append(roots, int32(v))
		}
	}
	if len(roots) == 0 {
		return c
	}

	// Iterative Tarjan over the hasOut-restricted subgraph.
	const unvisited = -1
	order := make([]int32, n) // discovery index, -1 = unvisited
	low := make([]int32, n)
	onStack := make([]bool, n)
	for i := range order {
		order[i] = unvisited
	}
	stack := make([]int32, 0, len(roots))
	type frame struct {
		v  int32
		ei int
	}
	var frames []frame
	var next int32
	numRows := int32(0)
	var comps [][]int32 // SCC member lists in emission order
	for _, root := range roots {
		if order[root] != unvisited {
			continue
		}
		order[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		frames = append(frames[:0], frame{v: root})
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			ns := adj(f.v)
			advanced := false
			for f.ei < len(ns) {
				w := ns[f.ei]
				f.ei++
				if !hasOut[w] {
					continue // sink: trivial closure, no SCC participation
				}
				if order[w] == unvisited {
					order[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
					advanced = true
					break
				}
				if onStack[w] && order[w] < low[f.v] {
					low[f.v] = order[w]
				}
			}
			if advanced {
				continue
			}
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				if p := &frames[len(frames)-1]; low[v] < low[p.v] {
					low[p.v] = low[v]
				}
			}
			if low[v] != order[v] {
				continue
			}
			// v roots an SCC: pop its members and assign the next row.
			members := []int32(nil)
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				c.rowOf[w] = numRows
				members = append(members, w)
				if w == v {
					break
				}
			}
			comps = append(comps, members)
			numRows++
		}
	}

	// Closure DP in emission order (reverse topological): the row of an
	// SCC is its members plus the union of the rows (or trivial bits) of
	// every edge target leaving it.
	c.rows = make([]uint64, int(numRows)*words)
	for ci, members := range comps {
		row := c.rows[ci*words : (ci+1)*words]
		for _, v := range members {
			row[v>>6] |= 1 << (uint(v) & 63)
			for _, w := range adj(v) {
				tr := c.rowOf[w]
				if tr < 0 {
					row[w>>6] |= 1 << (uint(w) & 63)
					continue
				}
				if int(tr) == ci {
					continue
				}
				src := c.rows[int(tr)*words : (int(tr)+1)*words]
				for i, wd := range src {
					row[i] |= wd
				}
			}
		}
	}

	// Bound the populated words of each row once, so every downstream OR
	// touches only the span that can carry bits.
	c.rowLo = make([]int32, numRows)
	c.rowHi = make([]int32, numRows)
	for r := 0; r < int(numRows); r++ {
		row := c.rows[r*words : (r+1)*words]
		lo, hi := 0, len(row)
		for lo < hi && row[lo] == 0 {
			lo++
		}
		for hi > lo && row[hi-1] == 0 {
			hi--
		}
		c.rowLo[r], c.rowHi[r] = int32(lo), int32(hi)
	}
	return c
}

// buildClosureSet computes the closure over the union of several label
// subgraphs — the reachability relation of paths that may interleave the
// labels freely, which is exactly what a DFA state with self-loops on that
// label set consumes. The union adjacency is materialised once as a flat
// CSR (temporary; only the rows survive) and fed to the same condensation
// DP as the single-label build. On transport-style graphs the union of the
// transit labels is close to one giant SCC, so the whole closure often
// collapses to a handful of shared rows.
func buildClosureSet(n int, labels []int32, edges func(v, l int32) []int32) *Closure {
	off := make([]int32, n+1)
	for v := 0; v < n; v++ {
		deg := 0
		for _, l := range labels {
			deg += len(edges(int32(v), l))
		}
		off[v+1] = off[v] + int32(deg)
	}
	dst := make([]int32, off[n])
	for v := 0; v < n; v++ {
		p := off[v]
		for _, l := range labels {
			p += int32(copy(dst[p:], edges(int32(v), l)))
		}
	}
	return buildClosure(n, func(v int32) []int32 { return dst[off[v]:off[v+1]] })
}

// forEachSetBit calls fn for every set bit index in ascending order.
func forEachSetBit(set []uint64, fn func(i int32)) {
	for wi, w := range set {
		for w != 0 {
			fn(int32(wi<<6 + bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
}
