package index

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// randomGraph builds a random labelled graph with up to maxNodes nodes
// over a small alphabet.
func randomGraph(rng *rand.Rand, maxNodes int) *graph.Graph {
	g := graph.New()
	n := 1 + rng.Intn(maxNodes)
	labels := []graph.Label{"a", "b", "c", "d"}[:1+rng.Intn(4)]
	for i := 0; i < n; i++ {
		g.MustAddNode(graph.NodeID(fmt.Sprintf("n%02d", i)))
	}
	edges := rng.Intn(4*n + 1)
	for i := 0; i < edges; i++ {
		from := graph.NodeID(fmt.Sprintf("n%02d", rng.Intn(n)))
		to := graph.NodeID(fmt.Sprintf("n%02d", rng.Intn(n)))
		g.MustAddEdge(from, labels[rng.Intn(len(labels))], to)
	}
	return g
}

// refReaches is the reference single-label reachability: BFS from v over
// gl-edges.
func refReaches(ix *graph.Indexed, v, w, gl int32) bool {
	if v == w {
		return true
	}
	seen := make([]bool, ix.NumNodes())
	seen[v] = true
	queue := []int32{v}
	for head := 0; head < len(queue); head++ {
		for _, t := range ix.Out(queue[head], gl) {
			if t == w {
				return true
			}
			if !seen[t] {
				seen[t] = true
				queue = append(queue, t)
			}
		}
	}
	return false
}

// refOutMask is the reference reachable-label mask: DFS collecting the
// labels of every edge reachable from v.
func refOutMask(ix *graph.Indexed, v int32) uint64 {
	seen := make([]bool, ix.NumNodes())
	seen[v] = true
	queue := []int32{v}
	var mask uint64
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for l := int32(0); l < int32(ix.NumLabels()); l++ {
			for _, t := range ix.Out(u, l) {
				mask |= LabelBit(l)
				if !seen[t] {
					seen[t] = true
					queue = append(queue, t)
				}
			}
		}
	}
	return mask
}

// TestIndexClosureMatchesBFS pins every closed label's closure rows (both
// directions) to the reference BFS on randomized graphs.
func TestIndexClosureMatchesBFS(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for c := 0; c < 80; c++ {
		g := randomGraph(rng, 14)
		ix := g.Indexed()
		// Close every label: large budget, no label cap pressure.
		x := Build(ix, Options{MaxClosureLabels: 8, Landmarks: 4})
		n := int32(ix.NumNodes())
		for gl := int32(0); gl < int32(ix.NumLabels()); gl++ {
			succ, pred := x.SuccStar(gl), x.PredStar(gl)
			for v := int32(0); v < n; v++ {
				for w := int32(0); w < n; w++ {
					want := refReaches(ix, v, w, gl)
					if succ != nil {
						if got := succ.Reaches(v, w); got != want {
							t.Fatalf("case %d label %d: succ.Reaches(%d,%d)=%v want %v", c, gl, v, w, got, want)
						}
					}
					if pred != nil {
						if got := pred.Reaches(w, v); got != want {
							t.Fatalf("case %d label %d: pred.Reaches(%d,%d)=%v want %v (transposed)", c, gl, w, v, got, want)
						}
					}
					if got := x.ReachesViaLabel(v, w, gl); got != want {
						t.Fatalf("case %d label %d: ReachesViaLabel(%d,%d)=%v want %v", c, gl, v, w, got, want)
					}
				}
			}
		}
	}
}

// refReachesSet is the reference label-set reachability: BFS from v over
// edges whose label is in gls.
func refReachesSet(ix *graph.Indexed, v, w int32, gls []int32) bool {
	if v == w {
		return true
	}
	seen := make([]bool, ix.NumNodes())
	seen[v] = true
	queue := []int32{v}
	for head := 0; head < len(queue); head++ {
		for _, gl := range gls {
			for _, t := range ix.Out(queue[head], gl) {
				if t == w {
					return true
				}
				if !seen[t] {
					seen[t] = true
					queue = append(queue, t)
				}
			}
		}
	}
	return false
}

// TestIndexPredStarSet pins the lazily built label-set closures (the union
// reachability a multi-self-loop DFA state consumes) to the reference
// multi-label BFS, including the singleton fall-through, the budget
// decline, and the repeat-request cache hit.
func TestIndexPredStarSet(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for c := 0; c < 60; c++ {
		g := randomGraph(rng, 14)
		ix := g.Indexed()
		x := Build(ix, Options{MaxClosureLabels: 8})
		numLabels := int32(ix.NumLabels())
		var sets [][]int32
		for gl := int32(0); gl < numLabels; gl++ {
			sets = append(sets, []int32{gl})
			for gl2 := gl + 1; gl2 < numLabels; gl2++ {
				sets = append(sets, []int32{gl, gl2}, []int32{gl2, gl}) // order-insensitive
			}
		}
		if numLabels >= 3 {
			sets = append(sets, []int32{2, 0, 1})
		}
		n := int32(ix.NumNodes())
		for _, gls := range sets {
			cl := x.PredStarSet(gls)
			if len(gls) == 1 {
				if cl != x.PredStar(gls[0]) {
					t.Fatalf("case %d: singleton set did not fall through to PredStar", c)
				}
			}
			if cl == nil {
				continue
			}
			if again := x.PredStarSet(gls); again != cl {
				t.Fatalf("case %d: repeated PredStarSet(%v) not served from cache", c, gls)
			}
			for v := int32(0); v < n; v++ {
				for w := int32(0); w < n; w++ {
					// Pred closure rows are the transposed relation.
					if got, want := cl.Reaches(w, v), refReachesSet(ix, v, w, gls); got != want {
						t.Fatalf("case %d set %v: Reaches(%d,%d)=%v want %v", c, gls, w, v, got, want)
					}
				}
			}
		}
	}

	// Disabled closures and a spent budget both decline set builds.
	g := graph.New()
	g.MustAddEdge("a", "x", "b")
	g.MustAddEdge("b", "y", "a")
	ix := g.Indexed()
	for _, opts := range []Options{{MaxClosureBytes: -1}, {MaxClosureBytes: 1}} {
		x := Build(ix, opts)
		if cl := x.PredStarSet([]int32{0, 1}); cl != nil {
			t.Fatalf("opts %+v: set closure built despite budget", opts)
		}
	}
}

// TestIndexReachesViaLabelWithoutClosures forces the landmark + BFS
// fallback path and pins it to the reference.
func TestIndexReachesViaLabelWithoutClosures(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for c := 0; c < 60; c++ {
		g := randomGraph(rng, 12)
		ix := g.Indexed()
		x := Build(ix, Options{MaxClosureBytes: -1, MaxClosureLabels: -1, Landmarks: 3})
		n := int32(ix.NumNodes())
		for gl := int32(0); gl < int32(ix.NumLabels()); gl++ {
			for v := int32(0); v < n; v++ {
				for w := int32(0); w < n; w++ {
					if got, want := x.ReachesViaLabel(v, w, gl), refReaches(ix, v, w, gl); got != want {
						t.Fatalf("case %d label %d: ReachesViaLabel(%d,%d)=%v want %v", c, gl, v, w, got, want)
					}
				}
			}
		}
	}
}

// TestIndexLabelMasks pins the out/in reachable-label masks and the mask
// interning to the reference DFS.
func TestIndexLabelMasks(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for c := 0; c < 80; c++ {
		g := randomGraph(rng, 14)
		ix := g.Indexed()
		x := Build(ix, Options{})
		for v := int32(0); v < int32(ix.NumNodes()); v++ {
			want := refOutMask(ix, v)
			if got := x.OutMask(v); got != want {
				t.Fatalf("case %d: OutMask(%d) = %b, want %b", c, v, got, want)
			}
			if x.Masks() != nil {
				if got := x.Masks()[x.MaskID(v)]; got != want {
					t.Fatalf("case %d: interned mask of %d = %b, want %b", c, v, got, want)
				}
			}
		}
	}
}

// TestIndexClosureBudget checks that a tiny byte budget suppresses
// closures without breaking the exact fallbacks.
func TestIndexClosureBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomGraph(rng, 14)
	ix := g.Indexed()
	x := Build(ix, Options{MaxClosureBytes: 1})
	for gl := int32(0); gl < int32(ix.NumLabels()); gl++ {
		if x.PredStar(gl) != nil || x.SuccStar(gl) != nil {
			t.Fatalf("label %d closed despite 1-byte budget", gl)
		}
	}
	for v := int32(0); v < int32(ix.NumNodes()); v++ {
		for w := int32(0); w < int32(ix.NumNodes()); w++ {
			for gl := int32(0); gl < int32(ix.NumLabels()); gl++ {
				if got, want := x.ReachesViaLabel(v, w, gl), refReaches(ix, v, w, gl); got != want {
					t.Fatalf("ReachesViaLabel(%d,%d,%d)=%v want %v", v, w, gl, got, want)
				}
			}
		}
	}
	if st := x.Stats(); st.ClosedLabels != 0 {
		t.Fatalf("Stats.ClosedLabels = %d, want 0", st.ClosedLabels)
	}
}

// TestIndexStats sanity-checks the snapshot fields on a non-trivial graph.
func TestIndexStats(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(rng, 14)
	x := Build(g.Indexed(), Options{})
	st := x.Stats()
	if st.Bytes <= 0 {
		t.Fatalf("Stats.Bytes = %d, want > 0", st.Bytes)
	}
	if st.Landmarks <= 0 {
		t.Fatalf("Stats.Landmarks = %d, want > 0", st.Landmarks)
	}
	if st.DistinctMasks <= 0 {
		t.Fatalf("Stats.DistinctMasks = %d, want > 0", st.DistinctMasks)
	}
	x.AddHits(2)
	x.AddPrunes(3)
	st = x.Stats()
	if st.Hits != 2 || st.Prunes != 3 {
		t.Fatalf("counters = %d/%d, want 2/3", st.Hits, st.Prunes)
	}
	if x.GraphVersion() != g.Version() {
		t.Fatalf("GraphVersion = %d, want %d", x.GraphVersion(), g.Version())
	}
}
