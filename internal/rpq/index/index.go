// Package index precomputes per-graph label-reachability structures that
// the RPQ product sweep consults instead of expanding frontiers edge by
// edge. One Index is built per graph.Indexed version (typically in the
// background at graph registration) and holds three layers:
//
//   - per-label successor/predecessor closure bitsets for the most
//     frequent labels, under a memory budget: SCC-condensed
//     reflexive-transitive closures of each single-label subgraph, so a
//     label-star subquery (a DFA self-loop) is answered by ORing closure
//     rows instead of running a diameter-deep BFS;
//   - a label-constrained landmark (2-hop-style) labelling over the
//     top-degree nodes: per label, a bitmask of which landmarks each node
//     reaches (and is reached by) via paths of that single label, giving
//     an O(1) positive certificate for label-star reachability between
//     any two nodes, with an exact BFS fallback;
//   - per-node reachable-label masks: the set of edge labels on any path
//     leaving (entering) each node, which lets the engine prune product
//     configurations whose graph node can never supply the labels an
//     accepting DFA path still requires.
//
// An Index never changes results — every structure is an exact or
// one-sided (sound-to-prune) certificate — and the unindexed engine
// remains the equivalence oracle in the tests.
package index

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
)

// Default construction parameters.
const (
	// DefaultMaxClosureBytes caps the total memory spent on per-label
	// closure rows (both directions together).
	DefaultMaxClosureBytes = 64 << 20
	// DefaultMaxClosureLabels caps how many labels get closures, budget
	// permitting; labels are considered in descending edge count.
	DefaultMaxClosureLabels = 4
	// DefaultLandmarks is the number of top-degree landmark nodes per
	// label; it is capped at 64 so a landmark set fits one uint64 mask.
	DefaultLandmarks = 16
	// DefaultMaxDistinctMasks bounds the distinct reachable-label masks
	// the viability prune tabulates; beyond it the prune is disabled
	// (masks stay available for direct queries).
	DefaultMaxDistinctMasks = 1024
	// overflowLabelBit is the mask bit shared by all label indexes >= 63,
	// keeping the mask lossy-inclusive (never lossy-exclusive) on graphs
	// with huge alphabets.
	overflowLabelBit = 63
	// maxSetClosures caps how many distinct label-set closures the lazy
	// cache holds; the engine requests one per DFA state with multiple
	// self-loop labels, so real workloads need a handful at most.
	maxSetClosures = 16
)

// Options tunes Build. The zero value picks every default.
type Options struct {
	// MaxClosureBytes caps closure-row memory; 0 means
	// DefaultMaxClosureBytes, negative disables closures entirely.
	MaxClosureBytes int64
	// MaxClosureLabels caps how many labels get closures; 0 means
	// DefaultMaxClosureLabels, negative disables closures.
	MaxClosureLabels int
	// Landmarks is the landmark count per label (capped at 64); 0 means
	// DefaultLandmarks, negative disables the landmark labelling.
	Landmarks int
	// MaxDistinctMasks is the distinct-mask cap for the viability table;
	// 0 means DefaultMaxDistinctMasks.
	MaxDistinctMasks int
}

func (o Options) withDefaults() Options {
	if o.MaxClosureBytes == 0 {
		o.MaxClosureBytes = DefaultMaxClosureBytes
	}
	if o.MaxClosureLabels == 0 {
		o.MaxClosureLabels = DefaultMaxClosureLabels
	}
	if o.Landmarks == 0 {
		o.Landmarks = DefaultLandmarks
	}
	if o.Landmarks > 64 {
		o.Landmarks = 64
	}
	if o.MaxDistinctMasks <= 0 {
		o.MaxDistinctMasks = DefaultMaxDistinctMasks
	}
	return o
}

// LabelBit returns the reachable-label-mask bit of a graph label index.
// Labels beyond 62 share the overflow bit, so a mask test can claim a
// label is present when it is not (harmless for pruning) but never the
// reverse.
func LabelBit(gl int32) uint64 {
	if gl >= overflowLabelBit {
		return 1 << overflowLabelBit
	}
	return 1 << uint(gl)
}

// Index is the precomputed reachability layer of one graph version. It is
// immutable after Build apart from the hit/prune counters and safe for
// concurrent use.
type Index struct {
	ix *graph.Indexed

	// outMask[v] / inMask[v] are the labels on edges of any path leaving /
	// entering v (LabelBit encoding).
	outMask []uint64
	inMask  []uint64
	// maskID[v] indexes masks, the distinct outMask values in first-seen
	// order; nil when the distinct count exceeded the cap.
	maskID []int32
	masks  []uint64

	// pred[l] / succ[l] are the per-label closures (nil when the label was
	// not closed): pred rows answer "which nodes reach v via l-paths",
	// succ rows "which nodes does v reach".
	pred []*Closure
	succ []*Closure

	// landmarks are the top-degree nodes; landFw[l][v] has bit k set when
	// v reaches landmarks[k] via l-paths, landBw[l][v] when landmarks[k]
	// reaches v.
	landmarks []int32
	landFw    [][]uint64
	landBw    [][]uint64

	// srcBits[l] is the bitset of nodes with at least one outgoing l-edge
	// — the exact predecessor set of a full frontier under l, which lets
	// the engine's first backward step out of an accepting state run
	// word-parallel instead of probing every node's in-list.
	srcBits [][]uint64

	// setPred caches closures over the union of a label set, built lazily
	// on first request (a nil value records a declined build so the budget
	// check runs once per set). setBytes is their byte accounting, atomic
	// because Stats may race with a lazy build.
	opts     Options
	setMu    sync.Mutex
	setPred  map[string]*Closure
	setBytes atomic.Int64

	memBytes  int64
	buildTime time.Duration

	hits   atomic.Uint64
	prunes atomic.Uint64
}

// Build constructs the index for one Indexed view. It only reads the view
// (safe to run in the background against a registered, frozen graph).
func Build(ix *graph.Indexed, opts Options) *Index {
	opts = opts.withDefaults()
	start := time.Now()
	n := ix.NumNodes()
	numLabels := ix.NumLabels()
	x := &Index{
		ix:      ix,
		opts:    opts,
		pred:    make([]*Closure, numLabels),
		succ:    make([]*Closure, numLabels),
		setPred: make(map[string]*Closure),
	}
	x.buildLabelMasks(opts)
	x.buildClosures(opts)
	x.buildLandmarks(opts)
	x.buildSourceBits()
	x.memBytes += int64(n) * 8 * 2 // outMask + inMask
	x.buildTime = time.Since(start)
	return x
}

// View returns the Indexed view the index was built on. Engines use
// pointer identity to decide whether the index is aligned with the view
// they evaluate over.
func (x *Index) View() *graph.Indexed { return x.ix }

// GraphVersion returns the graph structural version the index reflects.
func (x *Index) GraphVersion() uint64 { return x.ix.Version() }

// PredStar returns the predecessor closure of label gl, or nil when the
// label was not closed.
func (x *Index) PredStar(gl int32) *Closure { return x.pred[gl] }

// SuccStar returns the successor closure of label gl, or nil when the
// label was not closed.
func (x *Index) SuccStar(gl int32) *Closure { return x.succ[gl] }

// PredStarSet returns the predecessor closure over the union of the given
// label subgraphs — the relation "u reaches v by a path whose edges all
// carry labels in gls, interleaved freely". A DFA state with self-loops on
// exactly that label set consumes this relation, and the union typically
// condenses far better than any single label (on transport grids the
// bidirectional tram rows and bus columns merge into one grid-spanning
// SCC), so one set-closure jump replaces a diameter-deep cascade of
// per-label jumps. Set closures are built lazily on first request, cached
// on the index, and bounded both in count and by the same byte budget as
// the eager per-label closures; nil means the set is not closed.
func (x *Index) PredStarSet(gls []int32) *Closure {
	if len(gls) == 0 || x.opts.MaxClosureBytes < 0 || x.opts.MaxClosureLabels < 0 {
		return nil
	}
	if len(gls) == 1 {
		return x.pred[gls[0]]
	}
	sorted := append([]int32(nil), gls...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	key := make([]byte, 0, len(sorted)*4)
	for _, gl := range sorted {
		key = append(key, byte(gl), byte(gl>>8), byte(gl>>16), byte(gl>>24))
	}
	x.setMu.Lock()
	defer x.setMu.Unlock()
	if cl, ok := x.setPred[string(key)]; ok {
		return cl
	}
	if len(x.setPred) >= maxSetClosures {
		return nil
	}
	cl := buildClosureSet(x.ix.NumNodes(), sorted, x.ix.In)
	if x.setBytes.Load()+cl.MemBytes() > x.opts.MaxClosureBytes {
		cl = nil // over budget: remember the decline, drop the rows
	} else {
		x.setBytes.Add(cl.MemBytes())
	}
	x.setPred[string(key)] = cl
	return cl
}

// OutMask returns the reachable-label mask of node v (labels on edges of
// paths leaving v, LabelBit encoding).
func (x *Index) OutMask(v int32) uint64 { return x.outMask[v] }

// InMask returns the co-reachable-label mask of node v (labels on edges
// of paths entering v).
func (x *Index) InMask(v int32) uint64 { return x.inMask[v] }

// Masks returns the distinct out-label masks in maskID order, or nil when
// the distinct count exceeded Options.MaxDistinctMasks (the viability
// prune is then disabled).
func (x *Index) Masks() []uint64 { return x.masks }

// MaskID returns the index of node v's out-label mask into Masks. Only
// valid when Masks() is non-nil.
func (x *Index) MaskID(v int32) int32 { return x.maskID[v] }

// buildLabelMasks computes outMask/inMask by a worklist fixpoint: the
// mask of a node is the union of the label bits of its incident edges and
// the masks of their far endpoints. Each node re-enters the worklist at
// most 64 times (once per new bit), so the sweep is O(E * popcount).
func (x *Index) buildLabelMasks(opts Options) {
	ix := x.ix
	n := ix.NumNodes()
	numLabels := int32(ix.NumLabels())
	x.outMask = make([]uint64, n)
	x.inMask = make([]uint64, n)
	x.fixpointMasks(x.outMask, func(v int32, visit func(nbr int32)) {
		for l := int32(0); l < numLabels; l++ {
			for _, u := range ix.In(v, l) {
				visit(u)
			}
		}
	}, func(v int32) uint64 {
		var m uint64
		for l := int32(0); l < numLabels; l++ {
			if len(ix.Out(v, l)) > 0 {
				m |= LabelBit(l)
			}
		}
		return m
	})
	x.fixpointMasks(x.inMask, func(v int32, visit func(nbr int32)) {
		for l := int32(0); l < numLabels; l++ {
			for _, u := range ix.Out(v, l) {
				visit(u)
			}
		}
	}, func(v int32) uint64 {
		var m uint64
		for l := int32(0); l < numLabels; l++ {
			if len(ix.In(v, l)) > 0 {
				m |= LabelBit(l)
			}
		}
		return m
	})

	// Intern the distinct out masks for the engine's viability table.
	ids := make(map[uint64]int32, 64)
	maskID := make([]int32, n)
	var masks []uint64
	for v := 0; v < n; v++ {
		m := x.outMask[v]
		id, ok := ids[m]
		if !ok {
			if len(masks) >= opts.MaxDistinctMasks {
				maskID = nil
				masks = nil
				break
			}
			id = int32(len(masks))
			masks = append(masks, m)
			ids[m] = id
		}
		maskID[v] = id
	}
	x.maskID, x.masks = maskID, masks
}

// fixpointMasks seeds mask[v] from seed(v) and propagates masks against
// edge direction: when mask[v] grows, every neighbour reported by
// visitSources(v) absorbs it.
func (x *Index) fixpointMasks(mask []uint64, visitSources func(v int32, visit func(nbr int32)), seed func(v int32) uint64) {
	n := len(mask)
	inQueue := make([]bool, n)
	queue := make([]int32, 0, n)
	for v := 0; v < n; v++ {
		if m := seed(int32(v)); m != 0 {
			mask[v] = m
			inQueue[v] = true
			queue = append(queue, int32(v))
		}
	}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		inQueue[v] = false
		m := mask[v]
		visitSources(v, func(u int32) {
			if mask[u]|m != mask[u] {
				mask[u] |= m
				if !inQueue[u] {
					inQueue[u] = true
					queue = append(queue, u)
				}
			}
		})
	}
}

// buildClosures closes the most frequent labels (by edge count) under the
// byte budget, predecessor direction first: the backward product sweep
// consumes pred closures, so they take priority when the budget is tight.
func (x *Index) buildClosures(opts Options) {
	if opts.MaxClosureBytes < 0 || opts.MaxClosureLabels < 0 {
		return
	}
	ix := x.ix
	n := ix.NumNodes()
	numLabels := ix.NumLabels()
	type labelFreq struct {
		gl    int32
		edges int
	}
	freq := make([]labelFreq, 0, numLabels)
	for l := 0; l < numLabels; l++ {
		edges := 0
		for v := int32(0); v < int32(n); v++ {
			edges += len(ix.Out(v, int32(l)))
		}
		if edges > 0 {
			freq = append(freq, labelFreq{gl: int32(l), edges: edges})
		}
	}
	sort.Slice(freq, func(i, j int) bool {
		if freq[i].edges != freq[j].edges {
			return freq[i].edges > freq[j].edges
		}
		return freq[i].gl < freq[j].gl
	})
	if len(freq) > opts.MaxClosureLabels {
		freq = freq[:opts.MaxClosureLabels]
	}
	var spent int64
	// Predecessor closures for every chosen label, then successor
	// closures, each kept only while the cumulative budget holds.
	for _, f := range freq {
		gl := f.gl
		cl := buildClosure(n, func(v int32) []int32 { return ix.In(v, gl) })
		if spent += cl.MemBytes(); spent > opts.MaxClosureBytes {
			return
		}
		x.pred[gl] = cl
	}
	for _, f := range freq {
		gl := f.gl
		cl := buildClosure(n, func(v int32) []int32 { return ix.Out(v, gl) })
		if spent += cl.MemBytes(); spent > opts.MaxClosureBytes {
			return
		}
		x.succ[gl] = cl
	}
	x.memBytes += spent
}

// buildLandmarks picks the top-degree nodes as landmarks and runs one
// forward and one backward BFS per (landmark, label), recording per-node
// landmark masks. The masks are a positive 2-hop certificate: if some
// landmark is forward-reachable from v and backward-reaches w under label
// l, then v reaches w via l-paths.
func (x *Index) buildLandmarks(opts Options) {
	if opts.Landmarks <= 0 {
		return
	}
	ix := x.ix
	n := ix.NumNodes()
	numLabels := ix.NumLabels()
	if n == 0 || numLabels == 0 {
		return
	}
	k := opts.Landmarks
	if k > n {
		k = n
	}
	// Degree order: total degree, ties by node index for determinism.
	deg := make([]int, n)
	for v := int32(0); v < int32(n); v++ {
		d := ix.OutDegree(v)
		for l := int32(0); l < int32(numLabels); l++ {
			d += len(ix.In(v, l))
		}
		deg[v] = d
	}
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(i, j int) bool {
		if deg[order[i]] != deg[order[j]] {
			return deg[order[i]] > deg[order[j]]
		}
		return order[i] < order[j]
	})
	x.landmarks = append([]int32(nil), order[:k]...)

	x.landFw = make([][]uint64, numLabels)
	x.landBw = make([][]uint64, numLabels)
	queue := make([]int32, 0, n)
	for l := 0; l < numLabels; l++ {
		fw := make([]uint64, n)
		bw := make([]uint64, n)
		for ki, lm := range x.landmarks {
			bit := uint64(1) << uint(ki)
			// Backward BFS over l-edges: nodes that reach the landmark.
			queue = append(queue[:0], lm)
			fw[lm] |= bit
			for head := 0; head < len(queue); head++ {
				v := queue[head]
				for _, u := range x.ix.In(v, int32(l)) {
					if fw[u]&bit == 0 {
						fw[u] |= bit
						queue = append(queue, u)
					}
				}
			}
			// Forward BFS: nodes the landmark reaches.
			queue = append(queue[:0], lm)
			bw[lm] |= bit
			for head := 0; head < len(queue); head++ {
				v := queue[head]
				for _, w := range x.ix.Out(v, int32(l)) {
					if bw[w]&bit == 0 {
						bw[w] |= bit
						queue = append(queue, w)
					}
				}
			}
		}
		x.landFw[l] = fw
		x.landBw[l] = bw
	}
	x.memBytes += int64(numLabels) * int64(n) * 16
}

// buildSourceBits records, per label, which nodes have an outgoing edge of
// that label. One word per 64 nodes per label — negligible next to the
// closures — and always built.
func (x *Index) buildSourceBits() {
	ix := x.ix
	n := ix.NumNodes()
	numLabels := ix.NumLabels()
	if n == 0 || numLabels == 0 {
		return
	}
	words := (n + 63) / 64
	flat := make([]uint64, numLabels*words)
	x.srcBits = make([][]uint64, numLabels)
	for l := 0; l < numLabels; l++ {
		row := flat[l*words : (l+1)*words]
		for v := int32(0); v < int32(n); v++ {
			if len(ix.Out(v, int32(l))) > 0 {
				row[v>>6] |= 1 << (uint(v) & 63)
			}
		}
		x.srcBits[l] = row
	}
	x.memBytes += int64(numLabels*words) * 8
}

// SourceBits returns the bitset of nodes with at least one outgoing edge
// of label gl, or nil on an empty graph. Callers must not modify it.
func (x *Index) SourceBits(gl int32) []uint64 {
	if x.srcBits == nil {
		return nil
	}
	return x.srcBits[gl]
}

// ReachesViaLabel reports whether v reaches w by a (possibly empty) path
// using only edges of label gl — the single-label / label-star subquery
// answered directly from the index: an exact closure row when the label
// is closed, a landmark certificate when one covers the pair, and an
// exact bounded BFS fallback otherwise.
func (x *Index) ReachesViaLabel(v, w, gl int32) bool {
	if v == w {
		return true
	}
	if cl := x.succ[gl]; cl != nil {
		x.hits.Add(1)
		return cl.Reaches(v, w)
	}
	if cl := x.pred[gl]; cl != nil {
		x.hits.Add(1)
		return cl.Reaches(w, v) // pred rows are the transposed relation
	}
	if x.landFw != nil {
		if x.landFw[gl][v]&x.landBw[gl][w] != 0 {
			x.hits.Add(1)
			return true
		}
	}
	// Exact fallback: forward BFS over gl-edges.
	n := x.ix.NumNodes()
	seen := make([]uint64, (n+63)/64)
	seen[v>>6] |= 1 << (uint(v) & 63)
	queue := []int32{v}
	for head := 0; head < len(queue); head++ {
		for _, t := range x.ix.Out(queue[head], gl) {
			if t == w {
				return true
			}
			if seen[t>>6]&(1<<(uint(t)&63)) == 0 {
				seen[t>>6] |= 1 << (uint(t) & 63)
				queue = append(queue, t)
			}
		}
	}
	return false
}

// AddHits / AddPrunes bump the consultation counters; the engine batches
// them per sweep so the hot loops touch no atomics.
func (x *Index) AddHits(n uint64)   { x.hits.Add(n) }
func (x *Index) AddPrunes(n uint64) { x.prunes.Add(n) }

// Stats is a point-in-time snapshot of the index for /v1/stats and the
// gpsd_index_* metric families.
type Stats struct {
	// Bytes is the approximate resident size of the index structures.
	Bytes int64 `json:"bytes"`
	// BuildMs is the wall-clock build time in milliseconds.
	BuildMs float64 `json:"build_ms"`
	// ClosedLabels counts labels with at least one closure direction.
	ClosedLabels int `json:"closed_labels"`
	// SetClosures counts the lazily built label-set closures resident.
	SetClosures int `json:"set_closures"`
	// Landmarks is the landmark count of the 2-hop labelling.
	Landmarks int `json:"landmarks"`
	// DistinctMasks is the interned out-label mask count (0 when the
	// viability table was disabled by cardinality).
	DistinctMasks int `json:"distinct_masks"`
	// Hits counts index consultations that answered or jumped a subquery.
	Hits uint64 `json:"hits"`
	// Prunes counts product configurations discarded by the viability
	// check.
	Prunes uint64 `json:"prunes"`
}

// Stats returns the current snapshot.
func (x *Index) Stats() Stats {
	closed := 0
	for gl := range x.pred {
		if x.pred[gl] != nil || x.succ[gl] != nil {
			closed++
		}
	}
	sets := 0
	x.setMu.Lock()
	for _, cl := range x.setPred {
		if cl != nil {
			sets++
		}
	}
	x.setMu.Unlock()
	return Stats{
		Bytes:         x.memBytes + x.setBytes.Load(),
		SetClosures:   sets,
		BuildMs:       float64(x.buildTime.Microseconds()) / 1e3,
		ClosedLabels:  closed,
		Landmarks:     len(x.landmarks),
		DistinctMasks: len(x.masks),
		Hits:          x.hits.Load(),
		Prunes:        x.prunes.Load(),
	}
}
