package rpq

import (
	"fmt"
	"testing"

	"repro/internal/graph"
	"repro/internal/regex"
)

// diamondChain builds a chain of k diamonds, each contributing two
// equal-length "a" paths, followed by a final "c" edge:
//
//	s0 ={a,a}=> m0 ={a,a}=> s1 ... sk -c-> t
//
// The graph has 2^k distinct shortest accepted paths for a*.c, all of
// length 2k+1, which is exactly the shape that made the per-entry
// path-copying BFS of the old Witness quadratic.
func diamondChain(k int) *graph.Graph {
	g := graph.New()
	for i := 0; i < k; i++ {
		s := graph.NodeID(fmt.Sprintf("s%02d", i))
		hi := graph.NodeID(fmt.Sprintf("h%02d", i))
		lo := graph.NodeID(fmt.Sprintf("l%02d", i))
		next := graph.NodeID(fmt.Sprintf("s%02d", i+1))
		g.MustAddEdge(s, "a", hi)
		g.MustAddEdge(s, "a", lo)
		g.MustAddEdge(hi, "a", next)
		g.MustAddEdge(lo, "a", next)
	}
	g.MustAddEdge(graph.NodeID(fmt.Sprintf("s%02d", k)), "c", "t")
	return g
}

// TestWitnessShortestOnManyEqualLengthPaths is the regression test for the
// parent-pointer rewrite of Witness: on a graph with exponentially many
// equal-length shortest paths the returned witness must still be one of
// the shortest, valid, and cheap to extract.
func TestWitnessShortestOnManyEqualLengthPaths(t *testing.T) {
	const k = 10 // 2^10 = 1024 tied shortest paths
	g := diamondChain(k)
	q := regex.MustParse("(a)*.c")
	e := New(g, q)
	start := graph.NodeID("s00")
	if !e.Selects(start) {
		t.Fatalf("%s should be selected by %s", start, q)
	}
	w, ok := e.Witness(start)
	if !ok {
		t.Fatalf("no witness for %s", start)
	}
	if want := 2*k + 1; len(w) != want {
		t.Fatalf("witness length = %d, want shortest = %d", len(w), want)
	}
	assertValidWitness(t, g, q, start, w)

	// Every selected node must get a shortest witness too; the diamond
	// interior nodes all reach t.
	for _, n := range e.Selected() {
		wn, ok := e.Witness(n)
		if !ok {
			t.Fatalf("selected node %s has no witness", n)
		}
		assertValidWitness(t, g, q, n, wn)
	}
}

// TestWitnessRepeatedCallsIndependent guards the pooled BFS scratch: the
// paths returned by consecutive calls must not alias each other.
func TestWitnessRepeatedCallsIndependent(t *testing.T) {
	g := diamondChain(3)
	q := regex.MustParse("(a)*.c")
	e := New(g, q)
	w1, ok1 := e.Witness("s00")
	w2, ok2 := e.Witness("s01")
	if !ok1 || !ok2 {
		t.Fatal("expected witnesses for both nodes")
	}
	if len(w1) != 7 || len(w2) != 5 {
		t.Fatalf("witness lengths = %d, %d; want 7, 5", len(w1), len(w2))
	}
	assertValidWitness(t, g, q, "s00", w1)
	assertValidWitness(t, g, q, "s01", w2)
}
