// Package rpq evaluates regular path queries on graph databases.
//
// A path query q is a regular expression over edge labels. Under the
// semantics of the paper a node v of the graph is selected by q if there
// exists a directed path starting at v whose sequence of edge labels spells
// a word of L(q). Evaluation runs a product-graph reachability between the
// graph and a DFA of q, which yields the selected set of all nodes in
// O(|V|·|Q| + |E|·|Q|) after determinisation of q.
package rpq

import (
	"sort"

	"repro/internal/automaton"
	"repro/internal/graph"
	"repro/internal/regex"
)

// Engine evaluates one compiled query against one graph. It precomputes
// the product reachability so that Selected, Selects and Witness are cheap.
type Engine struct {
	g     *graph.Graph
	query *regex.Expr
	dfa   *automaton.DFA
	// selected caches the full answer set.
	selected map[graph.NodeID]bool
	// accReach[productKey] is true if an accepting configuration is
	// reachable from that (node, state) configuration.
	accReach map[config]bool
}

type config struct {
	node  graph.NodeID
	state automaton.State
}

// New compiles the query against the graph's alphabet and precomputes the
// selected node set.
func New(g *graph.Graph, query *regex.Expr) *Engine {
	alphabet := make([]string, 0)
	for _, l := range g.Alphabet() {
		alphabet = append(alphabet, string(l))
	}
	dfa := automaton.FromRegex(query).Determinize(alphabet).Minimize()
	e := &Engine{
		g:        g,
		query:    query,
		dfa:      dfa,
		selected: make(map[graph.NodeID]bool),
		accReach: make(map[config]bool),
	}
	e.computeReachability()
	return e
}

// Query returns the compiled query expression.
func (e *Engine) Query() *regex.Expr { return e.query }

// computeReachability marks every configuration (node, state) from which an
// accepting DFA state is reachable in the product graph, by a backward
// breadth-first propagation from accepting configurations.
func (e *Engine) computeReachability() {
	// Build reverse product adjacency lazily: for a configuration (u, s')
	// its predecessors are configurations (v, s) with an edge v -a-> u and
	// DFA transition s -a-> s'. Rather than materialising it, iterate to a
	// fixpoint using a worklist seeded with accepting configurations.
	//
	// Seed: every (node, state) with state accepting.
	var queue []config
	for _, node := range e.g.Nodes() {
		for s := automaton.State(0); s < automaton.State(e.dfa.NumStates()); s++ {
			if e.dfa.IsAccepting(s) {
				c := config{node, s}
				e.accReach[c] = true
				queue = append(queue, c)
			}
		}
	}
	// Predecessor exploration: for configuration (u, s') examine incoming
	// graph edges v -a-> u and DFA states s with s -a-> s'.
	// Precompute DFA reverse transitions per label.
	reverse := make(map[string]map[automaton.State][]automaton.State)
	for _, l := range e.dfa.Alphabet() {
		reverse[l] = make(map[automaton.State][]automaton.State)
		for s := automaton.State(0); s < automaton.State(e.dfa.NumStates()); s++ {
			next, _ := e.dfa.Next(s, l)
			reverse[l][next] = append(reverse[l][next], s)
		}
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, edge := range e.g.In(cur.node) {
			preds := reverse[string(edge.Label)][cur.state]
			for _, s := range preds {
				c := config{edge.From, s}
				if !e.accReach[c] {
					e.accReach[c] = true
					queue = append(queue, c)
				}
			}
		}
	}
	start := e.dfa.Start()
	for _, node := range e.g.Nodes() {
		if e.accReach[config{node, start}] {
			e.selected[node] = true
		}
	}
}

// Selects reports whether the query selects the node.
func (e *Engine) Selects(node graph.NodeID) bool { return e.selected[node] }

// Selected returns the sorted list of selected nodes.
func (e *Engine) Selected() []graph.NodeID {
	out := make([]graph.NodeID, 0, len(e.selected))
	for id := range e.selected {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Witness returns a shortest path (sequence of edges) starting at node
// whose labels spell a word of L(q), and ok=false if the node is not
// selected. A selected node whose shortest witness is the empty word (a
// nullable query) returns an empty edge slice with ok=true.
func (e *Engine) Witness(node graph.NodeID) ([]graph.Edge, bool) {
	if !e.selected[node] {
		return nil, false
	}
	start := config{node, e.dfa.Start()}
	if e.dfa.IsAccepting(e.dfa.Start()) {
		return []graph.Edge{}, true
	}
	type entry struct {
		c    config
		path []graph.Edge
	}
	seen := map[config]bool{start: true}
	queue := []entry{{start, nil}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, edge := range e.g.Out(cur.c.node) {
			next, ok := e.dfa.Next(cur.c.state, string(edge.Label))
			if !ok {
				continue
			}
			nc := config{edge.To, next}
			if seen[nc] {
				continue
			}
			// Only explore configurations that can still reach acceptance;
			// this keeps the BFS linear in the useful product.
			if !e.accReach[nc] {
				continue
			}
			seen[nc] = true
			path := append(append([]graph.Edge(nil), cur.path...), edge)
			if e.dfa.IsAccepting(next) {
				return path, true
			}
			queue = append(queue, entry{nc, path})
		}
	}
	return nil, false
}

// Evaluate is a convenience helper that compiles and evaluates the query in
// one call and returns the selected nodes.
func Evaluate(g *graph.Graph, query *regex.Expr) []graph.NodeID {
	return New(g, query).Selected()
}

// SelectsWithin reports whether the node has a path of length at most
// maxLen whose labels are in L(q). It is used by the bounded strategies.
func (e *Engine) SelectsWithin(node graph.NodeID, maxLen int) bool {
	type entry struct {
		c     config
		depth int
	}
	start := config{node, e.dfa.Start()}
	if e.dfa.IsAccepting(e.dfa.Start()) {
		return true
	}
	seen := map[config]int{start: 0}
	queue := []entry{{start, 0}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.depth >= maxLen {
			continue
		}
		for _, edge := range e.g.Out(cur.c.node) {
			next, ok := e.dfa.Next(cur.c.state, string(edge.Label))
			if !ok {
				continue
			}
			nc := config{edge.To, next}
			if d, ok := seen[nc]; ok && d <= cur.depth+1 {
				continue
			}
			seen[nc] = cur.depth + 1
			if e.dfa.IsAccepting(next) {
				return true
			}
			queue = append(queue, entry{nc, cur.depth + 1})
		}
	}
	return false
}

// Consistent reports whether the query selects every node of positives and
// none of negatives on the graph.
func Consistent(g *graph.Graph, query *regex.Expr, positives, negatives []graph.NodeID) bool {
	e := New(g, query)
	for _, p := range positives {
		if !e.Selects(p) {
			return false
		}
	}
	for _, n := range negatives {
		if e.Selects(n) {
			return false
		}
	}
	return true
}
