// Package rpq evaluates regular path queries on graph databases.
//
// A path query q is a regular expression over edge labels. Under the
// semantics of the paper a node v of the graph is selected by q if there
// exists a directed path starting at v whose sequence of edge labels spells
// a word of L(q). Evaluation runs a product-graph reachability between the
// graph and a DFA of q, which yields the selected set of all nodes in
// O(|V|·|Q| + |E|·|Q|) after determinisation of q.
//
// The evaluation core is integer-indexed and allocation-light: the graph is
// interned into a CSR view (graph.Indexed), the DFA transition relation is
// walked by dense label index with a precomputed reverse table, and the
// product-reachability frontier lives in a flat []uint64 bitset indexed by
// node*numStates + state. Compiled DFAs are memoised by canonical query
// string (see cache.go), so re-evaluating the same query on a new graph
// revision pays only the linear product sweep.
package rpq

import (
	"sync"
	"sync/atomic"

	"repro/internal/automaton"
	"repro/internal/graph"
	"repro/internal/regex"
	"repro/internal/rpq/index"
)

// Engine evaluates one compiled query against one graph. It precomputes
// the product reachability so that Selected, Selects and Witness are cheap.
// An Engine is immutable after New and safe for concurrent use.
type Engine struct {
	g     *graph.Graph
	ix    *graph.Indexed
	query *regex.Expr
	dfa   *automaton.DFA

	numStates int
	start     automaton.State
	// dfaLabel[gl] is the DFA label index of graph label index gl (total in
	// practice: the DFA alphabet is built as a superset of the graph
	// alphabet; -1 marks a label with no DFA transition, which every
	// product walk skips).
	dfaLabel  []int
	accepting []bool
	// accReach is a bitset over configurations node*numStates+state: the
	// bit is set iff an accepting configuration is reachable. The eager
	// sweeps fill it during construction; the indexed sweep leaves it nil
	// and parks a fill closure in accFill instead, materialised through
	// accOnce on the first configuration probe — Selected is served off
	// the per-state rows, so an /evaluate-only engine never pays the
	// product-layout scatter.
	accReach []uint64
	accOnce  sync.Once
	accPtr   atomic.Pointer[[]uint64]
	accFill  func() []uint64
	// selectedIDs caches the sorted answer set.
	selectedIDs []graph.NodeID
	// idx is the optional precomputed reachability index the engine was
	// built with (see indexed.go); nil engines behave identically, the
	// index only changes how fast the fixpoint and the forward searches
	// run.
	idx *index.Index
	// viab is the per-(out-label-mask, state) acceptance-viability table
	// derived from idx; nil disables the forward-search prune.
	viab []bool
	// scratch pools per-call BFS state (parent pointers, queue) so that
	// repeated Witness calls do not reallocate product-sized arrays.
	scratch sync.Pool
	// evalPool pools the bitset/queue scratch of SelectsWithin and
	// PairsFrom the same way.
	evalPool sync.Pool
}

// witnessScratch is the reusable BFS state of one Witness call. parent is
// kept all-zero between uses (zero = undiscovered); the owner clears the
// entries it touched before returning the scratch to the pool.
type witnessScratch struct {
	parent []int32
	lab    []int32
	queue  []int32
}

// evalScratch is the reusable forward-BFS state of one SelectsWithin or
// PairsFrom call. seen is kept all-zero and answers all-false between
// uses; the owner clears the entries it touched before returning the
// scratch to the pool.
type evalScratch struct {
	seen    []uint64
	queue   []int32
	next    []int32
	touched []int32
	answers []bool
}

// getEval returns a pooled scratch sized for the engine's product.
func (e *Engine) getEval() *evalScratch {
	n := e.ix.NumNodes()
	words := (n*e.numStates + 63) / 64
	es, _ := e.evalPool.Get().(*evalScratch)
	if es == nil || len(es.seen) < words || len(es.answers) < n {
		es = &evalScratch{
			seen:    make([]uint64, words),
			answers: make([]bool, n),
		}
	}
	return es
}

func (e *Engine) getScratch(total int) *witnessScratch {
	ws, _ := e.scratch.Get().(*witnessScratch)
	if ws == nil || len(ws.parent) < total {
		ws = &witnessScratch{
			parent: make([]int32, total),
			lab:    make([]int32, total),
			queue:  make([]int32, 0, 64),
		}
	}
	return ws
}

// cfg packs a product configuration into one int.
func (e *Engine) cfg(node int32, state automaton.State) int {
	return int(node)*e.numStates + int(state)
}

func (e *Engine) reach(c int) bool {
	acc := e.accBits()
	return acc[c>>6]&(1<<(uint(c)&63)) != 0
}

// accBits returns the packed configuration bitset, materialising it on
// first use when the engine was built by the indexed sweep.
func (e *Engine) accBits() []uint64 {
	if e.accReach != nil {
		return e.accReach
	}
	e.accOnce.Do(func() {
		acc := e.accFill()
		e.accFill = nil // frees the captured sweep scratch
		e.accPtr.Store(&acc)
	})
	return *e.accPtr.Load()
}

// New compiles the query against the graph's alphabet and precomputes the
// selected node set with a sequential product sweep. The DFA compilation is
// memoised per canonical query string, so repeated calls with an equal
// query only pay the product sweep. See NewWith for the sharded sweep.
func New(g *graph.Graph, query *regex.Expr) *Engine {
	e := newEngine(g, query)
	e.computeReachability()
	return e
}

// newEngine interns the graph, compiles the DFA and wires the label
// translation tables, leaving the reachability sweep to the caller.
func newEngine(g *graph.Graph, query *regex.Expr) *Engine {
	ix := g.Indexed()
	alphabet := make([]string, ix.NumLabels())
	for l := range alphabet {
		alphabet[l] = string(ix.LabelAt(int32(l)))
	}
	dfa := compiledDFA(query, alphabet)
	e := &Engine{
		g:         g,
		ix:        ix,
		query:     query,
		dfa:       dfa,
		numStates: dfa.NumStates(),
		start:     dfa.Start(),
		accepting: dfa.AcceptingMask(),
	}
	e.dfaLabel = make([]int, ix.NumLabels())
	for gl := 0; gl < ix.NumLabels(); gl++ {
		li, ok := dfa.LabelIndex(string(ix.LabelAt(int32(gl))))
		if !ok {
			// Unreachable: the DFA alphabet is built as a superset of the
			// graph alphabet. Treat a mismatch as "no transition" so a
			// broken invariant under-selects instead of corrupting results.
			li = -1
		}
		e.dfaLabel[gl] = li
	}
	return e
}

// Query returns the compiled query expression.
func (e *Engine) Query() *regex.Expr { return e.query }

// computeReachability marks every configuration (node, state) from which an
// accepting DFA state is reachable in the product graph, by a backward
// breadth-first propagation from accepting configurations over the CSR
// in-edges and the DFA reverse-transition table.
func (e *Engine) computeReachability() {
	n := e.ix.NumNodes()
	S := e.numStates
	total := n * S
	e.accReach = make([]uint64, (total+63)/64)
	if total == 0 {
		return
	}
	queue := make([]int32, 0, total)
	// Seed: every (node, state) with state accepting.
	for s := 0; s < S; s++ {
		if !e.accepting[s] {
			continue
		}
		for i := 0; i < n; i++ {
			c := i*S + s
			e.accReach[c>>6] |= 1 << (uint(c) & 63)
			queue = append(queue, int32(c))
		}
	}
	rev := e.dfa.Reverse()
	numLabels := e.ix.NumLabels()
	for head := 0; head < len(queue); head++ {
		c := int(queue[head])
		u := int32(c / S)
		sp := automaton.State(c % S)
		for gl := 0; gl < numLabels; gl++ {
			ins := e.ix.In(u, int32(gl))
			if len(ins) == 0 || e.dfaLabel[gl] < 0 {
				continue
			}
			preds := rev.Pred(sp, e.dfaLabel[gl])
			if len(preds) == 0 {
				continue
			}
			for _, v := range ins {
				base := int(v) * S
				for _, s := range preds {
					pc := base + int(s)
					if e.accReach[pc>>6]&(1<<(uint(pc)&63)) == 0 {
						e.accReach[pc>>6] |= 1 << (uint(pc) & 63)
						queue = append(queue, int32(pc))
					}
				}
			}
		}
	}
	e.collectSelected()
}

// collectSelected caches the sorted answer set: node indices are interned
// in sorted NodeID order, so one ascending sweep yields sorted IDs.
func (e *Engine) collectSelected() {
	n := e.ix.NumNodes()
	S := e.numStates
	for i := 0; i < n; i++ {
		if e.reach(i*S + int(e.start)) {
			e.selectedIDs = append(e.selectedIDs, e.ix.NodeAt(int32(i)))
		}
	}
}

// Selects reports whether the query selects the node.
func (e *Engine) Selects(node graph.NodeID) bool {
	i, ok := e.ix.IndexOf(node)
	if !ok {
		return false
	}
	return e.reach(e.cfg(i, e.start))
}

// SameSelection reports whether both engines select exactly the same node
// set. Both engines must evaluate over the same graph; the comparison is
// linear in the answer size.
func (e *Engine) SameSelection(other *Engine) bool {
	if len(e.selectedIDs) != len(other.selectedIDs) {
		return false
	}
	for i := range e.selectedIDs {
		if e.selectedIDs[i] != other.selectedIDs[i] {
			return false
		}
	}
	return true
}

// Selected returns the sorted list of selected nodes.
func (e *Engine) Selected() []graph.NodeID {
	out := make([]graph.NodeID, len(e.selectedIDs))
	copy(out, e.selectedIDs)
	return out
}

// Witness returns a shortest path (sequence of edges) starting at node
// whose labels spell a word of L(q), and ok=false if the node is not
// selected. A selected node whose shortest witness is the empty word (a
// nullable query) returns an empty edge slice with ok=true.
//
// The BFS stores one parent pointer per discovered configuration instead of
// copying the partial path into every queue entry, so extraction is linear
// in the explored product rather than quadratic in path length.
func (e *Engine) Witness(node graph.NodeID) ([]graph.Edge, bool) {
	ni, ok := e.ix.IndexOf(node)
	if !ok || !e.reach(e.cfg(ni, e.start)) {
		return nil, false
	}
	if e.accepting[e.start] {
		return []graph.Edge{}, true
	}
	S := e.numStates
	total := e.ix.NumNodes() * S
	// parent[c] = parent configuration + 1 (0 = undiscovered, -1 = root);
	// lab[c] = graph label index of the edge that discovered c.
	ws := e.getScratch(total)
	parent, lab := ws.parent, ws.lab
	startCfg := e.cfg(ni, e.start)
	parent[startCfg] = -1
	queue := append(ws.queue[:0], int32(startCfg))
	numLabels := e.ix.NumLabels()
	found := -1
search:
	for head := 0; head < len(queue); head++ {
		c := int(queue[head])
		u := int32(c / S)
		s := automaton.State(c % S)
		for gl := 0; gl < numLabels; gl++ {
			outs := e.ix.Out(u, int32(gl))
			if len(outs) == 0 || e.dfaLabel[gl] < 0 {
				continue
			}
			next := e.dfa.NextByIndex(s, e.dfaLabel[gl])
			for _, v := range outs {
				nc := e.cfg(v, next)
				if parent[nc] != 0 {
					continue
				}
				// Only explore configurations that can still reach
				// acceptance; this keeps the BFS linear in the useful
				// product.
				if !e.reach(nc) {
					continue
				}
				parent[nc] = int32(c) + 1
				lab[nc] = int32(gl)
				if e.accepting[next] {
					found = nc
					break search
				}
				queue = append(queue, int32(nc))
			}
		}
	}
	var path []graph.Edge
	if found >= 0 {
		path = e.reconstruct(parent, lab, found)
		parent[found] = 0
	}
	// Restore the all-zero invariant before pooling the scratch: only the
	// discovered configurations (all of which sit in the queue) were touched.
	for _, c := range queue {
		parent[c] = 0
	}
	ws.queue = queue[:0]
	e.scratch.Put(ws)
	return path, found >= 0
}

// reconstruct walks the parent pointers back from the accepting
// configuration and emits the edge sequence in forward order.
func (e *Engine) reconstruct(parent, parentLab []int32, last int) []graph.Edge {
	depth := 0
	for c := last; parent[c] != -1; c = int(parent[c]) - 1 {
		depth++
	}
	path := make([]graph.Edge, depth)
	S := e.numStates
	for c := last; parent[c] != -1; c = int(parent[c]) - 1 {
		p := int(parent[c]) - 1
		depth--
		path[depth] = graph.Edge{
			From:  e.ix.NodeAt(int32(p / S)),
			Label: e.ix.LabelAt(parentLab[c]),
			To:    e.ix.NodeAt(int32(c / S)),
		}
	}
	return path
}

// Evaluate is a convenience helper that compiles and evaluates the query in
// one call and returns the selected nodes.
func Evaluate(g *graph.Graph, query *regex.Expr) []graph.NodeID {
	return New(g, query).Selected()
}

// SelectsWithin reports whether the node has a path of length at most
// maxLen whose labels are in L(q). It is used by the bounded strategies.
func (e *Engine) SelectsWithin(node graph.NodeID, maxLen int) bool {
	ni, ok := e.ix.IndexOf(node)
	if !ok {
		return false
	}
	if e.accepting[e.start] {
		return true
	}
	if !e.viable(ni, e.start) {
		// The labels reachable from the node cannot spell any accepted
		// word, bounded or not.
		e.idx.AddPrunes(1)
		return false
	}
	S := e.numStates
	es := e.getEval()
	seen := es.seen
	startCfg := e.cfg(ni, e.start)
	seen[startCfg>>6] |= 1 << (uint(startCfg) & 63)
	touched := append(es.touched[:0], int32(startCfg))
	frontier := append(es.queue[:0], int32(startCfg))
	next := es.next[:0]
	numLabels := e.ix.NumLabels()
	found := false
	var pruned uint64
search:
	for depth := 0; depth < maxLen && len(frontier) > 0; depth++ {
		next = next[:0]
		for _, cc := range frontier {
			c := int(cc)
			u := int32(c / S)
			s := automaton.State(c % S)
			for gl := 0; gl < numLabels; gl++ {
				outs := e.ix.Out(u, int32(gl))
				if len(outs) == 0 || e.dfaLabel[gl] < 0 {
					continue
				}
				ns := e.dfa.NextByIndex(s, e.dfaLabel[gl])
				if e.accepting[ns] {
					found = true
					break search
				}
				for _, v := range outs {
					nc := e.cfg(v, ns)
					if seen[nc>>6]&(1<<(uint(nc)&63)) == 0 {
						seen[nc>>6] |= 1 << (uint(nc) & 63)
						touched = append(touched, int32(nc))
						if !e.viable(v, ns) {
							// Sound to drop: no path from v supplies the
							// labels an accepting run from ns still needs.
							pruned++
							continue
						}
						next = append(next, int32(nc))
					}
				}
			}
		}
		frontier, next = next, frontier
	}
	if pruned > 0 {
		e.idx.AddPrunes(pruned)
	}
	// Restore the all-zero invariant before pooling: every set bit was
	// recorded in touched.
	for _, c := range touched {
		seen[c>>6] &^= 1 << (uint(c) & 63)
	}
	es.queue, es.next, es.touched = frontier[:0], next[:0], touched[:0]
	e.evalPool.Put(es)
	return found
}

// Consistent reports whether the query selects every node of positives and
// none of negatives on the graph.
func Consistent(g *graph.Graph, query *regex.Expr, positives, negatives []graph.NodeID) bool {
	return New(g, query).ConsistentWith(positives, negatives)
}

// ConsistentWith reports whether the engine's query selects every node of
// positives and none of negatives.
func (e *Engine) ConsistentWith(positives, negatives []graph.NodeID) bool {
	for _, p := range positives {
		if !e.Selects(p) {
			return false
		}
	}
	for _, n := range negatives {
		if e.Selects(n) {
			return false
		}
	}
	return true
}
