package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
)

// Lock is an exclusive hold on a data directory, backed by a LOCK file
// carrying the owner's pid. Two gpsd daemons pointed at the same
// directory would interleave segment writes and snapshot renames into
// silent corruption; the lock turns that misconfiguration into a clear
// startup error.
//
// Exclusivity is enforced by flock(2) on the LOCK file, not by the
// file's existence: the kernel releases the lock the instant the owner
// dies, so a daemon killed without cleanup leaves only a stale pid note
// that the next acquirer locks right over — no pid-liveness guessing,
// and none of the delete/recreate races of remove-and-retry pid files.
// The pid content is informative (who holds it), written after the lock
// is won.
type Lock struct {
	f    *os.File
	path string
}

// ErrLocked reports that another live process holds the data directory.
var ErrLocked = errors.New("data directory is locked")

// AcquireLock takes the exclusive lock on a data directory, creating the
// directory (and the LOCK file, O_CREATE) if needed. If another process
// holds the flock, it returns ErrLocked naming the recorded owner pid. A
// LOCK file left behind by a dead process is stale by construction — its
// flock died with it — and is re-acquired silently.
func AcquireLock(dir string) (*Lock, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty data directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: lock: %w", err)
	}
	path := filepath.Join(dir, "LOCK")
	for attempt := 0; attempt < 5; attempt++ {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
		if err != nil {
			return nil, fmt.Errorf("store: lock: %w", err)
		}
		if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
			f.Close()
			if pid, readErr := readLockPid(path); readErr == nil {
				return nil, fmt.Errorf("store: %w: %s is held by running process %d", ErrLocked, path, pid)
			}
			return nil, fmt.Errorf("store: %w: %s is held by another process", ErrLocked, path)
		}
		// The previous owner may have unlinked the path between our open
		// and flock (its Release). We then hold a lock on a dead inode
		// while a rival creates a fresh LOCK — so verify the path still
		// names our file, and retry if not.
		fi, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("store: lock: %w", err)
		}
		pi, statErr := os.Stat(path)
		if statErr != nil || !os.SameFile(fi, pi) {
			f.Close()
			continue
		}
		if err := f.Truncate(0); err == nil {
			_, err = fmt.Fprintf(f, "%d\n", os.Getpid())
			if err == nil {
				err = f.Sync()
			}
		} else {
			f.Close()
			return nil, fmt.Errorf("store: lock: %w", err)
		}
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("store: lock: %w", err)
		}
		return &Lock{f: f, path: path}, nil
	}
	return nil, fmt.Errorf("store: %w: %s keeps changing hands", ErrLocked, path)
}

// NoteEpoch records the daemon's fencing epoch in the LOCK file beside
// the pid, so an operator inspecting a data directory can see which
// epoch its holder last served at. The note is informative — fencing is
// enforced by the epoch file and segment epoch frames, not by the LOCK —
// and is rewritten in place under the held flock.
func (l *Lock) NoteEpoch(epoch uint64) error {
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("store: lock: %w", err)
	}
	if _, err := l.f.Seek(0, 0); err != nil {
		return fmt.Errorf("store: lock: %w", err)
	}
	if _, err := fmt.Fprintf(l.f, "%d\nepoch=%d\n", os.Getpid(), epoch); err != nil {
		return fmt.Errorf("store: lock: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("store: lock: %w", err)
	}
	return nil
}

// Release drops the lock: the file is unlinked (so a lockless stat sees
// a clean directory) and the descriptor closed, which releases the
// flock. A crash without Release leaves the file behind, but its lock
// dies with the process, so the next AcquireLock wins immediately.
func (l *Lock) Release() error {
	rmErr := os.Remove(l.path)
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("store: unlock: %w", err)
	}
	if rmErr != nil && !os.IsNotExist(rmErr) {
		return fmt.Errorf("store: unlock: %w", rmErr)
	}
	return nil
}

// readLockPid parses the owner pid out of a LOCK file. The pid is the
// first line; later lines (the epoch note) are ignored.
func readLockPid(path string) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	line, _, _ := strings.Cut(strings.TrimSpace(string(data)), "\n")
	pid, err := strconv.Atoi(strings.TrimSpace(line))
	if err != nil || pid <= 0 {
		return 0, fmt.Errorf("store: malformed LOCK file %s", path)
	}
	return pid, nil
}
