// Package store is the durable persistence subsystem of the learning
// service. It separates what the serving layer keeps in memory from what
// must survive a process crash, behind one Engine interface with two
// implementations:
//
//   - the text engine (Store, opened by Open): one append-only JSONL
//     journal per learning session with one fsync per append, and
//     checksummed text graph snapshots. Every byte on disk is greppable;
//     it is kept as the readability/debugging engine and as the
//     equivalence oracle the binary engine is tested against;
//   - the binary engine (OpenEngine with EngineKindBinary, the default):
//     all session journals interleaved into length-prefixed CRC-framed
//     records in segment files, appended by a single group-commit writer
//     goroutine that batches concurrent appends into one fsync; journal
//     compaction that rewrites finished sessions as a single summary
//     record and retires dead segments; and binary varint-CSR graph
//     snapshots that skip the text round-trip on the recovery hot path.
//
// Both engines implement the same write-ahead discipline — a record is
// durable before the state transition it describes takes effect — and the
// same recovery semantics: journals are truncated to their longest valid
// prefix (a torn write never poisons the tail) and snapshots failing
// their length/CRC check are skipped and counted. Either engine reads
// both snapshot formats, so a data directory can switch engines without
// losing graphs.
//
// The store never interprets journal payloads — records carry opaque JSON
// and the service layer owns the schema — so the dependency points from
// service to store only.
package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"repro/internal/graph"
)

// ErrCompacting is returned by Compact when another compaction is already
// running on the engine (match with errors.Is).
var ErrCompacting = errors.New("compaction already running")

// Engine is the storage abstraction the service layer is wired to: append
// (CreateJournal + Journal.Append), snapshot (SaveGraph/DeleteGraph),
// compact, and recover (RecoverSessions/RecoverGraphs). Implementations
// must be safe for concurrent use.
type Engine interface {
	// EngineName identifies the implementation ("text" or "binary").
	EngineName() string
	// Dir returns the data directory path.
	Dir() string
	// CreateJournal creates the write-ahead journal for a new session. The
	// id must be new: an existing journal is never silently overwritten.
	CreateJournal(id string) (*Journal, error)
	// RecoverSessions replays every surviving session journal, sorted by
	// session id, truncating torn tails.
	RecoverSessions() ([]RecoveredSession, error)
	// SaveGraph writes (or atomically replaces) the snapshot of a graph.
	SaveGraph(name string, g *graph.Graph) error
	// DeleteGraph removes a graph snapshot; deleting a graph that was
	// never persisted is not an error.
	DeleteGraph(name string) error
	// RecoverGraphs loads every intact graph snapshot, sorted by name,
	// skipping (and counting) corrupt files.
	RecoverGraphs() ([]RecoveredGraph, error)
	// Compact rewrites the journal storage dropping dead data: removed
	// sessions disappear, finished sessions collapse to a single summary
	// record, dead segments are retired. Engines without a compactable
	// representation return a report with Supported=false. The binary
	// engine compacts live — with journals out and appends in flight —
	// by sealing the active segment and rewriting only the sealed ones;
	// a concurrent second call fails with ErrCompacting.
	Compact() (CompactionReport, error)
	// Metrics returns a point-in-time snapshot of the engine's counters.
	Metrics() Metrics
	// Close releases engine resources (the group-commit writer, open
	// segment files). Journals must not be appended to after Close.
	Close() error
}

// Engine kinds accepted by OpenEngine.
const (
	EngineKindText   = "text"
	EngineKindBinary = "binary"
)

// EngineOptions configures OpenEngine.
type EngineOptions struct {
	// Kind selects the implementation: EngineKindBinary (default) or
	// EngineKindText.
	Kind string
	// CommitInterval is the binary engine's maximum group-commit batch
	// delay: how long the writer may hold an fsync open to let more
	// concurrent appends join the batch. 0 (the default) batches only
	// what is already queued — no added latency, natural batching under
	// load. Terminal records always flush immediately.
	CommitInterval time.Duration
	// SegmentSize is the binary engine's segment roll-over threshold in
	// bytes (default 4 MiB).
	SegmentSize int64
	// Fault, when set, is called at named points of the binary engine's
	// compaction protocol ("compact-scanned", "compact-swap-mid", ...).
	// A chaos harness kills the process from the hook to prove crash
	// safety at that exact point; returning a non-nil error aborts the
	// protocol there instead. Nil in production.
	Fault func(point string) error
}

// OpenEngine creates (if needed) and opens a data directory with the
// selected engine.
func OpenEngine(dir string, opts EngineOptions) (Engine, error) {
	switch opts.Kind {
	case EngineKindText:
		return Open(dir)
	case "", EngineKindBinary:
		return openBinary(dir, opts)
	default:
		return nil, fmt.Errorf("store: unknown engine %q (want %s or %s)", opts.Kind, EngineKindText, EngineKindBinary)
	}
}

// Store is the text engine: one data directory holding
//
//	<dir>/graphs/<name>.graph      checksummed graph snapshots
//	<dir>/sessions/<id>.jsonl      per-session JSONL journals
type Store struct {
	dir string
	m   metrics
}

// metrics holds an engine's atomic counters.
type metrics struct {
	journalAppends    atomic.Int64
	journalBytes      atomic.Int64
	fsyncs            atomic.Int64
	fsyncNanos        atomic.Int64
	snapshotSaves     atomic.Int64
	snapshotBytes     atomic.Int64
	recoveredGraphs   atomic.Int64
	recoveredSessions atomic.Int64
	truncatedJournals atomic.Int64
	corruptSnapshots  atomic.Int64
	// Binary engine only.
	groupCommits      atomic.Int64
	segmentsCreated   atomic.Int64
	corruptFrames     atomic.Int64
	compactionRuns    atomic.Int64
	compactedSessions atomic.Int64
	retiredSegments   atomic.Int64
	footersWritten    atomic.Int64
	footerHits        atomic.Int64
	footerFallbacks   atomic.Int64
}

// Metrics is a point-in-time snapshot of an engine's counters, shaped for
// the service's /v1/stats endpoint.
type Metrics struct {
	// Engine is the implementation name ("text" or "binary").
	Engine string `json:"engine"`
	// JournalAppends and JournalBytes count durable journal records and
	// their on-disk size.
	JournalAppends int64 `json:"journal_appends"`
	JournalBytes   int64 `json:"journal_bytes"`
	// Fsyncs counts journal fsync calls; FsyncMeanMicros is their mean
	// latency. Under group commit one fsync covers a whole batch, so
	// Fsyncs can be far below JournalAppends.
	Fsyncs          int64   `json:"fsyncs"`
	FsyncMeanMicros float64 `json:"fsync_mean_micros"`
	// GroupCommits counts group-commit batches and MeanBatch the mean
	// number of appends sharing one fsync (binary engine only).
	GroupCommits int64   `json:"group_commits,omitempty"`
	MeanBatch    float64 `json:"group_commit_mean_batch,omitempty"`
	// SegmentsCreated counts segment files opened since boot (binary
	// engine only).
	SegmentsCreated int64 `json:"segments_created,omitempty"`
	// SnapshotSaves and SnapshotBytes count graph snapshot writes.
	SnapshotSaves int64 `json:"snapshot_saves"`
	SnapshotBytes int64 `json:"snapshot_bytes"`
	// RecoveredGraphs and RecoveredSessions count successful recoveries
	// since the store was opened.
	RecoveredGraphs   int64 `json:"recovered_graphs"`
	RecoveredSessions int64 `json:"recovered_sessions"`
	// TruncatedJournals counts journals cut back to a valid prefix during
	// recovery; CorruptSnapshots counts snapshot files that failed their
	// integrity check and were skipped; CorruptFrames counts CRC-failed
	// segment frames skipped by the binary engine.
	TruncatedJournals int64 `json:"truncated_journals"`
	CorruptSnapshots  int64 `json:"corrupt_snapshots"`
	CorruptFrames     int64 `json:"corrupt_frames,omitempty"`
	// CompactionRuns, CompactedSessions and RetiredSegments describe
	// journal compaction activity (binary engine only).
	CompactionRuns    int64 `json:"compaction_runs,omitempty"`
	CompactedSessions int64 `json:"compacted_sessions,omitempty"`
	RetiredSegments   int64 `json:"retired_segments,omitempty"`
	// FootersWritten counts segment index footers written at seal time;
	// FooterHits counts scans served from a footer (id enumeration or
	// damage resync) and FooterFallbacks the sealed-segment scans that had
	// to read every frame for lack of a usable footer (binary engine only).
	FootersWritten  int64 `json:"wal_footers_written,omitempty"`
	FooterHits      int64 `json:"wal_footer_hits,omitempty"`
	FooterFallbacks int64 `json:"wal_footer_fallbacks,omitempty"`
}

// snapshot fills the shared counter fields of a Metrics.
func (m *metrics) snapshot(engine string) Metrics {
	out := Metrics{
		Engine:            engine,
		JournalAppends:    m.journalAppends.Load(),
		JournalBytes:      m.journalBytes.Load(),
		Fsyncs:            m.fsyncs.Load(),
		GroupCommits:      m.groupCommits.Load(),
		SegmentsCreated:   m.segmentsCreated.Load(),
		SnapshotSaves:     m.snapshotSaves.Load(),
		SnapshotBytes:     m.snapshotBytes.Load(),
		RecoveredGraphs:   m.recoveredGraphs.Load(),
		RecoveredSessions: m.recoveredSessions.Load(),
		TruncatedJournals: m.truncatedJournals.Load(),
		CorruptSnapshots:  m.corruptSnapshots.Load(),
		CorruptFrames:     m.corruptFrames.Load(),
		CompactionRuns:    m.compactionRuns.Load(),
		CompactedSessions: m.compactedSessions.Load(),
		RetiredSegments:   m.retiredSegments.Load(),
		FootersWritten:    m.footersWritten.Load(),
		FooterHits:        m.footerHits.Load(),
		FooterFallbacks:   m.footerFallbacks.Load(),
	}
	if out.Fsyncs > 0 {
		out.FsyncMeanMicros = float64(m.fsyncNanos.Load()) / float64(out.Fsyncs) / 1e3
	}
	if out.GroupCommits > 0 {
		out.MeanBatch = float64(out.JournalAppends) / float64(out.GroupCommits)
	}
	return out
}

// Open creates (if needed) and opens a data directory with the text
// engine. A directory whose sessions were written by the binary engine
// is refused: the text engine cannot read wal segments, and silently
// recovering zero sessions from a populated directory would look like a
// healthy boot while abandoning every parked session. (The reverse
// direction is supported — the binary engine migrates JSONL journals in
// place.)
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty data directory")
	}
	if segs, _ := filepath.Glob(filepath.Join(dir, "wal", "seg-*.seg")); len(segs) > 0 {
		return nil, fmt.Errorf("store: %s holds a binary-engine wal (%d segments); reopen it with the binary engine", dir, len(segs))
	}
	for _, d := range []string{dir, filepath.Join(dir, "graphs"), filepath.Join(dir, "sessions")} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	return &Store{dir: dir}, nil
}

// EngineName identifies the text engine.
func (s *Store) EngineName() string { return EngineKindText }

// Dir returns the data directory path.
func (s *Store) Dir() string { return s.dir }

// Metrics returns a snapshot of the store's counters.
func (s *Store) Metrics() Metrics { return s.m.snapshot(EngineKindText) }

// Compact is a no-op on the text engine: per-session JSONL files carry no
// dead segments, and finished journals are kept whole for readability.
func (s *Store) Compact() (CompactionReport, error) {
	return CompactionReport{}, nil
}

// Close releases nothing on the text engine: journals own their files.
func (s *Store) Close() error { return nil }

// CompactionReport summarises one Compact run.
type CompactionReport struct {
	// Supported is false when the engine has no compactable journal
	// representation (the text engine).
	Supported bool `json:"supported"`
	// SessionsCompacted counts finished sessions rewritten as a single
	// summary record; SessionsDropped counts removed (tombstoned)
	// sessions whose records were purged.
	SessionsCompacted int `json:"sessions_compacted"`
	SessionsDropped   int `json:"sessions_dropped"`
	// SegmentsRetired and SegmentsWritten count segment files before and
	// after; BytesBefore and BytesAfter the journal bytes on disk.
	SegmentsRetired int   `json:"segments_retired"`
	SegmentsWritten int   `json:"segments_written"`
	BytesBefore     int64 `json:"bytes_before"`
	BytesAfter      int64 `json:"bytes_after"`
}

func (s *Store) graphsDir() string   { return filepath.Join(s.dir, "graphs") }
func (s *Store) sessionsDir() string { return filepath.Join(s.dir, "sessions") }

// syncDir fsyncs a directory so a file creation, rename or removal inside
// it survives power loss — fsyncing the file alone pins its contents, not
// its directory entry.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
