// Package store is the durable persistence subsystem of the learning
// service. It separates what the serving layer keeps in memory from what
// must survive a process crash:
//
//   - one append-only JSONL journal per learning session (write-ahead: a
//     record is fsynced before the state transition it describes takes
//     effect), which doubles as the event stream served over SSE;
//   - one checksummed snapshot file per registered graph, written
//     atomically (temp file + rename);
//   - crash recovery that replays both back: journals are truncated to
//     their longest valid prefix (a torn write never poisons the tail) and
//     snapshots failing their length/CRC check are skipped and counted.
//
// The store never interprets journal payloads — records carry opaque JSON
// and the service layer owns the schema — so the dependency points from
// service to store only.
package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
)

// Store manages one data directory:
//
//	<dir>/graphs/<name>.graph      checksummed graph snapshots
//	<dir>/sessions/<id>.jsonl      session journals
type Store struct {
	dir string
	m   metrics
}

// metrics holds the store's atomic counters.
type metrics struct {
	journalAppends    atomic.Int64
	journalBytes      atomic.Int64
	fsyncs            atomic.Int64
	fsyncNanos        atomic.Int64
	snapshotSaves     atomic.Int64
	snapshotBytes     atomic.Int64
	recoveredGraphs   atomic.Int64
	recoveredSessions atomic.Int64
	truncatedJournals atomic.Int64
	corruptSnapshots  atomic.Int64
}

// Metrics is a point-in-time snapshot of the store's counters, shaped for
// the service's /v1/stats endpoint.
type Metrics struct {
	// JournalAppends and JournalBytes count fsynced journal records and
	// their on-disk size.
	JournalAppends int64 `json:"journal_appends"`
	JournalBytes   int64 `json:"journal_bytes"`
	// Fsyncs counts journal fsync calls; FsyncMeanMicros is their mean
	// latency.
	Fsyncs          int64   `json:"fsyncs"`
	FsyncMeanMicros float64 `json:"fsync_mean_micros"`
	// SnapshotSaves and SnapshotBytes count graph snapshot writes.
	SnapshotSaves int64 `json:"snapshot_saves"`
	SnapshotBytes int64 `json:"snapshot_bytes"`
	// RecoveredGraphs and RecoveredSessions count successful recoveries
	// since the store was opened.
	RecoveredGraphs   int64 `json:"recovered_graphs"`
	RecoveredSessions int64 `json:"recovered_sessions"`
	// TruncatedJournals counts journals cut back to a valid prefix during
	// recovery; CorruptSnapshots counts snapshot files that failed their
	// integrity check and were skipped.
	TruncatedJournals int64 `json:"truncated_journals"`
	CorruptSnapshots  int64 `json:"corrupt_snapshots"`
}

// Open creates (if needed) and opens a data directory.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty data directory")
	}
	for _, d := range []string{dir, filepath.Join(dir, "graphs"), filepath.Join(dir, "sessions")} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	return &Store{dir: dir}, nil
}

// Dir returns the data directory path.
func (s *Store) Dir() string { return s.dir }

// Metrics returns a snapshot of the store's counters.
func (s *Store) Metrics() Metrics {
	out := Metrics{
		JournalAppends:    s.m.journalAppends.Load(),
		JournalBytes:      s.m.journalBytes.Load(),
		Fsyncs:            s.m.fsyncs.Load(),
		SnapshotSaves:     s.m.snapshotSaves.Load(),
		SnapshotBytes:     s.m.snapshotBytes.Load(),
		RecoveredGraphs:   s.m.recoveredGraphs.Load(),
		RecoveredSessions: s.m.recoveredSessions.Load(),
		TruncatedJournals: s.m.truncatedJournals.Load(),
		CorruptSnapshots:  s.m.corruptSnapshots.Load(),
	}
	if out.Fsyncs > 0 {
		out.FsyncMeanMicros = float64(s.m.fsyncNanos.Load()) / float64(out.Fsyncs) / 1e3
	}
	return out
}

func (s *Store) graphsDir() string   { return filepath.Join(s.dir, "graphs") }
func (s *Store) sessionsDir() string { return filepath.Join(s.dir, "sessions") }

// syncDir fsyncs a directory so a file creation, rename or removal inside
// it survives power loss — fsyncing the file alone pins its contents, not
// its directory entry.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
