package store

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"
)

// ackedLog tracks the records a test appender got acknowledged, so a
// post-crash recovery can be checked against exactly what the engine
// promised was durable.
type ackedLog struct {
	mu    sync.Mutex
	acked map[string]int
}

func newAckedLog() *ackedLog { return &ackedLog{acked: make(map[string]int)} }

func (a *ackedLog) ack(sid string) {
	a.mu.Lock()
	a.acked[sid]++
	a.mu.Unlock()
}

func (a *ackedLog) count(sid string) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.acked[sid]
}

// verifyAcked checks that every acknowledged append of every session
// survived into the recovered record map, with the payloads intact.
func verifyAcked(t *testing.T, recs map[string][]Record, log *ackedLog, sids ...string) {
	t.Helper()
	for _, sid := range sids {
		want := log.count(sid)
		got := recs[sid]
		if len(got) < want {
			t.Fatalf("session %s: recovered %d records, %d were acked", sid, len(got), want)
		}
		for i := 0; i < want; i++ {
			var p testPayload
			if got[i].Seq != uint64(i+1) || json.Unmarshal(got[i].Data, &p) != nil || p.N != i+1 {
				t.Fatalf("session %s record %d corrupted: %+v", sid, i, got[i])
			}
		}
	}
}

// TestBinaryLiveCompactionConcurrentAppends runs repeated live
// compactions while appender goroutines keep writing, then recovers and
// checks nothing acked was lost, the tombstoned session is gone and the
// finished one collapsed to its summary.
func TestBinaryLiveCompactionConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	e := openBinaryT(t, dir, EngineOptions{SegmentSize: 256})
	log := newAckedLog()

	finished, err := e.CreateJournal("finished")
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, finished, 4)
	if err := finished.AppendTerminal("done", testPayload{S: "final"}); err != nil {
		t.Fatal(err)
	}
	removed, err := e.CreateJournal("removed")
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, removed, 3)
	if err := removed.Remove(); err != nil {
		t.Fatal(err)
	}

	const appenders = 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < appenders; i++ {
		sid := fmt.Sprintf("live-%d", i)
		jr, err := e.CreateJournal(sid)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 1; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := jr.Append("event", testPayload{N: n}); err != nil {
					t.Errorf("append %s/%d: %v", sid, n, err)
					return
				}
				log.ack(sid)
			}
		}()
	}

	var retired int
	for i := 0; i < 5; i++ {
		time.Sleep(5 * time.Millisecond)
		rep, err := e.Compact()
		if err != nil {
			t.Fatalf("live compaction %d: %v", i, err)
		}
		if !rep.Supported {
			t.Fatalf("live compaction %d not supported: %+v", i, rep)
		}
		retired += rep.SegmentsRetired
	}
	close(stop)
	wg.Wait()
	if retired == 0 {
		t.Fatal("five live compactions under sustained appends retired no segment")
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e2 := openBinaryT(t, dir, EngineOptions{})
	recs := recsOf(t, e2)
	verifyAcked(t, recs, log, "live-0", "live-1", "live-2", "live-3")
	if _, ok := recs["removed"]; ok {
		t.Fatal("tombstoned session survived live compaction")
	}
	fin := recs["finished"]
	if len(fin) != 2 || fin[1].Type != "done" {
		t.Fatalf("finished session = %+v, want its 2-record summary", fin)
	}
	if m := e2.Metrics(); m.CorruptFrames != 0 {
		t.Fatalf("clean run reported corrupt frames: %+v", m)
	}
}

// TestBinaryLiveCompactionCrashAtEveryPhase aborts a live compaction at
// each fault point in turn — with an appender racing it — and verifies
// the repaired wal still holds every acknowledged record. This is the
// online counterpart of TestBinaryCompactionCrashRepair: an abort at any
// phase must leave one of the directory states repairCompaction handles.
func TestBinaryLiveCompactionCrashAtEveryPhase(t *testing.T) {
	phases := []string{
		"compact-begin", "compact-scanned", "compact-written",
		"compact-swap-begin", "compact-linked", "compact-swap-mid",
		"compact-swapped", "compact-done",
	}
	for _, phase := range phases {
		t.Run(phase, func(t *testing.T) {
			dir := t.TempDir()
			boom := errors.New("injected fault")
			e := openBinaryT(t, dir, EngineOptions{
				SegmentSize: 128,
				Fault: func(point string) error {
					if point == phase {
						return boom
					}
					return nil
				},
			})
			log := newAckedLog()
			finished, err := e.CreateJournal("finished")
			if err != nil {
				t.Fatal(err)
			}
			appendN(t, finished, 3)
			if err := finished.AppendTerminal("done", testPayload{S: "final"}); err != nil {
				t.Fatal(err)
			}
			removed, err := e.CreateJournal("removed")
			if err != nil {
				t.Fatal(err)
			}
			if err := removed.Remove(); err != nil {
				t.Fatal(err)
			}
			live, err := e.CreateJournal("live")
			if err != nil {
				t.Fatal(err)
			}
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for n := 1; ; n++ {
					select {
					case <-stop:
						return
					default:
					}
					// Appends may start failing once the abort poisons the
					// engine (a swap left half-done); only acked ones count.
					if err := live.Append("event", testPayload{N: n}); err != nil {
						return
					}
					log.ack("live")
				}
			}()
			_, err = e.Compact()
			close(stop)
			wg.Wait()
			if !errors.Is(err, boom) {
				t.Fatalf("compaction at %s returned %v, want the injected fault", phase, err)
			}
			e.Close()

			e2 := openBinaryT(t, dir, EngineOptions{})
			recs := recsOf(t, e2)
			verifyAcked(t, recs, log, "live")
			if _, ok := recs["removed"]; ok {
				t.Fatal("tombstoned session resurrected by the aborted compaction")
			}
			fin := recs["finished"]
			if len(fin) == 0 || fin[len(fin)-1].Type != "done" {
				t.Fatalf("finished session lost its terminal record: %+v", fin)
			}
			// And the repaired wal compacts cleanly.
			if _, err := e2.Compact(); err != nil {
				t.Fatalf("offline compaction after repair: %v", err)
			}
			if got := recsOf(t, e2); len(got["live"]) < log.count("live") {
				t.Fatalf("post-repair compaction lost records: %d < %d", len(got["live"]), log.count("live"))
			}
		})
	}
}

// TestBinaryConcurrentCompactRefused: a second Compact while one is
// running fails fast with ErrCompacting.
func TestBinaryConcurrentCompactRefused(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	e := openBinaryT(t, t.TempDir(), EngineOptions{
		Fault: func(point string) error {
			if point == "compact-scanned" {
				close(entered)
				<-release
			}
			return nil
		},
	})
	jr, err := e.CreateJournal("s0001")
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, jr, 3)
	done := make(chan error, 1)
	go func() {
		_, err := e.Compact()
		done <- err
	}()
	<-entered
	if _, err := e.Compact(); !errors.Is(err, ErrCompacting) {
		t.Fatalf("concurrent compact returned %v, want ErrCompacting", err)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// referenceScanWal is a test-local port of the pre-streaming recovery
// reader (whole-segment os.ReadFile, no footer awareness beyond skipping
// unknown frames, no resynchronisation), used as the semantics oracle for
// the streaming reader. It never writes to disk.
func referenceScanWal(t *testing.T, walDir string) map[string][]Record {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(walDir, "seg-*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	var m metrics
	sessions := make(map[string]*scanSession)
	for si, path := range matches {
		last := si == len(matches)-1
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		off := 0
		for off < len(data) {
			if len(data)-off < frameHeaderSize {
				break
			}
			frameLen := int(binary.LittleEndian.Uint32(data[off:]))
			if frameLen > maxFrameSize || off+frameHeaderSize+frameLen > len(data) {
				break
			}
			payload := data[off+frameHeaderSize : off+frameHeaderSize+frameLen]
			if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(data[off+4:]) {
				if last {
					break
				}
				off += frameHeaderSize + frameLen
				continue
			}
			if df, err := decodePayload(payload); err == nil && df.flag != flagIndex && df.flag != flagTrailer && df.flag != flagEpoch {
				applyFrame(sessions, df, &m)
			}
			off += frameHeaderSize + frameLen
		}
	}
	out := make(map[string][]Record)
	for sid, sc := range sessions {
		if sc.tombstoned {
			continue
		}
		out[sid] = sc.recs
	}
	return out
}

// TestBinaryStreamingRecoveryEquivalence replays randomized traffic —
// including torn and bit-flipped tails — through the old whole-file
// reader and the streaming reader and requires identical surviving
// records.
func TestBinaryStreamingRecoveryEquivalence(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			dir := t.TempDir()
			segSize := int64(0) // default: one big tail segment
			if seed%2 == 1 {
				segSize = int64(100 + rng.Intn(300)) // several sealed segments
			}
			e := openBinaryT(t, dir, EngineOptions{SegmentSize: segSize})
			journals := make(map[string]*Journal)
			for i := 0; i < 6; i++ {
				sid := fmt.Sprintf("s%04d", i)
				jr, err := e.CreateJournal(sid)
				if err != nil {
					t.Fatal(err)
				}
				journals[sid] = jr
			}
			sids := make([]string, 0, len(journals))
			for sid := range journals {
				sids = append(sids, sid)
			}
			for op := 0; op < 120; op++ {
				sid := sids[rng.Intn(len(sids))]
				jr := journals[sid]
				if jr == nil {
					continue
				}
				switch rng.Intn(20) {
				case 0:
					if err := jr.AppendTerminal("done", testPayload{S: sid}); err != nil {
						t.Fatal(err)
					}
					journals[sid] = nil
				case 1:
					if err := jr.Remove(); err != nil {
						t.Fatal(err)
					}
					journals[sid] = nil
				default:
					if err := jr.Append("event", testPayload{N: op}); err != nil {
						t.Fatal(err)
					}
				}
			}
			e.Close()

			// Tear the tail: truncate a few bytes off the last segment or
			// flip a byte in its back half (both readers must stop at the
			// same frame).
			walDir := filepath.Join(dir, "wal")
			matches, err := filepath.Glob(filepath.Join(walDir, "seg-*.seg"))
			if err != nil || len(matches) == 0 {
				t.Fatalf("no segments: %v", err)
			}
			tail := matches[len(matches)-1]
			if fi, err := os.Stat(tail); err == nil && fi.Size() > frameHeaderSize {
				switch rng.Intn(3) {
				case 0:
					if err := os.Truncate(tail, fi.Size()-int64(1+rng.Intn(int(fi.Size()/2)))); err != nil {
						t.Fatal(err)
					}
				case 1:
					data, err := os.ReadFile(tail)
					if err != nil {
						t.Fatal(err)
					}
					data[len(data)/2+rng.Intn(len(data)/2)] ^= 0x40
					if err := os.WriteFile(tail, data, 0o644); err != nil {
						t.Fatal(err)
					}
				}
			}

			want := referenceScanWal(t, walDir)
			e2 := openBinaryT(t, dir, EngineOptions{})
			got := recsOf(t, e2)
			if len(got) != len(want) {
				t.Fatalf("session sets differ: streaming %d vs reference %d", len(got), len(want))
			}
			for sid, recs := range want {
				if !reflect.DeepEqual(got[sid], recs) {
					t.Fatalf("session %s diverged:\nstreaming %+v\nreference %+v", sid, got[sid], recs)
				}
			}
		})
	}
}

// TestBinarySegmentFooters checks that rolled segments carry a parseable
// index footer whose offsets point at real frames, and that the footer
// fast path serves id enumeration without scanning.
func TestBinarySegmentFooters(t *testing.T) {
	dir := t.TempDir()
	e := openBinaryT(t, dir, EngineOptions{SegmentSize: 200})
	for i := 0; i < 3; i++ {
		jr, err := e.CreateJournal(fmt.Sprintf("s%04d", i))
		if err != nil {
			t.Fatal(err)
		}
		appendN(t, jr, 8)
	}
	if m := e.Metrics(); m.FootersWritten == 0 {
		t.Fatalf("rolled segments wrote no footers: %+v", m)
	}
	e.Close()

	segs, err := filepath.Glob(filepath.Join(dir, "wal", "seg-*.seg"))
	if err != nil || len(segs) < 3 {
		t.Fatalf("want several segments, got %v", segs)
	}
	footered := 0
	for _, path := range segs[:len(segs)-1] {
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		entries, indexOff, ok := readSegmentFooter(path, fi.Size())
		if !ok {
			continue
		}
		footered++
		if indexOff <= 0 || len(entries) == 0 {
			t.Fatalf("segment %s: empty footer", path)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, ent := range entries {
			for _, off := range ent.offsets {
				if off < 0 || off+frameHeaderSize > int64(len(data)) {
					t.Fatalf("segment %s: offset %d out of range", path, off)
				}
				frameLen := int64(binary.LittleEndian.Uint32(data[off:]))
				payload := data[off+frameHeaderSize : off+frameHeaderSize+frameLen]
				if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(data[off+4:]) {
					t.Fatalf("segment %s: footer offset %d does not frame a valid record", path, off)
				}
				df, err := decodePayload(payload)
				if err != nil || df.sid != ent.sid {
					t.Fatalf("segment %s: offset %d decodes to %+v, want session %s", path, off, df, ent.sid)
				}
			}
		}
	}
	if footered == 0 {
		t.Fatal("no sealed segment had a readable footer")
	}

	// ensureScanned (via CreateJournal) enumerates ids from footers
	// without reading sealed frames, and still refuses duplicates.
	e2 := openBinaryT(t, dir, EngineOptions{})
	if _, err := e2.CreateJournal("s0001"); err == nil {
		t.Fatal("duplicate id from a footered segment must be refused")
	}
	if m := e2.Metrics(); m.FooterHits == 0 {
		t.Fatalf("id enumeration never hit a footer: %+v", m)
	}
}

// TestBinaryFooterResync destroys the framing mid-way through a sealed,
// footered segment and verifies the scan resynchronises at the next
// footer-known frame boundary instead of dropping the rest of the
// segment — the sessions whose frames follow the damage keep them.
func TestBinaryFooterResync(t *testing.T) {
	dir := t.TempDir()
	e := openBinaryT(t, dir, EngineOptions{SegmentSize: 300})
	a, err := e.CreateJournal("aaaa")
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.CreateJournal("bbbb")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 12; i++ {
		if err := a.Append("event", testPayload{N: i}); err != nil {
			t.Fatal(err)
		}
		if err := b.Append("event", testPayload{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	e.Close()

	segs, err := filepath.Glob(filepath.Join(dir, "wal", "seg-*.seg"))
	if err != nil || len(segs) < 2 {
		t.Fatalf("want sealed segments, got %v", segs)
	}
	// Find a sealed segment whose footer lists a frame of session aaaa
	// with at least one later frame of bbbb, and wreck aaaa's frame header
	// there (structural damage, not a flip).
	var hit bool
	var hitSeg string
	for _, path := range segs[:len(segs)-1] {
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		entries, _, ok := readSegmentFooter(path, fi.Size())
		if !ok {
			continue
		}
		var aOff, bAfter int64 = -1, -1
		for _, ent := range entries {
			switch ent.sid {
			case "aaaa":
				if len(ent.offsets) > 0 {
					aOff = ent.offsets[0]
				}
			}
		}
		if aOff < 0 {
			continue
		}
		for _, ent := range entries {
			if ent.sid != "bbbb" {
				continue
			}
			for _, off := range ent.offsets {
				if off > aOff {
					bAfter = off
					break
				}
			}
		}
		if bAfter < 0 {
			continue
		}
		f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt([]byte{0xff, 0xff, 0xff, 0xff}, aOff); err != nil {
			t.Fatal(err)
		}
		f.Close()
		hit, hitSeg = true, path
		break
	}
	if !hit {
		t.Skip("no segment interleaved aaaa before bbbb; layout changed")
	}
	_ = hitSeg

	e2 := openBinaryT(t, dir, EngineOptions{})
	recs := recsOf(t, e2)
	// Session bbbb must keep all 12 records: the frames after the damage
	// are only reachable through the footer resync.
	if got := len(recs["bbbb"]); got != 12 {
		t.Fatalf("bystander session kept %d records, want all 12 (footer resync)", got)
	}
	// Session aaaa is truncated at its first gap, like any mid-log loss.
	if got := len(recs["aaaa"]); got >= 12 || got < 0 {
		t.Fatalf("damaged session kept %d records, want a strict prefix", got)
	}
	m := e2.Metrics()
	if m.CorruptFrames == 0 || m.FooterHits == 0 {
		t.Fatalf("resync not exercised: %+v", m)
	}
}
