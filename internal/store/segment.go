package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
)

// This file holds the segment-level read path of the binary engine: a
// buffered frame-at-a-time scanner (recovery of a multi-GB wal must not
// slurp whole segments into memory) and the per-segment session index
// footer written when a segment is sealed.
//
// A sealed segment ends with two ordinary CRC-framed frames:
//
//	flag 4  index    per-session frame listing for the segment
//	flag 5  trailer  fixed-size locator: magic + offset of the index frame
//
// Both are valid frames, so readers that ignore them (or a segment that
// keeps growing after a reopened tail buries them mid-file) still scan
// correctly: the index is trusted only when the trailer is the last
// trailerFrameSize bytes of the file and every CRC checks out. Scans use
// the index two ways: session-id enumeration without decoding frames, and
// resynchronisation past structural damage in a sealed segment (without an
// index, framing is lost from the first bad byte to the end of the
// segment).

const (
	// trailerMagic marks a trailer frame ("GPS1" little-endian).
	trailerMagic = 0x31535047
	// trailerPayloadSize is flag(1) + magic(4) + index offset(8).
	trailerPayloadSize = 13
	// trailerFrameSize is the full on-disk trailer frame.
	trailerFrameSize = frameHeaderSize + trailerPayloadSize
)

// Sentinel errors of frameScanner.next. Any other non-nil, non-EOF error
// is a real I/O failure and aborts the scan.
var (
	// errTornFrame: structural damage — short header, implausible length,
	// or a length overrunning the file. Nothing after it can be framed.
	errTornFrame = errors.New("store: torn frame")
	// errBadCRC: the frame is well-framed but its payload checksum fails.
	// The scanner has advanced past it, so the caller may keep scanning.
	errBadCRC = errors.New("store: frame crc mismatch")
)

// scannedFrame is one frame read by frameScanner. payload aliases the
// scanner's internal buffer and is valid only until the next call.
type scannedFrame struct {
	payload []byte
	off     int64 // file offset of the frame header
	end     int64 // file offset just past the frame
}

// frameScanner reads a segment file frame by frame through a fixed-size
// buffer, so recovery memory is bounded by the largest single frame, not
// the segment size.
type frameScanner struct {
	f    *os.File
	r    *bufio.Reader
	size int64
	off  int64 // offset of the next unread frame
	buf  []byte
}

func openFrameScanner(path string) (*frameScanner, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: open segment %s: %w", path, err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: stat segment %s: %w", path, err)
	}
	return &frameScanner{f: f, r: bufio.NewReaderSize(f, 1<<16), size: fi.Size()}, nil
}

func (s *frameScanner) close() { s.f.Close() }

// next reads the next frame. It returns io.EOF at a clean end of file,
// errTornFrame at structural damage (scanner position unchanged — use
// resync to continue), errBadCRC for a checksummed-out frame (scanner
// already past it), or a wrapped I/O error.
func (s *frameScanner) next() (scannedFrame, error) {
	fr := scannedFrame{off: s.off, end: s.off}
	if s.off >= s.size {
		return fr, io.EOF
	}
	if s.size-s.off < frameHeaderSize {
		return fr, errTornFrame
	}
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(s.r, hdr[:]); err != nil {
		return fr, fmt.Errorf("store: read segment %s: %w", s.f.Name(), err)
	}
	frameLen := int64(binary.LittleEndian.Uint32(hdr[:4]))
	if frameLen > maxFrameSize || s.off+frameHeaderSize+frameLen > s.size {
		// The header bytes were consumed from the buffer but s.off still
		// points at the frame start; the caller either stops or resyncs to
		// an absolute offset.
		return fr, errTornFrame
	}
	if int64(cap(s.buf)) < frameLen {
		s.buf = make([]byte, frameLen)
	}
	s.buf = s.buf[:frameLen]
	if _, err := io.ReadFull(s.r, s.buf); err != nil {
		return fr, fmt.Errorf("store: read segment %s: %w", s.f.Name(), err)
	}
	s.off += frameHeaderSize + frameLen
	fr.end = s.off
	if crc32.ChecksumIEEE(s.buf) != binary.LittleEndian.Uint32(hdr[4:]) {
		return fr, errBadCRC
	}
	fr.payload = s.buf
	return fr, nil
}

// resync repositions the scanner at an absolute file offset (a frame
// boundary known from the segment's index footer).
func (s *frameScanner) resync(off int64) error {
	if _, err := s.f.Seek(off, io.SeekStart); err != nil {
		return fmt.Errorf("store: seek segment %s: %w", s.f.Name(), err)
	}
	s.r.Reset(s.f)
	s.off = off
	return nil
}

// --- segment index footer ---------------------------------------------------

// Index entry flag bits.
const (
	idxFinished   = 1 << 0
	idxTombstoned = 1 << 1
)

// segIndexEntry is one session's frame listing within a sealed segment.
type segIndexEntry struct {
	sid        string
	finished   bool
	tombstoned bool
	// offsets are the file offsets of the session's frame headers, in
	// append order.
	offsets []int64
}

// segIndexBuilder accumulates the per-session frame listing as the writer
// (or the compactor) appends frames to a segment.
type segIndexBuilder struct {
	m     map[string]*segIndexEntry
	order []string
}

func newSegIndexBuilder() *segIndexBuilder {
	return &segIndexBuilder{m: make(map[string]*segIndexEntry)}
}

func (b *segIndexBuilder) add(sid string, flag byte, off int64) {
	ent := b.m[sid]
	if ent == nil {
		ent = &segIndexEntry{sid: sid}
		b.m[sid] = ent
		b.order = append(b.order, sid)
	}
	switch flag {
	case flagTombstone:
		ent.tombstoned = true
	case flagTerminal, flagSummary:
		ent.finished = true
	}
	ent.offsets = append(ent.offsets, off)
}

func (b *segIndexBuilder) empty() bool { return len(b.order) == 0 }

// entries returns the accumulated listing sorted by session id.
func (b *segIndexBuilder) entries() []segIndexEntry {
	sort.Strings(b.order)
	out := make([]segIndexEntry, 0, len(b.order))
	for _, sid := range b.order {
		out = append(out, *b.m[sid])
	}
	return out
}

// encodeIndexPayload builds an index frame payload: flag byte, session
// count, then per session the id, its flag bits and a delta-encoded offset
// list.
func encodeIndexPayload(entries []segIndexEntry) []byte {
	buf := make([]byte, 0, 64)
	buf = append(buf, flagIndex)
	buf = binary.AppendUvarint(buf, uint64(len(entries)))
	for _, ent := range entries {
		buf = appendString(buf, ent.sid)
		var flags byte
		if ent.finished {
			flags |= idxFinished
		}
		if ent.tombstoned {
			flags |= idxTombstoned
		}
		buf = append(buf, flags)
		buf = binary.AppendUvarint(buf, uint64(len(ent.offsets)))
		prev := int64(0)
		for _, off := range ent.offsets {
			buf = binary.AppendUvarint(buf, uint64(off-prev))
			prev = off
		}
	}
	return buf
}

// decodeIndexPayload parses an index frame payload (CRC already checked).
func decodeIndexPayload(payload []byte) ([]segIndexEntry, error) {
	bad := func() ([]segIndexEntry, error) {
		return nil, fmt.Errorf("store: malformed index payload")
	}
	if len(payload) == 0 || payload[0] != flagIndex {
		return bad()
	}
	r := &frameReader{data: payload, off: 1}
	count, ok := r.uvarint()
	if !ok || count > uint64(len(payload)) {
		return bad()
	}
	entries := make([]segIndexEntry, 0, count)
	for i := uint64(0); i < count; i++ {
		var ent segIndexEntry
		if ent.sid, ok = r.string(); !ok || ent.sid == "" {
			return bad()
		}
		flags, ok := r.uvarint()
		if !ok {
			return bad()
		}
		ent.finished = flags&idxFinished != 0
		ent.tombstoned = flags&idxTombstoned != 0
		n, ok := r.uvarint()
		if !ok || n > uint64(len(payload)) {
			return bad()
		}
		ent.offsets = make([]int64, 0, n)
		prev := int64(0)
		for j := uint64(0); j < n; j++ {
			d, ok := r.uvarint()
			if !ok {
				return bad()
			}
			prev += int64(d)
			ent.offsets = append(ent.offsets, prev)
		}
		entries = append(entries, ent)
	}
	if r.off != len(payload) {
		return bad()
	}
	return entries, nil
}

// encodeTrailerPayload builds the fixed-size trailer payload locating the
// index frame.
func encodeTrailerPayload(indexOff int64) []byte {
	buf := make([]byte, 0, trailerPayloadSize)
	buf = append(buf, flagTrailer)
	buf = binary.LittleEndian.AppendUint32(buf, trailerMagic)
	return binary.LittleEndian.AppendUint64(buf, uint64(indexOff))
}

// encodeSegmentFooter renders the index + trailer frames appended when a
// segment is sealed. indexOff is the file offset the index frame lands at.
func encodeSegmentFooter(entries []segIndexEntry, indexOff int64) []byte {
	out := encodeFrame(encodeIndexPayload(entries))
	return append(out, encodeFrame(encodeTrailerPayload(indexOff))...)
}

// readSegmentFooter loads the session index of a sealed segment. ok is
// false — scan the frames instead — when the segment carries no trailer at
// EOF or any part of the footer fails its checks; a footer is never
// required for correctness.
func readSegmentFooter(path string, size int64) (entries []segIndexEntry, indexOff int64, ok bool) {
	if size < trailerFrameSize {
		return nil, 0, false
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, false
	}
	defer f.Close()
	var tr [trailerFrameSize]byte
	if _, err := f.ReadAt(tr[:], size-trailerFrameSize); err != nil {
		return nil, 0, false
	}
	if binary.LittleEndian.Uint32(tr[:4]) != trailerPayloadSize {
		return nil, 0, false
	}
	payload := tr[frameHeaderSize:]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(tr[4:8]) {
		return nil, 0, false
	}
	if payload[0] != flagTrailer || binary.LittleEndian.Uint32(payload[1:5]) != trailerMagic {
		return nil, 0, false
	}
	indexOff = int64(binary.LittleEndian.Uint64(payload[5:]))
	if indexOff < 0 || indexOff+frameHeaderSize > size-trailerFrameSize {
		return nil, 0, false
	}
	var hdr [frameHeaderSize]byte
	if _, err := f.ReadAt(hdr[:], indexOff); err != nil {
		return nil, 0, false
	}
	frameLen := int64(binary.LittleEndian.Uint32(hdr[:4]))
	if frameLen > maxFrameSize || indexOff+frameHeaderSize+frameLen > size-trailerFrameSize {
		return nil, 0, false
	}
	payload = make([]byte, frameLen)
	if _, err := f.ReadAt(payload, indexOff+frameHeaderSize); err != nil {
		return nil, 0, false
	}
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(hdr[4:]) {
		return nil, 0, false
	}
	ents, err := decodeIndexPayload(payload)
	if err != nil {
		return nil, 0, false
	}
	return ents, indexOff, true
}

// footerOffsets flattens an index into the sorted set of known frame
// boundaries (every session frame plus the index frame itself), used to
// resynchronise a scan past structural damage.
func footerOffsets(entries []segIndexEntry, indexOff int64) []int64 {
	out := make([]int64, 0, 16)
	for _, ent := range entries {
		out = append(out, ent.offsets...)
	}
	out = append(out, indexOff)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
