package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestLockExcludesSecondOwner(t *testing.T) {
	dir := t.TempDir()
	l, err := AcquireLock(dir)
	if err != nil {
		t.Fatal(err)
	}
	// The flock is held per open descriptor, so even a second acquire
	// from this same process must fail with ErrLocked and name the pid.
	if _, err := AcquireLock(dir); !errors.Is(err, ErrLocked) {
		t.Fatalf("second acquire = %v, want ErrLocked", err)
	}
	if err := l.Release(); err != nil {
		t.Fatal(err)
	}
	l2, err := AcquireLock(dir)
	if err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	l2.Release()
}

// TestLockBreaksStale pins the stale-lock path: a LOCK file left behind
// by a process that died without Release carries no live flock, so the
// next acquirer wins immediately — no matter what the file says.
func TestLockBreaksStale(t *testing.T) {
	for _, content := range []string{"4194000\n", "not a pid", ""} {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "LOCK"), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := AcquireLock(dir)
		if err != nil {
			t.Fatalf("stale lock %q not broken: %v", content, err)
		}
		// The pid note now names this process.
		if pid, err := readLockPid(filepath.Join(dir, "LOCK")); err != nil || pid != os.Getpid() {
			t.Fatalf("lock pid = %d (%v), want %d", pid, err, os.Getpid())
		}
		l.Release()
	}
}

// TestLockSurvivesRivalRelease pins the reopen-after-release loop: a
// lock released while a rival holds an open descriptor to the unlinked
// inode must not leave two winners.
func TestLockSurvivesRivalRelease(t *testing.T) {
	dir := t.TempDir()
	l, err := AcquireLock(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Release(); err != nil {
		t.Fatal(err)
	}
	l2, err := AcquireLock(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Release()
	if _, err := AcquireLock(dir); !errors.Is(err, ErrLocked) {
		t.Fatalf("acquire against live lock = %v, want ErrLocked", err)
	}
}

// TestLockSimultaneousStart is the regression test for two daemons
// starting at once over a stale LOCK file: every racer goes through the
// same open → flock → SameFile verification, and exactly one may win —
// never zero (deadlocked hand-off) and never two (split brain). The
// others must report ErrLocked, not corrupt the file.
func TestLockSimultaneousStart(t *testing.T) {
	for round := 0; round < 10; round++ {
		dir := t.TempDir()
		// A stale note from a dead owner makes the race start from the
		// state the satellite bug report describes.
		if err := os.WriteFile(filepath.Join(dir, "LOCK"), []byte("4194000\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		const racers = 8
		var (
			wg   sync.WaitGroup
			mu   sync.Mutex
			held []*Lock
			errs []error
		)
		start := make(chan struct{})
		for i := 0; i < racers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				l, err := AcquireLock(dir)
				mu.Lock()
				defer mu.Unlock()
				if err != nil {
					errs = append(errs, err)
					return
				}
				held = append(held, l)
			}()
		}
		close(start)
		wg.Wait()
		if len(held) != 1 {
			t.Fatalf("round %d: %d racers hold the lock, want exactly 1", round, len(held))
		}
		for _, err := range errs {
			if !errors.Is(err, ErrLocked) {
				t.Fatalf("round %d: loser got %v, want ErrLocked", round, err)
			}
		}
		if pid, err := readLockPid(filepath.Join(dir, "LOCK")); err != nil || pid != os.Getpid() {
			t.Fatalf("round %d: lock pid = %d (%v), want %d", round, pid, err, os.Getpid())
		}
		if err := held[0].Release(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestLockAcquireReleaseChurn hammers acquire/release hand-offs from
// concurrent goroutines: at no instant may two goroutines believe they
// hold the same directory.
func TestLockAcquireReleaseChurn(t *testing.T) {
	dir := t.TempDir()
	var holders int32
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < 25; n++ {
				l, err := AcquireLock(dir)
				if err != nil {
					if !errors.Is(err, ErrLocked) {
						t.Errorf("acquire: %v", err)
						return
					}
					continue
				}
				mu.Lock()
				holders++
				if holders != 1 {
					t.Errorf("%d simultaneous holders", holders)
				}
				holders--
				mu.Unlock()
				if err := l.Release(); err != nil {
					t.Errorf("release: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestLockNoteEpoch checks the fencing-epoch note: it rides the LOCK
// file beside the pid, survives rewrites, and never confuses the
// pid parser a rival uses for its error message.
func TestLockNoteEpoch(t *testing.T) {
	dir := t.TempDir()
	l, err := AcquireLock(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Release()
	for _, epoch := range []uint64{1, 7, 123456} {
		if err := l.NoteEpoch(epoch); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(filepath.Join(dir, "LOCK"))
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("epoch=%d", epoch); !strings.Contains(string(data), want) {
			t.Fatalf("LOCK file %q carries no %q note", data, want)
		}
		if pid, err := readLockPid(filepath.Join(dir, "LOCK")); err != nil || pid != os.Getpid() {
			t.Fatalf("after NoteEpoch(%d): pid = %d (%v), want %d", epoch, pid, err, os.Getpid())
		}
	}
	// A rival still gets a well-formed ErrLocked naming the owner.
	if _, err := AcquireLock(dir); !errors.Is(err, ErrLocked) || !strings.Contains(err.Error(), "running process") {
		t.Fatalf("acquire against epoch-noted lock = %v, want ErrLocked naming the pid", err)
	}
}
