package store

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestLockExcludesSecondOwner(t *testing.T) {
	dir := t.TempDir()
	l, err := AcquireLock(dir)
	if err != nil {
		t.Fatal(err)
	}
	// The flock is held per open descriptor, so even a second acquire
	// from this same process must fail with ErrLocked and name the pid.
	if _, err := AcquireLock(dir); !errors.Is(err, ErrLocked) {
		t.Fatalf("second acquire = %v, want ErrLocked", err)
	}
	if err := l.Release(); err != nil {
		t.Fatal(err)
	}
	l2, err := AcquireLock(dir)
	if err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	l2.Release()
}

// TestLockBreaksStale pins the stale-lock path: a LOCK file left behind
// by a process that died without Release carries no live flock, so the
// next acquirer wins immediately — no matter what the file says.
func TestLockBreaksStale(t *testing.T) {
	for _, content := range []string{"4194000\n", "not a pid", ""} {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "LOCK"), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := AcquireLock(dir)
		if err != nil {
			t.Fatalf("stale lock %q not broken: %v", content, err)
		}
		// The pid note now names this process.
		if pid, err := readLockPid(filepath.Join(dir, "LOCK")); err != nil || pid != os.Getpid() {
			t.Fatalf("lock pid = %d (%v), want %d", pid, err, os.Getpid())
		}
		l.Release()
	}
}

// TestLockSurvivesRivalRelease pins the reopen-after-release loop: a
// lock released while a rival holds an open descriptor to the unlinked
// inode must not leave two winners.
func TestLockSurvivesRivalRelease(t *testing.T) {
	dir := t.TempDir()
	l, err := AcquireLock(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Release(); err != nil {
		t.Fatal(err)
	}
	l2, err := AcquireLock(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Release()
	if _, err := AcquireLock(dir); !errors.Is(err, ErrLocked) {
		t.Fatalf("acquire against live lock = %v, want ErrLocked", err)
	}
}
