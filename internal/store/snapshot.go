package store

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/graph"
)

// Graph snapshots come in two payload formats sharing one file extension
// and one atomic-write path:
//
//   - text (written by the text engine): a JSON header line with byte
//     count and CRC32, followed by the graph's text serialisation;
//   - binary (written by the binary engine): the "GSNP" magic, a varint
//     header carrying name/nodes/edges/payload-length plus the payload
//     CRC32, followed by the graph's varint-CSR encoding (see
//     graph.EncodeBinary).
//
// loadSnapshot dispatches on the leading bytes, so either engine recovers
// snapshots written by the other: switching -store-engine on an existing
// data directory keeps every graph.

// snapshotHeader is the first line of a text graph snapshot file. The
// graph's text serialisation follows; Bytes and CRC32 cover exactly that
// payload, so any truncation or corruption — including a cut that happens
// to leave a syntactically valid edge-list prefix — fails the integrity
// check instead of silently restoring a smaller graph.
type snapshotHeader struct {
	Name  string `json:"name"`
	Nodes int    `json:"nodes"`
	Edges int    `json:"edges"`
	Bytes int    `json:"bytes"`
	CRC32 uint32 `json:"crc32"`
}

// binarySnapshotMagic opens a binary snapshot file.
var binarySnapshotMagic = []byte{'G', 'S', 'N', 'P', 1}

func snapshotFile(graphsDir, name string) string {
	return filepath.Join(graphsDir, url.PathEscape(name)+".graph")
}

func (s *Store) snapshotFile(name string) string {
	return snapshotFile(s.graphsDir(), name)
}

// encodeTextSnapshot builds the text snapshot payload.
func encodeTextSnapshot(name string, g *graph.Graph) ([]byte, error) {
	text := []byte(g.Text())
	header, err := json.Marshal(snapshotHeader{
		Name:  name,
		Nodes: g.NumNodes(),
		Edges: g.NumEdges(),
		Bytes: len(text),
		CRC32: crc32.ChecksumIEEE(text),
	})
	if err != nil {
		return nil, err
	}
	return append(append(header, '\n'), text...), nil
}

// encodeBinarySnapshot builds the binary snapshot payload.
func encodeBinarySnapshot(name string, g *graph.Graph) ([]byte, error) {
	payload := g.EncodeBinary()
	out := make([]byte, 0, len(payload)+len(name)+64)
	out = append(out, binarySnapshotMagic...)
	out = binary.AppendUvarint(out, uint64(len(name)))
	out = append(out, name...)
	out = binary.AppendUvarint(out, uint64(g.NumNodes()))
	out = binary.AppendUvarint(out, uint64(g.NumEdges()))
	out = binary.AppendUvarint(out, uint64(len(payload)))
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(payload))
	return append(out, payload...), nil
}

// writeSnapshotFile writes a snapshot payload atomically: a temp file is
// fully written and fsynced, then renamed over the final path, so a crash
// mid-save leaves either the old snapshot or the new one, never a blend.
func writeSnapshotFile(graphsDir, name string, payload []byte, m *metrics) error {
	path := snapshotFile(graphsDir, name)
	tmp, err := os.CreateTemp(graphsDir, ".tmp-*.graph")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(payload); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	// Pin the rename itself: without the directory fsync a power loss can
	// roll the directory entry back to the old (or no) snapshot.
	if err := syncDir(graphsDir); err != nil {
		return err
	}
	m.snapshotSaves.Add(1)
	m.snapshotBytes.Add(int64(len(payload)))
	return nil
}

// SaveGraph writes (or replaces) the text snapshot of a registered graph.
func (s *Store) SaveGraph(name string, g *graph.Graph) error {
	payload, err := encodeTextSnapshot(name, g)
	if err != nil {
		return fmt.Errorf("store: save graph %q: %w", name, err)
	}
	if err := writeSnapshotFile(s.graphsDir(), name, payload, &s.m); err != nil {
		return fmt.Errorf("store: save graph %q: %w", name, err)
	}
	return nil
}

// deleteGraphSnapshot removes the snapshot of an unregistered graph.
// Deleting a graph that was never persisted is not an error.
func deleteGraphSnapshot(graphsDir, name string) error {
	if err := os.Remove(snapshotFile(graphsDir, name)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: delete graph %q: %w", name, err)
	}
	if err := syncDir(graphsDir); err != nil {
		return fmt.Errorf("store: delete graph %q: %w", name, err)
	}
	return nil
}

// DeleteGraph removes the snapshot of an unregistered graph.
func (s *Store) DeleteGraph(name string) error {
	return deleteGraphSnapshot(s.graphsDir(), name)
}

// RecoveredGraph is one graph snapshot restored from disk.
type RecoveredGraph struct {
	Name  string
	Graph *graph.Graph
}

// recoverGraphSnapshots loads every intact graph snapshot in a directory,
// sorted by name. A snapshot failing its integrity check (partial write,
// flipped bytes, header/graph mismatch) is skipped and counted in
// CorruptSnapshots; the file is left in place for inspection.
func recoverGraphSnapshots(graphsDir string, m *metrics) ([]RecoveredGraph, error) {
	entries, err := os.ReadDir(graphsDir)
	if err != nil {
		return nil, fmt.Errorf("store: recover graphs: %w", err)
	}
	var out []RecoveredGraph
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".graph") || strings.HasPrefix(name, ".tmp-") {
			continue
		}
		rg, err := loadSnapshot(filepath.Join(graphsDir, name))
		if err != nil {
			m.corruptSnapshots.Add(1)
			continue
		}
		m.recoveredGraphs.Add(1)
		out = append(out, rg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// RecoverGraphs loads every intact graph snapshot, sorted by name.
func (s *Store) RecoverGraphs() ([]RecoveredGraph, error) {
	return recoverGraphSnapshots(s.graphsDir(), &s.m)
}

// loadSnapshot reads and verifies one snapshot file in either format.
func loadSnapshot(path string) (RecoveredGraph, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return RecoveredGraph{}, err
	}
	if bytes.HasPrefix(data, binarySnapshotMagic) {
		return loadBinarySnapshot(path, data[len(binarySnapshotMagic):])
	}
	return loadTextSnapshot(path, data)
}

func loadTextSnapshot(path string, data []byte) (RecoveredGraph, error) {
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return RecoveredGraph{}, fmt.Errorf("store: snapshot %s: missing header", path)
	}
	var header snapshotHeader
	if err := json.Unmarshal(data[:nl], &header); err != nil {
		return RecoveredGraph{}, fmt.Errorf("store: snapshot %s: %w", path, err)
	}
	text := data[nl+1:]
	if len(text) != header.Bytes || crc32.ChecksumIEEE(text) != header.CRC32 {
		return RecoveredGraph{}, fmt.Errorf("store: snapshot %s: integrity check failed", path)
	}
	g, err := graph.ParseText(string(text))
	if err != nil {
		return RecoveredGraph{}, fmt.Errorf("store: snapshot %s: %w", path, err)
	}
	if g.NumNodes() != header.Nodes || g.NumEdges() != header.Edges {
		return RecoveredGraph{}, fmt.Errorf("store: snapshot %s: graph does not match header", path)
	}
	return RecoveredGraph{Name: header.Name, Graph: g}, nil
}

func loadBinarySnapshot(path string, data []byte) (RecoveredGraph, error) {
	r := bytes.NewReader(data)
	nameLen, err := binary.ReadUvarint(r)
	if err != nil || nameLen > uint64(r.Len()) {
		return RecoveredGraph{}, fmt.Errorf("store: snapshot %s: corrupt header", path)
	}
	nameBytes := make([]byte, nameLen)
	if _, err := r.Read(nameBytes); err != nil {
		return RecoveredGraph{}, fmt.Errorf("store: snapshot %s: corrupt header", path)
	}
	nodes, err1 := binary.ReadUvarint(r)
	edges, err2 := binary.ReadUvarint(r)
	payloadLen, err3 := binary.ReadUvarint(r)
	if err1 != nil || err2 != nil || err3 != nil {
		return RecoveredGraph{}, fmt.Errorf("store: snapshot %s: corrupt header", path)
	}
	var crcBytes [4]byte
	if _, err := r.Read(crcBytes[:]); err != nil {
		return RecoveredGraph{}, fmt.Errorf("store: snapshot %s: corrupt header", path)
	}
	payload := data[len(data)-r.Len():]
	if uint64(len(payload)) != payloadLen ||
		crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(crcBytes[:]) {
		return RecoveredGraph{}, fmt.Errorf("store: snapshot %s: integrity check failed", path)
	}
	g, err := graph.ParseBinary(payload)
	if err != nil {
		return RecoveredGraph{}, fmt.Errorf("store: snapshot %s: %w", path, err)
	}
	if g.NumNodes() != int(nodes) || g.NumEdges() != int(edges) {
		return RecoveredGraph{}, fmt.Errorf("store: snapshot %s: graph does not match header", path)
	}
	return RecoveredGraph{Name: string(nameBytes), Graph: g}, nil
}
