package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/graph"
)

// snapshotHeader is the first line of a graph snapshot file. The graph's
// text serialisation follows; Bytes and CRC32 cover exactly that payload,
// so any truncation or corruption — including a cut that happens to leave
// a syntactically valid edge-list prefix — fails the integrity check
// instead of silently restoring a smaller graph.
type snapshotHeader struct {
	Name  string `json:"name"`
	Nodes int    `json:"nodes"`
	Edges int    `json:"edges"`
	Bytes int    `json:"bytes"`
	CRC32 uint32 `json:"crc32"`
}

func (s *Store) snapshotFile(name string) string {
	return filepath.Join(s.graphsDir(), url.PathEscape(name)+".graph")
}

// SaveGraph writes (or replaces) the snapshot of a registered graph. The
// write is atomic: a temp file is fully written and fsynced, then renamed
// over the final path, so a crash mid-save leaves either the old snapshot
// or the new one, never a blend.
func (s *Store) SaveGraph(name string, g *graph.Graph) error {
	text := []byte(g.Text())
	header, err := json.Marshal(snapshotHeader{
		Name:  name,
		Nodes: g.NumNodes(),
		Edges: g.NumEdges(),
		Bytes: len(text),
		CRC32: crc32.ChecksumIEEE(text),
	})
	if err != nil {
		return fmt.Errorf("store: save graph %q: %w", name, err)
	}
	payload := append(append(header, '\n'), text...)

	path := s.snapshotFile(name)
	tmp, err := os.CreateTemp(s.graphsDir(), ".tmp-*.graph")
	if err != nil {
		return fmt.Errorf("store: save graph %q: %w", name, err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(payload); err != nil {
		tmp.Close()
		return fmt.Errorf("store: save graph %q: %w", name, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: save graph %q: %w", name, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: save graph %q: %w", name, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: save graph %q: %w", name, err)
	}
	// Pin the rename itself: without the directory fsync a power loss can
	// roll the directory entry back to the old (or no) snapshot.
	if err := syncDir(s.graphsDir()); err != nil {
		return fmt.Errorf("store: save graph %q: %w", name, err)
	}
	s.m.snapshotSaves.Add(1)
	s.m.snapshotBytes.Add(int64(len(payload)))
	return nil
}

// DeleteGraph removes the snapshot of an unregistered graph. Deleting a
// graph that was never persisted is not an error.
func (s *Store) DeleteGraph(name string) error {
	if err := os.Remove(s.snapshotFile(name)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: delete graph %q: %w", name, err)
	}
	if err := syncDir(s.graphsDir()); err != nil {
		return fmt.Errorf("store: delete graph %q: %w", name, err)
	}
	return nil
}

// RecoveredGraph is one graph snapshot restored from disk.
type RecoveredGraph struct {
	Name  string
	Graph *graph.Graph
}

// RecoverGraphs loads every intact graph snapshot, sorted by name. A
// snapshot failing its integrity check (partial write, flipped bytes,
// header/graph mismatch) is skipped and counted in CorruptSnapshots; the
// file is left in place for inspection.
func (s *Store) RecoverGraphs() ([]RecoveredGraph, error) {
	entries, err := os.ReadDir(s.graphsDir())
	if err != nil {
		return nil, fmt.Errorf("store: recover graphs: %w", err)
	}
	var out []RecoveredGraph
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".graph") || strings.HasPrefix(name, ".tmp-") {
			continue
		}
		rg, err := loadSnapshot(filepath.Join(s.graphsDir(), name))
		if err != nil {
			s.m.corruptSnapshots.Add(1)
			continue
		}
		s.m.recoveredGraphs.Add(1)
		out = append(out, rg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// loadSnapshot reads and verifies one snapshot file.
func loadSnapshot(path string) (RecoveredGraph, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return RecoveredGraph{}, err
	}
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return RecoveredGraph{}, fmt.Errorf("store: snapshot %s: missing header", path)
	}
	var header snapshotHeader
	if err := json.Unmarshal(data[:nl], &header); err != nil {
		return RecoveredGraph{}, fmt.Errorf("store: snapshot %s: %w", path, err)
	}
	text := data[nl+1:]
	if len(text) != header.Bytes || crc32.ChecksumIEEE(text) != header.CRC32 {
		return RecoveredGraph{}, fmt.Errorf("store: snapshot %s: integrity check failed", path)
	}
	g, err := graph.ParseText(string(text))
	if err != nil {
		return RecoveredGraph{}, fmt.Errorf("store: snapshot %s: %w", path, err)
	}
	if g.NumNodes() != header.Nodes || g.NumEdges() != header.Edges {
		return RecoveredGraph{}, fmt.Errorf("store: snapshot %s: graph does not match header", path)
	}
	return RecoveredGraph{Name: header.Name, Graph: g}, nil
}
