package store

// Graph ownership sidecar. Graph snapshots are tenant-agnostic (either
// engine can serve any tenant's graphs), so which tenant owns which graph
// — the input to per-tenant graph quotas after a restart — is persisted
// as one small JSON file in the data directory, rewritten atomically on
// every ownership change. Session ownership needs no sidecar: the create
// record of every session journal carries the tenant id.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// ownersFile is the sidecar file name inside the data directory.
const ownersFile = "owners.json"

// ownersDoc is the sidecar's JSON shape.
type ownersDoc struct {
	// Graphs maps graph name to owning tenant. The default tenant is
	// stored as "" (matching the wire form), so open-mode deployments
	// write an empty map.
	Graphs map[string]string `json:"graphs"`
}

// SaveOwners atomically replaces the graph-ownership sidecar of a data
// directory. Owners with an empty tenant are elided — absence means the
// default tenant.
func SaveOwners(dir string, owners map[string]string) error {
	doc := ownersDoc{Graphs: make(map[string]string, len(owners))}
	for name, tenant := range owners {
		if tenant != "" {
			doc.Graphs[name] = tenant
		}
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	tmp := filepath.Join(dir, ownersFile+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("store: owners sidecar: %w", err)
	}
	if f, err := os.Open(tmp); err == nil {
		_ = f.Sync()
		_ = f.Close()
	}
	if err := os.Rename(tmp, filepath.Join(dir, ownersFile)); err != nil {
		return fmt.Errorf("store: owners sidecar: %w", err)
	}
	return syncDir(dir)
}

// LoadOwners reads the graph-ownership sidecar; a missing file is an
// empty map (every graph owned by the default tenant), and a corrupt file
// is reported rather than guessed at.
func LoadOwners(dir string) (map[string]string, error) {
	data, err := os.ReadFile(filepath.Join(dir, ownersFile))
	if os.IsNotExist(err) {
		return map[string]string{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: owners sidecar: %w", err)
	}
	var doc ownersDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("store: owners sidecar: %w", err)
	}
	if doc.Graphs == nil {
		doc.Graphs = map[string]string{}
	}
	return doc.Graphs, nil
}
