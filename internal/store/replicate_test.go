package store

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"testing"
	"time"

	"repro/internal/dataset"
)

// feedServer wraps an engine's replication feed in the same HTTP shape
// the service exposes, for follower tests without a full gpsd.
func feedServer(t *testing.T, e Engine) *httptest.Server {
	t.Helper()
	rep, ok := e.(Replicator)
	if !ok {
		t.Fatal("engine does not implement Replicator")
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var pos FeedPos
		pos.Gen, _ = strconv.ParseUint(r.URL.Query().Get("gen"), 10, 64)
		pos.Seg, _ = strconv.ParseUint(r.URL.Query().Get("seg"), 10, 64)
		pos.Off, _ = strconv.ParseInt(r.URL.Query().Get("off"), 10, 64)
		w.WriteHeader(http.StatusOK)
		fl, _ := w.(http.Flusher)
		flush := func() {}
		if fl != nil {
			flush = fl.Flush
		}
		_ = rep.ServeFeed(r.Context(), w, flush, pos)
	}))
	// Registered before any replica cleanup, so (LIFO) replicas stop
	// before Close waits on their feed connections.
	t.Cleanup(srv.Close)
	return srv
}

// waitReplicaCaughtUp polls until the replica has applied everything the
// primary has published (and is connected), or fails the test.
func waitReplicaCaughtUp(t *testing.T, r *Replica, e Engine) {
	t.Helper()
	rep := e.(Replicator)
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st := r.Status()
		want := rep.ReplState()
		if st.Connected && st.AppliedFrames >= want.Frames && st.AppliedBytes >= want.Bytes {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("replica never caught up: %+v vs primary %+v", r.Status(), rep.ReplState())
}

// openReplicaT opens a follower applier against a feed server and starts
// it.
func openReplicaT(t *testing.T, dir string, srv *httptest.Server) *Replica {
	t.Helper()
	r, err := OpenReplica(dir, srv.URL, ReplicaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	go r.Run()
	t.Cleanup(r.Stop) // idempotent; unblocks the feed server's Close
	return r
}

// primaryRecs closes the live primary and reopens its directory to
// recover the expected session state (RecoverSessions only runs on a
// freshly opened engine).
func primaryRecs(t *testing.T, e Engine, dir string) map[string][]Record {
	t.Helper()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e2 := openBinaryT(t, dir, EngineOptions{})
	defer e2.Close()
	return recsOf(t, e2)
}

// replicaRecs promotes the replica directory — exactly what failover
// does — and recovers its sessions and graphs for comparison.
func replicaRecs(t *testing.T, dir string) (map[string][]Record, map[string]string) {
	t.Helper()
	e := openBinaryT(t, dir, EngineOptions{})
	defer e.Close()
	recs := recsOf(t, e)
	graphs := make(map[string]string)
	recovered, err := e.RecoverGraphs()
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range recovered {
		graphs[g.Name] = g.Graph.Text()
	}
	return recs, graphs
}

// TestReplicaCatchUp streams a live primary — graphs, sealed segments,
// then tailed group commits — to a follower and requires the promoted
// follower directory to recover the identical session and graph state.
func TestReplicaCatchUp(t *testing.T) {
	primary := t.TempDir()
	follower := t.TempDir()
	e := openBinaryT(t, primary, EngineOptions{SegmentSize: 512, CommitInterval: time.Millisecond})
	defer e.Close()

	if err := e.SaveGraph("demo", dataset.Figure1()); err != nil {
		t.Fatal(err)
	}
	// Pre-existing traffic: sealed segments the feed ships wholesale.
	for i := 0; i < 4; i++ {
		jr, err := e.CreateJournal(fmt.Sprintf("pre-%04d", i))
		if err != nil {
			t.Fatal(err)
		}
		appendN(t, jr, 6)
		if i%2 == 0 {
			if err := jr.AppendTerminal("done", testPayload{S: "x"}); err != nil {
				t.Fatal(err)
			}
		}
	}

	srv := feedServer(t, e)
	r := openReplicaT(t, follower, srv)

	// Live traffic while the follower tails, including a graph update and
	// a deletion.
	if err := e.SaveGraph("grid", dataset.Random(dataset.RandomOptions{Nodes: 20, Seed: 3})); err != nil {
		t.Fatal(err)
	}
	if err := e.SaveGraph("gone", dataset.Figure1()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		jr, err := e.CreateJournal(fmt.Sprintf("live-%04d", i))
		if err != nil {
			t.Fatal(err)
		}
		appendN(t, jr, 5)
	}
	if err := e.DeleteGraph("gone"); err != nil {
		t.Fatal(err)
	}

	waitReplicaCaughtUp(t, r, e)
	// Graph deletion propagates by polling; give it its own wait.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if r.Status().Graphs == 2 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	st := r.Status()
	if st.Resyncs != 0 {
		t.Fatalf("clean catch-up resynced %d times", st.Resyncs)
	}
	if st.SealsVerified == 0 {
		t.Fatal("no sealed segments were verified against footers")
	}
	r.Stop()

	wantRecs := primaryRecs(t, e, primary)
	gotRecs, gotGraphs := replicaRecs(t, follower)
	if !reflect.DeepEqual(gotRecs, wantRecs) {
		t.Fatalf("replicated sessions diverge:\ngot  %+v\nwant %+v", gotRecs, wantRecs)
	}
	if len(gotGraphs) != 2 || gotGraphs["demo"] == "" || gotGraphs["grid"] == "" {
		t.Fatalf("replicated graphs = %v, want demo and grid", gotGraphs)
	}
	if gotGraphs["demo"] != dataset.Figure1().Text() {
		t.Fatal("graph demo does not round-trip through the feed")
	}
}

// TestReplicaResumeAcrossRestart stops a follower mid-stream, appends
// more primary traffic, and reopens the follower: it must resume from
// its durable (segment, offset) position without a re-sync.
func TestReplicaResumeAcrossRestart(t *testing.T) {
	primary := t.TempDir()
	follower := t.TempDir()
	e := openBinaryT(t, primary, EngineOptions{SegmentSize: 512, CommitInterval: time.Millisecond})
	defer e.Close()
	srv := feedServer(t, e)

	jr, err := e.CreateJournal("sess")
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, jr, 10)

	r := openReplicaT(t, follower, srv)
	waitReplicaCaughtUp(t, r, e)
	r.Stop()

	appendN(t, jr, 10)
	jr2, err := e.CreateJournal("late")
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, jr2, 3)

	r2, err := OpenReplica(follower, srv.URL, ReplicaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	go r2.Run()
	t.Cleanup(r2.Stop)
	waitReplicaCaughtUp(t, r2, e)
	st := r2.Status()
	if st.Resyncs != 0 {
		t.Fatalf("resume after restart re-synced %d times, want a cheap offset resume", st.Resyncs)
	}
	r2.Stop()

	wantRecs := primaryRecs(t, e, primary)
	gotRecs, _ := replicaRecs(t, follower)
	if !reflect.DeepEqual(gotRecs, wantRecs) {
		t.Fatalf("resumed sessions diverge:\ngot  %+v\nwant %+v", gotRecs, wantRecs)
	}
}

// TestReplicaResyncAcrossCompaction runs live compaction on the primary
// while a follower holds a resume position inside the retired history.
// The generation bump must force a clean re-sync — retired segments are
// re-fetched, nothing wedges — and the follower converges again.
func TestReplicaResyncAcrossCompaction(t *testing.T) {
	primary := t.TempDir()
	follower := t.TempDir()
	e := openBinaryT(t, primary, EngineOptions{SegmentSize: 256, CommitInterval: time.Millisecond})
	defer e.Close()
	srv := feedServer(t, e)

	// Enough finished sessions that compaction rewrites real history.
	for i := 0; i < 6; i++ {
		jr, err := e.CreateJournal(fmt.Sprintf("old-%04d", i))
		if err != nil {
			t.Fatal(err)
		}
		appendN(t, jr, 8)
		if err := jr.AppendTerminal("done", testPayload{S: "x"}); err != nil {
			t.Fatal(err)
		}
	}
	survivor, err := e.CreateJournal("survivor")
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, survivor, 4)

	r := openReplicaT(t, follower, srv)
	waitReplicaCaughtUp(t, r, e)
	r.Stop() // follower offline across the compaction, like a real deploy

	if _, err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	appendN(t, survivor, 4)

	r2, err := OpenReplica(follower, srv.URL, ReplicaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	go r2.Run()
	t.Cleanup(r2.Stop)
	waitReplicaCaughtUp(t, r2, e)
	st := r2.Status()
	if st.Resyncs == 0 {
		t.Fatal("follower resumed across a compaction without re-syncing retired segments")
	}
	r2.Stop()

	wantRecs := primaryRecs(t, e, primary)
	gotRecs, _ := replicaRecs(t, follower)
	if !reflect.DeepEqual(gotRecs, wantRecs) {
		t.Fatalf("post-compaction sessions diverge:\ngot  %+v\nwant %+v", gotRecs, wantRecs)
	}
}

// TestReplicaSyncsIdlePostCompactionPrimary connects a fresh follower to
// a primary that compacted and then went idle. Compaction rewrites the
// segments the published position pointed into; if the swap does not
// re-point it at the compacted tail, every feed tails the (shorter)
// active segment toward a stale offset, fails, and the follower
// reconnect-loops forever — no append ever arrives to republish.
func TestReplicaSyncsIdlePostCompactionPrimary(t *testing.T) {
	primary := t.TempDir()
	follower := t.TempDir()
	// One big segment: compaction renumbers its output from 1, so the
	// rewritten (smaller) segment 1 collides with the stale published
	// position's index — the shape that wedges the feed.
	e := openBinaryT(t, primary, EngineOptions{SegmentSize: 1 << 20, CommitInterval: time.Millisecond})
	defer e.Close()
	srv := feedServer(t, e)

	for i := 0; i < 4; i++ {
		jr, err := e.CreateJournal(fmt.Sprintf("old-%04d", i))
		if err != nil {
			t.Fatal(err)
		}
		appendN(t, jr, 8)
		if err := jr.AppendTerminal("done", testPayload{S: "x"}); err != nil {
			t.Fatal(err)
		}
	}
	survivor, err := e.CreateJournal("survivor")
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, survivor, 4)

	if _, err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	// No appends after the compaction: the primary is idle, so the
	// follower can only sync if the swap republished a real position.

	r := openReplicaT(t, follower, srv)
	waitReplicaCaughtUp(t, r, e)
	if st := r.Status(); st.Connects > 5 {
		t.Fatalf("follower needed %d connects to sync an idle primary (reconnect loop)", st.Connects)
	}
	r.Stop()

	wantRecs := primaryRecs(t, e, primary)
	gotRecs, _ := replicaRecs(t, follower)
	if !reflect.DeepEqual(gotRecs, wantRecs) {
		t.Fatalf("post-compaction sessions diverge:\ngot  %+v\nwant %+v", gotRecs, wantRecs)
	}
}

// TestReplicaResyncWhileConnected compacts under a connected follower:
// the feed closes on the generation change and the reconnect re-syncs.
func TestReplicaResyncWhileConnected(t *testing.T) {
	primary := t.TempDir()
	follower := t.TempDir()
	e := openBinaryT(t, primary, EngineOptions{SegmentSize: 256, CommitInterval: time.Millisecond})
	defer e.Close()
	srv := feedServer(t, e)

	for i := 0; i < 5; i++ {
		jr, err := e.CreateJournal(fmt.Sprintf("old-%04d", i))
		if err != nil {
			t.Fatal(err)
		}
		appendN(t, jr, 6)
		if err := jr.AppendTerminal("done", testPayload{S: "x"}); err != nil {
			t.Fatal(err)
		}
	}
	r := openReplicaT(t, follower, srv)
	waitReplicaCaughtUp(t, r, e)

	if _, err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	jr, err := e.CreateJournal("after")
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, jr, 5)

	waitReplicaCaughtUp(t, r, e)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && r.Status().Resyncs == 0 {
		time.Sleep(10 * time.Millisecond)
	}
	if r.Status().Resyncs == 0 {
		t.Fatal("connected follower never re-synced after the generation bump")
	}
	r.Stop()

	wantRecs := primaryRecs(t, e, primary)
	gotRecs, _ := replicaRecs(t, follower)
	if !reflect.DeepEqual(gotRecs, wantRecs) {
		t.Fatalf("sessions diverge after live compaction:\ngot  %+v\nwant %+v", gotRecs, wantRecs)
	}
}

// TestEngineEpochFencing pins the epoch lifecycle: it starts at 1, only
// rises, persists across reopen, and lands in segment epoch frames that
// recovery skips without disturbing session replay.
func TestEngineEpochFencing(t *testing.T) {
	dir := t.TempDir()
	e := openBinaryT(t, dir, EngineOptions{})
	rep := e.(Replicator)
	if got := rep.Epoch(); got != 1 {
		t.Fatalf("fresh engine epoch = %d, want 1", got)
	}
	jr, err := e.CreateJournal("sess")
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, jr, 3)
	if err := rep.SetEpoch(5); err != nil {
		t.Fatal(err)
	}
	if err := rep.SetEpoch(4); err == nil {
		t.Fatal("lowering the epoch must fail")
	}
	if err := rep.SetEpoch(5); err != nil {
		t.Fatalf("idempotent SetEpoch: %v", err)
	}
	appendN(t, jr, 3)
	e.Close()

	e2 := openBinaryT(t, dir, EngineOptions{})
	defer e2.Close()
	if got := e2.(Replicator).Epoch(); got != 5 {
		t.Fatalf("epoch after reopen = %d, want 5", got)
	}
	recs := recsOf(t, e2)
	if len(recs["sess"]) != 6 {
		t.Fatalf("session kept %d records across epoch frames, want 6", len(recs["sess"]))
	}
}

// TestReplicaTracksPrimaryEpoch checks that a follower persists the
// highest primary epoch it has seen, so promotion fences above it even
// after a follower restart.
func TestReplicaTracksPrimaryEpoch(t *testing.T) {
	primary := t.TempDir()
	follower := t.TempDir()
	e := openBinaryT(t, primary, EngineOptions{CommitInterval: time.Millisecond})
	defer e.Close()
	if err := e.(Replicator).SetEpoch(9); err != nil {
		t.Fatal(err)
	}
	jr, err := e.CreateJournal("sess")
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, jr, 2)
	srv := feedServer(t, e)

	r := openReplicaT(t, follower, srv)
	waitReplicaCaughtUp(t, r, e)
	if got := r.Status().PrimaryEpoch; got != 9 {
		t.Fatalf("follower saw primary epoch %d, want 9", got)
	}
	r.Stop()

	// The promoted engine must open at the primary's epoch and fence
	// above it with one bump.
	pe := openBinaryT(t, follower, EngineOptions{})
	defer pe.Close()
	rep := pe.(Replicator)
	if got := rep.Epoch(); got != 9 {
		t.Fatalf("promoted engine epoch = %d, want 9", got)
	}
	if err := rep.SetEpoch(rep.Epoch() + 1); err != nil {
		t.Fatal(err)
	}
	if got := rep.Epoch(); got != 10 {
		t.Fatalf("fencing epoch = %d, want 10", got)
	}
}

// TestServeFeedRejectsBogusResume hands the feed an off-the-end resume
// position: it must degrade to a full re-sync, never an error or a
// stream of bytes the follower cannot anchor.
func TestServeFeedRejectsBogusResume(t *testing.T) {
	primary := t.TempDir()
	e := openBinaryT(t, primary, EngineOptions{CommitInterval: time.Millisecond})
	defer e.Close()
	jr, err := e.CreateJournal("sess")
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, jr, 5)
	rep := e.(Replicator)
	st := rep.ReplState()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	pr, pw := io.Pipe()
	done := make(chan error, 1)
	go func() {
		done <- rep.ServeFeed(ctx, pw, nil, FeedPos{Gen: st.Gen, Seg: st.Seg, Off: st.Off + 9999})
		pw.Close()
	}()
	payload, err := readFeedFrame(bufio.NewReader(pr))
	if err != nil {
		t.Fatal(err)
	}
	if payload[0] != feedMsgHello || payload[2]&1 == 0 {
		t.Fatalf("hello = %v, want re-sync flag set", payload[:3])
	}
	// Unblock any write the feed is parked on before waiting it out.
	pr.Close()
	cancel()
	if err := <-done; err == nil {
		t.Log("feed closed cleanly")
	}
}
