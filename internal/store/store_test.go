package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/dataset"
	"repro/internal/graph"
)

type testPayload struct {
	N int    `json:"n"`
	S string `json:"s,omitempty"`
}

func appendN(t *testing.T, jr *Journal, n int) {
	t.Helper()
	for i := 1; i <= n; i++ {
		if err := jr.Append("event", testPayload{N: i}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestJournalRoundTrip(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	jr, err := st.CreateJournal("s0001")
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, jr, 3)
	if err := jr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := jr.Append("event", nil); err == nil {
		t.Fatal("append after close must fail")
	}
	// Creating the same id again must not clobber the journal.
	if _, err := st.CreateJournal("s0001"); err == nil {
		t.Fatal("duplicate journal id must fail")
	}

	recovered, err := st.RecoverSessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 1 || recovered[0].ID != "s0001" {
		t.Fatalf("recovered %+v, want one session s0001", recovered)
	}
	recs := recovered[0].Journal.Records()
	if len(recs) != 3 {
		t.Fatalf("recovered %d records, want 3", len(recs))
	}
	for i, rec := range recs {
		var p testPayload
		if err := json.Unmarshal(rec.Data, &p); err != nil {
			t.Fatal(err)
		}
		if rec.Seq != uint64(i+1) || rec.Type != "event" || p.N != i+1 {
			t.Fatalf("record %d = %+v payload %+v", i, rec, p)
		}
	}
	// The recovered journal keeps appending with continuous sequence
	// numbers, and a second recovery sees the full log.
	if err := recovered[0].Journal.Append("event", testPayload{N: 4}); err != nil {
		t.Fatal(err)
	}
	recovered[0].Journal.Close()
	again, err := st.RecoverSessions()
	if err != nil {
		t.Fatal(err)
	}
	recs = again[0].Journal.Records()
	if len(recs) != 4 || recs[3].Seq != 4 {
		t.Fatalf("after resume-append recovery found %d records (last %+v)", len(recs), recs[len(recs)-1])
	}
	if st.Metrics().TruncatedJournals != 0 {
		t.Fatalf("clean journals must not count as truncated: %+v", st.Metrics())
	}
}

// TestJournalTornTail injects the crash modes a write-ahead journal must
// survive: a partial final line, trailing garbage, and a record whose JSON
// is valid but whose sequence number does not line up.
func TestJournalTornTail(t *testing.T) {
	cases := []struct {
		name string
		tail string // appended raw to a healthy 3-record journal
		want int    // surviving records
	}{
		{"partial-line", `{"seq":4,"type":"event","da`, 3},
		{"garbage", "\x00\x01\x02 not json\n", 3},
		{"unterminated-valid-json", `{"seq":4,"type":"event"}`, 3},
		{"sequence-gap", `{"seq":9,"type":"event"}` + "\n" + `{"seq":10,"type":"event"}` + "\n", 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st, err := Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			jr, err := st.CreateJournal("s0001")
			if err != nil {
				t.Fatal(err)
			}
			appendN(t, jr, 3)
			jr.Close()

			path := st.journalFile("s0001")
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.WriteString(tc.tail); err != nil {
				t.Fatal(err)
			}
			f.Close()

			recovered, err := st.RecoverSessions()
			if err != nil {
				t.Fatal(err)
			}
			recs := recovered[0].Journal.Records()
			if len(recs) != tc.want {
				t.Fatalf("recovered %d records, want %d", len(recs), tc.want)
			}
			if got := st.Metrics().TruncatedJournals; got != 1 {
				t.Fatalf("TruncatedJournals = %d, want 1", got)
			}
			// The torn tail is gone from disk: appends resume at the next
			// sequence number and a fresh recovery is clean.
			if err := recovered[0].Journal.Append("event", testPayload{N: 4}); err != nil {
				t.Fatal(err)
			}
			recovered[0].Journal.Close()
			st2, err := Open(st.Dir())
			if err != nil {
				t.Fatal(err)
			}
			again, err := st2.RecoverSessions()
			if err != nil {
				t.Fatal(err)
			}
			recs = again[0].Journal.Records()
			if len(recs) != tc.want+1 || recs[len(recs)-1].Seq != uint64(tc.want+1) {
				t.Fatalf("post-truncation append not recovered: %+v", recs)
			}
			if st2.Metrics().TruncatedJournals != 0 {
				t.Fatalf("second recovery must be clean, metrics %+v", st2.Metrics())
			}
		})
	}
}

// TestRecoverForeignFilename pins that recovery reads journals from their
// actual on-disk paths: a file whose name is not a PathEscape fixed point
// (e.g. containing '%') must still be recovered, not error out.
func TestRecoverForeignFilename(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	jr, err := st.CreateJournal("s0001")
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, jr, 2)
	jr.Close()
	line := `{"seq":1,"type":"event"}` + "\n"
	if err := os.WriteFile(filepath.Join(st.sessionsDir(), "s%301.jsonl"), []byte(line), 0o644); err != nil {
		t.Fatal(err)
	}
	recovered, err := st.RecoverSessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 2 {
		t.Fatalf("recovered %d journals, want 2 (incl. the foreign filename)", len(recovered))
	}
	for _, rs := range recovered {
		if rs.Journal.Len() == 0 {
			t.Fatalf("journal %s recovered empty", rs.ID)
		}
	}
}

func TestJournalRemove(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	jr, err := st.CreateJournal("s0001")
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, jr, 2)
	if err := jr.Remove(); err != nil {
		t.Fatal(err)
	}
	recovered, err := st.RecoverSessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 0 {
		t.Fatalf("removed journal still recovered: %+v", recovered)
	}
}

func TestMemJournalTail(t *testing.T) {
	jr := NewMemJournal()
	appendN(t, jr, 2)
	recs, notify := jr.After(2)
	if len(recs) != 0 {
		t.Fatalf("After(2) = %+v, want empty", recs)
	}
	done := make(chan struct{})
	go func() {
		<-notify
		close(done)
	}()
	if err := jr.Append("event", testPayload{N: 3}); err != nil {
		t.Fatal(err)
	}
	<-done
	recs, _ = jr.After(2)
	if len(recs) != 1 || recs[0].Seq != 3 {
		t.Fatalf("tail after notify = %+v", recs)
	}
}

// TestJournalCloseWakesTailers pins the stream-termination contract: a
// tailer parked on the After channel wakes when the journal is closed and
// can observe Closed, instead of waiting for a record that never comes.
func TestJournalCloseWakesTailers(t *testing.T) {
	jr := NewMemJournal()
	appendN(t, jr, 1)
	recs, notify := jr.After(1)
	if len(recs) != 0 || jr.Closed() {
		t.Fatalf("fresh journal: recs=%v closed=%v", recs, jr.Closed())
	}
	done := make(chan struct{})
	go func() {
		<-notify
		close(done)
	}()
	if err := jr.Close(); err != nil {
		t.Fatal(err)
	}
	<-done
	if !jr.Closed() {
		t.Fatal("Closed() must report true after Close")
	}
	if recs := jr.Records(); len(recs) != 1 {
		t.Fatalf("closed journal lost its tail: %v", recs)
	}
}

func TestGraphSnapshotRoundTrip(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	g1 := dataset.Figure1()
	g2 := dataset.Random(dataset.RandomOptions{Nodes: 30, Seed: 7})
	if err := st.SaveGraph("demo", g1); err != nil {
		t.Fatal(err)
	}
	if err := st.SaveGraph("rand", g2); err != nil {
		t.Fatal(err)
	}
	if err := st.SaveGraph("gone", g1); err != nil {
		t.Fatal(err)
	}
	if err := st.DeleteGraph("gone"); err != nil {
		t.Fatal(err)
	}
	if err := st.DeleteGraph("never-existed"); err != nil {
		t.Fatal(err)
	}

	recovered, err := st.RecoverGraphs()
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 2 || recovered[0].Name != "demo" || recovered[1].Name != "rand" {
		t.Fatalf("recovered %+v, want demo and rand", recovered)
	}
	for i, want := range []*graph.Graph{g1, g2} {
		if got := recovered[i].Graph.Text(); got != want.Text() {
			t.Fatalf("graph %s does not round-trip", recovered[i].Name)
		}
	}
}

// TestGraphSnapshotPartial injects partial-write and bit-flip corruption:
// both must fail the integrity check and be skipped, even when the
// truncated payload is still a syntactically valid edge list.
func TestGraphSnapshotPartial(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SaveGraph("intact", dataset.Figure1()); err != nil {
		t.Fatal(err)
	}
	if err := st.SaveGraph("cut", dataset.Figure1()); err != nil {
		t.Fatal(err)
	}
	if err := st.SaveGraph("flipped", dataset.Figure1()); err != nil {
		t.Fatal(err)
	}
	// Truncate "cut" at a line boundary so the remaining text still parses.
	cutPath := st.snapshotFile("cut")
	data, err := os.ReadFile(cutPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := 0
	cutAt := len(data)
	for i, b := range data {
		if b == '\n' {
			if lines++; lines == 4 {
				cutAt = i + 1
				break
			}
		}
	}
	if err := os.WriteFile(cutPath, data[:cutAt], 0o644); err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte of "flipped".
	flipPath := st.snapshotFile("flipped")
	data, err = os.ReadFile(flipPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0x20
	if err := os.WriteFile(flipPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	recovered, err := st.RecoverGraphs()
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, rg := range recovered {
		names = append(names, rg.Name)
	}
	if !reflect.DeepEqual(names, []string{"intact"}) {
		t.Fatalf("recovered %v, want only the intact snapshot", names)
	}
	m := st.Metrics()
	if m.CorruptSnapshots != 2 || m.RecoveredGraphs != 1 {
		t.Fatalf("metrics = %+v, want 2 corrupt and 1 recovered", m)
	}
}

func TestMetricsCounters(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	jr, err := st.CreateJournal("s0001")
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, jr, 5)
	if err := st.SaveGraph("g", dataset.Figure1()); err != nil {
		t.Fatal(err)
	}
	m := st.Metrics()
	if m.JournalAppends != 5 || m.JournalBytes == 0 {
		t.Fatalf("journal counters: %+v", m)
	}
	if m.Fsyncs < 5 || m.FsyncMeanMicros <= 0 {
		t.Fatalf("fsync counters: %+v", m)
	}
	if m.SnapshotSaves != 1 || m.SnapshotBytes == 0 {
		t.Fatalf("snapshot counters: %+v", m)
	}
}
