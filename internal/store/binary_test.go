package store

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/dataset"
)

func openBinaryT(t *testing.T, dir string, opts EngineOptions) Engine {
	t.Helper()
	opts.Kind = EngineKindBinary
	e, err := OpenEngine(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

func recsOf(t *testing.T, e Engine) map[string][]Record {
	t.Helper()
	recovered, err := e.RecoverSessions()
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string][]Record, len(recovered))
	for _, rs := range recovered {
		out[rs.ID] = rs.Journal.Records()
	}
	return out
}

func TestBinaryJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	e := openBinaryT(t, dir, EngineOptions{})
	jr, err := e.CreateJournal("s0001")
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, jr, 3)
	if _, err := e.CreateJournal("s0001"); err == nil {
		t.Fatal("duplicate journal id must fail")
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := jr.Append("event", nil); err == nil {
		t.Fatal("append after engine close must fail")
	}

	e2 := openBinaryT(t, dir, EngineOptions{})
	recovered, err := e2.RecoverSessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 1 || recovered[0].ID != "s0001" {
		t.Fatalf("recovered %+v, want one session s0001", recovered)
	}
	recs := recovered[0].Journal.Records()
	if len(recs) != 3 {
		t.Fatalf("recovered %d records, want 3", len(recs))
	}
	for i, rec := range recs {
		var p testPayload
		if err := json.Unmarshal(rec.Data, &p); err != nil {
			t.Fatal(err)
		}
		if rec.Seq != uint64(i+1) || rec.Type != "event" || p.N != i+1 {
			t.Fatalf("record %d = %+v payload %+v", i, rec, p)
		}
	}
	// The recovered journal keeps appending with continuous sequence
	// numbers, and a third recovery sees the full log.
	if err := recovered[0].Journal.Append("event", testPayload{N: 4}); err != nil {
		t.Fatal(err)
	}
	e2.Close()
	e3 := openBinaryT(t, dir, EngineOptions{})
	recs = recsOf(t, e3)["s0001"]
	if len(recs) != 4 || recs[3].Seq != 4 {
		t.Fatalf("after resume-append recovery found %+v", recs)
	}
	if m := e3.Metrics(); m.TruncatedJournals != 0 || m.CorruptFrames != 0 {
		t.Fatalf("clean wal must recover clean: %+v", m)
	}
}

func TestBinaryGroupCommitBatches(t *testing.T) {
	dir := t.TempDir()
	e := openBinaryT(t, dir, EngineOptions{})
	const sessions, appends = 8, 25
	journals := make([]*Journal, sessions)
	for i := range journals {
		jr, err := e.CreateJournal(fmt.Sprintf("s%04d", i+1))
		if err != nil {
			t.Fatal(err)
		}
		journals[i] = jr
	}
	var wg sync.WaitGroup
	for _, jr := range journals {
		wg.Add(1)
		go func(jr *Journal) {
			defer wg.Done()
			for n := 1; n <= appends; n++ {
				if err := jr.Append("event", testPayload{N: n}); err != nil {
					t.Error(err)
					return
				}
			}
		}(jr)
	}
	wg.Wait()
	m := e.Metrics()
	if m.JournalAppends != sessions*appends {
		t.Fatalf("JournalAppends = %d, want %d", m.JournalAppends, sessions*appends)
	}
	if m.Fsyncs >= m.JournalAppends {
		t.Fatalf("group commit did not batch: %d fsyncs for %d appends", m.Fsyncs, m.JournalAppends)
	}
	if m.GroupCommits == 0 || m.MeanBatch <= 1 {
		t.Fatalf("batch metrics not populated: %+v", m)
	}
	e.Close()

	e2 := openBinaryT(t, dir, EngineOptions{})
	recs := recsOf(t, e2)
	if len(recs) != sessions {
		t.Fatalf("recovered %d sessions, want %d", len(recs), sessions)
	}
	for sid, rs := range recs {
		if len(rs) != appends {
			t.Fatalf("session %s recovered %d records, want %d", sid, len(rs), appends)
		}
		for i, rec := range rs {
			if rec.Seq != uint64(i+1) {
				t.Fatalf("session %s record %d has seq %d", sid, i, rec.Seq)
			}
		}
	}
}

func TestBinarySegmentRotation(t *testing.T) {
	dir := t.TempDir()
	e := openBinaryT(t, dir, EngineOptions{SegmentSize: 256})
	jr, err := e.CreateJournal("s0001")
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, jr, 40)
	if m := e.Metrics(); m.SegmentsCreated < 3 {
		t.Fatalf("expected several segments at 256-byte roll-over, got %d", m.SegmentsCreated)
	}
	e.Close()
	e2 := openBinaryT(t, dir, EngineOptions{SegmentSize: 256})
	if recs := recsOf(t, e2)["s0001"]; len(recs) != 40 {
		t.Fatalf("multi-segment recovery found %d records, want 40", len(recs))
	}
}

// lastSegment returns the path of the highest-numbered segment.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "wal", "seg-*.seg"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no segments found: %v", err)
	}
	return matches[len(matches)-1]
}

// TestBinaryTornTail injects the crash modes the segmented log must
// survive at its tail: a partial frame header, a frame length overrunning
// the file, and a CRC failure on the final frame. All truncate to the
// longest valid prefix, and appends resume cleanly after recovery.
func TestBinaryTornTail(t *testing.T) {
	cases := []struct {
		name string
		tear func(t *testing.T, path string)
	}{
		{"partial-header", func(t *testing.T, path string) {
			f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
			f.Write([]byte{0x03, 0x00})
			f.Close()
		}},
		{"length-overrun", func(t *testing.T, path string) {
			f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
			// Declares a 200-byte payload with only garbage behind it.
			f.Write([]byte{200, 0, 0, 0, 1, 2, 3, 4, 9, 9})
			f.Close()
		}},
		{"crc-flip-last-frame", func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)-1] ^= 0x40
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			e := openBinaryT(t, dir, EngineOptions{})
			jr, err := e.CreateJournal("s0001")
			if err != nil {
				t.Fatal(err)
			}
			appendN(t, jr, 3)
			e.Close()
			tc.tear(t, lastSegment(t, dir))

			e2 := openBinaryT(t, dir, EngineOptions{})
			recovered, err := e2.RecoverSessions()
			if err != nil {
				t.Fatal(err)
			}
			recs := recovered[0].Journal.Records()
			want := 3
			if tc.name == "crc-flip-last-frame" {
				want = 2 // the flipped final frame is gone
			}
			if len(recs) != want {
				t.Fatalf("recovered %d records, want %d", len(recs), want)
			}
			if got := e2.Metrics().TruncatedJournals; got != 1 {
				t.Fatalf("TruncatedJournals = %d, want 1", got)
			}
			// Appends resume at the next sequence number; the following
			// recovery is clean.
			if err := recovered[0].Journal.Append("event", testPayload{N: 99}); err != nil {
				t.Fatal(err)
			}
			e2.Close()
			e3 := openBinaryT(t, dir, EngineOptions{})
			recs = recsOf(t, e3)["s0001"]
			if len(recs) != want+1 || recs[len(recs)-1].Seq != uint64(want+1) {
				t.Fatalf("post-truncation append not recovered: %+v", recs)
			}
			if m := e3.Metrics(); m.TruncatedJournals != 0 {
				t.Fatalf("second recovery must be clean, metrics %+v", m)
			}
		})
	}
}

// TestBinaryMidLogCorruption flips a CRC in a *sealed* segment (not the
// tail): only the hit frame's session is truncated at its gap, the other
// session and all later records of it re-converge after resume.
func TestBinaryMidLogCorruption(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: every frame its own segment, so frame 2 sits in a
	// sealed segment once more appends follow.
	e := openBinaryT(t, dir, EngineOptions{SegmentSize: 1})
	ja, err := e.CreateJournal("aaaa")
	if err != nil {
		t.Fatal(err)
	}
	jb, err := e.CreateJournal("bbbb")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		if err := ja.Append("event", testPayload{N: i}); err != nil {
			t.Fatal(err)
		}
		if err := jb.Append("event", testPayload{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	e.Close()

	// Flip a payload byte of session aaaa's second record (segment 3:
	// appends interleave a1 b1 a2 b2 ...). The flip lands in the data
	// frame at the segment's start — the seal appends an index footer
	// after it, which must keep checking out.
	matches, err := filepath.Glob(filepath.Join(dir, "wal", "seg-*.seg"))
	if err != nil || len(matches) < 8 {
		t.Fatalf("expected one frame per segment, got %v", matches)
	}
	data, err := os.ReadFile(matches[2])
	if err != nil {
		t.Fatal(err)
	}
	// Every segment opens with an epoch frame; the data frame follows it.
	dataOff := len(encodeFrame(encodeEpochPayload(1)))
	data[dataOff+frameHeaderSize+1] ^= 0x01
	if err := os.WriteFile(matches[2], data, 0o644); err != nil {
		t.Fatal(err)
	}

	e2 := openBinaryT(t, dir, EngineOptions{SegmentSize: 1})
	recs := recsOf(t, e2)
	if got := len(recs["aaaa"]); got != 1 {
		t.Fatalf("hit session kept %d records, want 1 (prefix before the flipped frame)", got)
	}
	if got := len(recs["bbbb"]); got != 4 {
		t.Fatalf("clean session kept %d records, want all 4", got)
	}
	m := e2.Metrics()
	if m.CorruptFrames != 1 || m.TruncatedJournals != 1 {
		t.Fatalf("metrics = %+v, want 1 corrupt frame and 1 truncated journal", m)
	}
}

func TestBinaryTombstone(t *testing.T) {
	dir := t.TempDir()
	e := openBinaryT(t, dir, EngineOptions{})
	jr, err := e.CreateJournal("gone")
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, jr, 2)
	keep, err := e.CreateJournal("kept")
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, keep, 1)
	if err := jr.Remove(); err != nil {
		t.Fatal(err)
	}
	e.Close()
	e2 := openBinaryT(t, dir, EngineOptions{})
	recs := recsOf(t, e2)
	if _, ok := recs["gone"]; ok {
		t.Fatal("removed session recovered")
	}
	if len(recs["kept"]) != 1 {
		t.Fatalf("kept session = %+v", recs["kept"])
	}
	// The id of a removed session can never be reused.
	e2.Close()
	e3 := openBinaryT(t, dir, EngineOptions{})
	if _, err := e3.CreateJournal("gone"); err == nil {
		t.Fatal("tombstoned id must not be reusable")
	}
}

func TestBinaryGraphSnapshots(t *testing.T) {
	dir := t.TempDir()
	e := openBinaryT(t, dir, EngineOptions{})
	g1 := dataset.Figure1()
	g2 := dataset.Random(dataset.RandomOptions{Nodes: 30, Seed: 7})
	if err := e.SaveGraph("demo", g1); err != nil {
		t.Fatal(err)
	}
	if err := e.SaveGraph("rand", g2); err != nil {
		t.Fatal(err)
	}
	if err := e.SaveGraph("gone", g1); err != nil {
		t.Fatal(err)
	}
	if err := e.DeleteGraph("gone"); err != nil {
		t.Fatal(err)
	}
	recovered, err := e.RecoverGraphs()
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 2 || recovered[0].Name != "demo" || recovered[1].Name != "rand" {
		t.Fatalf("recovered %+v", recovered)
	}
	if recovered[0].Graph.Text() != g1.Text() || recovered[1].Graph.Text() != g2.Text() {
		t.Fatal("binary snapshot does not round-trip")
	}

	// Corruption: flip one payload byte — the CRC check must reject it.
	path := snapshotFile(filepath.Join(dir, "graphs"), "demo")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0x10
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	e.Close()
	e2 := openBinaryT(t, dir, EngineOptions{})
	recovered, err = e2.RecoverGraphs()
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 1 || recovered[0].Name != "rand" {
		t.Fatalf("corrupt snapshot not skipped: %+v", recovered)
	}
	if m := e2.Metrics(); m.CorruptSnapshots != 1 {
		t.Fatalf("CorruptSnapshots = %d, want 1", m.CorruptSnapshots)
	}
}

// TestSnapshotFormatsInterop pins that either engine reads the other's
// snapshot format, so -store-engine can change on an existing data dir
// without losing graphs.
func TestSnapshotFormatsInterop(t *testing.T) {
	dir := t.TempDir()
	g := dataset.Figure1()
	text, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := text.SaveGraph("via-text", g); err != nil {
		t.Fatal(err)
	}
	bin := openBinaryT(t, dir, EngineOptions{})
	if err := bin.SaveGraph("via-binary", g); err != nil {
		t.Fatal(err)
	}
	for _, e := range []Engine{text, bin} {
		recovered, err := e.RecoverGraphs()
		if err != nil {
			t.Fatal(err)
		}
		if len(recovered) != 2 {
			t.Fatalf("%s engine recovered %d graphs, want both formats", e.EngineName(), len(recovered))
		}
		for _, rg := range recovered {
			if rg.Graph.Text() != g.Text() {
				t.Fatalf("%s engine: graph %s does not round-trip", e.EngineName(), rg.Name)
			}
		}
	}
}

func TestBinaryCompaction(t *testing.T) {
	dir := t.TempDir()
	e := openBinaryT(t, dir, EngineOptions{SegmentSize: 128})
	finished, err := e.CreateJournal("finished")
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, finished, 5)
	if err := finished.AppendTerminal("done", testPayload{N: 99, S: "final"}); err != nil {
		t.Fatal(err)
	}
	live, err := e.CreateJournal("live")
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, live, 3)
	removed, err := e.CreateJournal("removed")
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, removed, 4)
	if err := removed.Remove(); err != nil {
		t.Fatal(err)
	}
	e.Close()

	e2 := openBinaryT(t, dir, EngineOptions{SegmentSize: 128})
	rep, err := e2.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Supported || rep.SessionsCompacted != 1 || rep.SessionsDropped != 1 {
		t.Fatalf("compaction report %+v", rep)
	}
	if rep.SegmentsRetired == 0 || rep.BytesAfter >= rep.BytesBefore {
		t.Fatalf("compaction did not shrink the wal: %+v", rep)
	}
	recs := recsOf(t, e2)
	if _, ok := recs["removed"]; ok {
		t.Fatal("tombstoned session survived compaction")
	}
	if got := recs["live"]; len(got) != 3 {
		t.Fatalf("live session = %+v, want its full 3 records", got)
	}
	fin := recs["finished"]
	if len(fin) != 2 || fin[0].Seq != 1 || fin[1].Seq != 2 {
		t.Fatalf("finished session = %+v, want [create-like, terminal] renumbered", fin)
	}
	var p testPayload
	if err := json.Unmarshal(fin[1].Data, &p); err != nil || fin[1].Type != "done" || p.S != "final" {
		t.Fatalf("terminal record lost its payload: %+v (%v)", fin[1], err)
	}
	// The summary survives a second compaction unchanged (idempotent).
	e2.Close()
	e3 := openBinaryT(t, dir, EngineOptions{SegmentSize: 128})
	if _, err := e3.Compact(); err != nil {
		t.Fatal(err)
	}
	if again := recsOf(t, e3)["finished"]; !reflect.DeepEqual(again, fin) {
		t.Fatalf("second compaction changed the summary: %+v vs %+v", again, fin)
	}
}

// TestBinaryCompactLiveAfterJournals: once journals are out, Compact
// switches to the live protocol instead of refusing — it seals the active
// segment, rewrites the sealed ones and keeps every acked record, with
// the journals still appendable afterwards.
func TestBinaryCompactLiveAfterJournals(t *testing.T) {
	dir := t.TempDir()
	e := openBinaryT(t, dir, EngineOptions{SegmentSize: 128})
	jr, err := e.CreateJournal("s0001")
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, jr, 5)
	done, err := e.CreateJournal("s0002")
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, done, 3)
	if err := done.AppendTerminal("done", testPayload{S: "final"}); err != nil {
		t.Fatal(err)
	}
	rep, err := e.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Supported || rep.SessionsCompacted != 1 || rep.SegmentsRetired == 0 {
		t.Fatalf("live compaction report %+v", rep)
	}
	// The journal handed out before the compaction keeps working.
	if err := jr.Append("event", testPayload{N: 6}); err != nil {
		t.Fatal(err)
	}
	e.Close()
	e2 := openBinaryT(t, dir, EngineOptions{})
	recs := recsOf(t, e2)
	if got := recs["s0001"]; len(got) != 6 {
		t.Fatalf("live session = %d records, want 6", len(got))
	}
	if got := recs["s0002"]; len(got) != 2 {
		t.Fatalf("finished session = %+v, want its 2-record summary", got)
	}
}

// TestBinaryCompactionCrashRepair reconstructs every directory state an
// interrupted compaction can leave behind and verifies open() repairs each
// into a consistent, recoverable wal.
func TestBinaryCompactionCrashRepair(t *testing.T) {
	build := func(t *testing.T) string {
		dir := t.TempDir()
		e := openBinaryT(t, dir, EngineOptions{})
		jr, err := e.CreateJournal("s0001")
		if err != nil {
			t.Fatal(err)
		}
		appendN(t, jr, 3)
		e.Close()
		return dir
	}
	verify := func(t *testing.T, dir string) {
		e := openBinaryT(t, dir, EngineOptions{})
		recs := recsOf(t, e)["s0001"]
		if len(recs) != 3 {
			t.Fatalf("repair lost records: %+v", recs)
		}
		for _, leftover := range []string{"wal.compact", "wal.old"} {
			if _, err := os.Stat(filepath.Join(dir, leftover)); !os.IsNotExist(err) {
				t.Fatalf("%s left behind after repair", leftover)
			}
		}
	}

	t.Run("crash-before-swap", func(t *testing.T) {
		// wal intact, wal.compact possibly half-written → drop compact.
		dir := build(t)
		if err := os.MkdirAll(filepath.Join(dir, "wal.compact"), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "wal.compact", "seg-00000001.seg"), []byte("half"), 0o644); err != nil {
			t.Fatal(err)
		}
		verify(t, dir)
	})
	t.Run("crash-mid-swap", func(t *testing.T) {
		// wal renamed away, wal.compact complete → promote compact.
		dir := build(t)
		if err := os.Rename(filepath.Join(dir, "wal"), filepath.Join(dir, "wal.old")); err != nil {
			t.Fatal(err)
		}
		// The "compacted" wal here is a byte-copy of the original (the
		// repair rule only depends on directory presence).
		if err := os.CopyFS(filepath.Join(dir, "wal.compact"), os.DirFS(filepath.Join(dir, "wal.old"))); err != nil {
			t.Fatal(err)
		}
		verify(t, dir)
	})
	t.Run("crash-before-cleanup", func(t *testing.T) {
		// Swap done, wal.old not yet removed → drop old.
		dir := build(t)
		if err := os.CopyFS(filepath.Join(dir, "wal.old"), os.DirFS(filepath.Join(dir, "wal"))); err != nil {
			t.Fatal(err)
		}
		verify(t, dir)
	})
	t.Run("rollback-only-old", func(t *testing.T) {
		// Neither wal nor wal.compact: restore wal.old.
		dir := build(t)
		if err := os.Rename(filepath.Join(dir, "wal"), filepath.Join(dir, "wal.old")); err != nil {
			t.Fatal(err)
		}
		verify(t, dir)
	})
}

// TestEngineEquivalenceRandomized replays identical session traffic —
// interleaved appends, terminal records, removals — through the text and
// binary engines and requires byte-identical recovered state. The text
// engine is the readability oracle; the binary engine must never diverge
// from it.
func TestEngineEquivalenceRandomized(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			textDir, binDir := t.TempDir(), t.TempDir()
			text, err := Open(textDir)
			if err != nil {
				t.Fatal(err)
			}
			bin := openBinaryT(t, binDir, EngineOptions{SegmentSize: int64(64 << rng.Intn(6))})

			type pair struct{ tj, bj *Journal }
			journals := make(map[string]*pair)
			terminated := make(map[string]bool)
			var ids []string
			types := []string{"create", "question", "answer", "hypothesis"}
			for op := 0; op < 120; op++ {
				switch k := rng.Intn(10); {
				case k == 0 || len(ids) == 0: // create a session
					id := fmt.Sprintf("s%04d", len(journals)+1)
					tj, err := text.CreateJournal(id)
					if err != nil {
						t.Fatal(err)
					}
					bj, err := bin.CreateJournal(id)
					if err != nil {
						t.Fatal(err)
					}
					journals[id] = &pair{tj, bj}
					ids = append(ids, id)
					// The service always writes the create record
					// immediately (an empty journal is never left behind).
					payload := testPayload{N: op, S: "create"}
					if err := tj.Append("create", payload); err != nil {
						t.Fatal(err)
					}
					if err := bj.Append("create", payload); err != nil {
						t.Fatal(err)
					}
				case k == 1: // remove a random session
					id := ids[rng.Intn(len(ids))]
					p := journals[id]
					if err := p.tj.Remove(); err != nil {
						t.Fatal(err)
					}
					if err := p.bj.Remove(); err != nil {
						t.Fatal(err)
					}
					terminated[id] = true
				case k == 2: // finish a random session
					id := ids[rng.Intn(len(ids))]
					if terminated[id] {
						continue
					}
					p := journals[id]
					payload := testPayload{N: op, S: "done"}
					if err := p.tj.AppendTerminal("done", payload); err != nil {
						t.Fatal(err)
					}
					if err := p.bj.AppendTerminal("done", payload); err != nil {
						t.Fatal(err)
					}
					terminated[id] = true
				default: // append to a random live session
					id := ids[rng.Intn(len(ids))]
					if terminated[id] {
						continue
					}
					p := journals[id]
					typ := types[rng.Intn(len(types))]
					payload := testPayload{N: op, S: typ}
					if err := p.tj.Append(typ, payload); err != nil {
						t.Fatal(err)
					}
					if err := p.bj.Append(typ, payload); err != nil {
						t.Fatal(err)
					}
				}
			}
			// Also persist a graph through both engines.
			g := dataset.Random(dataset.RandomOptions{Nodes: 20 + rng.Intn(30), Seed: seed})
			if err := text.SaveGraph("g", g); err != nil {
				t.Fatal(err)
			}
			if err := bin.SaveGraph("g", g); err != nil {
				t.Fatal(err)
			}
			bin.Close()

			// Recover both sides fresh and compare state byte for byte.
			text2, err := Open(textDir)
			if err != nil {
				t.Fatal(err)
			}
			bin2 := openBinaryT(t, binDir, EngineOptions{})
			trecs, brecs := recsOf(t, text2), recsOf(t, bin2)
			if !reflect.DeepEqual(trecs, brecs) {
				t.Fatalf("recovered sessions diverge\n text  %+v\n binary %+v", trecs, brecs)
			}
			tg, err := text2.RecoverGraphs()
			if err != nil {
				t.Fatal(err)
			}
			bg, err := bin2.RecoverGraphs()
			if err != nil {
				t.Fatal(err)
			}
			if len(tg) != 1 || len(bg) != 1 || tg[0].Graph.Text() != bg[0].Graph.Text() {
				t.Fatal("recovered graphs diverge")
			}
		})
	}
}

// TestBinaryMigratesTextJournals pins the engine-switch path: a data
// directory written by the text engine, reopened with the binary engine,
// must recover every JSONL session (not silently abandon them), keep
// appending to them, and give new sessions wal-backed journals.
func TestBinaryMigratesTextJournals(t *testing.T) {
	dir := t.TempDir()
	text, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := text.CreateJournal("s0001")
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, legacy, 3)
	legacy.Close()

	bin := openBinaryT(t, dir, EngineOptions{})
	recovered, err := bin.RecoverSessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 1 || recovered[0].ID != "s0001" || recovered[0].Journal.Len() != 3 {
		t.Fatalf("legacy session not migrated: %+v", recovered)
	}
	// The migrated journal keeps appending (into its JSONL file), the id
	// stays reserved, and a new session lands in the wal.
	if err := recovered[0].Journal.Append("event", testPayload{N: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := bin.CreateJournal("s0001"); err == nil {
		t.Fatal("legacy id must not be reusable")
	}
	fresh, err := bin.CreateJournal("s0002")
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, fresh, 2)
	bin.Close()

	bin2 := openBinaryT(t, dir, EngineOptions{})
	recs := recsOf(t, bin2)
	if len(recs["s0001"]) != 4 || len(recs["s0002"]) != 2 {
		t.Fatalf("mixed recovery = %d legacy records, %d wal records", len(recs["s0001"]), len(recs["s0002"]))
	}
}

// TestTextRefusesBinaryWal pins the reverse guard: the text engine
// cannot read wal segments, so opening such a directory must fail loudly
// instead of recovering zero sessions from a populated store.
func TestTextRefusesBinaryWal(t *testing.T) {
	dir := t.TempDir()
	bin := openBinaryT(t, dir, EngineOptions{})
	jr, err := bin.CreateJournal("s0001")
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, jr, 1)
	bin.Close()
	if _, err := Open(dir); err == nil {
		t.Fatal("text engine must refuse a directory holding a binary wal")
	}
}

// TestBinaryReusesTailSegment pins that restarts append to the existing
// tail segment instead of opening a fresh one each boot.
func TestBinaryReusesTailSegment(t *testing.T) {
	dir := t.TempDir()
	e := openBinaryT(t, dir, EngineOptions{})
	jr, err := e.CreateJournal("s0001")
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, jr, 2)
	e.Close()
	for restart := 0; restart < 3; restart++ {
		e2 := openBinaryT(t, dir, EngineOptions{})
		recovered, err := e2.RecoverSessions()
		if err != nil {
			t.Fatal(err)
		}
		if err := recovered[0].Journal.Append("event", nil); err != nil {
			t.Fatal(err)
		}
		e2.Close()
	}
	segs, err := filepath.Glob(filepath.Join(dir, "wal", "seg-*.seg"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("3 restarts left %d segments, want 1 (reuse the tail)", len(segs))
	}
	e3 := openBinaryT(t, dir, EngineOptions{})
	if recs := recsOf(t, e3)["s0001"]; len(recs) != 5 {
		t.Fatalf("recovered %d records across restarts, want 5", len(recs))
	}
}
