package store

// Streaming replication of the binary engine's wal to a warm follower.
//
// The primary side is ServeFeed: an HTTP handler body that first ships
// every graph snapshot and sealed segment, then tails the active
// segment's group-commit frames as the writer publishes durable
// positions. The feed is a sequence of messages framed exactly like wal
// frames — [u32le length][u32le CRC32][payload] — so both ends reuse the
// engine's frame codec; the first payload byte selects the message type.
//
// The follower side is Replica: a byte-level applier that maintains a
// physical copy of the primary's data directory (wal segments + graph
// snapshots) without opening an engine. Offsets are resumable — a
// follower reconnects with (generation, segment, offset) and the feed
// continues from there — and sealed segments are verified against their
// index footers (falling back to a full CRC scan when a segment sealed
// without one). Compaction rewrites wal history, so it bumps a GEN
// counter that rides the crash-safe swap: a follower that resumes across
// a ctl-swap sees the generation change and re-syncs the retired
// segments from scratch instead of wedging on vanished files.
//
// Fencing: every data directory carries a monotonic epoch (the `epoch`
// file, also stamped into each segment as a flag-6 frame). Promotion
// bumps it past the highest epoch the follower ever saw from its
// primary, so a resurrected old primary — running with a lower epoch —
// can be recognised and refused by epoch-aware clients and servers.

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

const (
	// walGenFile names the wal generation counter file; compaction writes
	// the incremented value into wal.compact so the two-rename swap bumps
	// it atomically with the rewritten history.
	walGenFile = "GEN"
	// epochFile names the fencing-epoch counter at the data-dir root (it
	// must survive compaction, which replaces the wal directory).
	epochFile = "epoch"

	feedChunkSize      = 256 << 10
	feedHeartbeatEvery = 200 * time.Millisecond
	feedGraphPollEvery = 500 * time.Millisecond

	replReconnectMin = 50 * time.Millisecond
	replReconnectMax = 2 * time.Second
	replStallTimeout = 10 * time.Second
	replSyncEvery    = 100 * time.Millisecond
)

// Feed message types (first payload byte).
const (
	feedMsgHello     = 'H'
	feedMsgHeartbeat = 'B'
	feedMsgSegData   = 'S'
	feedMsgSegSeal   = 'E'
	feedMsgGraph     = 'G'
	feedMsgGraphList = 'L'
	feedMsgGraphDel  = 'X'

	feedProtoVersion = 1
)

// FeedPos is a follower's resume position: the wal generation it was
// replicating plus the segment/offset it has durably applied. A zero
// position (or one the primary cannot serve) triggers a full re-sync.
type FeedPos struct {
	Gen uint64
	Seg uint64
	Off int64
}

// ReplState is the primary's published replication state: the durable
// position the group-commit writer has fsynced up to, plus cumulative
// frame/byte counters for lag accounting.
type ReplState struct {
	Gen    uint64 `json:"gen"`
	Epoch  uint64 `json:"epoch"`
	Seg    uint64 `json:"seg"`
	Off    int64  `json:"off"`
	Frames uint64 `json:"frames"`
	Bytes  uint64 `json:"bytes"`
	// Feeds counts connected follower feeds; FeedBytesSent the bytes
	// streamed to them since open.
	Feeds         int    `json:"feeds"`
	FeedBytesSent uint64 `json:"feed_bytes_sent"`
}

// Replicator is the replication surface of a store engine. The binary
// engine implements it; the text engine does not (its per-session JSONL
// files have no single log to stream), so callers type-assert.
type Replicator interface {
	ReplState() ReplState
	ServeFeed(ctx context.Context, w io.Writer, flush func(), pos FeedPos) error
	Epoch() uint64
	SetEpoch(epoch uint64) error
}

var _ Replicator = (*binaryEngine)(nil)

// --- primary-side state publication ----------------------------------------

// replPub is the writer-updated publication point feeds wait on.
type replPub struct {
	mu     sync.Mutex
	st     ReplState
	notify chan struct{}

	feeds atomic.Int64
	sent  atomic.Int64
}

func (p *replPub) init(gen, epoch uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.st.Gen, p.st.Epoch = gen, epoch
	p.notify = make(chan struct{})
}

// publish records a new durable position (always post-fsync) and wakes
// every waiting feed. frames is the number of record frames the advance
// carried (0 for footers, epoch frames and rotations).
func (p *replPub) publish(seg uint64, off int64, frames uint64) {
	p.mu.Lock()
	if p.st.Seg == seg && off >= p.st.Off {
		p.st.Bytes += uint64(off - p.st.Off)
	} else {
		p.st.Bytes += uint64(off)
	}
	p.st.Seg, p.st.Off = seg, off
	p.st.Frames += frames
	ch := p.notify
	p.notify = make(chan struct{})
	p.mu.Unlock()
	close(ch)
}

// rebase starts a new generation with the published position re-pointed
// at the compacted wal's tail. Compaction rewrites every segment at or
// below its seal boundary, so a published position inside that range
// names bytes that no longer exist; leaving it in place wedges any feed
// that tails the (now shorter) active segment toward the stale offset.
// Frames/Bytes stay cumulative: followers only echo them from
// heartbeats, so monotonicity is what matters, not wal content.
func (p *replPub) rebase(seg uint64, off int64) {
	p.mu.Lock()
	p.st.Gen++
	p.st.Seg, p.st.Off = seg, off
	ch := p.notify
	p.notify = make(chan struct{})
	p.mu.Unlock()
	close(ch)
}

func (p *replPub) setEpoch(v uint64) {
	p.mu.Lock()
	p.st.Epoch = v
	p.mu.Unlock()
}

func (p *replPub) snapshot() ReplState {
	p.mu.Lock()
	st := p.st
	p.mu.Unlock()
	st.Feeds = int(p.feeds.Load())
	st.FeedBytesSent = uint64(p.sent.Load())
	return st
}

// waitCh returns a channel closed at the next publication. Capture it
// before snapshotting, so a publication between snapshot and wait is
// never missed.
func (p *replPub) waitCh() <-chan struct{} {
	p.mu.Lock()
	ch := p.notify
	p.mu.Unlock()
	return ch
}

// ReplState returns the engine's current replication state.
func (e *binaryEngine) ReplState() ReplState { return e.repl.snapshot() }

// Epoch returns the engine's fencing epoch.
func (e *binaryEngine) Epoch() uint64 { return e.repl.snapshot().Epoch }

// SetEpoch raises the fencing epoch: it is persisted to the epoch file
// first (a persisted-but-unannounced higher epoch is harmless), then
// stamped into the open segment as an epoch frame. Called at promotion.
func (e *binaryEngine) SetEpoch(v uint64) error {
	cur := e.repl.snapshot().Epoch
	if v < cur {
		return fmt.Errorf("store: epoch %d is below the current epoch %d", v, cur)
	}
	if v == cur {
		return nil
	}
	if err := writeCounterFile(filepath.Join(e.dir, epochFile), v); err != nil {
		return err
	}
	e.repl.setEpoch(v)
	return e.control(func() error {
		if e.seg == nil || e.segErr != nil {
			// No open segment: the next rotate stamps the new epoch.
			return nil
		}
		frame := encodeFrame(encodeEpochPayload(v))
		if _, err := e.seg.Write(frame); err != nil {
			e.segErr = fmt.Errorf("store: epoch frame: %w", err)
			return e.segErr
		}
		if err := e.seg.Sync(); err != nil {
			e.segErr = fmt.Errorf("store: epoch frame: %w", err)
			return e.segErr
		}
		e.segOff += int64(len(frame))
		e.repl.publish(e.nextSeg, e.segOff, 0)
		return nil
	})
}

// --- counter files ----------------------------------------------------------

func readCounterFile(path string) (uint64, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("store: %s: %w", path, err)
	}
	var v uint64
	if _, err := fmt.Sscanf(strings.TrimSpace(string(data)), "%d", &v); err != nil {
		return 0, fmt.Errorf("store: malformed counter file %s", path)
	}
	return v, nil
}

// writeCounterFile atomically replaces a counter file (temp + fsync +
// rename + directory fsync).
func writeCounterFile(path string, v uint64) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-ctr-*")
	if err != nil {
		return fmt.Errorf("store: %s: %w", path, err)
	}
	defer os.Remove(tmp.Name())
	if _, err := fmt.Fprintf(tmp, "%d\n", v); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: %s: %w", path, err)
	}
	return syncDir(dir)
}

func loadOrInitCounterFile(path string, init uint64) (uint64, error) {
	v, err := readCounterFile(path)
	if err != nil {
		return 0, err
	}
	if v > 0 {
		return v, nil
	}
	if err := writeCounterFile(path, init); err != nil {
		return 0, err
	}
	return init, nil
}

// --- message codec ----------------------------------------------------------

func encodeEpochPayload(epoch uint64) []byte {
	buf := make([]byte, 0, 11)
	buf = append(buf, flagEpoch)
	return binary.AppendUvarint(buf, epoch)
}

func appendReplState(buf []byte, st ReplState) []byte {
	buf = binary.AppendUvarint(buf, st.Gen)
	buf = binary.AppendUvarint(buf, st.Epoch)
	buf = binary.AppendUvarint(buf, st.Seg)
	buf = binary.AppendUvarint(buf, uint64(st.Off))
	buf = binary.AppendUvarint(buf, st.Frames)
	return binary.AppendUvarint(buf, st.Bytes)
}

func readReplState(r *frameReader) (ReplState, bool) {
	var st ReplState
	var off uint64
	var ok bool
	if st.Gen, ok = r.uvarint(); !ok {
		return st, false
	}
	if st.Epoch, ok = r.uvarint(); !ok {
		return st, false
	}
	if st.Seg, ok = r.uvarint(); !ok {
		return st, false
	}
	if off, ok = r.uvarint(); !ok {
		return st, false
	}
	st.Off = int64(off)
	if st.Frames, ok = r.uvarint(); !ok {
		return st, false
	}
	if st.Bytes, ok = r.uvarint(); !ok {
		return st, false
	}
	return st, true
}

func encodeHelloMsg(resync bool, st ReplState) []byte {
	buf := make([]byte, 0, 64)
	buf = append(buf, feedMsgHello, feedProtoVersion)
	var flags byte
	if resync {
		flags = 1
	}
	buf = append(buf, flags)
	return appendReplState(buf, st)
}

func encodeHeartbeatMsg(st ReplState, ts time.Time) []byte {
	buf := make([]byte, 0, 72)
	buf = append(buf, feedMsgHeartbeat)
	buf = appendReplState(buf, st)
	return binary.AppendUvarint(buf, uint64(ts.UnixMicro()))
}

func encodeSegDataMsg(seg uint64, off int64, b []byte) []byte {
	buf := make([]byte, 0, 24+len(b))
	buf = append(buf, feedMsgSegData)
	buf = binary.AppendUvarint(buf, seg)
	buf = binary.AppendUvarint(buf, uint64(off))
	return append(buf, b...)
}

func encodeSegSealMsg(seg uint64, size int64) []byte {
	buf := make([]byte, 0, 24)
	buf = append(buf, feedMsgSegSeal)
	buf = binary.AppendUvarint(buf, seg)
	return binary.AppendUvarint(buf, uint64(size))
}

func encodeGraphMsg(name string, b []byte) []byte {
	buf := make([]byte, 0, 16+len(name)+len(b))
	buf = append(buf, feedMsgGraph)
	buf = appendString(buf, name)
	return append(buf, b...)
}

func encodeGraphListMsg(names []string) []byte {
	size := 16
	for _, n := range names {
		size += len(n) + 8
	}
	buf := make([]byte, 0, size)
	buf = append(buf, feedMsgGraphList)
	buf = binary.AppendUvarint(buf, uint64(len(names)))
	for _, n := range names {
		buf = appendString(buf, n)
	}
	return buf
}

func encodeGraphDelMsg(name string) []byte {
	buf := make([]byte, 0, 8+len(name))
	buf = append(buf, feedMsgGraphDel)
	return appendString(buf, name)
}

// readFeedFrame reads one [length][crc][payload] feed frame.
func readFeedFrame(br *bufio.Reader) ([]byte, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	sum := binary.LittleEndian.Uint32(hdr[4:8])
	if length == 0 || length > maxFrameSize {
		return nil, fmt.Errorf("store: feed frame length %d out of range", length)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(br, payload); err != nil {
		return nil, fmt.Errorf("store: truncated feed frame: %w", err)
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, fmt.Errorf("store: feed frame CRC mismatch")
	}
	return payload, nil
}

// --- feed server (primary) --------------------------------------------------

// graphStamp fingerprints a graph snapshot file for change polling.
type graphStamp struct {
	size  int64
	mtime int64
}

type feedConn struct {
	e     *binaryEngine
	w     io.Writer
	flush func()
}

func (fc *feedConn) send(payload []byte) error {
	frame := encodeFrame(payload)
	if _, err := fc.w.Write(frame); err != nil {
		return err
	}
	fc.e.repl.sent.Add(int64(len(frame)))
	return nil
}

func (fc *feedConn) doFlush() {
	if fc.flush != nil {
		fc.flush()
	}
}

// streamSegment ships the byte range [from, to) of a segment file as
// data messages and returns the new offset.
func (fc *feedConn) streamSegment(path string, idx uint64, from, to int64) (int64, error) {
	if to <= from {
		return from, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return from, err
	}
	defer f.Close()
	if _, err := f.Seek(from, io.SeekStart); err != nil {
		return from, err
	}
	buf := make([]byte, feedChunkSize)
	for from < to {
		n := int64(len(buf))
		if rem := to - from; rem < n {
			n = rem
		}
		if _, err := io.ReadFull(f, buf[:n]); err != nil {
			return from, fmt.Errorf("store: feed read %s: %w", path, err)
		}
		if err := fc.send(encodeSegDataMsg(idx, from, buf[:n])); err != nil {
			return from, err
		}
		from += n
	}
	return from, nil
}

// sendGraphSync diffs the graphs directory against the stamps the feed
// has already shipped, streaming new/changed snapshots and deletions.
// On the initial call it also sends the full name list so the follower
// can prune local strays.
func (fc *feedConn) sendGraphSync(stamps map[string]graphStamp, initial bool) error {
	entries, err := os.ReadDir(fc.e.graphsDir())
	if err != nil {
		return err
	}
	seen := make(map[string]struct{}, len(entries))
	var names []string
	for _, ent := range entries {
		base := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(base, ".graph") || strings.HasPrefix(base, ".tmp-") {
			continue
		}
		name, err := url.PathUnescape(strings.TrimSuffix(base, ".graph"))
		if err != nil {
			continue
		}
		info, err := ent.Info()
		if err != nil {
			continue
		}
		stamp := graphStamp{size: info.Size(), mtime: info.ModTime().UnixNano()}
		seen[name] = struct{}{}
		names = append(names, name)
		if old, ok := stamps[name]; ok && old == stamp && !initial {
			continue
		}
		payload, err := os.ReadFile(filepath.Join(fc.e.graphsDir(), base))
		if err != nil {
			continue
		}
		if err := fc.send(encodeGraphMsg(name, payload)); err != nil {
			return err
		}
		stamps[name] = stamp
	}
	for name := range stamps {
		if _, ok := seen[name]; !ok {
			delete(stamps, name)
			if err := fc.send(encodeGraphDelMsg(name)); err != nil {
				return err
			}
		}
	}
	if initial {
		return fc.send(encodeGraphListMsg(names))
	}
	return nil
}

// ServeFeed streams the replication feed to one follower until the
// context is canceled, the wal generation changes (the follower
// reconnects and re-syncs), or the connection fails. pos is the
// follower's resume position; an unserveable position degrades to a
// full re-sync, never an error.
func (e *binaryEngine) ServeFeed(ctx context.Context, w io.Writer, flush func(), pos FeedPos) error {
	e.repl.feeds.Add(1)
	defer e.repl.feeds.Add(-1)
	fc := &feedConn{e: e, w: w, flush: flush}

	snap := e.repl.snapshot()
	segs, err := e.listSegments()
	if err != nil {
		return err
	}
	resync := pos.Gen != snap.Gen
	cur, off := pos.Seg, pos.Off
	if !resync && cur != 0 {
		valid := false
		for _, s := range segs {
			if s.idx == cur && off <= s.size {
				valid = true
				break
			}
		}
		resync = !valid
	}
	if resync || cur == 0 {
		cur, off = 0, 0
		if len(segs) > 0 {
			cur = segs[0].idx
		}
	}
	if err := fc.send(encodeHelloMsg(resync, snap)); err != nil {
		return err
	}
	stamps := make(map[string]graphStamp)
	if err := fc.sendGraphSync(stamps, true); err != nil {
		return err
	}
	fc.doFlush()

	gen0 := snap.Gen
	lastGraphPoll := time.Now()
	for {
		notify := e.repl.waitCh()
		snap = e.repl.snapshot()
		if snap.Gen != gen0 {
			// Compaction swapped the wal out from under this feed. Close the
			// stream; the follower reconnects and the new hello re-syncs it.
			return nil
		}
		segs, err := e.listSegments()
		if err != nil {
			// The swap window can make the directory transiently unreadable;
			// closing the stream lets the follower reconnect cleanly.
			return nil
		}
		if cur == 0 && len(segs) > 0 {
			cur = segs[0].idx
		}
		active := snap.Seg
		if active == 0 && len(segs) > 0 {
			active = segs[len(segs)-1].idx
		}
		for _, s := range segs {
			if s.idx < cur {
				continue
			}
			if s.idx > cur {
				// Segment numbering has gaps (compaction links live segments
				// in above its rewritten output); jump to the next real one.
				cur, off = s.idx, 0
			}
			if s.idx < active {
				// Sealed: ship the remainder (including any index footer) and
				// tell the follower to verify and fsync it.
				noff, err := fc.streamSegment(s.path, s.idx, off, s.size)
				if err != nil {
					return err
				}
				off = noff
				if err := fc.send(encodeSegSealMsg(s.idx, s.size)); err != nil {
					return err
				}
				cur, off = cur+1, 0
				continue
			}
			// The active segment: tail it up to the published durable
			// position (never the raw file size — bytes past the last fsync
			// could still be lost in a crash).
			limit := s.size
			if snap.Seg == s.idx {
				limit = snap.Off
			}
			if limit > off {
				noff, err := fc.streamSegment(s.path, s.idx, off, limit)
				if err != nil {
					return err
				}
				off = noff
			}
		}
		if time.Since(lastGraphPoll) >= feedGraphPollEvery {
			lastGraphPoll = time.Now()
			if err := fc.sendGraphSync(stamps, false); err != nil {
				return err
			}
		}
		if err := fc.send(encodeHeartbeatMsg(snap, time.Now())); err != nil {
			return err
		}
		fc.doFlush()
		select {
		case <-ctx.Done():
			return nil
		case <-notify:
		case <-time.After(feedHeartbeatEvery):
		}
	}
}

// --- follower applier -------------------------------------------------------

// ReplicaOptions tunes a follower applier.
type ReplicaOptions struct {
	// Client performs the feed requests; it must not set a timeout (the
	// feed is a long-lived stream). Nil uses a plain http.Client.
	Client *http.Client
	// Logger receives connection lifecycle events. Nil discards them.
	Logger *slog.Logger
}

// ReplicaStatus is a follower applier's observable state.
type ReplicaStatus struct {
	Connected     bool    `json:"connected"`
	Gen           uint64  `json:"gen"`
	PrimaryEpoch  uint64  `json:"primary_epoch"`
	AppliedSeg    uint64  `json:"applied_seg"`
	AppliedOff    int64   `json:"applied_off"`
	AppliedFrames uint64  `json:"applied_frames"`
	AppliedBytes  uint64  `json:"applied_bytes"`
	LagFrames     uint64  `json:"lag_frames"`
	LagBytes      uint64  `json:"lag_bytes"`
	LagSeconds    float64 `json:"lag_seconds"`
	Graphs        int     `json:"graphs"`
	Resyncs       uint64  `json:"resyncs"`
	SealsVerified uint64  `json:"seals_verified"`
	Connects      uint64  `json:"connects"`
	// DisconnectedFor is how long the feed has been down, in seconds;
	// 0 while connected. Drives -auto-promote-after.
	DisconnectedFor float64 `json:"disconnected_for_seconds,omitempty"`
	LastError       string  `json:"last_error,omitempty"`
}

// Replica continuously applies a primary's replication feed into a local
// data directory, maintaining a physical copy the streaming recovery
// path can open the instant the follower is promoted.
type Replica struct {
	dir     string
	feedURL string
	hc      *http.Client
	log     *slog.Logger
	m       metrics

	ctx      context.Context
	cancel   context.CancelFunc
	stopOnce sync.Once
	done     chan struct{}

	// Applier-goroutine file state.
	seg      *os.File
	segIdx   uint64
	segOff   int64
	dirty    bool
	lastSync time.Time
	// forceResync makes the next connect ask for a full re-sync (sent as
	// gen 0) after a protocol-level inconsistency.
	forceResync bool
	persisted   uint64 // epoch value already in the epoch file

	mu sync.Mutex
	st ReplicaStatus
	// latest* mirror the newest heartbeat the reader goroutine has
	// decoded — possibly ahead of the applier; the gap is the lag.
	latestFrames uint64
	latestBytes  uint64
	lastCaught   time.Time
	disconnected time.Time
	graphs       map[string]struct{}
}

// OpenReplica prepares a follower applier over dir, resuming from
// whatever the directory already holds: the last local segment is
// truncated to its valid frame prefix (a follower crash can tear its
// tail exactly like a primary crash) and the persisted generation and
// epoch are reloaded. Call Run (usually in a goroutine) to start
// streaming from feedURL.
func OpenReplica(dir, feedURL string, opts ReplicaOptions) (*Replica, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty data directory")
	}
	for _, d := range []string{dir, filepath.Join(dir, "wal"), filepath.Join(dir, "graphs")} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("store: replica: %w", err)
		}
	}
	hc := opts.Client
	if hc == nil {
		hc = &http.Client{}
	}
	log := opts.Logger
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	ctx, cancel := context.WithCancel(context.Background())
	r := &Replica{
		dir:     dir,
		feedURL: feedURL,
		hc:      hc,
		log:     log,
		ctx:     ctx,
		cancel:  cancel,
		done:    make(chan struct{}),
		graphs:  make(map[string]struct{}),
	}
	r.lastCaught = time.Now()
	r.disconnected = time.Now()
	gen, err := readCounterFile(filepath.Join(r.walDir(), walGenFile))
	if err != nil {
		return nil, err
	}
	epoch, err := readCounterFile(filepath.Join(dir, epochFile))
	if err != nil {
		return nil, err
	}
	r.st.Gen, r.st.PrimaryEpoch, r.persisted = gen, epoch, epoch
	segs, err := listSegmentDir(r.walDir())
	if err != nil {
		return nil, err
	}
	if len(segs) > 0 {
		last := segs[len(segs)-1]
		valid, err := validFramePrefix(last.path)
		if err != nil {
			return nil, err
		}
		if valid < last.size {
			if err := truncateSegment(last.path, valid); err != nil {
				return nil, err
			}
		}
		r.segIdx, r.segOff = last.idx, valid
		r.st.AppliedSeg, r.st.AppliedOff = last.idx, valid
	}
	entries, err := os.ReadDir(r.graphsDir())
	if err != nil {
		return nil, fmt.Errorf("store: replica: %w", err)
	}
	for _, ent := range entries {
		base := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(base, ".graph") || strings.HasPrefix(base, ".tmp-") {
			continue
		}
		if name, err := url.PathUnescape(strings.TrimSuffix(base, ".graph")); err == nil {
			r.graphs[name] = struct{}{}
		}
	}
	return r, nil
}

func (r *Replica) walDir() string    { return filepath.Join(r.dir, "wal") }
func (r *Replica) graphsDir() string { return filepath.Join(r.dir, "graphs") }

// Dir returns the replica's data directory.
func (r *Replica) Dir() string { return r.dir }

// validFramePrefix scans a segment for its longest structurally valid,
// CRC-clean frame prefix.
func validFramePrefix(path string) (int64, error) {
	sc, err := openFrameScanner(path)
	if err != nil {
		return 0, err
	}
	defer sc.close()
	for {
		fr, err := sc.next()
		switch {
		case err == io.EOF:
			return sc.size, nil
		case err == errTornFrame || err == errBadCRC:
			return fr.off, nil
		case err != nil:
			return 0, err
		}
	}
}

// Status returns the applier's current state with lag derived from the
// newest heartbeat the stream has carried.
func (r *Replica) Status() ReplicaStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.st
	st.Graphs = len(r.graphs)
	if r.latestFrames > st.AppliedFrames {
		st.LagFrames = r.latestFrames - st.AppliedFrames
	}
	if r.latestBytes > st.AppliedBytes {
		st.LagBytes = r.latestBytes - st.AppliedBytes
	}
	if !st.Connected {
		st.DisconnectedFor = time.Since(r.disconnected).Seconds()
	}
	if !st.Connected || st.LagFrames > 0 || st.LagBytes > 0 {
		st.LagSeconds = time.Since(r.lastCaught).Seconds()
	}
	return st
}

// Stop cancels the feed, waits for the applier to drain, and fsyncs the
// open segment, leaving the directory ready for OpenEngine (promotion)
// or a later OpenReplica (restart).
func (r *Replica) Stop() {
	r.stopOnce.Do(r.cancel)
	<-r.done
}

// Run streams and applies the feed until Stop, reconnecting with
// backoff. Call it in a goroutine.
func (r *Replica) Run() {
	defer close(r.done)
	defer r.closeSeg()
	backoff := replReconnectMin
	for {
		if r.ctx.Err() != nil {
			return
		}
		err := r.streamOnce()
		r.noteDisconnect(err)
		if r.ctx.Err() != nil {
			return
		}
		if err == nil {
			backoff = replReconnectMin
		} else {
			r.log.Debug("replica stream ended", "err", err)
			backoff *= 2
			if backoff > replReconnectMax {
				backoff = replReconnectMax
			}
		}
		select {
		case <-r.ctx.Done():
			return
		case <-time.After(backoff):
		}
	}
}

type feedMsg struct {
	payload []byte
}

// streamOnce runs one feed connection to completion. A reader goroutine
// decodes frames (noting heartbeats immediately, so lag is observable
// while the applier works through the backlog) and the applier consumes
// them in order.
func (r *Replica) streamOnce() error {
	ctx, cancel := context.WithCancel(r.ctx)
	defer cancel()
	pos := r.resumePos()
	u := fmt.Sprintf("%s?gen=%d&seg=%d&off=%d", r.feedURL, pos.Gen, pos.Seg, pos.Off)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	resp, err := r.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("store: feed %s: %s: %s", r.feedURL, resp.Status, strings.TrimSpace(string(body)))
	}
	r.noteConnect()

	msgs := make(chan feedMsg, 256)
	readErr := make(chan error, 1)
	go func() {
		defer close(msgs)
		br := bufio.NewReaderSize(resp.Body, 64<<10)
		for {
			payload, err := readFeedFrame(br)
			if err != nil {
				readErr <- err
				return
			}
			if payload[0] == feedMsgHeartbeat {
				r.noteLatest(payload)
			}
			select {
			case msgs <- feedMsg{payload: payload}:
			case <-ctx.Done():
				readErr <- ctx.Err()
				return
			}
		}
	}()

	stall := time.NewTimer(replStallTimeout)
	defer stall.Stop()
	for {
		stall.Reset(replStallTimeout)
		select {
		case m, ok := <-msgs:
			if !ok {
				err := <-readErr
				if err == io.EOF || ctx.Err() != nil {
					return nil
				}
				return err
			}
			if err := r.apply(m.payload); err != nil {
				return err
			}
		case <-ctx.Done():
			return nil
		case <-stall.C:
			return fmt.Errorf("store: feed stalled for %s", replStallTimeout)
		}
	}
}

func (r *Replica) resumePos() FeedPos {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.forceResync {
		return FeedPos{}
	}
	return FeedPos{Gen: r.st.Gen, Seg: r.segIdx, Off: r.segOff}
}

func (r *Replica) noteConnect() {
	r.mu.Lock()
	r.st.Connected = true
	r.st.Connects++
	r.st.LastError = ""
	r.mu.Unlock()
}

func (r *Replica) noteDisconnect(err error) {
	r.syncSeg()
	r.mu.Lock()
	if r.st.Connected {
		r.disconnected = time.Now()
	}
	r.st.Connected = false
	if err != nil {
		r.st.LastError = err.Error()
	}
	r.mu.Unlock()
}

// noteLatest records a heartbeat's counters from the reader goroutine.
func (r *Replica) noteLatest(payload []byte) {
	fr := &frameReader{data: payload, off: 1}
	st, ok := readReplState(fr)
	if !ok {
		return
	}
	r.mu.Lock()
	if st.Frames > r.latestFrames {
		r.latestFrames = st.Frames
	}
	if st.Bytes > r.latestBytes {
		r.latestBytes = st.Bytes
	}
	r.mu.Unlock()
}

func (r *Replica) apply(payload []byte) error {
	fr := &frameReader{data: payload, off: 1}
	switch payload[0] {
	case feedMsgHello:
		if len(payload) < 3 || payload[1] != feedProtoVersion {
			return fmt.Errorf("store: feed protocol version mismatch")
		}
		resync := payload[2]&1 != 0
		fr.off = 3
		st, ok := readReplState(fr)
		if !ok {
			return fmt.Errorf("store: malformed hello")
		}
		return r.applyHello(resync, st)
	case feedMsgHeartbeat:
		st, ok := readReplState(fr)
		if !ok {
			return fmt.Errorf("store: malformed heartbeat")
		}
		return r.applyHeartbeat(st)
	case feedMsgSegData:
		seg, ok1 := fr.uvarint()
		off, ok2 := fr.uvarint()
		if !ok1 || !ok2 {
			return fmt.Errorf("store: malformed segment data")
		}
		return r.applySegData(seg, int64(off), payload[fr.off:])
	case feedMsgSegSeal:
		seg, ok1 := fr.uvarint()
		size, ok2 := fr.uvarint()
		if !ok1 || !ok2 {
			return fmt.Errorf("store: malformed segment seal")
		}
		return r.applySegSeal(seg, int64(size))
	case feedMsgGraph:
		name, ok := fr.string()
		if !ok {
			return fmt.Errorf("store: malformed graph message")
		}
		return r.applyGraph(name, payload[fr.off:])
	case feedMsgGraphList:
		count, ok := fr.uvarint()
		if !ok || count > uint64(len(payload)) {
			return fmt.Errorf("store: malformed graph list")
		}
		names := make([]string, 0, count)
		for i := uint64(0); i < count; i++ {
			n, ok := fr.string()
			if !ok {
				return fmt.Errorf("store: malformed graph list")
			}
			names = append(names, n)
		}
		return r.applyGraphList(names)
	case feedMsgGraphDel:
		name, ok := fr.string()
		if !ok {
			return fmt.Errorf("store: malformed graph delete")
		}
		return r.applyGraphDel(name)
	default:
		return fmt.Errorf("store: unknown feed message %q", payload[0])
	}
}

func (r *Replica) applyHello(resync bool, st ReplState) error {
	r.mu.Lock()
	localGen := r.st.Gen
	r.mu.Unlock()
	if resync || st.Gen != localGen {
		// The primary rewrote (or never shared) the history we hold: wipe
		// the local wal and take everything from the top. Graph snapshots
		// stay — the feed re-sends them and the list message prunes strays.
		r.closeSeg()
		if err := os.RemoveAll(r.walDir()); err != nil {
			return fmt.Errorf("store: replica resync: %w", err)
		}
		if err := os.MkdirAll(r.walDir(), 0o755); err != nil {
			return fmt.Errorf("store: replica resync: %w", err)
		}
		if err := syncDir(r.dir); err != nil {
			return err
		}
		hadState := r.segIdx != 0 || r.segOff != 0 || localGen != 0
		r.segIdx, r.segOff = 0, 0
		r.mu.Lock()
		if hadState {
			// A fresh follower's first full sync is not a re-sync; only a
			// wipe of real local history counts.
			r.st.Resyncs++
		}
		r.st.AppliedSeg, r.st.AppliedOff = 0, 0
		r.st.AppliedFrames, r.st.AppliedBytes = 0, 0
		r.mu.Unlock()
	}
	if err := writeCounterFile(filepath.Join(r.walDir(), walGenFile), st.Gen); err != nil {
		return err
	}
	r.forceResync = false
	r.mu.Lock()
	r.st.Gen = st.Gen
	// The hello is not a caught-up marker — the data it announces comes
	// after it. Applied counters advance only at heartbeats, which the
	// feed emits once the stream has caught up to them.
	if st.Frames > r.latestFrames {
		r.latestFrames = st.Frames
	}
	if st.Bytes > r.latestBytes {
		r.latestBytes = st.Bytes
	}
	r.mu.Unlock()
	return r.noteEpoch(st.Epoch)
}

// noteEpoch persists the highest primary epoch ever observed, so a
// promotion after a follower restart still fences above it.
func (r *Replica) noteEpoch(epoch uint64) error {
	r.mu.Lock()
	if epoch > r.st.PrimaryEpoch {
		r.st.PrimaryEpoch = epoch
	}
	persist := epoch > r.persisted
	r.mu.Unlock()
	if persist {
		if err := writeCounterFile(filepath.Join(r.dir, epochFile), epoch); err != nil {
			return err
		}
		r.persisted = epoch
	}
	return nil
}

func (r *Replica) applyHeartbeat(st ReplState) error {
	r.syncSegThrottled()
	r.mu.Lock()
	r.st.AppliedFrames, r.st.AppliedBytes = st.Frames, st.Bytes
	if r.st.AppliedFrames >= r.latestFrames && r.st.AppliedBytes >= r.latestBytes {
		r.lastCaught = time.Now()
	}
	r.mu.Unlock()
	return r.noteEpoch(st.Epoch)
}

func (r *Replica) applySegData(seg uint64, off int64, b []byte) error {
	if r.seg == nil || r.segIdx != seg {
		r.closeSeg()
		path := segmentPath(r.walDir(), seg)
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("store: replica: %w", err)
		}
		fi, err := f.Stat()
		if err != nil {
			f.Close()
			return fmt.Errorf("store: replica: %w", err)
		}
		if fi.Size() != off {
			f.Close()
			r.forceResync = true
			return fmt.Errorf("store: replica: segment %d is %d bytes, feed resumes at %d", seg, fi.Size(), off)
		}
		if err := syncDir(r.walDir()); err != nil {
			f.Close()
			return err
		}
		r.seg, r.segIdx, r.segOff = f, seg, fi.Size()
	}
	if off != r.segOff {
		r.forceResync = true
		return fmt.Errorf("store: replica: segment %d offset %d does not match applied %d", seg, off, r.segOff)
	}
	if _, err := r.seg.Write(b); err != nil {
		return fmt.Errorf("store: replica: %w", err)
	}
	r.segOff += int64(len(b))
	r.dirty = true
	r.mu.Lock()
	r.st.AppliedSeg, r.st.AppliedOff = r.segIdx, r.segOff
	r.mu.Unlock()
	return nil
}

func (r *Replica) applySegSeal(seg uint64, size int64) error {
	path := segmentPath(r.walDir(), seg)
	if r.seg != nil && r.segIdx == seg {
		r.closeSeg()
	}
	fi, err := os.Stat(path)
	if err != nil || fi.Size() != size {
		r.forceResync = true
		return fmt.Errorf("store: replica: sealed segment %d size mismatch", seg)
	}
	footerOK, err := verifySealedSegment(path, size)
	if err != nil {
		r.forceResync = true
		return fmt.Errorf("store: replica: sealed segment %d failed verification: %w", seg, err)
	}
	if err := syncDir(r.walDir()); err != nil {
		return err
	}
	r.mu.Lock()
	if footerOK {
		r.st.SealsVerified++
	}
	r.mu.Unlock()
	return nil
}

// verifySealedSegment checks a replicated sealed segment: against its
// index footer when it has one (footerOK true), otherwise by a full
// structural + CRC scan of every frame.
func verifySealedSegment(path string, size int64) (bool, error) {
	if _, _, ok := readSegmentFooter(path, size); ok {
		return true, nil
	}
	valid, err := validFramePrefix(path)
	if err != nil {
		return false, err
	}
	if valid != size {
		return false, fmt.Errorf("valid frame prefix ends at %d of %d", valid, size)
	}
	return false, nil
}

func (r *Replica) applyGraph(name string, payload []byte) error {
	if err := writeSnapshotFile(r.graphsDir(), name, payload, &r.m); err != nil {
		return fmt.Errorf("store: replica: %w", err)
	}
	r.mu.Lock()
	r.graphs[name] = struct{}{}
	r.mu.Unlock()
	return nil
}

func (r *Replica) applyGraphDel(name string) error {
	if err := deleteGraphSnapshot(r.graphsDir(), name); err != nil {
		return err
	}
	r.mu.Lock()
	delete(r.graphs, name)
	r.mu.Unlock()
	return nil
}

// applyGraphList prunes local graph snapshots the primary no longer has
// (the list arrives once per connection, after the initial graph burst).
func (r *Replica) applyGraphList(names []string) error {
	keep := make(map[string]struct{}, len(names))
	for _, n := range names {
		keep[n] = struct{}{}
	}
	r.mu.Lock()
	var drop []string
	for name := range r.graphs {
		if _, ok := keep[name]; !ok {
			drop = append(drop, name)
		}
	}
	r.mu.Unlock()
	for _, name := range drop {
		if err := r.applyGraphDel(name); err != nil {
			return err
		}
	}
	return nil
}

// GraphNames lists the graph snapshots the replica holds, for the
// follower's read-only graph listing.
func (r *Replica) GraphNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.graphs))
	for name := range r.graphs {
		names = append(names, name)
	}
	return names
}

func (r *Replica) syncSegThrottled() {
	if r.dirty && time.Since(r.lastSync) >= replSyncEvery {
		r.syncSeg()
	}
}

func (r *Replica) syncSeg() {
	if r.seg != nil && r.dirty {
		_ = r.seg.Sync()
		r.dirty = false
		r.lastSync = time.Now()
	}
}

func (r *Replica) closeSeg() {
	if r.seg == nil {
		return
	}
	r.syncSeg()
	_ = r.seg.Close()
	r.seg = nil
}
