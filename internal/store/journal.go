package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Record is one entry of a session journal. Data is an opaque JSON payload
// owned by the service layer; Seq numbers records from 1 within a journal.
type Record struct {
	Seq  uint64          `json:"seq"`
	Type string          `json:"type"`
	Data json.RawMessage `json:"data,omitempty"`
}

// journalBackend is the durable half of a Journal, supplied by the engine
// that created it. append must make the record durable before returning
// (write-ahead discipline); terminal marks the journal's last record,
// which engines may use to bypass group-commit batching and to recognise
// finished sessions during compaction.
type journalBackend interface {
	append(rec Record, terminal bool) error
	close() error
	remove() error
}

// Journal is an append-only record log with an in-memory tail. Every
// journal keeps its full record list in memory — transcripts are small and
// bounded by the session retention policy — which is what the SSE endpoint
// tails and what recovery replays. A journal created by an Engine is
// additionally backed by durable storage (a JSONL file on the text engine,
// frames in the shared segment log on the binary engine) and is durable
// before an append returns; a journal created by NewMemJournal has the
// same API with no backing, so SSE works identically in in-memory
// deployments.
//
// All methods are safe for concurrent use.
type Journal struct {
	mu     sync.Mutex
	recs   []Record
	notify chan struct{}
	closed bool
	// b is nil for in-memory journals.
	b journalBackend
	// name labels errors: the session id (binary engine) or file path
	// (text engine).
	name string
}

// NewMemJournal returns a journal with no backing storage.
func NewMemJournal() *Journal {
	return &Journal{notify: make(chan struct{}), name: "mem"}
}

// Append marshals v (nil for payload-less records), assigns the next
// sequence number, makes the record durable (backed journals write and
// sync before the record becomes visible) and wakes every tailer.
func (j *Journal) Append(typ string, v any) error {
	return j.append(typ, v, false)
}

// AppendTerminal appends the journal's terminal record. It behaves like
// Append with one engine-visible hint: the record is synced immediately —
// a terminal record never waits out a group-commit batch window — and the
// engine may treat the session as finished (compaction collapses it to a
// summary record).
func (j *Journal) AppendTerminal(typ string, v any) error {
	return j.append(typ, v, true)
}

func (j *Journal) append(typ string, v any, terminal bool) error {
	var data json.RawMessage
	if v != nil {
		b, err := json.Marshal(v)
		if err != nil {
			return fmt.Errorf("store: journal append %s: %w", typ, err)
		}
		data = b
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("store: journal %s is closed", j.name)
	}
	rec := Record{Seq: uint64(len(j.recs)) + 1, Type: typ, Data: data}
	if j.b != nil {
		if err := j.b.append(rec, terminal); err != nil {
			return fmt.Errorf("store: journal append %s: %w", typ, err)
		}
	}
	j.recs = append(j.recs, rec)
	close(j.notify)
	j.notify = make(chan struct{})
	return nil
}

// After returns the records with Seq > seq and a channel closed on the
// next append. The returned slice is a read-only view.
func (j *Journal) After(seq uint64) ([]Record, <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if seq > uint64(len(j.recs)) {
		seq = uint64(len(j.recs))
	}
	return j.recs[seq:], j.notify
}

// Records returns every record as a read-only view.
func (j *Journal) Records() []Record {
	recs, _ := j.After(0)
	return recs
}

// Len returns the number of records.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.recs)
}

// Close releases the backing storage, keeping the in-memory tail readable.
// Appending to a closed journal fails, and every tailer parked on the
// After channel is woken so it can observe Closed. Close is idempotent.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.closeLocked()
}

func (j *Journal) closeLocked() error {
	if j.closed {
		return nil
	}
	j.closed = true
	close(j.notify) // no appends can follow; wake tailers for good
	if j.b != nil {
		return j.b.close()
	}
	return nil
}

// Closed reports whether the journal was closed (or removed). Since no
// record can be appended afterwards, a tailer that saw Closed *before*
// draining After has seen the final tail.
func (j *Journal) Closed() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.closed
}

// Remove closes the journal and deletes its durable trace, if any: the
// text engine unlinks the JSONL file, the binary engine appends a
// tombstone frame. A removed session leaves no session for the next
// recovery to restore.
func (j *Journal) Remove() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.b == nil {
		return j.closeLocked()
	}
	// Remove before close: the binary backend's tombstone is itself an
	// append, which a closed backend would refuse.
	err := j.b.remove()
	if cErr := j.closeLocked(); cErr != nil && err == nil {
		err = cErr
	}
	return err
}

// fileJournal is the text engine's journal backend: one JSONL file with
// one fsync per append.
type fileJournal struct {
	f    *os.File
	path string
	m    *metrics
}

func (fj *fileJournal) append(rec Record, terminal bool) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	if _, err := fj.f.Write(line); err != nil {
		return err
	}
	start := time.Now()
	if err := fj.f.Sync(); err != nil {
		return fmt.Errorf("fsync: %w", err)
	}
	fj.m.fsyncs.Add(1)
	fj.m.fsyncNanos.Add(time.Since(start).Nanoseconds())
	fj.m.journalAppends.Add(1)
	fj.m.journalBytes.Add(int64(len(line)))
	return nil
}

func (fj *fileJournal) close() error { return fj.f.Close() }

func (fj *fileJournal) remove() error {
	var err error
	if rmErr := os.Remove(fj.path); rmErr != nil && !os.IsNotExist(rmErr) {
		err = rmErr
	}
	if sErr := syncDir(filepath.Dir(fj.path)); sErr != nil && err == nil {
		err = sErr
	}
	return err
}

// journalFile maps a session id to its journal path; ids are path-escaped
// so an id can never climb out of the sessions directory.
func (s *Store) journalFile(id string) string {
	return filepath.Join(s.sessionsDir(), url.PathEscape(id)+".jsonl")
}

// CreateJournal creates the journal file for a new session. The id must be
// new: an existing journal is never silently overwritten.
func (s *Store) CreateJournal(id string) (*Journal, error) {
	if id == "" {
		return nil, fmt.Errorf("store: empty journal id")
	}
	path := s.journalFile(id)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: create journal %s: %w", id, err)
	}
	// Make the directory entry durable too, or a power loss could drop
	// the whole journal file despite every append being fsynced.
	if err := syncDir(s.sessionsDir()); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: create journal %s: %w", id, err)
	}
	return &Journal{notify: make(chan struct{}), name: path, b: &fileJournal{f: f, path: path, m: &s.m}}, nil
}

// RecoveredSession is one journal found on disk: its id and the journal
// reopened for appending with the surviving records preloaded, so a
// resumed session keeps writing where the crashed process stopped.
type RecoveredSession struct {
	ID      string
	Journal *Journal
}

// RecoverSessions scans the sessions directory and replays every journal,
// sorted by session id. A journal whose tail is torn (a partial final
// line, a corrupt record, a sequence gap) is truncated to its longest
// valid prefix — write-ahead appends make everything after the first bad
// byte untrustworthy — and counted in TruncatedJournals. Unreadable files
// abort recovery: the caller should not serve from a half-read store.
func (s *Store) RecoverSessions() ([]RecoveredSession, error) {
	return recoverSessionDir(s.sessionsDir(), &s.m)
}

// recoverSessionDir replays every JSONL journal in a sessions directory.
// Shared by the text engine and the binary engine's legacy-journal
// migration (a data directory switched from -store-engine text must not
// silently abandon its sessions).
func recoverSessionDir(dir string, m *metrics) ([]RecoveredSession, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("store: recover sessions: %w", err)
	}
	out := make([]RecoveredSession, 0, len(entries))
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".jsonl") {
			continue
		}
		id, err := url.PathUnescape(strings.TrimSuffix(name, ".jsonl"))
		if err != nil {
			id = strings.TrimSuffix(name, ".jsonl")
		}
		// Recover from the enumerated path, not one rebuilt from the id: a
		// foreign file whose name is not a PathEscape fixed point would
		// otherwise be looked up at the wrong path and abort recovery.
		jr, err := recoverJournalFile(id, filepath.Join(dir, name), m)
		if err != nil {
			return nil, err
		}
		m.recoveredSessions.Add(1)
		out = append(out, RecoveredSession{ID: id, Journal: jr})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// recoverJournalFile replays one JSONL journal file, truncates any torn
// tail and reopens the file for appending. The file is streamed line by
// line — recovery memory is bounded by the longest line, not the journal
// size.
func recoverJournalFile(id, path string, m *metrics) (*Journal, error) {
	rf, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: recover journal %s: %w", id, err)
	}
	fi, err := rf.Stat()
	if err != nil {
		rf.Close()
		return nil, fmt.Errorf("store: recover journal %s: %w", id, err)
	}
	var recs []Record
	var valid int64 // byte length of the valid prefix
	br := bufio.NewReaderSize(rf, 1<<16)
	for {
		line, err := br.ReadBytes('\n')
		if err == io.EOF {
			break // no trailing newline: the append crashed mid-write
		}
		if err != nil {
			rf.Close()
			return nil, fmt.Errorf("store: recover journal %s: %w", id, err)
		}
		var rec Record
		if err := json.Unmarshal(line[:len(line)-1], &rec); err != nil {
			break
		}
		if rec.Seq != uint64(len(recs))+1 {
			break // sequence gap: records after it cannot be trusted
		}
		recs = append(recs, rec)
		valid += int64(len(line))
	}
	rf.Close()
	truncated := valid < fi.Size()
	if truncated {
		if err := os.Truncate(path, valid); err != nil {
			return nil, fmt.Errorf("store: truncate journal %s: %w", id, err)
		}
		m.truncatedJournals.Add(1)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: reopen journal %s: %w", id, err)
	}
	// Make the truncation durable before anything is appended after it.
	if truncated {
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: reopen journal %s: %w", id, err)
		}
	}
	return &Journal{notify: make(chan struct{}), recs: recs, name: path, b: &fileJournal{f: f, path: path, m: m}}, nil
}
