package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"net/url"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/graph"
)

// The binary engine interleaves every session journal into one segmented
// log:
//
//	<dir>/graphs/<name>.graph     binary varint-CSR graph snapshots
//	<dir>/wal/seg-00000001.seg    CRC-framed record segments
//	<dir>/wal.compact, wal.old    transient directories during compaction
//
// Each frame is [u32le payload length][u32le payload CRC32][payload]; the
// payload starts with a flag byte and the session id, then the record:
//
//	flag 0  data record        seq, type, JSON payload
//	flag 1  tombstone          the session was removed; drop its records
//	flag 2  terminal record    like data, and the session is finished
//	flag 3  summary            a finished session compacted to one frame
//
// All appends funnel through a single group-commit writer goroutine: an
// append hands its frame over and blocks until the batch it joined is
// written and fsynced, so the write-ahead guarantee is identical to the
// text engine's — the record is durable before Append returns — but one
// fsync covers every append that arrived while the previous one was in
// flight (plus, optionally, a CommitInterval batching window). Terminal
// records never wait out the window: they flush the batch immediately, so
// crash-resume semantics match the per-append-fsync engine.
//
// Recovery replays the segments in order. A structurally torn tail (short
// header, length overrunning the file) in the final segment is truncated
// exactly like a torn JSONL line; a CRC-failed frame in an earlier
// segment is skipped and counted, and the per-session sequence check then
// truncates only the affected session at its first gap.

const (
	flagData      = 0
	flagTombstone = 1
	flagTerminal  = 2
	flagSummary   = 3

	// frameHeaderSize is the fixed [length][crc] prefix.
	frameHeaderSize = 8
	// maxFrameSize bounds a frame's declared payload length; anything
	// larger is structural corruption, not a record.
	maxFrameSize = 64 << 20

	defaultSegmentSize = 4 << 20
)

func segmentPath(walDir string, idx uint64) string {
	return filepath.Join(walDir, fmt.Sprintf("seg-%08d.seg", idx))
}

// segmentIndex parses a segment file name, returning ok=false for foreign
// files.
func segmentIndex(name string) (uint64, bool) {
	var idx uint64
	if n, err := fmt.Sscanf(name, "seg-%d.seg", &idx); n != 1 || err != nil {
		return 0, false
	}
	return idx, true
}

// appendReq is one append waiting for its group commit.
type appendReq struct {
	frame    []byte
	terminal bool
	err      chan error
}

// binaryEngine is the segmented-log implementation of Engine.
type binaryEngine struct {
	dir            string
	commitInterval time.Duration
	segmentSize    int64
	m              metrics

	mu sync.Mutex
	// closed refuses new appends; inflight lets Close wait out the ones
	// already submitted.
	closed   bool
	inflight sync.WaitGroup
	// started flips on the first append: afterwards the wal may no longer
	// be rescanned (RecoverSessions) or rewritten (Compact).
	started bool
	// journalsActive counts journals handed out; Compact requires zero.
	journalsActive int
	// sids tracks every session id ever seen in the wal (including
	// tombstoned ones), so CreateJournal never reuses an id; scanned
	// records whether the wal has been read to populate it.
	sids    map[string]struct{}
	scanned bool

	reqs chan *appendReq
	quit chan struct{}
	wg   sync.WaitGroup

	// Writer-goroutine state: the open segment, its size, the index of
	// the last segment created, and the first unrecoverable write error
	// (after which every append fails — a half-written batch makes the
	// segment tail untrustworthy).
	seg    *os.File
	segOff int64
	segErr error
	// nextSeg is the highest segment index on disk (or created); rotate
	// reopens that tail once (tailTried) before sealing it and moving on.
	nextSeg   uint64
	tailTried bool
}

// openBinary creates (if needed) and opens a data directory with the
// binary engine.
func openBinary(dir string, opts EngineOptions) (*binaryEngine, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty data directory")
	}
	// The wal directory is created only after crash repair: an interrupted
	// compaction can legitimately leave no wal (mid-swap), and creating an
	// empty one here would make the repair mistake that state for "wal
	// intact" and discard the compacted data.
	for _, d := range []string{dir, filepath.Join(dir, "graphs")} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	e := &binaryEngine{
		dir:            dir,
		commitInterval: opts.CommitInterval,
		segmentSize:    opts.SegmentSize,
		sids:           make(map[string]struct{}),
		reqs:           make(chan *appendReq, 1024),
		quit:           make(chan struct{}),
	}
	if e.segmentSize <= 0 {
		e.segmentSize = defaultSegmentSize
	}
	if err := e.repairCompaction(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(e.walDir(), 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	segs, err := e.listSegments()
	if err != nil {
		return nil, err
	}
	if len(segs) > 0 {
		e.nextSeg = segs[len(segs)-1].idx
	}
	e.wg.Add(1)
	go e.writer()
	return e, nil
}

func (e *binaryEngine) EngineName() string { return EngineKindBinary }
func (e *binaryEngine) Dir() string        { return e.dir }
func (e *binaryEngine) Metrics() Metrics   { return e.m.snapshot(EngineKindBinary) }

func (e *binaryEngine) graphsDir() string { return filepath.Join(e.dir, "graphs") }
func (e *binaryEngine) walDir() string    { return filepath.Join(e.dir, "wal") }

// SaveGraph writes (or replaces) the binary snapshot of a graph.
func (e *binaryEngine) SaveGraph(name string, g *graph.Graph) error {
	payload, err := encodeBinarySnapshot(name, g)
	if err != nil {
		return fmt.Errorf("store: save graph %q: %w", name, err)
	}
	if err := writeSnapshotFile(e.graphsDir(), name, payload, &e.m); err != nil {
		return fmt.Errorf("store: save graph %q: %w", name, err)
	}
	return nil
}

// DeleteGraph removes the snapshot of an unregistered graph.
func (e *binaryEngine) DeleteGraph(name string) error {
	return deleteGraphSnapshot(e.graphsDir(), name)
}

// RecoverGraphs loads every intact graph snapshot, sorted by name.
func (e *binaryEngine) RecoverGraphs() ([]RecoveredGraph, error) {
	return recoverGraphSnapshots(e.graphsDir(), &e.m)
}

// Close stops accepting appends, waits for in-flight group commits and
// shuts the writer down.
func (e *binaryEngine) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	e.inflight.Wait()
	close(e.quit)
	e.wg.Wait()
	return nil
}

// submit hands a frame to the group-commit writer and blocks until the
// batch containing it is durable.
func (e *binaryEngine) submit(frame []byte, terminal bool) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return fmt.Errorf("store: engine is closed")
	}
	e.started = true
	e.inflight.Add(1)
	e.mu.Unlock()
	defer e.inflight.Done()
	req := &appendReq{frame: frame, terminal: terminal, err: make(chan error, 1)}
	e.reqs <- req
	return <-req.err
}

// writer is the group-commit goroutine: it owns the open segment and is
// the only writer of wal bytes after open.
func (e *binaryEngine) writer() {
	defer e.wg.Done()
	defer func() {
		if e.seg != nil {
			e.seg.Close()
		}
	}()
	for {
		var first *appendReq
		select {
		case first = <-e.reqs:
		case <-e.quit:
			return
		}
		batch := e.gather(first)
		err := e.commit(batch)
		for _, r := range batch {
			r.err <- err
		}
	}
}

// gatherYields bounds the adaptive batching loop: how many consecutive
// empty scheduler yields the writer tolerates before committing. Yields
// cost well under a microsecond each, so the added latency floor is a few
// microseconds — invisible next to an fsync — while concurrent appenders
// that were just woken by the previous commit get enough scheduler turns
// to join the batch.
const gatherYields = 64

// gather assembles one commit batch. Everything already queued joins
// immediately; then the writer either waits out the configured batching
// window (CommitInterval > 0) or adaptively yields until arrivals stop,
// which batches near the concurrency level without imposing a fixed
// latency on light load. A terminal record ends gathering immediately so
// a session's final fsync is never delayed.
func (e *binaryEngine) gather(first *appendReq) []*appendReq {
	batch := []*appendReq{first}
	terminal := first.terminal
	drain := func() bool {
		grew := false
		for !terminal {
			select {
			case r := <-e.reqs:
				batch = append(batch, r)
				terminal = r.terminal
				grew = true
			default:
				return grew
			}
		}
		return grew
	}
	drain()
	if terminal {
		return batch
	}
	if e.commitInterval > 0 {
		timer := time.NewTimer(e.commitInterval)
		defer timer.Stop()
		for !terminal {
			select {
			case r := <-e.reqs:
				batch = append(batch, r)
				terminal = r.terminal
			case <-timer.C:
				return batch
			}
		}
		return batch
	}
	for idle := 0; idle < gatherYields && !terminal; idle++ {
		runtime.Gosched()
		if drain() {
			idle = 0
		}
	}
	return batch
}

// commit writes a batch into the current segment and fsyncs once. After
// the first write or sync failure the engine is poisoned: a half-written
// batch makes the tail untrustworthy, so every later append fails too.
func (e *binaryEngine) commit(batch []*appendReq) error {
	if e.segErr != nil {
		return e.segErr
	}
	var size int64
	for _, r := range batch {
		size += int64(len(r.frame))
	}
	if e.seg == nil || e.segOff >= e.segmentSize {
		if err := e.rotate(); err != nil {
			e.segErr = err
			return err
		}
	}
	buf := make([]byte, 0, size)
	for _, r := range batch {
		buf = append(buf, r.frame...)
	}
	if _, err := e.seg.Write(buf); err != nil {
		e.segErr = fmt.Errorf("store: segment write: %w", err)
		return e.segErr
	}
	start := time.Now()
	if err := e.seg.Sync(); err != nil {
		e.segErr = fmt.Errorf("store: segment fsync: %w", err)
		return e.segErr
	}
	e.segOff += size
	e.m.fsyncs.Add(1)
	e.m.fsyncNanos.Add(time.Since(start).Nanoseconds())
	e.m.groupCommits.Add(1)
	e.m.journalAppends.Add(int64(len(batch)))
	e.m.journalBytes.Add(size)
	return nil
}

// rotate opens the segment the next batch writes into: on the engine's
// first commit it reopens the existing tail segment for appending if one
// is there with budget left (restarts do not proliferate near-empty
// segments), otherwise it seals the current segment and creates the next
// one. Reopening the tail is safe because every scan path truncates a
// torn tail before the first append can happen.
func (e *binaryEngine) rotate() error {
	if e.seg != nil {
		if err := e.seg.Close(); err != nil {
			return fmt.Errorf("store: close segment: %w", err)
		}
		e.seg = nil
	} else if !e.tailTried && e.nextSeg > 0 {
		e.tailTried = true
		path := segmentPath(e.walDir(), e.nextSeg)
		if fi, err := os.Stat(path); err == nil && fi.Size() < e.segmentSize {
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return fmt.Errorf("store: reopen segment: %w", err)
			}
			e.seg = f
			e.segOff = fi.Size()
			return nil
		}
	}
	e.nextSeg++
	path := segmentPath(e.walDir(), e.nextSeg)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: create segment: %w", err)
	}
	if err := syncDir(e.walDir()); err != nil {
		f.Close()
		return fmt.Errorf("store: create segment: %w", err)
	}
	e.seg = f
	e.segOff = 0
	e.m.segmentsCreated.Add(1)
	return nil
}

// --- frame encoding ---------------------------------------------------------

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// encodeFrame wraps a payload in the [length][crc] header.
func encodeFrame(payload []byte) []byte {
	out := make([]byte, 0, frameHeaderSize+len(payload))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(payload))
	return append(out, payload...)
}

// encodeRecordPayload builds a data or terminal payload.
func encodeRecordPayload(flag byte, sid string, rec Record) []byte {
	buf := make([]byte, 0, 16+len(sid)+len(rec.Type)+len(rec.Data))
	buf = append(buf, flag)
	buf = appendString(buf, sid)
	buf = binary.AppendUvarint(buf, rec.Seq)
	buf = appendString(buf, rec.Type)
	return append(buf, rec.Data...)
}

// encodeTombstonePayload marks a session removed.
func encodeTombstonePayload(sid string) []byte {
	buf := make([]byte, 0, 2+len(sid))
	buf = append(buf, flagTombstone)
	return appendString(buf, sid)
}

// encodeSummaryPayload collapses a finished session to one frame.
func encodeSummaryPayload(sid string, recs []Record) []byte {
	size := 8 + len(sid)
	for _, r := range recs {
		size += 16 + len(r.Type) + len(r.Data)
	}
	buf := make([]byte, 0, size)
	buf = append(buf, flagSummary)
	buf = appendString(buf, sid)
	buf = binary.AppendUvarint(buf, uint64(len(recs)))
	for _, r := range recs {
		buf = binary.AppendUvarint(buf, r.Seq)
		buf = appendString(buf, r.Type)
		buf = binary.AppendUvarint(buf, uint64(len(r.Data)))
		buf = append(buf, r.Data...)
	}
	return buf
}

// frameReader decodes payload fields with bounds checking.
type frameReader struct {
	data []byte
	off  int
}

func (r *frameReader) uvarint() (uint64, bool) {
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		return 0, false
	}
	r.off += n
	return v, true
}

func (r *frameReader) string() (string, bool) {
	n, ok := r.uvarint()
	if !ok || n > uint64(len(r.data)-r.off) {
		return "", false
	}
	s := string(r.data[r.off : r.off+int(n)])
	r.off += int(n)
	return s, true
}

func (r *frameReader) bytes(n uint64) ([]byte, bool) {
	if n > uint64(len(r.data)-r.off) {
		return nil, false
	}
	b := r.data[r.off : r.off+int(n)]
	r.off += int(n)
	return b, true
}

// decodedFrame is one parsed wal payload.
type decodedFrame struct {
	flag    byte
	sid     string
	rec     Record   // data/terminal frames
	summary []Record // summary frames
}

// decodePayload parses one frame payload (CRC already checked).
func decodePayload(payload []byte) (decodedFrame, error) {
	bad := func() (decodedFrame, error) {
		return decodedFrame{}, fmt.Errorf("store: malformed frame payload")
	}
	if len(payload) == 0 {
		return bad()
	}
	df := decodedFrame{flag: payload[0]}
	r := &frameReader{data: payload, off: 1}
	var ok bool
	if df.sid, ok = r.string(); !ok || df.sid == "" {
		return bad()
	}
	switch df.flag {
	case flagTombstone:
		return df, nil
	case flagData, flagTerminal:
		seq, ok := r.uvarint()
		if !ok {
			return bad()
		}
		typ, ok := r.string()
		if !ok {
			return bad()
		}
		df.rec = Record{Seq: seq, Type: typ}
		if rest := payload[r.off:]; len(rest) > 0 {
			df.rec.Data = append([]byte(nil), rest...)
		}
		return df, nil
	case flagSummary:
		count, ok := r.uvarint()
		if !ok || count > uint64(len(payload)) {
			return bad()
		}
		df.summary = make([]Record, 0, count)
		for i := uint64(0); i < count; i++ {
			seq, ok := r.uvarint()
			if !ok {
				return bad()
			}
			typ, ok := r.string()
			if !ok {
				return bad()
			}
			n, ok := r.uvarint()
			if !ok {
				return bad()
			}
			data, ok := r.bytes(n)
			if !ok {
				return bad()
			}
			rec := Record{Seq: seq, Type: typ}
			if len(data) > 0 {
				rec.Data = append([]byte(nil), data...)
			}
			df.summary = append(df.summary, rec)
		}
		if r.off != len(payload) {
			return bad()
		}
		return df, nil
	default:
		return bad()
	}
}

// --- journal backend --------------------------------------------------------

// binaryJournal routes a session's appends to the engine's group-commit
// writer.
type binaryJournal struct {
	e   *binaryEngine
	sid string
}

func (bj *binaryJournal) append(rec Record, terminal bool) error {
	flag := byte(flagData)
	if terminal {
		flag = flagTerminal
	}
	return bj.e.submit(encodeFrame(encodeRecordPayload(flag, bj.sid, rec)), terminal)
}

func (bj *binaryJournal) close() error { return nil }

// remove appends a tombstone frame: the session's records stay in their
// segments until compaction, but recovery drops them.
func (bj *binaryJournal) remove() error {
	return bj.e.submit(encodeFrame(encodeTombstonePayload(bj.sid)), true)
}

// CreateJournal registers a new session id and returns its journal. The
// id must never have been used in this wal — tombstoned ids included, so
// a removed session's tombstone can never shadow a live one.
func (e *binaryEngine) CreateJournal(id string) (*Journal, error) {
	if id == "" {
		return nil, fmt.Errorf("store: empty journal id")
	}
	if err := e.ensureScanned(); err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, fmt.Errorf("store: engine is closed")
	}
	if _, dup := e.sids[id]; dup {
		return nil, fmt.Errorf("store: journal %s already exists", id)
	}
	e.sids[id] = struct{}{}
	e.journalsActive++
	return &Journal{
		notify: make(chan struct{}),
		name:   id,
		b:      &binaryJournal{e: e, sid: id},
	}, nil
}

// ensureScanned populates the known-session-id set on first use, so a
// server that skips Recover still cannot collide with ids already in the
// wal (or in legacy text-engine journals sharing the directory). Runs
// before any append, so repairing a torn tail here is safe.
func (e *binaryEngine) ensureScanned() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.scanned {
		return nil
	}
	sessions, err := e.scanWal(true)
	if err != nil {
		return err
	}
	for sid := range sessions {
		e.sids[sid] = struct{}{}
	}
	for _, id := range legacyJournalIDs(e.dir) {
		e.sids[id] = struct{}{}
	}
	e.scanned = true
	return nil
}

// legacyJournalIDs lists the session ids of text-engine JSONL journals in
// the data directory.
func legacyJournalIDs(dir string) []string {
	entries, err := os.ReadDir(filepath.Join(dir, "sessions"))
	if err != nil {
		return nil
	}
	var ids []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".jsonl") {
			continue
		}
		id, err := url.PathUnescape(strings.TrimSuffix(name, ".jsonl"))
		if err != nil {
			id = strings.TrimSuffix(name, ".jsonl")
		}
		ids = append(ids, id)
	}
	return ids
}

// RecoverSessions replays the wal into per-session journals. A data
// directory that was previously run with the text engine is migrated in
// place: its JSONL journals recover alongside the wal sessions (keeping
// their per-file append path), so switching -store-engine never abandons
// a session. It must run before the first append: afterwards the writer
// owns the tail and the scan's torn-tail truncation would race it.
func (e *binaryEngine) RecoverSessions() ([]RecoveredSession, error) {
	e.mu.Lock()
	if e.started {
		e.mu.Unlock()
		return nil, fmt.Errorf("store: recover after appends have started")
	}
	sessions, err := e.scanWal(true)
	if err != nil {
		e.mu.Unlock()
		return nil, err
	}
	for sid := range sessions {
		e.sids[sid] = struct{}{}
	}
	out := make([]RecoveredSession, 0, len(sessions))
	for sid, sc := range sessions {
		if sc.tombstoned {
			continue
		}
		e.m.recoveredSessions.Add(1)
		e.journalsActive++
		out = append(out, RecoveredSession{
			ID: sid,
			Journal: &Journal{
				notify: make(chan struct{}),
				recs:   sc.recs,
				name:   sid,
				b:      &binaryJournal{e: e, sid: sid},
			},
		})
	}
	legacy, err := recoverSessionDir(filepath.Join(e.dir, "sessions"), &e.m)
	if err != nil {
		e.mu.Unlock()
		return nil, err
	}
	for _, rs := range legacy {
		if _, dup := e.sids[rs.ID]; dup {
			// A wal session shadows a same-id legacy journal (possible only
			// if someone hand-copied files); the wal is authoritative.
			_ = rs.Journal.Close()
			continue
		}
		e.sids[rs.ID] = struct{}{}
		e.journalsActive++
		out = append(out, rs)
	}
	e.scanned = true
	e.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// --- wal scanning -----------------------------------------------------------

type segInfo struct {
	idx  uint64
	path string
	size int64
}

func (e *binaryEngine) listSegments() ([]segInfo, error) {
	entries, err := os.ReadDir(e.walDir())
	if err != nil {
		return nil, fmt.Errorf("store: list segments: %w", err)
	}
	segs := make([]segInfo, 0, len(entries))
	for _, ent := range entries {
		if ent.IsDir() {
			continue
		}
		idx, ok := segmentIndex(ent.Name())
		if !ok {
			continue
		}
		info, err := ent.Info()
		if err != nil {
			return nil, fmt.Errorf("store: list segments: %w", err)
		}
		segs = append(segs, segInfo{idx: idx, path: filepath.Join(e.walDir(), ent.Name()), size: info.Size()})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].idx < segs[j].idx })
	return segs, nil
}

// scanSession accumulates one session's surviving state during a scan.
type scanSession struct {
	recs       []Record
	finished   bool
	tombstoned bool
	// gapped records that at least one out-of-sequence record was dropped
	// (for the TruncatedJournals metric, counted once per session).
	gapped bool
}

// scanWal replays every segment. With truncate set, a structurally torn
// tail in the final segment is cut off on disk (and fsynced) exactly like
// the text engine truncates a torn JSONL line.
func (e *binaryEngine) scanWal(truncate bool) (map[string]*scanSession, error) {
	segs, err := e.listSegments()
	if err != nil {
		return nil, err
	}
	sessions := make(map[string]*scanSession)
	for si, seg := range segs {
		last := si == len(segs)-1
		data, err := os.ReadFile(seg.path)
		if err != nil {
			return nil, fmt.Errorf("store: read segment %s: %w", seg.path, err)
		}
		off := 0
		for off < len(data) {
			frameLen, ok := frameAt(data, off)
			if !ok {
				// Structural damage: a short header, an implausible length
				// or a length overrunning the segment. In the final segment
				// this is a torn write — truncate it away; in an earlier
				// (sealed) segment nothing after it can be framed, so the
				// rest of the segment is skipped and counted.
				if last && truncate {
					if err := truncateSegment(seg.path, off); err != nil {
						return nil, err
					}
					e.m.truncatedJournals.Add(1)
				} else if !last {
					e.m.corruptFrames.Add(1)
				} else {
					e.m.truncatedJournals.Add(1)
				}
				break
			}
			payload := data[off+frameHeaderSize : off+frameHeaderSize+frameLen]
			if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(data[off+4:]) {
				if last {
					// A CRC failure at the tail is indistinguishable from a
					// torn write; stop (and truncate) here.
					if truncate {
						if err := truncateSegment(seg.path, off); err != nil {
							return nil, err
						}
					}
					e.m.truncatedJournals.Add(1)
					break
				}
				// Mid-log bit flip in a sealed segment: the framing is
				// intact, so skip just this frame. The per-session sequence
				// check below truncates the affected session at the gap.
				e.m.corruptFrames.Add(1)
				off += frameHeaderSize + frameLen
				continue
			}
			df, err := decodePayload(payload)
			if err != nil {
				e.m.corruptFrames.Add(1)
				off += frameHeaderSize + frameLen
				continue
			}
			applyFrame(sessions, df, &e.m)
			off += frameHeaderSize + frameLen
		}
	}
	return sessions, nil
}

// frameAt validates the frame header at off and returns the payload
// length.
func frameAt(data []byte, off int) (int, bool) {
	if len(data)-off < frameHeaderSize {
		return 0, false
	}
	frameLen := int(binary.LittleEndian.Uint32(data[off:]))
	if frameLen > maxFrameSize || off+frameHeaderSize+frameLen > len(data) {
		return 0, false
	}
	return frameLen, true
}

func truncateSegment(path string, size int) error {
	if err := os.Truncate(path, int64(size)); err != nil {
		return fmt.Errorf("store: truncate segment %s: %w", path, err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: truncate segment %s: %w", path, err)
	}
	defer f.Close()
	if err := f.Sync(); err != nil {
		return fmt.Errorf("store: truncate segment %s: %w", path, err)
	}
	return nil
}

// applyFrame folds one decoded frame into the scan state.
func applyFrame(sessions map[string]*scanSession, df decodedFrame, m *metrics) {
	sc := sessions[df.sid]
	if sc == nil {
		sc = &scanSession{}
		sessions[df.sid] = sc
	}
	switch df.flag {
	case flagTombstone:
		sc.tombstoned = true
		sc.recs = nil
	case flagSummary:
		if sc.tombstoned {
			return
		}
		sc.recs = df.summary
		sc.finished = true
	case flagData, flagTerminal:
		if sc.tombstoned {
			return
		}
		// A record whose sequence number does not extend the session's
		// valid prefix is dropped — but only that record, not the session:
		// after a mid-log frame loss, the resumed session re-journals the
		// lost records at the correct sequence numbers *behind* the stale
		// ones, and this rule makes every later scan converge on the same
		// repaired prefix.
		if df.rec.Seq != uint64(len(sc.recs))+1 {
			if !sc.gapped {
				sc.gapped = true
				m.truncatedJournals.Add(1)
			}
			return
		}
		sc.recs = append(sc.recs, df.rec)
		if df.flag == flagTerminal {
			sc.finished = true
		}
	}
}

// --- compaction -------------------------------------------------------------

func (e *binaryEngine) compactDir() string { return filepath.Join(e.dir, "wal.compact") }
func (e *binaryEngine) oldDir() string     { return filepath.Join(e.dir, "wal.old") }

// repairCompaction finishes (or rolls back) a compaction interrupted by a
// crash, using the invariant that wal.compact is fully written and synced
// before the first rename:
//
//	wal + wal.compact        crash before the swap    → drop wal.compact
//	wal.compact, no wal      crash mid-swap           → promote wal.compact
//	wal + wal.old            crash before cleanup     → drop wal.old
//	wal.old only             (unreachable)            → restore wal.old
func (e *binaryEngine) repairCompaction() error {
	exists := func(p string) bool {
		_, err := os.Stat(p)
		return err == nil
	}
	walExists := exists(e.walDir())
	switch {
	case !walExists && exists(e.compactDir()):
		if err := os.Rename(e.compactDir(), e.walDir()); err != nil {
			return fmt.Errorf("store: repair compaction: %w", err)
		}
		if err := syncDir(e.dir); err != nil {
			return fmt.Errorf("store: repair compaction: %w", err)
		}
	case !walExists && exists(e.oldDir()):
		if err := os.Rename(e.oldDir(), e.walDir()); err != nil {
			return fmt.Errorf("store: repair compaction: %w", err)
		}
		if err := syncDir(e.dir); err != nil {
			return fmt.Errorf("store: repair compaction: %w", err)
		}
	}
	for _, leftover := range []string{e.compactDir(), e.oldDir()} {
		if exists(leftover) {
			if err := os.RemoveAll(leftover); err != nil {
				return fmt.Errorf("store: repair compaction: %w", err)
			}
		}
	}
	return nil
}

// Compact rewrites the wal: tombstoned sessions disappear, finished
// sessions collapse to one summary frame each, live sessions carry their
// full record list over, and every old segment is retired. It must run
// before any journal is created or recovered (gpsd runs it at boot with
// -compact). The rewrite is crash-safe: the new wal is fully written and
// fsynced in a side directory, then swapped in with two renames that
// repairCompaction can always finish or undo.
func (e *binaryEngine) Compact() (CompactionReport, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	rep := CompactionReport{Supported: true}
	if e.closed {
		return rep, fmt.Errorf("store: engine is closed")
	}
	if e.started || e.journalsActive > 0 {
		return rep, fmt.Errorf("store: compact with %d active journals (compact must run before recovery hands out journals)", e.journalsActive)
	}
	sessions, err := e.scanWal(true)
	if err != nil {
		return rep, err
	}
	segs, err := e.listSegments()
	if err != nil {
		return rep, err
	}
	for _, s := range segs {
		rep.BytesBefore += s.size
	}
	rep.SegmentsRetired = len(segs)

	// Deterministic rewrite order keeps equivalence tests simple.
	sids := make([]string, 0, len(sessions))
	for sid := range sessions {
		sids = append(sids, sid)
	}
	sort.Strings(sids)

	if err := os.RemoveAll(e.compactDir()); err != nil {
		return rep, fmt.Errorf("store: compact: %w", err)
	}
	if err := os.MkdirAll(e.compactDir(), 0o755); err != nil {
		return rep, fmt.Errorf("store: compact: %w", err)
	}
	cw := &compactWriter{dir: e.compactDir(), limit: e.segmentSize}
	for _, sid := range sids {
		sc := sessions[sid]
		switch {
		case sc.tombstoned:
			rep.SessionsDropped++
		case sc.finished:
			if err := cw.write(encodeFrame(encodeSummaryPayload(sid, summarizeFinished(sc.recs)))); err != nil {
				return rep, err
			}
			rep.SessionsCompacted++
		default:
			for _, rec := range sc.recs {
				if err := cw.write(encodeFrame(encodeRecordPayload(flagData, sid, rec))); err != nil {
					return rep, err
				}
			}
		}
	}
	if err := cw.finish(); err != nil {
		return rep, err
	}
	rep.SegmentsWritten = cw.segments
	rep.BytesAfter = cw.bytes

	// The swap. wal.compact is durable; two renames move it into place.
	if err := os.Rename(e.walDir(), e.oldDir()); err != nil {
		return rep, fmt.Errorf("store: compact: %w", err)
	}
	if err := os.Rename(e.compactDir(), e.walDir()); err != nil {
		return rep, fmt.Errorf("store: compact: %w", err)
	}
	if err := syncDir(e.dir); err != nil {
		return rep, fmt.Errorf("store: compact: %w", err)
	}
	if err := os.RemoveAll(e.oldDir()); err != nil {
		return rep, fmt.Errorf("store: compact: %w", err)
	}
	segs, err = e.listSegments()
	if err != nil {
		return rep, err
	}
	e.nextSeg = 0
	if len(segs) > 0 {
		e.nextSeg = segs[len(segs)-1].idx
	}
	// Let the first post-compaction commit append to the compacted tail.
	e.tailTried = false
	e.m.compactionRuns.Add(1)
	e.m.compactedSessions.Add(int64(rep.SessionsCompacted))
	e.m.retiredSegments.Add(int64(rep.SegmentsRetired))
	return rep, nil
}

// summarizeFinished collapses a finished transcript to its opening record
// and its terminal record, renumbered from 1. The service's record schema
// opens every journal with a create record and closes a finished one with
// a done/failed record carrying the final state; the question/answer
// chatter in between only matters for resuming an *unfinished* session,
// so a finished session does not need it back.
func summarizeFinished(recs []Record) []Record {
	if len(recs) > 2 {
		recs = []Record{recs[0], recs[len(recs)-1]}
	}
	out := make([]Record, len(recs))
	copy(out, recs)
	for i := range out {
		out[i].Seq = uint64(i) + 1
	}
	return out
}

// compactWriter rolls compacted frames into fresh, fsynced segments.
type compactWriter struct {
	dir      string
	limit    int64
	f        *os.File
	off      int64
	idx      uint64
	segments int
	bytes    int64
}

func (w *compactWriter) write(frame []byte) error {
	if w.f == nil || w.off >= w.limit {
		if err := w.closeCurrent(); err != nil {
			return err
		}
		w.idx++
		f, err := os.OpenFile(segmentPath(w.dir, w.idx), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err != nil {
			return fmt.Errorf("store: compact: %w", err)
		}
		w.f = f
		w.off = 0
		w.segments++
	}
	if _, err := w.f.Write(frame); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	w.off += int64(len(frame))
	w.bytes += int64(len(frame))
	return nil
}

func (w *compactWriter) closeCurrent() error {
	if w.f == nil {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	w.f = nil
	return nil
}

func (w *compactWriter) finish() error {
	if err := w.closeCurrent(); err != nil {
		return err
	}
	if err := syncDir(w.dir); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	return nil
}

// interface conformance checks.
var (
	_ Engine = (*Store)(nil)
	_ Engine = (*binaryEngine)(nil)
)
