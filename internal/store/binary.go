package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net/url"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
)

// The binary engine interleaves every session journal into one segmented
// log:
//
//	<dir>/graphs/<name>.graph     binary varint-CSR graph snapshots
//	<dir>/wal/seg-00000001.seg    CRC-framed record segments
//	<dir>/wal.compact, wal.old    transient directories during compaction
//
// Each frame is [u32le payload length][u32le payload CRC32][payload]; the
// payload starts with a flag byte and the session id, then the record:
//
//	flag 0  data record        seq, type, JSON payload
//	flag 1  tombstone          the session was removed; drop its records
//	flag 2  terminal record    like data, and the session is finished
//	flag 3  summary            a finished session compacted to one frame
//	flag 4  index              per-session frame listing (sealed segments)
//	flag 5  trailer            fixed-size locator of the index frame
//
// All appends funnel through a single group-commit writer goroutine: an
// append hands its frame over and blocks until the batch it joined is
// written and fsynced, so the write-ahead guarantee is identical to the
// text engine's — the record is durable before Append returns — but one
// fsync covers every append that arrived while the previous one was in
// flight (plus, optionally, a CommitInterval batching window). Terminal
// records never wait out the window: they flush the batch immediately, so
// crash-resume semantics match the per-append-fsync engine.
//
// Recovery replays the segments in order, streaming each one frame at a
// time (memory is bounded by the largest frame, not the segment size). A
// structurally torn tail (short header, length overrunning the file) in
// the final segment is truncated exactly like a torn JSONL line; a
// CRC-failed frame in an earlier segment is skipped and counted, and the
// per-session sequence check then truncates only the affected session at
// its first gap. Sealed segments end with an index footer (flags 4/5)
// that lets scans enumerate session ids without decoding frames and
// resynchronise past structural damage; when the footer is absent or
// fails its CRC the scan falls back to reading every frame.
//
// Compaction runs in two modes sharing one crash-safe swap protocol (the
// new wal is fully fsynced in wal.compact, then two renames move it into
// place, and repairCompaction can always finish or undo the swap):
// offline (before any journal exists, gpsd -compact) rewrites everything;
// live (appends in flight) asks the writer goroutine to seal the active
// segment, compacts only the sealed segments, and swaps while appends
// continue into fresh segments — the writer's open segment is hard-linked
// into the new wal, so its file descriptor stays valid across the swap
// and no append ever blocks for more than the seal/swap control requests,
// each about one group-commit batch window.

const (
	flagData      = 0
	flagTombstone = 1
	flagTerminal  = 2
	flagSummary   = 3
	flagIndex     = 4
	flagTrailer   = 5
	// flagEpoch marks a fencing-epoch frame: the first frame of every
	// segment the writer (or compaction) creates records the primary epoch
	// the segment was written under. Scans skip it like the footer frames;
	// replication followers read it to notice a stale primary's output.
	flagEpoch = 6

	// frameHeaderSize is the fixed [length][crc] prefix.
	frameHeaderSize = 8
	// maxFrameSize bounds a frame's declared payload length; anything
	// larger is structural corruption, not a record.
	maxFrameSize = 64 << 20

	defaultSegmentSize = 4 << 20
)

func segmentPath(walDir string, idx uint64) string {
	return filepath.Join(walDir, fmt.Sprintf("seg-%08d.seg", idx))
}

// segmentIndex parses a segment file name, returning ok=false for foreign
// files.
func segmentIndex(name string) (uint64, bool) {
	var idx uint64
	if n, err := fmt.Sscanf(name, "seg-%d.seg", &idx); n != 1 || err != nil {
		return 0, false
	}
	return idx, true
}

// appendReq is one append waiting for its group commit, or (ctl set) a
// control request the writer runs exclusively between batches — how live
// compaction seals the active segment and swaps the wal without ever
// taking the writer's ownership of the tail away from it.
type appendReq struct {
	frame    []byte
	sid      string
	flag     byte
	terminal bool
	ctl      func() error
	err      chan error
}

// binaryEngine is the segmented-log implementation of Engine.
type binaryEngine struct {
	dir            string
	commitInterval time.Duration
	segmentSize    int64
	m              metrics

	mu sync.Mutex
	// closed refuses new appends; inflight lets Close wait out the ones
	// already submitted.
	closed   bool
	inflight sync.WaitGroup
	// started flips on the first append: afterwards the wal may no longer
	// be rescanned (RecoverSessions) or rewritten (Compact).
	started bool
	// journalsActive counts journals handed out; Compact requires zero.
	journalsActive int
	// sids tracks every session id ever seen in the wal (including
	// tombstoned ones), so CreateJournal never reuses an id; scanned
	// records whether the wal has been read to populate it.
	sids    map[string]struct{}
	scanned bool
	// compacting serialises Compact runs (a second concurrent call fails
	// with ErrCompacting) and fences RecoverSessions off the swap window.
	compacting bool

	reqs chan *appendReq
	quit chan struct{}
	wg   sync.WaitGroup

	// Writer-goroutine state: the open segment, its size, the index of
	// the last segment created, and the first unrecoverable write error
	// (after which every append fails — a half-written batch makes the
	// segment tail untrustworthy).
	seg    *os.File
	segOff int64
	segErr error
	// nextSeg is the highest segment index on disk (or created); rotate
	// reopens that tail once (tailTried) before sealing it and moving on.
	nextSeg   uint64
	tailTried bool
	// segIndex accumulates the open segment's session index footer; nil
	// for a reopened tail, whose pre-existing frames the writer never saw
	// (such a segment seals without a footer and scans fall back).
	segIndex *segIndexBuilder
	// fault is the test/chaos fault-injection hook (EngineOptions.Fault),
	// called at named points of the compaction protocol.
	fault func(string) error

	// repl publishes the writer's durable position (and the wal generation
	// and fencing epoch) to replication feeds; see replicate.go. The writer
	// goroutine updates it after every fsync, so a feed never streams bytes
	// that could still be lost in a crash.
	repl replPub

	// lastCompactFrames records the published frame count at the start of
	// the last completed live compaction, offset by one (0 = none yet). A
	// pass that would start at the same count is skipped: it could not
	// shrink anything, and its generation bump would force every
	// replication follower into a pointless full resync.
	lastCompactFrames atomic.Uint64
}

// openBinary creates (if needed) and opens a data directory with the
// binary engine.
func openBinary(dir string, opts EngineOptions) (*binaryEngine, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty data directory")
	}
	// The wal directory is created only after crash repair: an interrupted
	// compaction can legitimately leave no wal (mid-swap), and creating an
	// empty one here would make the repair mistake that state for "wal
	// intact" and discard the compacted data.
	for _, d := range []string{dir, filepath.Join(dir, "graphs")} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	e := &binaryEngine{
		dir:            dir,
		commitInterval: opts.CommitInterval,
		segmentSize:    opts.SegmentSize,
		sids:           make(map[string]struct{}),
		reqs:           make(chan *appendReq, 1024),
		quit:           make(chan struct{}),
		fault:          opts.Fault,
	}
	if e.segmentSize <= 0 {
		e.segmentSize = defaultSegmentSize
	}
	if err := e.repairCompaction(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(e.walDir(), 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	segs, err := e.listSegments()
	if err != nil {
		return nil, err
	}
	if len(segs) > 0 {
		e.nextSeg = segs[len(segs)-1].idx
	}
	gen, err := loadOrInitCounterFile(filepath.Join(e.walDir(), walGenFile), 1)
	if err != nil {
		return nil, err
	}
	epoch, err := loadOrInitCounterFile(filepath.Join(dir, epochFile), 1)
	if err != nil {
		return nil, err
	}
	e.repl.init(gen, epoch)
	e.wg.Add(1)
	go e.writer()
	return e, nil
}

func (e *binaryEngine) EngineName() string { return EngineKindBinary }
func (e *binaryEngine) Dir() string        { return e.dir }
func (e *binaryEngine) Metrics() Metrics   { return e.m.snapshot(EngineKindBinary) }

// faultPoint invokes the injected fault hook, if any. A chaos harness
// hook typically kills the process outright; a test hook returns an error
// to abort the protocol at that point.
func (e *binaryEngine) faultPoint(name string) error {
	if e.fault == nil {
		return nil
	}
	if err := e.fault(name); err != nil {
		return fmt.Errorf("store: fault at %s: %w", name, err)
	}
	return nil
}

func (e *binaryEngine) graphsDir() string { return filepath.Join(e.dir, "graphs") }
func (e *binaryEngine) walDir() string    { return filepath.Join(e.dir, "wal") }

// SaveGraph writes (or replaces) the binary snapshot of a graph.
func (e *binaryEngine) SaveGraph(name string, g *graph.Graph) error {
	payload, err := encodeBinarySnapshot(name, g)
	if err != nil {
		return fmt.Errorf("store: save graph %q: %w", name, err)
	}
	if err := writeSnapshotFile(e.graphsDir(), name, payload, &e.m); err != nil {
		return fmt.Errorf("store: save graph %q: %w", name, err)
	}
	return nil
}

// DeleteGraph removes the snapshot of an unregistered graph.
func (e *binaryEngine) DeleteGraph(name string) error {
	return deleteGraphSnapshot(e.graphsDir(), name)
}

// RecoverGraphs loads every intact graph snapshot, sorted by name.
func (e *binaryEngine) RecoverGraphs() ([]RecoveredGraph, error) {
	return recoverGraphSnapshots(e.graphsDir(), &e.m)
}

// Close stops accepting appends, waits for in-flight group commits and
// shuts the writer down.
func (e *binaryEngine) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	e.inflight.Wait()
	close(e.quit)
	e.wg.Wait()
	return nil
}

// submit hands a frame to the group-commit writer and blocks until the
// batch containing it is durable.
func (e *binaryEngine) submit(frame []byte, sid string, flag byte, terminal bool) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return fmt.Errorf("store: engine is closed")
	}
	e.started = true
	e.inflight.Add(1)
	e.mu.Unlock()
	defer e.inflight.Done()
	req := &appendReq{frame: frame, sid: sid, flag: flag, terminal: terminal, err: make(chan error, 1)}
	e.reqs <- req
	return <-req.err
}

// control runs fn on the writer goroutine, exclusively between commit
// batches, and blocks until it returns. It registers in inflight like an
// append, so Close waits it out and the writer is guaranteed to answer.
func (e *binaryEngine) control(fn func() error) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return fmt.Errorf("store: engine is closed")
	}
	e.inflight.Add(1)
	e.mu.Unlock()
	defer e.inflight.Done()
	req := &appendReq{ctl: fn, err: make(chan error, 1)}
	e.reqs <- req
	return <-req.err
}

// writer is the group-commit goroutine: it owns the open segment and is
// the only writer of wal bytes after open.
func (e *binaryEngine) writer() {
	defer e.wg.Done()
	defer func() {
		if e.seg != nil {
			e.seg.Close()
		}
	}()
	for {
		var first *appendReq
		select {
		case first = <-e.reqs:
		case <-e.quit:
			return
		}
		for first != nil {
			if first.ctl != nil {
				first.err <- first.ctl()
				first = nil
				continue
			}
			batch, ctl := e.gather(first)
			err := e.commit(batch)
			for _, r := range batch {
				r.err <- err
			}
			// A control request that interrupted the gather runs next,
			// before any newly queued appends: a pending seal or swap is
			// delayed by at most the batch it landed behind.
			first = ctl
		}
	}
}

// gatherYields bounds the adaptive batching loop: how many consecutive
// empty scheduler yields the writer tolerates before committing. Yields
// cost well under a microsecond each, so the added latency floor is a few
// microseconds — invisible next to an fsync — while concurrent appenders
// that were just woken by the previous commit get enough scheduler turns
// to join the batch.
const gatherYields = 64

// gather assembles one commit batch. Everything already queued joins
// immediately; then the writer either waits out the configured batching
// window (CommitInterval > 0) or adaptively yields until arrivals stop,
// which batches near the concurrency level without imposing a fixed
// latency on light load. A terminal record ends gathering immediately so
// a session's final fsync is never delayed, and a control request ends it
// too (returned as ctl, to run right after the batch commits).
func (e *binaryEngine) gather(first *appendReq) (batch []*appendReq, ctl *appendReq) {
	batch = []*appendReq{first}
	terminal := first.terminal
	drain := func() bool {
		grew := false
		for !terminal && ctl == nil {
			select {
			case r := <-e.reqs:
				if r.ctl != nil {
					ctl = r
					return grew
				}
				batch = append(batch, r)
				terminal = r.terminal
				grew = true
			default:
				return grew
			}
		}
		return grew
	}
	drain()
	if terminal || ctl != nil {
		return batch, ctl
	}
	if e.commitInterval > 0 {
		timer := time.NewTimer(e.commitInterval)
		defer timer.Stop()
		for !terminal && ctl == nil {
			select {
			case r := <-e.reqs:
				if r.ctl != nil {
					ctl = r
					continue
				}
				batch = append(batch, r)
				terminal = r.terminal
			case <-timer.C:
				return batch, ctl
			}
		}
		return batch, ctl
	}
	for idle := 0; idle < gatherYields && !terminal && ctl == nil; idle++ {
		runtime.Gosched()
		if drain() {
			idle = 0
		}
	}
	return batch, ctl
}

// commit writes a batch into the current segment and fsyncs once. After
// the first write or sync failure the engine is poisoned: a half-written
// batch makes the tail untrustworthy, so every later append fails too.
func (e *binaryEngine) commit(batch []*appendReq) error {
	if e.segErr != nil {
		return e.segErr
	}
	var size int64
	for _, r := range batch {
		size += int64(len(r.frame))
	}
	if e.seg == nil || e.segOff >= e.segmentSize {
		if err := e.rotate(); err != nil {
			e.segErr = err
			return err
		}
	}
	buf := make([]byte, 0, size)
	for _, r := range batch {
		buf = append(buf, r.frame...)
	}
	if _, err := e.seg.Write(buf); err != nil {
		e.segErr = fmt.Errorf("store: segment write: %w", err)
		return e.segErr
	}
	start := time.Now()
	if err := e.seg.Sync(); err != nil {
		e.segErr = fmt.Errorf("store: segment fsync: %w", err)
		return e.segErr
	}
	if e.segIndex != nil {
		off := e.segOff
		for _, r := range batch {
			e.segIndex.add(r.sid, r.flag, off)
			off += int64(len(r.frame))
		}
	}
	e.segOff += size
	e.m.fsyncs.Add(1)
	e.m.fsyncNanos.Add(time.Since(start).Nanoseconds())
	e.m.groupCommits.Add(1)
	e.m.journalAppends.Add(int64(len(batch)))
	e.m.journalBytes.Add(size)
	e.repl.publish(e.nextSeg, e.segOff, uint64(len(batch)))
	return nil
}

// rotate opens the segment the next batch writes into: on the engine's
// first commit it reopens the existing tail segment for appending if one
// is there with budget left (restarts do not proliferate near-empty
// segments), otherwise it seals the current segment and creates the next
// one. Reopening the tail is safe because every scan path truncates a
// torn tail before the first append can happen.
func (e *binaryEngine) rotate() error {
	if e.seg != nil {
		if err := e.sealCurrent(); err != nil {
			return err
		}
	} else if !e.tailTried && e.nextSeg > 0 {
		e.tailTried = true
		path := segmentPath(e.walDir(), e.nextSeg)
		if fi, err := os.Stat(path); err == nil && fi.Size() < e.segmentSize {
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return fmt.Errorf("store: reopen segment: %w", err)
			}
			e.seg = f
			e.segOff = fi.Size()
			// The writer never saw this segment's earlier frames, so it
			// cannot build a complete index footer for it: scans of this
			// segment fall back to reading every frame. (Any footer the
			// tail already carries stops being trusted the moment appends
			// bury its trailer mid-file.)
			e.segIndex = nil
			e.repl.publish(e.nextSeg, e.segOff, 0)
			return nil
		}
	}
	e.nextSeg++
	path := segmentPath(e.walDir(), e.nextSeg)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: create segment: %w", err)
	}
	if err := syncDir(e.walDir()); err != nil {
		f.Close()
		return fmt.Errorf("store: create segment: %w", err)
	}
	// Every fresh segment opens with an epoch frame, so any reader of the
	// wal (recovery, a replication follower) can tell which primary epoch
	// produced it. The frame is fsynced before the position is published:
	// a feed must never stream bytes a crash could take back.
	frame := encodeFrame(encodeEpochPayload(e.repl.snapshot().Epoch))
	if _, err := f.Write(frame); err != nil {
		f.Close()
		return fmt.Errorf("store: create segment: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: create segment: %w", err)
	}
	e.seg = f
	e.segOff = int64(len(frame))
	e.segIndex = newSegIndexBuilder()
	e.m.segmentsCreated.Add(1)
	e.repl.publish(e.nextSeg, e.segOff, 0)
	return nil
}

// sealCurrent closes the open segment, appending its index footer first
// when the writer has seen every frame in it. Called by rotate on
// roll-over and by the live-compaction seal control request; a failure
// leaves the segment unsealed but correct (footers are optional).
func (e *binaryEngine) sealCurrent() error {
	if e.seg == nil {
		return nil
	}
	if e.segIndex != nil && !e.segIndex.empty() {
		footer := encodeSegmentFooter(e.segIndex.entries(), e.segOff)
		if _, err := e.seg.Write(footer); err != nil {
			e.seg.Close()
			e.seg = nil
			return fmt.Errorf("store: seal segment: %w", err)
		}
		if err := e.seg.Sync(); err != nil {
			e.seg.Close()
			e.seg = nil
			return fmt.Errorf("store: seal segment: %w", err)
		}
		e.segOff += int64(len(footer))
		e.m.footersWritten.Add(1)
		e.repl.publish(e.nextSeg, e.segOff, 0)
	}
	err := e.seg.Close()
	e.seg = nil
	e.segIndex = nil
	if err != nil {
		return fmt.Errorf("store: close segment: %w", err)
	}
	return nil
}

// --- frame encoding ---------------------------------------------------------

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// encodeFrame wraps a payload in the [length][crc] header.
func encodeFrame(payload []byte) []byte {
	out := make([]byte, 0, frameHeaderSize+len(payload))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(payload))
	return append(out, payload...)
}

// encodeRecordPayload builds a data or terminal payload.
func encodeRecordPayload(flag byte, sid string, rec Record) []byte {
	buf := make([]byte, 0, 16+len(sid)+len(rec.Type)+len(rec.Data))
	buf = append(buf, flag)
	buf = appendString(buf, sid)
	buf = binary.AppendUvarint(buf, rec.Seq)
	buf = appendString(buf, rec.Type)
	return append(buf, rec.Data...)
}

// encodeTombstonePayload marks a session removed.
func encodeTombstonePayload(sid string) []byte {
	buf := make([]byte, 0, 2+len(sid))
	buf = append(buf, flagTombstone)
	return appendString(buf, sid)
}

// encodeSummaryPayload collapses a finished session to one frame.
func encodeSummaryPayload(sid string, recs []Record) []byte {
	size := 8 + len(sid)
	for _, r := range recs {
		size += 16 + len(r.Type) + len(r.Data)
	}
	buf := make([]byte, 0, size)
	buf = append(buf, flagSummary)
	buf = appendString(buf, sid)
	buf = binary.AppendUvarint(buf, uint64(len(recs)))
	for _, r := range recs {
		buf = binary.AppendUvarint(buf, r.Seq)
		buf = appendString(buf, r.Type)
		buf = binary.AppendUvarint(buf, uint64(len(r.Data)))
		buf = append(buf, r.Data...)
	}
	return buf
}

// frameReader decodes payload fields with bounds checking.
type frameReader struct {
	data []byte
	off  int
}

func (r *frameReader) uvarint() (uint64, bool) {
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		return 0, false
	}
	r.off += n
	return v, true
}

func (r *frameReader) string() (string, bool) {
	n, ok := r.uvarint()
	if !ok || n > uint64(len(r.data)-r.off) {
		return "", false
	}
	s := string(r.data[r.off : r.off+int(n)])
	r.off += int(n)
	return s, true
}

func (r *frameReader) bytes(n uint64) ([]byte, bool) {
	if n > uint64(len(r.data)-r.off) {
		return nil, false
	}
	b := r.data[r.off : r.off+int(n)]
	r.off += int(n)
	return b, true
}

// decodedFrame is one parsed wal payload.
type decodedFrame struct {
	flag    byte
	sid     string
	rec     Record   // data/terminal frames
	summary []Record // summary frames
}

// decodePayload parses one frame payload (CRC already checked).
func decodePayload(payload []byte) (decodedFrame, error) {
	bad := func() (decodedFrame, error) {
		return decodedFrame{}, fmt.Errorf("store: malformed frame payload")
	}
	if len(payload) == 0 {
		return bad()
	}
	df := decodedFrame{flag: payload[0]}
	if df.flag == flagIndex || df.flag == flagTrailer || df.flag == flagEpoch {
		// Footer and epoch frames carry no session; scans skip them and
		// their consumers parse them with their own decoders.
		return df, nil
	}
	r := &frameReader{data: payload, off: 1}
	var ok bool
	if df.sid, ok = r.string(); !ok || df.sid == "" {
		return bad()
	}
	switch df.flag {
	case flagTombstone:
		return df, nil
	case flagData, flagTerminal:
		seq, ok := r.uvarint()
		if !ok {
			return bad()
		}
		typ, ok := r.string()
		if !ok {
			return bad()
		}
		df.rec = Record{Seq: seq, Type: typ}
		if rest := payload[r.off:]; len(rest) > 0 {
			df.rec.Data = append([]byte(nil), rest...)
		}
		return df, nil
	case flagSummary:
		count, ok := r.uvarint()
		if !ok || count > uint64(len(payload)) {
			return bad()
		}
		df.summary = make([]Record, 0, count)
		for i := uint64(0); i < count; i++ {
			seq, ok := r.uvarint()
			if !ok {
				return bad()
			}
			typ, ok := r.string()
			if !ok {
				return bad()
			}
			n, ok := r.uvarint()
			if !ok {
				return bad()
			}
			data, ok := r.bytes(n)
			if !ok {
				return bad()
			}
			rec := Record{Seq: seq, Type: typ}
			if len(data) > 0 {
				rec.Data = append([]byte(nil), data...)
			}
			df.summary = append(df.summary, rec)
		}
		if r.off != len(payload) {
			return bad()
		}
		return df, nil
	default:
		return bad()
	}
}

// --- journal backend --------------------------------------------------------

// binaryJournal routes a session's appends to the engine's group-commit
// writer.
type binaryJournal struct {
	e   *binaryEngine
	sid string
}

func (bj *binaryJournal) append(rec Record, terminal bool) error {
	flag := byte(flagData)
	if terminal {
		flag = flagTerminal
	}
	return bj.e.submit(encodeFrame(encodeRecordPayload(flag, bj.sid, rec)), bj.sid, flag, terminal)
}

func (bj *binaryJournal) close() error { return nil }

// remove appends a tombstone frame: the session's records stay in their
// segments until compaction, but recovery drops them.
func (bj *binaryJournal) remove() error {
	return bj.e.submit(encodeFrame(encodeTombstonePayload(bj.sid)), bj.sid, flagTombstone, true)
}

// CreateJournal registers a new session id and returns its journal. The
// id must never have been used in this wal — tombstoned ids included, so
// a removed session's tombstone can never shadow a live one.
func (e *binaryEngine) CreateJournal(id string) (*Journal, error) {
	if id == "" {
		return nil, fmt.Errorf("store: empty journal id")
	}
	if err := e.ensureScanned(); err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, fmt.Errorf("store: engine is closed")
	}
	if _, dup := e.sids[id]; dup {
		return nil, fmt.Errorf("store: journal %s already exists", id)
	}
	e.sids[id] = struct{}{}
	e.journalsActive++
	return &Journal{
		notify: make(chan struct{}),
		name:   id,
		b:      &binaryJournal{e: e, sid: id},
	}, nil
}

// ensureScanned populates the known-session-id set on first use, so a
// server that skips Recover still cannot collide with ids already in the
// wal (or in legacy text-engine journals sharing the directory). Runs
// before any append, so repairing a torn tail here is safe.
func (e *binaryEngine) ensureScanned() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.scanned {
		return nil
	}
	segs, err := e.listSegments()
	if err != nil {
		return err
	}
	// ids-only mode: sealed segments with an index footer contribute their
	// session ids without a single frame read, so a server that skips
	// Recover starts in O(footers) instead of O(wal bytes).
	sessions, err := e.scanSegments(segs, walScanOptions{truncateTail: true, idsOnly: true})
	if err != nil {
		return err
	}
	for sid := range sessions {
		e.sids[sid] = struct{}{}
	}
	for _, id := range legacyJournalIDs(e.dir) {
		e.sids[id] = struct{}{}
	}
	e.scanned = true
	return nil
}

// legacyJournalIDs lists the session ids of text-engine JSONL journals in
// the data directory.
func legacyJournalIDs(dir string) []string {
	entries, err := os.ReadDir(filepath.Join(dir, "sessions"))
	if err != nil {
		return nil
	}
	var ids []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".jsonl") {
			continue
		}
		id, err := url.PathUnescape(strings.TrimSuffix(name, ".jsonl"))
		if err != nil {
			id = strings.TrimSuffix(name, ".jsonl")
		}
		ids = append(ids, id)
	}
	return ids
}

// RecoverSessions replays the wal into per-session journals. A data
// directory that was previously run with the text engine is migrated in
// place: its JSONL journals recover alongside the wal sessions (keeping
// their per-file append path), so switching -store-engine never abandons
// a session. It must run before the first append: afterwards the writer
// owns the tail and the scan's torn-tail truncation would race it.
func (e *binaryEngine) RecoverSessions() ([]RecoveredSession, error) {
	e.mu.Lock()
	if e.started {
		e.mu.Unlock()
		return nil, fmt.Errorf("store: recover after appends have started")
	}
	if e.compacting {
		e.mu.Unlock()
		return nil, fmt.Errorf("store: recover while a compaction is running")
	}
	sessions, err := e.scanWal(true)
	if err != nil {
		e.mu.Unlock()
		return nil, err
	}
	for sid := range sessions {
		e.sids[sid] = struct{}{}
	}
	out := make([]RecoveredSession, 0, len(sessions))
	for sid, sc := range sessions {
		if sc.tombstoned {
			continue
		}
		e.m.recoveredSessions.Add(1)
		e.journalsActive++
		out = append(out, RecoveredSession{
			ID: sid,
			Journal: &Journal{
				notify: make(chan struct{}),
				recs:   sc.recs,
				name:   sid,
				b:      &binaryJournal{e: e, sid: sid},
			},
		})
	}
	legacy, err := recoverSessionDir(filepath.Join(e.dir, "sessions"), &e.m)
	if err != nil {
		e.mu.Unlock()
		return nil, err
	}
	for _, rs := range legacy {
		if _, dup := e.sids[rs.ID]; dup {
			// A wal session shadows a same-id legacy journal (possible only
			// if someone hand-copied files); the wal is authoritative.
			_ = rs.Journal.Close()
			continue
		}
		e.sids[rs.ID] = struct{}{}
		e.journalsActive++
		out = append(out, rs)
	}
	e.scanned = true
	e.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// --- wal scanning -----------------------------------------------------------

type segInfo struct {
	idx  uint64
	path string
	size int64
}

func (e *binaryEngine) listSegments() ([]segInfo, error) {
	return listSegmentDir(e.walDir())
}

// listSegmentDir enumerates the wal segments of a directory in index
// order. Shared by the engine and the replication applier, which
// maintains a physical wal replica without opening an engine.
func listSegmentDir(walDir string) ([]segInfo, error) {
	entries, err := os.ReadDir(walDir)
	if err != nil {
		return nil, fmt.Errorf("store: list segments: %w", err)
	}
	segs := make([]segInfo, 0, len(entries))
	for _, ent := range entries {
		if ent.IsDir() {
			continue
		}
		idx, ok := segmentIndex(ent.Name())
		if !ok {
			continue
		}
		info, err := ent.Info()
		if err != nil {
			return nil, fmt.Errorf("store: list segments: %w", err)
		}
		segs = append(segs, segInfo{idx: idx, path: filepath.Join(walDir, ent.Name()), size: info.Size()})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].idx < segs[j].idx })
	return segs, nil
}

// scanSession accumulates one session's surviving state during a scan.
type scanSession struct {
	recs       []Record
	finished   bool
	tombstoned bool
	// gapped records that at least one out-of-sequence record was dropped
	// (for the TruncatedJournals metric, counted once per session).
	gapped bool
}

// walScanOptions selects a scan variant.
type walScanOptions struct {
	// truncateTail cuts a structurally torn tail of the final segment off
	// on disk (and fsyncs), exactly like the text engine truncates a torn
	// JSONL line. Only safe before the writer's first append.
	truncateTail bool
	// idsOnly skips record accumulation: sealed segments with a valid
	// index footer contribute their session ids without a single frame
	// being read, and frames that are decoded only update id-level state.
	idsOnly bool
}

// scanWal replays every segment, streaming each one frame at a time.
func (e *binaryEngine) scanWal(truncate bool) (map[string]*scanSession, error) {
	segs, err := e.listSegments()
	if err != nil {
		return nil, err
	}
	return e.scanSegments(segs, walScanOptions{truncateTail: truncate})
}

// scanSegments replays the given segments in index order. The last listed
// segment is treated as the (possibly torn) tail; every earlier one is
// sealed: structural damage there skips to the next footer-known frame
// boundary when the segment has an index footer, or to the next segment
// when it does not.
func (e *binaryEngine) scanSegments(segs []segInfo, opts walScanOptions) (map[string]*scanSession, error) {
	sessions := make(map[string]*scanSession)
	session := func(sid string) *scanSession {
		sc := sessions[sid]
		if sc == nil {
			sc = &scanSession{}
			sessions[sid] = sc
		}
		return sc
	}
	for si, seg := range segs {
		last := si == len(segs)-1
		if opts.idsOnly && !last {
			if entries, _, ok := readSegmentFooter(seg.path, seg.size); ok {
				for _, ent := range entries {
					sc := session(ent.sid)
					sc.tombstoned = sc.tombstoned || ent.tombstoned
					sc.finished = sc.finished || ent.finished
				}
				e.m.footerHits.Add(1)
				continue
			}
			e.m.footerFallbacks.Add(1)
		}
		if err := e.scanSegmentFrames(seg, last, opts, sessions, session); err != nil {
			return nil, err
		}
	}
	return sessions, nil
}

// scanSegmentFrames streams one segment's frames into the scan state.
func (e *binaryEngine) scanSegmentFrames(seg segInfo, last bool, opts walScanOptions, sessions map[string]*scanSession, session func(string) *scanSession) error {
	sc, err := openFrameScanner(seg.path)
	if err != nil {
		return err
	}
	defer sc.close()
	// resync holds the segment's footer-known frame boundaries, loaded
	// lazily at the first structural fault; nil until then, empty when the
	// segment has no usable footer.
	var resyncOffsets []int64
	resyncLoaded := false
	for {
		fr, err := sc.next()
		switch {
		case err == io.EOF:
			return nil
		case errors.Is(err, errTornFrame):
			if last {
				// A torn tail: everything from here on was mid-write at the
				// crash. Truncate it away when repairing.
				if opts.truncateTail {
					if err := truncateSegment(seg.path, fr.off); err != nil {
						return err
					}
				}
				e.m.truncatedJournals.Add(1)
				return nil
			}
			// Structural damage in a sealed segment: framing is lost. With
			// an index footer the scan jumps to the next known frame
			// boundary; without one the rest of the segment is skipped.
			e.m.corruptFrames.Add(1)
			if !resyncLoaded {
				resyncLoaded = true
				if entries, indexOff, ok := readSegmentFooter(seg.path, seg.size); ok {
					resyncOffsets = footerOffsets(entries, indexOff)
					e.m.footerHits.Add(1)
				} else {
					e.m.footerFallbacks.Add(1)
				}
			}
			next, ok := nextOffsetAfter(resyncOffsets, fr.off)
			if !ok {
				return nil
			}
			if err := sc.resync(next); err != nil {
				return err
			}
		case errors.Is(err, errBadCRC):
			if last {
				// A CRC failure at the tail is indistinguishable from a torn
				// write; stop (and truncate) here.
				if opts.truncateTail {
					if err := truncateSegment(seg.path, fr.off); err != nil {
						return err
					}
				}
				e.m.truncatedJournals.Add(1)
				return nil
			}
			// Mid-log bit flip in a sealed segment: the framing is intact,
			// so skip just this frame. The per-session sequence check then
			// truncates the affected session at the gap.
			e.m.corruptFrames.Add(1)
		case err != nil:
			return err
		default:
			df, err := decodePayload(fr.payload)
			if err != nil {
				e.m.corruptFrames.Add(1)
				continue
			}
			if df.flag == flagIndex || df.flag == flagTrailer || df.flag == flagEpoch {
				continue
			}
			if opts.idsOnly {
				s := session(df.sid)
				switch df.flag {
				case flagTombstone:
					s.tombstoned = true
				case flagTerminal, flagSummary:
					s.finished = true
				}
				continue
			}
			applyFrame(sessions, df, &e.m)
		}
	}
}

// nextOffsetAfter returns the smallest offset strictly greater than off.
func nextOffsetAfter(offsets []int64, off int64) (int64, bool) {
	i := sort.Search(len(offsets), func(i int) bool { return offsets[i] > off })
	if i == len(offsets) {
		return 0, false
	}
	return offsets[i], true
}

func truncateSegment(path string, size int64) error {
	if err := os.Truncate(path, size); err != nil {
		return fmt.Errorf("store: truncate segment %s: %w", path, err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: truncate segment %s: %w", path, err)
	}
	defer f.Close()
	if err := f.Sync(); err != nil {
		return fmt.Errorf("store: truncate segment %s: %w", path, err)
	}
	return nil
}

// applyFrame folds one decoded frame into the scan state.
func applyFrame(sessions map[string]*scanSession, df decodedFrame, m *metrics) {
	sc := sessions[df.sid]
	if sc == nil {
		sc = &scanSession{}
		sessions[df.sid] = sc
	}
	switch df.flag {
	case flagTombstone:
		sc.tombstoned = true
		sc.recs = nil
	case flagSummary:
		if sc.tombstoned {
			return
		}
		sc.recs = df.summary
		sc.finished = true
	case flagData, flagTerminal:
		if sc.tombstoned {
			return
		}
		// A record whose sequence number does not extend the session's
		// valid prefix is dropped — but only that record, not the session:
		// after a mid-log frame loss, the resumed session re-journals the
		// lost records at the correct sequence numbers *behind* the stale
		// ones, and this rule makes every later scan converge on the same
		// repaired prefix.
		if df.rec.Seq != uint64(len(sc.recs))+1 {
			if !sc.gapped {
				sc.gapped = true
				m.truncatedJournals.Add(1)
			}
			return
		}
		sc.recs = append(sc.recs, df.rec)
		if df.flag == flagTerminal {
			sc.finished = true
		}
	}
}

// --- compaction -------------------------------------------------------------

func (e *binaryEngine) compactDir() string { return filepath.Join(e.dir, "wal.compact") }
func (e *binaryEngine) oldDir() string     { return filepath.Join(e.dir, "wal.old") }

// repairCompaction finishes (or rolls back) a compaction interrupted by a
// crash, using the invariant that wal.compact is fully written and synced
// before the first rename:
//
//	wal + wal.compact        crash before the swap    → drop wal.compact
//	wal.compact, no wal      crash mid-swap           → promote wal.compact
//	wal + wal.old            crash before cleanup     → drop wal.old
//	wal.old only             (unreachable)            → restore wal.old
func (e *binaryEngine) repairCompaction() error {
	exists := func(p string) bool {
		_, err := os.Stat(p)
		return err == nil
	}
	walExists := exists(e.walDir())
	switch {
	case !walExists && exists(e.compactDir()):
		if err := os.Rename(e.compactDir(), e.walDir()); err != nil {
			return fmt.Errorf("store: repair compaction: %w", err)
		}
		if err := syncDir(e.dir); err != nil {
			return fmt.Errorf("store: repair compaction: %w", err)
		}
	case !walExists && exists(e.oldDir()):
		if err := os.Rename(e.oldDir(), e.walDir()); err != nil {
			return fmt.Errorf("store: repair compaction: %w", err)
		}
		if err := syncDir(e.dir); err != nil {
			return fmt.Errorf("store: repair compaction: %w", err)
		}
	}
	for _, leftover := range []string{e.compactDir(), e.oldDir()} {
		if exists(leftover) {
			if err := os.RemoveAll(leftover); err != nil {
				return fmt.Errorf("store: repair compaction: %w", err)
			}
		}
	}
	return nil
}

// Compact rewrites the wal: tombstoned sessions disappear, finished
// sessions collapse to one summary frame each, live sessions carry their
// full record list over, and dead segments are retired. Before any
// journal exists (gpsd -compact at boot) the whole wal is rewritten with
// the engine quiescent; once journals are out — appends possibly in
// flight — Compact switches to the live protocol: the writer goroutine
// seals the active segment, only the sealed segments are compacted, and
// the swap hard-links the segments written meanwhile into the new wal so
// the writer's open file descriptor survives the rename. Both modes share
// the crash-safe swap: wal.compact is fully fsynced before the first
// rename, and repairCompaction can always finish or undo the two-rename
// swap. A second Compact while one is running fails with ErrCompacting.
func (e *binaryEngine) Compact() (CompactionReport, error) {
	e.mu.Lock()
	rep := CompactionReport{Supported: true}
	if e.closed {
		e.mu.Unlock()
		return rep, fmt.Errorf("store: engine is closed")
	}
	if e.compacting {
		e.mu.Unlock()
		return rep, fmt.Errorf("store: %w", ErrCompacting)
	}
	e.compacting = true
	if !e.started && e.journalsActive == 0 {
		defer e.mu.Unlock()
		defer func() { e.compacting = false }()
		return e.compactOffline()
	}
	e.mu.Unlock()
	rep, err := e.compactLive()
	e.mu.Lock()
	e.compacting = false
	e.mu.Unlock()
	return rep, err
}

// compactOffline rewrites the whole wal while the engine is quiescent.
// Caller holds e.mu.
func (e *binaryEngine) compactOffline() (CompactionReport, error) {
	rep := CompactionReport{Supported: true}
	// Same idle guard as compactLive: a compaction ticker over an engine
	// nobody has written to (a promoted standby whose sessions are all
	// finished, an empty daemon) must not rewrite the wal every tick —
	// each pass's generation bump would force followers into an endless
	// resync loop.
	frames0 := e.repl.snapshot().Frames
	if e.lastCompactFrames.Load() == frames0+1 {
		return rep, nil
	}
	sessions, err := e.scanWal(true)
	if err != nil {
		return rep, err
	}
	segs, err := e.listSegments()
	if err != nil {
		return rep, err
	}
	if len(segs) == 0 {
		// Nothing on disk: no rewrite, no swap, no generation bump.
		e.lastCompactFrames.Store(frames0 + 1)
		return rep, nil
	}
	for _, s := range segs {
		rep.BytesBefore += s.size
	}
	rep.SegmentsRetired = len(segs)
	cw, err := e.writeCompacted(sessions, 0, &rep)
	if err != nil {
		return rep, err
	}
	rep.SegmentsWritten = cw.segments
	rep.BytesAfter = cw.bytes

	// The swap. wal.compact is durable; two renames move it into place.
	if err := os.RemoveAll(e.oldDir()); err != nil {
		return rep, fmt.Errorf("store: compact: %w", err)
	}
	if err := os.Rename(e.walDir(), e.oldDir()); err != nil {
		return rep, fmt.Errorf("store: compact: %w", err)
	}
	if err := os.Rename(e.compactDir(), e.walDir()); err != nil {
		return rep, fmt.Errorf("store: compact: %w", err)
	}
	if err := syncDir(e.dir); err != nil {
		return rep, fmt.Errorf("store: compact: %w", err)
	}
	if err := os.RemoveAll(e.oldDir()); err != nil {
		return rep, fmt.Errorf("store: compact: %w", err)
	}
	segs, err = e.listSegments()
	if err != nil {
		return rep, err
	}
	e.nextSeg = 0
	if len(segs) > 0 {
		e.nextSeg = segs[len(segs)-1].idx
	}
	// Let the first post-compaction commit append to the compacted tail.
	e.tailTried = false
	// The published position pointed into the retired wal; re-point it at
	// the compacted tail so feeds tail real bytes.
	var tailSeg uint64
	var tailOff int64
	if len(segs) > 0 {
		tailSeg, tailOff = segs[len(segs)-1].idx, segs[len(segs)-1].size
	}
	e.repl.rebase(tailSeg, tailOff)
	e.m.compactionRuns.Add(1)
	e.m.compactedSessions.Add(int64(rep.SessionsCompacted))
	e.m.retiredSegments.Add(int64(rep.SegmentsRetired))
	e.lastCompactFrames.Store(frames0 + 1)
	return rep, nil
}

// compactLive compacts the wal while appends continue. The writer
// goroutine is asked (via control requests, each running between two
// commit batches) to do the only two steps that must exclude appends:
// sealing the active segment and swapping the directories. Everything in
// between — scanning the sealed segments and writing wal.compact — runs
// on the calling goroutine with appends flowing into fresh segments
// beyond the seal boundary.
func (e *binaryEngine) compactLive() (CompactionReport, error) {
	rep := CompactionReport{Supported: true}
	// Nothing appended since the last completed pass means nothing to
	// collapse or retire: the previous pass already did it. Skip without
	// sealing or bumping the generation — an idle primary on a compaction
	// ticker must go quiet, not rewrite the same segments forever while
	// each pass's generation bump resyncs every follower from scratch.
	frames0 := e.repl.snapshot().Frames
	if e.lastCompactFrames.Load() == frames0+1 {
		return rep, nil
	}
	if err := e.faultPoint("compact-begin"); err != nil {
		return rep, err
	}
	var boundary uint64
	err := e.control(func() error {
		if e.segErr != nil {
			return e.segErr
		}
		if err := e.sealCurrent(); err != nil {
			e.segErr = err
			return err
		}
		// The sealed tail must not be reopened by a later rotate; the next
		// commit starts a fresh segment beyond the boundary.
		e.tailTried = true
		boundary = e.nextSeg
		return nil
	})
	if err != nil {
		return rep, err
	}
	segs, err := e.listSegments()
	if err != nil {
		return rep, err
	}
	sealed := segs[:0:0]
	for _, s := range segs {
		if s.idx <= boundary {
			sealed = append(sealed, s)
		}
	}
	if len(sealed) == 0 {
		return rep, nil
	}
	for _, s := range sealed {
		rep.BytesBefore += s.size
	}
	rep.SegmentsRetired = len(sealed)

	// Every sealed segment is immutable now, so this scan cannot race the
	// writer; no torn-tail truncation (the boundary segment ends at a
	// clean seal or wherever the last commit left it).
	sessions, err := e.scanSegments(sealed, walScanOptions{})
	if err != nil {
		return rep, err
	}
	if err := e.faultPoint("compact-scanned"); err != nil {
		return rep, err
	}
	cw, err := e.writeCompacted(sessions, boundary, &rep)
	if err != nil {
		return rep, err
	}
	rep.SegmentsWritten = cw.segments
	rep.BytesAfter = cw.bytes
	if err := e.faultPoint("compact-written"); err != nil {
		return rep, err
	}
	if err := e.control(func() error { return e.swapCompacted(boundary, cw.idx, cw.off) }); err != nil {
		return rep, err
	}
	e.m.compactionRuns.Add(1)
	e.m.compactedSessions.Add(int64(rep.SessionsCompacted))
	e.m.retiredSegments.Add(int64(rep.SegmentsRetired))
	// Appends racing this pass land beyond the seal boundary and raise the
	// published count past frames0, so the next tick still runs.
	e.lastCompactFrames.Store(frames0 + 1)
	if err := e.faultPoint("compact-done"); err != nil {
		return rep, err
	}
	return rep, nil
}

// writeCompacted writes the compacted form of the scanned sessions into a
// fresh wal.compact and makes it durable. maxSeg bounds the output
// segment indices (live mode: they must stay at or below the seal
// boundary so they sort before, and never collide with, the segments the
// writer keeps creating); 0 means unbounded.
func (e *binaryEngine) writeCompacted(sessions map[string]*scanSession, maxSeg uint64, rep *CompactionReport) (*compactWriter, error) {
	// Deterministic rewrite order keeps equivalence tests simple.
	sids := make([]string, 0, len(sessions))
	for sid := range sessions {
		sids = append(sids, sid)
	}
	sort.Strings(sids)

	if err := os.RemoveAll(e.compactDir()); err != nil {
		return nil, fmt.Errorf("store: compact: %w", err)
	}
	if err := os.MkdirAll(e.compactDir(), 0o755); err != nil {
		return nil, fmt.Errorf("store: compact: %w", err)
	}
	// The compacted wal is a new generation: its GEN file carries the
	// incremented counter and rides the two-rename swap into place. A
	// replication follower that streamed the retired segments sees the
	// generation change and re-syncs from scratch instead of wedging.
	if err := writeCounterFile(filepath.Join(e.compactDir(), walGenFile), e.repl.snapshot().Gen+1); err != nil {
		return nil, fmt.Errorf("store: compact: %w", err)
	}
	cw := &compactWriter{dir: e.compactDir(), limit: e.segmentSize, maxSeg: maxSeg, epoch: e.repl.snapshot().Epoch, m: &e.m}
	for _, sid := range sids {
		sc := sessions[sid]
		switch {
		case sc.tombstoned:
			rep.SessionsDropped++
		case sc.finished:
			if err := cw.write(encodeFrame(encodeSummaryPayload(sid, summarizeFinished(sc.recs))), sid, flagSummary); err != nil {
				return nil, err
			}
			rep.SessionsCompacted++
		default:
			for _, rec := range sc.recs {
				if err := cw.write(encodeFrame(encodeRecordPayload(flagData, sid, rec)), sid, flagData); err != nil {
					return nil, err
				}
			}
		}
	}
	if err := cw.finish(); err != nil {
		return nil, err
	}
	return cw, nil
}

// swapCompacted moves wal.compact into place while the writer (which runs
// this as a control request) holds appends back. Segments created since
// the seal boundary are hard-linked into the new wal first: the links
// preserve the inodes, so the writer's open segment file descriptor stays
// valid across the rename and appends resume on the same file the moment
// the swap ends. A failure between the two renames poisons the engine —
// the wal directory is gone and only a restart (repairCompaction) can
// recover it. tailSeg/tailOff name the compacted output's last segment
// and its durable size, for re-pointing the published feed position.
func (e *binaryEngine) swapCompacted(boundary, tailSeg uint64, tailOff int64) error {
	if e.segErr != nil {
		return e.segErr
	}
	if err := e.faultPoint("compact-swap-begin"); err != nil {
		return err
	}
	segs, err := e.listSegments()
	if err != nil {
		return err
	}
	for _, s := range segs {
		if s.idx <= boundary {
			continue
		}
		if err := os.Link(s.path, filepath.Join(e.compactDir(), filepath.Base(s.path))); err != nil {
			return fmt.Errorf("store: compact: link live segment: %w", err)
		}
	}
	if err := syncDir(e.compactDir()); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := e.faultPoint("compact-linked"); err != nil {
		return err
	}
	if err := os.RemoveAll(e.oldDir()); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := os.Rename(e.walDir(), e.oldDir()); err != nil {
		e.segErr = fmt.Errorf("store: compact: %w", err)
		return e.segErr
	}
	if err := e.faultPoint("compact-swap-mid"); err != nil {
		e.segErr = err
		return err
	}
	if err := os.Rename(e.compactDir(), e.walDir()); err != nil {
		e.segErr = fmt.Errorf("store: compact: %w", err)
		return e.segErr
	}
	if err := syncDir(e.dir); err != nil {
		e.segErr = fmt.Errorf("store: compact: %w", err)
		return e.segErr
	}
	// If appends raced the pass past the seal boundary, the published
	// position lives in a hard-linked live segment and survives the swap
	// verbatim; otherwise it pointed into a retired segment and must move
	// to the compacted tail.
	if st := e.repl.snapshot(); st.Seg > boundary {
		tailSeg, tailOff = st.Seg, st.Off
	}
	e.repl.rebase(tailSeg, tailOff)
	if err := e.faultPoint("compact-swapped"); err != nil {
		// The swap is complete and consistent; only the wal.old cleanup was
		// skipped, which the next open's repairCompaction removes.
		return err
	}
	if err := os.RemoveAll(e.oldDir()); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	return nil
}

// summarizeFinished collapses a finished transcript to its opening record
// and its terminal record, renumbered from 1. The service's record schema
// opens every journal with a create record and closes a finished one with
// a done/failed record carrying the final state; the question/answer
// chatter in between only matters for resuming an *unfinished* session,
// so a finished session does not need it back.
func summarizeFinished(recs []Record) []Record {
	if len(recs) > 2 {
		recs = []Record{recs[0], recs[len(recs)-1]}
	}
	out := make([]Record, len(recs))
	copy(out, recs)
	for i := range out {
		out[i].Seq = uint64(i) + 1
	}
	return out
}

// compactWriter rolls compacted frames into fresh, fsynced segments, each
// sealed with an index footer. maxSeg, when non-zero, caps the output
// segment indices: the last segment overpacks past the size limit rather
// than colliding with a live segment beyond the seal boundary.
type compactWriter struct {
	dir      string
	limit    int64
	maxSeg   uint64
	epoch    uint64
	m        *metrics
	f        *os.File
	off      int64
	idx      uint64
	segments int
	bytes    int64
	index    *segIndexBuilder
}

func (w *compactWriter) write(frame []byte, sid string, flag byte) error {
	if w.f == nil || (w.off >= w.limit && (w.maxSeg == 0 || w.idx < w.maxSeg)) {
		if err := w.closeCurrent(); err != nil {
			return err
		}
		w.idx++
		f, err := os.OpenFile(segmentPath(w.dir, w.idx), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err != nil {
			return fmt.Errorf("store: compact: %w", err)
		}
		w.f = f
		w.off = 0
		w.segments++
		w.index = newSegIndexBuilder()
		if w.epoch > 0 {
			ef := encodeFrame(encodeEpochPayload(w.epoch))
			if _, err := w.f.Write(ef); err != nil {
				return fmt.Errorf("store: compact: %w", err)
			}
			w.off += int64(len(ef))
			w.bytes += int64(len(ef))
		}
	}
	w.index.add(sid, flag, w.off)
	if _, err := w.f.Write(frame); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	w.off += int64(len(frame))
	w.bytes += int64(len(frame))
	return nil
}

func (w *compactWriter) closeCurrent() error {
	if w.f == nil {
		return nil
	}
	if w.index != nil && !w.index.empty() {
		footer := encodeSegmentFooter(w.index.entries(), w.off)
		if _, err := w.f.Write(footer); err != nil {
			w.f.Close()
			return fmt.Errorf("store: compact: %w", err)
		}
		w.off += int64(len(footer))
		w.bytes += int64(len(footer))
		if w.m != nil {
			w.m.footersWritten.Add(1)
		}
	}
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	w.f = nil
	w.index = nil
	return nil
}

func (w *compactWriter) finish() error {
	if err := w.closeCurrent(); err != nil {
		return err
	}
	if err := syncDir(w.dir); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	return nil
}

// interface conformance checks.
var (
	_ Engine = (*Store)(nil)
	_ Engine = (*binaryEngine)(nil)
)
