package store

import "repro/internal/obs"

// RegisterMetrics exposes the engine's counters on the observability
// registry as gpsd_store_* families, each labelled with the engine name.
// The samples are produced at scrape time from the same atomics the JSON
// Metrics snapshot reads, so /metrics and /v1/stats can never disagree.
// Families that only the binary engine drives (group commit, segments,
// compaction, footers) read zero on the text engine, which Prometheus
// treats the same as "nothing happened yet".
func RegisterMetrics(reg *obs.Registry, e Engine) {
	engine := obs.L("engine", e.EngineName())
	counters := []struct {
		name, help string
		get        func(Metrics) float64
	}{
		{"gpsd_store_journal_appends_total", "Durable journal records appended.",
			func(m Metrics) float64 { return float64(m.JournalAppends) }},
		{"gpsd_store_journal_bytes_total", "On-disk bytes of appended journal records.",
			func(m Metrics) float64 { return float64(m.JournalBytes) }},
		{"gpsd_store_fsyncs_total", "Journal fsync calls (one per group-commit batch on the binary engine).",
			func(m Metrics) float64 { return float64(m.Fsyncs) }},
		{"gpsd_store_group_commits_total", "Group-commit batches flushed by the binary engine.",
			func(m Metrics) float64 { return float64(m.GroupCommits) }},
		{"gpsd_store_segments_created_total", "Segment files opened since boot (binary engine).",
			func(m Metrics) float64 { return float64(m.SegmentsCreated) }},
		{"gpsd_store_snapshot_saves_total", "Graph snapshot writes.",
			func(m Metrics) float64 { return float64(m.SnapshotSaves) }},
		{"gpsd_store_snapshot_bytes_total", "Bytes written by graph snapshot saves.",
			func(m Metrics) float64 { return float64(m.SnapshotBytes) }},
		{"gpsd_store_recovered_graphs_total", "Graph snapshots restored at recovery since boot.",
			func(m Metrics) float64 { return float64(m.RecoveredGraphs) }},
		{"gpsd_store_recovered_sessions_total", "Session journals replayed at recovery since boot.",
			func(m Metrics) float64 { return float64(m.RecoveredSessions) }},
		{"gpsd_store_truncated_journals_total", "Journals cut back to a valid prefix during recovery.",
			func(m Metrics) float64 { return float64(m.TruncatedJournals) }},
		{"gpsd_store_corrupt_snapshots_total", "Snapshot files that failed their integrity check and were skipped.",
			func(m Metrics) float64 { return float64(m.CorruptSnapshots) }},
		{"gpsd_store_corrupt_frames_total", "CRC-failed segment frames skipped by the binary engine.",
			func(m Metrics) float64 { return float64(m.CorruptFrames) }},
		{"gpsd_store_compaction_runs_total", "Completed journal compaction passes.",
			func(m Metrics) float64 { return float64(m.CompactionRuns) }},
		{"gpsd_store_compacted_sessions_total", "Finished sessions collapsed to summary records by compaction.",
			func(m Metrics) float64 { return float64(m.CompactedSessions) }},
		{"gpsd_store_retired_segments_total", "Dead segment files removed by compaction.",
			func(m Metrics) float64 { return float64(m.RetiredSegments) }},
		{"gpsd_store_wal_footers_written_total", "Per-session index footers written at segment seal.",
			func(m Metrics) float64 { return float64(m.FootersWritten) }},
		{"gpsd_store_wal_footer_hits_total", "Sealed-segment scans served from an index footer.",
			func(m Metrics) float64 { return float64(m.FooterHits) }},
		{"gpsd_store_wal_footer_fallbacks_total", "Sealed-segment scans that fell back to reading every frame.",
			func(m Metrics) float64 { return float64(m.FooterFallbacks) }},
	}
	for _, c := range counters {
		get := c.get
		reg.SampleFunc(c.name, c.help, obs.KindCounter, func() []obs.Sample {
			return []obs.Sample{{Labels: []obs.Label{engine}, Value: get(e.Metrics())}}
		})
	}
	gauges := []struct {
		name, help string
		get        func(Metrics) float64
	}{
		{"gpsd_store_fsync_mean_seconds", "Mean journal fsync latency since boot.",
			func(m Metrics) float64 { return m.FsyncMeanMicros * 1e-6 }},
		{"gpsd_store_group_commit_mean_batch", "Mean appends per group-commit fsync since boot.",
			func(m Metrics) float64 { return m.MeanBatch }},
	}
	for _, g := range gauges {
		get := g.get
		reg.SampleFunc(g.name, g.help, obs.KindGauge, func() []obs.Sample {
			return []obs.Sample{{Labels: []obs.Label{engine}, Value: get(e.Metrics())}}
		})
	}
}
