// Package render draws graphs, neighbourhood fragments and prefix trees as
// text (ASCII) and Graphviz DOT. It is the terminal stand-in for the demo's
// visual widgets: Figure 3(a,b) — a zoomable neighbourhood with the newly
// revealed part highlighted and "..." markers on the frontier — and Figure
// 3(c) — a prefix tree with a highlighted candidate path.
package render

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/graph"
	"repro/internal/paths"
)

// DOT renders the whole graph in Graphviz DOT syntax. Node kinds (the
// "kind" attribute) select shapes: neighbourhoods are ellipses, facilities
// are boxes.
func DOT(g *graph.Graph) string {
	var sb strings.Builder
	sb.WriteString("digraph G {\n  rankdir=LR;\n")
	for _, id := range g.Nodes() {
		shape := "ellipse"
		if kind, ok := g.Attr(id, "kind"); ok && kind != "neighborhood" {
			shape = "box"
		}
		fmt.Fprintf(&sb, "  %q [shape=%s];\n", id, shape)
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&sb, "  %q -> %q [label=%q];\n", e.From, e.To, e.Label)
	}
	sb.WriteString("}\n")
	return sb.String()
}

// NeighborhoodDOT renders a neighbourhood fragment in DOT, highlighting the
// centre node, drawing the nodes and edges added with respect to prev in
// blue (as the paper does when the user zooms out), and attaching a "..."
// marker to frontier nodes.
func NeighborhoodDOT(n *graph.Neighborhood, prev *graph.Neighborhood) string {
	addedNodes, addedEdges := n.Added(prev)
	isNewNode := make(map[graph.NodeID]bool, len(addedNodes))
	for _, id := range addedNodes {
		isNewNode[id] = true
	}
	isNewEdge := make(map[graph.Edge]bool, len(addedEdges))
	for _, e := range addedEdges {
		isNewEdge[e] = true
	}
	frontier := make(map[graph.NodeID]bool, len(n.Frontier))
	for _, id := range n.Frontier {
		frontier[id] = true
	}

	var sb strings.Builder
	sb.WriteString("digraph Neighborhood {\n  rankdir=LR;\n")
	for _, id := range n.Fragment.Nodes() {
		attrs := []string{}
		if id == n.Center {
			attrs = append(attrs, "style=filled", "fillcolor=gold")
		} else if prev != nil && isNewNode[id] {
			attrs = append(attrs, "color=blue", "fontcolor=blue")
		}
		shape := "ellipse"
		if kind, ok := n.Fragment.Attr(id, "kind"); ok && kind != "neighborhood" {
			shape = "box"
		}
		attrs = append(attrs, "shape="+shape)
		fmt.Fprintf(&sb, "  %q [%s];\n", id, strings.Join(attrs, ","))
		if frontier[id] {
			fmt.Fprintf(&sb, "  %q [label=\"...\",shape=plaintext];\n", string(id)+"_more")
			fmt.Fprintf(&sb, "  %q -> %q [style=dotted];\n", id, string(id)+"_more")
		}
	}
	for _, e := range n.Fragment.Edges() {
		style := ""
		if prev != nil && isNewEdge[e] {
			style = ",color=blue,fontcolor=blue"
		}
		fmt.Fprintf(&sb, "  %q -> %q [label=%q%s];\n", e.From, e.To, e.Label, style)
	}
	sb.WriteString("}\n")
	return sb.String()
}

// NeighborhoodASCII renders a neighbourhood fragment as indented text: one
// line per edge, grouped by source node, with "..." on frontier nodes and a
// "+" prefix on nodes/edges newly revealed with respect to prev.
func NeighborhoodASCII(n *graph.Neighborhood, prev *graph.Neighborhood) string {
	addedNodes, addedEdges := n.Added(prev)
	isNewNode := make(map[graph.NodeID]bool, len(addedNodes))
	for _, id := range addedNodes {
		isNewNode[id] = true
	}
	isNewEdge := make(map[graph.Edge]bool, len(addedEdges))
	for _, e := range addedEdges {
		isNewEdge[e] = true
	}
	frontier := make(map[graph.NodeID]bool, len(n.Frontier))
	for _, id := range n.Frontier {
		frontier[id] = true
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "neighborhood of %s (radius %d, %d nodes, %d edges)\n",
		n.Center, n.Radius, n.Fragment.NumNodes(), n.Fragment.NumEdges())
	// Order nodes by distance from the centre, then by ID, so the fragment
	// reads outwards like the paper's figures.
	nodes := n.Fragment.Nodes()
	sort.SliceStable(nodes, func(i, j int) bool {
		di, dj := n.Distance[nodes[i]], n.Distance[nodes[j]]
		if di != dj {
			return di < dj
		}
		return nodes[i] < nodes[j]
	})
	for _, id := range nodes {
		marker := "  "
		if id == n.Center {
			marker = "* "
		} else if prev != nil && isNewNode[id] {
			marker = "+ "
		}
		line := fmt.Sprintf("%s%s (d=%d)", marker, id, n.Distance[id])
		if frontier[id] {
			line += " ..."
		}
		sb.WriteString(line + "\n")
		for _, e := range n.Fragment.Out(id) {
			edgeMarker := "    "
			if prev != nil && isNewEdge[e] {
				edgeMarker = "  + "
			}
			fmt.Fprintf(&sb, "%s-%s-> %s\n", edgeMarker, e.Label, e.To)
		}
	}
	return sb.String()
}

// PrefixTree renders the words as a prefix tree with the candidate word
// highlighted, mirroring Figure 3(c).
func PrefixTree(words [][]string, candidate []string) string {
	return paths.BuildTrie(words).Render(candidate)
}

// PathList renders a list of paths one per line.
func PathList(ps []paths.Path) string {
	var sb strings.Builder
	for _, p := range ps {
		sb.WriteString(p.String())
		sb.WriteString("\n")
	}
	return sb.String()
}
