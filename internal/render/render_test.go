package render

import (
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/paths"
)

func TestDOTContainsNodesAndEdges(t *testing.T) {
	g := dataset.Figure1()
	out := DOT(g)
	if !strings.HasPrefix(out, "digraph G {") || !strings.HasSuffix(strings.TrimSpace(out), "}") {
		t.Fatalf("not a digraph:\n%s", out)
	}
	for _, want := range []string{`"N1"`, `"C1" [shape=box]`, `label="cinema"`, `"N4" -> "C1"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT missing %q:\n%s", want, out)
		}
	}
}

func TestNeighborhoodDOTHighlightsZoom(t *testing.T) {
	g := dataset.Figure1()
	n2 := g.NeighborhoodAround("N2", 2, graph.NeighborhoodOptions{Directed: true})
	n3 := g.NeighborhoodAround("N2", 3, graph.NeighborhoodOptions{Directed: true})
	out := NeighborhoodDOT(n3, n2)
	if !strings.Contains(out, "fillcolor=gold") {
		t.Fatal("centre node should be highlighted")
	}
	if !strings.Contains(out, "color=blue") {
		t.Fatal("newly revealed nodes/edges should be blue")
	}
	// Without a previous fragment nothing is blue.
	out = NeighborhoodDOT(n2, nil)
	if strings.Contains(out, "color=blue") {
		t.Fatal("no blue highlighting expected without a previous fragment")
	}
	if !strings.Contains(out, `label="..."`) {
		t.Fatal("frontier markers expected")
	}
}

func TestNeighborhoodASCII(t *testing.T) {
	g := dataset.Figure1()
	n2 := g.NeighborhoodAround("N2", 2, graph.NeighborhoodOptions{Directed: true})
	n3 := g.NeighborhoodAround("N2", 3, graph.NeighborhoodOptions{Directed: true})
	out := NeighborhoodASCII(n3, n2)
	if !strings.Contains(out, "neighborhood of N2 (radius 3") {
		t.Fatalf("header missing:\n%s", out)
	}
	if !strings.Contains(out, "* N2 (d=0)") {
		t.Fatalf("centre marker missing:\n%s", out)
	}
	if !strings.Contains(out, "+ C1") && !strings.Contains(out, "+ C2") {
		t.Fatalf("newly revealed cinema should be marked with '+':\n%s", out)
	}
	small := NeighborhoodASCII(n2, nil)
	if !strings.Contains(small, "...") {
		t.Fatalf("frontier '...' marker missing:\n%s", small)
	}
}

func TestPrefixTreeAndPathList(t *testing.T) {
	g := dataset.Figure1()
	words := paths.UncoveredWords(g, "N2", []graph.NodeID{"N5"}, 3)
	out := PrefixTree(words, []string{"bus", "bus", "cinema"})
	if !strings.Contains(out, "◀ candidate") {
		t.Fatalf("candidate highlight missing:\n%s", out)
	}
	ps := paths.Enumerate(g, "N4", 1, 0)
	list := PathList(ps)
	if !strings.Contains(list, "N4 -cinema-> C1") {
		t.Fatalf("path list wrong:\n%s", list)
	}
	if len(strings.Split(strings.TrimSpace(list), "\n")) != len(ps) {
		t.Fatal("one line per path expected")
	}
}
