package service

import (
	"fmt"
	"log/slog"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/rpq"
	"repro/internal/rpq/index"
	"repro/internal/store"
)

// GraphHandle is a snapshot-consistent view of one registered graph. The
// service treats registered graphs as immutable: the handle pins the
// structural version observed at registration, and every evaluation path
// checks it, so a graph mutated behind the registry's back is detected
// instead of silently serving mixed-revision answers. Replacing a name
// re-registers a fresh handle; sessions started on the old handle keep
// their old snapshot and cache.
type GraphHandle struct {
	name    string
	g       *graph.Graph
	version uint64
	cache   *rpq.EngineCache
	// owner is the tenant that registered the graph; any tenant may read
	// and evaluate it, but it counts against the owner's MaxGraphs quota.
	owner string
	// idx is the graph's precomputed reachability index (see rpq/index),
	// built in the background after registration; idxState tracks the
	// build. Evaluations consult Index() and simply run without the index
	// until the build lands — results are identical either way.
	idx      atomic.Pointer[index.Index]
	idxState atomic.Int32
}

// Index build states of a GraphHandle.
const (
	indexDisabled int32 = iota
	indexBuilding
	indexReady
)

// indexStateNames renders idxState for JSON views.
var indexStateNames = [...]string{"disabled", "building", "ready"}

// Name returns the registry name of the graph.
func (h *GraphHandle) Name() string { return h.name }

// Graph returns the underlying graph. Callers must not mutate it.
func (h *GraphHandle) Graph() *graph.Graph { return h.g }

// Version returns the structural version the handle was registered at.
func (h *GraphHandle) Version() uint64 { return h.version }

// Cache returns the graph's shared engine cache.
func (h *GraphHandle) Cache() *rpq.EngineCache { return h.cache }

// Index returns the graph's precomputed reachability index, or nil while
// the background build is still running or indexing is disabled. The
// engine cache passes this method as its index provider, so evaluations
// pick the index up the moment it is ready — without flushing anything,
// since indexed and unindexed engines answer identically.
func (h *GraphHandle) Index() *index.Index {
	if h.idxState.Load() != indexReady {
		return nil
	}
	return h.idx.Load()
}

// IndexInfo reports the state of a graph's reachability index for JSON
// views (/v1/graphs, /v1/stats).
type IndexInfo struct {
	State string       `json:"state"`
	Stats *index.Stats `json:"stats,omitempty"`
}

// indexInfo snapshots the handle's index state.
func (h *GraphHandle) indexInfo() IndexInfo {
	info := IndexInfo{State: indexStateNames[h.idxState.Load()]}
	if idx := h.Index(); idx != nil {
		st := idx.Stats()
		info.Stats = &st
	}
	return info
}

// buildIndex runs the background index construction over an Indexed view
// captured synchronously at install time — the goroutine never touches
// the Graph itself, so a caller mutating the graph after registration
// (which Check() reports on the evaluation paths anyway) cannot race the
// build. Indexes are memory-only and never persisted: after a crash
// recovery this runs again rather than trusting stale bytes.
func (h *GraphHandle) buildIndex(ix *graph.Indexed, logger *slog.Logger) {
	idx := index.Build(ix, index.Options{})
	h.idx.Store(idx)
	h.idxState.Store(indexReady)
	st := idx.Stats()
	logger.Info("graph index ready",
		"graph", h.name,
		"bytes", st.Bytes,
		"build_ms", st.BuildMs,
		"closed_labels", st.ClosedLabels,
		"landmarks", st.Landmarks)
}

// Check verifies the snapshot invariant: the graph has not been mutated
// since registration.
func (h *GraphHandle) Check() error {
	if v := h.g.Version(); v != h.version {
		return fmt.Errorf("service: graph %q mutated since registration (version %d, registered at %d)", h.name, v, h.version)
	}
	return nil
}

// Engine returns the shared evaluated engine for the query after checking
// the snapshot invariant.
func (h *GraphHandle) Engine(queryStr string) (*rpq.Engine, error) {
	if err := h.Check(); err != nil {
		return nil, err
	}
	q, err := parseQuery(queryStr)
	if err != nil {
		return nil, err
	}
	return h.cache.Get(q), nil
}

// GraphInfo is the JSON-facing summary of one registered graph. Owner uses
// the wire form (the default tenant is elided), keeping open-mode responses
// byte-identical to the pre-tenancy API.
type GraphInfo struct {
	Name    string         `json:"name"`
	Owner   string         `json:"owner,omitempty"`
	Nodes   int            `json:"nodes"`
	Edges   int            `json:"edges"`
	Labels  int            `json:"labels"`
	Version uint64         `json:"version"`
	Cache   rpq.CacheStats `json:"cache"`
	Index   IndexInfo      `json:"index"`
}

func (h *GraphHandle) info() GraphInfo {
	return GraphInfo{
		Name:    h.name,
		Owner:   wireTenant(h.owner),
		Nodes:   h.g.NumNodes(),
		Edges:   h.g.NumEdges(),
		Labels:  len(h.g.Alphabet()),
		Version: h.version,
		Cache:   h.cache.Stats(),
		Index:   h.indexInfo(),
	}
}

// Registry is the concurrent graph store of the service.
type Registry struct {
	opts Options

	// storeMu serializes Register's {persist snapshot, install} against
	// Remove's {uninstall, delete snapshot}, so the on-disk store never
	// falls out of step with the registry map (a concurrent Remove could
	// otherwise delete the snapshot a replacing Register just wrote,
	// leaving a registered graph that silently vanishes at recovery).
	storeMu sync.Mutex
	mu      sync.RWMutex
	graphs  map[string]*GraphHandle
}

// NewRegistry returns an empty registry.
func NewRegistry(opts Options) *Registry {
	return &Registry{opts: opts.withDefaults(), graphs: make(map[string]*GraphHandle)}
}

// Register installs (or replaces) a graph under the given name for the
// default tenant — the open-mode path and the one embedders use.
func (r *Registry) Register(name string, g *graph.Graph) (*GraphHandle, error) {
	return r.RegisterFor(TenantInfo{Name: DefaultTenant}, name, g)
}

// RegisterFor installs (or replaces) a graph under the given name, owned by
// the tenant and counted against its MaxGraphs quota. The graph must not be
// mutated after registration. On a durable service the snapshot is
// persisted before the graph becomes visible, so a name the client saw
// registered is always recoverable.
func (r *Registry) RegisterFor(tn TenantInfo, name string, g *graph.Graph) (*GraphHandle, error) {
	return r.RegisterForWith(tn, name, g, RegisterOptions{})
}

// RegisterOptions carries per-registration knobs.
type RegisterOptions struct {
	// NoIndex opts this graph out of the background reachability-index
	// build (useful for short-lived graphs not worth the build cost).
	NoIndex bool
}

// RegisterForWith is RegisterFor with per-registration options.
func (r *Registry) RegisterForWith(tn TenantInfo, name string, g *graph.Graph, ro RegisterOptions) (*GraphHandle, error) {
	if name == "" {
		return nil, fmt.Errorf("service: empty graph name")
	}
	if g == nil || g.NumNodes() == 0 {
		return nil, fmt.Errorf("service: graph %q is empty", name)
	}
	r.storeMu.Lock()
	defer r.storeMu.Unlock()
	if c := tn.Limits.MaxGraphs; c > 0 {
		// Replacing a name the tenant already owns does not consume a new
		// quota slot.
		owned := 0
		r.mu.RLock()
		for gname, h := range r.graphs {
			if h.owner == tn.Name && gname != name {
				owned++
			}
		}
		r.mu.RUnlock()
		if owned >= c {
			return nil, fmt.Errorf("service: tenant %q has %d registered graphs (quota %d): %w", tn.Name, owned, c, ErrQuota)
		}
	}
	if r.opts.Store != nil {
		if err := r.opts.Store.SaveGraph(name, g); err != nil {
			return nil, fmt.Errorf("service: %w: %w", ErrStore, err)
		}
	}
	h := r.install(name, g, tn.Name, ro.NoIndex)
	if err := r.saveOwnersLocked(); err != nil {
		return nil, err
	}
	return h, nil
}

// restore installs a graph recovered from the store without re-persisting
// its (already durable) snapshot or the ownership sidecar. The
// reachability index is rebuilt from scratch like any fresh registration:
// indexes are derived, memory-only state and are never trusted across a
// crash.
func (r *Registry) restore(name string, g *graph.Graph, owner string) *GraphHandle {
	return r.install(name, g, owner, false)
}

func (r *Registry) install(name string, g *graph.Graph, owner string, noIndex bool) *GraphHandle {
	h := &GraphHandle{
		name:    name,
		g:       g,
		version: g.Version(),
		owner:   owner,
	}
	h.cache = rpq.NewCacheWith(g, rpq.CacheOptions{
		Capacity: r.opts.CacheCapacity,
		Workers:  r.opts.EvalWorkers,
		Index:    h.Index,
	})
	if !r.opts.DisableIndex && !noIndex {
		h.idxState.Store(indexBuilding)
		// Capture the immutable view now, while registration still owns
		// the graph; the background build must not read the Graph.
		go h.buildIndex(g.Indexed(), r.opts.Logger)
	}
	r.mu.Lock()
	r.graphs[name] = h
	r.mu.Unlock()
	return h
}

// saveOwnersLocked rewrites the graph-ownership sidecar from the registry
// map. Caller holds storeMu, so the sidecar tracks the snapshot set.
func (r *Registry) saveOwnersLocked() error {
	if r.opts.Store == nil {
		return nil
	}
	owners := make(map[string]string)
	r.mu.RLock()
	for name, h := range r.graphs {
		owners[name] = wireTenant(h.owner)
	}
	r.mu.RUnlock()
	if err := store.SaveOwners(r.opts.Store.Dir(), owners); err != nil {
		return fmt.Errorf("service: %w: %w", ErrStore, err)
	}
	return nil
}

// Get returns the handle registered under name.
func (r *Registry) Get(name string) (*GraphHandle, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	h, ok := r.graphs[name]
	return h, ok
}

// Remove drops the name from the registry (and its persisted snapshot, on
// a durable service). Sessions holding the handle keep working on their
// snapshot.
func (r *Registry) Remove(name string) bool {
	r.storeMu.Lock()
	defer r.storeMu.Unlock()
	r.mu.Lock()
	_, ok := r.graphs[name]
	delete(r.graphs, name)
	r.mu.Unlock()
	if ok && r.opts.Store != nil {
		// Best effort: a leftover snapshot re-registers the graph on the
		// next recovery, which is annoying but safe.
		_ = r.opts.Store.DeleteGraph(name)
		_ = r.saveOwnersLocked()
	}
	return ok
}

// graphSamples renders one labelled sample per registered graph — the
// scrape-time callback behind the per-graph gpsd_cache_* and gpsd_index_*
// families. The guard caps graph-label cardinality: graphs beyond the cap
// collapse into one summed "_other" sample, mirroring the per-tenant
// guard, so a graph-churning client cannot blow up scrape size.
func (r *Registry) graphSamples(guard *labelGuard, get func(GraphInfo) float64) []obs.Sample {
	infos := r.List()
	out := make([]obs.Sample, 0, len(infos))
	var overflow float64
	seenOverflow := false
	for _, gi := range infos {
		name := guard.label(gi.Name)
		if name == tenantLabelOverflow {
			overflow += get(gi)
			seenOverflow = true
			continue
		}
		out = append(out, obs.Sample{
			Labels: []obs.Label{obs.L("graph", name)},
			Value:  get(gi),
		})
	}
	if seenOverflow {
		out = append(out, obs.Sample{
			Labels: []obs.Label{obs.L("graph", tenantLabelOverflow)},
			Value:  overflow,
		})
	}
	return out
}

// List returns the registered graphs sorted by name.
func (r *Registry) List() []GraphInfo {
	r.mu.RLock()
	handles := make([]*GraphHandle, 0, len(r.graphs))
	for _, h := range r.graphs {
		handles = append(handles, h)
	}
	r.mu.RUnlock()
	sort.Slice(handles, func(i, j int) bool { return handles[i].name < handles[j].name })
	out := make([]GraphInfo, len(handles))
	for i, h := range handles {
		out[i] = h.info()
	}
	return out
}

// LoadSpec describes a graph to load: either inline data in one of the
// text formats, or a named synthetic dataset.
type LoadSpec struct {
	// Format is "text", "csv", "tsv" or "triples" for inline Data, or
	// "dataset" (also implied when Dataset.Kind is set).
	Format string `json:"format"`
	// Data is the inline serialised graph for the text formats.
	Data string `json:"data,omitempty"`
	// Dataset selects a built-in generator.
	Dataset DatasetSpec `json:"dataset,omitzero"`
	// NoIndex opts the graph out of the background reachability-index
	// build.
	NoIndex bool `json:"no_index,omitempty"`
}

// DatasetSpec parameterises the built-in graph generators.
type DatasetSpec struct {
	// Kind is "figure1", "transport", "random" or "scale-free".
	Kind string `json:"kind"`
	// Rows and Cols shape the transport grid.
	Rows int `json:"rows,omitempty"`
	Cols int `json:"cols,omitempty"`
	// Nodes sizes the random and scale-free generators.
	Nodes int `json:"nodes,omitempty"`
	// Seed drives all randomness.
	Seed int64 `json:"seed,omitempty"`
	// FacilityRate is the transport facility probability.
	FacilityRate float64 `json:"facility_rate,omitempty"`
}

// BuildGraph materialises a LoadSpec.
func BuildGraph(spec LoadSpec) (*graph.Graph, error) {
	format := spec.Format
	if format == "" && spec.Dataset.Kind != "" {
		format = "dataset"
	}
	switch format {
	case "text":
		return graph.ParseText(spec.Data)
	case "csv":
		return graph.ReadCSV(strings.NewReader(spec.Data), graph.CSVOptions{})
	case "tsv":
		return graph.ReadCSV(strings.NewReader(spec.Data), graph.CSVOptions{Comma: '\t'})
	case "triples":
		return graph.ReadTriples(strings.NewReader(spec.Data))
	case "dataset":
		return buildDataset(spec.Dataset)
	default:
		return nil, fmt.Errorf("service: unknown graph format %q (want text, csv, tsv, triples or dataset)", spec.Format)
	}
}

func buildDataset(spec DatasetSpec) (*graph.Graph, error) {
	switch spec.Kind {
	case "figure1":
		return dataset.Figure1(), nil
	case "transport":
		return dataset.Transport(dataset.TransportOptions{
			Rows:         spec.Rows,
			Cols:         spec.Cols,
			Seed:         spec.Seed,
			FacilityRate: spec.FacilityRate,
		}), nil
	case "random":
		return dataset.Random(dataset.RandomOptions{Nodes: spec.Nodes, Seed: spec.Seed}), nil
	case "scale-free":
		return dataset.ScaleFree(dataset.ScaleFreeOptions{Nodes: spec.Nodes, Seed: spec.Seed}), nil
	default:
		return nil, fmt.Errorf("service: unknown dataset kind %q (want figure1, transport, random or scale-free)", spec.Kind)
	}
}
