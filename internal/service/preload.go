package service

import (
	"fmt"
	"strings"
)

// ParsePreload turns a "name=kind" or "name=transport:RxC" preload
// argument into a graph name and LoadSpec. Shared by cmd/gpsd's -preload
// flag and the chaos harness's oracle, which must rebuild exactly the
// graphs the daemon preloaded.
func ParsePreload(arg string) (name string, spec LoadSpec, err error) {
	name, val, ok := strings.Cut(arg, "=")
	if !ok || name == "" || val == "" {
		return "", spec, fmt.Errorf("want name=dataset, got %q", arg)
	}
	kind, size, sized := strings.Cut(val, ":")
	ds := DatasetSpec{Kind: kind, Seed: 1}
	if sized {
		var rows, cols int
		if _, err := fmt.Sscanf(size, "%dx%d", &rows, &cols); err == nil {
			ds.Rows, ds.Cols = rows, cols
			ds.Nodes = rows * cols
		} else if _, err := fmt.Sscanf(size, "%d", &ds.Nodes); err != nil {
			return "", spec, fmt.Errorf("unparsable dataset size %q (want RxC or N)", size)
		}
	}
	return name, LoadSpec{Format: "dataset", Dataset: ds}, nil
}
