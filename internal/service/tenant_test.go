package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/store"
)

// doKey is do() with an API key on the request.
func doKey(t *testing.T, method, url, key string, body any, out any) int {
	t.Helper()
	var buf io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatalf("marshal request: %v", err)
		}
		buf = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, url, buf)
	if err != nil {
		t.Fatalf("build request: %v", err)
	}
	if key != "" {
		req.Header.Set("Authorization", "Bearer "+key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("%s %s: decode %q: %v", method, url, data, err)
		}
	}
	return resp.StatusCode
}

// wantEnvelope asserts that a request answers with the given status and
// stable error code (the code, not the message text, is the contract).
func wantEnvelope(t *testing.T, method, url, key string, body any, status int, code ErrorCode) {
	t.Helper()
	var env errorEnvelope
	if got := doKey(t, method, url, key, body, &env); got != status {
		t.Fatalf("%s %s = %d, want %d", method, url, got, status)
	}
	if env.Error.Code != code {
		t.Fatalf("%s %s error code = %q, want %q", method, url, env.Error.Code, code)
	}
	if env.Error.RequestID == "" {
		t.Fatalf("%s %s envelope carries no request id", method, url)
	}
}

// TestAPIKeyAuthAndHotReload pins the keyring contract: missing and
// unknown keys get 401 unauthorized (while /healthz stays exempt), a
// valid key resolves to its tenant, and a hot swap of the keyring — what
// gpsd's SIGHUP handler does — revokes old keys and mints new ones
// without a restart.
func TestAPIKeyAuthAndHotReload(t *testing.T) {
	kr := NewKeyring(KeyringConfig{
		Tenants: map[string]TenantLimits{"acme": {MaxSessions: 4, MaxGraphs: 4}},
		Keys:    map[string]string{"sk-old": "acme"},
	})
	srv := NewServer(Options{EvalWorkers: 1, CacheCapacity: 16, Keyring: kr})
	ts := newHTTPServer(t, srv)

	if code := do(t, http.MethodGet, ts.URL+"/healthz", nil, nil); code != http.StatusOK {
		t.Fatalf("healthz must stay auth-exempt, got %d", code)
	}
	wantEnvelope(t, http.MethodGet, ts.URL+"/v1/graphs", "", nil, http.StatusUnauthorized, CodeUnauthorized)
	wantEnvelope(t, http.MethodGet, ts.URL+"/v1/graphs", "sk-wrong", nil, http.StatusUnauthorized, CodeUnauthorized)

	if code := doKey(t, http.MethodPut, ts.URL+"/v1/graphs/demo", "sk-old",
		LoadSpec{Dataset: DatasetSpec{Kind: "figure1"}}, nil); code != http.StatusCreated {
		t.Fatalf("keyed graph load returned %d", code)
	}
	var v SessionView
	if code := doKey(t, http.MethodPost, ts.URL+"/v1/sessions", "sk-old",
		SessionConfig{Graph: "demo", Mode: "manual"}, &v); code != http.StatusCreated {
		t.Fatalf("keyed session create returned %d", code)
	}
	if v.Tenant != "acme" {
		t.Fatalf("session tenant = %q, want acme", v.Tenant)
	}

	// Hot reload: sk-old is revoked, sk-new minted, limits unchanged.
	kr.Set(KeyringConfig{
		Tenants: map[string]TenantLimits{"acme": {MaxSessions: 4, MaxGraphs: 4}},
		Keys:    map[string]string{"sk-new": "acme"},
	})
	wantEnvelope(t, http.MethodGet, ts.URL+"/v1/graphs", "sk-old", nil, http.StatusUnauthorized, CodeUnauthorized)
	if code := doKey(t, http.MethodGet, ts.URL+"/v1/sessions/"+v.ID, "sk-new", nil, nil); code != http.StatusOK {
		t.Fatalf("new key after reload returned %d", code)
	}
}

// TestTenantQuotaOffByOne pins both quota boundaries exactly: a tenant at
// its cap minus one still admits, the request past the cap is rejected
// with 429 quota_exceeded (and a Retry-After), and freeing capacity
// re-opens admission.
func TestTenantQuotaOffByOne(t *testing.T) {
	kr := NewKeyring(KeyringConfig{
		Tenants: map[string]TenantLimits{"acme": {MaxSessions: 2, MaxGraphs: 2}},
		Keys:    map[string]string{"sk-acme": "acme"},
	})
	srv := NewServer(Options{EvalWorkers: 1, CacheCapacity: 16, Keyring: kr})
	ts := newHTTPServer(t, srv)

	// Graphs: 2 of 2 register, the third answers quota_exceeded.
	for _, name := range []string{"g1", "g2"} {
		if code := doKey(t, http.MethodPut, ts.URL+"/v1/graphs/"+name, "sk-acme",
			LoadSpec{Dataset: DatasetSpec{Kind: "figure1"}}, nil); code != http.StatusCreated {
			t.Fatalf("graph %s at-limit load returned %d, want 201", name, code)
		}
	}
	wantEnvelope(t, http.MethodPut, ts.URL+"/v1/graphs/g3", "sk-acme",
		LoadSpec{Dataset: DatasetSpec{Kind: "figure1"}}, http.StatusTooManyRequests, CodeQuotaExceeded)
	// Dropping one graph frees the slot.
	if code := doKey(t, http.MethodDelete, ts.URL+"/v1/graphs/g2", "sk-acme", nil, nil); code != http.StatusOK {
		t.Fatal("delete g2 failed")
	}
	if code := doKey(t, http.MethodPut, ts.URL+"/v1/graphs/g3", "sk-acme",
		LoadSpec{Dataset: DatasetSpec{Kind: "figure1"}}, nil); code != http.StatusCreated {
		t.Fatalf("graph load after freeing quota returned %d, want 201", code)
	}

	// Sessions: 2 of 2 admit (manual sessions park and stay live), the
	// third answers quota_exceeded with a Retry-After hint.
	ids := make([]string, 0, 2)
	for i := 0; i < 2; i++ {
		var v SessionView
		if code := doKey(t, http.MethodPost, ts.URL+"/v1/sessions", "sk-acme",
			SessionConfig{Graph: "g1", Mode: "manual"}, &v); code != http.StatusCreated {
			t.Fatalf("at-limit session create %d returned %d, want 201", i, code)
		}
		ids = append(ids, v.ID)
	}
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/sessions",
		bytes.NewReader([]byte(`{"graph":"g1","mode":"manual"}`)))
	req.Header.Set("Authorization", "Bearer sk-acme")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota create returned %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("over-quota rejection carries no Retry-After")
	}
	var env errorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil || env.Error.Code != CodeQuotaExceeded {
		t.Fatalf("over-quota envelope = %+v (%v), want code quota_exceeded", env, err)
	}

	// Deleting a live session returns its slot; the live counter drops as
	// soon as the learning goroutine exits, so poll briefly.
	if code := doKey(t, http.MethodDelete, ts.URL+"/v1/sessions/"+ids[0], "sk-acme", nil, nil); code != http.StatusOK {
		t.Fatal("delete session failed")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		var v SessionView
		code := doKey(t, http.MethodPost, ts.URL+"/v1/sessions", "sk-acme",
			SessionConfig{Graph: "g1", Mode: "manual"}, &v)
		if code == http.StatusCreated {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("create after freeing a session slot still returns %d", code)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestTenantAccountingSurvivesRestart pins that quotas still bind after a
// crash: graph ownership comes back from the owners sidecar and resumed
// sessions are adopted into their tenant's live count, so the restarted
// server rejects exactly where the crashed one would have.
func TestTenantAccountingSurvivesRestart(t *testing.T) {
	cfg := KeyringConfig{
		Tenants: map[string]TenantLimits{"acme": {MaxSessions: 2, MaxGraphs: 1}},
		Keys:    map[string]string{"sk-acme": "acme"},
	}
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srvA := NewServer(Options{EvalWorkers: 1, CacheCapacity: 16, Store: st, Keyring: NewKeyring(cfg)})
	tsA := newHTTPServer(t, srvA)

	if code := doKey(t, http.MethodPut, tsA.URL+"/v1/graphs/demo", "sk-acme",
		LoadSpec{Dataset: DatasetSpec{Kind: "figure1"}}, nil); code != http.StatusCreated {
		t.Fatalf("graph load returned %d", code)
	}
	var v SessionView
	if code := doKey(t, http.MethodPost, tsA.URL+"/v1/sessions", "sk-acme",
		SessionConfig{Graph: "demo", Mode: "manual"}, &v); code != http.StatusCreated {
		t.Fatalf("session create returned %d", code)
	}
	// Park the manual session on its first question so the resume has a
	// deterministic state to come back to.
	waitForQuestion(t, tsA, "sk-acme", v.ID, "label")

	// "Crash": abandon server A mid-park and recover from the wal.
	stB, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srvB := NewServer(Options{EvalWorkers: 1, CacheCapacity: 16, Store: stB, Keyring: NewKeyring(cfg)})
	tsB := newHTTPServer(t, srvB)
	rep, err := srvB.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rep.SessionsResumed != 1 {
		t.Fatalf("recovery resumed %d sessions, want 1 (report %+v)", rep.SessionsResumed, rep)
	}

	// The resumed session still belongs to its tenant.
	var after SessionView
	if code := doKey(t, http.MethodGet, tsB.URL+"/v1/sessions/"+v.ID, "sk-acme", nil, &after); code != http.StatusOK {
		t.Fatalf("recovered session returned %d", code)
	}
	if after.Tenant != "acme" {
		t.Fatalf("recovered session tenant = %q, want acme", after.Tenant)
	}

	// Graph quota: the recovered graph still counts against MaxGraphs 1.
	wantEnvelope(t, http.MethodPut, tsB.URL+"/v1/graphs/extra", "sk-acme",
		LoadSpec{Dataset: DatasetSpec{Kind: "figure1"}}, http.StatusTooManyRequests, CodeQuotaExceeded)

	// Session quota: the adopted live session occupies 1 of 2 slots — one
	// more admits, the next is rejected on quota.
	if code := doKey(t, http.MethodPost, tsB.URL+"/v1/sessions", "sk-acme",
		SessionConfig{Graph: "demo", Mode: "manual"}, nil); code != http.StatusCreated {
		t.Fatalf("post-recovery create returned %d, want 201", code)
	}
	wantEnvelope(t, http.MethodPost, tsB.URL+"/v1/sessions", "sk-acme",
		SessionConfig{Graph: "demo", Mode: "manual"}, http.StatusTooManyRequests, CodeQuotaExceeded)
}

// waitForQuestion polls a session until its pending question has the
// wanted kind.
func waitForQuestion(t *testing.T, ts *httptest.Server, key, id, kind string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		var v SessionView
		doKey(t, http.MethodGet, ts.URL+"/v1/sessions/"+id, key, nil, &v)
		if v.Pending != nil && v.Pending.Kind == kind {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("session %s never asked a %q question (view %+v)", id, kind, v)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestFairShareAdversarialRace hammers admission from a greedy tenant
// while polite tenants trickle requests, all concurrently (the test is in
// CI's -race set): every polite create must eventually be admitted — the
// greedy tenant only queues against itself — every rejection must carry a
// known admission code, and the greedy tenant must actually have been
// pushed back.
func TestFairShareAdversarialRace(t *testing.T) {
	kr := NewKeyring(KeyringConfig{
		Tenants: map[string]TenantLimits{
			"greedy": {MaxSessions: 2, MaxQueued: 2},
			"p1":     {MaxSessions: 2, MaxQueued: 2},
			"p2":     {MaxSessions: 2, MaxQueued: 2},
		},
		Keys: map[string]string{"sk-greedy": "greedy", "sk-p1": "p1", "sk-p2": "p2"},
	})
	srv := NewServer(Options{
		EvalWorkers:   2,
		CacheCapacity: 64,
		MaxSessions:   4,
		AdmitWait:     50 * time.Millisecond,
		Keyring:       kr,
	})
	ts := newHTTPServer(t, srv)
	if code := doKey(t, http.MethodPut, ts.URL+"/v1/graphs/demo", "sk-greedy",
		LoadSpec{Dataset: DatasetSpec{Kind: "figure1"}}, nil); code != http.StatusCreated {
		t.Fatalf("graph load returned %d", code)
	}

	// create issues one session create and classifies the outcome. The
	// greedy flood opens manual sessions — they park on their first
	// question and hold their slots forever, so the flood pins its own cap
	// and every further create must be pushed back; polite tenants run
	// simulated sessions, which converge and recycle their slots.
	var greedyRejected, politeAdmitted atomic.Int64
	create := func(key, body string) (admitted bool) {
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/sessions", bytes.NewReader([]byte(body)))
		req.Header.Set("Authorization", "Bearer "+key)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Errorf("create: %v", err)
			return false
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		switch resp.StatusCode {
		case http.StatusCreated:
			return true
		case http.StatusTooManyRequests:
			var env errorEnvelope
			if err := json.Unmarshal(data, &env); err != nil ||
				(env.Error.Code != CodeQuotaExceeded && env.Error.Code != CodeOverloaded) {
				t.Errorf("429 envelope = %s, want quota_exceeded or overloaded", data)
			}
			return false
		default:
			t.Errorf("create returned %d: %s", resp.StatusCode, data)
			return false
		}
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// The greedy tenant floods from 6 goroutines until the polite side is
	// done.
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if !create("sk-greedy", `{"graph":"demo","mode":"manual"}`) {
					greedyRejected.Add(1)
				}
			}
		}()
	}
	// Each polite tenant must land 10 admissions; under fair-share the
	// flood cannot starve them, so every attempt retried within the
	// deadline must eventually get through.
	politeErr := make(chan error, 2)
	for _, key := range []string{"sk-p1", "sk-p2"} {
		wg.Add(1)
		go func(key string) {
			defer wg.Done()
			deadline := time.Now().Add(30 * time.Second)
			for n := 0; n < 10; {
				if time.Now().After(deadline) {
					politeErr <- fmt.Errorf("polite tenant %s starved: %d of 10 admissions", key, n)
					return
				}
				if create(key, `{"graph":"demo","mode":"simulated","goal":"(tram+bus)*.cinema"}`) {
					n++
					politeAdmitted.Add(1)
				} else {
					time.Sleep(2 * time.Millisecond)
				}
			}
		}(key)
	}

	done := make(chan struct{})
	go func() {
		// Wait for the two polite goroutines (greedy flooders are stopped
		// right after).
		for politeAdmitted.Load() < 20 && len(politeErr) == 0 {
			time.Sleep(10 * time.Millisecond)
		}
		close(stop)
		close(done)
	}()
	<-done
	wg.Wait()
	select {
	case err := <-politeErr:
		t.Fatal(err)
	default:
	}
	if politeAdmitted.Load() != 20 {
		t.Fatalf("polite tenants admitted %d of 20", politeAdmitted.Load())
	}
	if greedyRejected.Load() == 0 {
		t.Fatal("the greedy flood was never pushed back")
	}
}
