package service

// Integration test of the /metrics exposition: a durable server is driven
// through real traffic (graph load, cached evaluations, one simulated
// learning session to convergence), then the scrape must present every
// telemetry surface — store counters, cache stats, backpressure gauges,
// request-latency histograms and the session-trace histograms — while
// /v1/stats keeps its backward-compatible JSON shape.

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/obs"
	"repro/internal/regex"
	"repro/internal/rpq"
	"repro/internal/store"
)

// scrapeMetrics fetches /metrics and returns the body after checking the
// exposition content type.
func scrapeMetrics(t *testing.T, baseURL string) string {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics returned %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, obs.ContentType)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read /metrics: %v", err)
	}
	return string(data)
}

// metricValue returns the value of the first sample line starting with
// prefix, failing the test if no such sample exists.
func metricValue(t *testing.T, body, prefix string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("sample %q: %v", line, err)
		}
		return v
	}
	t.Fatalf("no sample with prefix %q in scrape:\n%s", prefix, body)
	return 0
}

// driveManualSession runs one manual session on the "demo" graph to
// convergence, answering every question over HTTP with an rpq oracle for
// the paper's goal query.
func driveManualSession(t *testing.T, ts *httptest.Server) {
	t.Helper()
	g := dataset.Figure1()
	oracle := rpq.New(g, regex.MustParse("(tram+bus)*.cinema"))
	var v SessionView
	if code := do(t, http.MethodPost, ts.URL+"/v1/sessions", SessionConfig{
		Graph: "demo", Mode: "manual",
	}, &v); code != http.StatusCreated {
		t.Fatalf("create manual session returned %d", code)
	}
	id := v.ID
	for i := 0; i < 200; i++ {
		v = waitSession(t, ts, id, func(v SessionView) bool {
			return v.Pending != nil || v.Status == StatusDone || v.Status == StatusFailed
		})
		if v.Status == StatusDone {
			return
		}
		if v.Status == StatusFailed {
			t.Fatalf("manual session failed: %s", v.Error)
		}
		a := Answer{Seq: v.Pending.Seq}
		switch v.Pending.Kind {
		case "label":
			if oracle.Selects(v.Pending.Node) {
				a.Decision = "positive"
			} else {
				a.Decision = "negative"
			}
		case "path":
			a.Accept = true
		case "satisfied":
			sat := rpq.New(g, regex.MustParse(v.Pending.Learned)).SameSelection(oracle)
			a.Satisfied = &sat
		}
		if code := do(t, http.MethodPost, ts.URL+"/v1/sessions/"+id+"/label", a, nil); code != http.StatusOK {
			t.Fatalf("answer returned %d for %+v", code, a)
		}
	}
	t.Fatalf("manual session did not converge")
}

func TestMetricsEndpointCoversAllSurfaces(t *testing.T) {
	eng, err := store.OpenEngine(t.TempDir(), store.EngineOptions{Kind: store.EngineKindBinary})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	srv := NewServer(Options{EvalWorkers: 2, CacheCapacity: 64, Store: eng})
	ts := newHTTPServer(t, srv)
	loadFigure1(t, ts, "demo")

	// Same query twice: one cache miss, one hit.
	do(t, http.MethodPost, ts.URL+"/v1/graphs/demo/evaluate", evaluateRequest{Query: "bus"}, nil)
	do(t, http.MethodPost, ts.URL+"/v1/graphs/demo/evaluate", evaluateRequest{Query: "bus"}, nil)

	var v SessionView
	if code := do(t, http.MethodPost, ts.URL+"/v1/sessions", SessionConfig{
		Graph: "demo", Mode: "simulated", Goal: "(tram+bus)*.cinema",
	}, &v); code != http.StatusCreated {
		t.Fatalf("create session returned %d", code)
	}
	waitSession(t, ts, v.ID, func(v SessionView) bool { return v.Status == StatusDone })

	// A manual session exercises the publish→answer path that feeds the
	// question-wait histogram (the simulated oracle answers in-process,
	// without publishing).
	driveManualSession(t, ts)

	body := scrapeMetrics(t, ts.URL)

	// Store engine counters, labelled with the engine name.
	if n := metricValue(t, body, `gpsd_store_journal_appends_total{engine="binary"}`); n < 1 {
		t.Fatalf("journal appends = %v after a journaled session, want >= 1", n)
	}
	if n := metricValue(t, body, `gpsd_store_corrupt_frames_total`); n != 0 {
		t.Fatalf("corrupt frames = %v on a healthy store, want 0", n)
	}

	// Cache stats, one child per graph.
	if hits := metricValue(t, body, `gpsd_cache_hits_total{graph="demo"}`); hits < 1 {
		t.Fatalf("cache hits = %v after a repeated evaluate, want >= 1", hits)
	}
	metricValue(t, body, `gpsd_cache_misses_total{graph="demo"}`)

	// Backpressure gauges.
	metricValue(t, body, `gpsd_sessions_live`)
	if n := metricValue(t, body, `gpsd_sessions_finished_retained`); n < 1 {
		t.Fatalf("finished retained = %v after a done session, want >= 1", n)
	}

	// Request-latency histogram: cumulative buckets ending at +Inf == _count.
	endpoint := `gpsd_http_request_duration_seconds_bucket{endpoint="POST /v1/graphs/{name}/evaluate",le="+Inf"}`
	inf := metricValue(t, body, endpoint)
	count := metricValue(t, body, `gpsd_http_request_duration_seconds_count{endpoint="POST /v1/graphs/{name}/evaluate"}`)
	if inf != count || count < 2 {
		t.Fatalf("+Inf bucket = %v, _count = %v, want equal and >= 2", inf, count)
	}
	if n := metricValue(t, body, `gpsd_http_requests_total{code="200",endpoint="POST /v1/graphs/{name}/evaluate"}`); n < 2 {
		t.Fatalf("request counter = %v, want >= 2", n)
	}

	// Session-trace histograms populated by the simulated session.
	if n := metricValue(t, body, `gpsd_session_learn_phase_seconds_count{phase="generalize"}`); n < 1 {
		t.Fatalf("learn-phase generalize count = %v, want >= 1", n)
	}
	if n := metricValue(t, body, `gpsd_session_question_wait_seconds_count{kind="satisfied"}`); n < 1 {
		t.Fatalf("question-wait satisfied count = %v, want >= 1", n)
	}

	// Every family block must be well-formed: TYPE before samples, one
	// block per family.
	typed := map[string]bool{}
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if typed[parts[2]] {
				t.Fatalf("family %s has two TYPE lines", parts[2])
			}
			typed[parts[2]] = true
		}
	}
	for _, fam := range []string{"gpsd_uptime_seconds", "gpsd_graphs_registered", "gpsd_sessions_queue_depth", "gpsd_session_replay_seconds"} {
		if !typed[fam] {
			t.Fatalf("family %s missing from the scrape", fam)
		}
	}

	// /v1/stats keeps its JSON contract next to the new exposition.
	var stats struct {
		Backpressure BackpressureStats      `json:"backpressure"`
		HTTP         map[string]LatencyView `json:"http"`
		Store        *store.Metrics         `json:"store"`
	}
	if code := do(t, http.MethodGet, ts.URL+"/v1/stats", nil, &stats); code != http.StatusOK {
		t.Fatalf("stats returned %d", code)
	}
	if stats.Store == nil || stats.Store.JournalAppends < 1 {
		t.Fatalf("stats.store = %+v, want journal appends", stats.Store)
	}
	lv, ok := stats.HTTP["POST /v1/graphs/{name}/evaluate"]
	if !ok || lv.Count < 2 {
		t.Fatalf("stats.http latency view = %+v ok=%v, want count >= 2", lv, ok)
	}

	// POST to /metrics is rejected: the endpoint is scrape-only.
	resp, err := http.Post(ts.URL+"/metrics", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed && resp.StatusCode != http.StatusNotFound {
		t.Fatalf("POST /metrics returned %d, want 405 or 404", resp.StatusCode)
	}
}
