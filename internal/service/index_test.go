package service

import (
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/store"
)

// waitIndexReady polls the handle until its background index build lands.
func waitIndexReady(t *testing.T, h *GraphHandle) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if h.Index() != nil {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("graph %q: index not ready after 10s (state %s)", h.Name(), h.indexInfo().State)
}

// TestIndexBuiltOnRegister checks that registering a graph kicks off the
// background index build, that the ready index matches the graph version,
// and that indexed evaluation through the handle's cache answers queries.
func TestIndexBuiltOnRegister(t *testing.T) {
	srv := NewServer(Options{EvalWorkers: 1, CacheCapacity: 16})
	h, err := srv.Registry().Register("fig1", dataset.Figure1())
	if err != nil {
		t.Fatal(err)
	}
	waitIndexReady(t, h)
	idx := h.Index()
	if idx.GraphVersion() != h.Version() {
		t.Fatalf("index version %d, handle version %d", idx.GraphVersion(), h.Version())
	}
	info := h.indexInfo()
	if info.State != "ready" || info.Stats == nil || info.Stats.Bytes <= 0 {
		t.Fatalf("indexInfo = %+v, want ready with stats", info)
	}
	e, err := h.Engine("(tram+bus)*.cinema")
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Selected()) == 0 {
		t.Fatal("indexed evaluation selected nothing on figure1")
	}
}

// TestIndexOptOutAndDisable checks both opt-out paths: per-registration
// NoIndex and the service-wide DisableIndex option.
func TestIndexOptOutAndDisable(t *testing.T) {
	srv := NewServer(Options{EvalWorkers: 1, CacheCapacity: 16})
	h, err := srv.Registry().RegisterForWith(TenantInfo{Name: DefaultTenant}, "noidx", dataset.Figure1(), RegisterOptions{NoIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := h.indexInfo().State; got != "disabled" {
		t.Fatalf("NoIndex graph state = %q, want disabled", got)
	}
	if h.Index() != nil {
		t.Fatal("NoIndex graph returned an index")
	}

	srvOff := NewServer(Options{EvalWorkers: 1, CacheCapacity: 16, DisableIndex: true})
	h2, err := srvOff.Registry().Register("fig1", dataset.Figure1())
	if err != nil {
		t.Fatal(err)
	}
	if got := h2.indexInfo().State; got != "disabled" {
		t.Fatalf("DisableIndex graph state = %q, want disabled", got)
	}
	// Evaluation must still work without an index.
	e, err := h2.Engine("(tram+bus)*.cinema")
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Selected()) == 0 {
		t.Fatal("unindexed evaluation selected nothing on figure1")
	}
}

// TestIndexRebuiltOnReRegister checks that replacing a name re-registers a
// fresh handle whose index is rebuilt against the new graph's version —
// the old handle's index must not leak onto the new snapshot.
func TestIndexRebuiltOnReRegister(t *testing.T) {
	srv := NewServer(Options{EvalWorkers: 1, CacheCapacity: 16})
	reg := srv.Registry()
	h1, err := reg.Register("g", dataset.Figure1())
	if err != nil {
		t.Fatal(err)
	}
	waitIndexReady(t, h1)

	g2 := dataset.Transport(dataset.TransportOptions{Rows: 6, Cols: 6, Seed: 1, FacilityRate: 0.4})
	h2, err := reg.Register("g", g2)
	if err != nil {
		t.Fatal(err)
	}
	if h2 == h1 {
		t.Fatal("re-registration returned the old handle")
	}
	waitIndexReady(t, h2)
	if h2.Index() == h1.Index() {
		t.Fatal("new handle shares the old graph's index")
	}
	if got, want := h2.Index().GraphVersion(), g2.Version(); got != want {
		t.Fatalf("rebuilt index version %d, want %d", got, want)
	}
	// The replaced handle keeps its own snapshot and index.
	if h1.Index() == nil || h1.Index().GraphVersion() != h1.Version() {
		t.Fatal("old handle's index was disturbed by re-registration")
	}
}

// TestIndexRebuiltAfterRecovery checks that crash recovery rebuilds every
// restored graph's index from the recovered snapshot instead of trusting
// (nonexistent) persisted index bytes.
func TestIndexRebuiltAfterRecovery(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srvA := NewServer(Options{EvalWorkers: 1, CacheCapacity: 16, Store: st})
	hA, err := srvA.Registry().Register("fig1", dataset.Figure1())
	if err != nil {
		t.Fatal(err)
	}
	waitIndexReady(t, hA)

	// "Crash": open a fresh server over the same directory and recover.
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srvB := NewServer(Options{EvalWorkers: 1, CacheCapacity: 16, Store: st2})
	rep, err := srvB.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Graphs != 1 {
		t.Fatalf("recovered %d graphs, want 1", rep.Graphs)
	}
	hB, ok := srvB.Registry().Get("fig1")
	if !ok {
		t.Fatal("recovered graph not registered")
	}
	waitIndexReady(t, hB)
	if hB.Index() == hA.Index() {
		t.Fatal("recovery reused the pre-crash index object")
	}
	if got, want := hB.Index().GraphVersion(), hB.Version(); got != want {
		t.Fatalf("recovered index version %d, want handle version %d", got, want)
	}
	e, err := hB.Engine("(tram+bus)*.cinema")
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Selected()) == 0 {
		t.Fatal("indexed evaluation selected nothing after recovery")
	}
}
