package service

import (
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/regex"
	"repro/internal/rpq"
)

// TestConcurrentSimulatedSessionsConverge is the acceptance check for the
// service: many simulated learning sessions share one graph (and its
// engine cache) and all run to user-satisfied convergence concurrently.
// Run with -race.
func TestConcurrentSimulatedSessionsConverge(t *testing.T) {
	_, ts := newTestServer(t)
	loadFigure1(t, ts, "demo")

	goals := []string{
		"(tram+bus)*.cinema",
		"bus",
		"restaurant",
		"bus.restaurant",
	}
	strategies := []string{"informative", "random", "hybrid", "disagreement"}
	const n = 12
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			goal := goals[i%len(goals)]
			var v SessionView
			code := do(t, http.MethodPost, ts.URL+"/v1/sessions", SessionConfig{
				Graph:    "demo",
				Mode:     "simulated",
				Goal:     goal,
				Strategy: strategies[i%len(strategies)],
				Seed:     int64(i),
			}, &v)
			if code != http.StatusCreated {
				errs <- fmt.Errorf("session %d: create returned %d", i, code)
				return
			}
			v = waitSession(t, ts, v.ID, func(v SessionView) bool {
				return v.Status == StatusDone || v.Status == StatusFailed
			})
			if v.Status != StatusDone || v.Halt != "user-satisfied" {
				errs <- fmt.Errorf("session %d (goal %s): status %s halt %q error %q", i, goal, v.Status, v.Halt, v.Error)
				return
			}
			// The learned query must return the goal's answer set.
			g := dataset.Figure1()
			learned := rpq.New(g, regex.MustParse(v.Learned))
			if !learned.SameSelection(rpq.New(g, regex.MustParse(goal))) {
				errs <- fmt.Errorf("session %d: learned %q does not match goal %q", i, v.Learned, goal)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestConcurrentSessionsAndEvaluations churns the shared per-graph cache
// from three directions at once: simulated sessions, manual sessions being
// canceled mid-question, and ad-hoc evaluations over a deliberately tiny
// cache so evictions keep happening.
func TestConcurrentSessionsAndEvaluations(t *testing.T) {
	srv := NewServer(Options{EvalWorkers: 2, CacheCapacity: 2})
	ts := newHTTPServer(t, srv)
	loadFigure1(t, ts, "demo")

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var v SessionView
			do(t, http.MethodPost, ts.URL+"/v1/sessions", SessionConfig{
				Graph: "demo", Mode: "simulated", Goal: "(tram+bus)*.cinema",
			}, &v)
			waitSession(t, ts, v.ID, func(v SessionView) bool { return v.Status == StatusDone })
		}(i)
	}
	queries := []string{"bus", "tram", "restaurant", "cinema", "bus.restaurant"}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				q := queries[(w+i)%len(queries)]
				if code := do(t, http.MethodPost, ts.URL+"/v1/graphs/demo/evaluate",
					evaluateRequest{Query: q}, nil); code != http.StatusOK {
					t.Errorf("evaluate %s returned %d", q, code)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			var v SessionView
			do(t, http.MethodPost, ts.URL+"/v1/sessions", SessionConfig{Graph: "demo", Mode: "manual"}, &v)
			waitSession(t, ts, v.ID, func(v SessionView) bool { return v.Pending != nil })
			do(t, http.MethodDelete, ts.URL+"/v1/sessions/"+v.ID, nil, nil)
		}
	}()
	wg.Wait()

	h, _ := srv.Registry().Get("demo")
	st := h.Cache().Stats()
	if st.Size > 2 {
		t.Fatalf("shared cache exceeded its capacity: %+v", st)
	}
	if st.Evictions == 0 {
		t.Fatalf("expected evictions under churn, stats %+v", st)
	}
}

// TestFinishedSessionRetention pins the manager's bounded retention:
// finished sessions stay inspectable up to MaxSessions and are then
// evicted oldest-first, so a long-running daemon does not accumulate
// session state without bound.
func TestFinishedSessionRetention(t *testing.T) {
	srv := NewServer(Options{EvalWorkers: 1, MaxSessions: 2})
	h, err := srv.Registry().Register("demo", dataset.Figure1())
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]string, 0, 5)
	for i := 0; i < 5; i++ {
		s, err := srv.Manager().Create(h, SessionConfig{
			Graph: "demo", Mode: "simulated", Goal: "(tram+bus)*.cinema",
		})
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
		<-s.Done() // sequential: each finishes before the next is created
		ids = append(ids, s.ID())
	}
	// Only the newest MaxSessions finished sessions are retained.
	for _, id := range ids[:3] {
		if _, ok := srv.Manager().Get(id); ok {
			t.Fatalf("session %s should have been evicted", id)
		}
	}
	for _, id := range ids[3:] {
		s, ok := srv.Manager().Get(id)
		if !ok {
			t.Fatalf("session %s should still be retained", id)
		}
		if v := s.View(); v.Status != StatusDone {
			t.Fatalf("retained session %s has status %s", id, v.Status)
		}
	}
}

// TestCanceledParkedSessionRecordsNothing pins the cancel semantics: a
// manual session torn down while parked on its first label question halts
// as canceled without recording a fabricated label or running the learner.
func TestCanceledParkedSessionRecordsNothing(t *testing.T) {
	srv := NewServer(Options{EvalWorkers: 1})
	h, err := srv.Registry().Register("demo", dataset.Figure1())
	if err != nil {
		t.Fatal(err)
	}
	s, err := srv.Manager().Create(h, SessionConfig{Graph: "demo", Mode: "manual"})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for s.View().Pending == nil {
		if time.Now().After(deadline) {
			t.Fatal("session never asked a question")
		}
		time.Sleep(2 * time.Millisecond)
	}
	s.Cancel()
	<-s.Done()
	v := s.View()
	if v.Status != StatusDone || v.Halt != "canceled" {
		t.Fatalf("canceled session ended %s/%q", v.Status, v.Halt)
	}
	if v.Labels != 0 || v.Learned != "" {
		t.Fatalf("canceled session recorded labels=%d learned=%q", v.Labels, v.Learned)
	}
}

// TestSessionLimit pins the MaxSessions backpressure.
func TestSessionLimit(t *testing.T) {
	srv := NewServer(Options{EvalWorkers: 1, MaxSessions: 2})
	ts := newHTTPServer(t, srv)
	loadFigure1(t, ts, "demo")

	ids := make([]string, 0, 2)
	for i := 0; i < 2; i++ {
		var v SessionView
		if code := do(t, http.MethodPost, ts.URL+"/v1/sessions",
			SessionConfig{Graph: "demo", Mode: "manual"}, &v); code != http.StatusCreated {
			t.Fatalf("session %d: create returned %d", i, code)
		}
		ids = append(ids, v.ID)
	}
	if code := do(t, http.MethodPost, ts.URL+"/v1/sessions",
		SessionConfig{Graph: "demo", Mode: "manual"}, nil); code != http.StatusTooManyRequests {
		t.Fatalf("over-limit create must 429, got %d", code)
	}
	// Freeing a slot re-enables creation.
	do(t, http.MethodDelete, ts.URL+"/v1/sessions/"+ids[0], nil, nil)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if code := do(t, http.MethodPost, ts.URL+"/v1/sessions",
			SessionConfig{Graph: "demo", Mode: "manual"}, nil); code == http.StatusCreated {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("create kept failing after a slot was freed")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
