package service

// Backpressure observability for the ROADMAP's million-user north star: a
// daemon that is saturating needs to say so before clients find out via
// timeouts. Two signals are exposed on /v1/stats:
//
//   - the session manager's admission state (live loops vs capacity, and
//     how many loops sit parked on the question/answer bridge waiting for
//     a client — the service's queue depth);
//   - a per-endpoint request-latency histogram with fixed bucket bounds,
//     recorded lock-free on the request path via atomics.

import (
	"context"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// latencyBucketBoundsUs are the inclusive upper bounds, in microseconds,
// of the latency histogram buckets; a final implicit bucket catches
// everything slower.
var latencyBucketBoundsUs = [...]int64{100, 500, 1_000, 5_000, 10_000, 50_000, 100_000, 500_000, 1_000_000, 5_000_000}

// latencyHistogram is one endpoint's latency record. All fields are
// updated with atomics; observe never takes a lock.
type latencyHistogram struct {
	buckets [len(latencyBucketBoundsUs) + 1]atomic.Int64
	count   atomic.Int64
	totalUs atomic.Int64
	maxUs   atomic.Int64
}

func (h *latencyHistogram) observe(d time.Duration) {
	us := d.Microseconds()
	i := sort.Search(len(latencyBucketBoundsUs), func(i int) bool { return us <= latencyBucketBoundsUs[i] })
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.totalUs.Add(us)
	for {
		cur := h.maxUs.Load()
		if us <= cur || h.maxUs.CompareAndSwap(cur, us) {
			return
		}
	}
}

// HistogramBucket is one bucket of a latency histogram view. LeUs is the
// bucket's inclusive upper bound in microseconds; the overflow bucket
// reports -1.
type HistogramBucket struct {
	LeUs  int64 `json:"le_us"`
	Count int64 `json:"count"`
}

// LatencyView is the JSON-facing snapshot of one endpoint's latency
// histogram. Percentiles are upper-bound estimates: the bound of the first
// bucket whose cumulative count covers the quantile (the overflow bucket
// reports the observed maximum).
type LatencyView struct {
	Count   int64             `json:"count"`
	MeanUs  float64           `json:"mean_us"`
	MaxUs   int64             `json:"max_us"`
	P50Us   int64             `json:"p50_us"`
	P90Us   int64             `json:"p90_us"`
	P99Us   int64             `json:"p99_us"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// snapshot renders a consistent-enough view for stats reporting: buckets
// are read one atomic at a time, so a snapshot racing observes may be off
// by the in-flight requests, which is fine for monitoring.
func (h *latencyHistogram) snapshot() LatencyView {
	v := LatencyView{Count: h.count.Load(), MaxUs: h.maxUs.Load()}
	if v.Count == 0 {
		return v
	}
	v.MeanUs = float64(h.totalUs.Load()) / float64(v.Count)
	counts := make([]int64, len(h.buckets))
	total := int64(0)
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	quantile := func(q float64) int64 {
		target := int64(float64(total)*q + 0.5)
		cum := int64(0)
		for i, c := range counts {
			cum += c
			if cum >= target {
				if i < len(latencyBucketBoundsUs) {
					return latencyBucketBoundsUs[i]
				}
				return v.MaxUs
			}
		}
		return v.MaxUs
	}
	v.P50Us, v.P90Us, v.P99Us = quantile(0.50), quantile(0.90), quantile(0.99)
	v.Buckets = make([]HistogramBucket, 0, len(counts))
	for i, c := range counts {
		if c == 0 {
			continue
		}
		le := int64(-1)
		if i < len(latencyBucketBoundsUs) {
			le = latencyBucketBoundsUs[i]
		}
		v.Buckets = append(v.Buckets, HistogramBucket{LeUs: le, Count: c})
	}
	return v
}

// httpMetrics owns one latency histogram per routed endpoint pattern.
// Histograms are registered while the handler is assembled; the request
// path only touches the captured histogram pointer.
type httpMetrics struct {
	mu        sync.Mutex
	endpoints map[string]*latencyHistogram
}

func newHTTPMetrics() *httpMetrics {
	return &httpMetrics{endpoints: make(map[string]*latencyHistogram)}
}

func (m *httpMetrics) register(pattern string) *latencyHistogram {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.endpoints[pattern]
	if !ok {
		h = &latencyHistogram{}
		m.endpoints[pattern] = h
	}
	return h
}

// Snapshot returns the per-endpoint latency views keyed by route pattern.
func (m *httpMetrics) Snapshot() map[string]LatencyView {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]LatencyView, len(m.endpoints))
	for pattern, h := range m.endpoints {
		out[pattern] = h.snapshot()
	}
	return out
}

// instrument wraps a handler so its requests are recorded against the
// endpoint's histogram and, when Options.RequestTimeout is set, bounded
// by a per-request context deadline. Streaming endpoints (SSE) record the
// lifetime of the stream, which is what their tail latency means, and are
// exempt from the deadline — a tail is supposed to stay open.
func (s *Server) instrument(pattern string, h http.HandlerFunc) http.HandlerFunc {
	hist := s.metrics.register(pattern)
	streaming := strings.HasSuffix(pattern, "/events")
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		if s.opts.RequestTimeout > 0 && !streaming {
			ctx, cancel := context.WithTimeout(r.Context(), s.opts.RequestTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		h(w, r)
		hist.observe(time.Since(start))
	}
}

// BackpressureStats is the session manager's admission and queueing state.
type BackpressureStats struct {
	// LiveSessions counts learning loops that have not exited.
	LiveSessions int `json:"live_sessions"`
	// MaxSessions is the admission limit LiveSessions is checked against.
	MaxSessions int `json:"max_sessions"`
	// QueueDepth counts sessions parked on the question/answer bridge —
	// a pending question published, no answer delivered yet. Under client
	// stalls this is the number of loops holding a live slot while doing
	// no work.
	QueueDepth int `json:"queue_depth"`
	// FinishedRetained counts finished sessions retained for inspection.
	FinishedRetained int `json:"finished_retained"`
}

// Backpressure returns the manager's current admission and queueing state.
func (m *Manager) Backpressure() BackpressureStats {
	m.mu.Lock()
	st := BackpressureStats{
		LiveSessions:     m.live,
		MaxSessions:      m.opts.MaxSessions,
		FinishedRetained: len(m.finishedIDs),
	}
	sessions := make([]*HostedSession, 0, len(m.sessions))
	for _, s := range m.sessions {
		sessions = append(sessions, s)
	}
	m.mu.Unlock()
	for _, s := range sessions {
		s.mu.Lock()
		if s.pending != nil {
			st.QueueDepth++
		}
		s.mu.Unlock()
	}
	return st
}
