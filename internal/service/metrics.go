package service

// Service-level observability: per-endpoint request latency histograms
// and the session manager's backpressure signals. Since the obs registry
// became the single metrics substrate, this file owns only the service's
// side of the contract — which instruments exist, and how /v1/stats
// renders the same atomics as JSON so its shape never changed:
//
//   - every routed endpoint gets one gpsd_http_request_duration_seconds
//     histogram child (microsecond-native, lock-free on the request
//     path) and a gpsd_http_requests_total{endpoint,code} counter;
//   - the manager's admission state (live loops vs capacity, loops
//     parked on the question/answer bridge, finished retention) surfaces
//     as gpsd_sessions_* gauges and the BackpressureStats JSON view.

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// latencyBucketBoundsUs are the inclusive upper bounds, in microseconds,
// of the latency histogram buckets; a final implicit bucket catches
// everything slower.
var latencyBucketBoundsUs = []int64{100, 500, 1_000, 5_000, 10_000, 50_000, 100_000, 500_000, 1_000_000, 5_000_000}

// HistogramBucket is one bucket of a latency histogram view. LeUs is the
// bucket's inclusive upper bound in microseconds; the overflow bucket
// reports -1.
type HistogramBucket struct {
	LeUs  int64 `json:"le_us"`
	Count int64 `json:"count"`
}

// LatencyView is the JSON-facing snapshot of one endpoint's latency
// histogram. Percentiles are upper-bound estimates: the bound of the first
// bucket whose cumulative count covers the quantile (the overflow bucket
// reports the observed maximum).
type LatencyView struct {
	Count   int64             `json:"count"`
	MeanUs  float64           `json:"mean_us"`
	MaxUs   int64             `json:"max_us"`
	P50Us   int64             `json:"p50_us"`
	P90Us   int64             `json:"p90_us"`
	P99Us   int64             `json:"p99_us"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// latencyView renders a histogram snapshot in the /v1/stats JSON shape.
// The snapshot reads one atomic at a time, so a view racing observes may
// be off by the in-flight requests, which is fine for monitoring.
func latencyView(s obs.HistogramSnapshot) LatencyView {
	v := LatencyView{Count: s.Count, MaxUs: s.Max}
	if v.Count == 0 {
		return v
	}
	v.MeanUs = float64(s.Sum) / float64(v.Count)
	total := int64(0)
	for _, c := range s.Buckets {
		total += c
	}
	quantile := func(q float64) int64 {
		target := int64(float64(total)*q + 0.5)
		cum := int64(0)
		for i, c := range s.Buckets {
			cum += c
			if cum >= target {
				if i < len(s.Bounds) {
					return s.Bounds[i]
				}
				return v.MaxUs
			}
		}
		return v.MaxUs
	}
	v.P50Us, v.P90Us, v.P99Us = quantile(0.50), quantile(0.90), quantile(0.99)
	v.Buckets = make([]HistogramBucket, 0, len(s.Buckets))
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		le := int64(-1)
		if i < len(s.Bounds) {
			le = s.Bounds[i]
		}
		v.Buckets = append(v.Buckets, HistogramBucket{LeUs: le, Count: c})
	}
	return v
}

// httpMetrics tracks the per-endpoint latency histograms registered on
// the obs registry. Histograms are registered while the handler is
// assembled; the request path only touches the captured histogram
// pointer.
type httpMetrics struct {
	reg       *obs.Registry
	mu        sync.Mutex
	endpoints map[string]*obs.Histogram
}

func newHTTPMetrics(reg *obs.Registry) *httpMetrics {
	return &httpMetrics{reg: reg, endpoints: make(map[string]*obs.Histogram)}
}

func (m *httpMetrics) register(pattern string) *obs.Histogram {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.endpoints[pattern]
	if !ok {
		h = m.reg.Histogram("gpsd_http_request_duration_seconds",
			"HTTP request latency by endpoint pattern (SSE streams record their lifetime).",
			latencyBucketBoundsUs, 1e-6, obs.L("endpoint", pattern))
		m.endpoints[pattern] = h
	}
	return h
}

// Snapshot returns the per-endpoint latency views keyed by route pattern.
func (m *httpMetrics) Snapshot() map[string]LatencyView {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]LatencyView, len(m.endpoints))
	for pattern, h := range m.endpoints {
		out[pattern] = latencyView(h.Snapshot())
	}
	return out
}

// statusRecorder captures the response status for request counters and
// logs. flushRecorder additionally forwards Flush, and is used whenever
// the inner writer is an http.Flusher so the SSE handler's
// `w.(http.Flusher)` assertion keeps succeeding through the wrapper.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.code == 0 {
		r.code = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.code == 0 {
		r.code = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

type flushRecorder struct {
	*statusRecorder
}

func (r flushRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// authExempt lists the routes served without an API key even when a
// keyring is configured: liveness probes, metric scrapers, replication
// followers and failover re-resolution are operator infrastructure, not
// tenants. The replication routes expose only feed bytes and counters —
// no tenant data beyond what the follower will hold anyway.
func authExempt(pattern string) bool {
	switch pattern {
	case "GET /healthz", "GET /metrics",
		"GET /v1/replication/status", "GET /v1/replication/feed":
		return true
	}
	return false
}

// instrument wraps a handler so its requests carry a request id, resolve
// to a tenant (answering 401 when a keyring is configured and the key does
// not resolve), are recorded against the endpoint's histogram and request
// counter — plus tenant-labelled twins behind the cardinality guard —
// logged at debug level, and — when Options.RequestTimeout is set —
// bounded by a per-request context deadline. Streaming endpoints (SSE)
// record the lifetime of the stream, which is what their tail latency
// means, and are exempt from the deadline — a tail is supposed to stay
// open.
func (s *Server) instrument(pattern string, h http.HandlerFunc) http.HandlerFunc {
	hist := s.metrics.register(pattern)
	endpoint := obs.L("endpoint", pattern)
	streaming := strings.HasSuffix(pattern, "/events") || pattern == "GET /v1/replication/feed"
	exempt := authExempt(pattern)
	log := s.opts.Logger
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		reqID := r.Header.Get("X-Request-ID")
		if reqID == "" {
			reqID = "r" + strconv.FormatInt(s.reqSeq.Add(1), 10)
		}
		w.Header().Set("X-Request-ID", reqID)
		rec := &statusRecorder{ResponseWriter: w}
		var rw http.ResponseWriter = rec
		if _, ok := w.(http.Flusher); ok {
			rw = flushRecorder{rec}
		}
		if s.opts.RequestTimeout > 0 && !streaming {
			ctx, cancel := context.WithTimeout(r.Context(), s.opts.RequestTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		tenant := DefaultTenant
		authed := true
		if kr := s.opts.Keyring; kr != nil && !exempt {
			if tn, ok := kr.Resolve(apiKey(r)); ok {
				tenant = tn.Name
				r = r.WithContext(withTenant(r.Context(), tn))
			} else {
				authed = false
				writeError(rw, http.StatusUnauthorized, CodeUnauthorized,
					fmt.Errorf("missing or unknown API key"))
			}
		}
		if authed && !s.fenceRefused(rw, r) {
			h(rw, r)
		}
		d := time.Since(start)
		hist.Observe(d.Microseconds())
		code := rec.code
		if code == 0 {
			code = http.StatusOK
		}
		s.opts.Metrics.Counter("gpsd_http_requests_total",
			"HTTP requests served, by endpoint pattern and status code.",
			endpoint, obs.L("code", strconv.Itoa(code))).Inc()
		tl := s.tenantLabels.label(tenant)
		s.opts.Metrics.Counter("gpsd_tenant_http_requests_total",
			"HTTP requests served, by tenant and status code.",
			obs.L("tenant", tl), obs.L("code", strconv.Itoa(code))).Inc()
		s.opts.Metrics.Histogram("gpsd_tenant_http_request_duration_seconds",
			"HTTP request latency by tenant (all endpoints pooled).",
			latencyBucketBoundsUs, 1e-6, obs.L("tenant", tl)).Observe(d.Microseconds())
		log.Debug("http request",
			"request_id", reqID,
			"endpoint", pattern,
			"path", r.URL.Path,
			"tenant", tenant,
			"code", code,
			"duration_us", d.Microseconds())
	}
}

// BackpressureStats is the session manager's admission and queueing state.
type BackpressureStats struct {
	// LiveSessions counts learning loops that have not exited.
	LiveSessions int `json:"live_sessions"`
	// MaxSessions is the admission limit LiveSessions is checked against.
	MaxSessions int `json:"max_sessions"`
	// QueueDepth counts sessions parked on the question/answer bridge —
	// a pending question published, no answer delivered yet. Under client
	// stalls this is the number of loops holding a live slot while doing
	// no work.
	QueueDepth int `json:"queue_depth"`
	// FinishedRetained counts finished sessions retained for inspection.
	FinishedRetained int `json:"finished_retained"`
}

// Backpressure returns the manager's current admission and queueing state.
func (m *Manager) Backpressure() BackpressureStats {
	m.mu.Lock()
	st := BackpressureStats{
		LiveSessions:     m.live,
		MaxSessions:      m.opts.MaxSessions,
		FinishedRetained: len(m.finishedIDs),
	}
	sessions := make([]*HostedSession, 0, len(m.sessions))
	for _, s := range m.sessions {
		sessions = append(sessions, s)
	}
	m.mu.Unlock()
	for _, s := range sessions {
		s.mu.Lock()
		if s.pending != nil {
			st.QueueDepth++
		}
		s.mu.Unlock()
	}
	return st
}

// registerBackpressure exposes the manager's admission state as gauges on
// the registry. One Backpressure snapshot feeds all four families per
// scrape would be nicer, but each gauge sampling its own snapshot keeps
// the registration trivially idempotent and the cost is a few mutex
// rounds per scrape.
func (m *Manager) registerBackpressure(reg *obs.Registry) {
	reg.GaugeFunc("gpsd_sessions_live", "Learning-loop goroutines that have not exited.",
		func() float64 { return float64(m.Backpressure().LiveSessions) })
	reg.GaugeFunc("gpsd_sessions_max", "Admission limit for live sessions.",
		func() float64 { return float64(m.opts.MaxSessions) })
	reg.GaugeFunc("gpsd_sessions_queue_depth", "Sessions parked on the question/answer bridge awaiting a client.",
		func() float64 { return float64(m.Backpressure().QueueDepth) })
	reg.GaugeFunc("gpsd_sessions_finished_retained", "Finished sessions retained for inspection.",
		func() float64 { return float64(m.Backpressure().FinishedRetained) })
}
