package service

import (
	"net/http"
	"testing"
	"time"

	"repro/internal/store"
)

// TestAdminCompact drives a simulated session to completion on a durable
// binary server and triggers a live compaction over the API: the finished
// session must collapse to a summary, and the session must survive a
// recovery from the compacted store.
func TestAdminCompact(t *testing.T) {
	dir := t.TempDir()
	eng, err := store.OpenEngine(dir, store.EngineOptions{Kind: store.EngineKindBinary, SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	srv := NewServer(Options{EvalWorkers: 1, CacheCapacity: 16, Store: eng})
	ts := newHTTPServer(t, srv)
	loadFigure1(t, ts, "demo")

	var v SessionView
	if code := do(t, http.MethodPost, ts.URL+"/v1/sessions", SessionConfig{
		Graph: "demo", Mode: "simulated", Goal: "(tram+bus)*.cinema",
	}, &v); code != http.StatusCreated {
		t.Fatalf("create returned %d", code)
	}
	waitSession(t, ts, v.ID, func(v SessionView) bool { return v.Status == StatusDone })

	var rep store.CompactionReport
	if code := do(t, http.MethodPost, ts.URL+"/v1/admin/compact", nil, &rep); code != http.StatusOK {
		t.Fatalf("admin compact returned %d", code)
	}
	if !rep.Supported || rep.SessionsCompacted != 1 {
		t.Fatalf("compaction report %+v, want supported with 1 session compacted", rep)
	}

	// The server keeps serving the (now summarised) session, and a fresh
	// recovery from the compacted store still sees it finished.
	var got SessionView
	if code := do(t, http.MethodGet, ts.URL+"/v1/sessions/"+v.ID, nil, &got); code != http.StatusOK {
		t.Fatalf("get after compaction returned %d", code)
	}
	if got.Status != StatusDone {
		t.Fatalf("session after compaction = %+v, want done", got)
	}
}

// TestAdminCompactNotDurable pins the 400 on in-memory deployments.
func TestAdminCompactNotDurable(t *testing.T) {
	_, ts := newTestServer(t)
	if code := do(t, http.MethodPost, ts.URL+"/v1/admin/compact", nil, nil); code != http.StatusBadRequest {
		t.Fatalf("admin compact without a store returned %d, want 400", code)
	}
}

// TestRequestTimeout pins the per-request deadline: with an immediately
// expiring RequestTimeout an evaluation answers 503, while the SSE event
// stream — exempt by design — still opens and replays the journal.
func TestRequestTimeout(t *testing.T) {
	srv := NewServer(Options{EvalWorkers: 2, CacheCapacity: 16, RequestTimeout: time.Nanosecond})
	ts := newHTTPServer(t, srv)
	loadFigure1(t, ts, "demo")

	var errResp errorEnvelope
	code := do(t, http.MethodPost, ts.URL+"/v1/graphs/demo/evaluate",
		evaluateRequest{Query: "(tram+bus)*.cinema", Witnesses: true}, &errResp)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("evaluate under expired deadline returned %d, want 503", code)
	}
	if errResp.Error.Code != CodeDeadlineExceeded {
		t.Fatalf("503 error code = %q, want %q", errResp.Error.Code, CodeDeadlineExceeded)
	}

	var v SessionView
	if code := do(t, http.MethodPost, ts.URL+"/v1/sessions", SessionConfig{
		Graph: "demo", Mode: "simulated", Goal: "(tram+bus)*.cinema",
	}, &v); code != http.StatusCreated {
		t.Fatalf("create returned %d", code)
	}
	waitSession(t, ts, v.ID, func(v SessionView) bool { return v.Status == StatusDone })
	events := sseEvents(t, ts.URL+"/v1/sessions/"+v.ID+"/events")
	if name := nextEvent(t, events, 10*time.Second); name != "create" {
		t.Fatalf("SSE under RequestTimeout: first event %q, want create", name)
	}
}

// TestRequestTimeoutGenerous pins that a sane deadline does not break the
// ordinary request path.
func TestRequestTimeoutGenerous(t *testing.T) {
	srv := NewServer(Options{EvalWorkers: 2, CacheCapacity: 16, RequestTimeout: 30 * time.Second})
	ts := newHTTPServer(t, srv)
	loadFigure1(t, ts, "demo")
	var eval struct {
		Count int `json:"count"`
	}
	if code := do(t, http.MethodPost, ts.URL+"/v1/graphs/demo/evaluate",
		evaluateRequest{Query: "(tram+bus)*.cinema", Witnesses: true}, &eval); code != http.StatusOK {
		t.Fatalf("evaluate returned %d", code)
	}
	if eval.Count != 4 {
		t.Fatalf("evaluate count = %d, want 4", eval.Count)
	}
}
