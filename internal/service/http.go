package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/rpq"
	"repro/internal/store"
)

// Server is the JSON/HTTP front-end of the service.
//
//	PUT    /v1/graphs/{name}            load (or replace) a graph
//	GET    /v1/graphs                   list graphs with stats
//	GET    /v1/graphs/{name}            one graph's stats
//	DELETE /v1/graphs/{name}            unregister a graph
//	POST   /v1/graphs/{name}/evaluate   evaluate a query (sharded, cached)
//	POST   /v1/sessions                 create a learning session
//	GET    /v1/sessions                 list sessions
//	GET    /v1/sessions/{id}            session state + pending question
//	GET    /v1/sessions/{id}/events     server-sent event stream (journal tail)
//	POST   /v1/sessions/{id}/label      answer the pending question
//	GET    /v1/sessions/{id}/hypothesis current hypothesis + its answer set
//	DELETE /v1/sessions/{id}            cancel and drop a session
//	GET    /v1/stats                    server-wide statistics
//	POST   /v1/admin/compact            run one store compaction (durable only)
//	GET    /healthz                     liveness probe
type Server struct {
	opts     Options
	registry *Registry
	manager  *Manager
	start    time.Time
	// recovery is what Recover restored; written once at boot, before the
	// handler serves.
	recovery RecoveryReport
	// shutdown is closed by NotifyShutdown so long-lived streams (SSE)
	// drain instead of pinning a graceful http.Server.Shutdown forever.
	shutdown     chan struct{}
	shutdownOnce sync.Once
	// metrics records per-endpoint request latency (see metrics.go).
	metrics *httpMetrics
	// reqSeq numbers requests arriving without an X-Request-ID header.
	reqSeq atomic.Int64
}

// NewServer assembles a service instance. withDefaults resolves
// Options.Metrics to one registry before the sub-components are built, so
// the registry, the manager and the store all register into the same
// scrape.
func NewServer(opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		opts:     opts,
		registry: NewRegistry(opts),
		manager:  NewManager(opts),
		start:    time.Now(),
		shutdown: make(chan struct{}),
		metrics:  newHTTPMetrics(opts.Metrics),
	}
	s.registerObs()
	return s
}

// registerObs wires the server-level observability families: uptime and
// recovery gauges, the manager's backpressure gauges, per-graph cache
// counters, and — on a durable service — the store engine's counters.
func (s *Server) registerObs() {
	reg := s.opts.Metrics
	reg.GaugeFunc("gpsd_uptime_seconds", "Seconds since the server was assembled.",
		func() float64 { return time.Since(s.start).Seconds() })
	reg.GaugeFunc("gpsd_graphs_registered", "Graphs currently registered.",
		func() float64 { return float64(len(s.registry.List())) })
	s.manager.registerBackpressure(reg)
	reg.SampleFunc("gpsd_cache_hits_total", "Engine cache hits, by graph.", obs.KindCounter,
		func() []obs.Sample {
			return s.registry.cacheSamples(func(cs rpq.CacheStats) float64 { return float64(cs.Hits) })
		})
	reg.SampleFunc("gpsd_cache_misses_total", "Engine cache misses, by graph.", obs.KindCounter,
		func() []obs.Sample {
			return s.registry.cacheSamples(func(cs rpq.CacheStats) float64 { return float64(cs.Misses) })
		})
	reg.SampleFunc("gpsd_cache_evictions_total", "Engine cache LRU evictions, by graph.", obs.KindCounter,
		func() []obs.Sample {
			return s.registry.cacheSamples(func(cs rpq.CacheStats) float64 { return float64(cs.Evictions) })
		})
	reg.SampleFunc("gpsd_cache_entries", "Compiled queries resident in the engine cache, by graph.", obs.KindGauge,
		func() []obs.Sample {
			return s.registry.cacheSamples(func(cs rpq.CacheStats) float64 { return float64(cs.Size) })
		})
	reg.GaugeFunc("gpsd_recovery_graphs", "Graph snapshots restored by the last recovery.",
		func() float64 { return float64(s.recovery.Graphs) })
	reg.GaugeFunc("gpsd_recovery_sessions_resumed", "In-flight sessions resumed by the last recovery.",
		func() float64 { return float64(s.recovery.SessionsResumed) })
	reg.GaugeFunc("gpsd_recovery_sessions_finished", "Finished sessions restored by the last recovery.",
		func() float64 { return float64(s.recovery.SessionsFinished) })
	if s.opts.Store != nil {
		store.RegisterMetrics(reg, s.opts.Store)
	}
}

// NotifyShutdown tells the service a graceful shutdown has begun: every
// open event stream ends after its current flush, so http.Server.Shutdown
// is not held hostage by idle SSE tailers. Wire it up with
// httpServer.RegisterOnShutdown(srv.NotifyShutdown). Idempotent.
func (s *Server) NotifyShutdown() {
	s.shutdownOnce.Do(func() { close(s.shutdown) })
}

// Registry exposes the graph registry (for preloading in cmd/gpsd and
// tests).
func (s *Server) Registry() *Registry { return s.registry }

// Manager exposes the session manager.
func (s *Server) Manager() *Manager { return s.manager }

// Handler returns the routed HTTP handler. Every route is instrumented
// with a request-latency histogram keyed by its pattern (see metrics.go).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	route := func(pattern string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, s.instrument(pattern, h))
	}
	route("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	route("GET /v1/stats", s.handleStats)
	route("GET /v1/graphs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"graphs": s.registry.List()})
	})
	route("PUT /v1/graphs/{name}", s.handleLoadGraph)
	route("GET /v1/graphs/{name}", s.handleGetGraph)
	route("DELETE /v1/graphs/{name}", s.handleDeleteGraph)
	route("POST /v1/graphs/{name}/evaluate", s.handleEvaluate)
	route("POST /v1/sessions", s.handleCreateSession)
	route("GET /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"sessions": s.manager.List()})
	})
	route("GET /v1/sessions/{id}", s.handleGetSession)
	route("GET /v1/sessions/{id}/events", s.handleSessionEvents)
	route("POST /v1/sessions/{id}/label", s.handleAnswer)
	route("GET /v1/sessions/{id}/hypothesis", s.handleHypothesis)
	route("DELETE /v1/sessions/{id}", s.handleDeleteSession)
	route("POST /v1/admin/compact", s.handleAdminCompact)
	route("GET /metrics", s.handleMetrics)
	return mux
}

// handleMetrics serves the observability registry in Prometheus text
// exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", obs.ContentType)
	_ = s.opts.Metrics.WritePrometheus(w)
}

// handleAdminCompact triggers one store compaction pass. On the binary
// engine this is the live path: appends keep flowing while dead segments
// are rewritten. A pass already in flight answers 409 — compaction is not
// a queue.
func (s *Server) handleAdminCompact(w http.ResponseWriter, r *http.Request) {
	eng := s.opts.Store
	if eng == nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("service is not durable: no store engine configured"))
		return
	}
	rep, err := eng.Compact()
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, store.ErrCompacting) {
			code = http.StatusConflict
		}
		writeError(w, code, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// errorCode upgrades the fallback status to 500 for durable-layer
// failures: the client's request was fine, the disk was not.
func errorCode(err error, fallback int) int {
	if errors.Is(err, ErrStore) {
		return http.StatusInternalServerError
	}
	return fallback
}

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid request body: %w", err))
		return false
	}
	return true
}

func (s *Server) handleLoadGraph(w http.ResponseWriter, r *http.Request) {
	var spec LoadSpec
	if !readJSON(w, r, &spec) {
		return
	}
	g, err := BuildGraph(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	h, err := s.registry.Register(r.PathValue("name"), g)
	if err != nil {
		writeError(w, errorCode(err, http.StatusBadRequest), err)
		return
	}
	writeJSON(w, http.StatusCreated, h.info())
}

func (s *Server) graphOr404(w http.ResponseWriter, r *http.Request) (*GraphHandle, bool) {
	h, ok := s.registry.Get(r.PathValue("name"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("graph %q is not registered", r.PathValue("name")))
	}
	return h, ok
}

func (s *Server) handleGetGraph(w http.ResponseWriter, r *http.Request) {
	if h, ok := s.graphOr404(w, r); ok {
		writeJSON(w, http.StatusOK, h.info())
	}
}

func (s *Server) handleDeleteGraph(w http.ResponseWriter, r *http.Request) {
	if !s.registry.Remove(r.PathValue("name")) {
		writeError(w, http.StatusNotFound, fmt.Errorf("graph %q is not registered", r.PathValue("name")))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "deleted"})
}

// evaluateRequest is the body of POST /v1/graphs/{name}/evaluate.
type evaluateRequest struct {
	// Query is the path query in the paper's syntax.
	Query string `json:"query"`
	// Witnesses requests one shortest witness path per selected node.
	Witnesses bool `json:"witnesses,omitempty"`
	// Limit truncates the returned node (and witness) lists; 0 means all.
	Limit int `json:"limit,omitempty"`
}

func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	h, ok := s.graphOr404(w, r)
	if !ok {
		return
	}
	var req evaluateRequest
	if !readJSON(w, r, &req) {
		return
	}
	started := time.Now()
	engine, err := h.Engine(req.Query)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ctx := r.Context()
	if deadlineHit(w, ctx) {
		return
	}
	nodes := engine.Selected()
	total := len(nodes)
	if req.Limit > 0 && len(nodes) > req.Limit {
		nodes = nodes[:req.Limit]
	}
	resp := map[string]any{
		"query":       engine.Query().String(),
		"nodes":       nodes,
		"count":       total,
		"duration_us": time.Since(started).Microseconds(),
	}
	if req.Witnesses {
		resp["witnesses"] = witnessFanOut(ctx, engine, nodes, s.opts.EvalWorkers)
		// A fan-out cut short by the deadline would return a silently
		// partial witness map; fail the request instead.
		if deadlineHit(w, ctx) {
			return
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// deadlineHit answers 503 when the per-request deadline (or the client)
// canceled the context, and reports whether it did.
func deadlineHit(w http.ResponseWriter, ctx context.Context) bool {
	if err := ctx.Err(); err != nil {
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("request deadline exceeded: %w", err))
		return true
	}
	return false
}

// witnessFanOut computes one shortest witness path per selected node,
// sharding the per-node searches across the service worker pool. Each
// rpq.Engine.Witness call is independent (it draws its scratch from a
// pool), so the fan-out parallelises cleanly; workers claim nodes off an
// atomic cursor and write into index-aligned slots, and the result map is
// identical to the sequential loop's. A canceled context stops workers
// at the next claim — the caller must check ctx before trusting the map
// to be complete.
func witnessFanOut(ctx context.Context, engine *rpq.Engine, nodes []graph.NodeID, workers int) map[graph.NodeID][]graph.Edge {
	out := make(map[graph.NodeID][]graph.Edge, len(nodes))
	if workers > len(nodes) {
		workers = len(nodes)
	}
	if workers <= 1 {
		for _, n := range nodes {
			if ctx.Err() != nil {
				return out
			}
			if path, ok := engine.Witness(n); ok {
				out[n] = path
			}
		}
		return out
	}
	paths := make([][]graph.Edge, len(nodes))
	found := make([]bool, len(nodes))
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(cursor.Add(1)) - 1
				if i >= len(nodes) {
					return
				}
				paths[i], found[i] = engine.Witness(nodes[i])
			}
		}()
	}
	wg.Wait()
	for i, n := range nodes {
		if found[i] {
			out[n] = paths[i]
		}
	}
	return out
}

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	var cfg SessionConfig
	if !readJSON(w, r, &cfg) {
		return
	}
	h, ok := s.registry.Get(cfg.Graph)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("graph %q is not registered", cfg.Graph))
		return
	}
	sess, err := s.manager.Create(h, cfg)
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, ErrLimit) {
			code = http.StatusTooManyRequests
		}
		writeError(w, errorCode(err, code), err)
		return
	}
	writeJSON(w, http.StatusCreated, sess.View())
}

func (s *Server) sessionOr404(w http.ResponseWriter, r *http.Request) (*HostedSession, bool) {
	sess, ok := s.manager.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("session %q does not exist", r.PathValue("id")))
	}
	return sess, ok
}

func (s *Server) handleGetSession(w http.ResponseWriter, r *http.Request) {
	if sess, ok := s.sessionOr404(w, r); ok {
		writeJSON(w, http.StatusOK, sess.View())
	}
}

func (s *Server) handleAnswer(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.sessionOr404(w, r)
	if !ok {
		return
	}
	var a Answer
	if !readJSON(w, r, &a) {
		return
	}
	if err := sess.Answer(a); err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, ErrConflict) {
			code = http.StatusConflict
		}
		writeError(w, errorCode(err, code), err)
		return
	}
	writeJSON(w, http.StatusOK, sess.View())
}

func (s *Server) handleHypothesis(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.sessionOr404(w, r)
	if !ok {
		return
	}
	learned := sess.Learned()
	if learned == "" {
		writeJSON(w, http.StatusOK, map[string]any{"learned": nil})
		return
	}
	engine, err := sess.handle.Engine(learned)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	resp := map[string]any{
		"learned": learned,
		"nodes":   engine.Selected(),
		"count":   len(engine.Selected()),
	}
	if witnessNode := r.URL.Query().Get("witness"); witnessNode != "" {
		path, ok := engine.Witness(graph.NodeID(witnessNode))
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("node %q is not selected by the hypothesis", witnessNode))
			return
		}
		resp["witness"] = path
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleDeleteSession(w http.ResponseWriter, r *http.Request) {
	if !s.manager.Remove(r.PathValue("id")) {
		writeError(w, http.StatusNotFound, fmt.Errorf("session %q does not exist", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "canceled"})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := map[string]any{
		"uptime_seconds": int64(time.Since(s.start).Seconds()),
		"eval_workers":   s.opts.EvalWorkers,
		"cache_capacity": s.opts.CacheCapacity,
		"max_sessions":   s.opts.MaxSessions,
		"graphs":         s.registry.List(),
		"sessions":       s.manager.Counts(),
		"backpressure":   s.manager.Backpressure(),
		"http":           s.metrics.Snapshot(),
	}
	if st := s.opts.Store; st != nil {
		resp["store"] = st.Metrics()
		resp["recovery"] = s.recovery
	}
	writeJSON(w, http.StatusOK, resp)
}
