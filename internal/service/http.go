package service

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/rpq"
	"repro/internal/rpq/index"
	"repro/internal/store"
)

// Server is the JSON/HTTP front-end of the service.
//
//	PUT    /v1/graphs/{name}            load (or replace) a graph
//	GET    /v1/graphs                   list graphs with stats
//	GET    /v1/graphs/{name}            one graph's stats
//	DELETE /v1/graphs/{name}            unregister a graph
//	POST   /v1/graphs/{name}/evaluate   evaluate a query (sharded, cached)
//	POST   /v1/sessions                 create a learning session
//	GET    /v1/sessions                 list sessions
//	GET    /v1/sessions/{id}            session state + pending question
//	GET    /v1/sessions/{id}/events     server-sent event stream (journal tail)
//	POST   /v1/sessions/{id}/label      answer the pending question
//	GET    /v1/sessions/{id}/hypothesis current hypothesis + its answer set
//	DELETE /v1/sessions/{id}            cancel and drop a session
//	GET    /v1/stats                    server-wide statistics
//	POST   /v1/admin/compact            run one store compaction (durable only)
//	GET    /v1/replication/status       replication role, epoch and feed state
//	GET    /v1/replication/feed         binary WAL stream for a warm follower
//	POST   /v1/admin/promote            confirm the primary role (idempotent)
//	GET    /healthz                     liveness probe
type Server struct {
	opts     Options
	registry *Registry
	manager  *Manager
	start    time.Time
	// recovery is what Recover restored; written once at boot, before the
	// handler serves.
	recovery RecoveryReport
	// shutdown is closed by NotifyShutdown so long-lived streams (SSE)
	// drain instead of pinning a graceful http.Server.Shutdown forever.
	shutdown     chan struct{}
	shutdownOnce sync.Once
	// metrics records per-endpoint request latency (see metrics.go).
	metrics *httpMetrics
	// tenantLabels caps the tenant label cardinality of the per-tenant
	// request metrics; graphLabels does the same for the per-graph cache
	// and index families.
	tenantLabels *labelGuard
	graphLabels  *labelGuard
	// reqSeq numbers requests arriving without an X-Request-ID header.
	reqSeq atomic.Int64
	// fenced latches once this daemon observes a successor primary epoch
	// (see replication.go); mutating requests answer 503 fenced from then
	// on.
	fenced atomic.Bool
}

// NewServer assembles a service instance. withDefaults resolves
// Options.Metrics to one registry before the sub-components are built, so
// the registry, the manager and the store all register into the same
// scrape.
func NewServer(opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		opts:         opts,
		registry:     NewRegistry(opts),
		manager:      NewManager(opts),
		start:        time.Now(),
		shutdown:     make(chan struct{}),
		metrics:      newHTTPMetrics(opts.Metrics),
		tenantLabels: newLabelGuard(maxTenantLabels),
		graphLabels:  newLabelGuard(maxGraphLabels),
	}
	s.loadFence()
	s.registerObs()
	return s
}

// registerObs wires the server-level observability families: uptime and
// recovery gauges, the manager's backpressure gauges, per-graph cache
// counters, and — on a durable service — the store engine's counters.
func (s *Server) registerObs() {
	reg := s.opts.Metrics
	reg.GaugeFunc("gpsd_uptime_seconds", "Seconds since the server was assembled.",
		func() float64 { return time.Since(s.start).Seconds() })
	reg.GaugeFunc("gpsd_graphs_registered", "Graphs currently registered.",
		func() float64 { return float64(len(s.registry.List())) })
	s.manager.registerBackpressure(reg)
	s.manager.registerTenantObs(reg)
	graphFamily := func(name, help, kind string, get func(GraphInfo) float64) {
		reg.SampleFunc(name, help, kind, func() []obs.Sample {
			return s.registry.graphSamples(s.graphLabels, get)
		})
	}
	graphFamily("gpsd_cache_hits_total", "Engine cache hits, by graph.", obs.KindCounter,
		func(gi GraphInfo) float64 { return float64(gi.Cache.Hits) })
	graphFamily("gpsd_cache_misses_total", "Engine cache misses, by graph.", obs.KindCounter,
		func(gi GraphInfo) float64 { return float64(gi.Cache.Misses) })
	graphFamily("gpsd_cache_evictions_total", "Engine cache LRU evictions, by graph.", obs.KindCounter,
		func(gi GraphInfo) float64 { return float64(gi.Cache.Evictions) })
	graphFamily("gpsd_cache_entries", "Compiled queries resident in the engine cache, by graph.", obs.KindGauge,
		func(gi GraphInfo) float64 { return float64(gi.Cache.Size) })
	indexStat := func(get func(index.Stats) float64) func(GraphInfo) float64 {
		return func(gi GraphInfo) float64 {
			if gi.Index.Stats == nil {
				return 0
			}
			return get(*gi.Index.Stats)
		}
	}
	graphFamily("gpsd_index_ready", "Whether the reachability index is built (1) or still building/disabled (0), by graph.", obs.KindGauge,
		func(gi GraphInfo) float64 {
			if gi.Index.State == indexStateNames[indexReady] {
				return 1
			}
			return 0
		})
	graphFamily("gpsd_index_bytes", "Resident bytes of the reachability index, by graph.", obs.KindGauge,
		indexStat(func(st index.Stats) float64 { return float64(st.Bytes) }))
	graphFamily("gpsd_index_build_seconds", "Wall-clock build time of the reachability index, by graph.", obs.KindGauge,
		indexStat(func(st index.Stats) float64 { return float64(st.BuildMs) / 1000 }))
	graphFamily("gpsd_index_hits_total", "Reachability-index assisted answers (closure jumps and direct label probes), by graph.", obs.KindCounter,
		indexStat(func(st index.Stats) float64 { return float64(st.Hits) }))
	graphFamily("gpsd_index_prunes_total", "Frontier configurations pruned by the index viability check, by graph.", obs.KindCounter,
		indexStat(func(st index.Stats) float64 { return float64(st.Prunes) }))
	reg.GaugeFunc("gpsd_recovery_graphs", "Graph snapshots restored by the last recovery.",
		func() float64 { return float64(s.recovery.Graphs) })
	reg.GaugeFunc("gpsd_recovery_sessions_resumed", "In-flight sessions resumed by the last recovery.",
		func() float64 { return float64(s.recovery.SessionsResumed) })
	reg.GaugeFunc("gpsd_recovery_sessions_finished", "Finished sessions restored by the last recovery.",
		func() float64 { return float64(s.recovery.SessionsFinished) })
	if s.opts.Store != nil {
		store.RegisterMetrics(reg, s.opts.Store)
	}
	s.registerReplObs(reg)
}

// NotifyShutdown tells the service a graceful shutdown has begun: every
// open event stream ends after its current flush, so http.Server.Shutdown
// is not held hostage by idle SSE tailers. Wire it up with
// httpServer.RegisterOnShutdown(srv.NotifyShutdown). Idempotent.
func (s *Server) NotifyShutdown() {
	s.shutdownOnce.Do(func() { close(s.shutdown) })
}

// Registry exposes the graph registry (for preloading in cmd/gpsd and
// tests).
func (s *Server) Registry() *Registry { return s.registry }

// Manager exposes the session manager.
func (s *Server) Manager() *Manager { return s.manager }

// RecoveryReport returns what the last Recover restored (the zero value
// before Recover ran). A promoted follower surfaces it so the failover
// harness can assert the adopted session counts.
func (s *Server) RecoveryReport() RecoveryReport { return s.recovery }

// Handler returns the routed HTTP handler. Every route is instrumented
// with a request-latency histogram keyed by its pattern (see metrics.go).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	route := func(pattern string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, s.instrument(pattern, h))
	}
	route("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	route("GET /v1/stats", s.handleStats)
	route("GET /v1/graphs", s.handleListGraphs)
	route("PUT /v1/graphs/{name}", s.handleLoadGraph)
	route("GET /v1/graphs/{name}", s.handleGetGraph)
	route("DELETE /v1/graphs/{name}", s.handleDeleteGraph)
	route("POST /v1/graphs/{name}/evaluate", s.handleEvaluate)
	route("POST /v1/sessions", s.handleCreateSession)
	route("GET /v1/sessions", s.handleListSessions)
	route("GET /v1/sessions/{id}", s.handleGetSession)
	route("GET /v1/sessions/{id}/events", s.handleSessionEvents)
	route("POST /v1/sessions/{id}/label", s.handleAnswer)
	route("GET /v1/sessions/{id}/hypothesis", s.handleHypothesis)
	route("DELETE /v1/sessions/{id}", s.handleDeleteSession)
	route("POST /v1/admin/compact", s.handleAdminCompact)
	route("GET /v1/replication/status", s.handleReplicationStatus)
	route("GET /v1/replication/feed", s.handleReplicationFeed)
	route("POST /v1/admin/promote", s.handlePromote)
	route("GET /metrics", s.handleMetrics)
	return mux
}

// handleMetrics serves the observability registry in Prometheus text
// exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", obs.ContentType)
	_ = s.opts.Metrics.WritePrometheus(w)
}

// handleAdminCompact triggers one store compaction pass. On the binary
// engine this is the live path: appends keep flowing while dead segments
// are rewritten. A pass already in flight answers 409 — compaction is not
// a queue.
func (s *Server) handleAdminCompact(w http.ResponseWriter, r *http.Request) {
	eng := s.opts.Store
	if eng == nil {
		writeError(w, http.StatusBadRequest, CodeNotDurable, fmt.Errorf("service is not durable: no store engine configured"))
		return
	}
	rep, err := eng.Compact()
	if err != nil {
		if errors.Is(err, store.ErrCompacting) {
			writeError(w, http.StatusConflict, CodeCompacting, err)
			return
		}
		writeError(w, http.StatusInternalServerError, CodeInternal, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, fmt.Errorf("invalid request body: %w", err))
		return false
	}
	return true
}

func (s *Server) handleLoadGraph(w http.ResponseWriter, r *http.Request) {
	var spec LoadSpec
	if !readJSON(w, r, &spec) {
		return
	}
	g, err := BuildGraph(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, err)
		return
	}
	h, err := s.registry.RegisterForWith(tenantFromRequest(r), r.PathValue("name"), g, RegisterOptions{NoIndex: spec.NoIndex})
	if err != nil {
		if errors.Is(err, ErrQuota) {
			writeRateLimited(w, CodeQuotaExceeded, err)
			return
		}
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, h.info())
}

func (s *Server) graphOr404(w http.ResponseWriter, r *http.Request) (*GraphHandle, bool) {
	h, ok := s.registry.Get(r.PathValue("name"))
	if !ok {
		writeError(w, http.StatusNotFound, CodeGraphNotFound, fmt.Errorf("graph %q is not registered", r.PathValue("name")))
	}
	return h, ok
}

func (s *Server) handleGetGraph(w http.ResponseWriter, r *http.Request) {
	if h, ok := s.graphOr404(w, r); ok {
		writeJSON(w, http.StatusOK, h.info())
	}
}

func (s *Server) handleDeleteGraph(w http.ResponseWriter, r *http.Request) {
	if !s.registry.Remove(r.PathValue("name")) {
		writeError(w, http.StatusNotFound, CodeGraphNotFound, fmt.Errorf("graph %q is not registered", r.PathValue("name")))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "deleted"})
}

// evaluateRequest is the body of POST /v1/graphs/{name}/evaluate.
type evaluateRequest struct {
	// Query is the path query in the paper's syntax.
	Query string `json:"query"`
	// Witnesses requests one shortest witness path per selected node.
	Witnesses bool `json:"witnesses,omitempty"`
	// Limit truncates the returned node (and witness) lists; 0 means all.
	Limit int `json:"limit,omitempty"`
}

func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	h, ok := s.graphOr404(w, r)
	if !ok {
		return
	}
	var req evaluateRequest
	if !readJSON(w, r, &req) {
		return
	}
	started := time.Now()
	engine, err := h.Engine(req.Query)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, err)
		return
	}
	ctx := r.Context()
	if deadlineHit(w, ctx) {
		return
	}
	nodes := engine.Selected()
	total := len(nodes)
	if req.Limit > 0 && len(nodes) > req.Limit {
		nodes = nodes[:req.Limit]
	}
	resp := map[string]any{
		"query":       engine.Query().String(),
		"nodes":       nodes,
		"count":       total,
		"duration_us": time.Since(started).Microseconds(),
	}
	if req.Witnesses {
		resp["witnesses"] = witnessFanOut(ctx, engine, nodes, s.opts.EvalWorkers)
		// A fan-out cut short by the deadline would return a silently
		// partial witness map; fail the request instead.
		if deadlineHit(w, ctx) {
			return
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// deadlineHit answers 503 when the per-request deadline (or the client)
// canceled the context, and reports whether it did.
func deadlineHit(w http.ResponseWriter, ctx context.Context) bool {
	if err := ctx.Err(); err != nil {
		writeError(w, http.StatusServiceUnavailable, CodeDeadlineExceeded, fmt.Errorf("request deadline exceeded: %w", err))
		return true
	}
	return false
}

// witnessFanOut computes one shortest witness path per selected node,
// sharding the per-node searches across the service worker pool. Each
// rpq.Engine.Witness call is independent (it draws its scratch from a
// pool), so the fan-out parallelises cleanly; workers claim nodes off an
// atomic cursor and write into index-aligned slots, and the result map is
// identical to the sequential loop's. A canceled context stops workers
// at the next claim — the caller must check ctx before trusting the map
// to be complete.
func witnessFanOut(ctx context.Context, engine *rpq.Engine, nodes []graph.NodeID, workers int) map[graph.NodeID][]graph.Edge {
	out := make(map[graph.NodeID][]graph.Edge, len(nodes))
	if workers > len(nodes) {
		workers = len(nodes)
	}
	if workers <= 1 {
		for _, n := range nodes {
			if ctx.Err() != nil {
				return out
			}
			if path, ok := engine.Witness(n); ok {
				out[n] = path
			}
		}
		return out
	}
	paths := make([][]graph.Edge, len(nodes))
	found := make([]bool, len(nodes))
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(cursor.Add(1)) - 1
				if i >= len(nodes) {
					return
				}
				paths[i], found[i] = engine.Witness(nodes[i])
			}
		}()
	}
	wg.Wait()
	for i, n := range nodes {
		if found[i] {
			out[n] = paths[i]
		}
	}
	return out
}

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	var cfg SessionConfig
	if !readJSON(w, r, &cfg) {
		return
	}
	h, ok := s.registry.Get(cfg.Graph)
	if !ok {
		writeError(w, http.StatusNotFound, CodeGraphNotFound, fmt.Errorf("graph %q is not registered", cfg.Graph))
		return
	}
	sess, err := s.manager.CreateFor(tenantFromRequest(r), h, cfg)
	if err != nil {
		switch {
		case errors.Is(err, ErrQuota):
			writeRateLimited(w, CodeQuotaExceeded, err)
		case errors.Is(err, ErrLimit):
			writeRateLimited(w, CodeOverloaded, err)
		default:
			writeError(w, http.StatusBadRequest, CodeInvalidRequest, err)
		}
		return
	}
	writeJSON(w, http.StatusCreated, sess.View())
}

func (s *Server) sessionOr404(w http.ResponseWriter, r *http.Request) (*HostedSession, bool) {
	sess, ok := s.manager.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, CodeSessionNotFound, fmt.Errorf("session %q does not exist", r.PathValue("id")))
	}
	return sess, ok
}

func (s *Server) handleGetSession(w http.ResponseWriter, r *http.Request) {
	if sess, ok := s.sessionOr404(w, r); ok {
		writeJSON(w, http.StatusOK, sess.View())
	}
}

func (s *Server) handleAnswer(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.sessionOr404(w, r)
	if !ok {
		return
	}
	var a Answer
	if !readJSON(w, r, &a) {
		return
	}
	if err := sess.Answer(a); err != nil {
		if errors.Is(err, ErrConflict) {
			writeError(w, http.StatusConflict, CodeConflict, err)
			return
		}
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, sess.View())
}

func (s *Server) handleHypothesis(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.sessionOr404(w, r)
	if !ok {
		return
	}
	learned := sess.Learned()
	if learned == "" {
		writeJSON(w, http.StatusOK, map[string]any{"learned": nil})
		return
	}
	engine, err := sess.handle.Engine(learned)
	if err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, err)
		return
	}
	resp := map[string]any{
		"learned": learned,
		"nodes":   engine.Selected(),
		"count":   len(engine.Selected()),
	}
	if witnessNode := r.URL.Query().Get("witness"); witnessNode != "" {
		path, ok := engine.Witness(graph.NodeID(witnessNode))
		if !ok {
			writeError(w, http.StatusNotFound, CodeNodeNotFound, fmt.Errorf("node %q is not selected by the hypothesis", witnessNode))
			return
		}
		resp["witness"] = path
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleDeleteSession(w http.ResponseWriter, r *http.Request) {
	if !s.manager.Remove(r.PathValue("id")) {
		writeError(w, http.StatusNotFound, CodeSessionNotFound, fmt.Errorf("session %q does not exist", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "canceled"})
}

// pageParams are the pagination controls shared by the listing endpoints.
// A request without limit and cursor is unpaged and keeps the original
// serialize-the-world shape.
type pageParams struct {
	limit  int
	cursor string
	paged  bool
}

// parsePage reads ?limit= and ?cursor= and reports false after answering
// the error itself. Cursors are opaque: base64 over the last item's sort
// key, prefixed with the listing kind so a graphs cursor cannot be replayed
// against sessions.
func parsePage(w http.ResponseWriter, r *http.Request, kind string) (pageParams, bool) {
	var p pageParams
	q := r.URL.Query()
	if raw := q.Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n <= 0 {
			writeError(w, http.StatusBadRequest, CodeInvalidRequest, fmt.Errorf("limit must be a positive integer (got %q)", raw))
			return p, false
		}
		p.limit = n
		p.paged = true
	}
	if raw := q.Get("cursor"); raw != "" {
		decoded, err := base64.RawURLEncoding.DecodeString(raw)
		key, ok := strings.CutPrefix(string(decoded), kind+":")
		if err != nil || !ok {
			writeError(w, http.StatusBadRequest, CodeInvalidCursor, fmt.Errorf("cursor %q is not a %s cursor", raw, kind))
			return p, false
		}
		p.cursor = key
		p.paged = true
	}
	return p, true
}

func encodeCursor(kind, key string) string {
	return base64.RawURLEncoding.EncodeToString([]byte(kind + ":" + key))
}

// page applies the cursor and limit to items already sorted by key and
// returns the page plus the next cursor ("" on the last page).
func page[T any](items []T, p pageParams, kind string, key func(T) string) ([]T, string) {
	if p.cursor != "" {
		i := sort.Search(len(items), func(i int) bool { return key(items[i]) > p.cursor })
		items = items[i:]
	}
	if p.limit > 0 && len(items) > p.limit {
		return items[:p.limit], encodeCursor(kind, key(items[p.limit-1]))
	}
	return items, ""
}

// handleListGraphs serves GET /v1/graphs with optional ?limit=&cursor=
// pagination (stable order: graph name).
func (s *Server) handleListGraphs(w http.ResponseWriter, r *http.Request) {
	p, ok := parsePage(w, r, "graphs")
	if !ok {
		return
	}
	graphs, next := page(s.registry.List(), p, "graphs", func(g GraphInfo) string { return g.Name })
	resp := map[string]any{"graphs": graphs}
	if next != "" {
		resp["next_cursor"] = next
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleListSessions serves GET /v1/sessions with optional ?limit=&cursor=
// pagination (stable order: session id) and ?state=/?graph= filters.
func (s *Server) handleListSessions(w http.ResponseWriter, r *http.Request) {
	p, ok := parsePage(w, r, "sessions")
	if !ok {
		return
	}
	q := r.URL.Query()
	state, graphName := q.Get("state"), q.Get("graph")
	views := s.manager.List()
	if state != "" || graphName != "" {
		filtered := views[:0]
		for _, v := range views {
			if state != "" && string(v.Status) != state {
				continue
			}
			if graphName != "" && v.Graph != graphName {
				continue
			}
			filtered = append(filtered, v)
		}
		views = filtered
	}
	sessions, next := page(views, p, "sessions", func(v SessionView) string { return v.ID })
	resp := map[string]any{"sessions": sessions}
	if next != "" {
		resp["next_cursor"] = next
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := map[string]any{
		"uptime_seconds": int64(time.Since(s.start).Seconds()),
		"eval_workers":   s.opts.EvalWorkers,
		"index_enabled":  !s.opts.DisableIndex,
		"cache_capacity": s.opts.CacheCapacity,
		"max_sessions":   s.opts.MaxSessions,
		"graphs":         s.registry.List(),
		"sessions":       s.manager.Counts(),
		"backpressure":   s.manager.Backpressure(),
		"tenants":        s.manager.TenantStats(),
		"http":           s.metrics.Snapshot(),
	}
	if st := s.opts.Store; st != nil {
		resp["store"] = st.Metrics()
		resp["recovery"] = s.recovery
	}
	writeJSON(w, http.StatusOK, resp)
}
