package service

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/regex"
	"repro/internal/store"
)

// RecoveryReport summarises what Server.Recover restored; it is also
// surfaced on /v1/stats so operators can see what a restart brought back.
type RecoveryReport struct {
	// Graphs counts re-registered graph snapshots.
	Graphs int `json:"graphs"`
	// SessionsResumed counts in-flight sessions whose learning loop was
	// re-driven from the journal; SessionsFinished counts finished
	// sessions restored as inspectable records.
	SessionsResumed  int `json:"sessions_resumed"`
	SessionsFinished int `json:"sessions_finished"`
	// SessionsSkipped lists journals that could not be restored, with the
	// reason. Their files are left on disk untouched.
	SessionsSkipped []string `json:"sessions_skipped,omitempty"`
}

// Recover replays the configured store into the server: graph snapshots
// re-register under their names, finished sessions come back as
// inspectable records, and in-flight sessions resume — their learning
// loops re-run against the journaled answers until they reach the exact
// pre-crash state, then park on the next question as if the crash never
// happened. Call it after NewServer and before serving requests.
func (s *Server) Recover() (RecoveryReport, error) {
	st := s.opts.Store
	if st == nil {
		return RecoveryReport{}, fmt.Errorf("service: recover needs Options.Store")
	}
	var rep RecoveryReport
	graphs, err := st.RecoverGraphs()
	if err != nil {
		return rep, err
	}
	// The ownership sidecar maps recovered graphs back to their tenants, so
	// per-tenant graph quotas keep binding across a restart.
	owners, err := store.LoadOwners(st.Dir())
	if err != nil {
		return rep, err
	}
	for _, rg := range graphs {
		s.registry.restore(rg.Name, rg.Graph, tenantOrDefault(owners[rg.Name]))
		rep.Graphs++
	}
	sessions, err := st.RecoverSessions()
	if err != nil {
		return rep, err
	}
	for _, rs := range sessions {
		resumed, err := s.manager.Restore(s.registry, rs)
		if err != nil {
			rep.SessionsSkipped = append(rep.SessionsSkipped, fmt.Sprintf("%s: %v", rs.ID, err))
			_ = rs.Journal.Close()
			continue
		}
		if resumed {
			rep.SessionsResumed++
		} else {
			rep.SessionsFinished++
		}
	}
	s.recovery = rep
	s.opts.Logger.Info("recovery complete",
		"graphs", rep.Graphs,
		"sessions_resumed", rep.SessionsResumed,
		"sessions_finished", rep.SessionsFinished,
		"sessions_skipped", len(rep.SessionsSkipped))
	return rep, nil
}

// Restore rebuilds one session from its recovered journal. A journal with
// a terminal record restores as a finished session (no goroutine); an
// unterminated journal is an in-flight session, whose loop is relaunched
// with a replayState that re-feeds the journaled answers (resumed=true).
func (m *Manager) Restore(reg *Registry, rs store.RecoveredSession) (resumed bool, err error) {
	// Advance the id allocator even when the journal turns out to be
	// unrestorable: its file stays on disk, and a future Create reusing
	// the id would collide with it.
	m.noteID(rs.ID)
	recs := rs.Journal.Records()
	if len(recs) == 0 || recs[0].Type != recCreate {
		return false, fmt.Errorf("journal has no create record")
	}
	var cr createRecord
	if err := json.Unmarshal(recs[0].Data, &cr); err != nil {
		return false, fmt.Errorf("create record: %w", err)
	}
	h, ok := reg.Get(cr.Graph)
	if !ok {
		return false, fmt.Errorf("graph %q is not registered", cr.Graph)
	}
	if err := h.Check(); err != nil {
		return false, err
	}

	var questions []Question
	var answers []Answer
	hypCount := 0
	lastHyp := ""
	var final *doneRecord
	failed := false
	for _, rec := range recs[1:] {
		switch rec.Type {
		case recQuestion:
			var q Question
			if err := json.Unmarshal(rec.Data, &q); err != nil {
				return false, fmt.Errorf("record %d: %w", rec.Seq, err)
			}
			questions = append(questions, q)
		case recAnswer:
			var a Answer
			if err := json.Unmarshal(rec.Data, &a); err != nil {
				return false, fmt.Errorf("record %d: %w", rec.Seq, err)
			}
			answers = append(answers, a)
		case recHypothesis:
			var hr hypothesisRecord
			if err := json.Unmarshal(rec.Data, &hr); err != nil {
				return false, fmt.Errorf("record %d: %w", rec.Seq, err)
			}
			hypCount++
			lastHyp = hr.Learned
		case recDone, recFailed:
			var d doneRecord
			if err := json.Unmarshal(rec.Data, &d); err != nil {
				return false, fmt.Errorf("record %d: %w", rec.Seq, err)
			}
			final = &d
			failed = rec.Type == recFailed
		}
	}

	if final != nil {
		learned := final.Learned
		if learned == "" {
			learned = lastHyp
		}
		done := make(chan struct{})
		close(done)
		s := &HostedSession{
			id:      rs.ID,
			handle:  h,
			tenant:  tenantOrDefault(cr.Tenant),
			cfg:     cr.Config,
			cancel:  func() {},
			done:    done,
			journal: rs.Journal,
			tr:      m.tr,
			labels:  final.Labels,
			learned: learned,
		}
		if failed {
			s.status = StatusFailed
			s.errMsg = final.Error
		} else {
			s.status = StatusDone
			s.halt = final.Halt
		}
		_ = rs.Journal.Close() // terminal: nothing appends anymore
		m.mu.Lock()
		m.sessions[rs.ID] = s
		m.finishedIDs = append(m.finishedIDs, rs.ID)
		m.evictFinishedLocked()
		m.mu.Unlock()
		return false, nil
	}

	strat, err := strategyFor(cr.Config)
	if err != nil {
		return false, err
	}
	var goal *regex.Expr
	if cr.Config.Mode == "simulated" {
		if goal, err = parseQuery(cr.Config.Goal); err != nil {
			return false, err
		}
	}
	s := &HostedSession{
		id:      rs.ID,
		handle:  h,
		tenant:  tenantOrDefault(cr.Tenant),
		cfg:     cr.Config,
		done:    make(chan struct{}),
		journal: rs.Journal,
		tr:      m.tr,
		status:  StatusRunning,
	}
	if len(questions) > 0 || len(answers) > 0 || hypCount > 0 {
		s.replay = &replayState{answers: answers, questions: questions, hypSkip: hypCount, started: time.Now()}
	}
	ctx, cancel := context.WithCancel(context.Background())
	s.cancel = cancel
	// Resumed sessions bypass the admission check: they held a slot before
	// the crash, and refusing them would lose user labels. adoptLocked still
	// books the slot to the tenant, so post-recovery quotas see it.
	m.mu.Lock()
	m.adoptLocked(s.tenant)
	m.sessions[rs.ID] = s
	m.mu.Unlock()
	m.log.Info("session resumed",
		"session_id", rs.ID, "graph", cr.Graph, "tenant", s.tenant, "mode", cr.Config.Mode,
		"journaled_questions", len(questions), "journaled_answers", len(answers))
	m.launch(s, strat, goal, ctx)
	return true, nil
}

// noteID advances the id allocator past a recovered session id so new
// sessions never collide with restored ones.
func (m *Manager) noteID(id string) {
	var n int
	if _, err := fmt.Sscanf(id, "s%d", &n); err == nil {
		m.mu.Lock()
		if n > m.nextID {
			m.nextID = n
		}
		m.mu.Unlock()
	}
}
